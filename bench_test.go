package lambada_test

// One benchmark per table and figure of the paper's evaluation. The
// benchmarks report the headline quantity of each experiment as a custom
// metric (virtual seconds, dollars, MiB/s) so `go test -bench . -benchmem`
// regenerates the paper's numbers. cmd/lambada-bench prints the full
// rows/series.

import (
	"bytes"
	"testing"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/driver"
	"lambada/internal/exchange"
	"lambada/internal/experiments"
	"lambada/internal/lpq"
	"lambada/internal/netmodel"
	"lambada/internal/qaas"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// BenchmarkFigure1a regenerates the job-scoped IaaS-vs-FaaS frontier.
func BenchmarkFigure1a(b *testing.B) {
	var minFaaS float64
	for i := 0; i < b.N; i++ {
		_, faas := experiments.Figure1a(experiments.DefaultFigure1a())
		minFaaS = faas[len(faas)-1].Time.Seconds()
	}
	b.ReportMetric(minFaaS, "faas-floor-s")
}

// BenchmarkFigure1b regenerates the always-on cost comparison.
func BenchmarkFigure1b(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure1b(experiments.DefaultFigure1b())
		crossover = f.Series[len(f.Series)-1].Points[0].Y // FaaS at 1 query/h
	}
	b.ReportMetric(crossover, "faas-$/h-at-1qph")
}

// BenchmarkTable1 regenerates the invocation characteristics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1()
	}
	b.ReportMetric(netmodel.InvokeProfiles[netmodel.RegionEU].DriverRate, "eu-inv/s")
}

// BenchmarkFigure4 regenerates the CPU-share microbenchmark.
func BenchmarkFigure4(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		f := experiments.Figure4()
		two := f.Series[1].Points
		speedup = two[len(two)-1].Y / 100
	}
	b.ReportMetric(speedup, "3008MiB-2thr-speedup")
}

// BenchmarkFigure5 runs the two-level invocation of 4096 workers (DES).
func BenchmarkFigure5(b *testing.B) {
	var all time.Duration
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(experiments.Figure5Config{Workers: 4096, Region: netmodel.RegionEU, Seed: int64(i + 1)})
		all = res.AllRunning
	}
	b.ReportMetric(all.Seconds(), "all-running-s")
}

// BenchmarkFigure6 regenerates the ingress-bandwidth microbenchmark.
func BenchmarkFigure6(b *testing.B) {
	var smallBurst float64
	for i := 0; i < b.N; i++ {
		_, small := experiments.Figure6()
		pts := small.Series[len(small.Series)-1].Points
		smallBurst = pts[len(pts)-1].Y
	}
	b.ReportMetric(smallBurst, "small-4conn-MiB/s")
}

// BenchmarkFigure7 regenerates the chunk-size sweep.
func BenchmarkFigure7(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7(experiments.DefaultFigure7())
		for _, r := range rows {
			if r.ChunkMiB == 1 && r.Conns == 4 {
				ratio = r.WorkerCostRatio
			}
		}
	}
	b.ReportMetric(ratio, "1MiB-req/worker-cost")
}

// BenchmarkFigure9 evaluates the exchange cost models (Table 2 formulas).
func BenchmarkFigure9(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		v := exchange.Variant{Levels: 1}
		cost = float64(v.RequestCost(4096))
	}
	b.ReportMetric(cost, "1l-4096w-$")
}

// BenchmarkTable2 checks the request-complexity formulas.
func BenchmarkTable2(b *testing.B) {
	var reads float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		_ = t
		reads = exchange.Variant{Levels: 2, WriteCombining: true}.Reads(1024)
	}
	b.ReportMetric(reads, "2lwc-1024w-reads")
}

// BenchmarkFigure10 regenerates the M×F sweep of Q1 (model).
func BenchmarkFigure10(b *testing.B) {
	m := experiments.DefaultLambadaModel()
	var hot time.Duration
	for i := 0; i < b.N; i++ {
		est := m.Run(experiments.RunConfig{Query: experiments.SpecQ1, SF: 1000, M: 1792, F: 1, Seed: int64(i + 1)})
		hot = est.Total
	}
	b.ReportMetric(hot.Seconds(), "q1-sf1k-hot-s")
}

// BenchmarkFigure11 regenerates the processing-time distribution.
func BenchmarkFigure11(b *testing.B) {
	m := experiments.DefaultLambadaModel()
	var fastBand float64
	for i := 0; i < b.N; i++ {
		est := m.Run(experiments.RunConfig{Query: experiments.SpecQ6, SF: 1000, M: 1792, F: 1, Seed: int64(i + 1)})
		fast := 0
		for _, t := range est.WorkerTimes {
			if t < 400*time.Millisecond {
				fast++
			}
		}
		fastBand = float64(fast) / float64(len(est.WorkerTimes))
	}
	b.ReportMetric(fastBand, "q6-pruned-fraction")
}

// BenchmarkFigure12 regenerates the QaaS comparison.
func BenchmarkFigure12(b *testing.B) {
	m := experiments.DefaultLambadaModel()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure12(m, int64(i+1))
		var lam, ath time.Duration
		for _, r := range rows {
			if r.Query == "Q1" && r.SF == 10000 {
				if r.System == "Lambada(M=1792)" && r.Run == "hot" {
					lam = r.Latency
				}
				if r.System == "Athena" {
					ath = r.Latency
				}
			}
		}
		speedup = ath.Seconds() / lam.Seconds()
	}
	b.ReportMetric(speedup, "q1-sf10k-vs-athena")
}

// BenchmarkTable3 runs the 100 GB exchange on 250 workers (DES).
func BenchmarkTable3(b *testing.B) {
	var dur time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunExchangeDES(experiments.ExchangeRunConfig{
			Workers: 250, TotalBytes: 100 * netmodel.GB,
			Variant: exchange.Variant{Levels: 2, WriteCombining: true},
			Buckets: 32, MemoryMiB: 2048, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		dur = res.Duration
	}
	b.ReportMetric(dur.Seconds(), "100GB-250w-s")
}

// BenchmarkFigure13 runs the 1 TB / 1250-worker shuffle with stragglers.
func BenchmarkFigure13(b *testing.B) {
	var dur time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(1*netmodel.TB, 1250, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		dur = res.Run.Duration
	}
	b.ReportMetric(dur.Seconds(), "1TB-1250w-s")
}

// BenchmarkQaaSModels evaluates the comparator models.
func BenchmarkQaaSModels(b *testing.B) {
	a := qaas.DefaultAthena()
	bq := qaas.DefaultBigQuery()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost = float64(a.Run(qaas.Q1, 1000).Cost) + float64(bq.Run(qaas.Q6, 10000).Cost)
	}
	b.ReportMetric(cost, "qaas-$")
}

// BenchmarkEndToEndQueryDES runs a complete SQL query (real data, real
// operators) on the DES deployment — the full system in one number.
func BenchmarkEndToEndQueryDES(b *testing.B) {
	data := tpch.Gen{SF: 0.002, Seed: 9}.Generate()
	b.ResetTimer()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		dep := driver.NewSimulated(k, int64(i+1))
		k.Go("driver", func(p *simclock.Proc) {
			cfg := driver.DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := driver.New(dep, p, cfg)
			if err := d.Install(); err != nil {
				b.Error(err)
				return
			}
			refs, err := d.UploadTable("tpch", "lineitem", data, 8, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			_, rep, err := d.RunSQL(`SELECT SUM(l_extendedprice * l_discount) AS revenue
				FROM lineitem
				WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
				  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`,
				"lineitem", refs)
			if err != nil {
				b.Error(err)
				return
			}
			virtual = rep.Duration
		})
		k.Run()
	}
	b.ReportMetric(virtual.Seconds(), "virtual-s")
}

// BenchmarkEndToEndQueryLocal runs the same query on goroutine workers.
func BenchmarkEndToEndQueryLocal(b *testing.B) {
	data := tpch.Gen{SF: 0.002, Seed: 9}.Generate()
	dep := driver.NewLocal()
	d := driver.New(dep, simenv.NewImmediate(), driver.DefaultConfig())
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	refs, err := d.UploadTable("tpch", "lineitem", data, 8, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.RunSQL("SELECT COUNT(*) AS n FROM lineitem", "lineitem", refs); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationTreeVsDirect compares the invocation strategies at 4096
// workers.
func BenchmarkAblationTreeVsDirect(b *testing.B) {
	var tree, direct time.Duration
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(experiments.Figure5Config{Workers: 4096, Region: netmodel.RegionEU, Seed: int64(i + 1)})
		tree = res.AllRunning
		direct = res.DirectEstimate
	}
	b.ReportMetric(tree.Seconds(), "tree-s")
	b.ReportMetric(direct.Seconds(), "direct-s")
}

// BenchmarkAblationExchangeVariants prices all six variants at 1024 workers.
func BenchmarkAblationExchangeVariants(b *testing.B) {
	var basic, best float64
	for i := 0; i < b.N; i++ {
		basic = float64(exchange.Variant{Levels: 1}.RequestCost(1024))
		best = float64(exchange.Variant{Levels: 3, WriteCombining: true}.RequestCost(1024))
	}
	b.ReportMetric(basic/best, "1l-vs-3lwc-cost-ratio")
}

// BenchmarkAblationPruning measures row-group pruning on Q6's shipdate
// range over the sorted relation (real scan path).
func BenchmarkAblationPruning(b *testing.B) {
	data := tpch.Gen{SF: 0.01, Seed: 3}.Generate()
	for _, stats := range []bool{true, false} {
		name := "with-stats"
		if !stats {
			name = "no-stats"
		}
		b.Run(name, func(b *testing.B) {
			raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 2000, DisableStats: !stats}, data)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			preds := []lpq.Predicate{{Column: "l_shipdate", Min: float64(tpch.Q6ShipDateLo), Max: float64(tpch.Q6ShipDateHi - 1)}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := lpq.OpenReader(readerAt(raw), int64(len(raw)))
				if err != nil {
					b.Fatal(err)
				}
				keep := lpq.PruneRowGroups(r.Meta(), preds)
				for _, g := range keep {
					if _, err := r.ReadRowGroup(g, []int{10}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func readerAt(b []byte) *bytes.Reader { return bytes.NewReader(b) }
