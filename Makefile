GO ?= go
# bench-json knobs: the PR-numbered output file, the previous PR's file the
# comparability check runs against, and the per-benchmark time.
BENCH_JSON ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR9.json
BENCHTIME ?= 300ms
# trace-smoke output file (Chrome trace-event JSON; also the CI artifact).
TRACE_OUT ?= trace-smoke.json

.PHONY: build test race race-staged chaos scale-smoke bench bench-json vet trace-smoke serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-staged runs the staged-execution suites (scheduler, speculation,
# epoch fencing, exchange boundaries, stage planner, and the DES/notify
# primitives under them) race-instrumented at a fixed GOMAXPROCS so
# goroutine interleavings actually happen on 1-CPU runners. -short skips
# the 1k-worker scale smoke, which runs uninstrumented via scale-smoke.
race-staged:
	GOMAXPROCS=4 $(GO) test -race -short ./internal/driver/ ./internal/exchange/ ./internal/stageplan/ ./internal/simclock/ ./internal/awssim/dynamo/ ./internal/lpq/ ./internal/scan/

# scale-smoke is the multi-level acceptance point: staged q12 on the DES
# kernel at 512 partitions (a 1k+ worker fleet), checking the resolved
# boundary variants and that the billed S3 requests match the analytic
# request model integer-exactly. Uninstrumented — the run is allocation-
# heavy and race mode would triple its time for no interleaving coverage
# the -short race suites don't already have.
scale-smoke:
	$(GO) test -run 'TestStagedQ12ScaleSmoke|TestMultiLevelRequestsMatchModel' -v -timeout 10m ./internal/driver/ ./internal/exchange/

# chaos runs the deterministic fault-injection suites race-instrumented:
# the injector/resilience unit tests, the per-service fault tests, and the
# driver chaos acceptance tests (staged q12 under a seeded fault storm must
# replay exactly and still produce the fault-free answer).
chaos:
	GOMAXPROCS=4 $(GO) test -race ./internal/awssim/faults/ ./internal/resilience/
	GOMAXPROCS=4 $(GO) test -race \
		-run 'Chaos|Injected|ClientRetries|ClientBudget|EpochSweep|SingleScopeDuplicate' \
		./internal/awssim/s3/ ./internal/awssim/sqs/ ./internal/awssim/dynamo/ \
		./internal/awssim/lambdasvc/ ./internal/driver/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE ./internal/engine/ ./internal/scan/ ./internal/lpq/ .

# bench-json records the engine/scan/exchange/driver benchmarks as
# machine-readable JSON (ns/op, B/op, allocs/op, custom metrics like the
# staged vms/op) — the repo's perf trajectory, one BENCH_PR<N>.json per PR.
# -require-same-cpu refuses to record when $(BENCH_BASELINE) was measured
# on a different CPU count: such points must never be compared. Non-gating
# in CI.
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) -baseline $(BENCH_BASELINE) \
		-require-same-cpu -benchtime $(BENCHTIME) \
		./internal/engine ./internal/scan ./internal/exchange ./internal/driver

# serve-smoke boots the resident query service end to end in both modes
# (goroutine workers in real time; DES virtual time with request batching),
# runs the fresh/cached/invalidate query sequence over HTTP, and exits
# non-zero on any divergence. The CI face of cmd/lambada-serve.
serve-smoke:
	$(GO) run ./cmd/lambada-serve -smoke -sf 0.002 -files 4
	$(GO) run ./cmd/lambada-serve -smoke -mode des -sf 0.002 -files 4

# trace-smoke runs a traced staged query under the DES kernel, exports the
# Chrome trace-event JSON, and validates it against the schema subset the
# obs package emits. The file is uploaded as a CI artifact.
trace-smoke:
	$(GO) run ./cmd/lambada -mode des -exchange -query q12 -sf 0.002 -files 4 \
		-profile -trace-out $(TRACE_OUT)
	$(GO) run ./cmd/tracecheck $(TRACE_OUT)
