GO ?= go
# bench-json knobs: the PR-numbered output file and the per-benchmark time.
BENCH_JSON ?= BENCH_PR3.json
BENCHTIME ?= 300ms

.PHONY: build test race bench bench-json vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE ./internal/engine/ ./internal/scan/ ./internal/lpq/ .

# bench-json records the engine/scan/exchange benchmarks as machine-readable
# JSON (ns/op, B/op, allocs/op) — the repo's perf trajectory, one
# BENCH_PR<N>.json per PR. Non-gating in CI.
bench-json:
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) -benchtime $(BENCHTIME) \
		./internal/engine ./internal/scan ./internal/exchange ./internal/driver
