GO ?= go

.PHONY: build test race bench vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE ./internal/engine/ ./internal/scan/ ./internal/lpq/ .
