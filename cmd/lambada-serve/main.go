// Command lambada-serve runs the resident query service: one long-lived
// session over a simulated deployment, fronted by an HTTP/JSON endpoint.
// The worker function is installed and the TPC-H data uploaded once at
// startup; every POST /query after that runs on the warm session — repeated
// queries hit the result cache, concurrent requests interleave on the
// shared fleet under the deployment-wide admission cap.
//
// Usage:
//
//	lambada-serve -sf 0.005 -addr 127.0.0.1:8080
//	lambada-serve -mode des -max-inflight 64
//	lambada-serve -smoke        # self-test: start, query, verify, exit
//
//	curl -d '{"name":"q6"}' localhost:8080/query
//	curl -d '{"sql":"SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < :q","params":{"q":"24"}}' localhost:8080/query
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/driver"
	"lambada/internal/lpq"
	"lambada/internal/service"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

const q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const q6SQL = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`

const q12SQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_extendedprice) AS total
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1996-01-01'
  AND l_commitdate < l_receiptdate
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		mode     = flag.String("mode", "local", "local (goroutine workers, real time) or des (virtual-time simulation; concurrent requests batch into one interleaved run)")
		sf       = flag.Float64("sf", 0.005, "TPC-H scale factor of the generated data")
		files    = flag.Int("files", 8, "lpq files per table")
		seed     = flag.Int64("seed", 42, "data generation seed")
		inflight = flag.Int("max-inflight", 64, "deployment-wide in-flight invocation cap (0 = uncapped legacy pacing)")
		cache    = flag.Int("cache", 32, "result cache entries (0 disables caching)")
		parts    = flag.Int("partitions", 0, "exchange boundary fan-in (0 = autotune)")
		window   = flag.Duration("window", 100*time.Millisecond, "DES request batching window (with -mode des)")
		smoke    = flag.Bool("smoke", false, "self-test: start the service, run queries against it, verify, exit")
	)
	flag.Parse()

	if err := run(*addr, *mode, *sf, *files, *seed, *inflight, *cache, *parts, *window, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "lambada-serve:", err)
		os.Exit(1)
	}
}

func run(addr, mode string, sf float64, files int, seed int64, inflight, cache, parts int, window time.Duration, smoke bool) error {
	cfg := driver.DefaultConfig()
	cfg.MaxInFlight = inflight
	cfg.ResultCacheEntries = cache

	var dep *driver.Deployment
	var runner service.Runner
	switch mode {
	case "des":
		k := simclock.New()
		dep = driver.NewSimulated(k, seed)
		cfg.PollInterval = 50 * time.Millisecond
		r := service.NewDESRunner(k, window)
		go r.Serve()
		defer r.Close()
		runner = r
	case "local":
		dep = driver.NewLocal()
		runner = service.GoRunner{}
	default:
		return fmt.Errorf("unknown -mode %q (local or des)", mode)
	}

	sess := driver.NewSession(dep, cfg)
	tables := driver.TableFiles{}
	fmt.Printf("installing worker function and generating TPC-H data at SF %g...\n", sf)
	if err := runner.Run(func(env simenv.Env) error {
		if err := sess.Install(); err != nil {
			return err
		}
		g := tpch.Gen{SF: sf, Seed: seed}
		li := g.Generate()
		opts := lpq.WriterOptions{RowGroupRows: 65536, Compression: lpq.Gzip}
		refs, err := sess.UploadTable(env, "tpch", "lineitem", li, files, opts)
		if err != nil {
			return err
		}
		tables["lineitem"] = refs
		of := files / 2
		if of < 1 {
			of = 1
		}
		orefs, err := sess.UploadTable(env, "tpch", "orders", g.OrdersFor(li), of, opts)
		if err != nil {
			return err
		}
		tables["orders"] = orefs
		return nil
	}); err != nil {
		return err
	}

	scfg := driver.DefaultStageConfig()
	scfg.Partitions = parts
	srv := service.New(service.Config{
		Session: sess,
		Runner:  runner,
		Tables:  tables,
		SF:      sf,
		Stage:   scfg,
		Queries: map[string]string{"q1": q1SQL, "q6": q6SQL, "q12": q12SQL},
	})

	if smoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	if !smoke {
		fmt.Printf("resident query service on http://%s (POST /query, /invalidate; GET /session, /stats)\n", ln.Addr())
		return hs.Serve(ln)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	if err := runSmoke("http://" + ln.Addr().String()); err != nil {
		return err
	}
	hs.Close()
	<-errc
	fmt.Println("smoke test passed")
	return nil
}

// runSmoke drives the CI smoke sequence against a live service: a fresh
// query, a repeat that must hit the result cache, a second query shape, an
// invalidation, and the session statistics.
func runSmoke(base string) error {
	q6a, err := postQuery(base, service.QueryRequest{Name: "q6"})
	if err != nil {
		return fmt.Errorf("q6: %w", err)
	}
	if len(q6a.Rows) != 1 || q6a.Profile.CacheHit || q6a.Profile.Workers == 0 {
		return fmt.Errorf("q6 first run: rows=%d profile=%+v", len(q6a.Rows), q6a.Profile)
	}
	if q6a.QaaS == nil {
		return fmt.Errorf("q6 response missing QaaS comparison")
	}
	fmt.Printf("q6: revenue=%v  %.0fms  $%.6f (athena $%.4f, bigquery $%.4f)\n",
		q6a.Rows[0][0], float64(q6a.Profile.DurationNs)/1e6, q6a.Profile.BilledUSD,
		q6a.QaaS.AthenaUSD, q6a.QaaS.BigQueryUSD)

	q6b, err := postQuery(base, service.QueryRequest{Name: "q6"})
	if err != nil {
		return fmt.Errorf("q6 repeat: %w", err)
	}
	if !q6b.Profile.CacheHit {
		return fmt.Errorf("q6 repeat missed the result cache")
	}
	if fmt.Sprint(q6b.Rows) != fmt.Sprint(q6a.Rows) {
		return fmt.Errorf("cached q6 rows diverge")
	}
	fmt.Println("q6 repeat: served from result cache")

	q12, err := postQuery(base, service.QueryRequest{Name: "q12"})
	if err != nil {
		return fmt.Errorf("q12: %w", err)
	}
	if len(q12.Rows) == 0 {
		return fmt.Errorf("q12 returned no rows")
	}
	fmt.Printf("q12: %d groups, %d workers over %d stages\n",
		len(q12.Rows), q12.Profile.Workers, q12.Profile.Stages)

	resp, err := http.Post(base+"/invalidate", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/invalidate: %d", resp.StatusCode)
	}

	sresp, err := http.Get(base + "/session")
	if err != nil {
		return err
	}
	defer sresp.Body.Close()
	var sj service.SessionJSON
	if err := json.NewDecoder(sresp.Body).Decode(&sj); err != nil {
		return err
	}
	if sj.Queries != 3 || sj.CacheHits != 1 {
		return fmt.Errorf("session stats = %+v, want 3 queries / 1 cache hit", sj)
	}
	fmt.Printf("session: %d queries, %d/%d cache hits/misses, admission peak %d/%d\n",
		sj.Queries, sj.CacheHits, sj.CacheMisses, sj.Peak, sj.Capacity)

	// Two concurrent requests on the warm session: under -mode des the
	// runner batches them into one interleaved virtual-time run, under
	// -mode local they share the fleet under the admission cap. Either
	// way the rows must agree and each response must carry a profile.
	type cres struct {
		r   *service.QueryResponse
		err error
	}
	ch := make(chan cres, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := postQuery(base, service.QueryRequest{Name: "q1"})
			ch <- cres{r, err}
		}()
	}
	ca, cb := <-ch, <-ch
	if ca.err != nil {
		return fmt.Errorf("concurrent q1: %w", ca.err)
	}
	if cb.err != nil {
		return fmt.Errorf("concurrent q1: %w", cb.err)
	}
	if len(ca.r.Rows) == 0 || fmt.Sprint(ca.r.Rows) != fmt.Sprint(cb.r.Rows) {
		return fmt.Errorf("concurrent q1 rows diverge: %d vs %d rows", len(ca.r.Rows), len(cb.r.Rows))
	}
	if ca.r.Profile.QueryID == "" || cb.r.Profile.QueryID == "" {
		return fmt.Errorf("concurrent q1 response missing profile query ID")
	}
	fmt.Printf("concurrent q1 x2: %d rows each, identical\n", len(ca.r.Rows))
	return nil
}

func postQuery(base string, req service.QueryRequest) (*service.QueryResponse, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var qr service.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		return nil, err
	}
	return &qr, nil
}
