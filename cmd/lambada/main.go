// Command lambada runs SQL queries on a simulated serverless deployment:
// it generates TPC-H LINEITEM data, uploads it to simulated S3 as lpq files,
// installs the worker function, executes the query on the fleet, and prints
// the result with a latency and cost report.
//
// Usage:
//
//	lambada -sf 0.01 -files 16 -query q1
//	lambada -query "SELECT COUNT(*) AS n FROM lineitem" -mode des
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/driver"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/obs"
	"lambada/internal/qaas"
	"lambada/internal/simclock"
	"lambada/internal/sqlfe"
	"lambada/internal/tpch"
)

const q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const q6SQL = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`

// joinSQL is the canonical broadcast-join shape: LINEITEM (big, on S3)
// INNER JOIN SUPPLIER (small, shipped from the driver), revenue per nation.
const joinSQL = `
SELECT s_nationkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem INNER JOIN supplier ON lineitem.l_suppkey = supplier.s_suppkey
GROUP BY s_nationkey
ORDER BY s_nationkey`

// q12SQL is the TPC-H Query 12-shaped two-large-sides join: LINEITEM
// INNER JOIN ORDERS, late lineitems per order priority. With -exchange the
// stage planner shuffles both sides through S3 (neither fits a broadcast
// at scale); without it ORDERS is broadcast like any small side.
const q12SQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_extendedprice) AS total
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1996-01-01'
  AND l_commitdate < l_receiptdate
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

func main() {
	var (
		sf       = flag.Float64("sf", 0.005, "TPC-H scale factor of the generated LINEITEM data")
		files    = flag.Int("files", 8, "number of lpq files the table is stored as")
		query    = flag.String("query", "q1", "q1, q6, join, q12 (two-large-sides join), or a SQL string over lineitem, supplier, orders")
		memory   = flag.Int("m", 1792, "worker memory in MiB")
		fPerW    = flag.Int("f", 1, "files per worker")
		tree     = flag.Bool("tree", true, "use the two-level invocation tree")
		gz       = flag.Bool("gzip", true, "GZIP-compress column chunks")
		mode     = flag.String("mode", "local", "local (goroutine workers) or des (virtual-time simulation)")
		seed     = flag.Int64("seed", 42, "data generation seed")
		explain  = flag.Bool("v", false, "print per-worker processing times")
		useXchg  = flag.Bool("exchange", false, "run through the stage planner: joins shuffle through the serverless exchange when both sides are large, grouped aggregations repartition on their group keys")
		parts    = flag.Int("partitions", 0, "exchange boundary fan-in (workers per join/final-merge stage, with -exchange); 0 = autotune from footer row counts")
		bcast    = flag.Int64("broadcast-limit", 0, "build sides up to this many rows broadcast instead of shuffling (0 = default, negative = always shuffle; with -exchange)")
		pipe     = flag.Bool("pipelined", true, "launch consumer stages before their producers seal (with -exchange); false = wave-gated launch")
		spec     = flag.Bool("speculate", false, "re-invoke stragglers as backup attempts once a quorum reported (single-scope and staged runs)")
		stgWait  = flag.Duration("max-stage-wait", time.Minute, "no-progress liveness cap: a runnable stage with no worker response for this long (window restarts per response) has its missing workers re-invoked as the next attempt (with -exchange -speculate; 0 disables)")
		xlevels  = flag.Int("exchange-levels", 0, "force every stage boundary's round count: 1 = single-round, 2 = multi-level (intermediate regroup round); 0 = resolve per boundary from the analytic request model (with -exchange)")
		xcomb    = flag.Bool("exchange-combining", true, "write-combine boundary publishes: one combined object per sender with part offsets in the name (with -exchange)")
		maxParts = flag.Int("max-partitions", 0, "cap the autotuned boundary fan-in (0 = stageplan default; with -exchange -partitions 0)")
		fplan    = flag.String("fault-plan", "", "JSON fault plan file injected into the simulated substrate (with -mode des); see internal/awssim/faults")
		fseed    = flag.Int64("fault-seed", 0, "override the fault plan's seed (0 = keep the plan's own; with -fault-plan)")
		profile  = flag.Bool("profile", false, "EXPLAIN ANALYZE: record a trace and print the per-stage profile and critical path")
		traceOut = flag.String("trace-out", "", "write the query's Chrome trace-event JSON to this file (implies tracing; open in Perfetto or chrome://tracing)")
	)
	flag.Parse()

	sql := *query
	switch strings.ToLower(sql) {
	case "q1":
		sql = q1SQL
	case "q6":
		sql = q6SQL
	case "join":
		sql = joinSQL
	case "q12":
		sql = q12SQL
	}
	plan, perr := sqlfe.Parse(sql)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "lambada:", perr)
		os.Exit(2)
	}
	// Tables beyond lineitem (supplier, orders) are generated alongside it:
	// without -exchange they broadcast from the driver; with -exchange they
	// upload to S3 and the stage planner picks broadcast or shuffle per
	// join from the footer row counts.
	tables := planTables(plan, nil)
	if !tables["lineitem"] {
		fmt.Fprintln(os.Stderr, "lambada: query must scan the lineitem table")
		os.Exit(2)
	}
	for t := range tables {
		if t != "lineitem" && t != "supplier" && t != "orders" {
			fmt.Fprintf(os.Stderr, "lambada: unknown table %q (have lineitem, supplier, orders)\n", t)
			os.Exit(2)
		}
	}

	comp := lpq.None
	if *gz {
		comp = lpq.Gzip
	}
	cfg := driver.DefaultConfig()
	cfg.WorkerMemoryMiB = *memory
	cfg.FilesPerWorker = *fPerW
	cfg.TreeInvoke = *tree
	if *spec {
		cfg.Speculate = driver.DefaultSpeculateConfig()
	}

	run := func(dep *driver.Deployment, env simenv.Env) error {
		if *profile || *traceOut != "" {
			dep.EnableTracing(obs.New())
		}
		d := driver.New(dep, env, cfg)
		if err := d.Install(); err != nil {
			return err
		}
		fmt.Printf("generating LINEITEM at SF %g (%d rows)...\n", *sf, tpch.Gen{SF: *sf}.NumRows())
		g := tpch.Gen{SF: *sf, Seed: *seed}
		data := g.Generate()
		refs, err := d.UploadTable("tpch", "lineitem", data, *files, lpq.WriterOptions{RowGroupRows: 65536, Compression: comp})
		if err != nil {
			return err
		}
		aux := map[string]*columnar.Chunk{}
		if tables["supplier"] {
			aux["supplier"] = g.Supplier()
		}
		if tables["orders"] {
			aux["orders"] = g.OrdersFor(data)
		}
		var out *columnar.Chunk
		var rep *driver.Report
		switch {
		case *useXchg:
			// Staged execution: every table lives on S3; the planner picks
			// broadcast or shuffle per join from the footer row counts.
			tf := driver.TableFiles{"lineitem": refs}
			for name, chunk := range aux {
				nf := *files / 2
				if nf < 1 {
					nf = 1
				}
				fmt.Printf("uploading %s (%d rows, %d files)\n", strings.ToUpper(name), chunk.NumRows(), nf)
				tf[name], err = d.UploadTable("tpch", name, chunk, nf, lpq.WriterOptions{RowGroupRows: 65536, Compression: comp})
				if err != nil {
					return err
				}
			}
			fmt.Printf("uploaded %s total\n", byteSize(dep.S3.TotalBytes("tpch")))
			scfg := driver.DefaultStageConfig()
			scfg.Partitions = *parts
			scfg.BroadcastRowLimit = *bcast
			scfg.Pipelined = *pipe
			scfg.MaxStageWait = *stgWait
			scfg.ExchangeLevels = *xlevels
			scfg.Exchange.Variant.WriteCombining = *xcomb
			scfg.MaxAutoPartitions = *maxParts
			out, rep, err = d.RunPlanStaged(plan, tf, scfg)
		case len(aux) > 0:
			fmt.Printf("uploaded %d files (%s total)\n", len(refs), byteSize(dep.S3.TotalBytes("tpch")))
			for name, chunk := range aux {
				fmt.Printf("broadcasting %s (%d rows) with every worker payload\n", strings.ToUpper(name), chunk.NumRows())
			}
			out, rep, err = d.RunPlanBroadcast(plan, "lineitem", refs, aux)
		default:
			fmt.Printf("uploaded %d files (%s total)\n", len(refs), byteSize(dep.S3.TotalBytes("tpch")))
			out, rep, err = d.RunPlan(plan, "lineitem", refs)
		}
		if err != nil {
			return err
		}
		printChunk(out)
		fmt.Println()
		driver.WriteReport(os.Stdout, rep, driver.RenderOptions{Verbose: *explain, Profile: *profile})
		if spec, ok := qaas.SpecFor(*query); ok {
			fmt.Print(qaas.Compare(spec, *sf, pricing.USD(rep.TotalCost), rep.Duration))
		}
		if *traceOut != "" {
			f, ferr := os.Create(*traceOut)
			if ferr != nil {
				return ferr
			}
			if ferr := obs.ExportChromeTrace(f, rep.Trace.Spans()); ferr != nil {
				f.Close()
				return ferr
			}
			if ferr := f.Close(); ferr != nil {
				return ferr
			}
			fmt.Printf("trace written to %s\n", *traceOut)
		}
		return nil
	}

	var chaosPlan faults.Plan
	if *fplan != "" {
		if *mode != "des" {
			fmt.Fprintln(os.Stderr, "lambada: -fault-plan requires -mode des (faults replay in virtual time)")
			os.Exit(2)
		}
		raw, rerr := os.ReadFile(*fplan)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "lambada:", rerr)
			os.Exit(2)
		}
		chaosPlan, rerr = faults.ParsePlan(raw)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "lambada: %s: %v\n", *fplan, rerr)
			os.Exit(2)
		}
		if *fseed != 0 {
			chaosPlan.Seed = *fseed
		}
	}

	var err error
	if *mode == "des" {
		k := simclock.New()
		k.Go("driver", func(p *simclock.Proc) {
			dep := driver.NewSimulated(k, *seed)
			if *fplan != "" {
				dep = driver.NewChaos(k, *seed, chaosPlan)
			}
			if e := run(dep, p); e != nil {
				err = e
			}
		})
		k.Run()
	} else {
		err = run(driver.NewLocal(), simenv.NewImmediate())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lambada:", err)
		os.Exit(1)
	}
}

// planTables collects every table the plan scans (join build sides
// included).
func planTables(p engine.Plan, dst map[string]bool) map[string]bool {
	if dst == nil {
		dst = map[string]bool{}
	}
	engine.VisitScans(p, func(s *engine.ScanPlan) { dst[s.Table] = true })
	return dst
}

func printChunk(c *columnar.Chunk) {
	for _, f := range c.Schema.Fields {
		fmt.Printf("%-18s", f.Name)
	}
	fmt.Println()
	for i := 0; i < c.NumRows(); i++ {
		for j, col := range c.Columns {
			switch c.Schema.Fields[j].Type {
			case columnar.Int64:
				fmt.Printf("%-18d", col.Int64s[i])
			case columnar.Float64:
				fmt.Printf("%-18.4f", col.Float64s[i])
			default:
				fmt.Printf("%-18v", col.Bools[i])
			}
		}
		fmt.Println()
	}
}

func byteSize(n int64) string {
	switch {
	case n > 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n > 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
