// Command lambada runs SQL queries on a simulated serverless deployment:
// it generates TPC-H LINEITEM data, uploads it to simulated S3 as lpq files,
// installs the worker function, executes the query on the fleet, and prints
// the result with a latency and cost report.
//
// Usage:
//
//	lambada -sf 0.01 -files 16 -query q1
//	lambada -query "SELECT COUNT(*) AS n FROM lineitem" -mode des
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/driver"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/sqlfe"
	"lambada/internal/tpch"
)

const q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const q6SQL = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`

// joinSQL is the canonical broadcast-join shape: LINEITEM (big, on S3)
// INNER JOIN SUPPLIER (small, shipped from the driver), revenue per nation.
const joinSQL = `
SELECT s_nationkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem INNER JOIN supplier ON lineitem.l_suppkey = supplier.s_suppkey
GROUP BY s_nationkey
ORDER BY s_nationkey`

func main() {
	var (
		sf      = flag.Float64("sf", 0.005, "TPC-H scale factor of the generated LINEITEM data")
		files   = flag.Int("files", 8, "number of lpq files the table is stored as")
		query   = flag.String("query", "q1", "q1, q6, join, or a SQL string (join SQL may reference the broadcast table 'supplier')")
		memory  = flag.Int("m", 1792, "worker memory in MiB")
		fPerW   = flag.Int("f", 1, "files per worker")
		tree    = flag.Bool("tree", true, "use the two-level invocation tree")
		gz      = flag.Bool("gzip", true, "GZIP-compress column chunks")
		mode    = flag.String("mode", "local", "local (goroutine workers) or des (virtual-time simulation)")
		seed    = flag.Int64("seed", 42, "data generation seed")
		explain = flag.Bool("v", false, "print per-worker processing times")
		useXchg = flag.Bool("exchange", false, "merge grouped aggregations through the serverless exchange instead of the driver")
	)
	flag.Parse()

	sql := *query
	switch strings.ToLower(sql) {
	case "q1":
		sql = q1SQL
	case "q6":
		sql = q6SQL
	case "join":
		sql = joinSQL
	}
	plan, perr := sqlfe.Parse(sql)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "lambada:", perr)
		os.Exit(2)
	}
	// Any query whose plan scans the supplier table gets it broadcast from
	// the driver into the worker payloads.
	needsSupplier := planTables(plan, nil)["supplier"]
	if needsSupplier && *useXchg {
		fmt.Fprintln(os.Stderr, "lambada: -exchange does not support broadcast-join queries (the exchange path ships no broadcast tables)")
		os.Exit(2)
	}

	comp := lpq.None
	if *gz {
		comp = lpq.Gzip
	}
	cfg := driver.DefaultConfig()
	cfg.WorkerMemoryMiB = *memory
	cfg.FilesPerWorker = *fPerW
	cfg.TreeInvoke = *tree

	run := func(dep *driver.Deployment, env simenv.Env) error {
		d := driver.New(dep, env, cfg)
		if err := d.Install(); err != nil {
			return err
		}
		fmt.Printf("generating LINEITEM at SF %g (%d rows)...\n", *sf, tpch.Gen{SF: *sf}.NumRows())
		data := tpch.Gen{SF: *sf, Seed: *seed}.Generate()
		refs, err := d.UploadTable("tpch", "lineitem", data, *files, lpq.WriterOptions{RowGroupRows: 65536, Compression: comp})
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %d files (%s total)\n", len(refs), byteSize(dep.S3.TotalBytes("tpch")))
		var out *columnar.Chunk
		var rep *driver.Report
		switch {
		case *useXchg:
			out, rep, err = d.RunPlanExchanged(plan, "lineitem", refs, driver.DefaultExchangeConfig())
		case needsSupplier:
			sup := tpch.Gen{SF: *sf, Seed: *seed}.Supplier()
			fmt.Printf("broadcasting SUPPLIER (%d rows) with every worker payload\n", sup.NumRows())
			out, rep, err = d.RunPlanBroadcast(plan, "lineitem", refs,
				map[string]*columnar.Chunk{"supplier": sup})
		default:
			out, rep, err = d.RunPlan(plan, "lineitem", refs)
		}
		if err != nil {
			return err
		}
		printChunk(out)
		fmt.Printf("\nworkers: %d   latency: %v   invocation: %v   cold: %d\n",
			rep.Workers, rep.Duration.Round(time.Millisecond), rep.Invocation.Round(time.Millisecond), rep.ColdWorkers)
		fmt.Printf("query cost: $%.6f\n", rep.TotalCost)
		for _, l := range sortedKeys(rep.CostDelta) {
			fmt.Printf("  %-20s $%.6f\n", l, rep.CostDelta[l])
		}
		if *explain {
			fmt.Println("worker processing times (sorted):")
			for i, t := range rep.WorkerProcessing {
				fmt.Printf("  worker[%3d] %v\n", i, t.Round(time.Millisecond))
			}
		}
		return nil
	}

	var err error
	if *mode == "des" {
		k := simclock.New()
		k.Go("driver", func(p *simclock.Proc) {
			if e := run(driver.NewSimulated(k, *seed), p); e != nil {
				err = e
			}
		})
		k.Run()
	} else {
		err = run(driver.NewLocal(), simenv.NewImmediate())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lambada:", err)
		os.Exit(1)
	}
}

// planTables collects every table the plan scans (join build sides
// included).
func planTables(p engine.Plan, dst map[string]bool) map[string]bool {
	if dst == nil {
		dst = map[string]bool{}
	}
	for n := p; n != nil; n = n.Child() {
		if s, ok := n.(*engine.ScanPlan); ok {
			dst[s.Table] = true
		}
		if j, ok := n.(*engine.JoinPlan); ok {
			planTables(j.Right, dst)
		}
	}
	return dst
}

func printChunk(c *columnar.Chunk) {
	for _, f := range c.Schema.Fields {
		fmt.Printf("%-18s", f.Name)
	}
	fmt.Println()
	for i := 0; i < c.NumRows(); i++ {
		for j, col := range c.Columns {
			switch c.Schema.Fields[j].Type {
			case columnar.Int64:
				fmt.Printf("%-18d", col.Int64s[i])
			case columnar.Float64:
				fmt.Printf("%-18.4f", col.Float64s[i])
			default:
				fmt.Printf("%-18v", col.Bools[i])
			}
		}
		fmt.Println()
	}
}

func byteSize(n int64) string {
	switch {
	case n > 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n > 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
