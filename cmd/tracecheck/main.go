// Command tracecheck validates a Chrome trace-event JSON file against the
// schema subset the obs package emits. It prints the event count and exits
// non-zero on any violation — the CI gate behind `make trace-smoke`.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"fmt"
	"os"

	"lambada/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	n, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid trace, %d events\n", os.Args[1], n)
}
