// Command benchjson runs `go test -bench` over the given packages and
// writes the parsed results as JSON — one record per benchmark with ns/op,
// B/op and allocs/op — so every PR can append a machine-readable point to
// the repo's perf trajectory (BENCH_PR<N>.json files at the repo root).
//
// Usage:
//
//	benchjson [-out bench.json] [-bench regex] [-benchtime 300ms] pkg...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	MBPerSec    float64 `json:"mb_s,omitempty"`
	BytesPerOp  int64   `json:"b_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_op,omitempty"`
}

// Report is the emitted file.
type Report struct {
	GoVersion string `json:"go_version"`
	// NumCPU records the runner's CPU count: parallel speedups measured on
	// a 1-CPU container are meaningless, so trajectory comparisons must
	// only line up points with matching num_cpu.
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	Packages   []string `json:"packages"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkHashJoin/pipelines=1-8   3  18752928 ns/op  665.63 MB/s  82427112 B/op  1247 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

var pkgLine = regexp.MustCompile(`^(?:ok|PASS|FAIL)\s+(\S+)`)

func main() {
	out := flag.String("out", "bench.json", "output JSON path")
	bench := flag.String("bench", ".", "benchmark regex passed to -bench")
	benchtime := flag.String("benchtime", "300ms", "benchtime passed to go test")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/engine", "./internal/scan", "./internal/exchange"}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
		Packages:   pkgs,
	}
	// One `go test` per package so every result line can be attributed.
	for _, pkg := range pkgs {
		args := []string{"test", "-run", "NONE", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, pkg}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, parse(buf.String(), pkg)...)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parse extracts benchmark lines from go test output.
func parse(out, fallbackPkg string) []Result {
	var rs []Result
	pkg := fallbackPkg
	var pending []int // indices awaiting the package name printed at the end
	for _, line := range strings.Split(out, "\n") {
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			for _, i := range pending {
				rs[i].Package = m[1]
			}
			pending = pending[:0]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.MBPerSec, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		pending = append(pending, len(rs))
		rs = append(rs, r)
	}
	return rs
}
