// Command benchjson runs `go test -bench` over the given packages and
// writes the parsed results as JSON — one record per benchmark with ns/op,
// B/op, allocs/op and any custom metrics (e.g. vms/op, virtual DES
// latency) — so every PR can append a machine-readable point to the repo's
// perf trajectory (BENCH_PR<N>.json files at the repo root).
//
// Because parallel speedups measured on different CPU counts are not
// comparable, benchjson records the runner's num_cpu and, when given the
// previous PR's file via -baseline, flags a num_cpu mismatch in the output
// (and on stderr); -require-same-cpu turns the flag into a refusal.
//
// Usage:
//
//	benchjson [-out bench.json] [-bench regex] [-benchtime 300ms] [-timeout 30m]
//	          [-baseline BENCH_PR3.json] [-require-same-cpu] pkg...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	MBPerSec    float64 `json:"mb_s,omitempty"`
	BytesPerOp  int64   `json:"b_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_op,omitempty"`
	// Extra holds custom metrics reported via b.ReportMetric, keyed by
	// unit (e.g. "vms/op" for modeled DES latency).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Baseline records the comparability check against a previous PR's file.
type Baseline struct {
	File   string `json:"file"`
	NumCPU int    `json:"num_cpu"`
	// Comparable is false when the baseline ran on a different CPU count —
	// parallel ns/op points must not be lined up across such files.
	Comparable bool `json:"comparable"`
}

// Report is the emitted file.
type Report struct {
	GoVersion string `json:"go_version"`
	// NumCPU records the runner's CPU count: parallel speedups measured on
	// a 1-CPU container are meaningless, so trajectory comparisons must
	// only line up points with matching num_cpu.
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Benchtime  string    `json:"benchtime"`
	Packages   []string  `json:"packages"`
	Baseline   *Baseline `json:"baseline,omitempty"`
	Benchmarks []Result  `json:"benchmarks"`
}

// benchLine matches the name and iteration count; the metrics after them
// are tokenized as (value, unit) pairs, so custom b.ReportMetric units
// survive alongside ns/op, MB/s, B/op and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)`)

var pkgLine = regexp.MustCompile(`^(?:ok|PASS|FAIL)\s+(\S+)`)

func main() {
	out := flag.String("out", "bench.json", "output JSON path")
	bench := flag.String("bench", ".", "benchmark regex passed to -bench")
	benchtime := flag.String("benchtime", "300ms", "benchtime passed to go test")
	timeout := flag.String("timeout", "30m", "per-package go test timeout (the driver fleet sweep outlives the 10m default)")
	baseline := flag.String("baseline", "", "previous BENCH_PR<N>.json to check num_cpu comparability against")
	requireCPU := flag.Bool("require-same-cpu", false, "refuse (exit 1) when the baseline's num_cpu differs instead of flagging it")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/engine", "./internal/scan", "./internal/exchange"}
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
		Packages:   pkgs,
	}
	if *baseline != "" {
		if bl := checkBaseline(*baseline, rep.NumCPU); bl != nil {
			rep.Baseline = bl
			if !bl.Comparable {
				fmt.Fprintf(os.Stderr, "benchjson: baseline %s ran on %d CPUs, this runner has %d — cross-num_cpu comparisons are meaningless\n",
					*baseline, bl.NumCPU, rep.NumCPU)
				if *requireCPU {
					os.Exit(1)
				}
			}
		}
	}
	// One `go test` per package so every result line can be attributed.
	for _, pkg := range pkgs {
		args := []string{"test", "-run", "NONE", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, "-timeout", *timeout, pkg}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, parse(buf.String(), pkg)...)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// checkBaseline reads a previous report's num_cpu. A missing or unreadable
// baseline is not an error (first run on a new machine): it returns nil.
func checkBaseline(path string, numCPU int) *Baseline {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline %s (%v), skipping comparability check\n", path, err)
		return nil
	}
	var prev struct {
		NumCPU int `json:"num_cpu"`
	}
	if err := json.Unmarshal(blob, &prev); err != nil || prev.NumCPU == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s has no num_cpu, skipping comparability check\n", path)
		return nil
	}
	return &Baseline{File: path, NumCPU: prev.NumCPU, Comparable: prev.NumCPU == numCPU}
}

// parse extracts benchmark lines from go test output.
func parse(out, fallbackPkg string) []Result {
	var rs []Result
	pkg := fallbackPkg
	var pending []int // indices awaiting the package name printed at the end
	for _, line := range strings.Split(out, "\n") {
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			for _, i := range pending {
				rs[i].Package = m[1]
			}
			pending = pending[:0]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerSec = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		pending = append(pending, len(rs))
		rs = append(rs, r)
	}
	return rs
}
