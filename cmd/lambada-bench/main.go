// Command lambada-bench regenerates every table and figure of the paper's
// evaluation, printing the same rows/series the paper reports.
//
// Usage:
//
//	lambada-bench            # everything
//	lambada-bench -exp fig5  # one experiment
//	lambada-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lambada/internal/experiments"
)

type exp struct {
	name string
	desc string
	run  func(seed int64) (string, error)
}

var all = []exp{
	{"fig1a", "Job-scoped IaaS vs FaaS cost/time frontier", func(int64) (string, error) {
		return experiments.Figure1aFigure().Render(), nil
	}},
	{"fig1b", "Always-on VMs vs QaaS vs FaaS hourly cost", func(int64) (string, error) {
		return experiments.Figure1b(experiments.DefaultFigure1b()).Render(), nil
	}},
	{"table1", "Invocation characteristics per region", func(int64) (string, error) {
		return experiments.Table1().Render(), nil
	}},
	{"fig4", "Compute performance vs memory size", func(int64) (string, error) {
		return experiments.Figure4().Render(), nil
	}},
	{"fig5", "Two-level invocation of 4096 workers (DES)", func(seed int64) (string, error) {
		cfg := experiments.DefaultFigure5()
		cfg.Seed = seed
		res := experiments.Figure5(cfg)
		s := experiments.Figure5Figure(res).Render()
		s += fmt.Sprintf("last invocation initiated: %v\nall workers running: %v\ndriver-only estimate: %v\n",
			res.LastInitiated, res.AllRunning, res.DirectEstimate)
		return s, nil
	}},
	{"fig6", "Worker ingress bandwidth (large/small files)", func(int64) (string, error) {
		large, small := experiments.Figure6()
		return large.Render() + small.Render(), nil
	}},
	{"fig7", "Chunk size vs bandwidth and request cost", func(int64) (string, error) {
		return experiments.Figure7Table().Render(), nil
	}},
	{"fig9", "Exchange request costs per variant", func(int64) (string, error) {
		return experiments.Figure9().Render(), nil
	}},
	{"table2", "Exchange cost models", func(int64) (string, error) {
		return experiments.Table2().Render(), nil
	}},
	{"fig10", "Q1 cost vs time varying M and F", func(seed int64) (string, error) {
		return experiments.Figure10(experiments.DefaultLambadaModel(), seed).Render(), nil
	}},
	{"fig11", "Per-worker processing time distribution", func(seed int64) (string, error) {
		fig := experiments.Figure11(experiments.DefaultLambadaModel(), seed)
		// The full distribution has 320 points per query; summarize.
		s := fmt.Sprintf("== %s: %s ==\n", fig.ID, fig.Title)
		for _, series := range fig.Series {
			n := len(series.Points)
			s += fmt.Sprintf("-- %s: p0=%.2fs p25=%.2fs p50=%.2fs p75=%.2fs p100=%.2fs\n",
				series.Label,
				series.Points[0].Y, series.Points[n/4].Y, series.Points[n/2].Y,
				series.Points[3*n/4].Y, series.Points[n-1].Y)
		}
		return s, nil
	}},
	{"fig12", "Lambada vs Athena vs BigQuery", func(seed int64) (string, error) {
		return experiments.Figure12Table(experiments.DefaultLambadaModel(), seed).Render(), nil
	}},
	{"table3", "Exchange runtime vs Pocket/Locus (100 GB, DES)", func(seed int64) (string, error) {
		t, err := experiments.Table3(seed)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	}},
	{"shuffles", "TB-scale exchange runtimes (§5.5, DES)", func(seed int64) (string, error) {
		t, err := experiments.LargeShuffles(seed)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	}},
	{"fig13", "Exchange breakdown and stragglers (DES)", func(seed int64) (string, error) {
		t, err := experiments.Figure13Table(seed)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	}},
	{"session", "Usage-model session economics (Figure 2 synthesis)", func(seed int64) (string, error) {
		cfg := experiments.DefaultSession()
		cfg.Seed = seed
		return experiments.SessionTable(cfg).Render(), nil
	}},
}

func main() {
	var (
		which = flag.String("exp", "all", "experiment name or 'all'")
		seed  = flag.Int64("seed", 1, "simulation seed")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range all {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return
	}
	ran := 0
	for _, e := range all {
		if *which != "all" && !strings.EqualFold(*which, e.name) {
			continue
		}
		out, err := e.run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lambada-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "lambada-bench: unknown experiment %q (use -list)\n", *which)
		os.Exit(1)
	}
}
