// Command lpqtool generates and inspects lpq ("Lambada Parquet") files.
//
// Usage:
//
//	lpqtool gen -o lineitem.lpq -sf 0.01 -gzip
//	lpqtool inspect lineitem.lpq
package main

import (
	"flag"
	"fmt"
	"os"

	"lambada/internal/csvio"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lpqtool gen|inspect|convert [flags]")
	os.Exit(2)
}

// convert re-encodes a LINEITEM CSV (as produced by `lpqtool gen -csv` or
// external tools) into lpq.
func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "lineitem.csv", "input CSV (LINEITEM schema)")
	out := fs.String("o", "lineitem.lpq", "output lpq file")
	gz := fs.Bool("gzip", true, "GZIP compression")
	rows := fs.Int("rowgroup", 65536, "rows per row group")
	fs.Parse(args)

	comp := lpq.None
	if *gz {
		comp = lpq.Gzip
	}
	src, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	dst, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	n, err := csvio.Convert(src, dst, tpch.Schema(), lpq.WriterOptions{RowGroupRows: *rows, Compression: comp})
	if err != nil {
		fatal(err)
	}
	if err := dst.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %d rows: %s -> %s\n", n, *in, *out)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "lineitem.lpq", "output file")
	sf := fs.Float64("sf", 0.01, "TPC-H scale factor")
	gz := fs.Bool("gzip", false, "GZIP compression")
	rows := fs.Int("rowgroup", 65536, "rows per row group")
	seed := fs.Int64("seed", 1, "generation seed")
	asCSV := fs.Bool("csv", false, "emit CSV instead of lpq")
	fs.Parse(args)

	comp := lpq.None
	if *gz {
		comp = lpq.Gzip
	}
	data := tpch.Gen{SF: *sf, Seed: *seed}.Generate()
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if *asCSV {
		if err := csvio.Write(f, data); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d rows (CSV)\n", *out, data.NumRows())
		return
	}
	w := lpq.NewWriter(f, tpch.Schema(), lpq.WriterOptions{RowGroupRows: *rows, Compression: comp})
	if err := w.Write(data); err != nil {
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d rows, %d row groups, %d bytes\n", *out, data.NumRows(), w.Meta().NumRowGroups(), w.Size())
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	verbose := fs.Bool("v", false, "per-column-chunk detail")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lpqtool inspect [-v] <file>")
		os.Exit(2)
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	r, err := lpq.OpenReader(f, st.Size())
	if err != nil {
		fatal(err)
	}
	m := r.Meta()
	fmt.Printf("%s: %d bytes, %d rows, %d row groups\n", path, st.Size(), m.TotalRows, m.NumRowGroups())
	fmt.Printf("schema: %s\n", m.Schema)
	for g, rg := range m.RowGroups {
		lo, hi := rg.ByteRange()
		fmt.Printf("row group %d: %d rows, bytes [%d, %d)\n", g, rg.NumRows, lo, hi)
		if !*verbose {
			continue
		}
		for c, cc := range rg.Columns {
			field := m.Schema.Fields[c]
			stats := ""
			if cc.Stats.HasMinMax {
				switch {
				case field.Type.String() == "DOUBLE":
					stats = fmt.Sprintf(" min=%g max=%g", cc.Stats.MinF, cc.Stats.MaxF)
				default:
					stats = fmt.Sprintf(" min=%d max=%d", cc.Stats.MinInt, cc.Stats.MaxInt)
				}
			}
			fmt.Printf("  %-18s %-5s %-4s %8d -> %8d bytes%s\n",
				field.Name, cc.Encoding, cc.Compression, cc.UncompressedLen, cc.CompressedLen, stats)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpqtool:", err)
	os.Exit(1)
}
