// Package lambada is a reproduction of "Lambada: Interactive Data Analytics
// on Cold Data using Serverless Cloud Infrastructure" (Müller, Marroquín,
// Alonso; SIGMOD 2020): a purely serverless query processing system — a
// local driver, thousands of FaaS workers, and communication exclusively
// through shared serverless storage — together with the simulated AWS
// substrate (S3, Lambda, SQS, DynamoDB on a deterministic discrete-event
// kernel) that the paper's evaluation is reproduced on.
//
// # Concurrency levels
//
// Each worker exploits concurrency at five levels — the paper's four scan
// levels (§4.3.2, Figure 8) plus a morsel-driven execution layer on top:
//
//	(5) file/pipeline parallelism: a bounded worker pool scans multiple lpq
//	    files concurrently (scan.Config.ParallelFiles) and the engine runs
//	    every plan on a pipeline-graph scheduler at N morsel workers
//	    (engine.ExecuteParallel, driver.Config.PipelineParallelism);
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) row groups double-buffered: download overlaps decompression;
//	(2) column chunks of a row group fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since
//	    extra requests cost money (Figure 7).
//
// # Price-aware scan layer
//
// S3 bills a scan on two axes — a fixed price per GET request and a linear
// price per byte — and the lpq v2 format plus the scan read path spend both
// deliberately (Figure 7's request-size trade-off, applied to dollars
// rather than bandwidth).
//
// An LPQ2 file extends every column chunk's footer entry with a distinct-
// count estimate and a page index: chunks longer than WriterOptions.PageRows
// are split into pages, each encoded and compressed independently, with
// per-page row counts, byte extents and min/max bounds. The index is stored
// compactly — lengths as uvarints with offsets reconstructed cumulatively,
// Int64/Bool bounds zigzag-encoded, Float64 bounds raw — because every
// reader downloads the footer before anything else. Page bounds are kept
// only when they can actually prune: if the average page value range
// exceeds half the chunk's range (an unclustered column), the writer drops
// the page stats and the pages carry extents alone. LPQ1 files remain fully
// readable; the footer read itself fetches a speculative tail sized to real
// footers (lpq.FooterGuess) so opening metadata never re-downloads a small
// object end to end.
//
// Scans with a residual filter run in two phases (late materialization):
// phase one fetches only the filter columns of the pages that survive
// zone-map pruning and evaluates the exact predicate; phase two fetches the
// payload columns only for pages where rows actually survived, then gathers
// the surviving rows. Each phase fetches one covering byte range per column
// — first kept page to last kept page — so per-column requests never exceed
// one and billed bytes never exceed the chunk. Across columns, ranges are
// batched through s3fs.File.ReadRanges, which coalesces them into spans
// when the gap is small (scan.Config.CoalesceGapBytes, default 128 KiB)
// and the accumulated hole bytes stay under 1/8 of the span — trading one
// fixed-price request against a bounded byte overhead, never an unbounded
// one. The same page index feeds planning: stage fan-out uses the
// pruning-aware lpq.EstimateRows instead of raw footer row counts, so
// selective queries launch fewer scan workers. scan.Stats and the driver
// Report expose the billed request and byte counters the cost-guard tests
// and BenchmarkStagedSelectiveScan assert on.
//
// # Pipeline-graph scheduler
//
// The engine has exactly one executor. A planner pass decomposes any plan
// into a DAG of pipelines — streamable scan/filter/project/join-probe
// chains terminated by breaker sinks (aggregate, sort, limit, collect) —
// with dependency edges: a join's build pipeline completes and its hash
// table seals before the probe pipeline starts. The scheduler runs ready
// pipelines as their dependencies finish, fanning each pipeline's morsels
// out to N workers; engine.Execute is the same scheduler at N = 1, running
// the whole graph inline without spawning a single goroutine (the form DES
// deployments require). There is no serial fallback path: joins, nested
// breakers and arbitrary operator chains all run morsel-parallel.
//
// Hash joins build a sealed-then-shared table in one of three key modes
// (mirroring the aggregation kernel's group-addressing matrix):
//
//	dense   single int64 key spanning a narrow range: direct-index CSR
//	int64   single wide int64 key: open addressing, partition-parallel build
//	string  multi-column keys: encoded-key map, partition-parallel build
//
// Float and bool join keys are rejected at planning time with
// engine.ErrJoinKey. Probes gather matches through selection vectors in
// (probe row, build row) order, so results are independent of worker count.
//
// Everything above level 1 is deterministic in its results: parallel scans
// deliver chunks in serial order, aggregation folds per-chunk partials in
// sequence order, collect sinks reassemble morsels in sequence order, and
// the limit sink takes the first N rows in sequence order — outputs are
// byte-identical to serial execution. In discrete-event-simulated
// deployments all levels are forced off (worker code must not spawn
// goroutines); the bandwidth shaper models their timing effect instead.
//
// # Stage planner and exchange data flow
//
// Queries whose shapes exceed one distribution scope — joins with two
// large sides, high-cardinality group-bys — run through the stage planner
// (internal/stageplan): the optimized plan is decomposed into a DAG of
// stages connected by exchange boundaries over S3 (§4.4).
//
//	scan stage      reads its file subset of one base table, applies the
//	                pushed-down filters/projections, and hash-partitions
//	                its output rows on the downstream join keys into P
//	                partition files (write-combined: one object per worker
//	                with cumulative offsets encoded in its name)
//	join stage      P workers; worker p collects partition p of both
//	                sides, builds the hash table on the build side and
//	                probes with the other — no worker sees a whole table
//	agg split       grouped aggregations split into a partial aggregate in
//	                the row-producing stage, a repartition on the group
//	                keys, and a final-merge stage owning each group whole
//
// The planner chooses broadcast-vs-shuffle per join from the lpq footer
// row counts: a genuinely small build side ships inside worker payloads as
// before, everything else shuffles. Boundary fan-in autotunes from the
// same row counts when unset (stageplan.AutoRowsPerPartition rows per
// partition, capped at stageplan.MaxAutoPartitions — raise the ceiling per
// query through driver.StageConfig.MaxAutoPartitions / -max-partitions
// when driving multi-thousand-worker fleets).
//
// # Multi-level exchange boundaries
//
// A single-round boundary with S senders and P receivers costs O(S·P) S3
// requests — the dominant bill at scale (§4.4's central observation). Each
// boundary therefore carries an exchange.Variant resolved independently per
// edge: stageplan.ChooseVariant prices every candidate with the exact
// analytic request model (exchange.Variant.Requests — puts, gets and lists
// as closed-form functions of S, P and the shard-bucket count) and keeps
// single-round for narrow edges while sending wide ones through the
// multi-level protocol (§4.4.2). Multi-level inserts one intermediate
// regroup round: senders write their P partition files grouped into
// G = exchange.Groups(P) ≈ √P combined objects, a synthetic regroup fleet of
// G workers (one per group, scheduled as a first-class stage with the same
// launch, seal, speculation and epoch machinery) merges each group's
// fragments into one object per group laying receiver slices contiguously,
// and each receiver range-reads exactly its slice from the G merged objects
// — O(S·G + P·G) requests instead of O(S·P). Attempt versioning carries
// through both rounds: a regroup worker merges each sender's first
// committed round-1 attempt, and its own output is attempt-versioned and
// committed the same way, so first-committed-attempt semantics and the
// epoch fence hold unchanged; the fence/speculation/chaos suites re-run
// over forced
// multi-level boundaries, and TestStagedQ12ScaleSmoke pins the billed
// request counts of a 1k-worker staged q12 to the model integer-exactly.
// -exchange-levels forces a round count (1 or 2) for ablations, and the
// profile output reports each boundary's resolved variant.
//
// Invocation itself is the other O(S·P) hazard: every stage's fleet
// launches through the invoke.TreeFanout protocol (first workers re-invoke
// the rest, §4.2), so driver-side launch work per stage is O(fanout) while
// the event loop stays O(1) per completion event at 4k workers.
//
// The driver runs the DAG on an event-driven stage scheduler (pending →
// launched → sealed) rather than in lock-step dependency waves. Every
// stage's payloads are computable up front, so under pipelined launch
// (StageConfig.Pipelined, the default) all eager stages are invoked the
// moment the query starts: consumer cold starts and invocation pacing
// overlap upstream execution, and the DynamoDB ready marker — written when
// the driver has seen every producer seal through the SQS result queue —
// gates each worker's collect instead of its launch. Wave-gated launch
// remains available for comparison (BenchmarkStagedWaves).
//
// Straggler speculation (§5.5's aggressive-timeouts-and-retries theme)
// applies per stage: once a quorum of a stage's workers sealed and a
// straggler outlives a multiple of the median response time, the scheduler
// re-invokes it as a new attempt. Exchange boundary names are versioned by
// attempt (s<stage>/p<part>/a<attempt>-snd<sender>, with a per-attempt
// commit marker; write-combining's single Put commits implicitly), so a
// backup never races the original's files: receivers take each sender's
// first committed attempt, and since fragments are deterministic, every
// attempt's files are byte-identical — whichever attempt wins, the rows
// collected are the same. The stale-drain collector (exchange.Sweep) purges
// the boundary namespace before a query (an identically-numbered aborted
// run on a fresh driver must not leak into its retry) and after it (loser
// attempts and winner files alike).
//
// Stage fragments are ordinary engine plans executed on the pipeline-graph
// scheduler, and every boundary preserves row order (partition rows in
// sender order, senders in ascending ID order, driver merges in worker
// order), so staged execution is fully deterministic — pipelined launch,
// speculation and all — and, for order-insensitive aggregates (COUNT,
// integer SUM, MIN/MAX) under an ORDER BY, byte-identical to single-node
// execution at any worker/partition/attempt count; floating-point SUM/AVG
// agree to last-ulp rounding, as the split changes the summation order.
//
// # Query-epoch fence
//
// The serverless model has no cluster membership, so nothing tells the
// driver that workers of an earlier run still exist. A fresh driver on the
// same deployment restarts query numbering, and while the pre-launch
// purge/sweep clears an aborted identically-numbered run's at-rest debris,
// one of its workers still in flight could post a seal — or publish
// boundary files — after that purge, under the same query ID. The epoch
// fence closes this structurally. Each staged query's lifecycle:
//
//	acquire   the driver atomically increments the query's epoch item in
//	          the <fn>-stages DynamoDB table (conditional Put; the durable
//	          counter itself is the uniqueness source — no wall clock, no
//	          randomness, so DES runs stay deterministic)
//	stamp     the epoch rides in every worker payload, every seal message,
//	          every ready-marker key (q<N>/e<E>/s<stage>) and the whole
//	          boundary namespace
//	          (<fn>/q<N>/e<E>/s<stage>/p<part>/a<attempt>-snd<sender>)
//	discard   the scheduler drops seal messages whose epoch is not the
//	          current one; consumers wait on this epoch's ready markers
//	          and collect under this epoch's prefix, so an older epoch's
//	          artifacts are invisible rather than merely improbable
//	sweep     purge/sweep still run — as hygiene: sweeps cover the query's
//	          whole prefix across epochs, reclaiming zombie debris
//	          whenever it lands
//
// A zombie worker of an aborted epoch can therefore wake at any time,
// publish anywhere in its own e<E-1> namespace and post any seal it likes:
// the retry at epoch E never reads it (stage_fence_test.go injects exactly
// this and checks the retry stays byte-identical).
//
// Barriers are notify-driven rather than poll-quantized, and the completion
// broadcast is keyed: every substrate write broadcasts a topic naming what
// became visible ("s3/<key>", "dynamo/<table>/<key>", "sqs/<queue>"), and
// waiters park on the prefix they actually await — waitSealed on its seal
// marker's key, the exchange's commit waits on the stage's commit prefix,
// result collectors on the result queue's topic (simclock.Proc.WaitNotifyKey
// under DES, simenv.WaitNotifyKey for functional-mode goroutines). A waiter
// wakes at the exact virtual instant of the matching write — removing the
// up-to-one-poll residual from modeled latencies — while a hundred-sender
// shuffle no longer wakes every parked barrier in the simulation on each
// Put (Report.Wakeups counts the delivered wakeups; the keyed-vs-unkeyed
// regression test pins the reduction). The timed poll remains the fallback
// for waiters whose write never comes. Commit
// discovery is batched: one List of the stage's commit namespace per shard
// bucket per round, cached across rounds, and exchange.Sweep deletes
// through the batched DeleteObjects API. Liveness holes in speculation are
// covered by the per-stage MaxStageWait cap: a runnable stage that goes
// that long without any worker response (the window restarts on every
// response) has its missing workers re-invoked as the next attempt — the
// no-response and sub-quorum stalls quorum arithmetic can never arm for.
//
// # Resident query service
//
// The one-shot driver is a thin veneer over a resident session. A
// driver.Session binds to a deployment once — installs the worker function,
// owns the admission controller and the result cache — and then runs many
// queries, sequentially or concurrently, against that warm state; Driver
// itself is now Session plus a default environment, so the single-query API
// is unchanged. Each query runs on its own per-query scheduler with three
// isolation planes:
//
//	results   every query gets its own SQS result queue (<base>-q<N>),
//	          created at query start and deleted at close — a zombie seal
//	          from a finished query lands in a deleted queue, not in a
//	          sibling's mailbox
//	names     the epoch fence already namespaces S3 boundaries, ready
//	          markers and seal messages per (query, epoch); concurrent
//	          queries never share a prefix
//	budgets   retry budgets and fault scopes stay per-query
//
// Admission replaces per-query invocation pacing with a deployment-wide
// budget (invoke.Admission, Config.MaxInFlight): every invocation across
// all live queries acquires a slot, released by the Lambda service's
// completion hook. Staged launches acquire partially — a stage launches
// as many workers as there are free slots and the remainder as slots free
// up — so N queries make progress under one cap instead of deadlocking on
// whole-fleet acquisition; recovery and speculation re-invokes use an
// overflow class that may exceed the cap rather than wait behind the very
// queries they are unsticking. The interleaved-session test pins the
// meter: the in-flight peak never exceeds the cap, and K = 4 concurrent
// staged queries on one session produce byte-identical results to the
// same queries run one-shot, deterministically across seeded DES runs on
// both exchange variants.
//
// Repeated queries skip the fleet entirely: the session caches final
// result chunks keyed by (stageplan.Fingerprint of the logical plan,
// sorted table file lists), so a hit is a driver-local decode with zero
// invocations and zero new billed requests. Invalidation is explicit
// (Session.InvalidateTable / InvalidateAll) and automatic on UploadTable,
// which overwrites objects under the same FileRefs.
//
// internal/service wraps a session in an HTTP/JSON endpoint and
// cmd/lambada-serve runs it: POST /query takes a named query or raw SQL
// with :name parameters, and every response carries the rows, a per-query
// profile (workers, stages, cold starts, speculated attempts, billed $,
// S3 requests/bytes, cache hit) and — for queries with a calibrated QaaS
// spec — the modeled Athena/BigQuery price/latency comparison, the paper's
// §5.4 table as a per-request field. A Runner abstraction picks the
// execution substrate: GoRunner serves each request inline on a real-time
// local deployment; DESRunner batches concurrent HTTP requests inside a
// real-time window into one interleaved virtual-time run on the DES
// kernel, so even the simulated deployment serves concurrent traffic.
// `make serve-smoke` boots both modes in CI and drives the
// fresh/cached/invalidate sequence end to end.
//
// # Failure model and resilience
//
// The simulated substrate injects failures deterministically: every service
// consults a seeded internal/awssim/faults.Injector once per operation, and
// a JSON-serializable FaultPlan prescribes what goes wrong where — S3
// transient 500s, request timeouts and SlowDown storms, SQS at-least-once
// duplicate delivery (the copy surfaces after a configured delay) and
// receive timeouts, DynamoDB throttling (rejected before any mutation, so
// conditional writes stay safe to retry), Lambda crash-on-invoke,
// crash-mid-run and cold-start spikes. Decisions are pure hashes of
// (seed, rule, op, per-op counter), so a plan replays exactly under the DES
// kernel: the chaos suite asserts a staged query under a seeded storm is
// byte-identical to its fault-free run, twice.
//
// One policy layer absorbs those faults everywhere: internal/resilience
// classifies errors retryable-vs-fatal (a registry the services feed, e.g.
// S3 SlowDown), backs off with decorrelated jitter drawn from the same
// deterministic hash (virtual-time-safe — waits go through simenv), and
// charges every retry against a per-scope budget. The driver holds one
// budget per query, each worker invocation one of its own; retried requests
// are still billed, because the real substrate bills them too.
//
// Degradation is graceful and typed: a worker that exhausts its budget
// posts a failure seal marked retryable, and the stage scheduler re-invokes
// it through the same attempt-versioned machinery speculation uses (the
// failure path works with speculation disabled); a worker that dies without
// posting anything is recovered by the MaxStageWait liveness cap. A query
// that cannot progress fails fast with a structured *StageFailure and the
// usual sweeps reclaim its debris. Epoch fence items themselves are
// garbage-collected lazily: acquireEpoch periodically sweeps epoch/<query>
// items older than EpochTTL of virtual time.
//
// # Observability and tracing
//
// internal/obs is a dependency-free, virtual-clock tracing and metrics
// layer threaded through the whole query lifecycle. A deployment runs
// traced after Deployment.EnableTracing(obs.New()); a nil tracer is the
// no-op tracer, so the instrumented call sites cost nothing when tracing
// is off. Spans form a tree:
//
//	query    one driver query (RunPlan/RunPlanStaged/RunPlanExchanged)
//	stage    one stage of a staged execution
//	invoke   one Lambda worker invocation (an attempt; tags carry worker,
//	         cold, attempt, fault/timeout outcomes, rows and bytes moved)
//	op       one substrate call (s3.getrange, sqs.Receive, dynamo.PutIf,
//	         lambda.start, …; tags carry retries and outcome)
//
// Cost attribution is exact, not sampled: services charge the tracer at
// the same points they charge the pricing meter, each billed request
// lands on the innermost span bound to the acting environment, and
// summing obs.Cost over all spans reproduces the Report's meter deltas
// integer-exactly (request counts, S3 read bytes, Lambda MiB·ns — the
// cost-attribution test pins equality). To make that hold, a traced query
// closes its cost window only after the Lambda service runs no invocation
// — so a traced Report.Duration includes the straggler-loser tail that an
// untraced run's Duration excludes.
//
// Everything downstream is derived from the span tree. Report.Profile
// folds it into an EXPLAIN ANALYZE record: per-stage wall time, attempt
// counts, rows and shuffle bytes, billed cost in exact units and dollars
// (driver.CostUSD), plus the critical path — obs.CriticalPath extracts
// the latency-bounding chain, whose segments tile the query span exactly,
// so their durations sum to the end-to-end virtual latency. The CLI
// prints it under -profile and writes a Chrome trace-event JSON file
// under -trace-out (loadable in Perfetto; validated by cmd/tracecheck and
// `make trace-smoke`). Timestamps come from the virtual clock and span
// IDs from call order, so under the DES kernel two runs of the same
// seeded query export byte-identical traces — the determinism suite
// asserts this with the chaos plan active on both exchange variants.
//
// # Chunk pooling
//
// Hot paths avoid the allocator: columnar.Pool recycles vectors and chunks
// between morsels. The ownership contract is documented on columnar.Pool —
// in short, only the operator that got a chunk from the pool may recycle
// it, and only at a pipeline breaker once the morsel is fully consumed.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation section.
package lambada
