// Package lambada is a reproduction of "Lambada: Interactive Data Analytics
// on Cold Data using Serverless Cloud Infrastructure" (Müller, Marroquín,
// Alonso; SIGMOD 2020): a purely serverless query processing system — a
// local driver, thousands of FaaS workers, and communication exclusively
// through shared serverless storage — together with the simulated AWS
// substrate (S3, Lambda, SQS, DynamoDB on a deterministic discrete-event
// kernel) that the paper's evaluation is reproduced on.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation section.
package lambada
