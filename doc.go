// Package lambada is a reproduction of "Lambada: Interactive Data Analytics
// on Cold Data using Serverless Cloud Infrastructure" (Müller, Marroquín,
// Alonso; SIGMOD 2020): a purely serverless query processing system — a
// local driver, thousands of FaaS workers, and communication exclusively
// through shared serverless storage — together with the simulated AWS
// substrate (S3, Lambda, SQS, DynamoDB on a deterministic discrete-event
// kernel) that the paper's evaluation is reproduced on.
//
// # Concurrency levels
//
// Each worker exploits concurrency at five levels — the paper's four scan
// levels (§4.3.2, Figure 8) plus a morsel-driven execution layer on top:
//
//	(5) file/pipeline parallelism: a bounded worker pool scans multiple lpq
//	    files concurrently (scan.Config.ParallelFiles) and the engine fans
//	    scan chunks out to N pipeline goroutines for filter/projection and
//	    partition-parallel aggregation (engine.ExecuteParallel,
//	    driver.Config.PipelineParallelism);
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) row groups double-buffered: download overlaps decompression;
//	(2) column chunks of a row group fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since
//	    extra requests cost money (Figure 7).
//
// Everything above level 1 is deterministic in its results: parallel scans
// deliver chunks in serial order, and parallel aggregation folds per-chunk
// partials in sequence order, so outputs are byte-identical to serial
// execution. In discrete-event-simulated deployments all levels are forced
// off (worker code must not spawn goroutines); the bandwidth shaper models
// their timing effect instead.
//
// # Chunk pooling
//
// Hot paths avoid the allocator: columnar.Pool recycles vectors and chunks
// between morsels. The ownership contract is documented on columnar.Pool —
// in short, only the operator that got a chunk from the pool may recycle
// it, and only at a pipeline breaker once the morsel is fully consumed.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation section.
package lambada
