// Package lambada is a reproduction of "Lambada: Interactive Data Analytics
// on Cold Data using Serverless Cloud Infrastructure" (Müller, Marroquín,
// Alonso; SIGMOD 2020): a purely serverless query processing system — a
// local driver, thousands of FaaS workers, and communication exclusively
// through shared serverless storage — together with the simulated AWS
// substrate (S3, Lambda, SQS, DynamoDB on a deterministic discrete-event
// kernel) that the paper's evaluation is reproduced on.
//
// # Concurrency levels
//
// Each worker exploits concurrency at five levels — the paper's four scan
// levels (§4.3.2, Figure 8) plus a morsel-driven execution layer on top:
//
//	(5) file/pipeline parallelism: a bounded worker pool scans multiple lpq
//	    files concurrently (scan.Config.ParallelFiles) and the engine runs
//	    every plan on a pipeline-graph scheduler at N morsel workers
//	    (engine.ExecuteParallel, driver.Config.PipelineParallelism);
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) row groups double-buffered: download overlaps decompression;
//	(2) column chunks of a row group fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since
//	    extra requests cost money (Figure 7).
//
// # Pipeline-graph scheduler
//
// The engine has exactly one executor. A planner pass decomposes any plan
// into a DAG of pipelines — streamable scan/filter/project/join-probe
// chains terminated by breaker sinks (aggregate, sort, limit, collect) —
// with dependency edges: a join's build pipeline completes and its hash
// table seals before the probe pipeline starts. The scheduler runs ready
// pipelines as their dependencies finish, fanning each pipeline's morsels
// out to N workers; engine.Execute is the same scheduler at N = 1, running
// the whole graph inline without spawning a single goroutine (the form DES
// deployments require). There is no serial fallback path: joins, nested
// breakers and arbitrary operator chains all run morsel-parallel.
//
// Hash joins build a sealed-then-shared table in one of three key modes
// (mirroring the aggregation kernel's group-addressing matrix):
//
//	dense   single int64 key spanning a narrow range: direct-index CSR
//	int64   single wide int64 key: open addressing, partition-parallel build
//	string  multi-column keys: encoded-key map, partition-parallel build
//
// Float and bool join keys are rejected at planning time with
// engine.ErrJoinKey. Probes gather matches through selection vectors in
// (probe row, build row) order, so results are independent of worker count.
//
// Everything above level 1 is deterministic in its results: parallel scans
// deliver chunks in serial order, aggregation folds per-chunk partials in
// sequence order, collect sinks reassemble morsels in sequence order, and
// the limit sink takes the first N rows in sequence order — outputs are
// byte-identical to serial execution. In discrete-event-simulated
// deployments all levels are forced off (worker code must not spawn
// goroutines); the bandwidth shaper models their timing effect instead.
//
// # Chunk pooling
//
// Hot paths avoid the allocator: columnar.Pool recycles vectors and chunks
// between morsels. The ownership contract is documented on columnar.Pool —
// in short, only the operator that got a chunk from the pool may recycle
// it, and only at a pipeline breaker once the morsel is fully consumed.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation section.
package lambada
