// Package service exposes a resident driver.Session as an HTTP/JSON query
// endpoint — Lambada as a query service rather than a one-shot CLI. The
// deployment is installed once; every POST /query runs on the same session,
// sharing the warm container pool, the deployment-wide admission budget,
// and the result cache, so a repeated query costs nothing and concurrent
// requests interleave on one serverless fleet.
//
// Execution is abstracted behind Runner so the same server fronts either a
// real-time local deployment (every request runs inline on its own
// goroutine) or a discrete-event simulation (requests are injected as DES
// processes into a kernel the runner owns, batched over a short arrival
// window so concurrent HTTP requests become concurrent virtual queries).
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/driver"
	"lambada/internal/qaas"
	"lambada/internal/simclock"
)

// Runner executes one query-service request against the deployment's
// substrate environment and blocks until it finishes.
type Runner interface {
	Run(fn func(env simenv.Env) error) error
}

// GoRunner serves requests inline on the caller's goroutine against a
// real-time deployment: N concurrent HTTP requests are N concurrent
// sessions-side queries with no further ceremony.
type GoRunner struct{}

// Run executes fn with an immediate (real-time) environment.
func (GoRunner) Run(fn func(env simenv.Env) error) error {
	return fn(simenv.NewImmediate())
}

type desJob struct {
	fn   func(env simenv.Env) error
	done chan error
}

// DESRunner injects requests as processes into a discrete-event kernel it
// owns. The kernel is single-owner by construction, so requests queue on a
// channel and the Serve goroutine drains them: each batch — everything that
// arrived within Window of the first job — is spawned as concurrent DES
// processes and run to completion in virtual time. Requests that arrive
// together therefore interleave on the simulated deployment exactly like
// the concurrent-session tests.
type DESRunner struct {
	// Window is how long (real time) the runner gathers jobs after the
	// first arrival before starting the batch.
	Window time.Duration

	k    *simclock.Kernel
	jobs chan desJob
}

// NewDESRunner wraps a kernel. Call Serve on its own goroutine before the
// first Run, and Close when done.
func NewDESRunner(k *simclock.Kernel, window time.Duration) *DESRunner {
	return &DESRunner{Window: window, k: k, jobs: make(chan desJob)}
}

// Run enqueues the request and blocks until its DES process finished.
func (r *DESRunner) Run(fn func(env simenv.Env) error) error {
	done := make(chan error, 1)
	r.jobs <- desJob{fn: fn, done: done}
	return <-done
}

// Serve owns the kernel: it gathers request batches and runs each to
// quiescence. Returns when Close is called.
func (r *DESRunner) Serve() {
	for job, ok := <-r.jobs; ok; job, ok = <-r.jobs {
		batch := []desJob{job}
		if r.Window > 0 {
			timer := time.NewTimer(r.Window)
		gather:
			for {
				select {
				case j, open := <-r.jobs:
					if !open {
						break gather
					}
					batch = append(batch, j)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		}
		for i := range batch {
			j := batch[i]
			r.k.Go(fmt.Sprintf("request%d", i), func(p *simclock.Proc) {
				j.done <- j.fn(p)
			})
		}
		r.k.Run()
	}
}

// Close stops Serve. Pending Run calls that lost the race error out only by
// panicking on the closed channel, so close after the HTTP server drained.
func (r *DESRunner) Close() { close(r.jobs) }

// Config wires a Server.
type Config struct {
	// Session is the resident session every query runs on.
	Session *driver.Session
	// Runner executes requests (GoRunner or a DESRunner).
	Runner Runner
	// Tables maps the registered table names to their uploaded files.
	Tables driver.TableFiles
	// SF is the scale factor of the registered data, for the QaaS dollar
	// comparison.
	SF float64
	// Stage is the base stage configuration; per-request fields override it.
	Stage driver.StageConfig
	// Queries maps shorthand names ("q1", "q6", ...) to SQL texts.
	Queries map[string]string
}

// Server is the HTTP query service.
type Server struct {
	cfg Config

	mu      sync.Mutex
	queries uint64
}

// New returns a server over the given resident session.
func New(cfg Config) *Server { return &Server{cfg: cfg} }

// Handler returns the route mux:
//
//	POST /query      run a query ({"sql": ...} or {"name": "q6"})
//	POST /invalidate drop cached results ({"table": "x"} or {} for all)
//	GET  /session    session statistics (cache, admission, query count)
//	GET  /stats      cumulative deployment cost meter
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/invalidate", s.handleInvalidate)
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// QueryRequest is the POST /query body. Exactly one of Name and SQL is
// required; Params are substituted for :name placeholders in the SQL text.
type QueryRequest struct {
	Name   string            `json:"name,omitempty"`
	SQL    string            `json:"sql,omitempty"`
	Params map[string]string `json:"params,omitempty"`
	// Partitions overrides the exchange boundary fan-in (0 = server
	// default).
	Partitions int `json:"partitions,omitempty"`
}

// ColumnJSON describes one result column.
type ColumnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// ProfileJSON is the per-query profile of a response.
type ProfileJSON struct {
	QueryID       string  `json:"queryId"`
	CacheHit      bool    `json:"cacheHit"`
	Workers       int     `json:"workers"`
	Stages        int     `json:"stages,omitempty"`
	ColdWorkers   int     `json:"coldWorkers"`
	Speculated    int     `json:"speculated,omitempty"`
	DurationNs    int64   `json:"durationNs"`
	InvocationNs  int64   `json:"invocationNs"`
	BilledUSD     float64 `json:"billedUsd"`
	S3GetRequests int64   `json:"s3GetRequests"`
	S3ReadBytes   int64   `json:"s3ReadBytes"`
}

// QaaSJSON is the per-request dollar comparison against the modeled QaaS
// competitors, present when the query name has a calibrated billing spec.
type QaaSJSON struct {
	Query       string  `json:"query"`
	SF          float64 `json:"sf"`
	LambadaUSD  float64 `json:"lambadaUsd"`
	AthenaUSD   float64 `json:"athenaUsd"`
	BigQueryUSD float64 `json:"bigqueryUsd"`
	AthenaNs    int64   `json:"athenaNs"`
	BigQueryNs  int64   `json:"bigqueryNs"`
}

// QueryResponse is the POST /query response.
type QueryResponse struct {
	Columns []ColumnJSON    `json:"columns"`
	Rows    [][]interface{} `json:"rows"`
	Profile ProfileJSON     `json:"profile"`
	QaaS    *QaaSJSON       `json:"qaas,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	sql := req.SQL
	if req.Name != "" {
		named, ok := s.cfg.Queries[strings.ToLower(req.Name)]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown query name %q", req.Name), http.StatusBadRequest)
			return
		}
		sql = named
	}
	if sql == "" {
		http.Error(w, `need "sql" or "name"`, http.StatusBadRequest)
		return
	}
	sql, err := substituteParams(sql, req.Params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	scfg := s.cfg.Stage
	if req.Partitions > 0 {
		scfg.Partitions = req.Partitions
	}
	var out *columnar.Chunk
	var rep *driver.Report
	runErr := s.cfg.Runner.Run(func(env simenv.Env) error {
		var qerr error
		out, rep, qerr = s.cfg.Session.RunSQLStaged(env, sql, s.cfg.Tables, scfg)
		return qerr
	})
	if runErr != nil {
		http.Error(w, runErr.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	resp := QueryResponse{
		Columns: columnsJSON(out),
		Rows:    rowsJSON(out),
		Profile: ProfileJSON{
			QueryID:       rep.QueryID,
			CacheHit:      rep.CacheHit,
			Workers:       rep.Workers,
			Stages:        rep.Stages,
			ColdWorkers:   rep.ColdWorkers,
			Speculated:    rep.Speculated,
			DurationNs:    int64(rep.Duration),
			InvocationNs:  int64(rep.Invocation),
			BilledUSD:     rep.TotalCost,
			S3GetRequests: rep.S3GetRequests,
			S3ReadBytes:   rep.S3ReadBytes,
		},
	}
	if spec, ok := qaas.SpecFor(req.Name); ok {
		c := qaas.Compare(spec, s.cfg.SF, pricing.USD(rep.TotalCost), rep.Duration)
		resp.QaaS = &QaaSJSON{
			Query:       spec.Name,
			SF:          s.cfg.SF,
			LambadaUSD:  float64(c.Ours),
			AthenaUSD:   float64(c.Athena.Cost),
			BigQueryUSD: float64(c.BigQuery.Cost),
			AthenaNs:    int64(c.Athena.Latency),
			BigQueryNs:  int64(c.BigQuery.Latency),
		}
	}
	writeJSON(w, resp)
}

// InvalidateRequest is the POST /invalidate body; an empty table drops the
// whole cache.
type InvalidateRequest struct {
	Table string `json:"table,omitempty"`
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req InvalidateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Table == "" {
		s.cfg.Session.InvalidateResultCache()
	} else {
		s.cfg.Session.InvalidateTable(req.Table)
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// SessionJSON is the GET /session response.
type SessionJSON struct {
	Queries     uint64   `json:"queries"`
	CacheHits   uint64   `json:"cacheHits"`
	CacheMisses uint64   `json:"cacheMisses"`
	Tables      []string `json:"tables"`
	// Admission statistics; Capacity 0 means no deployment-wide cap.
	Capacity int    `json:"capacity"`
	InFlight int    `json:"inFlight"`
	Peak     int    `json:"peak"`
	Blocked  uint64 `json:"blocked"`
	Overflow uint64 `json:"overflow"`
	Acquired uint64 `json:"acquired"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := s.queries
	s.mu.Unlock()
	hits, misses := s.cfg.Session.CacheStats()
	var names []string
	for name := range s.cfg.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := SessionJSON{Queries: n, CacheHits: hits, CacheMisses: misses, Tables: names}
	if adm := s.cfg.Session.Admission(); adm != nil {
		resp.Capacity = adm.Capacity()
		resp.InFlight = adm.InFlight()
		resp.Peak = adm.Peak()
		resp.Blocked = adm.Blocked()
		resp.Overflow = adm.Overflow()
		resp.Acquired = adm.Acquired()
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	meter := s.cfg.Session.Deployment().Meter
	costs := map[string]float64{}
	counts := map[string]int64{}
	for _, l := range meter.Labels() {
		costs[l] = float64(meter.Get(l))
		counts[l] = meter.Count(l)
	}
	writeJSON(w, map[string]interface{}{
		"totalUsd": float64(meter.Total()),
		"costs":    costs,
		"counts":   counts,
	})
}

// substituteParams replaces every :name placeholder with its value —
// numbers raw, everything else as an escaped SQL string literal. Unknown
// placeholders are an error so typos fail loudly instead of reaching the
// parser.
func substituteParams(sql string, params map[string]string) (string, error) {
	for name, val := range params {
		placeholder := ":" + name
		if !strings.Contains(sql, placeholder) {
			return "", fmt.Errorf("param %q has no :%s placeholder in the query", name, name)
		}
		sql = strings.ReplaceAll(sql, placeholder, sqlLiteral(val))
	}
	if i := strings.IndexByte(sql, ':'); i >= 0 && i+1 < len(sql) && isIdentStart(sql[i+1]) {
		return "", fmt.Errorf("unbound parameter at %q", sql[i:min(i+12, len(sql))])
	}
	return sql, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// sqlLiteral renders a parameter value: numeric text passes through,
// anything else becomes a single-quoted literal with quotes doubled.
func sqlLiteral(v string) string {
	numeric := v != ""
	dot := false
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '.' && !dot {
			dot = true
			continue
		}
		if c == '-' && i == 0 {
			continue
		}
		if c < '0' || c > '9' {
			numeric = false
			break
		}
	}
	if numeric {
		return v
	}
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

func columnsJSON(c *columnar.Chunk) []ColumnJSON {
	cols := make([]ColumnJSON, len(c.Schema.Fields))
	for i, f := range c.Schema.Fields {
		cols[i] = ColumnJSON{Name: f.Name, Type: f.Type.String()}
	}
	return cols
}

func rowsJSON(c *columnar.Chunk) [][]interface{} {
	rows := make([][]interface{}, c.NumRows())
	for i := range rows {
		row := make([]interface{}, len(c.Columns))
		for j, col := range c.Columns {
			switch col.Type {
			case columnar.Int64:
				row[j] = col.Int64s[i]
			case columnar.Float64:
				row[j] = col.Float64s[i]
			case columnar.Bool:
				row[j] = col.Bools[i]
			}
		}
		rows[i] = row
	}
	return rows
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
