package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/driver"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// q1SQL is a Q1-shaped single-table group-by; the name "q1" carries a
// calibrated QaaS billing spec, so /query responses include the dollar
// comparison.
const q1SQL = `
SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) AS n
FROM lineitem
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const paramSQL = `
SELECT l_suppkey, COUNT(*) AS n FROM lineitem
WHERE l_quantity < :maxqty
GROUP BY l_suppkey ORDER BY l_suppkey`

// newLocalServer stands up the full stack on a real-time local deployment:
// resident session with result cache, uploaded TPC-H data, HTTP handler.
func newLocalServer(t *testing.T) (*httptest.Server, *driver.Session) {
	t.Helper()
	dep := driver.NewLocal()
	cfg := driver.DefaultConfig()
	cfg.ResultCacheEntries = 16
	sess := driver.NewSession(dep, cfg)
	env := simenv.NewImmediate()
	if err := sess.Install(); err != nil {
		t.Fatal(err)
	}
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	refs, err := sess.UploadTable(env, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	scfg := driver.DefaultStageConfig()
	scfg.Partitions = 2
	srv := New(Config{
		Session: sess,
		Runner:  GoRunner{},
		Tables:  driver.TableFiles{"lineitem": refs},
		SF:      0.002,
		Stage:   scfg,
		Queries: map[string]string{"q1": q1SQL},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, sess
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestServeSmoke is the CI smoke path: query, repeat (cache hit),
// invalidate, query again (miss), session and stats endpoints.
func TestServeSmoke(t *testing.T) {
	ts, _ := newLocalServer(t)

	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Name: "q1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d: %s", resp.StatusCode, raw)
	}
	var r1 QueryResponse
	if err := json.Unmarshal(raw, &r1); err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) == 0 || len(r1.Columns) != 4 {
		t.Fatalf("first query returned %d rows, %d columns", len(r1.Rows), len(r1.Columns))
	}
	if r1.Profile.CacheHit || r1.Profile.Workers == 0 {
		t.Errorf("first query profile = %+v, want fresh run with workers", r1.Profile)
	}
	if r1.QaaS == nil || r1.QaaS.AthenaUSD <= 0 || r1.QaaS.BigQueryUSD <= 0 {
		t.Errorf("q1 response missing QaaS comparison: %+v", r1.QaaS)
	}

	_, raw2 := postJSON(t, ts.URL+"/query", QueryRequest{Name: "q1"})
	var r2 QueryResponse
	if err := json.Unmarshal(raw2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Profile.CacheHit {
		t.Error("repeated query missed the result cache")
	}
	if fmt.Sprint(r2.Rows) != fmt.Sprint(r1.Rows) {
		t.Error("cached rows differ from the fresh run's")
	}

	if resp, raw := postJSON(t, ts.URL+"/invalidate", InvalidateRequest{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: %d: %s", resp.StatusCode, raw)
	}
	_, raw3 := postJSON(t, ts.URL+"/query", QueryRequest{Name: "q1"})
	var r3 QueryResponse
	if err := json.Unmarshal(raw3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Profile.CacheHit {
		t.Error("query after /invalidate still hit the cache")
	}

	sresp, err := http.Get(ts.URL + "/session")
	if err != nil {
		t.Fatal(err)
	}
	var sess SessionJSON
	if err := json.NewDecoder(sresp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sess.Queries != 3 || sess.CacheHits != 1 || sess.Tables[0] != "lineitem" {
		t.Errorf("session stats = %+v, want 3 queries / 1 hit / [lineitem]", sess)
	}

	stresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		TotalUSD float64 `json:"totalUsd"`
	}
	if err := json.NewDecoder(stresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	stresp.Body.Close()
	if stats.TotalUSD <= 0 {
		t.Errorf("deployment meter total = %v, want > 0", stats.TotalUSD)
	}
}

// TestServeParams: :name placeholders substitute values; unknown and
// unbound parameters are 400s, not parser surprises.
func TestServeParams(t *testing.T) {
	ts, _ := newLocalServer(t)

	resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{SQL: paramSQL, Params: map[string]string{"maxqty": "24"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("param query: %d: %s", resp.StatusCode, raw)
	}
	var r QueryResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("param query returned no rows")
	}

	if resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{SQL: paramSQL, Params: map[string]string{"nosuch": "1"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown param: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/query", QueryRequest{SQL: paramSQL}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unbound param: status %d, want 400", resp.StatusCode)
	}
}

// TestServeDESConcurrent: the DES runner batches concurrent HTTP requests
// into concurrent virtual-time queries on one simulated deployment — the
// service-layer face of the interleaved-session acceptance test.
func TestServeDESConcurrent(t *testing.T) {
	k := simclock.New()
	dep := driver.NewSimulated(k, 71)
	cfg := driver.DefaultConfig()
	cfg.PollInterval = 50 * time.Millisecond
	cfg.MaxInFlight = 12
	sess := driver.NewSession(dep, cfg)
	runner := NewDESRunner(k, 100*time.Millisecond)
	go runner.Serve()
	defer runner.Close()

	var refs driver.TableFiles
	if err := runner.Run(func(env simenv.Env) error {
		if err := sess.Install(); err != nil {
			return err
		}
		g := tpch.Gen{SF: 0.002, Seed: 33}
		li, err := sess.UploadTable(env, "tpch", "lineitem", g.Generate(), 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			return err
		}
		refs = driver.TableFiles{"lineitem": li}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	scfg := driver.DefaultStageConfig()
	scfg.Partitions = 2
	srv := New(Config{
		Session: sess,
		Runner:  runner,
		Tables:  refs,
		SF:      0.002,
		Stage:   scfg,
		Queries: map[string]string{"q1": q1SQL},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const N = 2
	responses := make([]QueryResponse, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/query", QueryRequest{Name: "q1"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &responses[i]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(responses[0].Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < N; i++ {
		if fmt.Sprint(responses[i].Rows) != fmt.Sprint(responses[0].Rows) {
			t.Errorf("request %d rows diverge", i)
		}
	}
	ids := map[string]bool{}
	for _, r := range responses {
		if !r.Profile.CacheHit {
			ids[r.Profile.QueryID] = true
		}
	}
	if len(ids) == 0 {
		t.Error("no fresh query ran")
	}
	if strings.TrimSpace(responses[0].Profile.QueryID) == "" {
		t.Error("missing query ID")
	}
}
