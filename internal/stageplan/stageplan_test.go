package stageplan

import (
	"bytes"
	"testing"
	"time"

	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/sqlfe"
	"lambada/internal/tpch"
)

func optimized(t *testing.T, sql string) engine.Plan {
	t.Helper()
	plan, err := sqlfe.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema()),
		"orders":   engine.NewMemSource(tpch.OrdersSchema()),
		"supplier": engine.NewMemSource(tpch.SupplierSchema()),
	}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

const q12SQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_extendedprice) AS total
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

func bigStats() Stats {
	return Stats{Rows: map[string]int64{"lineitem": 1 << 20, "orders": 1 << 18, "supplier": 50}}
}

func TestDecomposeShuffleJoinWithGroupBy(t *testing.T) {
	sp, err := Decompose(optimized(t, q12SQL), bigStats(), Config{Partitions: 3, BroadcastRowLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 4 {
		t.Fatalf("stages = %d, want 4 (scan, scan, join+partial, final):\n%s", len(sp.Stages), Explain(sp))
	}
	if len(sp.Broadcast) != 0 {
		t.Fatalf("broadcast = %v, want none", sp.Broadcast)
	}
	scanL, scanR, join, final := sp.Stages[0], sp.Stages[1], sp.Stages[2], sp.Stages[3]
	if scanL.Table != "lineitem" || scanR.Table != "orders" {
		t.Fatalf("scan stages over %q/%q", scanL.Table, scanR.Table)
	}
	if scanL.Output == nil || scanL.Output.Partitions != 3 || scanL.Output.Keys[0] != "l_orderkey" {
		t.Fatalf("left boundary = %+v", scanL.Output)
	}
	if scanR.Output == nil || scanR.Output.Keys[0] != "o_orderkey" {
		t.Fatalf("right boundary = %+v", scanR.Output)
	}
	if len(join.Inputs) != 2 || join.Inputs[0].StageID != scanL.ID || join.Inputs[1].StageID != scanR.ID {
		t.Fatalf("join inputs = %+v", join.Inputs)
	}
	if join.Output == nil || join.Output.Keys[0] != "o_orderpriority" {
		t.Fatalf("join boundary = %+v (want repartition on group key)", join.Output)
	}
	if _, ok := join.Plan.(*engine.AggregatePlan); !ok {
		t.Fatalf("join stage fragment root = %T, want partial AggregatePlan", join.Plan)
	}
	if final.Output != nil || len(final.Inputs) != 1 || final.Inputs[0].StageID != join.ID {
		t.Fatalf("final stage = %+v", final)
	}
	if sp.ResultStage() != final {
		t.Fatal("result stage is not the final merge")
	}
	// The probe-side scan must have been pruned to the referenced columns.
	scan := findScan(scanL.Plan, "lineitem")
	if scan == nil || scan.Projection == nil {
		t.Fatalf("lineitem scan not projection-pruned: %v", engine.Explain(scanL.Plan))
	}
	// The build-side scan too — shuffle sides are not broadcast-whole.
	oscan := findScan(scanR.Plan, "orders")
	if oscan == nil || oscan.Projection == nil {
		t.Fatalf("orders scan not projection-pruned: %v", engine.Explain(scanR.Plan))
	}
}

func TestDecomposeBroadcastJoinStaysSingleStage(t *testing.T) {
	sql := `
SELECT s_nationkey, COUNT(*) AS n
FROM lineitem INNER JOIN supplier ON lineitem.l_suppkey = supplier.s_suppkey
GROUP BY s_nationkey ORDER BY s_nationkey`
	sp, err := Decompose(optimized(t, sql), bigStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// supplier (50 rows) broadcasts; the group keys are Int64 so the
	// aggregation still splits over the exchange: scan+partial, final.
	if len(sp.Stages) != 2 {
		t.Fatalf("stages = %d:\n%s", len(sp.Stages), Explain(sp))
	}
	if len(sp.Broadcast) != 1 || sp.Broadcast[0] != "supplier" {
		t.Fatalf("broadcast = %v", sp.Broadcast)
	}
	if sp.Stages[0].Table != "lineitem" {
		t.Fatalf("stage 0 table = %q", sp.Stages[0].Table)
	}
}

func TestDecomposeSwapsSmallLeftSide(t *testing.T) {
	// supplier is on the LEFT; the planner should swap it to the build
	// side and broadcast it rather than shuffling both sides.
	sql := `
SELECT s_nationkey, COUNT(*) AS n
FROM supplier INNER JOIN lineitem ON supplier.s_suppkey = lineitem.l_suppkey
GROUP BY s_nationkey ORDER BY s_nationkey`
	sp, err := Decompose(optimized(t, sql), bigStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Broadcast) != 1 || sp.Broadcast[0] != "supplier" {
		t.Fatalf("broadcast = %v (left small side not swapped)", sp.Broadcast)
	}
	if sp.Stages[0].Table != "lineitem" {
		t.Fatalf("probe stage table = %q", sp.Stages[0].Table)
	}
}

func TestDecomposeGroupByWithoutJoin(t *testing.T) {
	sql := `SELECT l_suppkey, COUNT(*) AS n FROM lineitem GROUP BY l_suppkey ORDER BY l_suppkey`
	sp, err := Decompose(optimized(t, sql), bigStats(), Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 2 {
		t.Fatalf("stages = %d:\n%s", len(sp.Stages), Explain(sp))
	}
	if sp.Stages[0].Output == nil || sp.Stages[0].Output.Keys[0] != "l_suppkey" {
		t.Fatalf("scan boundary = %+v", sp.Stages[0].Output)
	}
}

// TestDecomposeAutoPartitions: Partitions = 0 derives the boundary fan-in
// from the footer row counts — ceil(largest table / AutoRowsPerPartition),
// clamped — instead of a fixed default.
func TestDecomposeAutoPartitions(t *testing.T) {
	// lineitem is 1<<20 rows: 1<<20 / 1<<16 = 16 partitions.
	sp, err := Decompose(optimized(t, q12SQL), bigStats(), Config{BroadcastRowLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Stages[0].Output.Partitions; got != 16 {
		t.Errorf("auto partitions = %d, want 16", got)
	}

	// A tiny input collapses to one partition.
	tiny := Stats{Rows: map[string]int64{"lineitem": 100, "orders": 50}}
	sp, err = Decompose(optimized(t, q12SQL), tiny, Config{BroadcastRowLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Stages[0].Output.Partitions; got != 1 {
		t.Errorf("tiny auto partitions = %d, want 1", got)
	}

	// A huge input clamps at MaxAutoPartitions.
	huge := Stats{Rows: map[string]int64{"lineitem": 1 << 32, "orders": 1 << 30}}
	sp, err = Decompose(optimized(t, q12SQL), huge, Config{BroadcastRowLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Stages[0].Output.Partitions; got != MaxAutoPartitions {
		t.Errorf("huge auto partitions = %d, want %d", got, MaxAutoPartitions)
	}

	// Explicit fan-in still wins.
	sp, err = Decompose(optimized(t, q12SQL), bigStats(), Config{Partitions: 3, BroadcastRowLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Stages[0].Output.Partitions; got != 3 {
		t.Errorf("explicit partitions = %d, want 3", got)
	}
}

// TestDecomposeMarksStagesEager: every stage is eligible for pipelined
// launch — the ready barrier, not the launch order, gates its collect.
func TestDecomposeMarksStagesEager(t *testing.T) {
	sp, err := Decompose(optimized(t, q12SQL), bigStats(), Config{Partitions: 2, BroadcastRowLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sp.Stages {
		if !s.Eager {
			t.Errorf("stage %d not marked eager", s.ID)
		}
		if s.MaxAttempts != 0 {
			t.Errorf("stage %d attempt budget = %d, want 0 (driver default)", s.ID, s.MaxAttempts)
		}
	}
}

func TestDecomposeGlobalAggregate(t *testing.T) {
	sp, err := Decompose(optimized(t, `SELECT COUNT(*) AS n FROM lineitem`), bigStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 1 || sp.Stages[0].Output != nil {
		t.Fatalf("global aggregate staged wrong:\n%s", Explain(sp))
	}
}

func TestDecomposeNonIntGroupKeyFallsBackToDriverMerge(t *testing.T) {
	// l_quantity is FLOAT: partials cannot repartition on it, so they
	// funnel to the driver instead.
	sql := `SELECT l_quantity, COUNT(*) AS n FROM lineitem GROUP BY l_quantity`
	sp, err := Decompose(optimized(t, sql), bigStats(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != 1 || sp.Stages[0].Output != nil {
		t.Fatalf("float group key should not repartition:\n%s", Explain(sp))
	}
}

// TestStagePlanJSONRoundTrip: every stage fragment and the DAG structure
// survive serialization — the form worker payloads travel in.
func TestStagePlanJSONRoundTrip(t *testing.T) {
	sp, err := Decompose(optimized(t, q12SQL), bigStats(), Config{Partitions: 2, BroadcastRowLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("stage plan round trip differs:\n%s\n%s", blob, blob2)
	}
	if len(back.Stages) != len(sp.Stages) {
		t.Fatalf("stages = %d, want %d", len(back.Stages), len(sp.Stages))
	}
	for i, s := range back.Stages {
		orig, err := engine.MarshalPlan(sp.Stages[i].Plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.MarshalPlan(s.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(orig, got) {
			t.Errorf("stage %d fragment round trip differs", i)
		}
	}
	// Per-stage wire form too, including the scheduler metadata.
	sp.Stages[2].MaxAttempts = 3
	sp.Stages[2].MaxStageWait = 45 * time.Second
	sj, err := MarshalStage(sp.Stages[2])
	if err != nil {
		t.Fatal(err)
	}
	st, err := UnmarshalStage(sj)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != sp.Stages[2].ID || len(st.Inputs) != 2 || st.Output == nil {
		t.Fatalf("stage wire form lost structure: %+v", st)
	}
	if !st.Eager || st.MaxAttempts != 3 {
		t.Fatalf("stage wire form lost scheduler metadata: eager=%v attempts=%d", st.Eager, st.MaxAttempts)
	}
	if st.MaxStageWait != 45*time.Second {
		t.Fatalf("stage wire form lost MaxStageWait: %v", st.MaxStageWait)
	}
}

func findScan(p engine.Plan, table string) *engine.ScanPlan {
	for n := p; n != nil; n = n.Child() {
		if s, ok := n.(*engine.ScanPlan); ok && s.Table == table {
			return s
		}
		if j, ok := n.(*engine.JoinPlan); ok {
			if s := findScan(j.Right, table); s != nil {
				return s
			}
		}
	}
	return nil
}

// TestChooseVariantPicksShardBuckets: sharding B is a chosen dimension of
// the variant, not a deployment constant. The smallest bucket count whose
// per-round per-bucket pressure (Variant.RequestsPerBucketPerRound) fits
// MaxBucketRoundRequests wins; a small fleet collapses to one bucket, and
// the pool is only exhausted (Buckets == 0, "use them all") when even the
// full pool cannot absorb the pressure.
func TestChooseVariantPicksShardBuckets(t *testing.T) {
	base := exchange.Variant{}

	// A small fleet puts 8*8 = 64 requests per round on one bucket — far
	// under the budget, so one shard bucket suffices.
	v := ChooseVariant(8, 8, 8, base, 1)
	if v.Levels != 1 || v.Buckets != 1 {
		t.Fatalf("small fleet: got %+v, want 1 level, 1 bucket", v)
	}

	// 512 senders single-level: 512^2/B <= 3000 first holds at B = 88.
	v = ChooseVariant(512, 512, 128, base, 1)
	if v.Buckets != 88 {
		t.Fatalf("512-sender single-level: got B=%d, want 88", v.Buckets)
	}
	// Two-level spreads each round over sqrt(P) targets, so the same fleet
	// needs only 512*sqrt(512)/B <= 3000, first held at B = 4.
	v = ChooseVariant(512, 512, 128, base, 2)
	if v.Levels != 2 || v.Buckets != 4 {
		t.Fatalf("512-sender two-level: got %+v, want 2 levels, 4 buckets", v)
	}

	// Minimality on both sides of the chosen count.
	single := exchange.Variant{Levels: 1}
	if p := single.RequestsPerBucketPerRound(512, 88); p > MaxBucketRoundRequests {
		t.Errorf("chosen B=88 still over budget: %.0f", p)
	}
	if p := single.RequestsPerBucketPerRound(512, 87); p <= MaxBucketRoundRequests {
		t.Errorf("B=87 already fits (%.0f), chosen count not minimal", p)
	}

	// When the full pool cannot absorb the pressure, Buckets stays 0: use
	// every available bucket rather than a narrowed subset.
	v = ChooseVariant(512, 512, 16, base, 1)
	if v.Buckets != 0 {
		t.Fatalf("overloaded pool: got B=%d, want 0 (full pool)", v.Buckets)
	}

	// Variant.Buckets narrows the request model the same way it narrows the
	// exchange: a variant pinned to 4 buckets bills like a 4-bucket pool.
	pinned := exchange.Variant{Levels: 1, Buckets: 4}
	if got, want := pinned.Requests(64, 64, 16), (exchange.Variant{Levels: 1}).Requests(64, 64, 4); got != want {
		t.Fatalf("pinned-bucket request model: got %+v, want %+v", got, want)
	}
}
