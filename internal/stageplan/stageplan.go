// Package stageplan decomposes an optimized engine plan into a DAG of
// stages connected by exchange boundaries — the distributed planning layer
// that lets query shapes the driver cannot broadcast (joins with two large
// sides, high-cardinality group-bys) flow through the purpose-built S3
// exchange (§4.4) end-to-end:
//
//   - scan stages read a base table's lpq files and hash-partition their
//     output on the downstream join keys through the exchange;
//   - join stages run one worker per partition pair: worker p collects
//     partition p of both sides, builds the hash table on the build side
//     and probes with the other — no worker ever sees a whole table;
//   - grouped aggregations split into a partial aggregate in the stage
//     producing the rows and a final merge stage fed by a repartition on
//     the group keys, so group state never funnels through the driver.
//
// Joins whose build side is genuinely small (by lpq footer row counts) stay
// broadcast joins inside their probe side's stage — the planner chooses
// broadcast-vs-shuffle per join. The driver executes stages in dependency
// waves with seal/ready barriers (SQS completion messages, DynamoDB ready
// markers); every stage fragment is an ordinary engine plan run on the
// pipeline-graph scheduler, so results are byte-identical to single-node
// execution at any worker/partition count.
package stageplan

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
)

// Fingerprint returns a stable identity for a logical plan — the FNV-64a
// hash of its canonical JSON encoding. Two plans with the same fingerprint
// compute the same result over the same table data, which makes the
// fingerprint the plan half of a (plan, table files) result-cache key.
// Callers must fingerprint the plan before Decompose/SplitDistributed
// mutate it.
func Fingerprint(p engine.Plan) (string, error) {
	b, err := engine.MarshalPlan(p)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Output is a stage's exchange boundary: its result rows are hash-
// partitioned on Keys into Partitions partitions. The JSON tags are the
// wire form both stageplan.Marshal and the driver's worker payloads use.
type Output struct {
	// Keys are the partition key columns (all Int64), hash-combined.
	Keys []string `json:"keys"`
	// Partitions is the consuming stage's worker count.
	Partitions int `json:"partitions"`
	// Variant selects the boundary's exchange algorithm. The zero value
	// (Levels 0) means "unresolved": the driver picks per boundary from the
	// analytic request model (ChooseVariant) once it knows the sender fleet
	// size, falling back to its configured single-round default.
	Variant exchange.Variant `json:"variant,omitempty"`
}

// Input binds one upstream stage's boundary into a stage's catalog.
type Input struct {
	// StageID is the producing stage.
	StageID int `json:"stageId"`
	// Table is the catalog name the fragment scans the partition under.
	Table string `json:"table"`
}

// Stage is one gang-scheduled fragment of a distributed plan.
type Stage struct {
	ID int
	// Plan is the engine fragment every worker of the stage executes.
	Plan engine.Plan
	// Table is the base S3 table the stage scans ("" for exchange-fed
	// stages, whose inputs come from upstream boundaries instead).
	Table string
	// Inputs are the exchange boundaries the stage consumes; worker p
	// collects partition p of each.
	Inputs []Input
	// Output is the boundary the stage produces (nil: results go to the
	// driver through the SQS result queue).
	Output *Output
	// DependsOn lists the stage IDs whose boundaries this stage consumes.
	// The event-driven scheduler no longer waits for them before invoking
	// the stage (see Eager); they gate the stage's collect instead.
	DependsOn []int
	// Eager marks the stage eligible for pipelined launch: the scheduler may
	// invoke its workers before the producing stages seal, overlapping their
	// cold starts with upstream execution, because the DynamoDB ready
	// barrier gates the collect. Decompose marks every stage eager; a
	// cost-based policy (or StageConfig.Pipelined = false) can still hold a
	// stage back until its producers sealed.
	Eager bool
	// MaxAttempts bounds per-worker attempts of this stage under straggler
	// speculation (0 = the driver's SpeculateConfig default). Attempt
	// numbers version the stage's exchange boundary names.
	MaxAttempts int
	// MaxStageWait caps how long the stage may go without ANY worker
	// response before speculation re-invokes the whole missing set as the
	// next attempt — the no-progress cases the quorum/median policy can
	// never arm for (no response at all, or a sub-quorum stall). The
	// window starts when the stage becomes runnable (its producers sealed),
	// not at its pipelined launch, and restarts on every response. 0 uses
	// the driver's StageConfig default; negative disables the cap for this
	// stage.
	MaxStageWait time.Duration
}

// Plan is a stage-decomposed distributed plan.
type Plan struct {
	// Stages in topological order: producers precede consumers.
	Stages []*Stage
	// Driver is the driver-side merge scope; its scan of
	// engine.WorkerResultTable binds to the result stage's collected
	// outputs (ordered by worker ID).
	Driver engine.Plan
	// Broadcast names the tables the driver must materialize and ship
	// inside worker payloads (the small sides of broadcast joins).
	Broadcast []string
}

// ResultStage returns the stage whose output feeds the driver scope.
func (p *Plan) ResultStage() *Stage {
	for _, s := range p.Stages {
		if s.Output == nil {
			return s
		}
	}
	return nil
}

// Stats carries the planner's cost inputs.
type Stats struct {
	// Rows is the per-table row estimate, summed from the lpq file footers
	// at plan time (a driver-side metadata read, no data scanned). For
	// tables scanned with pushed-down predicates this is the page-granular
	// pruning bound (lpq.EstimateRows) — post-filter, so autotuned fan-in
	// tracks the selective workload; for unfiltered scans it is the exact
	// total row count.
	Rows map[string]int64
}

// Config tunes the decomposition.
type Config struct {
	// Partitions is the fan-in of every exchange boundary: join and final-
	// aggregation stages run this many workers. 0 derives the fan-in from
	// the lpq footer row counts in Stats: ceil(largest table rows /
	// AutoRowsPerPartition), clamped to [1, MaxAutoPartitions].
	Partitions int
	// BroadcastRowLimit: a join build side of at most this many rows stays
	// a broadcast join (0 = 65536; negative = never broadcast).
	BroadcastRowLimit int64
	// MaxAutoPartitions caps the autotuned fan-in (0 = MaxAutoPartitions).
	// Paper-scale fleets raise it: with multi-level boundaries the request
	// count grows as O(√P·S) instead of O(S·P), so wide fan-ins stay
	// affordable.
	MaxAutoPartitions int
}

// DefaultBroadcastRowLimit is the build-side row count up to which shipping
// the table inside worker payloads beats a shuffle.
const DefaultBroadcastRowLimit = 1 << 16

// Partition autotuning (Config.Partitions = 0): each boundary partition
// targets AutoRowsPerPartition input rows — enough work to amortize a
// worker's cold start and per-partition exchange requests, small enough
// that a partition pair of a join fits a Lambda-sized memory budget.
const (
	AutoRowsPerPartition = 1 << 16
	// MaxAutoPartitions caps the derived fan-in: boundary request counts
	// grow with S×P, so wide fan-ins must be asked for explicitly.
	MaxAutoPartitions = 32
)

// partitions resolves the boundary fan-in, deriving it from the row stats
// when unset.
func (c Config) partitions(stats Stats) int {
	if c.Partitions > 0 {
		return c.Partitions
	}
	var largest int64
	for _, rows := range stats.Rows {
		if rows > largest {
			largest = rows
		}
	}
	if largest <= 0 {
		return 4
	}
	p := int((largest + AutoRowsPerPartition - 1) / AutoRowsPerPartition)
	if p < 1 {
		p = 1
	}
	if cap := c.maxAutoPartitions(); p > cap {
		p = cap
	}
	return p
}

func (c Config) maxAutoPartitions() int {
	if c.MaxAutoPartitions > 0 {
		return c.MaxAutoPartitions
	}
	return MaxAutoPartitions
}

// MinMultiLevelPartitions is the fan-in floor below which ChooseVariant
// keeps a boundary single-round regardless of raw request arithmetic. The
// regroup round adds a whole extra fleet of Groups(P) workers plus one
// round of S3 latency to the critical path; below this fan-in the absolute
// request savings are cents-invisible while the latency cost is not, and
// small deterministic test fixtures should not flip algorithms when a row
// estimate wiggles.
const MinMultiLevelPartitions = 32

// ChooseVariant resolves one stage boundary's exchange algorithm from the
// analytic request model (exchange.RequestCount). forceLevels pins the
// round count (1 or 2) when the user forced it via flag or plan JSON;
// 0 lets the model decide: multi-level is chosen only when the fan-in
// reaches MinMultiLevelPartitions and the billed-request savings exceed
// the regroup fleet's own cost (Groups(P) extra invocations priced at
// Lambda rates). Write combining is inherited from base either way —
// it is strictly fewer requests, so it is never un-chosen here.
func ChooseVariant(senders, partitions, buckets int, base exchange.Variant, forceLevels int) exchange.Variant {
	single := exchange.Variant{Levels: 1, WriteCombining: base.WriteCombining}
	multi := exchange.Variant{Levels: 2, WriteCombining: base.WriteCombining}
	single.Buckets = chooseShards(single, senders, partitions, buckets)
	multi.Buckets = chooseShards(multi, senders, partitions, buckets)
	switch {
	case forceLevels == 1:
		return single
	case forceLevels >= 2:
		return multi
	}
	if partitions < MinMultiLevelPartitions || senders < 1 {
		return single
	}
	costSingle := single.Requests(senders, partitions, buckets).Cost()
	costMulti := multi.Requests(senders, partitions, buckets).Cost() +
		pricing.USD(exchange.Groups(partitions))*regroupWorkerOverhead()
	if costMulti < costSingle {
		return multi
	}
	return single
}

// MaxBucketRoundRequests is the per-bucket request budget one exchange
// round may put on a single shard bucket — buckets exist only to stay
// under S3's per-prefix rate ceilings (§4.4.1: ~5500 reads/s, 3500
// writes/s per prefix), so the budget sits safely below the read ceiling.
// Every receiver lists min(S, B) buckets, so once the pressure fits, each
// extra bucket only adds List requests.
const MaxBucketRoundRequests = 3000

// chooseShards returns the smallest shard-bucket count (of the available
// pool) whose per-round per-bucket request pressure fits the budget, or 0
// when the full pool is needed (Variant.Buckets zero = use all, the
// pre-choice behavior). Sharding B thus becomes a chosen dimension of the
// variant rather than a deployment constant.
func chooseShards(v exchange.Variant, senders, partitions, available int) int {
	if available <= 1 {
		return 0
	}
	load := senders
	if partitions > load {
		load = partitions
	}
	b := 1
	for b < available && v.RequestsPerBucketPerRound(load, b) > MaxBucketRoundRequests {
		b++
	}
	if b >= available {
		return 0
	}
	return b
}

// regroupWorkerOverhead prices one regroup worker's non-S3 footprint — its
// invocation, a conservative half second of 1.75 GiB Lambda duration, and
// its SQS result message — so boundaries only go multi-level when request
// savings actually pay for the extra fleet.
func regroupWorkerOverhead() pricing.USD {
	return pricing.LambdaPerRequest +
		pricing.USD(1.75*0.5)*pricing.LambdaGBSecond +
		pricing.SQSPerRequest
}

func (c Config) broadcastLimit() int64 {
	switch {
	case c.BroadcastRowLimit < 0:
		return 0
	case c.BroadcastRowLimit == 0:
		return DefaultBroadcastRowLimit
	default:
		return c.BroadcastRowLimit
	}
}

// InputTable names the catalog binding of a stage's boundary in consuming
// fragments.
func InputTable(stageID int) string { return fmt.Sprintf("__stage%d", stageID) }

// joinKeys normalizes a join's key columns to the multi-key form.
func joinKeys(j *engine.JoinPlan) (left, right []string) {
	if len(j.LeftKeys) > 0 || len(j.RightKeys) > 0 {
		return j.LeftKeys, j.RightKeys
	}
	return []string{j.LeftKey}, []string{j.RightKey}
}

type compiler struct {
	cfg       Config
	stats     Stats
	parts     int // resolved boundary fan-in (explicit or autotuned)
	stages    []*Stage
	broadcast map[string]bool
	nextID    int
}

// Decompose converts an optimized, resolved plan into a stage DAG. The plan
// must come out of engine.Optimize against a catalog holding every base
// table; stats supplies the per-table row counts the broadcast-vs-shuffle
// choice is made from.
//
// Decompose takes ownership of p and rewrites it in place (join sides may
// swap, shuffle joins are rebound to boundary scans) — like Optimize, it is
// a one-way pass. Callers wanting a single-node reference must build the
// plan twice, not reuse p afterwards.
func Decompose(p engine.Plan, stats Stats, cfg Config) (*Plan, error) {
	c := &compiler{cfg: cfg, stats: stats, parts: cfg.partitions(stats), broadcast: map[string]bool{}}

	// Peel the driver-only tail (OrderBy, Limit) and an optional top-level
	// projection, mirroring engine.SplitDistributed.
	var tail []engine.Plan
	cur := p
	for {
		switch n := cur.(type) {
		case *engine.OrderByPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		case *engine.LimitPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		}
		break
	}
	var topProject *engine.ProjectPlan
	var agg *engine.AggregatePlan
	switch n := cur.(type) {
	case *engine.ProjectPlan:
		if a, ok := n.In.(*engine.AggregatePlan); ok {
			topProject, agg, cur = n, a, a.In
		} else {
			topProject, cur = n, n.In
		}
	case *engine.AggregatePlan:
		agg, cur = n, n.In
	}

	// Compile the row source (scan chains and the join tree) into stages.
	rowStage, err := c.build(cur)
	if err != nil {
		return nil, err
	}

	var driver engine.Plan
	switch {
	case agg != nil && len(agg.GroupBy) > 0:
		partial, final, err := engine.SplitAggregate(agg)
		if err != nil {
			return nil, err
		}
		partial.In = rowStage.Plan
		rowStage.Plan = partial
		ps, err := partial.OutSchema()
		if err != nil {
			return nil, err
		}
		if intKeys(ps, agg.GroupBy) {
			// Repartition the partials on the group keys; one final-merge
			// worker per partition owns every group hashing to it.
			rowStage.Output = &Output{Keys: agg.GroupBy, Partitions: c.parts}
			workerFinal := final
			if topProject != nil {
				workerFinal = &engine.ProjectPlan{In: final, Exprs: topProject.Exprs, Names: topProject.Names}
			}
			inTable := InputTable(rowStage.ID)
			rebindScan(workerFinal, engine.WorkerResultTable, inTable)
			finalStage := &Stage{
				ID:        c.id(),
				Plan:      workerFinal,
				Inputs:    []Input{{StageID: rowStage.ID, Table: inTable}},
				DependsOn: []int{rowStage.ID},
				Eager:     true,
			}
			c.stages = append(c.stages, finalStage)
			fs, err := workerFinal.OutSchema()
			if err != nil {
				return nil, err
			}
			driver = &engine.ScanPlan{Table: engine.WorkerResultTable, TableSchema: fs}
		} else {
			// Non-hashable group keys: fall back to a driver-side merge of
			// the raw partials (the SplitDistributed shape).
			driver = final
			if topProject != nil {
				driver = &engine.ProjectPlan{In: driver, Exprs: topProject.Exprs, Names: topProject.Names}
			}
		}
	case agg != nil:
		// Global aggregate: partials are one row per worker — merge on the
		// driver.
		partial, final, err := engine.SplitAggregate(agg)
		if err != nil {
			return nil, err
		}
		partial.In = rowStage.Plan
		rowStage.Plan = partial
		driver = final
		if topProject != nil {
			driver = &engine.ProjectPlan{In: driver, Exprs: topProject.Exprs, Names: topProject.Names}
		}
	case topProject != nil:
		topProject.In = rowStage.Plan
		rowStage.Plan = topProject
		ts, err := topProject.OutSchema()
		if err != nil {
			return nil, err
		}
		driver = &engine.ScanPlan{Table: engine.WorkerResultTable, TableSchema: ts}
	default:
		rs, err := rowStage.Plan.OutSchema()
		if err != nil {
			return nil, err
		}
		driver = &engine.ScanPlan{Table: engine.WorkerResultTable, TableSchema: rs}
	}

	for i := len(tail) - 1; i >= 0; i-- {
		switch t := tail[i].(type) {
		case *engine.OrderByPlan:
			driver = &engine.OrderByPlan{In: driver, Keys: t.Keys}
		case *engine.LimitPlan:
			driver = &engine.LimitPlan{In: driver, N: t.N}
		}
	}

	out := &Plan{Stages: c.stages, Driver: driver}
	for t := range c.broadcast {
		out.Broadcast = append(out.Broadcast, t)
	}
	sort.Strings(out.Broadcast)
	return out, nil
}

func (c *compiler) id() int {
	id := c.nextID
	c.nextID++
	return id
}

// build compiles a row-source subtree into its own stage (appended after
// its producers, keeping c.stages topological) and returns it.
func (c *compiler) build(p engine.Plan) (*Stage, error) {
	st := &Stage{ID: c.id(), Eager: true}
	frag, err := c.embed(st, p)
	if err != nil {
		return nil, err
	}
	st.Plan = frag
	if st.Table == "" && len(st.Inputs) == 0 {
		return nil, fmt.Errorf("stageplan: stage %d scans no base table and no boundary", st.ID)
	}
	c.stages = append(c.stages, st)
	return st, nil
}

// embed walks a row-source subtree, keeping streamable operators inside st
// and cutting stage boundaries at shuffle joins.
func (c *compiler) embed(st *Stage, p engine.Plan) (engine.Plan, error) {
	switch n := p.(type) {
	case *engine.ScanPlan:
		if c.broadcast[n.Table] {
			return n, nil
		}
		if st.Table != "" && st.Table != n.Table {
			return nil, fmt.Errorf("stageplan: stage %d scans both %q and %q — a shuffle join should have split them", st.ID, st.Table, n.Table)
		}
		st.Table = n.Table
		return n, nil
	case *engine.FilterPlan:
		in, err := c.embed(st, n.In)
		if err != nil {
			return nil, err
		}
		n.In = in
		return n, nil
	case *engine.ProjectPlan:
		in, err := c.embed(st, n.In)
		if err != nil {
			return nil, err
		}
		n.In = in
		return n, nil
	case *engine.JoinPlan:
		return c.embedJoin(st, n)
	default:
		return nil, fmt.Errorf("stageplan: cannot stage plan node %T", p)
	}
}

// embedJoin chooses broadcast or shuffle for one join. Broadcast keeps the
// join inside st with its build side shipped in worker payloads; shuffle
// materializes both sides as upstream stages partitioned on the join keys
// and rebinds the join to their boundaries.
func (c *compiler) embedJoin(st *Stage, j *engine.JoinPlan) (engine.Plan, error) {
	lk, rk := joinKeys(j)
	limit := c.cfg.broadcastLimit()

	// Prefer building on the smaller side: if only the left side is a
	// broadcastable scan, swap the sides (inner joins commute; downstream
	// operators resolve columns by name).
	if !c.scanRows(j.Right, limit) && c.scanRows(j.Left, limit) {
		j.Left, j.Right = j.Right, j.Left
		j.LeftKey, j.RightKey = j.RightKey, j.LeftKey
		j.LeftKeys, j.RightKeys = j.RightKeys, j.LeftKeys
		lk, rk = joinKeys(j)
	}

	if c.scanRows(j.Right, limit) {
		left, err := c.embed(st, j.Left)
		if err != nil {
			return nil, err
		}
		j.Left = left
		c.broadcast[j.Right.(*engine.ScanPlan).Table] = true
		return j, nil
	}

	// Shuffle: both sides become stages partitioned on their join keys.
	parts := c.parts
	ls, err := c.build(j.Left)
	if err != nil {
		return nil, err
	}
	ls.Output = &Output{Keys: lk, Partitions: parts}
	rs, err := c.build(j.Right)
	if err != nil {
		return nil, err
	}
	rs.Output = &Output{Keys: rk, Partitions: parts}
	for _, s := range []*Stage{ls, rs} {
		if err := checkKeys(s, s.Output.Keys); err != nil {
			return nil, err
		}
	}

	lt, rt := InputTable(ls.ID), InputTable(rs.ID)
	lschema, err := ls.Plan.OutSchema()
	if err != nil {
		return nil, err
	}
	rschema, err := rs.Plan.OutSchema()
	if err != nil {
		return nil, err
	}
	st.Inputs = append(st.Inputs, Input{StageID: ls.ID, Table: lt}, Input{StageID: rs.ID, Table: rt})
	st.DependsOn = append(st.DependsOn, ls.ID, rs.ID)
	return &engine.JoinPlan{
		Left:     &engine.ScanPlan{Table: lt, TableSchema: lschema},
		Right:    &engine.ScanPlan{Table: rt, TableSchema: rschema},
		LeftKeys: lk, RightKeys: rk,
	}, nil
}

// scanRows reports whether p is a bare base-table scan of at most limit
// rows — the broadcast criterion. Subtrees with joins or filters above the
// scan shuffle instead (their output size is not footer-predictable).
// Filtered scans are excluded even when the post-filter estimate is small:
// broadcast ships the whole table inside every worker payload, and the
// estimate is an upper bound on selected rows, not shipped bytes.
func (c *compiler) scanRows(p engine.Plan, limit int64) bool {
	s, ok := p.(*engine.ScanPlan)
	if !ok || limit <= 0 || s.Filter != nil {
		return false
	}
	rows, known := c.stats.Rows[s.Table]
	return known && rows > 0 && rows <= limit
}

// checkKeys validates that a boundary's partition keys exist in the stage's
// output schema as Int64 columns.
func checkKeys(s *Stage, keys []string) error {
	schema, err := s.Plan.OutSchema()
	if err != nil {
		return err
	}
	for _, k := range keys {
		i := schema.Index(k)
		if i < 0 {
			return fmt.Errorf("stageplan: stage %d partition key %q not in output schema", s.ID, k)
		}
		if schema.Fields[i].Type != columnar.Int64 {
			return fmt.Errorf("stageplan: stage %d partition key %q has type %v (only BIGINT keys are hashable)", s.ID, k, schema.Fields[i].Type)
		}
	}
	return nil
}

// intKeys reports whether every key resolves to an Int64 column of schema.
func intKeys(schema *columnar.Schema, keys []string) bool {
	for _, k := range keys {
		i := schema.Index(k)
		if i < 0 || schema.Fields[i].Type != columnar.Int64 {
			return false
		}
	}
	return true
}

// rebindScan renames every scan of table from to table to in p (the
// SplitAggregate final merge scans engine.WorkerResultTable; final stages
// bind it to their boundary's catalog name instead).
func rebindScan(p engine.Plan, from, to string) {
	engine.VisitScans(p, func(s *engine.ScanPlan) {
		if s.Table == from {
			s.Table = to
		}
	})
}

// Explain renders the stage DAG for logs and tests.
func Explain(p *Plan) string {
	out := ""
	for _, s := range p.Stages {
		out += fmt.Sprintf("stage %d", s.ID)
		if s.Table != "" {
			out += fmt.Sprintf(" scan=%s", s.Table)
		}
		for _, in := range s.Inputs {
			out += fmt.Sprintf(" in=%d", in.StageID)
		}
		if s.Output != nil {
			out += fmt.Sprintf(" out=hash(%v)x%d", s.Output.Keys, s.Output.Partitions)
		} else {
			out += " out=driver"
		}
		out += "\n" + indent(engine.Explain(s.Plan))
	}
	out += "driver:\n" + indent(engine.Explain(p.Driver))
	return out
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "  " + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += "  " + s[start:]
	}
	return out
}
