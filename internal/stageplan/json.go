package stageplan

import (
	"encoding/json"
	"fmt"
	"time"

	"lambada/internal/engine"
)

// Stage plans serialize as tagged JSON like engine plans do (planjson):
// each stage's fragment travels as an engine.MarshalPlan blob, the DAG
// structure around it as plain fields. The driver embeds the per-stage wire
// form in worker invocation payloads; tests round-trip whole plans.

type stageJSON struct {
	ID        int             `json:"id"`
	Plan      json.RawMessage `json:"plan"`
	Table     string          `json:"table,omitempty"`
	Inputs    []Input         `json:"inputs,omitempty"`
	Output    *Output         `json:"output,omitempty"`
	DependsOn []int           `json:"dependsOn,omitempty"`
	Eager     bool            `json:"eager,omitempty"`
	// MaxAttempts is the stage's speculation attempt budget (0 = default).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// MaxStageWaitNs is the all-stragglers re-invocation cap in nanoseconds
	// (0 = driver default, negative = disabled).
	MaxStageWaitNs int64 `json:"maxStageWaitNs,omitempty"`
}

type planJSON struct {
	Stages    []stageJSON     `json:"stages"`
	Driver    json.RawMessage `json:"driver"`
	Broadcast []string        `json:"broadcast,omitempty"`
}

// MarshalStage serializes one stage.
func MarshalStage(s *Stage) ([]byte, error) {
	j, err := encodeStage(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(j)
}

// UnmarshalStage reconstructs a stage from MarshalStage output.
func UnmarshalStage(data []byte) (*Stage, error) {
	var j stageJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	return decodeStage(j)
}

// Marshal serializes a whole stage plan.
func Marshal(p *Plan) ([]byte, error) {
	out := planJSON{Broadcast: p.Broadcast}
	for _, s := range p.Stages {
		j, err := encodeStage(s)
		if err != nil {
			return nil, err
		}
		out.Stages = append(out.Stages, j)
	}
	d, err := engine.MarshalPlan(p.Driver)
	if err != nil {
		return nil, err
	}
	out.Driver = d
	return json.Marshal(out)
}

// Unmarshal reconstructs a stage plan from Marshal output.
func Unmarshal(data []byte) (*Plan, error) {
	var j planJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	out := &Plan{Broadcast: j.Broadcast}
	for _, sj := range j.Stages {
		s, err := decodeStage(sj)
		if err != nil {
			return nil, err
		}
		out.Stages = append(out.Stages, s)
	}
	d, err := engine.UnmarshalPlan(j.Driver)
	if err != nil {
		return nil, fmt.Errorf("stageplan: decoding driver scope: %w", err)
	}
	out.Driver = d
	return out, nil
}

func encodeStage(s *Stage) (stageJSON, error) {
	frag, err := engine.MarshalPlan(s.Plan)
	if err != nil {
		return stageJSON{}, fmt.Errorf("stageplan: encoding stage %d: %w", s.ID, err)
	}
	return stageJSON{
		ID:             s.ID,
		Plan:           frag,
		Table:          s.Table,
		Inputs:         s.Inputs,
		Output:         s.Output,
		DependsOn:      s.DependsOn,
		Eager:          s.Eager,
		MaxAttempts:    s.MaxAttempts,
		MaxStageWaitNs: int64(s.MaxStageWait),
	}, nil
}

func decodeStage(j stageJSON) (*Stage, error) {
	frag, err := engine.UnmarshalPlan(j.Plan)
	if err != nil {
		return nil, fmt.Errorf("stageplan: decoding stage %d: %w", j.ID, err)
	}
	return &Stage{
		ID:           j.ID,
		Plan:         frag,
		Table:        j.Table,
		Inputs:       j.Inputs,
		Output:       j.Output,
		DependsOn:    j.DependsOn,
		Eager:        j.Eager,
		MaxAttempts:  j.MaxAttempts,
		MaxStageWait: time.Duration(j.MaxStageWaitNs),
	}, nil
}
