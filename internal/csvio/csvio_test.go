package csvio

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func TestWriteReadRoundTrip(t *testing.T) {
	data := tpch.Gen{SF: 0.001, Seed: 2}.Generate()
	var buf bytes.Buffer
	if err := Write(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()), tpch.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != data.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), data.NumRows())
	}
	for j := range data.Columns {
		for i := 0; i < data.NumRows(); i++ {
			a, b := data.Columns[j].Float64At(i), got.Columns[j].Float64At(i)
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("col %d row %d: %v != %v", j, i, a, b)
			}
		}
	}
}

func TestReadChunking(t *testing.T) {
	data := tpch.Gen{SF: 0.001, Seed: 2}.Generate()
	var buf bytes.Buffer
	Write(&buf, data)
	var sizes []int
	err := Read(bytes.NewReader(buf.Bytes()), ReadOptions{Schema: tpch.Schema(), ChunkRows: 1000},
		func(c *columnar.Chunk) error {
			sizes = append(sizes, c.NumRows())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range sizes {
		total += s
		if i < len(sizes)-1 && s != 1000 {
			t.Errorf("chunk %d = %d rows", i, s)
		}
	}
	if total != data.NumRows() {
		t.Errorf("total = %d", total)
	}
}

func TestReadErrors(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "a", Type: columnar.Int64},
		columnar.Field{Name: "b", Type: columnar.Float64},
	)
	cases := []struct {
		name, csv string
	}{
		{"bad header", "x,b\n1,2\n"},
		{"wrong arity", "a,b\n1\n"},
		{"bad int", "a,b\nfoo,2.5\n"},
		{"bad float", "a,b\n1,bar\n"},
		{"wrong column count", "a\n1\n"},
	}
	for _, c := range cases {
		err := Read(strings.NewReader(c.csv), ReadOptions{Schema: schema}, func(*columnar.Chunk) error { return nil })
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestHeaderOnlyAndBlankLines(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "a", Type: columnar.Int64})
	got, err := ReadAll(strings.NewReader("a\n"), schema)
	if err != nil || got.NumRows() != 0 {
		t.Errorf("header-only: %v rows, err %v", got.NumRows(), err)
	}
	got, err = ReadAll(strings.NewReader("a\n1\n\n2\n"), schema)
	if err != nil || got.NumRows() != 2 {
		t.Errorf("blank lines: %v rows, err %v", got.NumRows(), err)
	}
	// Missing trailing newline.
	got, err = ReadAll(strings.NewReader("a\n1\n2"), schema)
	if err != nil || got.NumRows() != 2 {
		t.Errorf("no trailing newline: %v rows, err %v", got.NumRows(), err)
	}
}

func TestConvertToLpq(t *testing.T) {
	data := tpch.Gen{SF: 0.001, Seed: 5}.Generate()
	var csvBuf bytes.Buffer
	Write(&csvBuf, data)
	var lpqBuf bytes.Buffer
	rows, err := Convert(bytes.NewReader(csvBuf.Bytes()), &lpqBuf, tpch.Schema(),
		lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip})
	if err != nil {
		t.Fatal(err)
	}
	if rows != int64(data.NumRows()) {
		t.Errorf("converted %d rows, want %d", rows, data.NumRows())
	}
	// The lpq file is much smaller than the CSV (the paper: 705 GiB CSV vs
	// 151 GiB Parquet).
	if lpqBuf.Len() >= csvBuf.Len() {
		t.Errorf("lpq (%d) not smaller than CSV (%d)", lpqBuf.Len(), csvBuf.Len())
	}
	r, err := lpq.OpenReader(bytes.NewReader(lpqBuf.Bytes()), int64(lpqBuf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Column("l_shipdate").Int64s, data.Column("l_shipdate").Int64s) {
		t.Error("shipdates corrupted in conversion")
	}
}

func TestCSVSourceQueries(t *testing.T) {
	data := tpch.Gen{SF: 0.001, Seed: 5}.Generate()
	var buf bytes.Buffer
	Write(&buf, data)
	src := &Source{Data: buf.Bytes(), TableSchema: tpch.Schema()}
	cat := engine.Catalog{"lineitem": src}
	plan := &engine.AggregatePlan{
		Aggs: []engine.AggSpec{{Func: engine.AggCount, Name: "n"}},
		In: &engine.FilterPlan{
			Pred: engine.NewBin(engine.OpGE, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateLo)),
			In:   &engine.ScanPlan{Table: "lineitem"},
		},
	}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, s := range data.Column("l_shipdate").Int64s {
		if s >= tpch.Q6ShipDateLo {
			want++
		}
	}
	if got := out.Column("n").Int64s[0]; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

// Property: any int64 matrix round-trips through CSV exactly.
func TestPropertyIntRoundTrip(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "a", Type: columnar.Int64},
		columnar.Field{Name: "b", Type: columnar.Int64},
	)
	f := func(as, bs []int64) bool {
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		c := columnar.NewChunk(schema, n)
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, as[:n]...)
		c.Columns[1].Int64s = append(c.Columns[1].Int64s, bs[:n]...)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()), schema)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Columns[0].Int64s, c.Columns[0].Int64s) &&
			reflect.DeepEqual(got.Columns[1].Int64s, c.Columns[1].Int64s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
