// Package csvio reads and writes relations as CSV, the uncompressed
// baseline format of the paper's evaluation (§5.1: "in uncompressed CSV,
// the size of the relation is 705 GiB"). It provides the ingestion path a
// deployment needs: CSV → columnar chunks → lpq files, plus an engine
// source for querying CSV directly (at CSV prices: no projection push-down,
// no pruning — every byte is read, which is exactly why Parquet wins).
package csvio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Write serializes a chunk as CSV with a header row.
func Write(w io.Writer, c *columnar.Chunk) error {
	bw := bufio.NewWriter(w)
	for i, f := range c.Schema.Fields {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(f.Name); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	n := c.NumRows()
	for row := 0; row < n; row++ {
		for j, col := range c.Columns {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			var s string
			switch c.Schema.Fields[j].Type {
			case columnar.Int64:
				s = strconv.FormatInt(col.Int64s[row], 10)
			case columnar.Float64:
				s = strconv.FormatFloat(col.Float64s[row], 'g', -1, 64)
			default:
				s = strconv.FormatBool(col.Bools[row])
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOptions configure parsing.
type ReadOptions struct {
	// Schema gives the expected columns. If nil, the header is parsed and
	// all columns default to Float64 unless every value of a column parses
	// as an integer (schema inference on the first chunk).
	Schema *columnar.Schema
	// ChunkRows is the number of rows per yielded chunk (default 65536).
	ChunkRows int
}

// Read parses CSV (with header) into chunks, yielding every ChunkRows rows.
func Read(r io.Reader, opts ReadOptions, yield func(*columnar.Chunk) error) error {
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = 65536
	}
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readLine(br)
	if err != nil {
		return fmt.Errorf("csvio: reading header: %w", err)
	}
	names := strings.Split(header, ",")
	schema := opts.Schema
	if schema != nil {
		if schema.Len() != len(names) {
			return fmt.Errorf("csvio: header has %d columns, schema %d", len(names), schema.Len())
		}
		for i, n := range names {
			if schema.Fields[i].Name != strings.TrimSpace(n) {
				return fmt.Errorf("csvio: header column %d is %q, schema says %q", i, n, schema.Fields[i].Name)
			}
		}
	} else {
		schema = &columnar.Schema{}
		for _, n := range names {
			schema.Fields = append(schema.Fields, columnar.Field{Name: strings.TrimSpace(n), Type: columnar.Float64})
		}
	}

	chunk := columnar.NewChunk(schema, opts.ChunkRows)
	lineNo := 1
	for {
		line, err := readLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		lineNo++
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != schema.Len() {
			return fmt.Errorf("csvio: line %d has %d fields, want %d", lineNo, len(fields), schema.Len())
		}
		for j, s := range fields {
			s = strings.TrimSpace(s)
			switch schema.Fields[j].Type {
			case columnar.Int64:
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return fmt.Errorf("csvio: line %d column %q: %w", lineNo, schema.Fields[j].Name, err)
				}
				chunk.Columns[j].AppendInt64(v)
			case columnar.Float64:
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("csvio: line %d column %q: %w", lineNo, schema.Fields[j].Name, err)
				}
				chunk.Columns[j].AppendFloat64(v)
			default:
				v, err := strconv.ParseBool(s)
				if err != nil {
					return fmt.Errorf("csvio: line %d column %q: %w", lineNo, schema.Fields[j].Name, err)
				}
				chunk.Columns[j].AppendBool(v)
			}
		}
		if chunk.NumRows() >= opts.ChunkRows {
			if err := yield(chunk); err != nil {
				return err
			}
			chunk = columnar.NewChunk(schema, opts.ChunkRows)
		}
	}
	if chunk.NumRows() > 0 {
		return yield(chunk)
	}
	return nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\r\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// ReadAll parses the whole input into one chunk.
func ReadAll(r io.Reader, schema *columnar.Schema) (*columnar.Chunk, error) {
	out := columnar.NewChunk(schema, 0)
	err := Read(r, ReadOptions{Schema: schema}, func(c *columnar.Chunk) error {
		for j := range out.Columns {
			switch out.Columns[j].Type {
			case columnar.Int64:
				out.Columns[j].Int64s = append(out.Columns[j].Int64s, c.Columns[j].Int64s...)
			case columnar.Float64:
				out.Columns[j].Float64s = append(out.Columns[j].Float64s, c.Columns[j].Float64s...)
			default:
				out.Columns[j].Bools = append(out.Columns[j].Bools, c.Columns[j].Bools...)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Convert re-encodes CSV into an lpq file, the ETL step a Lambada adopter
// runs once so that queries benefit from column pruning and statistics.
func Convert(r io.Reader, w io.Writer, schema *columnar.Schema, opts lpq.WriterOptions) (rows int64, err error) {
	lw := lpq.NewWriter(w, schema, opts)
	err = Read(r, ReadOptions{Schema: schema}, func(c *columnar.Chunk) error {
		rows += int64(c.NumRows())
		return lw.Write(c)
	})
	if err != nil {
		return rows, err
	}
	return rows, lw.Close()
}

// Source serves an in-memory CSV payload as an engine scan source. CSV has
// no column chunks or statistics, so projection happens after full parsing
// and prune predicates are ignored — the cost structure the paper's Parquet
// choice avoids.
type Source struct {
	Data        []byte
	TableSchema *columnar.Schema
	ChunkRows   int
}

// Schema returns the declared schema.
func (s *Source) Schema() (*columnar.Schema, error) { return s.TableSchema, nil }

// Scan parses the entire payload, then projects.
func (s *Source) Scan(proj []string, _ []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	return Read(strings.NewReader(string(s.Data)), ReadOptions{Schema: s.TableSchema, ChunkRows: s.ChunkRows},
		func(c *columnar.Chunk) error {
			if proj != nil {
				p, err := c.Project(proj...)
				if err != nil {
					return err
				}
				c = p
			}
			return yield(c)
		})
}
