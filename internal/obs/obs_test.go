package obs

import (
	"bytes"
	"testing"
	"time"
)

// TestNilTracerIsInert: every method on a nil *Tracer is a safe no-op, so
// call sites thread tracers unconditionally.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	id := tr.StartSpan(KindQuery, "q", 0, 0)
	if id != 0 {
		t.Fatalf("nil StartSpan = %d, want 0", id)
	}
	tr.EndSpan(id, time.Second)
	tr.SetStart(id, time.Second)
	tr.SetTag(id, "k", "v")
	tr.AddCost(id, Cost{S3Get: 1})
	tr.Bind("env", 1)
	tr.Pop("env")
	tr.ChargeTo("env", Cost{S3Get: 1})
	tr.TagTo("env", "k", "v")
	tr.Release("env", time.Second)
	if tr.Current("env") != 0 {
		t.Fatal("nil Current != 0")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil Spans = %v, want nil", got)
	}
	if _, ok := tr.Span(1); ok {
		t.Fatal("nil Span(1) found a span")
	}
}

// TestChargeToInnermostBoundSpan: Bind/Pop maintain a per-environment
// stack, charges land on the innermost span exactly once, and charges
// with no bound span are dropped.
func TestChargeToInnermostBoundSpan(t *testing.T) {
	tr := New()
	env := "driver"
	outer := tr.StartSpan(KindQuery, "q1", 0, 0)
	inner := tr.StartSpan(KindOp, "s3.get", outer, time.Second)

	tr.ChargeTo(env, Cost{S3Get: 7}) // unbound: dropped
	tr.Bind(env, outer)
	tr.ChargeTo(env, Cost{S3Get: 1})
	tr.Bind(env, inner)
	tr.ChargeTo(env, Cost{S3Get: 2, S3ReadBytes: 100})
	tr.Pop(env)
	tr.ChargeTo(env, Cost{SQSRequests: 3})
	tr.Release(env, 2*time.Second)
	tr.ChargeTo(env, Cost{S3Put: 9}) // released: dropped

	o, _ := tr.Span(outer)
	i, _ := tr.Span(inner)
	if o.Cost != (Cost{S3Get: 1, SQSRequests: 3}) {
		t.Errorf("outer cost %+v", o.Cost)
	}
	if i.Cost != (Cost{S3Get: 2, S3ReadBytes: 100}) {
		t.Errorf("inner cost %+v", i.Cost)
	}
	if total := TotalCost(tr.Spans()); total != (Cost{S3Get: 3, S3ReadBytes: 100, SQSRequests: 3}) {
		t.Errorf("TotalCost %+v", total)
	}
	// Release back-fills End on spans still in the stack; inner was
	// popped first, so only outer is closed.
	if o.End != 2*time.Second {
		t.Errorf("Release did not back-fill outer end: %v", o.End)
	}
	if i.End != 0 {
		t.Errorf("popped inner span was back-filled: %v", i.End)
	}
}

// TestSubtreeCost sums a span and its descendants only.
func TestSubtreeCost(t *testing.T) {
	tr := New()
	root := tr.StartSpan(KindQuery, "q", 0, 0)
	st := tr.StartSpan(KindStage, "stage-1", root, 0)
	inv := tr.StartSpan(KindInvoke, "w0", st, 0)
	other := tr.StartSpan(KindStage, "stage-2", root, 0)
	tr.AddCost(root, Cost{SQSRequests: 1})
	tr.AddCost(st, Cost{S3Get: 2})
	tr.AddCost(inv, Cost{S3Get: 4, LambdaMiBNs: 1000})
	tr.AddCost(other, Cost{S3Put: 8})

	if c := SubtreeCost(tr.Spans(), st); c != (Cost{S3Get: 6, LambdaMiBNs: 1000}) {
		t.Errorf("stage subtree %+v", c)
	}
	if c := SubtreeCost(tr.Spans(), root); c != (Cost{S3Get: 6, S3Put: 8, SQSRequests: 1, LambdaMiBNs: 1000}) {
		t.Errorf("root subtree %+v", c)
	}
}

// TestCriticalPathTilesRoot: segments are chronological, non-overlapping,
// and their durations sum exactly to the root span's duration; uncovered
// intervals are attributed to the root.
func TestCriticalPathTilesRoot(t *testing.T) {
	tr := New()
	mk := func(kind Kind, name string, parent SpanID, from, to time.Duration) SpanID {
		id := tr.StartSpan(kind, name, parent, from)
		tr.EndSpan(id, to)
		return id
	}
	root := mk(KindQuery, "q", 0, 0, 10*time.Second)
	st := mk(KindStage, "s1", root, 1*time.Second, 7*time.Second)
	mk(KindInvoke, "w0", st, 2*time.Second, 5*time.Second) // deepest mid-stage
	mk(KindInvoke, "w1", st, 3*time.Second, 6*time.Second) // latest-reaching invoke
	mk(KindOp, "tail", root, 8*time.Second, 9*time.Second) // gap before and after

	segs := CriticalPath(tr.Spans(), root)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	var sum time.Duration
	cursor := time.Duration(0)
	for i, s := range segs {
		if s.From != cursor {
			t.Fatalf("segment %d starts at %v, cursor %v (not a tiling)", i, s.From, cursor)
		}
		if s.To < s.From {
			t.Fatalf("segment %d inverted: %+v", i, s)
		}
		cursor = s.To
		sum += s.Duration()
	}
	if cursor != 10*time.Second || sum != 10*time.Second {
		t.Fatalf("tiling ends at %v, durations sum %v, want 10s both", cursor, sum)
	}
	// The root owns the [0,1s), [7s,8s) and [9s,10s) gaps.
	rootTime := time.Duration(0)
	for _, s := range segs {
		if s.Span == root {
			rootTime += s.Duration()
		}
	}
	if rootTime != 3*time.Second {
		t.Errorf("root-attributed gap time %v, want 3s", rootTime)
	}
}

// TestChromeExportDeterministicAndValid: two identical span sets export
// byte-identically, and the export passes the validator with the right
// event count.
func TestChromeExportDeterministicAndValid(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		q := tr.StartSpan(KindQuery, "q1", 0, 0)
		inv := tr.StartSpan(KindInvoke, "worker-0", q, time.Millisecond)
		op := tr.StartSpan(KindOp, "s3.get", inv, 2*time.Millisecond)
		tr.SetTag(inv, "worker", "0")
		tr.SetTag(inv, "cold", "true")
		tr.AddCost(op, Cost{S3Get: 1, S3ReadBytes: 4096})
		tr.EndSpan(op, 3*time.Millisecond)
		tr.EndSpan(inv, 4*time.Millisecond)
		tr.EndSpan(q, 5*time.Millisecond)
		return tr
	}
	var a, b bytes.Buffer
	if err := ExportChromeTrace(&a, build().Spans()); err != nil {
		t.Fatal(err)
	}
	if err := ExportChromeTrace(&b, build().Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical span sets exported differently")
	}
	n, err := ValidateChromeTrace(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("validated %d events, want 3", n)
	}
}

// TestValidateChromeTraceRejections covers the validator's failure modes.
func TestValidateChromeTraceRejections(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no traceEvents": `{"displayTimeUnit":"ms"}`,
		"missing ph":     `{"traceEvents":[{"name":"x","ts":0,"pid":1,"tid":1}]}`,
		"missing dur":    `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"negative dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if n, err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err != nil || n != 0 {
		t.Errorf("empty traceEvents: n=%d err=%v", n, err)
	}
}
