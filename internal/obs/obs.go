// Package obs is the deterministic tracing and metrics layer: a
// virtual-clock-timestamped span tree over the whole query lifecycle
// (query → stage → worker invocation → substrate operation) where every
// span carries exact billed-cost attribution.
//
// The package is dependency-free (standard library only) and nil-safe:
// every method on a nil *Tracer is a no-op, so call sites thread a tracer
// unconditionally and pay nothing when tracing is off.
//
// Determinism contract: span IDs are allocated sequentially in call
// order and timestamps are supplied by the caller from the simulation
// clock. Under the DES kernel execution is single-token and virtual time
// is exact, so two runs of the same seeded query produce byte-identical
// exports (see ExportChromeTrace). Under the functional (goroutine)
// runtime spans are still correct but allocation order — and therefore
// the export — is not reproducible.
//
// Cost attribution: services charge the tracer at the exact points they
// charge the pricing meter, via ChargeTo(env, cost). The charge lands on
// the innermost span bound to that environment (Bind/Pop maintain a
// per-environment span stack), so each billed request appears on exactly
// one span and summing Cost over all spans reproduces the meter movement
// exactly — no double counting, no estimation.
package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer. 0 means "no span" (the
// parent of a root span, or the result of any method on a nil Tracer).
type SpanID int32

// Kind classifies a span in the taxonomy.
type Kind string

const (
	KindQuery  Kind = "query"  // one whole driver query
	KindPhase  Kind = "phase"  // driver-side phase: plan, collect, merge, sweep
	KindStage  Kind = "stage"  // one stage of the distributed plan
	KindInvoke Kind = "invoke" // one Lambda worker invocation (an attempt)
	KindOp     Kind = "op"     // one substrate operation (S3/SQS/DynamoDB/Lambda API call)
)

// Cost is exact billed-cost attribution in integer units. Request counts
// mirror pricing.CostMeter movements one-to-one; LambdaMiBNs is billed
// duration as memoryMiB·nanoseconds (integer-exact: converting to GB-s
// and dollars happens only at display time, so sums are associative).
type Cost struct {
	S3Get         int64 `json:"s3Get,omitempty"`
	S3Put         int64 `json:"s3Put,omitempty"`
	S3List        int64 `json:"s3List,omitempty"`
	S3ReadBytes   int64 `json:"s3ReadBytes,omitempty"`
	SQSRequests   int64 `json:"sqsRequests,omitempty"`
	DynamoReads   int64 `json:"dynamoReads,omitempty"`
	DynamoWrites  int64 `json:"dynamoWrites,omitempty"`
	LambdaInvokes int64 `json:"lambdaInvokes,omitempty"`
	LambdaMiBNs   int64 `json:"lambdaMiBNs,omitempty"`
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.S3Get += o.S3Get
	c.S3Put += o.S3Put
	c.S3List += o.S3List
	c.S3ReadBytes += o.S3ReadBytes
	c.SQSRequests += o.SQSRequests
	c.DynamoReads += o.DynamoReads
	c.DynamoWrites += o.DynamoWrites
	c.LambdaInvokes += o.LambdaInvokes
	c.LambdaMiBNs += o.LambdaMiBNs
}

// IsZero reports whether no cost has been attributed.
func (c Cost) IsZero() bool { return c == Cost{} }

// Span is one node of the trace tree. Start/End are virtual timestamps
// (durations since the simulation epoch). End == 0 with Start > 0 means
// the span never finished (e.g. a worker crash unwound past it); End is
// back-filled when the owning environment is released.
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   Kind
	Name   string
	Start  time.Duration
	End    time.Duration
	Tags   map[string]string
	Cost   Cost
}

// Duration is the span's extent (zero if it never ended).
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Tracer records spans. The zero value is not usable; construct with
// New. A nil Tracer is the no-op tracer: every method returns zero
// values and records nothing.
type Tracer struct {
	mu    sync.Mutex
	spans []Span           // spans[i] has ID i+1
	binds map[any][]SpanID // per-environment span stack
}

// New returns an empty Tracer.
func New() *Tracer {
	return &Tracer{binds: make(map[any][]SpanID)}
}

// Enabled reports whether this tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan records a new span starting at the virtual instant at.
// parent may be 0 for a root span.
func (t *Tracer) StartSpan(kind Kind, name string, parent SpanID, at time.Duration) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: at})
	return id
}

// EndSpan closes the span at the virtual instant at. Ending span 0 or an
// already-ended span is a no-op.
func (t *Tracer) EndSpan(id SpanID, at time.Duration) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) && t.spans[id-1].End == 0 {
		t.spans[id-1].End = at
	}
}

// SetStart rewrites the span's start instant (used when a span is
// allocated at plan time but timed from launch).
func (t *Tracer) SetStart(id SpanID, at time.Duration) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		t.spans[id-1].Start = at
	}
}

// SetTag sets a string tag on the span.
func (t *Tracer) SetTag(id SpanID, key, value string) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		sp := &t.spans[id-1]
		if sp.Tags == nil {
			sp.Tags = make(map[string]string)
		}
		sp.Tags[key] = value
	}
}

// AddCost accumulates billed cost directly onto the span.
func (t *Tracer) AddCost(id SpanID, c Cost) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.spans) {
		t.spans[id-1].Cost.Add(c)
	}
}

// Bind pushes id onto env's span stack: subsequent ChargeTo(env, …)
// calls land on it until it is popped or a deeper span is bound. env is
// keyed by interface identity; all simulation environments are pointers,
// so identity comparison is well-defined.
func (t *Tracer) Bind(env any, id SpanID) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.binds[env] = append(t.binds[env], id)
}

// Pop removes the innermost span bound to env.
func (t *Tracer) Pop(env any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.binds[env]; len(st) > 0 {
		t.binds[env] = st[:len(st)-1]
	}
}

// Current returns the innermost span bound to env (0 if none).
func (t *Tracer) Current(env any) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.binds[env]; len(st) > 0 {
		return st[len(st)-1]
	}
	return 0
}

// ChargeTo attributes billed cost to the innermost span bound to env.
// Charges with no bound span are dropped (e.g. setup traffic outside any
// query).
func (t *Tracer) ChargeTo(env any, c Cost) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.binds[env]; len(st) > 0 {
		id := st[len(st)-1]
		t.spans[id-1].Cost.Add(c)
	}
}

// TagTo sets a tag on the innermost span bound to env.
func (t *Tracer) TagTo(env any, key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := SpanID(0)
	if st := t.binds[env]; len(st) > 0 {
		id = st[len(st)-1]
	}
	t.mu.Unlock()
	t.SetTag(id, key, value)
}

// Release drops env's entire span stack, back-filling End = at on every
// still-open span in it. This is the crash-safe unbind: a panicking
// worker unwinds past its op-span Pops, and Release closes the dangling
// spans at the crash instant.
func (t *Tracer) Release(env any, at time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range t.binds[env] {
		if t.spans[id-1].End == 0 {
			t.spans[id-1].End = at
		}
	}
	delete(t.binds, env)
}

// Spans returns a copy of every recorded span, in allocation (ID) order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if out[i].Tags != nil {
			tags := make(map[string]string, len(out[i].Tags))
			for k, v := range out[i].Tags {
				tags[k] = v
			}
			out[i].Tags = tags
		}
	}
	return out
}

// Span returns a copy of one span.
func (t *Tracer) Span(id SpanID) (Span, bool) {
	if t == nil || id <= 0 {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > len(t.spans) {
		return Span{}, false
	}
	return t.spans[id-1], true
}

// TotalCost sums billed cost over every span. Because each charge lands
// on exactly one span, this equals the pricing-meter movement over the
// traced window.
func TotalCost(spans []Span) Cost {
	var c Cost
	for _, s := range spans {
		c.Add(s.Cost)
	}
	return c
}

// SubtreeCost sums billed cost over root and all its descendants.
func SubtreeCost(spans []Span, root SpanID) Cost {
	children := childIndex(spans)
	var c Cost
	var walk func(SpanID)
	walk = func(id SpanID) {
		c.Add(spans[id-1].Cost)
		for _, ch := range children[id] {
			walk(ch)
		}
	}
	if root > 0 && int(root) <= len(spans) {
		walk(root)
	}
	return c
}

func childIndex(spans []Span) map[SpanID][]SpanID {
	children := make(map[SpanID][]SpanID, len(spans))
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s.ID)
		}
	}
	return children
}

func sortedTagKeys(tags map[string]string) []string {
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
