package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace-event ("X" complete event). Field
// order and map-key order are fixed (encoding/json sorts map keys), so
// under DES the export is byte-identical across runs.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ExportChromeTrace writes the span set as Chrome trace-event JSON,
// loadable directly in Perfetto / chrome://tracing. Spans are emitted in
// ID (allocation) order as "X" complete events; each worker invocation
// gets its own thread track (tid = invocation span ID), everything else
// rides the driver track (tid 1). Tags and non-zero cost counters are
// attached as args. Timestamps are virtual microseconds since the
// simulation epoch — under DES the output is byte-identical across runs
// of the same seeded query.
func ExportChromeTrace(w io.Writer, spans []Span) error {
	byID := make(map[SpanID]*Span, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	// track returns the thread: the span's nearest invoke ancestor (or
	// itself when it is an invocation), else the driver track.
	track := func(s *Span) int {
		for cur := s; cur != nil; cur = byID[cur.Parent] {
			if cur.Kind == KindInvoke {
				return int(cur.ID) + 1 // keep tid 1 for the driver
			}
		}
		return 1
	}
	events := make([]chromeEvent, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		ev := chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration().Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  track(s),
		}
		args := make(map[string]any)
		args["span"] = int(s.ID)
		if s.Parent != 0 {
			args["parent"] = int(s.Parent)
		}
		for _, k := range sortedTagKeys(s.Tags) {
			args["tag."+k] = s.Tags[k]
		}
		if !s.Cost.IsZero() {
			args["cost"] = s.Cost
		}
		ev.Args = args
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks data against the trace-event schema subset
// this package emits: a top-level traceEvents array whose entries all
// carry name/cat/ph/ts/pid/tid, with ph "X" events also carrying a
// non-negative dur. Returns the event count.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := requireString(ev, "ph", &ph); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := requireString(ev, "name", &name); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		var ts float64
		if err := requireNumber(ev, "ts", &ts); err != nil {
			return 0, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		for _, field := range []string{"pid", "tid"} {
			var n float64
			if err := requireNumber(ev, field, &n); err != nil {
				return 0, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
		}
		if ph == "X" {
			var dur float64
			if err := requireNumber(ev, "dur", &dur); err != nil {
				return 0, fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
			if dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): negative dur %v", i, name, dur)
			}
		}
	}
	return len(doc.TraceEvents), nil
}

func requireString(ev map[string]json.RawMessage, field string, out *string) error {
	raw, ok := ev[field]
	if !ok {
		return fmt.Errorf("missing %q", field)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("field %q: %w", field, err)
	}
	return nil
}

func requireNumber(ev map[string]json.RawMessage, field string, out *float64) error {
	raw, ok := ev[field]
	if !ok {
		return fmt.Errorf("missing %q", field)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("field %q: %w", field, err)
	}
	return nil
}
