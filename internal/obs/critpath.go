package obs

import (
	"sort"
	"time"
)

// CriticalSegment is one interval of the critical path: the most
// specific span that bounded end-to-end latency during [From, To).
// Intervals no recorded span covers are attributed to the root span
// itself (driver-side work between spans).
type CriticalSegment struct {
	Span SpanID
	From time.Duration
	To   time.Duration
}

// Duration is the segment's extent.
func (c CriticalSegment) Duration() time.Duration { return c.To - c.From }

// CriticalPath extracts the latency-bounding chain from a span tree: a
// sequence of segments that exactly tiles [root.Start, root.End] in
// chronological order. At every instant the chosen span is the deepest
// (latest-starting) span in root's subtree still active at that time,
// found by a backward sweep from root.End: repeatedly pick the span
// whose end reaches the current cursor, walk the cursor back to that
// span's start, and attribute uncovered gaps to the root.
//
// Because the segments tile the root interval by construction, their
// durations sum exactly to the root span's duration — the end-to-end
// virtual latency. This is the per-query signal a cost-based optimizer
// needs: shortening any span NOT on the critical path cannot improve
// latency.
func CriticalPath(spans []Span, root SpanID) []CriticalSegment {
	if root <= 0 || int(root) > len(spans) {
		return nil
	}
	rs := spans[root-1]
	if rs.End <= rs.Start {
		return nil
	}

	// Subtree membership (excluding the root itself).
	children := childIndex(spans)
	member := make(map[SpanID]bool, len(spans))
	var walk func(SpanID)
	walk = func(id SpanID) {
		for _, ch := range children[id] {
			member[ch] = true
			walk(ch)
		}
	}
	walk(root)

	var segs []CriticalSegment
	cur := rs.End
	for cur > rs.Start {
		// Best candidate: active before cur, reaching furthest toward
		// cur; prefer the latest-starting (most specific) span, then the
		// highest ID, so the choice is deterministic.
		var best *Span
		var bestEff time.Duration
		for i := range spans {
			s := &spans[i]
			if !member[s.ID] || s.End <= s.Start {
				continue
			}
			if s.Start >= cur || s.End <= rs.Start {
				continue
			}
			eff := s.End
			if eff > cur {
				eff = cur
			}
			if best == nil || eff > bestEff ||
				(eff == bestEff && (s.Start > best.Start || (s.Start == best.Start && s.ID > best.ID))) {
				best, bestEff = s, eff
			}
		}
		if best == nil {
			segs = append(segs, CriticalSegment{Span: root, From: rs.Start, To: cur})
			break
		}
		if bestEff < cur {
			// Nothing covered (bestEff, cur): root-attributed gap.
			segs = append(segs, CriticalSegment{Span: root, From: bestEff, To: cur})
			cur = bestEff
			continue
		}
		from := best.Start
		if from < rs.Start {
			from = rs.Start
		}
		segs = append(segs, CriticalSegment{Span: best.ID, From: from, To: cur})
		cur = from
	}

	// Backward sweep emitted latest-first; return chronological.
	sort.Slice(segs, func(i, j int) bool { return segs[i].From < segs[j].From })
	return segs
}
