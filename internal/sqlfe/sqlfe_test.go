package sqlfe

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/tpch"
)

// Q1SQL is TPC-H Query 1 over the numeric schema.
const Q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
`

// Q6SQL is TPC-H Query 6.
const Q6SQL = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24
`

func lineitemCat(t *testing.T) (engine.Catalog, *columnar.Chunk) {
	t.Helper()
	data := tpch.Gen{SF: 0.002, Seed: 21}.Generate()
	return engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema(), data)}, data
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t GROUP BY",
		"SELECT SUM(x FROM t",
		"SELECT x FROM t LIMIT abc",
		"SELECT x FROM t ORDER BY y", // y not in select list
		"SELECT x, SUM(y) FROM t",    // non-group-key non-aggregate
		"SELECT AVG(*) FROM t",
		"SELECT x FROM t WHERE x @ 3",
		"SELECT x FROM t WHERE s = 'unterminated",
		"SELECT x FROM t trailing",
		"SELECT x FROM t GROUP BY x", // group by without aggregates
		"SELECT x FROM t WHERE DATE 'nonsense' < 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseSimpleProjection(t *testing.T) {
	plan, err := Parse("SELECT a, a + b AS s FROM t WHERE a < 10 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	s := engine.Explain(plan)
	for _, want := range []string{"Limit 5", "Project", "Filter (a < 10)", "Scan t"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %q:\n%s", want, s)
		}
	}
}

func TestDateLiteralArithmetic(t *testing.T) {
	plan, err := Parse("SELECT x FROM t WHERE x <= DATE '1998-12-01' - INTERVAL '90' DAY")
	if err != nil {
		t.Fatal(err)
	}
	s := engine.Explain(plan)
	want := tpch.Q1ShipDateCutoff
	if !strings.Contains(s, "(x <= "+itoa(want)+")") {
		t.Errorf("date arithmetic wrong:\n%s (want cutoff %d)", s, want)
	}
}

func itoa(v int64) string {
	return strings.TrimSpace(strings.Fields(engine.ConstInt(v).String())[0])
}

func TestQ1SQLMatchesReference(t *testing.T) {
	cat, data := lineitemCat(t)
	plan, err := Parse(Q1SQL)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	ref := tpch.Q1Reference(data)
	if out.NumRows() != len(ref) {
		t.Fatalf("rows = %d, want %d", out.NumRows(), len(ref))
	}
	for i, r := range ref {
		if got := out.Column("sum_charge").Float64s[i]; math.Abs(got-r.SumCharge) > 1e-6*r.SumCharge {
			t.Errorf("row %d sum_charge = %v, want %v", i, got, r.SumCharge)
		}
		if got := out.Column("count_order").Int64s[i]; got != r.Count {
			t.Errorf("row %d count = %d, want %d", i, got, r.Count)
		}
		if got := out.Column("avg_disc").Float64s[i]; math.Abs(got-r.AvgDisc) > 1e-9 {
			t.Errorf("row %d avg_disc = %v, want %v", i, got, r.AvgDisc)
		}
	}
}

func TestQ6SQLMatchesReference(t *testing.T) {
	cat, data := lineitemCat(t)
	plan, err := Parse(Q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", got, want)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 1)
	c.Columns[0].AppendInt64(10)
	cat := engine.Catalog{"t": engine.NewMemSource(schema, c)}
	// 2 + 3 * x = 32, not 50.
	plan, err := Parse("SELECT 2 + 3 * x AS y FROM t")
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Column("y").Int64s[0]; got != 32 {
		t.Errorf("2+3*10 = %d, want 32", got)
	}
	// Unary minus.
	plan, _ = Parse("SELECT -x AS y FROM t")
	out, _ = engine.Execute(plan, cat)
	if got := out.Column("y").Int64s[0]; got != -10 {
		t.Errorf("-x = %d", got)
	}
	// Parens override.
	plan, _ = Parse("SELECT (2 + 3) * x AS y FROM t")
	out, _ = engine.Execute(plan, cat)
	if got := out.Column("y").Int64s[0]; got != 50 {
		t.Errorf("(2+3)*10 = %d, want 50", got)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	plan, err := Parse("select x from t where x between 1 and 3 order by x desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 5)
	for _, v := range []int64{5, 3, 1, 2, 4} {
		c.Columns[0].AppendInt64(v)
	}
	out, err := engine.Execute(plan, engine.Catalog{"t": engine.NewMemSource(schema, c)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Column("x").Int64s, []int64{3, 2}) {
		t.Errorf("result = %v", out.Column("x").Int64s)
	}
}

func TestCommentsAndMinMax(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 4)
	for _, v := range []int64{4, 7, 2, 9} {
		c.Columns[0].AppendInt64(v)
	}
	plan, err := Parse("SELECT MIN(x) AS lo, MAX(x) AS hi, COUNT(*) AS n FROM t -- trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(plan, engine.Catalog{"t": engine.NewMemSource(schema, c)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Column("lo").Int64s[0] != 2 || out.Column("hi").Int64s[0] != 9 || out.Column("n").Int64s[0] != 4 {
		t.Errorf("min/max/count = %v/%v/%v", out.Column("lo").Int64s, out.Column("hi").Int64s, out.Column("n").Int64s)
	}
}

// TestQualifiedColumnRefs: table-qualified references parse anywhere an
// expression or group key can appear (multi-table join queries read
// naturally); columns still resolve by their unique names.
func TestQualifiedColumnRefs(t *testing.T) {
	plan, err := Parse(`
SELECT orders.o_orderpriority, COUNT(*) AS n, SUM(lineitem.l_extendedprice) AS total
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE lineitem.l_receiptdate >= 100 AND lineitem.l_commitdate < lineitem.l_receiptdate
GROUP BY orders.o_orderpriority
ORDER BY o_orderpriority`)
	if err != nil {
		t.Fatal(err)
	}
	var agg *engine.AggregatePlan
	for n := plan; n != nil; n = n.Child() {
		if a, ok := n.(*engine.AggregatePlan); ok {
			agg = a
		}
	}
	if agg == nil {
		t.Fatal("no aggregate in plan")
	}
	if len(agg.GroupBy) != 1 || agg.GroupBy[0] != "o_orderpriority" {
		t.Fatalf("group by = %v", agg.GroupBy)
	}
	if agg.Aggs[1].Arg.String() != "l_extendedprice" {
		t.Fatalf("sum arg = %v", agg.Aggs[1].Arg)
	}
}

// TestUnknownQualifierRejected: a qualifier naming a table that is not in
// the FROM/JOIN list is a query-text bug, not a resolvable reference.
func TestUnknownQualifierRejected(t *testing.T) {
	bad := []string{
		`SELECT SUM(nosuch.l_extendedprice) AS s FROM lineitem`,
		`SELECT COUNT(*) AS n FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey GROUP BY bogus.o_orderpriority`,
		`SELECT l_suppkey, COUNT(*) AS n FROM lineitem WHERE typo.l_quantity > 1 GROUP BY l_suppkey`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil || !strings.Contains(err.Error(), "unknown table") {
			t.Errorf("accepted bad qualifier (err=%v): %s", err, sql)
		}
	}
}
