// Package sqlfe is the SQL frontend of Lambada: a lexer and recursive-
// descent parser for the analytical subset the paper's evaluation exercises
// (SELECT with expressions and aggregates, INNER JOIN … ON equi-joins with
// optionally qualified key columns, WHERE with conjunctions and BETWEEN,
// GROUP BY, ORDER BY, LIMIT, and DATE literals), translated into the
// engine's plan IR where the common optimizations apply (§3.2).
package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
	tokKeyword
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "ASC": true, "DESC": true, "DATE": true,
	"INTERVAL": true, "DAY": true, "SUM": true, "COUNT": true, "AVG": true,
	"MIN": true, "MAX": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "ON": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexWord()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) && c != '_' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: strings.ToUpper(text), pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlfe: unterminated string at %d", start)
	}
	l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
	l.pos++ // closing quote
	return nil
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '<', '>', '=', '(', ')', ',', '.':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlfe: unexpected character %q at %d", c, l.pos)
}
