package sqlfe

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lambada/internal/engine"
)

// Parse translates a SQL query into an (unoptimized) engine plan. Callers
// typically run engine.Optimize afterwards.
func Parse(src string) (engine.Plan, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	plan, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlfe: trailing input %q at %d", p.peek().text, p.peek().pos)
	}
	return plan, nil
}

// DateEpoch is day zero of DATE literal encoding — 1992-01-01, matching the
// tpch package.
var DateEpoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

type parser struct {
	toks []token
	pos  int
	// quals are the table-qualifier tokens seen while parsing expressions
	// and column references; the select list parses before FROM, so they
	// are validated against the table list at the end of parseSelect.
	quals []token
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.peek()
	return t, fmt.Errorf("sqlfe: expected %q, got %q at %d", text, t.text, t.pos)
}

type selectItem struct {
	expr engine.Expr
	agg  *engine.AggSpec
	name string
}

func (p *parser) parseSelect() (engine.Plan, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		it, err := p.parseSelectItem(len(items))
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, fmt.Errorf("sqlfe: expected table name: %w", err)
	}
	var plan engine.Plan = &engine.ScanPlan{Table: tbl.text}

	// INNER JOIN chain: each join adds a broadcast-side scan probed by the
	// plan built so far (left-deep).
	tables := []string{tbl.text}
	for {
		if p.accept(tokKeyword, "INNER") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept(tokKeyword, "JOIN") {
			break
		}
		rt, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, fmt.Errorf("sqlfe: expected join table name: %w", err)
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		lks, rks, err := p.parseJoinOn(tables, rt.text)
		if err != nil {
			return nil, err
		}
		plan = &engine.JoinPlan{
			Left:     plan,
			Right:    &engine.ScanPlan{Table: rt.text},
			LeftKeys: lks, RightKeys: rks,
		}
		tables = append(tables, rt.text)
	}

	if p.accept(tokKeyword, "WHERE") {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		plan = &engine.FilterPlan{In: plan, Pred: pred}
	}

	var groupBy []string
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, c.name)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	plan, outNames, err := p.buildProjection(plan, items, groupBy)
	if err != nil {
		return nil, err
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		var keys []engine.OrderKey
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			if !contains(outNames, c.name) {
				return nil, fmt.Errorf("sqlfe: ORDER BY column %q not in select list", c.name)
			}
			k := engine.OrderKey{Column: c.name}
			if p.accept(tokKeyword, "DESC") {
				k.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			keys = append(keys, k)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		plan = &engine.OrderByPlan{In: plan, Keys: keys}
	}

	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sqlfe: bad LIMIT %q", n.text)
		}
		plan = &engine.LimitPlan{In: plan, N: v}
	}

	// Qualifiers resolve columns by name, but a wrong table name is a bug
	// in the query text — reject it instead of silently binding to
	// whichever table owns the column. (Only the table name is checked:
	// `orders.l_extendedprice` with both tables in FROM still binds by
	// column name — qualifier-to-column ownership needs schemas, which
	// only engine.Resolve sees.)
	for _, q := range p.quals {
		if !contains(tables, q.text) {
			return nil, fmt.Errorf("sqlfe: unknown table %q at %d", q.text, q.pos)
		}
	}
	return plan, nil
}

// buildProjection turns the select list into Aggregate and/or Project nodes.
func (p *parser) buildProjection(in engine.Plan, items []selectItem, groupBy []string) (engine.Plan, []string, error) {
	hasAgg := false
	for _, it := range items {
		if it.agg != nil {
			hasAgg = true
		}
	}
	if !hasAgg && len(groupBy) > 0 {
		return nil, nil, fmt.Errorf("sqlfe: GROUP BY without aggregates")
	}
	var names []string
	if !hasAgg {
		exprs := make([]engine.Expr, len(items))
		for i, it := range items {
			exprs[i] = it.expr
			names = append(names, it.name)
		}
		return &engine.ProjectPlan{In: in, Exprs: exprs, Names: names}, names, nil
	}
	// Aggregate query: non-aggregate items must be group keys.
	agg := &engine.AggregatePlan{In: in, GroupBy: groupBy}
	var exprs []engine.Expr
	for _, it := range items {
		names = append(names, it.name)
		if it.agg != nil {
			spec := *it.agg
			spec.Name = it.name
			agg.Aggs = append(agg.Aggs, spec)
			exprs = append(exprs, engine.Col(it.name))
			continue
		}
		col, ok := it.expr.(engine.Col)
		if !ok || !contains(groupBy, string(col)) {
			return nil, nil, fmt.Errorf("sqlfe: select item %q is neither aggregate nor group key", it.name)
		}
		exprs = append(exprs, col)
	}
	// A projection on top restores the requested item order/names.
	return &engine.ProjectPlan{In: agg, Exprs: exprs, Names: names}, names, nil
}

// colref is a possibly table-qualified column reference in an ON clause.
type colref struct {
	qual, name string
}

func (c colref) String() string {
	if c.qual != "" {
		return c.qual + "." + c.name
	}
	return c.name
}

// parseColRef parses ident or ident.ident.
func (p *parser) parseColRef() (colref, error) {
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return colref{}, fmt.Errorf("sqlfe: expected column in ON clause: %w", err)
	}
	if p.accept(tokSymbol, ".") {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return colref{}, fmt.Errorf("sqlfe: expected column after %q.: %w", id.text, err)
		}
		p.quals = append(p.quals, id)
		return colref{qual: id.text, name: col.text}, nil
	}
	return colref{name: id.text}, nil
}

// parseJoinOn parses `a.x = b.y [AND ...]` into left/right key lists.
// Qualified references are assigned to their side by table name (leftTables
// are every table joined so far, rightTable the one being joined);
// unqualified references fall back to positional order, left key first.
func (p *parser) parseJoinOn(leftTables []string, rightTable string) (lks, rks []string, err error) {
	side := func(c colref) (int, error) { // 0 unknown, 1 left, 2 right
		switch {
		case c.qual == "":
			return 0, nil
		case c.qual == rightTable:
			return 2, nil
		case contains(leftTables, c.qual):
			return 1, nil
		default:
			return 0, fmt.Errorf("sqlfe: unknown table %q in ON clause", c.qual)
		}
	}
	for {
		a, err := p.parseColRef()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, nil, fmt.Errorf("sqlfe: join conditions must be equalities: %w", err)
		}
		b, err := p.parseColRef()
		if err != nil {
			return nil, nil, err
		}
		as, err := side(a)
		if err != nil {
			return nil, nil, err
		}
		bs, err := side(b)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case as == bs && as != 0:
			return nil, nil, fmt.Errorf("sqlfe: ON condition %s = %s references only one join side", a, b)
		case as == 2 || bs == 1:
			lks, rks = append(lks, b.name), append(rks, a.name)
		default: // as == 1, bs == 2, or both unqualified: positional
			lks, rks = append(lks, a.name), append(rks, b.name)
		}
		if !p.accept(tokKeyword, "AND") {
			break
		}
	}
	return lks, rks, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseSelectItem(idx int) (selectItem, error) {
	var it selectItem
	if t := p.peek(); t.kind == tokKeyword {
		switch t.text {
		case "SUM", "COUNT", "AVG", "MIN", "MAX":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return it, err
			}
			spec := engine.AggSpec{}
			switch t.text {
			case "SUM":
				spec.Func = engine.AggSum
			case "COUNT":
				spec.Func = engine.AggCount
			case "AVG":
				spec.Func = engine.AggAvg
			case "MIN":
				spec.Func = engine.AggMin
			case "MAX":
				spec.Func = engine.AggMax
			}
			if p.accept(tokSymbol, "*") {
				if spec.Func != engine.AggCount {
					return it, fmt.Errorf("sqlfe: %s(*) not allowed", t.text)
				}
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return it, err
				}
				spec.Arg = arg
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return it, err
			}
			it.agg = &spec
			it.name = fmt.Sprintf("%s_%d", strings.ToLower(t.text), idx)
		default:
			return it, fmt.Errorf("sqlfe: unexpected keyword %q in select list", t.text)
		}
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return it, err
		}
		it.expr = e
		if c, ok := e.(engine.Col); ok {
			it.name = string(c)
		} else {
			it.name = fmt.Sprintf("expr_%d", idx)
		}
	}
	if p.accept(tokKeyword, "AS") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return it, err
		}
		it.name = name.text
	}
	return it, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((< <= > >= = <> !=) addExpr | BETWEEN addExpr AND addExpr)?
//	addExpr := mulExpr ((+ -) mulExpr)*
//	mulExpr := unary ((* /) unary)*
//	unary   := - unary | primary
//	primary := number | DATE 'y-m-d' | TRUE | FALSE | ident | ( expr )
func (p *parser) parseExpr() (engine.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (engine.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = engine.NewBin(engine.OpOr, l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (engine.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = engine.NewBin(engine.OpAnd, l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (engine.Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &engine.Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]engine.BinOp{
	"<": engine.OpLT, "<=": engine.OpLE, ">": engine.OpGT, ">=": engine.OpGE,
	"=": engine.OpEQ, "<>": engine.OpNE, "!=": engine.OpNE,
}

func (p *parser) parseCmp() (engine.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return engine.Between(l, lo, hi), nil
	}
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return engine.NewBin(op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (engine.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = engine.NewBin(engine.OpAdd, l, r)
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = engine.NewBin(engine.OpSub, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (engine.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = engine.NewBin(engine.OpMul, l, r)
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = engine.NewBin(engine.OpDiv, l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (engine.Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return engine.NewBin(engine.OpSub, engine.ConstInt(0), e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (engine.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlfe: bad number %q", t.text)
			}
			return engine.ConstFloat(v), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlfe: bad number %q", t.text)
		}
		return engine.ConstInt(v), nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.next()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, fmt.Errorf("sqlfe: DATE needs a 'YYYY-MM-DD' literal: %w", err)
		}
		d, err := parseDate(s.text)
		if err != nil {
			return nil, err
		}
		// Support DATE '...' - INTERVAL 'n' DAY arithmetic inline.
		for {
			var sign int64
			if p.at(tokSymbol, "-") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "INTERVAL" {
				sign = -1
			} else if p.at(tokSymbol, "+") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "INTERVAL" {
				sign = 1
			} else {
				break
			}
			p.next() // sign
			p.next() // INTERVAL
			num, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			n, err := strconv.ParseInt(num.text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlfe: bad interval %q", num.text)
			}
			if _, err := p.expect(tokKeyword, "DAY"); err != nil {
				return nil, err
			}
			d += sign * n
		}
		return engine.ConstInt(d), nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		if t.text == "TRUE" {
			return engine.NewBin(engine.OpEQ, engine.ConstInt(1), engine.ConstInt(1)), nil
		}
		return engine.NewBin(engine.OpEQ, engine.ConstInt(0), engine.ConstInt(1)), nil
	case t.kind == tokIdent:
		// Possibly table-qualified reference; parseColRef records the
		// qualifier for the end-of-select validation.
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return engine.Col(c.name), nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("sqlfe: unexpected token %q at %d", t.text, t.pos)
	}
}

func parseDate(s string) (int64, error) {
	d, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sqlfe: bad date %q: %w", s, err)
	}
	return int64(d.Sub(DateEpoch).Hours() / 24), nil
}
