package sqlfe

import (
	"strings"
	"testing"

	"lambada/internal/engine"
)

// findJoin walks the plan (probe sides) for the first JoinPlan.
func findJoin(p engine.Plan) *engine.JoinPlan {
	for n := p; n != nil; n = n.Child() {
		if j, ok := n.(*engine.JoinPlan); ok {
			return j
		}
	}
	return nil
}

func TestParseInnerJoin(t *testing.T) {
	plan, err := Parse(`SELECT l_orderkey, s_name FROM lineitem INNER JOIN supplier ON l_suppkey = s_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(plan)
	if j == nil {
		t.Fatalf("no JoinPlan in:\n%s", engine.Explain(plan))
	}
	if len(j.LeftKeys) != 1 || j.LeftKeys[0] != "l_suppkey" || j.RightKeys[0] != "s_suppkey" {
		t.Errorf("keys = %v / %v", j.LeftKeys, j.RightKeys)
	}
	right, ok := j.Right.(*engine.ScanPlan)
	if !ok || right.Table != "supplier" {
		t.Errorf("right side = %v", j.Right)
	}
}

func TestParseJoinQualifiedAndSwapped(t *testing.T) {
	// Qualified references decide the sides regardless of written order.
	plan, err := Parse(`SELECT l_orderkey FROM lineitem JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(plan)
	if j == nil {
		t.Fatal("no join")
	}
	if j.LeftKeys[0] != "l_suppkey" || j.RightKeys[0] != "s_suppkey" {
		t.Errorf("sides not swapped by qualifiers: %v / %v", j.LeftKeys, j.RightKeys)
	}
}

func TestParseJoinMultiKey(t *testing.T) {
	plan, err := Parse(`SELECT k FROM a INNER JOIN b ON a.k = b.bk AND a.k2 = b.bk2`)
	if err != nil {
		t.Fatal(err)
	}
	j := findJoin(plan)
	if j == nil {
		t.Fatal("no join")
	}
	if len(j.LeftKeys) != 2 || j.LeftKeys[1] != "k2" || j.RightKeys[1] != "bk2" {
		t.Errorf("multi-key = %v / %v", j.LeftKeys, j.RightKeys)
	}
}

func TestParseJoinWithFullClauseSet(t *testing.T) {
	plan, err := Parse(`
SELECT s_nationkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem INNER JOIN supplier ON l_suppkey = s_suppkey
WHERE l_quantity < 30
GROUP BY s_nationkey
ORDER BY s_nationkey
LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	explained := engine.Explain(plan)
	for _, want := range []string{"Limit 10", "OrderBy s_nationkey", "HashJoin l_suppkey = s_suppkey", "Scan lineitem"} {
		if !strings.Contains(explained, want) {
			t.Errorf("plan missing %q:\n%s", want, explained)
		}
	}
}

func TestParseJoinErrors(t *testing.T) {
	bad := []string{
		`SELECT k FROM a JOIN b`,                  // missing ON
		`SELECT k FROM a JOIN b ON a.k < b.k`,     // non-equality
		`SELECT k FROM a JOIN b ON c.k = b.k`,     // unknown qualifier
		`SELECT k FROM a JOIN b ON a.k = a.j`,     // one-sided condition
		`SELECT k FROM a JOIN b ON b.k = b.j`,     // one-sided (right)
		`SELECT k FROM a INNER b ON a.k = b.k`,    // INNER without JOIN
		`SELECT k FROM a JOIN b ON a.k = b.k AND`, // dangling AND
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
