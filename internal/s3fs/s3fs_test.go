package s3fs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
)

func setup(t *testing.T, data []byte) *File {
	t.Helper()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("b")
	env := simenv.NewImmediate()
	if err := svc.Put(env, "b", "k", data); err != nil {
		t.Fatal(err)
	}
	f, err := Open(s3.NewClient(svc, simenv.NewImmediate()), "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOpenMissing(t *testing.T) {
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("b")
	if _, err := Open(s3.NewClient(svc, simenv.NewImmediate()), "b", "nope"); err == nil {
		t.Error("opened missing object")
	}
}

func TestAccessors(t *testing.T) {
	f := setup(t, []byte("hello"))
	if f.Size() != 5 || f.Bucket() != "b" || f.Key() != "k" {
		t.Errorf("accessors: %d %q %q", f.Size(), f.Bucket(), f.Key())
	}
}

func TestReadRange(t *testing.T) {
	f := setup(t, []byte("0123456789"))
	got, err := f.ReadRange(3, 4)
	if err != nil || string(got) != "3456" {
		t.Errorf("ReadRange = %q, %v", got, err)
	}
	// Truncated at the end.
	got, err = f.ReadRange(8, 10)
	if err != nil || string(got) != "89" {
		t.Errorf("tail ReadRange = %q, %v", got, err)
	}
	// Empty beyond the end.
	got, err = f.ReadRange(20, 5)
	if err != nil || got != nil {
		t.Errorf("past-end ReadRange = %q, %v", got, err)
	}
}

func TestNegativeOffset(t *testing.T) {
	f := setup(t, []byte("abc"))
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

// Property: ReaderAt semantics match bytes.Reader for any data/offset/len
// and any chunk size.
func TestPropertyMatchesBytesReader(t *testing.T) {
	check := func(data []byte, off16 uint16, n8, chunk8 uint8) bool {
		if len(data) == 0 {
			return true
		}
		f := setup(&testing.T{}, data)
		f.ChunkBytes = int64(chunk8%16) + 1
		ref := bytes.NewReader(data)
		off := int64(off16) % int64(len(data)+4)
		buf1 := make([]byte, int(n8%64)+1)
		buf2 := make([]byte, len(buf1))
		n1, err1 := f.ReadAt(buf1, off)
		n2, err2 := ref.ReadAt(buf2, off)
		if n1 != n2 {
			return false
		}
		if (err1 == io.EOF) != (err2 == io.EOF) {
			return false
		}
		return bytes.Equal(buf1[:n1], buf2[:n2])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
