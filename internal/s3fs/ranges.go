package s3fs

import (
	"fmt"
	"sort"
)

// Range coalescing: merging near-adjacent column-chunk and page ranges into
// one billed GET each. S3 bills per request plus per byte; when two wanted
// ranges are separated by a gap smaller than the per-request overhead is
// worth, fetching the gap as dead bytes inside one larger request is
// strictly cheaper (the trade-off Figure 7 quantifies). PlanSpans computes
// the merged spans, ReadRanges executes them.

// DefaultCoalesceGap is the largest hole (in bytes) merged into one request
// (128 KiB — at S3's modeled per-request cost, dead bytes below this are
// cheaper than the extra GET).
const DefaultCoalesceGap = 128 << 10

// Range identifies a wanted byte range [Off, Off+Len).
type Range struct {
	Off, Len int64
}

// Span is one planned GET covering [Off, Off+Len); Ranges indexes the input
// ranges it satisfies.
type Span struct {
	Off, Len int64
	Ranges   []int
}

// PlanSpans merges ranges whose gaps are at most gap bytes into single
// spans. Merging is waste-bounded: a span swallows a hole only while its
// accumulated holes stay at or under 1/8th of the resulting span, so each
// saved GET is bought with at most 12.5% billed overhead — without the
// bound, a span could chain many small holes and end up billing more dead
// bytes than the uncoalesced reads, inverting the cost trade. A negative
// gap disables merging entirely (one span per range, in offset order);
// gap 0 merges only exactly-adjacent or overlapping ranges. Zero-length
// ranges are dropped.
func PlanSpans(ranges []Range, gap int64) []Span {
	idx := make([]int, 0, len(ranges))
	for i, r := range ranges {
		if r.Len > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := ranges[idx[a]], ranges[idx[b]]
		if ra.Off != rb.Off {
			return ra.Off < rb.Off
		}
		return ra.Len < rb.Len
	})
	var spans []Span
	var waste int64 // holes accumulated in the last span
	for _, i := range idx {
		r := ranges[i]
		if len(spans) > 0 && gap >= 0 {
			s := &spans[len(spans)-1]
			hole := r.Off - (s.Off + s.Len)
			if hole < 0 {
				hole = 0
			}
			newLen := s.Len
			if end := r.Off + r.Len; end > s.Off+s.Len {
				newLen = end - s.Off
			}
			if hole <= gap && (waste+hole)*8 <= newLen {
				s.Len = newLen
				s.Ranges = append(s.Ranges, i)
				waste += hole
				continue
			}
		}
		spans = append(spans, Span{Off: r.Off, Len: r.Len, Ranges: []int{i}})
		waste = 0
	}
	return spans
}

// Cut slices the span's fetched bytes back into the per-range views the
// caller asked for, writing them into out (indexed like ranges). buf must
// hold the span's bytes starting at s.Off. The views alias buf.
func (s *Span) Cut(buf []byte, ranges []Range, out [][]byte) {
	for _, i := range s.Ranges {
		r := ranges[i]
		lo := r.Off - s.Off
		out[i] = buf[lo : lo+r.Len]
	}
}

// ReadRanges fetches every range, coalescing ranges separated by at most
// gap bytes into one GET each (gap 0 means DefaultCoalesceGap; negative
// disables coalescing). The returned slices are indexed like ranges; slices
// of one span alias one buffer.
func (f *File) ReadRanges(ranges []Range, gap int64) ([][]byte, error) {
	if gap == 0 {
		gap = DefaultCoalesceGap
	}
	out := make([][]byte, len(ranges))
	for _, s := range PlanSpans(ranges, gap) {
		buf, err := f.ReadRange(s.Off, s.Len)
		if err != nil {
			return nil, err
		}
		if int64(len(buf)) < s.Len {
			return nil, fmt.Errorf("s3fs: span [%d,%d) of %s/%s truncated to %d bytes",
				s.Off, s.Off+s.Len, f.bucket, f.key, len(buf))
		}
		s.Cut(buf, ranges, out)
	}
	return out, nil
}
