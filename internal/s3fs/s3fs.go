// Package s3fs provides a random-access file interface over simulated S3,
// the layer between the Parquet library and the AWS SDK in Figure 8. Every
// ReadAt is translated into one or more ranged GET requests of a
// configurable chunk size — the request-count/bandwidth trade-off that
// Figure 7 quantifies ("the size of each request ... is inversely
// proportional to the number of requests, each of which has a fixed cost").
package s3fs

import (
	"fmt"
	"io"
	"sync/atomic"

	"lambada/internal/awssim/s3"
)

// DefaultChunkBytes is the default per-request range size (16 MiB — the
// size at which a single connection approaches peak throughput in Fig. 7).
const DefaultChunkBytes = 16 << 20

// File is a random-access view of one S3 object.
type File struct {
	client *s3.Client
	bucket string
	key    string
	size   int64

	// ChunkBytes caps the byte range of a single GET request.
	ChunkBytes int64
	// Conns is the number of concurrent connections modeled per read.
	Conns int

	// requests is atomic: one handle serves concurrent readers (parallel
	// column fetches, double-buffered row groups, parallel files).
	requests atomic.Int64
	// bytes counts the billed bytes fetched through this handle.
	bytes atomic.Int64
}

// Open stats the object (one request) and returns a file handle.
func Open(client *s3.Client, bucket, key string) (*File, error) {
	size, err := client.Head(bucket, key)
	if err != nil {
		return nil, err
	}
	f := NewFile(client, bucket, key, size)
	f.requests.Add(1) // the Head
	return f, nil
}

// NewFile returns a handle with a known size (no request issued).
func NewFile(client *s3.Client, bucket, key string, size int64) *File {
	return &File{
		client:     client,
		bucket:     bucket,
		key:        key,
		size:       size,
		ChunkBytes: DefaultChunkBytes,
		Conns:      1,
	}
}

// Size returns the object size.
func (f *File) Size() int64 { return f.size }

// Requests returns how many S3 requests this handle has issued.
func (f *File) Requests() int64 { return f.requests.Load() }

// BytesRead returns how many billed bytes this handle has fetched.
func (f *File) BytesRead() int64 { return f.bytes.Load() }

// Bucket returns the bucket name.
func (f *File) Bucket() string { return f.bucket }

// Key returns the object key.
func (f *File) Key() string { return f.key }

// ReadAt implements io.ReaderAt: it fills p from offset off using ranged
// GETs of at most ChunkBytes each. Reads past the end return io.EOF with
// the partial count, per the io.ReaderAt contract.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("s3fs: negative offset")
	}
	if off >= f.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	chunk := f.ChunkBytes
	if chunk <= 0 {
		chunk = DefaultChunkBytes
	}
	var n int64
	for n < want {
		reqLen := chunk
		if n+reqLen > want {
			reqLen = want - n
		}
		data, got, err := f.client.GetRange(f.bucket, f.key, off+n, reqLen, f.Conns)
		f.requests.Add(1)
		if err != nil {
			return int(n), err
		}
		f.bytes.Add(got)
		if data == nil {
			return int(n), fmt.Errorf("s3fs: synthetic object %s/%s has no bytes", f.bucket, f.key)
		}
		copy(p[n:n+got], data)
		n += got
		if got < reqLen {
			break
		}
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}

// ReadRange fetches [off, off+length) as a fresh buffer.
func (f *File) ReadRange(off, length int64) ([]byte, error) {
	if off+length > f.size {
		length = f.size - off
	}
	if length <= 0 {
		return nil, nil
	}
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}
