package s3fs

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPlanSpansMerging(t *testing.T) {
	for _, tc := range []struct {
		name   string
		ranges []Range
		gap    int64
		want   []Span
	}{
		{
			name:   "adjacent merge at gap zero",
			ranges: []Range{{0, 10}, {10, 10}},
			gap:    0,
			want:   []Span{{Off: 0, Len: 20, Ranges: []int{0, 1}}},
		},
		{
			name:   "small hole merges within gap",
			ranges: []Range{{0, 100}, {104, 100}},
			gap:    8,
			want:   []Span{{Off: 0, Len: 204, Ranges: []int{0, 1}}},
		},
		{
			name:   "hole beyond gap splits",
			ranges: []Range{{0, 100}, {200, 100}},
			gap:    8,
			want: []Span{
				{Off: 0, Len: 100, Ranges: []int{0}},
				{Off: 200, Len: 100, Ranges: []int{1}},
			},
		},
		{
			name:   "negative gap never merges",
			ranges: []Range{{0, 10}, {10, 10}},
			gap:    -1,
			want: []Span{
				{Off: 0, Len: 10, Ranges: []int{0}},
				{Off: 10, Len: 10, Ranges: []int{1}},
			},
		},
		{
			name:   "out of order inputs are sorted",
			ranges: []Range{{50, 10}, {0, 10}, {60, 5}},
			gap:    0,
			want: []Span{
				{Off: 0, Len: 10, Ranges: []int{1}},
				{Off: 50, Len: 15, Ranges: []int{0, 2}},
			},
		},
		{
			name:   "zero length ranges dropped",
			ranges: []Range{{0, 0}, {5, 10}, {20, 0}},
			gap:    100,
			want:   []Span{{Off: 5, Len: 10, Ranges: []int{1}}},
		},
		{
			name:   "overlapping ranges collapse",
			ranges: []Range{{0, 20}, {10, 20}},
			gap:    0,
			want:   []Span{{Off: 0, Len: 30, Ranges: []int{0, 1}}},
		},
		{
			// Waste bound: a 20-byte hole against 40 useful bytes is 33%
			// overhead — over the 1/8 cap, so the span splits even though
			// the hole fits the gap.
			name:   "waste-bounded split",
			ranges: []Range{{0, 20}, {40, 20}},
			gap:    1 << 20,
			want: []Span{
				{Off: 0, Len: 20, Ranges: []int{0}},
				{Off: 40, Len: 20, Ranges: []int{1}},
			},
		},
		{
			// Same hole against enough payload merges: 20/1044 < 1/8.
			name:   "waste within bound merges",
			ranges: []Range{{0, 1000}, {1020, 24}},
			gap:    1 << 20,
			want:   []Span{{Off: 0, Len: 1044, Ranges: []int{0, 1}}},
		},
		{
			// Accumulated waste is capped across a chain of merges, not
			// only per hole: the first 100-byte hole fits (100/1200), the
			// second would push total holes to 200 of 1400 — over 1/8 —
			// so the chain breaks there.
			name:   "accumulated waste splits the chain",
			ranges: []Range{{0, 1000}, {1100, 100}, {1300, 100}, {1500, 100}},
			gap:    1 << 20,
			want: []Span{
				{Off: 0, Len: 1200, Ranges: []int{0, 1}},
				{Off: 1300, Len: 100, Ranges: []int{2}},
				{Off: 1500, Len: 100, Ranges: []int{3}},
			},
		},
	} {
		got := PlanSpans(tc.ranges, tc.gap)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: PlanSpans = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// Property: spans cover every input range exactly once, in offset order.
func TestPropertyPlanSpansSound(t *testing.T) {
	f := func(offs []uint16, lens []uint8, gapRaw uint8) bool {
		n := len(offs)
		if len(lens) < n {
			n = len(lens)
		}
		ranges := make([]Range, n)
		for i := 0; i < n; i++ {
			ranges[i] = Range{Off: int64(offs[i]), Len: int64(lens[i])}
		}
		gap := int64(gapRaw)
		spans := PlanSpans(ranges, gap)
		seen := map[int]bool{}
		var prevEnd int64 = -1
		for _, s := range spans {
			if s.Off <= prevEnd {
				return false // spans must not touch or overlap
			}
			prevEnd = s.Off + s.Len
			for _, i := range s.Ranges {
				r := ranges[i]
				if seen[i] || r.Len == 0 {
					return false
				}
				seen[i] = true
				if r.Off < s.Off || r.Off+r.Len > s.Off+s.Len {
					return false // range not covered by its span
				}
			}
		}
		for i, r := range ranges {
			if r.Len > 0 && !seen[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadRangesCoalesces(t *testing.T) {
	data := make([]byte, 4000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	f := setup(t, data)

	ranges := []Range{{0, 500}, {510, 500}, {2000, 100}, {3900, 100}}
	before := f.Requests()
	got, err := f.ReadRanges(ranges, 64)
	if err != nil {
		t.Fatal(err)
	}
	// {0,500} and {510,500} merge (10-byte hole); the others stand alone.
	if n := f.Requests() - before; n != 3 {
		t.Errorf("coalesced read took %d requests, want 3", n)
	}
	for i, r := range ranges {
		if !bytes.Equal(got[i], data[r.Off:r.Off+r.Len]) {
			t.Errorf("range %d content mismatch", i)
		}
	}
	if f.BytesRead() == 0 {
		t.Error("BytesRead not counted")
	}

	// The same ranges uncoalesced take one request each.
	before = f.Requests()
	if _, err := f.ReadRanges(ranges, -1); err != nil {
		t.Fatal(err)
	}
	if n := f.Requests() - before; n != 4 {
		t.Errorf("uncoalesced read took %d requests, want 4", n)
	}
}

func TestReadRangesTruncation(t *testing.T) {
	f := setup(t, make([]byte, 100))
	if _, err := f.ReadRanges([]Range{{90, 50}}, 0); err == nil {
		t.Error("range past EOF read without error")
	}
}
