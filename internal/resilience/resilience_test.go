package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/simclock"
)

// recordEnv is a deterministic test clock: Sleep advances Now and records
// the schedule, so backoff sequences can be compared exactly.
type recordEnv struct {
	now    time.Duration
	sleeps []time.Duration
}

func (e *recordEnv) Now() time.Duration { return e.now }
func (e *recordEnv) Sleep(d time.Duration) {
	e.now += d
	e.sleeps = append(e.sleeps, d)
}

var errRegisteredSentinel = errors.New("registered transient")

func init() { RegisterRetryable(errRegisteredSentinel) }

func TestClassify(t *testing.T) {
	if Classify(nil) != ClassFatal {
		t.Error("nil should classify fatal")
	}
	for _, sentinel := range []error{faults.ErrInternal, faults.ErrTimeout, faults.ErrThrottled} {
		if Classify(sentinel) != ClassRetryable {
			t.Errorf("%v should be retryable", sentinel)
		}
		if Classify(fmt.Errorf("svc: %w", sentinel)) != ClassRetryable {
			t.Errorf("wrapped %v should be retryable", sentinel)
		}
	}
	if Classify(errors.New("no such key")) != ClassFatal {
		t.Error("unknown errors should be fatal")
	}
	if Classify(fmt.Errorf("wrap: %w", errRegisteredSentinel)) != ClassRetryable {
		t.Error("registered sentinel should be retryable")
	}
}

func TestBudget(t *testing.T) {
	if NewBudget(0) != nil || NewBudget(-3) != nil {
		t.Error("non-positive budgets should be nil (unlimited)")
	}
	var unlimited *Budget
	for i := 0; i < 100; i++ {
		if !unlimited.Take() {
			t.Fatal("nil budget refused a take")
		}
	}
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Error("budget of 2 refused early")
	}
	if b.Take() {
		t.Error("budget of 2 allowed a third take")
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d", b.Remaining())
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{Seed: 17, Base: 25 * time.Millisecond, Cap: 2 * time.Second}
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := p.Backoff("s3.Get", attempt)
		d2 := p.Backoff("s3.Get", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v != %v", attempt, d1, d2)
		}
		if d1 < p.Base || d1 > p.Cap {
			t.Errorf("attempt %d backoff %v outside [base, cap]", attempt, d1)
		}
	}
	if p.Backoff("s3.Get", 3) == p.Backoff("sqs.Send", 3) {
		t.Error("distinct ops should draw distinct jitter")
	}
	if p.Backoff("s3.Get", 3) == (Policy{Seed: 18, Base: p.Base, Cap: p.Cap}).Backoff("s3.Get", 3) {
		t.Error("distinct seeds should draw distinct jitter")
	}
}

// TestDoBackoffScheduleReplays: the same failing op under the same policy
// produces the identical virtual sleep schedule — the property chaos DES
// runs rely on.
func TestDoBackoffScheduleReplays(t *testing.T) {
	run := func() []time.Duration {
		env := &recordEnv{}
		p := Policy{Seed: 3, MaxRetries: 5}
		p.Do(env, "dynamo.Put", func() error { return faults.ErrThrottled })
		return env.sleeps
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sleeps = %d/%d, want 5 retries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestDoFatalPassthrough(t *testing.T) {
	env := &recordEnv{}
	boom := errors.New("boom")
	calls := 0
	err := Policy{}.Do(env, "op", func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 || len(env.sleeps) != 0 {
		t.Errorf("fatal error retried: err=%v calls=%d sleeps=%d", err, calls, len(env.sleeps))
	}
}

func TestDoRecoversAfterTransients(t *testing.T) {
	env := &recordEnv{}
	calls := 0
	stats := &Stats{}
	err := Policy{Stats: stats}.Do(env, "s3.Get", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("s3: %w", faults.ErrInternal)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
	if stats.Retries() != 2 {
		t.Errorf("stats = %d retries, want 2", stats.Retries())
	}
}

func TestDoMaxRetriesExhaustion(t *testing.T) {
	env := &recordEnv{}
	err := Policy{MaxRetries: 3}.Do(env, "s3.Get", func() error { return faults.ErrTimeout })
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if ex.BudgetSpent || ex.Attempts != 4 || ex.Op != "s3.Get" {
		t.Errorf("exhausted = %+v", ex)
	}
	if !errors.Is(err, faults.ErrTimeout) {
		t.Error("ExhaustedError should unwrap to the last error")
	}
	if !IsExhausted(err) || !Retryable(err) {
		t.Error("exhaustion should be IsExhausted and Retryable from a higher scope")
	}
}

// TestDoBudgetExhaustion: a spent scope budget turns a retry storm into a
// typed failure — the worker-side graceful-degradation hook.
func TestDoBudgetExhaustion(t *testing.T) {
	env := &recordEnv{}
	b := NewBudget(2)
	err := Policy{Budget: b, MaxRetries: 10}.Do(env, "sqs.Send", func() error { return faults.ErrInternal })
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if !ex.BudgetSpent || ex.Attempts != 3 {
		t.Errorf("exhausted = %+v, want budget-spent after 3 attempts", ex)
	}
	if len(env.sleeps) != 2 {
		t.Errorf("slept %d times, want 2 (budget)", len(env.sleeps))
	}
}

// TestDoUnderSimclock: Do's waiting is pure virtual time on the DES kernel
// and replays exactly.
func TestDoUnderSimclock(t *testing.T) {
	run := func() time.Duration {
		k := simclock.New()
		var elapsed time.Duration
		k.Go("op", func(p *simclock.Proc) {
			calls := 0
			Policy{Seed: 9}.Do(p, "s3.Get", func() error {
				calls++
				if calls < 4 {
					return faults.ErrInternal
				}
				return nil
			})
			elapsed = p.Now()
		})
		k.Run()
		return elapsed
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("virtual elapsed %v vs %v", a, b)
	}
	if a <= 0 {
		t.Error("no virtual time elapsed across 3 backoffs")
	}
}
