// Package resilience is the unified retry/backoff/budget layer of the
// Lambada substrate — the systematic form of the paper's "aggressive
// timeouts and retries" against cloud services that throttle, drop and kill
// (§5.5, footnote 17). It provides:
//
//   - classification of errors into retryable (transient server failures,
//     throttling) and fatal (everything else — wrong answers must not be
//     retried into existence);
//   - a Policy running operations under capped exponential backoff with
//     decorrelated jitter, virtual-time-safe because all waiting goes
//     through simenv.Env.Sleep;
//   - a Budget bounding the total retries a scope (one worker invocation,
//     one driver query) may spend, so a persistently failing substrate turns
//     into a typed ExhaustedError — graceful degradation upstream — instead
//     of an unbounded retry storm.
//
// Every retried request still reaches the simulated service and is billed
// through the pricing meter: retries are real requests in the paper's cost
// model.
package resilience

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/simenv"
	"lambada/internal/obs"
)

// Class is an error's retry classification.
type Class int

const (
	// ClassFatal errors are returned immediately; retrying cannot help
	// (missing keys, failed conditional writes, malformed requests) or must
	// be decided by a higher layer (concurrency-limit rejections are a
	// quota, not a transient — the paper raised the limit via support
	// ticket, not by hammering the API).
	ClassFatal Class = iota
	// ClassRetryable errors are transient server-side failures worth
	// retrying with backoff.
	ClassRetryable
)

// registry holds retryable sentinels registered by service packages (which
// import resilience, so resilience cannot import them).
var (
	registryMu sync.RWMutex
	registry   []error
)

// RegisterRetryable marks err (and everything wrapping it) retryable for the
// default classifier. Service packages call it from init for their own
// transient sentinels (s3.ErrSlowDown, exchange timeouts).
func RegisterRetryable(err error) {
	registryMu.Lock()
	registry = append(registry, err)
	registryMu.Unlock()
}

// Classify is the default classifier: the fault-injection sentinels and all
// registered service sentinels are retryable, everything else fatal.
func Classify(err error) Class {
	if err == nil {
		return ClassFatal
	}
	if errors.Is(err, faults.ErrInternal) || errors.Is(err, faults.ErrTimeout) || errors.Is(err, faults.ErrThrottled) {
		return ClassRetryable
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	for _, r := range registry {
		if errors.Is(err, r) {
			return ClassRetryable
		}
	}
	return ClassFatal
}

// Budget bounds the total retries of one scope. A nil Budget is unlimited.
type Budget struct {
	mu        sync.Mutex
	remaining int
}

// NewBudget returns a budget of n retries. n <= 0 returns nil (unlimited).
func NewBudget(n int) *Budget {
	if n <= 0 {
		return nil
	}
	return &Budget{remaining: n}
}

// Take consumes one retry; false means the budget is spent.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	return true
}

// Remaining returns the retries left (-1 when unlimited).
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// ExhaustedError reports that an operation stayed retryable past its
// attempt bound or retry budget — the typed failure upstream degradation
// hooks on (a worker posts it as a retryable failure seal; the scheduler
// re-invokes through the attempt machinery). Unwrap exposes the last
// underlying error, so errors.Is sees through it.
type ExhaustedError struct {
	Op       string
	Attempts int
	// BudgetSpent marks exhaustion of the scope-wide retry budget rather
	// than the per-operation attempt bound.
	BudgetSpent bool
	Last        error
}

func (e *ExhaustedError) Error() string {
	cause := "retry attempts exhausted"
	if e.BudgetSpent {
		cause = "retry budget exhausted"
	}
	return fmt.Sprintf("resilience: %s after %d attempts of %s: %v", cause, e.Attempts, e.Op, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// IsExhausted reports whether err carries an ExhaustedError.
func IsExhausted(err error) bool {
	var ex *ExhaustedError
	return errors.As(err, &ex)
}

// Retryable reports whether err is worth a fresh attempt from a HIGHER
// scope: either directly retryable, or a lower scope's exhaustion of its
// own budget (the worker gave up, but a re-invoked worker gets a fresh
// budget). Workers use it to decide the Retryable flag of a failure seal.
func Retryable(err error) bool {
	return Classify(err) == ClassRetryable || IsExhausted(err)
}

// Stats counts retries performed under a policy, for reports.
type Stats struct {
	mu      sync.Mutex
	retries int64
}

// Add records n retries.
func (s *Stats) Add(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.retries += n
	s.mu.Unlock()
}

// Retries returns the total retries recorded.
func (s *Stats) Retries() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// Policy runs operations under classification, capped exponential backoff
// with decorrelated jitter, and an optional shared budget. The zero value
// is usable: defaults fill in on Do.
type Policy struct {
	// Base is the first backoff delay (default 25ms, matching the historical
	// S3 client retry).
	Base time.Duration
	// Cap bounds a single backoff delay (default 2s).
	Cap time.Duration
	// MaxRetries bounds retries per operation (default 10).
	MaxRetries int
	// Budget, when non-nil, is the scope-wide retry bound shared by every
	// operation run under this policy.
	Budget *Budget
	// Classify overrides the default classifier when non-nil.
	Classify func(error) Class
	// Seed derives the deterministic jitter stream.
	Seed int64
	// Stats, when non-nil, accumulates retry counts for reporting.
	Stats *Stats
	// Trace, when non-nil, wraps each Do in an op span (named opName,
	// tagged with retries consumed and outcome) under the span currently
	// bound to the calling environment. Ops with no bound span are not
	// traced, so setup traffic stays out of query traces.
	Trace *obs.Tracer
}

func (p Policy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return 25 * time.Millisecond
}

func (p Policy) cap() time.Duration {
	if p.Cap > 0 {
		return p.Cap
	}
	return 2 * time.Second
}

func (p Policy) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return 10
}

func (p Policy) classify(err error) Class {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Classify(err)
}

// Backoff returns the delay before retry attempt (1-based) of op:
// decorrelated jitter — each delay drawn uniformly from [Base, 3×previous],
// capped — per the AWS architecture blog's recommendation, with the draw a
// pure hash of (seed, op, attempt) so DES schedules replay exactly.
func (p Policy) Backoff(op string, attempt int) time.Duration {
	base, cap := p.base(), p.cap()
	prev := base
	d := base
	for i := 1; i <= attempt; i++ {
		lo, hi := float64(base), 3*float64(prev)
		d = time.Duration(lo + jitter(p.Seed, op, i)*(hi-lo))
		if d > cap {
			d = cap
		}
		prev = d
	}
	return d
}

// Do runs op under the policy: retryable errors back off and retry until
// they succeed, turn fatal, exhaust MaxRetries, or exhaust the budget; the
// two exhaustion cases return an *ExhaustedError wrapping the last error.
// All waiting is virtual-time via env.Sleep, so DES runs stay deterministic.
func (p Policy) Do(env simenv.Env, opName string, op func() error) error {
	var sp obs.SpanID
	if p.Trace != nil {
		if parent := p.Trace.Current(env); parent != 0 {
			sp = p.Trace.StartSpan(obs.KindOp, opName, parent, env.Now())
			p.Trace.Bind(env, sp)
		}
	}
	retries := 0
	var err error
	defer func() {
		if sp == 0 {
			return
		}
		if retries > 0 {
			p.Trace.SetTag(sp, "retries", strconv.Itoa(retries))
		}
		if err != nil {
			if IsExhausted(err) {
				p.Trace.SetTag(sp, "outcome", "exhausted")
			} else {
				p.Trace.SetTag(sp, "outcome", "error")
			}
		}
		p.Trace.Pop(env)
		p.Trace.EndSpan(sp, env.Now())
	}()
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || p.classify(err) != ClassRetryable {
			return err
		}
		if attempt >= p.maxRetries() {
			err = &ExhaustedError{Op: opName, Attempts: attempt + 1, Last: err}
			return err
		}
		if !p.Budget.Take() {
			err = &ExhaustedError{Op: opName, Attempts: attempt + 1, BudgetSpent: true, Last: err}
			return err
		}
		p.Stats.Add(1)
		retries++
		env.Sleep(p.Backoff(opName, attempt+1))
	}
}

// jitter maps (seed, op, attempt) to [0, 1) via splitmix64 — the same
// construction the fault injector uses, so backoff schedules are replayable
// wherever the fault schedule is.
func jitter(seed int64, op string, attempt int) float64 {
	h := splitmix64(uint64(seed) ^ 0x7265736c69656e63) // "reslienc"
	for _, c := range []byte(op) {
		h = splitmix64(h ^ uint64(c))
	}
	h = splitmix64(h ^ uint64(attempt))
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
