// Package dataflow is the fluent, UDF-style frontend of Lambada, mirroring
// the paper's Listing 1:
//
//	data = lambada.from_parquet('s3://bucket/*.parquet')
//	             .filter(lambda x: x[1] >= 0.05)
//	             .map(lambda x: x[1] * x[2])
//	             .reduce(lambda x, y: x + y)
//
// In Go, the "UDFs" are expression trees over named columns, which keeps
// them analyzable: the same selection/projection push-downs and
// distributed-plan splitting apply as for SQL queries (§3.2). The pipeline
// builds an engine.Plan that runs locally or on the serverless fleet.
package dataflow

import (
	"lambada/internal/engine"
)

// Dataset is a lazily-built query over one table.
type Dataset struct {
	plan engine.Plan
	err  error
}

// FromTable starts a pipeline over a named table (bound to files or memory
// at execution time).
func FromTable(name string) *Dataset {
	return &Dataset{plan: &engine.ScanPlan{Table: name}}
}

// Filter keeps rows satisfying pred.
func (d *Dataset) Filter(pred engine.Expr) *Dataset {
	if d.err != nil {
		return d
	}
	return &Dataset{plan: &engine.FilterPlan{In: d.plan, Pred: pred}}
}

// Map computes one named expression per output column.
func (d *Dataset) Map(names []string, exprs ...engine.Expr) *Dataset {
	if d.err != nil {
		return d
	}
	return &Dataset{plan: &engine.ProjectPlan{In: d.plan, Exprs: exprs, Names: names}}
}

// Select keeps the named columns.
func (d *Dataset) Select(cols ...string) *Dataset {
	if d.err != nil {
		return d
	}
	exprs := make([]engine.Expr, len(cols))
	for i, c := range cols {
		exprs[i] = engine.Col(c)
	}
	return &Dataset{plan: &engine.ProjectPlan{In: d.plan, Exprs: exprs, Names: cols}}
}

// Reduce computes global aggregates (the .reduce of Listing 1).
func (d *Dataset) Reduce(aggs ...engine.AggSpec) *Dataset {
	if d.err != nil {
		return d
	}
	return &Dataset{plan: &engine.AggregatePlan{In: d.plan, Aggs: aggs}}
}

// Join inner-joins this dataset (probe side) with a small broadcast
// dataset on the given key columns.
func (d *Dataset) Join(right *Dataset, leftKey, rightKey string) *Dataset {
	if d.err != nil {
		return d
	}
	if right.err != nil {
		return right
	}
	return &Dataset{plan: &engine.JoinPlan{Left: d.plan, Right: right.plan, LeftKey: leftKey, RightKey: rightKey}}
}

// GroupBy starts a grouped aggregation.
func (d *Dataset) GroupBy(cols ...string) *Grouped {
	return &Grouped{in: d, cols: cols}
}

// Grouped is a group-by builder.
type Grouped struct {
	in   *Dataset
	cols []string
}

// Agg completes the grouped aggregation.
func (g *Grouped) Agg(aggs ...engine.AggSpec) *Dataset {
	if g.in.err != nil {
		return g.in
	}
	return &Dataset{plan: &engine.AggregatePlan{In: g.in.plan, GroupBy: g.cols, Aggs: aggs}}
}

// OrderBy sorts the (small, driver-side) result.
func (d *Dataset) OrderBy(keys ...engine.OrderKey) *Dataset {
	if d.err != nil {
		return d
	}
	return &Dataset{plan: &engine.OrderByPlan{In: d.plan, Keys: keys}}
}

// Limit truncates the result.
func (d *Dataset) Limit(n int) *Dataset {
	if d.err != nil {
		return d
	}
	return &Dataset{plan: &engine.LimitPlan{In: d.plan, N: n}}
}

// Plan returns the built logical plan.
func (d *Dataset) Plan() (engine.Plan, error) {
	if d.err != nil {
		return nil, d.err
	}
	return d.plan, nil
}

// Convenience constructors for expressions, so pipelines read like
// Listing 1 without importing engine at every call site.

// Col references a column.
func Col(name string) engine.Expr { return engine.Col(name) }

// Lit builds an integer literal.
func Lit(v int64) engine.Expr { return engine.ConstInt(v) }

// LitF builds a float literal.
func LitF(v float64) engine.Expr { return engine.ConstFloat(v) }

// Mul multiplies.
func Mul(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpMul, l, r) }

// Add adds.
func Add(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpAdd, l, r) }

// Sub subtracts.
func Sub(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpSub, l, r) }

// GE compares >=.
func GE(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpGE, l, r) }

// LT compares <.
func LT(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpLT, l, r) }

// LE compares <=.
func LE(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpLE, l, r) }

// And conjoins.
func And(l, r engine.Expr) engine.Expr { return engine.NewBin(engine.OpAnd, l, r) }

// Sum aggregates.
func Sum(e engine.Expr, name string) engine.AggSpec {
	return engine.AggSpec{Func: engine.AggSum, Arg: e, Name: name}
}

// Count counts rows.
func Count(name string) engine.AggSpec {
	return engine.AggSpec{Func: engine.AggCount, Name: name}
}

// Avg averages.
func Avg(e engine.Expr, name string) engine.AggSpec {
	return engine.AggSpec{Func: engine.AggAvg, Arg: e, Name: name}
}

// Min aggregates the minimum.
func Min(e engine.Expr, name string) engine.AggSpec {
	return engine.AggSpec{Func: engine.AggMin, Arg: e, Name: name}
}

// Max aggregates the maximum.
func Max(e engine.Expr, name string) engine.AggSpec {
	return engine.AggSpec{Func: engine.AggMax, Arg: e, Name: name}
}
