package dataflow

import (
	"math"
	"strings"
	"testing"

	"lambada/internal/engine"
	"lambada/internal/tpch"
)

func TestListing1Pipeline(t *testing.T) {
	// Listing 1: from_parquet(...).filter(x[1] >= 0.05).map(x[1]*x[2])
	// .reduce(+), expressed over named columns.
	data := tpch.Gen{SF: 0.002, Seed: 2}.Generate()
	cat := engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema(), data)}

	plan, err := FromTable("lineitem").
		Filter(GE(Col("l_discount"), LitF(0.05))).
		Map([]string{"weighted"}, Mul(Col("l_discount"), Col("l_extendedprice"))).
		Reduce(Sum(Col("weighted"), "total")).
		Plan()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar reference.
	var want float64
	disc := data.Column("l_discount").Float64s
	price := data.Column("l_extendedprice").Float64s
	for i := range disc {
		if disc[i] >= 0.05 {
			want += disc[i] * price[i]
		}
	}
	got := out.Column("total").Float64s[0]
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("total = %v, want %v", got, want)
	}
}

func TestGroupByAggOrderLimit(t *testing.T) {
	data := tpch.Gen{SF: 0.002, Seed: 2}.Generate()
	cat := engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema(), data)}
	plan, err := FromTable("lineitem").
		GroupBy("l_returnflag").
		Agg(Count("n"), Avg(Col("l_quantity"), "aq"), Min(Col("l_quantity"), "lo"), Max(Col("l_quantity"), "hi")).
		OrderBy(engine.OrderKey{Column: "n", Desc: true}).
		Limit(2).
		Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Column("n").Int64s[0] < out.Column("n").Int64s[1] {
		t.Error("not ordered by count desc")
	}
	for i := 0; i < 2; i++ {
		if lo, hi := out.Column("lo").Float64s[i], out.Column("hi").Float64s[i]; lo > hi {
			t.Errorf("min %v > max %v", lo, hi)
		}
	}
}

func TestSelectProjectsColumns(t *testing.T) {
	plan, err := FromTable("t").Select("a", "b").Plan()
	if err != nil {
		t.Fatal(err)
	}
	s := engine.Explain(plan)
	if !strings.Contains(s, "Project a AS a, b AS b") {
		t.Errorf("explain:\n%s", s)
	}
}

func TestExpressionHelpers(t *testing.T) {
	e := And(LE(Col("x"), Lit(3)), LT(Sub(Col("y"), Lit(1)), Add(Col("z"), LitF(0.5))))
	s := e.String()
	for _, want := range []string{"x <= 3", "y - 1", "z + 0.5", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("expr %q missing %q", s, want)
		}
	}
}

func TestJoinPipeline(t *testing.T) {
	g := tpch.Gen{SF: 0.002, Seed: 8}
	li := g.Generate()
	sup := g.Supplier()
	cat := engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"supplier": engine.NewMemSource(tpch.SupplierSchema(), sup),
	}
	plan, err := FromTable("lineitem").
		Join(FromTable("supplier"), "l_suppkey", "s_suppkey").
		GroupBy("s_nationkey").
		Agg(Count("n")).
		Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Every lineitem row joins exactly one supplier, so counts sum to the
	// full relation.
	var total int64
	for i := 0; i < out.NumRows(); i++ {
		total += out.Column("n").Int64s[i]
	}
	if total != int64(li.NumRows()) {
		t.Errorf("joined counts sum to %d, want %d", total, li.NumRows())
	}
}

func TestPipelineDistributes(t *testing.T) {
	// Dataflow pipelines split into worker/driver scopes like SQL plans.
	plan, err := FromTable("t").
		Filter(GE(Col("l_discount"), LitF(0.05))).
		Reduce(Sum(Col("l_discount"), "s"), Count("n")).
		Plan()
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.Catalog{"t": engine.NewMemSource(tpch.Schema())}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := engine.SplitDistributed(opt)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Worker == nil || dist.Driver == nil {
		t.Fatal("scopes missing")
	}
	if !strings.Contains(engine.Explain(dist.Worker), "Aggregate") {
		t.Error("worker scope lost the partial aggregation")
	}
}
