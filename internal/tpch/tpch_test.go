package tpch

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

func bytesReaderAt(b []byte) *bytes.Reader { return bytes.NewReader(b) }

func genSmall(t *testing.T) *columnar.Chunk {
	t.Helper()
	c := Gen{SF: 0.002, Seed: 1}.Generate() // ~12k rows
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDateEncoding(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Errorf("epoch = %d", Date(1992, 1, 1))
	}
	if Date(1992, 1, 2) != 1 {
		t.Errorf("epoch+1 = %d", Date(1992, 1, 2))
	}
	if got := Date(1993, 1, 1); got != 366 { // 1992 is a leap year
		t.Errorf("1993-01-01 = %d, want 366", got)
	}
	if Q1ShipDateCutoff != Date(1998, 9, 2) {
		t.Errorf("Q1 cutoff = %d, want %d", Q1ShipDateCutoff, Date(1998, 9, 2))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Gen{SF: 0.001, Seed: 42}.Generate()
	b := Gen{SF: 0.001, Seed: 42}.Generate()
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Columns[10].Int64s[i] != b.Columns[10].Int64s[i] {
			t.Fatal("shipdates differ between identical-seed runs")
		}
	}
	c := Gen{SF: 0.001, Seed: 43}.Generate()
	same := true
	for i := 0; i < 100; i++ {
		if a.Columns[5].Float64s[i] != c.Columns[5].Float64s[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSortedByShipdate(t *testing.T) {
	c := genSmall(t)
	ship := c.Column("l_shipdate").Int64s
	if !sort.SliceIsSorted(ship, func(i, j int) bool { return ship[i] < ship[j] }) {
		t.Error("relation not sorted by l_shipdate")
	}
}

func TestValueRanges(t *testing.T) {
	c := genSmall(t)
	for i := 0; i < c.NumRows(); i++ {
		if q := c.Column("l_quantity").Float64s[i]; q < 1 || q > 50 {
			t.Fatalf("quantity %v out of [1,50]", q)
		}
		if d := c.Column("l_discount").Float64s[i]; d < 0 || d > 0.10001 {
			t.Fatalf("discount %v out of [0,0.1]", d)
		}
		if x := c.Column("l_tax").Float64s[i]; x < 0 || x > 0.08001 {
			t.Fatalf("tax %v out of [0,0.08]", x)
		}
		rf := c.Column("l_returnflag").Int64s[i]
		if rf != ReturnFlagR && rf != ReturnFlagA && rf != ReturnFlagN {
			t.Fatalf("returnflag %d invalid", rf)
		}
		ls := c.Column("l_linestatus").Int64s[i]
		if ls != LineStatusO && ls != LineStatusF {
			t.Fatalf("linestatus %d invalid", ls)
		}
		ship := c.Column("l_shipdate").Int64s[i]
		receipt := c.Column("l_receiptdate").Int64s[i]
		if receipt <= ship {
			t.Fatalf("receipt %d <= ship %d", receipt, ship)
		}
	}
}

func TestReturnFlagConsistentWithReceiptDate(t *testing.T) {
	c := genSmall(t)
	receipt := c.Column("l_receiptdate").Int64s
	rflag := c.Column("l_returnflag").Int64s
	for i := range receipt {
		if receipt[i] <= CurrentDate && rflag[i] == ReturnFlagN {
			t.Fatal("past receipt marked N")
		}
		if receipt[i] > CurrentDate && rflag[i] != ReturnFlagN {
			t.Fatal("future receipt not marked N")
		}
	}
}

func TestPaperSelectivities(t *testing.T) {
	// §5.3: Q1 selects ~98 %, Q6 ~2 %.
	c := Gen{SF: 0.01, Seed: 7}.Generate() // ~60k rows
	q1, q6 := Selectivity(c)
	if q1 < 0.95 || q1 > 0.995 {
		t.Errorf("Q1 selectivity = %.3f, want ~0.98", q1)
	}
	if q6 < 0.01 || q6 > 0.035 {
		t.Errorf("Q6 selectivity = %.3f, want ~0.02", q6)
	}
}

func TestQ1ReferenceProperties(t *testing.T) {
	c := genSmall(t)
	rows := Q1Reference(c)
	if len(rows) != 4 {
		// Groups: (R,F), (A,F), (N,F), (N,O) — N pairs only with O except
		// the boundary window; dbgen yields exactly 4 groups.
		t.Fatalf("Q1 produced %d groups, want 4", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r.Count
		if r.AvgQty < 1 || r.AvgQty > 50 {
			t.Errorf("avg qty %v out of range", r.AvgQty)
		}
		if math.Abs(r.AvgQty-r.SumQty/float64(r.Count)) > 1e-9 {
			t.Error("avg inconsistent with sum/count")
		}
		if r.SumDiscPrice > r.SumBasePrice {
			t.Error("discounted price exceeds base price")
		}
		if r.SumCharge < r.SumDiscPrice {
			t.Error("charge below discounted price")
		}
	}
	q1, _ := Selectivity(c)
	if got := float64(total) / float64(c.NumRows()); math.Abs(got-q1) > 1e-9 {
		t.Errorf("Q1 row total %.4f != selectivity %.4f", got, q1)
	}
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		if rows[i].ReturnFlag != rows[j].ReturnFlag {
			return rows[i].ReturnFlag < rows[j].ReturnFlag
		}
		return rows[i].LineStatus < rows[j].LineStatus
	}) {
		t.Error("Q1 rows not sorted")
	}
}

func TestQ1PartialMergeEqualsWhole(t *testing.T) {
	// The distributed invariant: merging per-file partials equals the
	// single-node aggregate.
	c := genSmall(t)
	whole := Q1Partial(c)
	files := SplitFiles(c, 7)
	merged := make(map[Q1GroupKey]Q1Agg)
	for _, f := range files {
		for k, a := range Q1Partial(f) {
			m := merged[k]
			m.Merge(a)
			merged[k] = m
		}
	}
	if len(merged) != len(whole) {
		t.Fatalf("group counts differ: %d vs %d", len(merged), len(whole))
	}
	for k, w := range whole {
		m := merged[k]
		if m.Count != w.Count || math.Abs(m.SumCharge-w.SumCharge) > 1e-6*math.Abs(w.SumCharge) {
			t.Errorf("group %+v: merged %+v != whole %+v", k, m, w)
		}
	}
}

func TestQ6PartialSumEqualsWhole(t *testing.T) {
	c := genSmall(t)
	whole := Q6Reference(c)
	if whole <= 0 {
		t.Fatal("Q6 result not positive")
	}
	var parts float64
	for _, f := range SplitFiles(c, 5) {
		parts += Q6Reference(f)
	}
	if math.Abs(parts-whole) > 1e-6*whole {
		t.Errorf("split sum %v != whole %v", parts, whole)
	}
}

func TestSplitFilesCoversExactly(t *testing.T) {
	c := genSmall(t)
	files := SplitFiles(c, 9)
	var rows int
	for _, f := range files {
		rows += f.NumRows()
	}
	if rows != c.NumRows() {
		t.Errorf("split rows = %d, want %d", rows, c.NumRows())
	}
	if len(files) != 9 {
		t.Errorf("files = %d", len(files))
	}
	// Degenerate cases.
	if got := SplitFiles(c, 0); len(got) != 1 {
		t.Error("nfiles=0 should yield one file")
	}
}

func TestShipdateSortednessEnablesPruning(t *testing.T) {
	// Because the relation is sorted by shipdate, most files fall entirely
	// outside Q6's one-year window — that is the mechanism behind the 80 %
	// of workers that return immediately in Figure 11.
	c := Gen{SF: 0.01, Seed: 3}.Generate()
	files := SplitFiles(c, 32)
	pruned := 0
	for _, f := range files {
		data, err := lpq.WriteFile(Schema(), lpq.WriterOptions{}, f)
		if err != nil {
			t.Fatal(err)
		}
		r, err := lpq.OpenReader(bytesReaderAt(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		keep := lpq.PruneRowGroups(r.Meta(), []lpq.Predicate{{
			Column: "l_shipdate", Min: float64(Q6ShipDateLo), Max: float64(Q6ShipDateHi - 1),
		}})
		if len(keep) == 0 {
			pruned++
		}
	}
	frac := float64(pruned) / float64(len(files))
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("pruned fraction = %.2f, want ~0.8 (Figure 11)", frac)
	}
}

func TestFormatQ1(t *testing.T) {
	c := genSmall(t)
	s := FormatQ1(Q1Reference(c))
	if len(s) == 0 || s[0] != 'l' {
		t.Error("format empty")
	}
}

func TestOrdersForReferentialIntegrity(t *testing.T) {
	g := Gen{SF: 0.001, Seed: 42}
	li := g.Generate()
	orders := g.OrdersFor(li)
	keys := map[int64]bool{}
	prev := int64(0)
	okeys := orders.Column("o_orderkey").Int64s
	for _, k := range okeys {
		if k != prev+1 {
			t.Fatalf("order keys not dense: %d after %d", k, prev)
		}
		prev = k
		keys[k] = true
	}
	for _, k := range li.Column("l_orderkey").Int64s {
		if !keys[k] {
			t.Fatalf("lineitem references missing order %d", k)
		}
	}
	for _, p := range orders.Column("o_orderpriority").Int64s {
		if p < PriorityUrgent || p > PriorityNone {
			t.Fatalf("priority %d out of range", p)
		}
	}
	// Deterministic in the seed.
	again := g.OrdersFor(li)
	for i := range okeys {
		if again.Column("o_custkey").Int64s[i] != orders.Column("o_custkey").Int64s[i] {
			t.Fatal("OrdersFor not deterministic")
		}
	}
}

func TestQ12ReferenceProperties(t *testing.T) {
	g := Gen{SF: 0.002, Seed: 7}
	li := g.Generate()
	orders := g.OrdersFor(li)
	rows := Q12Reference(li, orders)
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("%d priority groups", len(rows))
	}
	var total int64
	for i, r := range rows {
		if i > 0 && rows[i-1].Priority >= r.Priority {
			t.Fatal("rows not sorted by priority")
		}
		if r.Count <= 0 || r.Total <= 0 {
			t.Fatalf("empty group %+v", r)
		}
		total += r.Count
	}
	// The late-lineitem filter selects a strict, non-trivial subset.
	if total <= 0 || total >= int64(li.NumRows()) {
		t.Fatalf("filter selected %d of %d rows", total, li.NumRows())
	}
}
