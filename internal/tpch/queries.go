package tpch

import (
	"fmt"
	"sort"

	"lambada/internal/columnar"
)

// Q1Row is one output group of TPC-H Query 1.
type Q1Row struct {
	ReturnFlag, LineStatus    int64
	SumQty, SumBasePrice      float64
	SumDiscPrice, SumCharge   float64
	AvgQty, AvgPrice, AvgDisc float64
	Count                     int64
}

// Q1Agg is the partial aggregate state for one Query 1 group; partial states
// from distributed workers merge exactly.
type Q1Agg struct {
	SumQty, SumBase, SumDisc, SumCharge, SumDiscount float64
	Count                                            int64
}

// Merge folds other into a.
func (a *Q1Agg) Merge(other Q1Agg) {
	a.SumQty += other.SumQty
	a.SumBase += other.SumBase
	a.SumDisc += other.SumDisc
	a.SumCharge += other.SumCharge
	a.SumDiscount += other.SumDiscount
	a.Count += other.Count
}

// Q1GroupKey identifies one Query 1 group.
type Q1GroupKey struct{ ReturnFlag, LineStatus int64 }

// Q1Partial computes per-group partial aggregates of Query 1 over chunks:
//
//	SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice),
//	       SUM(l_extendedprice*(1-l_discount)),
//	       SUM(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*)
//	FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - 90 DAY
//	GROUP BY l_returnflag, l_linestatus
func Q1Partial(chunks ...*columnar.Chunk) map[Q1GroupKey]Q1Agg {
	out := make(map[Q1GroupKey]Q1Agg)
	for _, c := range chunks {
		ship := c.Column("l_shipdate").Int64s
		qty := c.Column("l_quantity").Float64s
		price := c.Column("l_extendedprice").Float64s
		disc := c.Column("l_discount").Float64s
		tax := c.Column("l_tax").Float64s
		rflag := c.Column("l_returnflag").Int64s
		lstatus := c.Column("l_linestatus").Int64s
		for i := range ship {
			if ship[i] > Q1ShipDateCutoff {
				continue
			}
			k := Q1GroupKey{ReturnFlag: rflag[i], LineStatus: lstatus[i]}
			a := out[k]
			a.SumQty += qty[i]
			a.SumBase += price[i]
			dp := price[i] * (1 - disc[i])
			a.SumDisc += dp
			a.SumCharge += dp * (1 + tax[i])
			a.SumDiscount += disc[i]
			a.Count++
			out[k] = a
		}
	}
	return out
}

// Q1Finalize turns merged partials into sorted result rows.
func Q1Finalize(partials map[Q1GroupKey]Q1Agg) []Q1Row {
	rows := make([]Q1Row, 0, len(partials))
	for k, a := range partials {
		if a.Count == 0 {
			continue
		}
		rows = append(rows, Q1Row{
			ReturnFlag:   k.ReturnFlag,
			LineStatus:   k.LineStatus,
			SumQty:       a.SumQty,
			SumBasePrice: a.SumBase,
			SumDiscPrice: a.SumDisc,
			SumCharge:    a.SumCharge,
			AvgQty:       a.SumQty / float64(a.Count),
			AvgPrice:     a.SumBase / float64(a.Count),
			AvgDisc:      a.SumDiscount / float64(a.Count),
			Count:        a.Count,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ReturnFlag != rows[j].ReturnFlag {
			return rows[i].ReturnFlag < rows[j].ReturnFlag
		}
		return rows[i].LineStatus < rows[j].LineStatus
	})
	return rows
}

// Q1Reference computes the full Query 1 result.
func Q1Reference(chunks ...*columnar.Chunk) []Q1Row {
	return Q1Finalize(Q1Partial(chunks...))
}

// Q6Reference computes TPC-H Query 6:
//
//	SELECT SUM(l_extendedprice * l_discount) FROM lineitem
//	WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
//	  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
func Q6Reference(chunks ...*columnar.Chunk) float64 {
	var sum float64
	for _, c := range chunks {
		ship := c.Column("l_shipdate").Int64s
		qty := c.Column("l_quantity").Float64s
		price := c.Column("l_extendedprice").Float64s
		disc := c.Column("l_discount").Float64s
		for i := range ship {
			if ship[i] >= Q6ShipDateLo && ship[i] < Q6ShipDateHi &&
				disc[i] >= 0.0499999 && disc[i] <= 0.0700001 && qty[i] < 24 {
				sum += price[i] * disc[i]
			}
		}
	}
	return sum
}

// Q12Row is one output group of the Query 12-shaped join query.
type Q12Row struct {
	Priority int64
	Count    int64
	Total    float64
}

// Q12ReceiptDateLo and Q12ReceiptDateHi bound the receipt-date year
// [1995-01-01, 1996-01-01) of the Q12-shaped query.
var (
	Q12ReceiptDateLo = Date(1995, 1, 1)
	Q12ReceiptDateHi = Date(1996, 1, 1)
)

// Q12Reference computes the TPC-H Query 12-shaped join — LINEITEM joined
// with ORDERS on the order key, late lineitems grouped by order priority:
//
//	SELECT o_orderpriority, COUNT(*), SUM(l_extendedprice)
//	FROM lineitem INNER JOIN orders ON l_orderkey = o_orderkey
//	WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1996-01-01'
//	  AND l_commitdate < l_receiptdate
//	GROUP BY o_orderpriority ORDER BY o_orderpriority
//
// Both sides are large (LINEITEM ~6M×SF rows, ORDERS ~1.5M×SF rows), which
// makes this the reference workload for the shuffle-join path: neither
// side fits a driver broadcast at scale.
func Q12Reference(lineitem, orders *columnar.Chunk) []Q12Row {
	prio := map[int64]int64{}
	okeys := orders.Column("o_orderkey").Int64s
	oprio := orders.Column("o_orderpriority").Int64s
	for i := range okeys {
		prio[okeys[i]] = oprio[i]
	}
	counts := map[int64]int64{}
	totals := map[int64]float64{}
	lkeys := lineitem.Column("l_orderkey").Int64s
	receipt := lineitem.Column("l_receiptdate").Int64s
	commit := lineitem.Column("l_commitdate").Int64s
	price := lineitem.Column("l_extendedprice").Float64s
	for i := range lkeys {
		if receipt[i] < Q12ReceiptDateLo || receipt[i] >= Q12ReceiptDateHi || commit[i] >= receipt[i] {
			continue
		}
		p, ok := prio[lkeys[i]]
		if !ok {
			continue
		}
		counts[p]++
		totals[p] += price[i]
	}
	rows := make([]Q12Row, 0, len(counts))
	for p, n := range counts {
		rows = append(rows, Q12Row{Priority: p, Count: n, Total: totals[p]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Priority < rows[j].Priority })
	return rows
}

// Selectivity returns the fraction of rows passing the Q1 and Q6 filters —
// §5.3 reports ~98 % for Q1 and ~2 % for Q6.
func Selectivity(c *columnar.Chunk) (q1, q6 float64) {
	ship := c.Column("l_shipdate").Int64s
	qty := c.Column("l_quantity").Float64s
	disc := c.Column("l_discount").Float64s
	var n1, n6 int
	for i := range ship {
		if ship[i] <= Q1ShipDateCutoff {
			n1++
		}
		if ship[i] >= Q6ShipDateLo && ship[i] < Q6ShipDateHi &&
			disc[i] >= 0.0499999 && disc[i] <= 0.0700001 && qty[i] < 24 {
			n6++
		}
	}
	total := float64(len(ship))
	return float64(n1) / total, float64(n6) / total
}

// FormatQ1 renders Query 1 rows like the TPC-H answer set.
func FormatQ1(rows []Q1Row) string {
	s := "l_returnflag | l_linestatus | sum_qty | sum_base_price | sum_disc_price | sum_charge | count\n"
	for _, r := range rows {
		s += fmt.Sprintf("%12d | %12d | %7.0f | %14.2f | %14.2f | %10.2f | %5d\n",
			r.ReturnFlag, r.LineStatus, r.SumQty, r.SumBasePrice, r.SumDiscPrice, r.SumCharge, r.Count)
	}
	return s
}
