// Package tpch generates the TPC-H LINEITEM relation the way the paper's
// evaluation does (§5.1): dbgen modified to produce numbers instead of
// strings, the relation sorted by l_shipdate (to expose selection push-down
// effects), and higher scale factors produced by replicating files.
//
// It also provides reference implementations of TPC-H Query 1 and Query 6 —
// the two most scan-bound queries — used to validate the distributed engine
// and to reproduce Figures 10, 11 and 12.
package tpch

import (
	"math/rand"
	"sort"
	"time"

	"lambada/internal/columnar"
)

// RowsPerSF is the LINEITEM cardinality at scale factor 1 (dbgen exact).
const RowsPerSF = 6_001_215

// Column codes replacing dbgen strings (the paper's modified dbgen
// "generates numbers instead of strings").
const (
	ReturnFlagR = int64(0) // 'R'
	ReturnFlagA = int64(1) // 'A'
	ReturnFlagN = int64(2) // 'N'

	LineStatusO = int64(0) // 'O'
	LineStatusF = int64(1) // 'F'
)

// epoch is day zero of the date encoding.
var epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// Date encodes a calendar date as days since 1992-01-01.
func Date(year, month, day int) int64 {
	d := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int64(d.Sub(epoch).Hours() / 24)
}

// Well-known predicate constants.
var (
	// Q1ShipDateCutoff is DATE '1998-12-01' - INTERVAL '90' DAY.
	Q1ShipDateCutoff = Date(1998, 12, 1) - 90
	// Q6ShipDateLo and Q6ShipDateHi bound [1994-01-01, 1995-01-01).
	Q6ShipDateLo = Date(1994, 1, 1)
	Q6ShipDateHi = Date(1995, 1, 1)
	// CurrentDate is dbgen's fixed "today" used for l_receiptdate logic.
	CurrentDate = Date(1995, 6, 17)
)

// Schema returns the numeric LINEITEM schema.
func Schema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "l_orderkey", Type: columnar.Int64},
		columnar.Field{Name: "l_partkey", Type: columnar.Int64},
		columnar.Field{Name: "l_suppkey", Type: columnar.Int64},
		columnar.Field{Name: "l_linenumber", Type: columnar.Int64},
		columnar.Field{Name: "l_quantity", Type: columnar.Float64},
		columnar.Field{Name: "l_extendedprice", Type: columnar.Float64},
		columnar.Field{Name: "l_discount", Type: columnar.Float64},
		columnar.Field{Name: "l_tax", Type: columnar.Float64},
		columnar.Field{Name: "l_returnflag", Type: columnar.Int64},
		columnar.Field{Name: "l_linestatus", Type: columnar.Int64},
		columnar.Field{Name: "l_shipdate", Type: columnar.Int64},
		columnar.Field{Name: "l_commitdate", Type: columnar.Int64},
		columnar.Field{Name: "l_receiptdate", Type: columnar.Int64},
	)
}

// Gen generates LINEITEM data deterministically.
type Gen struct {
	// SF is the scale factor; the row count is RowsPerSF * SF.
	SF float64
	// Seed makes generation reproducible.
	Seed int64
}

// NumRows returns the row count for the configured scale factor.
func (g Gen) NumRows() int {
	n := int(float64(RowsPerSF) * g.SF)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate produces the full relation sorted by l_shipdate.
func (g Gen) Generate() *columnar.Chunk {
	n := g.NumRows()
	rng := rand.New(rand.NewSource(g.Seed))
	type row struct {
		orderkey, partkey, suppkey, linenumber int64
		qty, price, disc, tax                  float64
		rflag, lstatus                         int64
		ship, commit, receipt                  int64
	}
	rows := make([]row, n)
	orderKey := int64(1)
	line := int64(1)
	linesInOrder := int64(rng.Intn(7) + 1)
	// Order dates span 1992-01-01 .. 1998-08-02 as in dbgen; shipdates
	// extend up to 121 days later (max ~1998-12-01), so the Q1 cutoff of
	// 1998-09-02 selects ~98 % of the relation.
	orderDateMax := Date(1998, 8, 2)
	for i := range rows {
		if line > linesInOrder {
			orderKey++
			line = 1
			linesInOrder = int64(rng.Intn(7) + 1)
		}
		orderDate := rng.Int63n(orderDateMax)
		ship := orderDate + int64(rng.Intn(121)) + 1
		commit := orderDate + int64(rng.Intn(91)) + 30
		receipt := ship + int64(rng.Intn(30)) + 1
		var rflag int64
		if receipt <= CurrentDate {
			if rng.Intn(2) == 0 {
				rflag = ReturnFlagR
			} else {
				rflag = ReturnFlagA
			}
		} else {
			rflag = ReturnFlagN
		}
		lstatus := LineStatusO
		if ship <= CurrentDate {
			lstatus = LineStatusF
		}
		qty := float64(rng.Intn(50) + 1)
		// dbgen: extendedprice = quantity * part retail price
		// (90000..200000 cents scaled); approximate its range.
		price := qty * (float64(rng.Intn(110001)+90000) / 100.0)
		rows[i] = row{
			orderkey:   orderKey,
			partkey:    int64(rng.Intn(200000*maxInt(1, int(g.SF))) + 1),
			suppkey:    int64(rng.Intn(maxInt(1, int(10000*g.SF))) + 1),
			linenumber: line,
			qty:        qty,
			price:      price,
			disc:       float64(rng.Intn(11)) / 100.0,
			tax:        float64(rng.Intn(9)) / 100.0,
			rflag:      rflag,
			lstatus:    lstatus,
			ship:       ship,
			commit:     commit,
			receipt:    receipt,
		}
		line++
	}
	// §5.1: "we sort the LINEITEM relation by l_shipdate".
	sort.Slice(rows, func(i, j int) bool { return rows[i].ship < rows[j].ship })

	c := columnar.NewChunk(Schema(), n)
	for _, r := range rows {
		c.Columns[0].AppendInt64(r.orderkey)
		c.Columns[1].AppendInt64(r.partkey)
		c.Columns[2].AppendInt64(r.suppkey)
		c.Columns[3].AppendInt64(r.linenumber)
		c.Columns[4].AppendFloat64(r.qty)
		c.Columns[5].AppendFloat64(r.price)
		c.Columns[6].AppendFloat64(r.disc)
		c.Columns[7].AppendFloat64(r.tax)
		c.Columns[8].AppendInt64(r.rflag)
		c.Columns[9].AppendInt64(r.lstatus)
		c.Columns[10].AppendInt64(r.ship)
		c.Columns[11].AppendInt64(r.commit)
		c.Columns[12].AppendInt64(r.receipt)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SupplierSchema returns the numeric SUPPLIER schema (the columns joins
// against LINEITEM need).
func SupplierSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "s_suppkey", Type: columnar.Int64},
		columnar.Field{Name: "s_nationkey", Type: columnar.Int64},
		columnar.Field{Name: "s_acctbal", Type: columnar.Float64},
	)
}

// Supplier generates the SUPPLIER relation: 10000 × SF rows (dbgen), with
// nation keys uniform over the 25 TPC-H nations. It is the small broadcast
// side of LINEITEM joins.
func (g Gen) Supplier() *columnar.Chunk {
	n := int(10000 * g.SF)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(g.Seed ^ 0x5afe))
	c := columnar.NewChunk(SupplierSchema(), n)
	for i := 0; i < n; i++ {
		c.Columns[0].AppendInt64(int64(i + 1))
		c.Columns[1].AppendInt64(int64(rng.Intn(25)))
		c.Columns[2].AppendFloat64(float64(rng.Intn(1099999))/100.0 - 999.99)
	}
	return c
}

// Order priority codes replacing dbgen's '1-URGENT'..'5-LOW' strings.
const (
	PriorityUrgent = int64(0) // '1-URGENT'
	PriorityHigh   = int64(1) // '2-HIGH'
	PriorityMedium = int64(2) // '3-MEDIUM'
	PriorityLow    = int64(3) // '4-NOT SPECIFIED'
	PriorityNone   = int64(4) // '5-LOW'
)

// OrdersSchema returns the numeric ORDERS schema (the columns the join
// queries need). ORDERS is the second large relation: at scale it is far
// beyond any broadcast limit, so LINEITEM ⋈ ORDERS is the canonical
// two-large-sides shuffle join.
func OrdersSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "o_orderkey", Type: columnar.Int64},
		columnar.Field{Name: "o_custkey", Type: columnar.Int64},
		columnar.Field{Name: "o_orderpriority", Type: columnar.Int64},
		columnar.Field{Name: "o_totalprice", Type: columnar.Float64},
		columnar.Field{Name: "o_orderdate", Type: columnar.Int64},
	)
}

// OrdersFor generates the ORDERS relation matching a generated LINEITEM
// chunk: one row per order key in [1, max(l_orderkey)], so every lineitem
// joins exactly one order (dbgen's referential integrity). Deterministic
// in g.Seed.
func (g Gen) OrdersFor(lineitem *columnar.Chunk) *columnar.Chunk {
	var maxKey int64
	for _, k := range lineitem.Column("l_orderkey").Int64s {
		if k > maxKey {
			maxKey = k
		}
	}
	rng := rand.New(rand.NewSource(g.Seed ^ 0x0bde5))
	c := columnar.NewChunk(OrdersSchema(), int(maxKey))
	orderDateMax := Date(1998, 8, 2)
	for k := int64(1); k <= maxKey; k++ {
		c.Columns[0].AppendInt64(k)
		c.Columns[1].AppendInt64(int64(rng.Intn(maxInt(1, int(150000*g.SF))) + 1))
		c.Columns[2].AppendInt64(int64(rng.Intn(5)))
		c.Columns[3].AppendFloat64(float64(rng.Intn(50000000))/100.0 + 857.71)
		c.Columns[4].AppendInt64(rng.Int63n(orderDateMax))
	}
	return c
}

// SplitFiles partitions a sorted relation into nfiles contiguous chunks, the
// way the paper stores one table as 320 Parquet files of ~500 MB.
func SplitFiles(c *columnar.Chunk, nfiles int) []*columnar.Chunk {
	n := c.NumRows()
	if nfiles < 1 {
		nfiles = 1
	}
	out := make([]*columnar.Chunk, 0, nfiles)
	per := (n + nfiles - 1) / nfiles
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, c.Slice(lo, hi))
	}
	return out
}
