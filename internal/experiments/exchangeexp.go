package experiments

import (
	"fmt"
	"sync"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/exchange"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
)

// Figure9 evaluates the Table 2 cost models for the six exchange variants
// across worker counts — the bars of Figure 9 (per-worker read+write cost)
// plus the worker-cost band.
func Figure9() *Table {
	t := &Table{ID: "Figure 9", Title: "Cost of S3-based exchange algorithms (per worker)",
		Headers: []string{"P", "variant", "read cost/worker", "write cost/worker", "total/worker", "worker band lo", "worker band hi"}}
	for _, p := range []int{64, 256, 1024, 4096, 16384} {
		for _, v := range exchange.AllVariants {
			readC := pricing.USD(v.Reads(p)) * pricing.S3Read / pricing.USD(p)
			writeC := pricing.USD(v.Writes(p)) * pricing.S3Write / pricing.USD(p)
			lo := v.WorkerCost(p, 100<<20) / pricing.USD(p)
			hi := v.WorkerCost(p, 3<<30) / pricing.USD(p) // three scans of 1 GiB
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p), v.String(),
				fmt.Sprintf("%.3g", float64(readC)),
				fmt.Sprintf("%.3g", float64(writeC)),
				fmt.Sprintf("%.3g", float64(readC+writeC)),
				fmt.Sprintf("%.3g", float64(lo)),
				fmt.Sprintf("%.3g", float64(hi)),
			})
		}
	}
	return t
}

// Table2 renders the request-complexity formulas evaluated symbolically.
func Table2() *Table {
	t := &Table{ID: "Table 2", Title: "Cost models of S3-based exchange algorithms (counts at P=1024)",
		Headers: []string{"algorithm", "#reads", "#writes", "#lists", "#scans"}}
	const p = 1024
	for _, v := range exchange.AllVariants {
		t.Rows = append(t.Rows, []string{
			v.String(),
			fmt.Sprintf("%.0f", v.Reads(p)),
			fmt.Sprintf("%.0f", v.Writes(p)),
			fmt.Sprintf("%.0f", v.Lists(p)),
			fmt.Sprintf("%d", v.Scans()),
		})
	}
	return t
}

// ExchangeRunConfig parameterizes a DES execution of the synthetic exchange.
type ExchangeRunConfig struct {
	Workers    int
	TotalBytes int64
	Variant    exchange.Variant
	Buckets    int
	MemoryMiB  int
	Seed       int64
	// StragglerSigma scales per-worker bandwidth variation (0 = uniform).
	// The heavy tail of per-worker write bandwidth is what produces the
	// stragglers of Figure 13.
	StragglerSigma float64
	// ReadInput adds an input-scan phase before the exchange.
	ReadInput bool
}

// WorkerResult is one worker's outcome.
type WorkerResult struct {
	ID        int
	ReadInput time.Duration
	Trace     *exchange.Trace
	Total     time.Duration
}

// ExchangeRunResult is a DES exchange execution.
type ExchangeRunResult struct {
	Config   ExchangeRunConfig
	Duration time.Duration // end-to-end (slowest worker)
	Workers  []WorkerResult
	Fastest  time.Duration
}

// RunExchangeDES executes the synthetic exchange on the DES kernel with
// rate limits, request latencies and per-worker bandwidth shaping.
func RunExchangeDES(cfg ExchangeRunConfig) (*ExchangeRunResult, error) {
	k := simclock.New()
	meter := pricing.NewCostMeter()
	svc := s3.New(s3.DefaultAWSConfig(meter, cfg.Seed))
	var buckets []string
	for i := 0; i < cfg.Buckets; i++ {
		b := fmt.Sprintf("xshard-%d", i)
		buckets = append(buckets, b)
		svc.MustCreateBucket(b)
	}
	opts := exchange.DefaultOptions(cfg.Variant, buckets...)
	opts.Poll = 250 * time.Millisecond
	opts.MaxWait = time.Hour

	perWorker := cfg.TotalBytes / int64(cfg.Workers)
	res := &ExchangeRunResult{Config: cfg, Workers: make([]WorkerResult, cfg.Workers)}
	var mu sync.Mutex
	var firstErr error
	straggle := netmodel.Lognormal{Mu: 0, Sigma: cfg.StragglerSigma, Scale: time.Second}

	for wid := 0; wid < cfg.Workers; wid++ {
		wid := wid
		k.Go(fmt.Sprintf("xw%d", wid), func(p *simclock.Proc) {
			// Per-worker bandwidth factor: a heavy-tailed slowdown models
			// the degraded instances that become stragglers at scale.
			net := netmodel.DefaultLambdaNet()
			if cfg.StragglerSigma > 0 {
				rng := deterministicRand(cfg.Seed, wid)
				factor := straggle.Sample(rng).Seconds()
				if factor < 0.7 {
					factor = 0.7
				}
				net.Sustained = netmodel.Rate(float64(net.Sustained) / factor)
				net.Burst = netmodel.Rate(float64(net.Burst) / factor)
				net.PerConnection = netmodel.Rate(float64(net.PerConnection) / factor)
			}
			client := s3.NewClient(svc, p, s3.WithShaper(net, cfg.MemoryMiB), s3.WithRetry(50*time.Millisecond, 20))
			start := p.Now()
			var readInput time.Duration
			if cfg.ReadInput {
				rs := p.Now()
				client.Get("xshard-0", "input", 4) // modeled input scan
				readInput = p.Now() - rs
			}
			wk := exchange.Worker{ID: wid, P: cfg.Workers, Client: client}
			_, trace, err := wk.RunSyntheticTraced(opts, perWorker)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("worker %d: %w", wid, err)
			}
			res.Workers[wid] = WorkerResult{ID: wid, ReadInput: readInput, Trace: trace, Total: p.Now() - start}
			mu.Unlock()
		})
	}
	if cfg.ReadInput {
		env := newZeroEnv()
		svc.PutSynthetic(env, "xshard-0", "input", perWorker)
	}
	end := k.Run()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Duration = end
	res.Fastest = res.Workers[0].Total
	for _, w := range res.Workers {
		if w.Total < res.Fastest {
			res.Fastest = w.Total
		}
	}
	return res, nil
}

// Table3 runs the 100 GB shuffle on 250/500/1000 workers (2-level exchange
// with write combining) and reports the published Pocket and Locus numbers
// alongside.
func Table3(seed int64) (*Table, error) {
	t := &Table{ID: "Table 3", Title: "Running time of S3-based exchange operators (100 GB)",
		Headers: []string{"system", "workers", "storage", "time"}}
	t.Rows = append(t.Rows,
		[]string{"Pocket [18]", "250", "VMs", "58s"},
		[]string{"Pocket [18]", "500", "VMs", "28s"},
		[]string{"Pocket [18]", "1000", "VMs", "18s"},
		[]string{"Pocket baseline [18]", "250", "S3", "98s"},
		[]string{"Locus [21]", "dynamic", "mixed", "80s to 140s"},
	)
	for _, workers := range []int{250, 500, 1000} {
		res, err := RunExchangeDES(ExchangeRunConfig{
			Workers:    workers,
			TotalBytes: 100 * netmodel.GB,
			Variant:    exchange.Variant{Levels: 2, WriteCombining: true},
			Buckets:    32,
			MemoryMiB:  2048,
			Seed:       seed,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"Lambada", fmt.Sprintf("%d", workers), "S3", secs(res.Duration)})
	}
	return t, nil
}

// LargeShuffles runs the 1 TB / 1250-worker and 3 TB / 2500-worker
// configurations reported in §5.5.
func LargeShuffles(seed int64) (*Table, error) {
	t := &Table{ID: "Section 5.5", Title: "Exchange at TB scale",
		Headers: []string{"data", "workers", "time"}}
	cases := []struct {
		bytes   int64
		workers int
	}{
		{1 * netmodel.TB, 1250},
		{3 * netmodel.TB, 2500},
	}
	for _, c := range cases {
		res, err := RunExchangeDES(ExchangeRunConfig{
			Workers:        c.workers,
			TotalBytes:     c.bytes,
			Variant:        exchange.Variant{Levels: 2, WriteCombining: true},
			Buckets:        64,
			MemoryMiB:      2048,
			Seed:           seed,
			StragglerSigma: stragglerSigmaFor(c.workers),
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d TB", c.bytes/netmodel.TB),
			fmt.Sprintf("%d", c.workers), secs(res.Duration),
		})
	}
	return t, nil
}

// stragglerSigmaFor grows the bandwidth-variation tail with scale: the
// paper observes the slowest worker ~30 % above median at 1250 workers and
// ~4× at 2500.
func stragglerSigmaFor(workers int) float64 {
	if workers >= 2000 {
		return 0.35
	}
	return 0.08
}

// Figure13Result carries the phase breakdown of a TB-scale shuffle.
type Figure13Result struct {
	Run *ExchangeRunResult
	// Breakdown is the fastest observed duration per phase (the paper's
	// "informal lower bound").
	FastestPerPhase map[string]time.Duration
	// MedianTotal and SlowestTotal summarize the straggler effect.
	MedianTotal, SlowestTotal time.Duration
	// MedianWrite and SlowestWrite summarize round-1 write stragglers.
	MedianWrite, SlowestWrite time.Duration
}

// Figure13 runs one TB-scale configuration and computes the breakdown.
func Figure13(totalBytes int64, workers int, seed int64) (*Figure13Result, error) {
	res, err := RunExchangeDES(ExchangeRunConfig{
		Workers:        workers,
		TotalBytes:     totalBytes,
		Variant:        exchange.Variant{Levels: 2, WriteCombining: true},
		Buckets:        64,
		MemoryMiB:      2048,
		Seed:           seed,
		StragglerSigma: stragglerSigmaFor(workers),
		ReadInput:      true,
	})
	if err != nil {
		return nil, err
	}
	out := &Figure13Result{Run: res, FastestPerPhase: map[string]time.Duration{}}
	var totals, writes []time.Duration
	for _, w := range res.Workers {
		totals = append(totals, w.Total)
		if len(w.Trace.Rounds) > 0 {
			writes = append(writes, w.Trace.Rounds[0].Write)
		}
		phases := map[string]time.Duration{
			"read input":    w.ReadInput,
			"round 1 write": w.Trace.Rounds[0].Write,
			"round 1 wait":  w.Trace.Rounds[0].Wait,
			"round 1 read":  w.Trace.Rounds[0].Read,
			"round 2 write": w.Trace.Rounds[1].Write,
			"round 2 wait":  w.Trace.Rounds[1].Wait,
			"round 2 read":  w.Trace.Rounds[1].Read,
		}
		for name, d := range phases {
			if cur, ok := out.FastestPerPhase[name]; !ok || d < cur {
				out.FastestPerPhase[name] = d
			}
		}
	}
	sortDurations(totals)
	sortDurations(writes)
	out.MedianTotal = percentile(totals, 0.5)
	out.SlowestTotal = totals[len(totals)-1]
	out.MedianWrite = percentile(writes, 0.5)
	out.SlowestWrite = writes[len(writes)-1]
	return out, nil
}

// Figure13Table renders both TB-scale configurations.
func Figure13Table(seed int64) (*Table, error) {
	t := &Table{ID: "Figure 13", Title: "Break-down and straggler analysis of TwoLevelExchange",
		Headers: []string{"dataset", "workers", "end-to-end", "fastest worker", "median write", "slowest write", "slow/median"}}
	cases := []struct {
		bytes   int64
		workers int
	}{
		{1 * netmodel.TB, 1250},
		{3 * netmodel.TB, 2500},
	}
	for _, c := range cases {
		r, err := Figure13(c.bytes, c.workers, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d TB", c.bytes/netmodel.TB),
			fmt.Sprintf("%d", c.workers),
			secs(r.Run.Duration),
			secs(r.Run.Fastest),
			secs(r.MedianWrite),
			secs(r.SlowestWrite),
			fmt.Sprintf("%.2fx", r.SlowestWrite.Seconds()/r.MedianWrite.Seconds()),
		})
	}
	return t, nil
}
