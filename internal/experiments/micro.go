package experiments

import (
	"fmt"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/netmodel"
)

// Table1 reproduces the invocation characteristics per region.
func Table1() *Table {
	t := &Table{
		ID:      "Table 1",
		Title:   "Characteristics of function invocations",
		Headers: []string{"Metric", "eu", "us", "sa", "ap"},
	}
	regions := []netmodel.Region{netmodel.RegionEU, netmodel.RegionUS, netmodel.RegionSA, netmodel.RegionAP}
	single := []string{"Single invocation time [ms]"}
	concurrent := []string{"Concurrent inv. rate [inv./s]"}
	intra := []string{"Intra-region rate [inv./s]"}
	for _, r := range regions {
		p := netmodel.InvokeProfiles[r]
		single = append(single, fmt.Sprintf("%d", p.SingleLatency.Milliseconds()))
		concurrent = append(concurrent, fmt.Sprintf("%.0f", p.DriverRate))
		intra = append(intra, fmt.Sprintf("%.0f", p.IntraRegionRate))
	}
	t.Rows = [][]string{single, concurrent, intra}
	return t
}

// Figure4 reproduces the relative compute performance vs memory size for
// one and two threads, normalized to one vCPU (M = 1792 MiB, 1 thread).
func Figure4() *Figure {
	f := &Figure{ID: "Figure 4", Title: "Relative compute performance vs memory size",
		XLabel: "memory [MiB]", YLabel: "performance [% of 1 vCPU]"}
	sizes := []int{256, 512, 768, 1024, 1280, 1536, 1792, 2048, 2304, 2560, 2816, 3008}
	base := netmodel.ComputeTime(1.0, 1792, 1)
	for _, threads := range []int{1, 2} {
		var s Series
		s.Label = fmt.Sprintf("%d threads", threads)
		for _, m := range sizes {
			d := netmodel.ComputeTime(1.0, m, threads)
			s.Points = append(s.Points, Point{X: float64(m), Y: 100 * base.Seconds() / d.Seconds()})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure6 reproduces the per-worker S3 ingress bandwidth for large (1 GB)
// and small (100 MB) objects across memory sizes and connection counts,
// using the paper's methodology (median of three back-to-back runs).
func Figure6() (large, small *Figure) {
	ln := netmodel.DefaultLambdaNet()
	sizes := []int{512, 1024, 2048, 3008}
	conns := []int{1, 2, 4}
	run := func(id, title string, objBytes int64) *Figure {
		f := &Figure{ID: id, Title: title, XLabel: "memory [MiB]", YLabel: "bandwidth [MiB/s]"}
		for _, c := range conns {
			var s Series
			s.Label = fmt.Sprintf("%d connections", c)
			for _, m := range sizes {
				b := ln.NewBucket(m)
				var now time.Duration
				var effs []float64
				for i := 0; i < 3; i++ {
					d := b.Transfer(now, objBytes, ln.RequestRate(c, m))
					effs = append(effs, float64(objBytes)/d.Seconds()/netmodel.MiB)
					now += d
				}
				// median of three
				med := effs[0] + effs[1] + effs[2] - maxf(effs) - minf(effs)
				s.Points = append(s.Points, Point{X: float64(m), Y: med})
			}
			f.Series = append(f.Series, s)
		}
		return f
	}
	large = run("Figure 6a", "Scan bandwidth, large files (1 GB)", 1*netmodel.GB)
	small = run("Figure 6b", "Scan bandwidth, small files (100 MB)", 100*netmodel.MB)
	return large, small
}

func maxf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Figure7Config parameterizes the chunk-size experiment: downloading a 1 GB
// object with requests of varying size over 1/2/4 connections on the
// largest worker (3008 MiB).
type Figure7Config struct {
	ObjectBytes int64
	GetLatency  time.Duration
	ChunksMiB   []float64
	Conns       []int
	// CostRuns is how many times the scan is priced (the paper annotates
	// the cost of one thousand runs).
	CostRuns int
}

// DefaultFigure7 mirrors the paper's setup.
func DefaultFigure7() Figure7Config {
	return Figure7Config{
		ObjectBytes: 1 * netmodel.GB,
		GetLatency:  18 * time.Millisecond,
		ChunksMiB:   []float64{0.5, 1, 2, 4, 8, 16},
		Conns:       []int{1, 2, 4},
		CostRuns:    1000,
	}
}

// Figure7Row is one (chunk size, conns) sample.
type Figure7Row struct {
	ChunkMiB    float64
	Conns       int
	BandwidthMB float64 // MB/s as in the paper's axis
	Requests    int64
	RequestCost pricing.USD // for CostRuns runs
	// WorkerCostRatio is how much more expensive the requests are than the
	// workers for the same scan (the paper's bar annotations: 3.4×, 1.7×,
	// 0.87×, ...).
	WorkerCostRatio float64
}

// Figure7 computes scan bandwidth and request cost per chunk size: pipelined
// chunked requests on each connection, shaped by the worker's token bucket.
func Figure7(cfg Figure7Config) []Figure7Row {
	ln := netmodel.DefaultLambdaNet()
	var rows []Figure7Row
	for _, chunkMiB := range cfg.ChunksMiB {
		chunk := int64(chunkMiB * netmodel.MiB)
		requests := (cfg.ObjectBytes + chunk - 1) / chunk
		for _, conns := range cfg.Conns {
			// One connection sustains chunk/(latency + chunk/perConn);
			// conns connections multiply it, capped by the bucket.
			perConn := float64(chunk) / (cfg.GetLatency.Seconds() + float64(chunk)/float64(ln.PerConnection))
			reqRate := netmodel.Rate(perConn * float64(conns))
			b := ln.NewBucket(3008)
			// Paper methodology: repeated runs; report the steady-state
			// (post-burst) bandwidth via a warm-up transfer.
			b.Transfer(0, cfg.ObjectBytes, reqRate)
			d := b.Transfer(time.Duration(1)*time.Second*20, cfg.ObjectBytes, reqRate)
			bw := float64(cfg.ObjectBytes) / d.Seconds() / 1e6

			reqCost := pricing.USD(float64(requests*int64(cfg.CostRuns))) * pricing.S3Read
			// Worker cost of the same 1000 scans on a 2 GiB worker.
			scanSeconds := d.Seconds() * float64(cfg.CostRuns)
			workerCost := pricing.USD(2*scanSeconds) * pricing.LambdaGBSecond
			rows = append(rows, Figure7Row{
				ChunkMiB:        chunkMiB,
				Conns:           conns,
				BandwidthMB:     bw,
				Requests:        requests,
				RequestCost:     reqCost,
				WorkerCostRatio: float64(reqCost) / float64(workerCost),
			})
		}
	}
	return rows
}

// Figure7Table renders the rows.
func Figure7Table() *Table {
	rows := Figure7(DefaultFigure7())
	t := &Table{ID: "Figure 7", Title: "Impact of the chunk size on scan characteristics (1 GB object, 3008 MiB worker)",
		Headers: []string{"chunk [MiB]", "conns", "bandwidth [MB/s]", "requests", "cost of 1000 runs", "req/worker cost"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", r.ChunkMiB),
			fmt.Sprintf("%d", r.Conns),
			fmt.Sprintf("%.0f", r.BandwidthMB),
			fmt.Sprintf("%d", r.Requests),
			r.RequestCost.String(),
			fmt.Sprintf("%.2fx", r.WorkerCostRatio),
		})
	}
	return t
}
