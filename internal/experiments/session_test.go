package experiments

import (
	"strings"
	"testing"
	"time"
)

func sessionBySystem(t *testing.T, cfg SessionConfig) map[string]SessionCost {
	t.Helper()
	out := map[string]SessionCost{}
	for _, r := range SessionCosts(cfg) {
		key := r.System
		if strings.HasPrefix(key, "VMs") {
			key = "VMs"
		}
		out[key] = r
	}
	return out
}

func TestSessionLoneWolfEconomics(t *testing.T) {
	// The paper's stellar use case: "the lone-wolf data scientist, who runs
	// a small number of interactive queries". For such a session, Lambada
	// must beat both QaaS systems on cost, and the VM cluster too (think
	// time is billed on VMs, not on serverless).
	by := sessionBySystem(t, DefaultSession())
	lam := by["Lambada"]
	if lam.Cost >= by["Athena"].Cost {
		t.Errorf("Lambada session (%v) not cheaper than Athena (%v)", lam.Cost, by["Athena"].Cost)
	}
	if lam.Cost >= by["BigQuery"].Cost {
		t.Errorf("Lambada session (%v) not cheaper than BigQuery (%v)", lam.Cost, by["BigQuery"].Cost)
	}
	if lam.Cost >= by["VMs"].Cost {
		t.Errorf("Lambada session (%v) not cheaper than always-on VMs (%v)", lam.Cost, by["VMs"].Cost)
	}
	// Orders of magnitude, as in §5.4.3.
	if ratio := float64(by["Athena"].Cost) / float64(lam.Cost); ratio < 10 {
		t.Errorf("Athena/Lambada session cost ratio = %.1f, want >= 10", ratio)
	}
	// BigQuery's load step dominates its session length.
	if by["BigQuery"].Duration < 40*time.Minute {
		t.Errorf("BigQuery session = %v, should include the ~40 min load", by["BigQuery"].Duration)
	}
	// Lambada's session is interactive end to end.
	want := time.Duration(DefaultSession().Queries-1) * DefaultSession().ThinkTime
	if lam.Duration > want+3*time.Minute {
		t.Errorf("Lambada session %v adds too much beyond think time %v", lam.Duration, want)
	}
}

func TestSessionHeavyUseFavorsVMs(t *testing.T) {
	// The flip side of Figure 1b: hammering the system continuously makes
	// the always-on cluster competitive — serverless is for sporadic use.
	cfg := DefaultSession()
	cfg.Queries = 2000
	cfg.ThinkTime = 0
	by := sessionBySystem(t, cfg)
	if by["VMs"].Cost >= by["Athena"].Cost {
		t.Errorf("at heavy use, VMs (%v) should beat Athena (%v)", by["VMs"].Cost, by["Athena"].Cost)
	}
	// Per-query VM cost approaches the flat rate; QaaS stays linear.
	athenaPer := float64(by["Athena"].Cost) / float64(cfg.Queries)
	vmPer := float64(by["VMs"].Cost) / float64(cfg.Queries)
	if vmPer >= athenaPer {
		t.Errorf("per-query: VMs %.4f vs Athena %.4f", vmPer, athenaPer)
	}
}

func TestSessionTableRenders(t *testing.T) {
	s := SessionTable(DefaultSession()).Render()
	for _, want := range []string{"Lambada", "Athena", "BigQuery", "VMs"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
