package experiments

import (
	"testing"
	"time"

	"lambada/internal/exchange"
	"lambada/internal/netmodel"
)

func TestQueryModelQ1Anchors(t *testing.T) {
	m := DefaultLambadaModel()
	hot := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 1, Seed: 1})
	if hot.Workers != 320 {
		t.Fatalf("workers = %d, want 320", hot.Workers)
	}
	// "Both hot and cold execution return in less than 10 s."
	if hot.Total > 10*time.Second {
		t.Errorf("Q1 hot total = %v, want < 10 s", hot.Total)
	}
	cold := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 1, Cold: true, Seed: 1})
	if cold.Total > 12*time.Second {
		t.Errorf("Q1 cold total = %v, want < ~12 s", cold.Total)
	}
	// ~20% cold penalty.
	penalty := cold.Total.Seconds() / hot.Total.Seconds()
	if penalty < 1.02 || penalty > 1.5 {
		t.Errorf("cold penalty = %.2fx, want ~1.2x", penalty)
	}
	// Cost in the single-digit-cent range (Figure 10's axis is 0-5¢).
	if hot.Cost < 0.005 || hot.Cost > 0.06 {
		t.Errorf("Q1 cost = %v, want a few cents", hot.Cost)
	}
	// Processing band: full workers take ~2-3 s (Figure 11).
	med := hot.WorkerTimes[len(hot.WorkerTimes)/2]
	if med < 1500*time.Millisecond || med > 3500*time.Millisecond {
		t.Errorf("median worker processing = %v, want 2-3 s", med)
	}
}

func TestQueryModelMemorySweep(t *testing.T) {
	m := DefaultLambadaModel()
	t512 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 512, F: 1, Seed: 1})
	t1792 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 1, Seed: 1})
	t3008 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 3008, F: 1, Seed: 1})
	// 512 → 1792 MiB: significantly faster (CPU-bound GZIP scan).
	if t512.Total.Seconds() < 2*t1792.Total.Seconds() {
		t.Errorf("512 MiB (%v) should be much slower than 1792 (%v)", t512.Total, t1792.Total)
	}
	// Beyond 1792: no speedup, higher price.
	if t3008.Total < t1792.Total/2 {
		t.Errorf("3008 MiB (%v) should not be much faster than 1792 (%v)", t3008.Total, t1792.Total)
	}
	if t3008.Cost <= t1792.Cost {
		t.Errorf("3008 MiB cost (%v) should exceed 1792 (%v)", t3008.Cost, t1792.Cost)
	}
}

func TestQueryModelFileSweep(t *testing.T) {
	m := DefaultLambadaModel()
	// Fewer workers (higher F): slower but cheaper-ish — Figure 10b.
	f1 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 1, Seed: 1})
	f4 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 4, Seed: 1})
	if f4.Workers != 80 || f1.Workers != 320 {
		t.Fatalf("workers = %d/%d", f4.Workers, f1.Workers)
	}
	if f4.Total <= f1.Total {
		t.Errorf("F=4 (%v) should be slower than F=1 (%v)", f4.Total, f1.Total)
	}
	if f4.CostLambda >= f1.CostLambda*12/10 {
		t.Errorf("F=4 lambda cost (%v) should not exceed F=1 (%v) by much", f4.CostLambda, f1.CostLambda)
	}
}

func TestFigure11Bands(t *testing.T) {
	m := DefaultLambadaModel()
	q1 := m.Run(RunConfig{Query: SpecQ1, SF: 1000, M: 1792, F: 1, Seed: 1})
	q6 := m.Run(RunConfig{Query: SpecQ6, SF: 1000, M: 1792, F: 1, Seed: 1})
	countFast := func(ts []time.Duration) int {
		n := 0
		for _, t := range ts {
			if t < 400*time.Millisecond {
				n++
			}
		}
		return n
	}
	// ~2% of Q1 workers prune everything; ~80% of Q6 workers do.
	fq1 := float64(countFast(q1.WorkerTimes)) / float64(len(q1.WorkerTimes))
	fq6 := float64(countFast(q6.WorkerTimes)) / float64(len(q6.WorkerTimes))
	if fq1 > 0.1 {
		t.Errorf("Q1 fast band = %.2f, want ~0.02", fq1)
	}
	if fq6 < 0.6 || fq6 > 0.95 {
		t.Errorf("Q6 fast band = %.2f, want ~0.8", fq6)
	}
	fig := Figure11(DefaultLambadaModel(), 1)
	if len(fig.Series) != 2 {
		t.Error("figure 11 missing series")
	}
}

func TestFigure12PaperRatios(t *testing.T) {
	rows := Figure12(DefaultLambadaModel(), 1)
	get := func(system, query string, sf float64, run string) Figure12Row {
		for _, r := range rows {
			if r.System == system && r.Query == query && r.SF == sf && r.Run == run {
				return r
			}
		}
		t.Fatalf("row %s/%s/%v/%s missing", system, query, sf, run)
		return Figure12Row{}
	}
	lamQ1a := get("Lambada(M=1792)", "Q1", 1000, "hot")
	athQ1a := get("Athena", "Q1", 1000, "")
	// "The faster configurations of Lambada are about 4× faster for Q1 at SF 1k."
	if r := athQ1a.Latency.Seconds() / lamQ1a.Latency.Seconds(); r < 2.5 || r > 7 {
		t.Errorf("Athena/Lambada Q1 SF1k latency ratio = %.1f, want ~4", r)
	}
	// "At SF 10k, Lambada is about 26× faster" (Q1).
	lamQ1b := get("Lambada(M=1792)", "Q1", 10000, "hot")
	athQ1b := get("Athena", "Q1", 10000, "")
	if r := athQ1b.Latency.Seconds() / lamQ1b.Latency.Seconds(); r < 15 || r > 40 {
		t.Errorf("Athena/Lambada Q1 SF10k ratio = %.1f, want ~26", r)
	}
	// BigQuery hot is faster at SF 1k, ~2.3× slower at SF 10k (Q1).
	bqQ1a := get("BigQuery", "Q1", 1000, "hot")
	if bqQ1a.Latency >= lamQ1a.Latency {
		t.Errorf("BigQuery Q1 SF1k (%v) should beat Lambada (%v)", bqQ1a.Latency, lamQ1a.Latency)
	}
	bqQ1b := get("BigQuery", "Q1", 10000, "hot")
	if r := bqQ1b.Latency.Seconds() / lamQ1b.Latency.Seconds(); r < 1.3 || r > 4 {
		t.Errorf("BigQuery/Lambada Q1 SF10k ratio = %.1f, want ~2.3", r)
	}
	// Cost: one to two orders of magnitude cheaper than QaaS for Q1.
	if r := float64(athQ1a.Cost) / float64(lamQ1a.Cost); r < 10 || r > 500 {
		t.Errorf("Athena/Lambada Q1 cost ratio = %.0f, want 1-2 orders of magnitude", r)
	}
	bqCost := get("BigQuery", "Q1", 1000, "hot")
	if r := float64(bqCost.Cost) / float64(lamQ1a.Cost); r < 30 {
		t.Errorf("BigQuery/Lambada Q1 cost ratio = %.0f, want ~2 orders", r)
	}
	// Q6: Athena's row-selective billing makes it only slightly more
	// expensive than Lambada.
	lamQ6 := get("Lambada(M=1792)", "Q6", 1000, "hot")
	athQ6 := get("Athena", "Q6", 1000, "")
	if r := float64(athQ6.Cost) / float64(lamQ6.Cost); r < 0.5 || r > 20 {
		t.Errorf("Athena/Lambada Q6 cost ratio = %.1f, want small", r)
	}
	// BigQuery load step dominates cold latency (~40 min at SF 1k).
	bqCold := get("BigQuery", "Q1", 1000, "cold")
	if bqCold.Latency < 35*time.Minute || bqCold.Latency > 50*time.Minute {
		t.Errorf("BigQuery cold Q1 SF1k = %v, want ~40 min", bqCold.Latency)
	}
}

func TestFigure9AndTable2Render(t *testing.T) {
	f9 := Figure9()
	if len(f9.Rows) != 5*6 {
		t.Errorf("figure 9 rows = %d", len(f9.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) != 6 {
		t.Errorf("table 2 rows = %d", len(t2.Rows))
	}
	if t2.Rows[0][1] != "1048576" { // 1l reads at P=1024: P²
		t.Errorf("1l reads cell = %q", t2.Rows[0][1])
	}
}

func TestTable3ExchangeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("DES exchange sweep in -short mode")
	}
	res250, err := RunExchangeDES(ExchangeRunConfig{
		Workers: 250, TotalBytes: 100 * netmodel.GB,
		Variant: exchange.Variant{Levels: 2, WriteCombining: true},
		Buckets: 32, MemoryMiB: 2048, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res1000, err := RunExchangeDES(ExchangeRunConfig{
		Workers: 1000, TotalBytes: 100 * netmodel.GB,
		Variant: exchange.Variant{Levels: 2, WriteCombining: true},
		Buckets: 32, MemoryMiB: 2048, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 22 s at 250 workers, 13 s at 1000 — same ballpark and
	// monotone scaling; and 5× faster than the 98 s S3 baseline of Pocket.
	if res250.Duration < 10*time.Second || res250.Duration > 45*time.Second {
		t.Errorf("250 workers: %v, want ~22 s ballpark", res250.Duration)
	}
	if res1000.Duration >= res250.Duration {
		t.Errorf("1000 workers (%v) not faster than 250 (%v)", res1000.Duration, res250.Duration)
	}
	if res250.Duration > 98*time.Second/2 {
		t.Errorf("250 workers (%v) should clearly beat the 98 s baseline", res250.Duration)
	}
}

func TestFigure13Stragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("TB-scale DES in -short mode")
	}
	small, err := Figure13(1*netmodel.TB, 1250, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Figure13(3*netmodel.TB, 2500, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 56 s for 1 TB / 1250 workers; 159 s for 3 TB / 2500.
	if small.Run.Duration < 30*time.Second || small.Run.Duration > 120*time.Second {
		t.Errorf("1 TB duration = %v, want ~56 s ballpark", small.Run.Duration)
	}
	if big.Run.Duration < 100*time.Second || big.Run.Duration > 400*time.Second {
		t.Errorf("3 TB duration = %v, want ~159 s ballpark", big.Run.Duration)
	}
	// Straggler shape: slowest write ~30 % above median at 1 TB; much
	// worse (multiples) at 3 TB.
	smallRatio := small.SlowestWrite.Seconds() / small.MedianWrite.Seconds()
	bigRatio := big.SlowestWrite.Seconds() / big.MedianWrite.Seconds()
	if smallRatio < 1.05 || smallRatio > 2.2 {
		t.Errorf("1 TB slow/median write = %.2f, want ~1.3", smallRatio)
	}
	if bigRatio < 2 || bigRatio > 8 {
		t.Errorf("3 TB slow/median write = %.2f, want ~4", bigRatio)
	}
	if bigRatio <= smallRatio {
		t.Error("straggler effect should grow with scale")
	}
	// The fastest worker is well below the end-to-end time on the big
	// dataset ("more than half of the total execution time is due to
	// stragglers and waiting").
	if big.Run.Fastest.Seconds() > 0.7*big.Run.Duration.Seconds() {
		t.Errorf("3 TB fastest worker %v vs end-to-end %v: stragglers missing", big.Run.Fastest, big.Run.Duration)
	}
}
