package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/invoke"
	"lambada/internal/netmodel"
	"lambada/internal/qaas"
)

// QuerySpec extends the QaaS billing spec with the scan-side properties the
// Lambada worker model needs.
type QuerySpec struct {
	qaas.QuerySpec
	// PruneFraction is the fraction of workers whose files are entirely
	// pruned by the shipdate min/max statistics (§5.3: ~2 % for Q1, ~80 %
	// for Q6 on the shipdate-sorted relation).
	PruneFraction float64
}

// The paper's two benchmark queries with their pruning behaviour.
var (
	SpecQ1 = QuerySpec{QuerySpec: qaas.Q1, PruneFraction: 0.02}
	SpecQ6 = QuerySpec{QuerySpec: qaas.Q6, PruneFraction: 0.80}
)

// LambadaModel estimates a scan-aggregate query on the serverless fleet at
// paper scale, using the calibrated network, CPU, and pricing models. The
// relation is stored as 320 Parquet files per SF 1000 (§5.1).
type LambadaModel struct {
	// FilesPerSF1000 is the file count at SF 1000.
	FilesPerSF1000 int
	// ParquetBytesSF1k is the table size at SF 1000.
	ParquetBytesSF1k int64
	// CPUBytesPerVCPUSecond is the GZIP-decompress+scan throughput of one
	// vCPU. Calibrated so that at M = 1792 MiB compute and network are
	// balanced (§5.2: more memory beyond 1792 yields no speedup, below it
	// the scan is CPU-bound).
	CPUBytesPerVCPUSecond float64
	// Conns is the scan operator's connection count.
	Conns int
	// ColdStart and HandlerOverhead model per-worker fixed costs.
	ColdStart       time.Duration
	HandlerOverhead time.Duration
	// MetaLatency is the footer round trip.
	MetaLatency time.Duration
	// ColdSlowdown is the execution penalty of cold runs ("not only due to
	// a slower invocation time, but also somewhat slower execution").
	ColdSlowdown float64
	// Region selects invocation pacing.
	Region netmodel.Region
	// ChunkBytes is the scan request size (for request pricing).
	ChunkBytes int64
	// CollectBase and CollectPerMsg model fetching results from the SQS
	// queue (batches of ≤10 messages per receive).
	CollectBase   time.Duration
	CollectPerMsg time.Duration
	// StragglerSigma is the lognormal spread of per-worker execution, and
	// TailProb/TailMax inject the occasional S3 slow request that a worker
	// eats despite retries.
	StragglerSigma float64
	TailProb       float64
	TailMax        time.Duration
}

// DefaultLambadaModel returns the calibration used for Figures 10-12.
func DefaultLambadaModel() LambadaModel {
	return LambadaModel{
		FilesPerSF1000:        320,
		ParquetBytesSF1k:      qaas.ParquetBytesSF1k,
		CPUBytesPerVCPUSecond: 95e6,
		Conns:                 4,
		ColdStart:             250 * time.Millisecond,
		HandlerOverhead:       60 * time.Millisecond,
		MetaLatency:           35 * time.Millisecond,
		ColdSlowdown:          1.12,
		Region:                netmodel.RegionEU,
		ChunkBytes:            16 << 20,
		CollectBase:           1000 * time.Millisecond,
		CollectPerMsg:         700 * time.Microsecond,
		StragglerSigma:        0.10,
		TailProb:              0.008,
		TailMax:               2500 * time.Millisecond,
	}
}

// RunConfig is one Figure 10 configuration.
type RunConfig struct {
	Query QuerySpec
	SF    float64
	M     int // worker memory MiB
	F     int // files per worker
	Cold  bool
	Seed  int64
}

// RunEstimate is the modeled outcome of one query execution.
type RunEstimate struct {
	Workers    int
	Invocation time.Duration
	// WorkerTimes are per-worker processing times (sorted ascending) —
	// Figure 11's distribution.
	WorkerTimes []time.Duration
	Total       time.Duration
	Cost        pricing.USD
	CostLambda  pricing.USD
	CostS3      pricing.USD
}

// Run estimates one configuration.
func (m LambadaModel) Run(cfg RunConfig) *RunEstimate {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(cfg.M)*7919 + int64(cfg.F)*104729))
	files := int(float64(m.FilesPerSF1000) * cfg.SF / 1000)
	if files < 1 {
		files = 1
	}
	fileBytes := m.ParquetBytesSF1k / int64(m.FilesPerSF1000)
	workers := (files + cfg.F - 1) / cfg.F
	ln := netmodel.DefaultLambdaNet()

	colBytes := int64(float64(fileBytes) * cfg.Query.UsedColumnFraction)
	share := netmodel.CPUShare(cfg.M)
	threads := 1
	if share > 1 {
		threads = 2
	}
	cpuShare := share
	if cpuShare > float64(threads) {
		cpuShare = float64(threads)
	}

	times := make([]time.Duration, workers)
	var s3Requests int64
	var lambdaSeconds float64
	straggler := netmodel.Lognormal{Mu: -m.StragglerSigma * m.StragglerSigma / 2, Sigma: m.StragglerSigma, Scale: time.Second}
	for w := 0; w < workers; w++ {
		var t time.Duration
		pruned := rng.Float64() < cfg.Query.PruneFraction
		if pruned {
			// Footer only: prune all row groups, return empty (Fig. 11's
			// 100-200 ms band).
			t = m.HandlerOverhead + time.Duration(float64(cfg.F)*float64(m.MetaLatency)) +
				time.Duration(rng.Int63n(int64(50*time.Millisecond)))
			s3Requests += int64(cfg.F)
		} else {
			bucket := ln.NewBucket(cfg.M)
			download := bucket.Transfer(0, colBytes*int64(cfg.F), ln.RequestRate(m.Conns, cfg.M))
			cpu := time.Duration(float64(colBytes*int64(cfg.F)) / (m.CPUBytesPerVCPUSecond * cpuShare) * float64(time.Second))
			work := download
			if cpu > work {
				work = cpu
			}
			// Straggler noise around the deterministic work estimate, plus
			// the occasional slow S3 request a worker eats despite retries.
			factor := straggler.Sample(rng).Seconds()
			t = m.HandlerOverhead + time.Duration(float64(cfg.F)*float64(m.MetaLatency)) +
				time.Duration(float64(work)*factor)
			if rng.Float64() < m.TailProb {
				t += time.Duration(rng.Int63n(int64(m.TailMax)))
			}
			s3Requests += int64(cfg.F) * (1 + (colBytes+m.ChunkBytes-1)/m.ChunkBytes)
		}
		if cfg.Cold {
			t = time.Duration(float64(t) * m.ColdSlowdown)
		}
		times[w] = t
		billed := t
		if cfg.Cold {
			billed += m.ColdStart
		}
		lambdaSeconds += billed.Seconds()
	}
	sortDurations(times)

	start := m.ColdStart
	if !cfg.Cold {
		start = 15 * time.Millisecond
	}
	inv := invoke.TreeDuration(invoke.DriverPacing(m.Region, 1), invoke.WorkerPacing(m.Region), start, workers)
	collect := m.CollectBase + time.Duration(workers)*m.CollectPerMsg

	est := &RunEstimate{
		Workers:     workers,
		Invocation:  inv,
		WorkerTimes: times,
		Total:       inv + times[len(times)-1] + collect,
	}
	est.CostLambda = pricing.USD(lambdaSeconds*float64(cfg.M)/1024)*pricing.LambdaGBSecond +
		pricing.USD(workers)*pricing.LambdaPerRequest
	est.CostS3 = pricing.USD(s3Requests) * pricing.S3Read
	sqsCost := pricing.USD(2*workers) * pricing.SQSPerRequest
	est.Cost = est.CostLambda + est.CostS3 + sqsCost
	return est
}

// Figure10 sweeps worker memory (M) and files-per-worker (F) for Q1 at
// SF 1000, cold and hot — the three panels of Figure 10.
func Figure10(model LambadaModel, seed int64) *Table {
	t := &Table{ID: "Figure 10", Title: "TPC-H Q1 (SF 1000) with varying memory (M) and files per worker (F)",
		Headers: []string{"M [MiB]", "F", "workers", "run", "time", "cost"}}
	for _, mRow := range []int{512, 1024, 1792, 2048, 3008} {
		for _, f := range []int{1, 2, 4} {
			for _, cold := range []bool{true, false} {
				est := model.Run(RunConfig{Query: SpecQ1, SF: 1000, M: mRow, F: f, Cold: cold, Seed: seed})
				run := "hot"
				if cold {
					run = "cold"
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", mRow),
					fmt.Sprintf("%d", f),
					fmt.Sprintf("%d", est.Workers),
					run,
					secs(est.Total),
					est.Cost.String(),
				})
			}
		}
	}
	return t
}

// Figure11 computes the per-worker processing-time distributions of Q1 and
// Q6 (F = 1, M = 1792).
func Figure11(model LambadaModel, seed int64) *Figure {
	f := &Figure{ID: "Figure 11", Title: "Distribution of processing time (SF 1000, F=1, M=1792)",
		XLabel: "worker rank", YLabel: "processing time [s]"}
	for _, q := range []QuerySpec{SpecQ1, SpecQ6} {
		est := model.Run(RunConfig{Query: q, SF: 1000, M: 1792, F: 1, Seed: seed})
		var s Series
		s.Label = q.Name
		for i, t := range est.WorkerTimes {
			s.Points = append(s.Points, Point{X: float64(i), Y: t.Seconds()})
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Figure12Row is one system × query × scale sample of Figure 12.
type Figure12Row struct {
	System  string
	Query   string
	SF      float64
	Run     string // cold / hot / ""
	Latency time.Duration
	Cost    pricing.USD
}

// Figure12 compares Lambada (F=1, M=1792 and M=2048) with the QaaS models
// on Q1 and Q6 at SF 1k and 10k.
func Figure12(model LambadaModel, seed int64) []Figure12Row {
	athena := qaas.DefaultAthena()
	bq := qaas.DefaultBigQuery()
	var rows []Figure12Row
	for _, q := range []QuerySpec{SpecQ1, SpecQ6} {
		for _, sf := range []float64{1000, 10000} {
			for _, m := range []int{1792, 2048} {
				for _, cold := range []bool{true, false} {
					est := model.Run(RunConfig{Query: q, SF: sf, M: m, F: 1, Cold: cold, Seed: seed})
					run := "hot"
					if cold {
						run = "cold"
					}
					rows = append(rows, Figure12Row{
						System: fmt.Sprintf("Lambada(M=%d)", m), Query: q.Name, SF: sf,
						Run: run, Latency: est.Total, Cost: est.Cost,
					})
				}
			}
			a := athena.Run(q.QuerySpec, sf)
			rows = append(rows, Figure12Row{System: "Athena", Query: q.Name, SF: sf, Latency: a.Latency, Cost: a.Cost})
			b := bq.Run(q.QuerySpec, sf)
			rows = append(rows, Figure12Row{System: "BigQuery", Query: q.Name, SF: sf, Run: "hot", Latency: b.Latency, Cost: b.Cost})
			rows = append(rows, Figure12Row{System: "BigQuery", Query: q.Name, SF: sf, Run: "cold", Latency: b.ColdLatency(), Cost: b.Cost})
		}
	}
	return rows
}

// Figure12Table renders the comparison.
func Figure12Table(model LambadaModel, seed int64) *Table {
	t := &Table{ID: "Figure 12", Title: "Lambada vs commercial QaaS systems",
		Headers: []string{"system", "query", "SF", "run", "latency", "cost"}}
	for _, r := range Figure12(model, seed) {
		t.Rows = append(t.Rows, []string{
			r.System, r.Query, fmt.Sprintf("%.0f", r.SF), r.Run, secs(r.Latency), r.Cost.String(),
		})
	}
	return t
}
