package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFigure1aShape(t *testing.T) {
	iaas, faas := Figure1a(DefaultFigure1a())
	// Adding resources monotonically reduces running time in both models.
	for i := 1; i < len(iaas); i++ {
		if iaas[i].Time >= iaas[i-1].Time {
			t.Errorf("IaaS time not decreasing at %d VMs", iaas[i].Resources)
		}
	}
	for i := 1; i < len(faas); i++ {
		if faas[i].Time >= faas[i-1].Time {
			t.Errorf("FaaS time not decreasing at %d workers", faas[i].Resources)
		}
	}
	// IaaS times asymptote at the 2 min startup; FaaS at 4 s.
	if last := iaas[len(iaas)-1].Time; last < 2*time.Minute {
		t.Errorf("IaaS floor %v below startup", last)
	}
	if last := faas[len(faas)-1].Time; last < 4*time.Second || last > 10*time.Second {
		t.Errorf("FaaS floor %v, want a few seconds", last)
	}
	// The cheapest IaaS config is up to an order of magnitude cheaper than
	// the cheapest FaaS config ("IaaS is thus more attractive, being up to
	// an order of magnitude cheaper").
	minI, minF := iaas[0].Cost, faas[0].Cost
	for _, p := range iaas {
		if p.Cost < minI {
			minI = p.Cost
		}
	}
	for _, p := range faas {
		if p.Cost < minF {
			minF = p.Cost
		}
	}
	if ratio := float64(minF) / float64(minI); ratio < 2 || ratio > 20 {
		t.Errorf("FaaS/IaaS min-cost ratio = %.1f, want roughly an order of magnitude", ratio)
	}
	// FaaS reaches interactive latencies IaaS cannot (any FaaS config beats
	// the IaaS startup floor).
	if faas[len(faas)-1].Time >= 2*time.Minute {
		t.Error("FaaS cannot beat the VM startup floor")
	}
}

func TestFigure1bShape(t *testing.T) {
	f := Figure1b(DefaultFigure1b())
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	bySeries := map[string]Series{}
	for _, s := range f.Series {
		bySeries[strings.SplitN(s.Label, " x", 2)[0]] = s
	}
	// VM lines are flat; FaaS/QaaS grow linearly.
	vm := bySeries["VMs (S3)"]
	if vm.Points[0].Y != vm.Points[len(vm.Points)-1].Y {
		t.Error("VM hourly cost not flat")
	}
	faas := bySeries["FaaS (S3)"]
	if faas.Points[0].Y >= faas.Points[len(faas.Points)-1].Y {
		t.Error("FaaS cost not growing with query rate")
	}
	qaas := bySeries["QaaS (S3)"]
	// QaaS is the most expensive usage-priced option at every rate.
	for i := range qaas.Points {
		if qaas.Points[i].Y <= faas.Points[i].Y {
			t.Errorf("QaaS (%v) not above FaaS (%v) at rate %v", qaas.Points[i].Y, faas.Points[i].Y, qaas.Points[i].X)
		}
	}
	// At one query/hour FaaS is far below always-on VMs; at high rates the
	// VM line wins — the crossover that defines the sporadic-use sweet spot.
	if faas.Points[0].Y >= vm.Points[0].Y {
		t.Error("FaaS at 1 query/h should cost less than 13 always-on VMs")
	}
	last := len(faas.Points) - 1
	if dram := bySeries["VMs (DRAM)"]; faas.Points[last].Y <= dram.Points[last].Y {
		t.Error("at 64 queries/h, always-on DRAM VMs should beat FaaS")
	}
}

func TestTable1MatchesProfiles(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 3 || len(tb.Headers) != 5 {
		t.Fatalf("table shape %dx%d", len(tb.Rows), len(tb.Headers))
	}
	if tb.Rows[0][1] != "36" {
		t.Errorf("eu single latency cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[1][1] != "294" || tb.Rows[2][4] != "81" {
		t.Errorf("rate cells wrong: %v", tb.Rows)
	}
	if !strings.Contains(tb.Render(), "eu") {
		t.Error("render missing region")
	}
}

func TestFigure4Shape(t *testing.T) {
	f := Figure4()
	one, two := f.Series[0], f.Series[1]
	// At 1792 MiB both are ~100 %.
	for _, s := range []Series{one, two} {
		for _, p := range s.Points {
			if p.X == 1792 && (p.Y < 90 || p.Y > 105) {
				t.Errorf("%s at 1792 = %.1f%%", s.Label, p.Y)
			}
		}
	}
	// Single thread plateaus at 100 %; two threads reach ~167 % at 3008.
	last1 := one.Points[len(one.Points)-1]
	if last1.Y > 102 {
		t.Errorf("1 thread at 3008 = %.1f%%, should not exceed one vCPU", last1.Y)
	}
	last2 := two.Points[len(two.Points)-1]
	if last2.Y < 160 || last2.Y > 175 {
		t.Errorf("2 threads at 3008 = %.1f%%, want ~167%%", last2.Y)
	}
	// Below 1792 performance is proportional to memory.
	for _, p := range one.Points {
		if p.X <= 1792 {
			want := 100 * p.X / 1792
			if p.Y > want*1.05 || p.Y < want*0.7 {
				t.Errorf("1 thread at %v = %.1f%%, want ≈ %.1f%%", p.X, p.Y, want)
			}
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	large, small := Figure6()
	// Large files: stable ~90 MiB/s for all connection counts.
	for _, s := range large.Series {
		for _, p := range s.Points {
			if p.Y < 70 || p.Y > 110 {
				t.Errorf("large files %s at %v MiB: %.0f MiB/s, want ~90", s.Label, p.X, p.Y)
			}
		}
	}
	// Small files: 4 connections on big workers approach 300 MiB/s; one
	// connection stays near 95.
	find := func(f *Figure, label string, x float64) float64 {
		for _, s := range f.Series {
			if s.Label != label {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					return p.Y
				}
			}
		}
		return -1
	}
	if bw := find(small, "4 connections", 3008); bw < 250 {
		t.Errorf("small files, 4 conns, 3008 MiB: %.0f MiB/s, want ~300", bw)
	}
	if bw := find(small, "1 connections", 3008); bw > 110 {
		t.Errorf("small files, 1 conn: %.0f MiB/s, want ~95", bw)
	}
	if lo, hi := find(small, "4 connections", 512), find(small, "4 connections", 3008); lo >= hi {
		t.Error("small-memory workers should see lower burst bandwidth")
	}
}

func TestFigure7Shape(t *testing.T) {
	rows := Figure7(DefaultFigure7())
	byKey := map[[2]int]Figure7Row{}
	for _, r := range rows {
		byKey[[2]int{int(r.ChunkMiB * 2), r.Conns}] = r // 0.5→1, 1→2, ...
	}
	// One connection needs 16 MiB chunks to approach peak; 4 connections
	// reach it at 1 MiB.
	one16 := byKey[[2]int{32, 1}]
	one1 := byKey[[2]int{2, 1}]
	four1 := byKey[[2]int{2, 4}]
	if one16.BandwidthMB < 80 {
		t.Errorf("1 conn @ 16 MiB: %.0f MB/s, want near max", one16.BandwidthMB)
	}
	if one1.BandwidthMB > 0.8*one16.BandwidthMB {
		t.Errorf("1 conn @ 1 MiB (%.0f) should be well below 16 MiB (%.0f)", one1.BandwidthMB, one16.BandwidthMB)
	}
	if four1.BandwidthMB < 0.9*one16.BandwidthMB {
		t.Errorf("4 conns @ 1 MiB (%.0f) should reach peak (%.0f)", four1.BandwidthMB, one16.BandwidthMB)
	}
	// Request cost inversely proportional to chunk size; the paper's 1 MiB
	// annotation: requests ≈ 1.7× worker cost.
	half := byKey[[2]int{1, 4}]
	if half.Requests != 2000-0 && half.Requests != 1908 { // 1 GB / 0.5 MiB
		// 1e9 / (0.5*2^20) = 1907.3 → 1908 requests
		t.Errorf("0.5 MiB chunk requests = %d", half.Requests)
	}
	r1 := byKey[[2]int{2, 4}]
	if r1.WorkerCostRatio < 0.8 || r1.WorkerCostRatio > 3.5 {
		t.Errorf("1 MiB request/worker cost ratio = %.2f, want ~1.7", r1.WorkerCostRatio)
	}
	r16 := byKey[[2]int{32, 4}]
	if r16.WorkerCostRatio > 0.3 {
		t.Errorf("16 MiB ratio = %.2f, want ~0.11", r16.WorkerCostRatio)
	}
}

func TestFigure5TreeInvocation(t *testing.T) {
	res := Figure5(Figure5Config{Workers: 4096, Region: "eu", Seed: 1})
	if len(res.FirstGen) != 64 {
		t.Fatalf("first generation = %d", len(res.FirstGen))
	}
	// "The invocation of the last worker was initiated after about 2.5 s."
	if res.LastInitiated < 1500*time.Millisecond || res.LastInitiated > 4*time.Second {
		t.Errorf("last initiated at %v, want ~2.5-3.5 s", res.LastInitiated)
	}
	// "Lambada managing to start several thousand workers in under 4 s."
	if res.AllRunning > 5*time.Second {
		t.Errorf("all running at %v, want < ~4-5 s", res.AllRunning)
	}
	// Tremendously faster than the 13-18 s the driver alone would need.
	if res.DirectEstimate < 13*time.Second || res.DirectEstimate > 18*time.Second {
		t.Errorf("direct estimate = %v, want 13-18 s", res.DirectEstimate)
	}
	// The driver ramp is visible: the last first-gen worker waits ~2.3 s.
	ramp := res.FirstGen[len(res.FirstGen)-1].BeforeOwnInvocation
	if ramp < 1500*time.Millisecond || ramp > 3500*time.Millisecond {
		t.Errorf("driver ramp = %v, want ~2.3 s", ramp)
	}
	fig := Figure5Figure(res)
	if len(fig.Series) != 3 {
		t.Error("figure missing phases")
	}
}

func TestFigure5Deterministic(t *testing.T) {
	a := Figure5(Figure5Config{Workers: 1024, Region: "eu", Seed: 7})
	b := Figure5(Figure5Config{Workers: 1024, Region: "eu", Seed: 7})
	if a.AllRunning != b.AllRunning || a.LastInitiated != b.LastInitiated {
		t.Error("Figure 5 not deterministic")
	}
}
