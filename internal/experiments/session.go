package experiments

import (
	"fmt"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/qaas"
)

// SessionConfig describes one work session of the usage model (Figure 2):
// a user runs Queries queries with ThinkTime between them, on a dataset of
// the given scale factor. Serverless systems bill only the queries; an
// always-on cluster bills wall-clock time including think time.
type SessionConfig struct {
	Queries   int
	ThinkTime time.Duration
	SF        float64
	Query     QuerySpec
	Seed      int64
}

// DefaultSession is a plausible exploratory session: a dozen queries with
// two minutes of think time on SF 1000.
func DefaultSession() SessionConfig {
	return SessionConfig{Queries: 12, ThinkTime: 2 * time.Minute, SF: 1000, Query: SpecQ1, Seed: 1}
}

// SessionCost is the outcome for one architecture.
type SessionCost struct {
	System   string
	Duration time.Duration // wall-clock session length
	Cost     pricing.USD
}

// SessionCosts compares Lambada, Athena, BigQuery and an always-on VM
// cluster (sized to the interactive latency target) for one session. It is
// the usage-model-level synthesis of Figure 1b: serverless architectures
// pay per query, the cluster pays for think time too.
func SessionCosts(cfg SessionConfig) []SessionCost {
	model := DefaultLambadaModel()
	var out []SessionCost

	// Lambada: first query cold, the rest hot.
	var lamCost pricing.USD
	var lamQuery time.Duration
	for q := 0; q < cfg.Queries; q++ {
		est := model.Run(RunConfig{Query: cfg.Query, SF: cfg.SF, M: 1792, F: 1, Cold: q == 0, Seed: cfg.Seed + int64(q)})
		lamCost += est.Cost
		lamQuery += est.Total
	}
	out = append(out, SessionCost{
		System:   "Lambada",
		Duration: lamQuery + time.Duration(cfg.Queries-1)*cfg.ThinkTime,
		Cost:     lamCost,
	})

	// Athena: per-query billing, no load step.
	athena := qaas.DefaultAthena()
	var athCost pricing.USD
	var athQuery time.Duration
	for q := 0; q < cfg.Queries; q++ {
		r := athena.Run(cfg.Query.QuerySpec, cfg.SF)
		athCost += r.Cost
		athQuery += r.Latency
	}
	out = append(out, SessionCost{
		System:   "Athena",
		Duration: athQuery + time.Duration(cfg.Queries-1)*cfg.ThinkTime,
		Cost:     athCost,
	})

	// BigQuery: load once, then fast queries.
	bq := qaas.DefaultBigQuery()
	var bqCost pricing.USD
	var bqQuery time.Duration
	var load time.Duration
	for q := 0; q < cfg.Queries; q++ {
		r := bq.Run(cfg.Query.QuerySpec, cfg.SF)
		bqCost += r.Cost
		bqQuery += r.Latency
		load = r.LoadTime
	}
	out = append(out, SessionCost{
		System:   "BigQuery",
		Duration: load + bqQuery + time.Duration(cfg.Queries-1)*cfg.ThinkTime,
		Cost:     bqCost,
	})

	// Always-on VM cluster sized for a 10 s scan of the Parquet bytes from
	// S3 (13 c5n.18xlarge as in Figure 1b), billed for the whole session
	// including think time.
	vm := pricing.C5N18XLarge
	dataBytes := float64(qaas.ParquetBytesSF1k) * cfg.SF / 1000
	n := int(dataBytes/(vm.ScanBps*10) + 0.999)
	if n < 1 {
		n = 1
	}
	perQuery := time.Duration(dataBytes / (float64(n) * vm.ScanBps) * float64(time.Second))
	dur := time.Duration(cfg.Queries)*perQuery + time.Duration(cfg.Queries-1)*cfg.ThinkTime
	out = append(out, SessionCost{
		System:   fmt.Sprintf("VMs (%d x %s)", n, vm.Name),
		Duration: dur,
		Cost:     pricing.VMCost(vm, n, dur),
	})
	return out
}

// SessionTable renders the comparison.
func SessionTable(cfg SessionConfig) *Table {
	t := &Table{
		ID: "Usage model",
		Title: fmt.Sprintf("Session of %d × %s queries on SF %.0f with %v think time",
			cfg.Queries, cfg.Query.Name, cfg.SF, cfg.ThinkTime),
		Headers: []string{"system", "session length", "session cost"},
	}
	for _, r := range SessionCosts(cfg) {
		t.Rows = append(t.Rows, []string{r.System, secs(r.Duration), r.Cost.String()})
	}
	return t
}
