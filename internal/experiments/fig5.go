package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/pricing"
	"lambada/internal/invoke"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
)

// Figure5Config parameterizes the two-level invocation experiment: starting
// P workers from a freshly created function (cold start) via the √P tree.
type Figure5Config struct {
	Workers int
	Region  netmodel.Region
	Seed    int64
}

// DefaultFigure5 uses the paper's 4096 workers from the EU region.
func DefaultFigure5() Figure5Config {
	return Figure5Config{Workers: 4096, Region: netmodel.RegionEU, Seed: 1}
}

// Figure5Worker is the timeline of one first-generation worker, in the
// order the driver invoked them — the three phases plotted in Figure 5.
type Figure5Worker struct {
	ID int
	// BeforeOwnInvocation is the time the driver took to launch all
	// previous first-generation workers.
	BeforeOwnInvocation time.Duration
	// OwnInvocation is the time between the driver issuing this worker's
	// invocation and the worker running (network + cold start).
	OwnInvocation time.Duration
	// InvokingWorkers is the time this worker spent starting its
	// second-generation children.
	InvokingWorkers time.Duration
}

// Figure5Result is the complete experiment outcome.
type Figure5Result struct {
	Workers        int
	FirstGen       []Figure5Worker
	LastInitiated  time.Duration // when the last worker's invocation was initiated
	AllRunning     time.Duration // when every worker had started
	DirectEstimate time.Duration // what the driver alone would need (Table 1 rates)
}

type fig5Payload struct {
	ID       int   `json:"id"`
	Children []int `json:"children,omitempty"`
	IssuedAt int64 `json:"issuedAt"` // virtual ns when the driver/parent issued it
}

// Figure5 runs the two-level invocation of cfg.Workers functions on the DES
// kernel and records the per-phase timeline.
func Figure5(cfg Figure5Config) *Figure5Result {
	k := simclock.New()
	meter := pricing.NewCostMeter()
	lcfg := lambdasvc.DefaultAWSConfig(meter, cfg.Seed)
	prof := netmodel.InvokeProfiles[cfg.Region]
	lcfg.InvokeLatency = netmodel.Uniform{Min: prof.SingleLatency - prof.SingleLatency/6, Max: prof.SingleLatency + prof.SingleLatency/4}
	svc := lambdasvc.New(lcfg, lambdasvc.SimRuntime{K: k})

	firstGenIDs, children := invoke.TreeFanout(cfg.Workers)
	res := &Figure5Result{
		Workers:  cfg.Workers,
		FirstGen: make([]Figure5Worker, len(firstGenIDs)),
	}
	type started struct {
		id int
		at time.Duration
	}
	var startTimes []started
	workerPacing := invoke.WorkerPacing(cfg.Region)

	svc.CreateFunction("fig5-worker", 2048, time.Minute, func(ctx *lambdasvc.Ctx, payload []byte) error {
		var p fig5Payload
		if err := json.Unmarshal(payload, &p); err != nil {
			return err
		}
		now := ctx.Env.Now()
		startTimes = append(startTimes, started{id: p.ID, at: now})
		if p.ID < len(res.FirstGen) {
			res.FirstGen[p.ID].OwnInvocation = now - time.Duration(p.IssuedAt)
			invStart := now
			for _, child := range p.Children {
				body, err := json.Marshal(fig5Payload{ID: child, IssuedAt: int64(ctx.Env.Now())})
				if err != nil {
					return err
				}
				// Pipelined: the worker's requester threads overlap the
				// API round trips; the intra-region rate paces the loop.
				if err := svc.Invoke(ctx.Env, "fig5-worker", body, lambdasvc.InvokeOptions{WorkerID: child, Pipelined: true}); err != nil {
					return err
				}
				ctx.Env.Sleep(workerPacing.Gap())
			}
			res.FirstGen[p.ID].InvokingWorkers = ctx.Env.Now() - invStart
			if len(p.Children) > 0 {
				if at := ctx.Env.Now(); at > res.LastInitiated {
					res.LastInitiated = at
				}
			}
		}
		return nil
	})

	k.Go("driver", func(p *simclock.Proc) {
		for gi, id := range firstGenIDs {
			res.FirstGen[gi].ID = id
			res.FirstGen[gi].BeforeOwnInvocation = p.Now()
			body, err := json.Marshal(fig5Payload{ID: id, Children: children[gi], IssuedAt: int64(p.Now())})
			if err != nil {
				panic(err)
			}
			if err := svc.Invoke(p, "fig5-worker", body, lambdasvc.InvokeOptions{WorkerID: id}); err != nil {
				panic(fmt.Sprintf("invoking first-gen %d: %v", id, err))
			}
		}
		if at := p.Now(); at > res.LastInitiated {
			res.LastInitiated = at
		}
	})
	k.Run()

	for _, s := range startTimes {
		if s.at > res.AllRunning {
			res.AllRunning = s.at
		}
	}
	res.DirectEstimate = invoke.DirectDuration(invoke.DriverPacing(cfg.Region, 128), cfg.Workers)
	return res
}

// Figure5Figure renders the per-first-gen-worker phase timeline.
func Figure5Figure(res *Figure5Result) *Figure {
	f := &Figure{ID: "Figure 5", Title: fmt.Sprintf("Two-level invocation of %d workers", res.Workers),
		XLabel: "worker ID", YLabel: "time [s]"}
	var before, own, inv Series
	before.Label = "Before own invocation"
	own.Label = "Own invocation"
	inv.Label = "Invoking workers"
	for i, w := range res.FirstGen {
		x := float64(i)
		before.Points = append(before.Points, Point{X: x, Y: w.BeforeOwnInvocation.Seconds()})
		own.Points = append(own.Points, Point{X: x, Y: w.OwnInvocation.Seconds()})
		inv.Points = append(inv.Points, Point{X: x, Y: w.InvokingWorkers.Seconds()})
	}
	f.Series = []Series{before, own, inv}
	return f
}
