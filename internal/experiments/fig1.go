package experiments

import (
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/netmodel"
)

// Figure1aConfig parameterizes the job-scoped-resources simulation: a query
// scanning 1 TB stored on S3, executed either on a fleet of c5n.xlarge VMs
// (2 min start-up) or on 2 GiB serverless workers (4 s start-up).
type Figure1aConfig struct {
	DataBytes    int64
	VMStartup    time.Duration
	FaaSStartup  time.Duration
	VMScanBps    float64 // per-VM S3 scan bandwidth
	WorkerBps    float64 // per-worker S3 scan bandwidth
	WorkerGiB    float64 // worker memory for pricing
	VMCounts     []int
	WorkerCounts []int
}

// DefaultFigure1a mirrors the paper's footnotes: 1–256 c5n.xlarge, 8–4096
// workers with 2 GiB, 2 min vs 4 s startup.
func DefaultFigure1a() Figure1aConfig {
	return Figure1aConfig{
		DataBytes:    1e12,
		VMStartup:    2 * time.Minute,
		FaaSStartup:  4 * time.Second,
		VMScanBps:    2.4e9, // ~25 Gbit/s NIC minus protocol overhead
		WorkerBps:    85 * netmodel.MiB,
		WorkerGiB:    2,
		VMCounts:     []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		WorkerCounts: []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
	}
}

// JobCost is one point of Figure 1a: running time and monetary cost of one
// job-scoped execution.
type JobCost struct {
	Resources int
	Time      time.Duration
	Cost      pricing.USD
}

// Figure1a computes the cost/running-time frontier of job-scoped IaaS vs
// FaaS for a 1 TB scan.
func Figure1a(cfg Figure1aConfig) (iaas, faas []JobCost) {
	for _, n := range cfg.VMCounts {
		scan := time.Duration(float64(cfg.DataBytes) / (float64(n) * cfg.VMScanBps) * float64(time.Second))
		total := cfg.VMStartup + scan
		iaas = append(iaas, JobCost{
			Resources: n,
			Time:      total,
			Cost:      pricing.VMCost(pricing.C5NXLarge, n, total),
		})
	}
	for _, w := range cfg.WorkerCounts {
		scan := time.Duration(float64(cfg.DataBytes) / (float64(w) * cfg.WorkerBps) * float64(time.Second))
		total := cfg.FaaSStartup + scan
		cost := pricing.USD(float64(w)*cfg.WorkerGiB*total.Seconds()) * pricing.LambdaGBSecond
		faas = append(faas, JobCost{Resources: w, Time: total, Cost: cost})
	}
	return iaas, faas
}

// Figure1aFigure renders the two frontiers as a Figure.
func Figure1aFigure() *Figure {
	iaas, faas := Figure1a(DefaultFigure1a())
	f := &Figure{ID: "Figure 1a", Title: "Job-scoped resources: cost vs running time (1 TB scan)",
		XLabel: "cost [$]", YLabel: "running time [s]"}
	var si, sf Series
	si.Label = "IaaS (c5n.xlarge)"
	for _, p := range iaas {
		si.Points = append(si.Points, Point{X: float64(p.Cost), Y: p.Time.Seconds()})
	}
	sf.Label = "FaaS (2 GiB workers)"
	for _, p := range faas {
		sf.Points = append(sf.Points, Point{X: float64(p.Cost), Y: p.Time.Seconds()})
	}
	f.Series = []Series{si, sf}
	return f
}

// AlwaysOnConfig parameterizes Figure 1b: a system sized to answer the 1 TB
// scan in under 10 s, kept always on, vs usage-priced FaaS and QaaS.
type AlwaysOnConfig struct {
	DataBytes     int64
	LatencyTarget time.Duration
	QueryRates    []float64 // queries per hour
}

// DefaultFigure1b mirrors the paper: 3 r5.12xlarge (DRAM), 7 i3.16xlarge
// (NVMe), 13 c5n.18xlarge (S3), QaaS at $5/TiB, FaaS per query.
func DefaultFigure1b() AlwaysOnConfig {
	return AlwaysOnConfig{
		DataBytes:     1e12,
		LatencyTarget: 10 * time.Second,
		QueryRates:    []float64{1, 2, 4, 8, 16, 32, 64},
	}
}

// Figure1b returns hourly cost series per architecture.
func Figure1b(cfg AlwaysOnConfig) *Figure {
	f := &Figure{ID: "Figure 1b", Title: "Always-on resources: hourly cost vs query rate",
		XLabel: "queries per hour", YLabel: "hourly cost [$]"}

	vmConfigs := []struct {
		label string
		vm    pricing.VMType
	}{
		{"VMs (DRAM)", pricing.R512XLarge},
		{"VMs (NVMe)", pricing.I316XLarge},
		{"VMs (S3)", pricing.C5N18XLarge},
	}
	for _, vc := range vmConfigs {
		// Enough instances to hit the 10 s target at the tier's bandwidth.
		n := int(float64(cfg.DataBytes)/(vc.vm.ScanBps*cfg.LatencyTarget.Seconds()) + 0.999)
		if n < 1 {
			n = 1
		}
		hourly := float64(pricing.VMCost(vc.vm, n, time.Hour))
		var s Series
		s.Label = vc.label + " x" + itoa(n)
		for _, q := range cfg.QueryRates {
			s.Points = append(s.Points, Point{X: q, Y: hourly})
		}
		f.Series = append(f.Series, s)
	}

	// QaaS: $5/TiB per query.
	var qs Series
	qs.Label = "QaaS (S3)"
	perQuery := float64(pricing.QaaSScan(cfg.DataBytes))
	for _, q := range cfg.QueryRates {
		qs.Points = append(qs.Points, Point{X: q, Y: perQuery * q})
	}
	f.Series = append(f.Series, qs)

	// FaaS: workers sized for the 10 s target, billed per query.
	var fs Series
	fs.Label = "FaaS (S3)"
	workerBps := 85.0 * netmodel.MiB
	workers := float64(cfg.DataBytes) / (workerBps * cfg.LatencyTarget.Seconds())
	costPerQuery := workers * 2 /*GiB*/ * cfg.LatencyTarget.Seconds() * float64(pricing.LambdaGBSecond)
	// Request costs of the scan (16 MiB chunks).
	costPerQuery += float64(cfg.DataBytes) / (16 << 20) * float64(pricing.S3Read)
	for _, q := range cfg.QueryRates {
		fs.Points = append(fs.Points, Point{X: q, Y: costPerQuery * q})
	}
	f.Series = append(f.Series, fs)
	return f
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
