// Package experiments reproduces every table and figure of the Lambada
// paper's evaluation. Each experiment returns a structured result and can
// render the same rows/series the paper reports; cmd/lambada-bench and the
// top-level benchmarks drive them.
//
// Analytic experiments (Figures 1, 4, 6, 7, 9; Tables 1, 2) evaluate the
// calibrated models directly — exactly how the paper produced Figure 1
// ("obtained through simulation"). System experiments (Figures 5, 10, 11,
// 12, 13; Table 3) execute the real request patterns on the DES kernel.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"lambada/internal/awssim/simenv"
)

// deterministicRand returns a per-worker seeded source.
func deterministicRand(seed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(worker)))
}

// newZeroEnv returns an env for setup operations outside the kernel.
func newZeroEnv() simenv.Env { return simenv.NewImmediate() }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one labeled curve.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a set of series with axis labels.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render prints the figure as aligned text columns.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s (%s → %s)\n", s.Label, f.XLabel, f.YLabel)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "   %14.6g  %14.6g\n", p.X, p.Y)
		}
	}
	return b.String()
}

// Table is a rectangular result with headers.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// secs formats a duration in seconds with 3 significant digits.
func secs(d time.Duration) string { return fmt.Sprintf("%.3gs", d.Seconds()) }

// percentile returns the p-quantile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// sortDurations sorts ascending in place and returns the slice.
func sortDurations(ds []time.Duration) []time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}
