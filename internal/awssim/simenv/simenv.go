// Package simenv defines the execution-environment abstraction shared by all
// cloud-service simulators: a virtual clock the service charges latencies to.
//
// Two implementations matter:
//   - *simclock.Proc (the DES kernel) — performance experiments run here;
//     Sleep advances virtual time deterministically.
//   - Immediate — the functional layer; latencies are skipped so correctness
//     tests and examples on real data run instantly.
package simenv

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Env is a virtual clock. Services call Sleep to charge request latencies
// and transfer times to the caller.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Sleep suspends the caller for d of virtual time.
	Sleep(d time.Duration)
}

// Immediate is an Env whose Sleep is a no-op but which still accumulates the
// total virtual time that would have elapsed, so functional-mode runs can
// report modeled durations without waiting for them.
type Immediate struct {
	elapsed atomic.Int64
}

// NewImmediate returns an Immediate env at time zero.
func NewImmediate() *Immediate { return &Immediate{} }

// Now returns the accumulated virtual time.
func (e *Immediate) Now() time.Duration { return time.Duration(e.elapsed.Load()) }

// The completion signal shared by every Immediate env: Notify rotates the
// broadcast channel, waking every goroutine currently parked in a
// poll-sized Sleep. GoRuntime gives each worker its own Immediate, so the
// signal is process-wide rather than per-env — a worker's SQS Send must
// wake the driver's poller even though they hold different clocks.
var (
	notifyMu sync.Mutex
	notifyCh = make(chan struct{})
)

// Notify broadcasts a completion signal (work was produced — e.g. a
// message arrived on an SQS queue) to every goroutine blocked in an
// Immediate poll-sized Sleep. Spurious wakeups are harmless: Sleep credits
// its virtual time before parking, so a woken poller simply re-checks its
// condition.
func Notify() {
	notifyMu.Lock()
	close(notifyCh)
	notifyCh = make(chan struct{})
	notifyMu.Unlock()
}

// pollGuard bounds the real time a poll-sized Sleep parks for when no
// completion signal arrives: enough of a throttle that a waiter spinning
// on a virtual timeout cannot burn through minutes of it in milliseconds
// of real time while the worker goroutines it awaits have barely run
// (with GOMAXPROCS > 1 a bare Gosched does exactly that — the driver's
// SQS result poll would time out under 0/N messages), yet small enough
// that a 10-virtual-minute timeout costs ~1 s of real time.
const pollGuard = 50 * time.Microsecond

// Sleep accumulates d without blocking on virtual time. Poll-sized sleeps
// (≥ 1 ms of virtual time) park until the next completion signal (Notify,
// broadcast on every SQS Send) with pollGuard as the fallback: pollers
// wake the instant work arrives instead of burning fixed real-time
// throttles, and waiters whose work never arrives still make bounded
// real-time progress toward their virtual deadline.
func (e *Immediate) Sleep(d time.Duration) {
	if d > 0 {
		e.elapsed.Add(int64(d))
	}
	if d < time.Millisecond {
		runtime.Gosched()
		return
	}
	notifyMu.Lock()
	ch := notifyCh
	notifyMu.Unlock()
	t := time.NewTimer(pollGuard)
	select {
	case <-ch:
	case <-t.C:
	}
	t.Stop()
}

// Wall is an Env backed by the real clock; Sleep really sleeps. Useful for
// interactive demos at scaled-down latencies.
type Wall struct {
	start time.Time
	// Scale divides every sleep; 1 means real time, 1000 means sleeps are
	// a thousandfold shorter.
	Scale int64
}

// NewWall returns a wall-clock env with the given time scale (>= 1).
func NewWall(scale int64) *Wall {
	if scale < 1 {
		scale = 1
	}
	return &Wall{start: time.Now(), Scale: scale}
}

// Now returns scaled time since construction.
func (w *Wall) Now() time.Duration { return time.Since(w.start) * time.Duration(w.Scale) }

// Sleep sleeps d divided by the scale.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d / time.Duration(w.Scale))
	}
}
