// Package simenv defines the execution-environment abstraction shared by all
// cloud-service simulators: a virtual clock the service charges latencies to.
//
// Two implementations matter:
//   - *simclock.Proc (the DES kernel) — performance experiments run here;
//     Sleep advances virtual time deterministically.
//   - Immediate — the functional layer; latencies are skipped so correctness
//     tests and examples on real data run instantly.
package simenv

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Env is a virtual clock. Services call Sleep to charge request latencies
// and transfer times to the caller.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Sleep suspends the caller for d of virtual time.
	Sleep(d time.Duration)
}

// Immediate is an Env whose Sleep is a no-op but which still accumulates the
// total virtual time that would have elapsed, so functional-mode runs can
// report modeled durations without waiting for them.
type Immediate struct {
	elapsed atomic.Int64
}

// NewImmediate returns an Immediate env at time zero.
func NewImmediate() *Immediate { return &Immediate{} }

// Now returns the accumulated virtual time.
func (e *Immediate) Now() time.Duration { return time.Duration(e.elapsed.Load()) }

// The completion signal shared by every Immediate env: Notify rotates the
// broadcast channel, waking every goroutine currently parked in a
// poll-sized Sleep. GoRuntime gives each worker its own Immediate, so the
// signal is process-wide rather than per-env — a worker's SQS Send must
// wake the driver's poller even though they hold different clocks.
// Keyed waiters park on per-topic channels (topicChs); a NotifyKey closes
// (and retires) every topic channel the written key falls under, plus the
// wildcard channel. notifyWakeups counts waiters actually woken by a
// broadcast — the contention metric keying exists to reduce.
var (
	notifyMu      sync.Mutex
	notifyCh      = make(chan struct{})
	topicChs      = make(map[string]chan struct{})
	notifyWakeups atomic.Uint64
)

// Notify broadcasts a completion signal (work was produced — e.g. a
// message arrived on an SQS queue) to every goroutine blocked in an
// Immediate poll-sized Sleep. Spurious wakeups are harmless: Sleep credits
// its virtual time before parking, so a woken poller simply re-checks its
// condition.
func Notify() { NotifyKey("") }

// NotifyKey broadcasts a completion signal for key: waiters parked on a
// matching topic (prefix of key; the wildcard waiters always) wake. An
// empty key is the wildcard broadcast and wakes everyone.
func NotifyKey(key string) {
	notifyMu.Lock()
	close(notifyCh)
	notifyCh = make(chan struct{})
	for topic, ch := range topicChs {
		if key == "" || strings.HasPrefix(key, topic) {
			close(ch)
			delete(topicChs, topic)
		}
	}
	notifyMu.Unlock()
}

// pollGuard bounds the real time a poll-sized Sleep parks for when no
// completion signal arrives: enough of a throttle that a waiter spinning
// on a virtual timeout cannot burn through minutes of it in milliseconds
// of real time while the worker goroutines it awaits have barely run
// (with GOMAXPROCS > 1 a bare Gosched does exactly that — the driver's
// SQS result poll would time out under 0/N messages), yet small enough
// that a 10-virtual-minute timeout costs ~1 s of real time.
const pollGuard = 50 * time.Microsecond

// Sleep accumulates d without blocking on virtual time. Poll-sized sleeps
// (≥ 1 ms of virtual time) park until the next completion signal (Notify,
// broadcast on every SQS Send) with pollGuard as the fallback: pollers
// wake the instant work arrives instead of burning fixed real-time
// throttles, and waiters whose work never arrives still make bounded
// real-time progress toward their virtual deadline.
func (e *Immediate) Sleep(d time.Duration) {
	if d < time.Millisecond {
		if d > 0 {
			e.elapsed.Add(int64(d))
		}
		runtime.Gosched()
		return
	}
	e.WaitNotify(d)
}

// Notifier is an Env that carries a completion signal waiters can park on
// directly instead of a timed poll: *simclock.Proc routes through the DES
// kernel's completion signal (waking at the exact virtual instant of the
// broadcast), Immediate through the process-wide notify channel. Services
// broadcast when they produce something a poller may await (an object or
// marker appearing, a message arriving).
type Notifier interface {
	Env
	// NotifyAll broadcasts the completion signal to every parked waiter.
	NotifyAll()
	// NotifyKey broadcasts the completion signal for a written key, waking
	// only waiters parked on a matching topic (a prefix of key).
	NotifyKey(key string)
	// WaitNotify parks the caller until the next completion broadcast or
	// until d of virtual time passed, whichever comes first, and reports
	// whether the broadcast arrived.
	WaitNotify(d time.Duration) bool
	// WaitNotifyKey parks the caller until a broadcast whose key matches
	// topic (prefix match; empty topic matches everything) or until d of
	// virtual time passed, and reports whether the broadcast arrived.
	WaitNotifyKey(topic string, d time.Duration) bool
}

// Broadcast signals work completion through env's native channel: the DES
// completion signal when env is a kernel process, the process-wide Notify
// otherwise. Services call it instead of Notify so DES pollers wake too.
func Broadcast(env Env) {
	if n, ok := env.(Notifier); ok {
		n.NotifyAll()
		return
	}
	Notify()
}

// BroadcastKey signals that something became visible under key: services
// call it at every write that may unblock a parked barrier (an S3 object,
// a DynamoDB item, an SQS message), routed through env's native keyed
// channel so only waiters on a matching topic wake.
func BroadcastKey(env Env, key string) {
	if n, ok := env.(Notifier); ok {
		n.NotifyKey(key)
		return
	}
	NotifyKey(key)
}

// WaitNotify parks env's caller for at most d of virtual time, waking early
// on the completion signal, and reports whether the signal arrived. Envs
// without a Notifier implementation fall back to a plain timed Sleep — the
// polling behavior barriers had before the signal existed.
func WaitNotify(env Env, d time.Duration) bool {
	if n, ok := env.(Notifier); ok {
		return n.WaitNotify(d)
	}
	env.Sleep(d)
	return false
}

// WaitNotifyKey parks env's caller for at most d of virtual time, waking
// early on a completion broadcast whose key matches topic, and reports
// whether the broadcast arrived. Envs without a Notifier implementation
// fall back to a plain timed Sleep.
func WaitNotifyKey(env Env, topic string, d time.Duration) bool {
	if n, ok := env.(Notifier); ok {
		return n.WaitNotifyKey(topic, d)
	}
	env.Sleep(d)
	return false
}

// Wakeups returns the number of keyed-or-wildcard waiter wake-ups the
// process-wide completion signal has performed (Immediate envs; the DES
// kernel keeps its own counter on simclock.Kernel).
func Wakeups() uint64 { return notifyWakeups.Load() }

// NotifyAll broadcasts the process-wide completion signal (Notifier).
func (e *Immediate) NotifyAll() { Notify() }

// NotifyKey broadcasts the process-wide completion signal for key
// (Notifier).
func (e *Immediate) NotifyKey(key string) { NotifyKey(key) }

// CompletionWakeups exposes the process-wide wakeup counter through the
// same interface assertion the driver uses for *simclock.Proc.
func (e *Immediate) CompletionWakeups() uint64 { return notifyWakeups.Load() }

// WaitNotify parks until the next completion signal with the pollGuard
// timer as the real-time fallback (Notifier). Every wake-up — notified or
// not — charges the full d of virtual time, exactly like the Sleep-based
// poll loop it replaces: an Immediate env has no cross-goroutine clock to
// date the broadcast with, and charging less would let a waiter whose
// condition never turns true spin below its virtual deadline for as long
// as unrelated broadcasts keep arriving. (DES processes don't have this
// problem: their kernel clock advances to the broadcast's true instant.)
func (e *Immediate) WaitNotify(d time.Duration) bool {
	return e.WaitNotifyKey("", d)
}

// WaitNotifyKey parks on the topic's channel (the wildcard channel when
// topic is empty) with the pollGuard real-time fallback, charging the
// full d of virtual time like WaitNotify (Notifier).
func (e *Immediate) WaitNotifyKey(topic string, d time.Duration) bool {
	if d > 0 {
		e.elapsed.Add(int64(d))
	}
	notifyMu.Lock()
	ch := notifyCh
	if topic != "" {
		if tc, ok := topicChs[topic]; ok {
			ch = tc
		} else {
			ch = make(chan struct{})
			topicChs[topic] = ch
		}
	}
	notifyMu.Unlock()
	t := time.NewTimer(pollGuard)
	defer t.Stop()
	select {
	case <-ch:
		notifyWakeups.Add(1)
		return true
	case <-t.C:
		return false
	}
}

// Wall is an Env backed by the real clock; Sleep really sleeps. Useful for
// interactive demos at scaled-down latencies.
type Wall struct {
	start time.Time
	// Scale divides every sleep; 1 means real time, 1000 means sleeps are
	// a thousandfold shorter.
	Scale int64
}

// NewWall returns a wall-clock env with the given time scale (>= 1).
func NewWall(scale int64) *Wall {
	if scale < 1 {
		scale = 1
	}
	return &Wall{start: time.Now(), Scale: scale}
}

// Now returns scaled time since construction.
func (w *Wall) Now() time.Duration { return time.Since(w.start) * time.Duration(w.Scale) }

// Sleep sleeps d divided by the scale.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d / time.Duration(w.Scale))
	}
}
