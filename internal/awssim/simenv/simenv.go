// Package simenv defines the execution-environment abstraction shared by all
// cloud-service simulators: a virtual clock the service charges latencies to.
//
// Two implementations matter:
//   - *simclock.Proc (the DES kernel) — performance experiments run here;
//     Sleep advances virtual time deterministically.
//   - Immediate — the functional layer; latencies are skipped so correctness
//     tests and examples on real data run instantly.
package simenv

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Env is a virtual clock. Services call Sleep to charge request latencies
// and transfer times to the caller.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Sleep suspends the caller for d of virtual time.
	Sleep(d time.Duration)
}

// Immediate is an Env whose Sleep is a no-op but which still accumulates the
// total virtual time that would have elapsed, so functional-mode runs can
// report modeled durations without waiting for them.
type Immediate struct {
	elapsed atomic.Int64
}

// NewImmediate returns an Immediate env at time zero.
func NewImmediate() *Immediate { return &Immediate{} }

// Now returns the accumulated virtual time.
func (e *Immediate) Now() time.Duration { return time.Duration(e.elapsed.Load()) }

// Sleep accumulates d without blocking (virtual time), yielding so that
// poll loops spinning on an Immediate env stay cooperative with the real
// goroutines they are waiting on. For poll-sized sleeps the yield must be
// real time, not just the processor: with GOMAXPROCS > 1 a bare Gosched
// lets a waiter burn through minutes of virtual timeout in milliseconds of
// real time while the worker goroutines it awaits have barely run — the
// driver's SQS result poll would time out under 0/N messages. A microsecond
//-scale real sleep per virtual millisecond keeps waiting loops honest
// without materially slowing functional-mode runs.
func (e *Immediate) Sleep(d time.Duration) {
	if d > 0 {
		e.elapsed.Add(int64(d))
	}
	if d >= time.Millisecond {
		time.Sleep(50 * time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// Wall is an Env backed by the real clock; Sleep really sleeps. Useful for
// interactive demos at scaled-down latencies.
type Wall struct {
	start time.Time
	// Scale divides every sleep; 1 means real time, 1000 means sleeps are
	// a thousandfold shorter.
	Scale int64
}

// NewWall returns a wall-clock env with the given time scale (>= 1).
func NewWall(scale int64) *Wall {
	if scale < 1 {
		scale = 1
	}
	return &Wall{start: time.Now(), Scale: scale}
}

// Now returns scaled time since construction.
func (w *Wall) Now() time.Duration { return time.Since(w.start) * time.Duration(w.Scale) }

// Sleep sleeps d divided by the scale.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d / time.Duration(w.Scale))
	}
}
