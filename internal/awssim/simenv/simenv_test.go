package simenv

import (
	"sync"
	"testing"
	"time"
)

func TestImmediateAccumulates(t *testing.T) {
	e := NewImmediate()
	e.Sleep(3 * time.Second)
	e.Sleep(2 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	e.Sleep(-time.Second) // negative is ignored
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v after negative sleep", e.Now())
	}
}

func TestImmediateConcurrent(t *testing.T) {
	e := NewImmediate()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if e.Now() != 8*time.Second {
		t.Errorf("now = %v, want 8s", e.Now())
	}
}

// TestNotifyWakesSleepers: Notify must wake concurrent poll-sized sleeps
// promptly and race-free, and Sleep must still credit full virtual time.
func TestNotifyWakesSleepers(t *testing.T) {
	e := NewImmediate()
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			Notify()
		}
	}()
	wg.Wait()
	if e.Now() != iters*5*time.Millisecond {
		t.Errorf("now = %v, want %v", e.Now(), iters*5*time.Millisecond)
	}
}

// TestSleepWithoutSignalStillProgresses: a waiter whose work never arrives
// must not block on the signal forever — the pollGuard fallback bounds each
// poll-sized sleep.
func TestSleepWithoutSignalStillProgresses(t *testing.T) {
	e := NewImmediate()
	start := time.Now()
	for i := 0; i < 100; i++ {
		e.Sleep(25 * time.Millisecond) // poll-sized, no Notify anywhere
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Errorf("100 unsignaled poll sleeps took %v of real time", real)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Errorf("now = %v", e.Now())
	}
}

func TestWallScales(t *testing.T) {
	w := NewWall(1000)
	start := time.Now()
	w.Sleep(100 * time.Millisecond) // real 100µs
	if real := time.Since(start); real > 50*time.Millisecond {
		t.Errorf("scaled sleep took %v of real time", real)
	}
	if w.Now() <= 0 {
		t.Error("wall Now not advancing")
	}
	if NewWall(0).Scale != 1 {
		t.Error("scale floor missing")
	}
}
