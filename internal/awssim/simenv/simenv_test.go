package simenv

import (
	"sync"
	"testing"
	"time"
)

func TestImmediateAccumulates(t *testing.T) {
	e := NewImmediate()
	e.Sleep(3 * time.Second)
	e.Sleep(2 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	e.Sleep(-time.Second) // negative is ignored
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v after negative sleep", e.Now())
	}
}

func TestImmediateConcurrent(t *testing.T) {
	e := NewImmediate()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if e.Now() != 8*time.Second {
		t.Errorf("now = %v, want 8s", e.Now())
	}
}

func TestWallScales(t *testing.T) {
	w := NewWall(1000)
	start := time.Now()
	w.Sleep(100 * time.Millisecond) // real 100µs
	if real := time.Since(start); real > 50*time.Millisecond {
		t.Errorf("scaled sleep took %v of real time", real)
	}
	if w.Now() <= 0 {
		t.Error("wall Now not advancing")
	}
	if NewWall(0).Scale != 1 {
		t.Error("scale floor missing")
	}
}
