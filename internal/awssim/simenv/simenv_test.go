package simenv

import (
	"sync"
	"testing"
	"time"
)

func TestImmediateAccumulates(t *testing.T) {
	e := NewImmediate()
	e.Sleep(3 * time.Second)
	e.Sleep(2 * time.Second)
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	e.Sleep(-time.Second) // negative is ignored
	if e.Now() != 5*time.Second {
		t.Errorf("now = %v after negative sleep", e.Now())
	}
}

func TestImmediateConcurrent(t *testing.T) {
	e := NewImmediate()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if e.Now() != 8*time.Second {
		t.Errorf("now = %v, want 8s", e.Now())
	}
}

// TestNotifyWakesSleepers: Notify must wake concurrent poll-sized sleeps
// promptly and race-free, and Sleep must still credit full virtual time.
func TestNotifyWakesSleepers(t *testing.T) {
	e := NewImmediate()
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			Notify()
		}
	}()
	wg.Wait()
	if e.Now() != iters*5*time.Millisecond {
		t.Errorf("now = %v, want %v", e.Now(), iters*5*time.Millisecond)
	}
}

// TestSleepWithoutSignalStillProgresses: a waiter whose work never arrives
// must not block on the signal forever — the pollGuard fallback bounds each
// poll-sized sleep.
func TestSleepWithoutSignalStillProgresses(t *testing.T) {
	e := NewImmediate()
	start := time.Now()
	for i := 0; i < 100; i++ {
		e.Sleep(25 * time.Millisecond) // poll-sized, no Notify anywhere
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Errorf("100 unsignaled poll sleeps took %v of real time", real)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Errorf("now = %v", e.Now())
	}
}

func TestWallScales(t *testing.T) {
	w := NewWall(1000)
	start := time.Now()
	w.Sleep(100 * time.Millisecond) // real 100µs
	if real := time.Since(start); real > 50*time.Millisecond {
		t.Errorf("scaled sleep took %v of real time", real)
	}
	if w.Now() <= 0 {
		t.Error("wall Now not advancing")
	}
	if NewWall(0).Scale != 1 {
		t.Error("scale floor missing")
	}
}

// TestImmediateWaitNotify: every wake-up — notified or timed out — charges
// the full poll of virtual time (like the Sleep-based loop it replaces), so
// a waiter whose condition never turns true always progresses toward its
// virtual deadline, even under a storm of unrelated broadcasts.
func TestImmediateWaitNotify(t *testing.T) {
	e := NewImmediate()
	done := make(chan bool)
	go func() { done <- e.WaitNotify(time.Second) }()
	time.Sleep(2 * time.Millisecond)
	Notify()
	select {
	case <-done:
		if e.Now() != time.Second {
			t.Errorf("wake-up charged %v, want the full 1s poll", e.Now())
		}
	case <-time.After(time.Second):
		t.Fatal("WaitNotify never returned")
	}

	// With no broadcaster the guard expires; the charge is the same.
	before := e.Now()
	e.WaitNotify(3 * time.Second)
	if got := e.Now() - before; got != 3*time.Second {
		t.Errorf("timeout charged %v, want 3s", got)
	}
}

// TestBroadcastFallsBackToNotify: Broadcast on a plain Env (no Notifier)
// must still wake Immediate waiters through the process-wide channel.
func TestBroadcastFallsBackToNotify(t *testing.T) {
	e := NewImmediate()
	done := make(chan bool)
	go func() { done <- e.WaitNotify(10 * time.Second) }()
	time.Sleep(2 * time.Millisecond)
	Broadcast(NewWall(1)) // Wall implements Env only
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}
