package pricing

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLambdaDurationMatchesPaperRate(t *testing.T) {
	// §4.4.4: a 2 GiB worker costs $3.3e-5 per second.
	got := LambdaDuration(2048, time.Second)
	if math.Abs(float64(got)-3.33334e-5) > 1e-9 {
		t.Errorf("2GiB-second = %v, want ~3.3e-5", float64(got))
	}
}

func TestS3RequestPrices(t *testing.T) {
	// §4.3.1: one million read requests cost $0.4; writes and lists $5.
	if math.Abs(float64(S3Read)*1e6-0.4) > 1e-9 {
		t.Errorf("1M reads = %v, want 0.4", float64(S3Read)*1e6)
	}
	if math.Abs(float64(S3Write)*1e6-5.0) > 1e-9 {
		t.Errorf("1M writes = %v, want 5", float64(S3Write)*1e6)
	}
	if S3List != S3Write {
		t.Error("lists must be charged like writes (§4.4.3)")
	}
}

func TestQaaSScan(t *testing.T) {
	if got := QaaSScan(1 << 40); got != 5.0 {
		t.Errorf("1 TiB scan = %v, want $5", got)
	}
	if got := QaaSScan(0); got != 0 {
		t.Errorf("0 bytes = %v", got)
	}
}

func TestVMCost(t *testing.T) {
	got := VMCost(C5NXLarge, 10, 30*time.Minute)
	want := 0.216 * 10 * 0.5
	if math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("10 c5n.xlarge for 30m = %v, want %v", got, want)
	}
}

func TestUSDString(t *testing.T) {
	cases := []struct {
		v    USD
		want string
	}{
		{0.001, "0.1000¢"},
		{0.05, "5.00¢"},
		{3.5, "$3.50"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestCostMeterAccumulates(t *testing.T) {
	m := NewCostMeter()
	m.Charge(LabelS3Read, S3Read)
	m.Charge(LabelS3Read, S3Read)
	m.ChargeN(LabelS3Write, 10, 10*S3Write)
	if got := m.Count(LabelS3Read); got != 2 {
		t.Errorf("read count = %d", got)
	}
	if got := m.Count(LabelS3Write); got != 10 {
		t.Errorf("write count = %d", got)
	}
	want := 2*S3Read + 10*S3Write
	if math.Abs(float64(m.Total()-want)) > 1e-12 {
		t.Errorf("total = %v, want %v", m.Total(), want)
	}
	if !strings.Contains(m.Breakdown(), "TOTAL") {
		t.Error("breakdown missing TOTAL")
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("reset did not clear")
	}
}

func TestCostMeterConcurrent(t *testing.T) {
	m := NewCostMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Charge("x", 1)
			}
		}()
	}
	wg.Wait()
	if m.Count("x") != 8000 {
		t.Errorf("count = %d, want 8000", m.Count("x"))
	}
}

func TestNilMeterIsNoOp(t *testing.T) {
	var m *CostMeter
	m.Charge("x", 1) // must not panic
	m.ChargeN("x", 2, 1)
}

func TestLabelsSorted(t *testing.T) {
	m := NewCostMeter()
	m.Charge("z", 1)
	m.Charge("a", 1)
	m.Charge("m", 1)
	ls := m.Labels()
	if len(ls) != 3 || ls[0] != "a" || ls[1] != "m" || ls[2] != "z" {
		t.Errorf("labels = %v", ls)
	}
}
