// Package pricing encodes the AWS price model the Lambada paper evaluates
// against (us-east-1, late 2019) and provides a CostMeter that the service
// simulators charge usage to. All figures that report monetary cost (1, 7,
// 9, 10, 12) derive from these tables.
package pricing

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// USD is an amount of money in US dollars.
type USD float64

// String formats the amount with adaptive precision (¢ for small amounts).
func (u USD) String() string {
	switch {
	case u < 0.01:
		return fmt.Sprintf("%.4f¢", float64(u)*100)
	case u < 1:
		return fmt.Sprintf("%.2f¢", float64(u)*100)
	default:
		return fmt.Sprintf("$%.2f", float64(u))
	}
}

// Price constants (us-east-1, as quoted in the paper).
const (
	// LambdaGBSecond is the AWS Lambda duration price per GiB-second.
	// A 2 GiB worker costs $3.3e-5 per second (§4.4.4).
	LambdaGBSecond USD = 1.66667e-5
	// LambdaPerRequest is the AWS Lambda invocation price.
	LambdaPerRequest USD = 0.20 / 1e6

	// S3Read is the price of one GET request ($0.4 per million, §4.3.1).
	S3Read USD = 0.4 / 1e6
	// S3Write is the price of one PUT request ($5 per million).
	S3Write USD = 5.0 / 1e6
	// S3List is the price of one LIST request (charged like writes, §4.4.3).
	S3List USD = 5.0 / 1e6

	// SQSPerRequest is the price of one SQS request.
	SQSPerRequest USD = 0.40 / 1e6

	// DynamoRead and DynamoWrite are on-demand request prices.
	DynamoRead  USD = 0.25 / 1e6
	DynamoWrite USD = 1.25 / 1e6

	// QaaSPerTiB is the bytes-scanned price of Amazon Athena and Google
	// BigQuery ("1 TiB of input costs $5 in both systems", §5.4.1).
	QaaSPerTiB USD = 5.0
)

// VMType describes an EC2 instance type used in the Figure 1 simulations.
type VMType struct {
	Name       string
	HourlyUSD  USD
	VCPUs      int
	MemoryGiB  float64
	NetworkGbs float64 // network bandwidth in Gbit/s
	// ScanBps is the effective single-instance scan bandwidth in bytes/s
	// for the storage tier this instance represents in Figure 1b.
	ScanBps float64
}

// Instance types from the paper's simulations (footnotes 1 and 3).
var (
	// C5NXLarge is the job-scoped worker VM of Figure 1a.
	C5NXLarge = VMType{Name: "c5n.xlarge", HourlyUSD: 0.216, VCPUs: 4, MemoryGiB: 10.5, NetworkGbs: 25}
	// R512XLarge reads pre-loaded data from DRAM (Figure 1b).
	R512XLarge = VMType{Name: "r5.12xlarge", HourlyUSD: 3.024, VCPUs: 48, MemoryGiB: 384, NetworkGbs: 10, ScanBps: 40e9}
	// I316XLarge reads from local NVMe (Figure 1b).
	I316XLarge = VMType{Name: "i3.16xlarge", HourlyUSD: 4.992, VCPUs: 64, MemoryGiB: 488, NetworkGbs: 25, ScanBps: 16e9}
	// C5N18XLarge scans directly from S3 (Figure 1b).
	C5N18XLarge = VMType{Name: "c5n.18xlarge", HourlyUSD: 3.888, VCPUs: 72, MemoryGiB: 192, NetworkGbs: 100, ScanBps: 9e9}
)

// LambdaDuration returns the duration cost of a function with memoryMiB of
// memory running for d. AWS bills in 1 ms increments; we bill exact time,
// which is indistinguishable at the scales reported.
func LambdaDuration(memoryMiB int, d time.Duration) USD {
	gib := float64(memoryMiB) / 1024.0
	return USD(gib*d.Seconds()) * LambdaGBSecond
}

// QaaSScan returns the QaaS price of scanning n bytes.
func QaaSScan(n int64) USD {
	return QaaSPerTiB * USD(float64(n)/(1<<40))
}

// VMCost returns the cost of running count instances of t for d, billed
// per-second (AWS Linux on-demand billing).
func VMCost(t VMType, count int, d time.Duration) USD {
	return t.HourlyUSD * USD(float64(count)*d.Hours())
}

// CostMeter accumulates usage-based cost by category. It is safe for
// concurrent use (the functional layer exercises services from many real
// goroutines).
type CostMeter struct {
	mu      sync.Mutex
	byLabel map[string]USD
	counts  map[string]int64
}

// NewCostMeter returns an empty meter.
func NewCostMeter() *CostMeter {
	return &CostMeter{byLabel: make(map[string]USD), counts: make(map[string]int64)}
}

// Charge adds amount under the given label and counts one event.
func (m *CostMeter) Charge(label string, amount USD) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.byLabel[label] += amount
	m.counts[label]++
	m.mu.Unlock()
}

// ChargeN adds amount under label, counting n events.
func (m *CostMeter) ChargeN(label string, n int64, amount USD) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.byLabel[label] += amount
	m.counts[label] += n
	m.mu.Unlock()
}

// Total returns the sum over all labels.
func (m *CostMeter) Total() USD {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t USD
	for _, v := range m.byLabel {
		t += v
	}
	return t
}

// Get returns the accumulated amount for one label.
func (m *CostMeter) Get(label string) USD {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byLabel[label]
}

// Count returns the number of events charged under label.
func (m *CostMeter) Count(label string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[label]
}

// Labels returns all labels in sorted order.
func (m *CostMeter) Labels() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byLabel))
	for l := range m.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Reset clears the meter.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	m.byLabel = make(map[string]USD)
	m.counts = make(map[string]int64)
	m.mu.Unlock()
}

// Breakdown returns a formatted multi-line cost report.
func (m *CostMeter) Breakdown() string {
	s := ""
	for _, l := range m.Labels() {
		s += fmt.Sprintf("%-24s %12s  (%d events)\n", l, m.Get(l), m.Count(l))
	}
	s += fmt.Sprintf("%-24s %12s\n", "TOTAL", m.Total())
	return s
}

// Standard meter labels used by the service simulators.
const (
	LabelLambdaDuration = "lambda.duration"
	LabelLambdaRequests = "lambda.requests"
	LabelS3Read         = "s3.read"
	LabelS3Write        = "s3.write"
	LabelS3List         = "s3.list"
	LabelSQS            = "sqs.requests"
	LabelDynamoRead     = "dynamo.read"
	LabelDynamoWrite    = "dynamo.write"
)
