package dynamo

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
)

func TestPutGetDelete(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	if err := s.Put(env, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(env, "t", "k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := s.Delete(env, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(env, "t", "k"); !errors.Is(err, ErrNoSuchItem) {
		t.Errorf("after delete: %v", err)
	}
}

func TestMissingTable(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	if err := s.Put(env, "nope", "k", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("put err = %v", err)
	}
	if _, err := s.Get(env, "nope", "k"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("get err = %v", err)
	}
	if _, err := s.Scan(env, "nope", ""); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("scan err = %v", err)
	}
}

func TestScanPrefixSorted(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	for i := 3; i >= 0; i-- {
		s.Put(env, "t", fmt.Sprintf("job/%d", i), []byte{byte(i)})
	}
	s.Put(env, "t", "other", []byte("x"))
	items, err := s.Scan(env, "t", "job/")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	for i, it := range items {
		if it.Key != fmt.Sprintf("job/%d", i) {
			t.Errorf("item %d = %q", i, it.Key)
		}
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	v := []byte("orig")
	s.Put(env, "t", "k", v)
	v[0] = 'X'
	got, _ := s.Get(env, "t", "k")
	if string(got) != "orig" {
		t.Error("Put did not copy")
	}
	got[0] = 'Y'
	got2, _ := s.Get(env, "t", "k")
	if string(got2) != "orig" {
		t.Error("Get did not copy")
	}
}

func TestPricing(t *testing.T) {
	meter := pricing.NewCostMeter()
	s := New(Config{Meter: meter})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	s.Put(env, "t", "a", []byte("1"))
	s.Put(env, "t", "b", []byte("2"))
	s.Get(env, "t", "a")
	s.Scan(env, "t", "") // 2 items → 2 read units
	if got := meter.Count(pricing.LabelDynamoWrite); got != 2 {
		t.Errorf("writes = %d", got)
	}
	if got := meter.Count(pricing.LabelDynamoRead); got != 3 {
		t.Errorf("reads = %d, want 3 (1 get + 2 scan units)", got)
	}
}
