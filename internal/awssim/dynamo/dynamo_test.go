package dynamo

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
)

func TestPutGetDelete(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	if err := s.Put(env, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(env, "t", "k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := s.Delete(env, "t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(env, "t", "k"); !errors.Is(err, ErrNoSuchItem) {
		t.Errorf("after delete: %v", err)
	}
}

func TestMissingTable(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	if err := s.Put(env, "nope", "k", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("put err = %v", err)
	}
	if _, err := s.Get(env, "nope", "k"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("get err = %v", err)
	}
	if _, err := s.Scan(env, "nope", ""); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("scan err = %v", err)
	}
}

func TestScanPrefixSorted(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	for i := 3; i >= 0; i-- {
		s.Put(env, "t", fmt.Sprintf("job/%d", i), []byte{byte(i)})
	}
	s.Put(env, "t", "other", []byte("x"))
	items, err := s.Scan(env, "t", "job/")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	for i, it := range items {
		if it.Key != fmt.Sprintf("job/%d", i) {
			t.Errorf("item %d = %q", i, it.Key)
		}
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	v := []byte("orig")
	s.Put(env, "t", "k", v)
	v[0] = 'X'
	got, _ := s.Get(env, "t", "k")
	if string(got) != "orig" {
		t.Error("Put did not copy")
	}
	got[0] = 'Y'
	got2, _ := s.Get(env, "t", "k")
	if string(got2) != "orig" {
		t.Error("Get did not copy")
	}
}

func TestPricing(t *testing.T) {
	meter := pricing.NewCostMeter()
	s := New(Config{Meter: meter})
	env := simenv.NewImmediate()
	s.CreateTable("t")
	s.Put(env, "t", "a", []byte("1"))
	s.Put(env, "t", "b", []byte("2"))
	s.Get(env, "t", "a")
	s.Scan(env, "t", "") // 2 items → 2 read units
	if got := meter.Count(pricing.LabelDynamoWrite); got != 2 {
		t.Errorf("writes = %d", got)
	}
	if got := meter.Count(pricing.LabelDynamoRead); got != 3 {
		t.Errorf("reads = %d, want 3 (1 get + 2 scan units)", got)
	}
}

// TestPutIfConditionalSemantics: nil expect means "must not exist"; non-nil
// expect must match the stored bytes; either way the loser sees
// ErrConditionFailed and the item keeps the winner's value.
func TestPutIfConditionalSemantics(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateTable("t")

	if err := s.PutIf(env, "t", "epoch", []byte("1"), nil); err != nil {
		t.Fatalf("create-if-absent failed: %v", err)
	}
	if err := s.PutIf(env, "t", "epoch", []byte("1"), nil); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("second create-if-absent: err = %v, want ErrConditionFailed", err)
	}
	// CAS from the observed value succeeds exactly once.
	if err := s.PutIf(env, "t", "epoch", []byte("2"), []byte("1")); err != nil {
		t.Fatalf("CAS 1->2 failed: %v", err)
	}
	if err := s.PutIf(env, "t", "epoch", []byte("2"), []byte("1")); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("stale CAS: err = %v, want ErrConditionFailed", err)
	}
	got, err := s.Get(env, "t", "epoch")
	if err != nil || string(got) != "2" {
		t.Fatalf("item = %q (%v), want 2", got, err)
	}
	if err := s.PutIf(env, "nope", "k", nil, nil); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: err = %v", err)
	}
}

// TestPutIfRacingIncrements: two racing CAS loops produce distinct,
// consecutive epochs — the uniqueness property the driver's fence rests on.
func TestPutIfRacingIncrements(t *testing.T) {
	s := New(Config{})
	s.CreateTable("t")
	acquire := func(env simenv.Env) int {
		for {
			cur, err := s.Get(env, "t", "epoch")
			if err != nil && !errors.Is(err, ErrNoSuchItem) {
				t.Error(err)
				return -1
			}
			next := 1
			if err == nil {
				n, _ := strconv.Atoi(string(cur))
				next = n + 1
			}
			perr := s.PutIf(env, "t", "epoch", []byte(strconv.Itoa(next)), cur)
			if perr == nil {
				return next
			}
			if !errors.Is(perr, ErrConditionFailed) {
				t.Error(perr)
				return -1
			}
		}
	}
	var wg sync.WaitGroup
	got := make([]int, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = acquire(simenv.NewImmediate())
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, e := range got {
		if e < 1 || e > len(got) || seen[e] {
			t.Fatalf("epochs not unique/consecutive: %v", got)
		}
		seen[e] = true
	}
}
