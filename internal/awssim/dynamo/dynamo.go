// Package dynamo simulates Amazon DynamoDB as a key-value store with
// per-request on-demand pricing. Lambada uses it for small amounts of shared
// state (Figure 3); the simulator provides put/get/delete and a prefix scan.
package dynamo

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
)

// Errors returned by the service.
var (
	ErrNoSuchTable     = errors.New("dynamo: no such table")
	ErrNoSuchItem      = errors.New("dynamo: no such item")
	ErrConditionFailed = errors.New("dynamo: conditional check failed")
	// ErrThrottled is an injected ProvisionedThroughputExceededException-class
	// rejection; it wraps faults.ErrThrottled, which resilience classifies
	// retryable.
	ErrThrottled = fmt.Errorf("dynamo: %w", faults.ErrThrottled)
)

// Config controls latency and pricing. Zero value: free, instant.
type Config struct {
	ReadLatency  netmodel.Dist
	WriteLatency netmodel.Dist
	Meter        *pricing.CostMeter
	Seed         int64

	// Faults injects deterministic throttling on Put/PutIf/Get. Throttled
	// requests are rejected unbilled and before latency (AWS does not charge
	// them). Nil injects nothing.
	Faults *faults.Injector
}

// DefaultAWSConfig returns single-digit-millisecond DynamoDB latencies.
func DefaultAWSConfig(meter *pricing.CostMeter, seed int64) Config {
	return Config{
		ReadLatency:  netmodel.Uniform{Min: 2 * time.Millisecond, Max: 9 * time.Millisecond},
		WriteLatency: netmodel.Uniform{Min: 3 * time.Millisecond, Max: 12 * time.Millisecond},
		Meter:        meter,
		Seed:         seed,
	}
}

// Service is a simulated DynamoDB endpoint, safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	cfg    Config
	tables map[string]map[string][]byte
	rng    *rand.Rand
	rngMu  sync.Mutex
	// trace receives billed-request attribution (nil = off), charged
	// adjacent to every Meter.Charge.
	trace *obs.Tracer
}

// SetTracer installs the tracer billed requests are attributed to. Must be
// set before traffic; nil disables attribution.
func (s *Service) SetTracer(tr *obs.Tracer) { s.trace = tr }

func (s *Service) chargeTrace(env simenv.Env, c obs.Cost) {
	if s.trace != nil {
		s.trace.ChargeTo(env, c)
	}
}

// New returns a service with the given configuration.
func New(cfg Config) *Service {
	return &Service{cfg: cfg, tables: make(map[string]map[string][]byte), rng: rand.New(rand.NewSource(cfg.Seed))}
}

// CreateTable creates an empty table (idempotent).
func (s *Service) CreateTable(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		s.tables[name] = make(map[string][]byte)
	}
}

// Put stores value under key. Like s3.put, the write becomes visible — and
// the completion signal fires — only after the write latency elapsed:
// waiters parked on the signal must not observe (or be woken by) a write
// the writer is still paying for.
func (s *Service) Put(env simenv.Env, table, key string, value []byte) error {
	if f, ok := s.cfg.Faults.Next(faults.OpDynamoPut); ok && f.Kind == faults.KindThrottle {
		return ErrThrottled
	}
	s.mu.Lock()
	_, ok := s.tables[table]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	s.cfg.Meter.Charge(pricing.LabelDynamoWrite, pricing.DynamoWrite)
	s.chargeTrace(env, obs.Cost{DynamoWrites: 1})
	s.sleep(env, s.cfg.WriteLatency)
	s.mu.Lock()
	t, ok := s.tables[table]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	t[key] = cp
	s.mu.Unlock()
	// Completion signal: wake pollers parked on this item's topic —
	// pipelined stage workers park on the ready marker this Put may be.
	simenv.BroadcastKey(env, "dynamo/"+table+"/"+key)
	return nil
}

// PutIf stores value under key only when the item's current state matches
// expect: nil expect requires the item to not exist; otherwise the stored
// value must equal expect byte-for-byte. The check and the store are atomic
// under the service lock and happen — like Put's write — after the write
// latency elapsed, so the condition is evaluated at the instant the write
// becomes visible. DynamoDB's conditional write, the primitive the driver's
// query-epoch fence increments through. A failed condition is billed like a
// write (DynamoDB charges failed conditional writes) and returns
// ErrConditionFailed.
func (s *Service) PutIf(env simenv.Env, table, key string, value, expect []byte) error {
	if f, ok := s.cfg.Faults.Next(faults.OpDynamoPutIf); ok && f.Kind == faults.KindThrottle {
		return ErrThrottled
	}
	s.mu.Lock()
	_, ok := s.tables[table]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	s.cfg.Meter.Charge(pricing.LabelDynamoWrite, pricing.DynamoWrite)
	s.chargeTrace(env, obs.Cost{DynamoWrites: 1})
	s.sleep(env, s.cfg.WriteLatency)
	s.mu.Lock()
	t, ok := s.tables[table]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	cur, exists := t[key]
	met := false
	if expect == nil {
		met = !exists
	} else {
		met = exists && bytes.Equal(cur, expect)
	}
	if met {
		cp := make([]byte, len(value))
		copy(cp, value)
		t[key] = cp
	}
	s.mu.Unlock()
	if !met {
		return fmt.Errorf("%w: %s/%s", ErrConditionFailed, table, key)
	}
	simenv.BroadcastKey(env, "dynamo/"+table+"/"+key)
	return nil
}

// Get returns the value under key.
func (s *Service) Get(env simenv.Env, table, key string) ([]byte, error) {
	if f, ok := s.cfg.Faults.Next(faults.OpDynamoGet); ok && f.Kind == faults.KindThrottle {
		return nil, ErrThrottled
	}
	s.mu.Lock()
	t, ok := s.tables[table]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	v, okKey := t[key]
	var cp []byte
	if okKey {
		cp = make([]byte, len(v))
		copy(cp, v)
	}
	s.mu.Unlock()
	s.cfg.Meter.Charge(pricing.LabelDynamoRead, pricing.DynamoRead)
	s.chargeTrace(env, obs.Cost{DynamoReads: 1})
	s.sleep(env, s.cfg.ReadLatency)
	if !okKey {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchItem, table, key)
	}
	return cp, nil
}

// Delete removes key (idempotent), billed as a write.
func (s *Service) Delete(env simenv.Env, table, key string) error {
	s.mu.Lock()
	t, ok := s.tables[table]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	delete(t, key)
	s.mu.Unlock()
	s.cfg.Meter.Charge(pricing.LabelDynamoWrite, pricing.DynamoWrite)
	s.chargeTrace(env, obs.Cost{DynamoWrites: 1})
	s.sleep(env, s.cfg.WriteLatency)
	return nil
}

// Item is a scan result row.
type Item struct {
	Key   string
	Value []byte
}

// Scan returns all items whose key starts with prefix, sorted by key.
// Billed as one read per returned item (approximating RCU accounting).
func (s *Service) Scan(env simenv.Env, table, prefix string) ([]Item, error) {
	s.mu.Lock()
	t, ok := s.tables[table]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	var out []Item
	for k, v := range t {
		if strings.HasPrefix(k, prefix) {
			cp := make([]byte, len(v))
			copy(cp, v)
			out = append(out, Item{Key: k, Value: cp})
		}
	}
	s.mu.Unlock()
	n := int64(len(out))
	if n == 0 {
		n = 1
	}
	s.cfg.Meter.ChargeN(pricing.LabelDynamoRead, n, pricing.USD(n)*pricing.DynamoRead)
	s.chargeTrace(env, obs.Cost{DynamoReads: n})
	s.sleep(env, s.cfg.ReadLatency)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (s *Service) sleep(env simenv.Env, d netmodel.Dist) {
	if d == nil {
		return
	}
	s.rngMu.Lock()
	v := d.Sample(s.rng)
	s.rngMu.Unlock()
	env.Sleep(v)
}
