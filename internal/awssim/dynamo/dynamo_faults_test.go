package dynamo

import (
	"errors"
	"testing"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
)

// TestInjectedThrottle: throttled requests are rejected unbilled and before
// any mutation, so a straightforward retry succeeds.
func TestInjectedThrottle(t *testing.T) {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpDynamoPut, Kind: faults.KindThrottle, Count: 1},
		{Op: faults.OpDynamoGet, Kind: faults.KindThrottle, Count: 1},
	}})
	s := New(Config{Meter: meter, Faults: inj})
	env := simenv.NewImmediate()
	s.CreateTable("t")

	err := s.Put(env, "t", "k", []byte("v"))
	if !errors.Is(err, ErrThrottled) || !errors.Is(err, faults.ErrThrottled) {
		t.Fatalf("first put err = %v, want throttled", err)
	}
	if got := meter.Count(pricing.LabelDynamoWrite); got != 0 {
		t.Errorf("throttled put billed %d writes, want 0", got)
	}
	if err := s.Put(env, "t", "k", []byte("v")); err != nil {
		t.Fatalf("retry put: %v", err)
	}

	if _, err := s.Get(env, "t", "k"); !errors.Is(err, faults.ErrThrottled) {
		t.Fatalf("first get err = %v, want throttled", err)
	}
	v, err := s.Get(env, "t", "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("retry get = %q, %v", v, err)
	}
}

// TestInjectedThrottlePutIfSafeToRetry: a throttled conditional write
// mutates nothing, so the retried CAS still sees the expected state.
func TestInjectedThrottlePutIfSafeToRetry(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpDynamoPutIf, Kind: faults.KindThrottle, Count: 1},
	}})
	s := New(Config{Faults: inj})
	env := simenv.NewImmediate()
	s.CreateTable("t")

	if err := s.PutIf(env, "t", "k", []byte("1"), nil); !errors.Is(err, faults.ErrThrottled) {
		t.Fatalf("first putif err = %v, want throttled", err)
	}
	if _, err := s.Get(env, "t", "k"); !errors.Is(err, ErrNoSuchItem) {
		t.Error("throttled PutIf created the item")
	}
	if err := s.PutIf(env, "t", "k", []byte("1"), nil); err != nil {
		t.Fatalf("retried putif: %v", err)
	}
	v, err := s.Get(env, "t", "k")
	if err != nil || string(v) != "1" {
		t.Fatalf("item = %q, %v", v, err)
	}
}
