package faults

import (
	"testing"
	"time"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{Seed: 42, Rules: []Rule{
		{Op: OpS3Get, Kind: KindTransient, Rate: 0.05},
		{Op: OpSQSSend, Kind: KindDuplicate, Rate: 0.1, Delay: 250 * time.Millisecond},
		{Op: OpLambda, Kind: KindCrashMidRun, Skip: 3, Count: 1, Delay: 2 * time.Second},
	}}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != p.Seed || len(got.Rules) != len(p.Rules) {
		t.Fatalf("round trip mangled plan: %+v", got)
	}
	for i := range p.Rules {
		if got.Rules[i] != p.Rules[i] {
			t.Errorf("rule %d = %+v, want %+v", i, got.Rules[i], p.Rules[i])
		}
	}
}

func TestParsePlanValidation(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"rules":[{"op":"","kind":"transient"}]}`)); err == nil {
		t.Error("accepted rule with empty op")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"op":"s3.Get","kind":""}]}`)); err == nil {
		t.Error("accepted rule with empty kind")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"op":"s3.Get","kind":"transient","rate":1.5}]}`)); err == nil {
		t.Error("accepted rate outside [0, 1]")
	}
	if _, err := ParsePlan([]byte(`not json`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestNilInjector(t *testing.T) {
	var inj *Injector
	if _, ok := inj.Next(OpS3Get); ok {
		t.Error("nil injector injected a fault")
	}
	if inj.Injected() != nil || inj.TotalInjected() != 0 {
		t.Error("nil injector reported injections")
	}
	if NewInjector(Plan{Seed: 7}) != nil {
		t.Error("empty-rule plan should yield a nil injector")
	}
}

// TestDeterministicReplay: two injectors built from the same plan make
// identical decisions over identical operation sequences.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 99, Rules: []Rule{
		{Op: OpS3Get, Kind: KindTransient, Rate: 0.3},
		{Op: OpSQSSend, Kind: KindDuplicate, Rate: 0.2, Delay: time.Second},
		{Op: OpDynamoPut, Kind: KindThrottle, Rate: 0.5},
	}}
	ops := []string{OpS3Get, OpSQSSend, OpS3Get, OpDynamoPut, OpS3Get, OpSQSSend, OpDynamoPut}
	a, b := NewInjector(plan), NewInjector(plan)
	for round := 0; round < 200; round++ {
		for _, op := range ops {
			fa, oka := a.Next(op)
			fb, okb := b.Next(op)
			if oka != okb || fa != fb {
				t.Fatalf("round %d op %s: %v/%v vs %v/%v", round, op, fa, oka, fb, okb)
			}
		}
	}
	if a.TotalInjected() == 0 {
		t.Error("plan with rate 0.3+ rules injected nothing over 1400 ops")
	}
}

// TestStreamIndependence: the decisions of one operation stream do not
// depend on how other streams are interleaved with it — each stream has its
// own counter and its own hash stream.
func TestStreamIndependence(t *testing.T) {
	plan := Plan{Seed: 5, Rules: []Rule{
		{Op: OpS3Get, Kind: KindTransient, Rate: 0.25},
		{Op: OpSQSReceive, Kind: KindTimeout, Rate: 0.25},
	}}
	solo := NewInjector(plan)
	var soloSeq []bool
	for i := 0; i < 500; i++ {
		_, ok := solo.Next(OpS3Get)
		soloSeq = append(soloSeq, ok)
	}
	mixed := NewInjector(plan)
	var mixedSeq []bool
	for i := 0; i < 500; i++ {
		mixed.Next(OpSQSReceive) // interleave another stream
		mixed.Next(OpSQSReceive)
		_, ok := mixed.Next(OpS3Get)
		mixedSeq = append(mixedSeq, ok)
	}
	for i := range soloSeq {
		if soloSeq[i] != mixedSeq[i] {
			t.Fatalf("s3.Get decision %d changed when sqs.Receive ops were interleaved", i)
		}
	}
}

func TestRateRoughlyHolds(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Rules: []Rule{{Op: OpS3Put, Kind: KindTransient, Rate: 0.2}}})
	fired := 0
	for i := 0; i < 5000; i++ {
		if _, ok := inj.Next(OpS3Put); ok {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Errorf("rate 0.2 fired %d/5000 times", fired)
	}
	if got := inj.Injected()["s3.Put/transient"]; got != fired {
		t.Errorf("Injected() = %d, want %d", got, fired)
	}
}

// TestSkipCountPinpoint: a rate-0 rule with Skip and Count fires on exactly
// the prescribed operations — the surgical "crash the 4th invocation" form.
func TestSkipCountPinpoint(t *testing.T) {
	inj := NewInjector(Plan{Rules: []Rule{
		{Op: OpLambda, Kind: KindCrash, Skip: 3, Count: 2},
	}})
	var fires []int
	for i := 0; i < 10; i++ {
		if _, ok := inj.Next(OpLambda); ok {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 4 {
		t.Errorf("fired at %v, want [3 4]", fires)
	}
}

// TestFirstMatchingRuleWins: overlapping rules resolve in plan order.
func TestFirstMatchingRuleWins(t *testing.T) {
	inj := NewInjector(Plan{Rules: []Rule{
		{Op: OpS3Get, Kind: KindSlowDown, Count: 1},
		{Op: OpS3Get, Kind: KindTransient},
	}})
	f, ok := inj.Next(OpS3Get)
	if !ok || f.Kind != KindSlowDown {
		t.Errorf("first op: %v/%v, want slowdown", f, ok)
	}
	f, ok = inj.Next(OpS3Get)
	if !ok || f.Kind != KindTransient {
		t.Errorf("second op: %v/%v, want transient (first rule exhausted)", f, ok)
	}
}
