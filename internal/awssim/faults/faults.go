// Package faults is the deterministic fault-injection layer of the simulated
// AWS substrate: every service consults an Injector once per operation and
// applies whatever fault the plan prescribes — transient 500s and request
// timeouts, S3 SlowDown storms, DynamoDB throttling, SQS duplicate delivery
// and delayed redelivery, Lambda crashes and cold-start spikes.
//
// Fault schedules are driven by a seeded, JSON-serializable Plan. Decisions
// are pure functions of (seed, rule, operation stream, per-stream counter):
// each operation stream ("s3.Put", "sqs.Receive", …) carries its own counter
// and its own hash-derived randomness, so adding a rule for one service never
// shifts another service's fault schedule, and a DES run — where operations
// are totally ordered by the kernel — replays a plan exactly. The same plan
// under the functional goroutine layer injects the same *rates* but not the
// same schedule (operation interleaving is up to the Go scheduler there).
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sentinel errors the services wrap their injected failures around. The
// resilience layer classifies all three as retryable: they model the
// transient server-side failures the paper's "aggressive timeouts and
// retries" (§5.5) exist for.
var (
	// ErrInternal is an injected internal server error (HTTP 500 class).
	ErrInternal = errors.New("injected internal error (500)")
	// ErrTimeout is an injected request timeout: the request was sent (and
	// billed) but the response never arrived.
	ErrTimeout = errors.New("injected request timeout")
	// ErrThrottled is an injected throughput-exceeded rejection (DynamoDB
	// ProvisionedThroughputExceededException class).
	ErrThrottled = errors.New("injected throughput exceeded")
)

// Kind names a fault class. Services interpret the kinds they understand and
// ignore the rest (a "duplicate" rule on an S3 stream never fires anything).
type Kind string

const (
	// KindTransient injects a retryable internal error (500). The request
	// reaches the service, so it is billed like any other request.
	KindTransient Kind = "transient"
	// KindTimeout injects a request timeout; billed (the request was made).
	KindTimeout Kind = "timeout"
	// KindSlowDown injects an S3 503 SlowDown as if the bucket's rate window
	// were exhausted — unbilled, exactly like an organic SlowDown.
	KindSlowDown Kind = "slowdown"
	// KindThrottle injects a DynamoDB throughput rejection — unbilled (AWS
	// does not charge throttled requests).
	KindThrottle Kind = "throttle"
	// KindDuplicate makes an SQS send enqueue the message twice — the
	// at-least-once semantics of real SQS. Delay, when set, is the extra
	// visibility delay of the second copy (delayed redelivery).
	KindDuplicate Kind = "duplicate"
	// KindCrash makes a Lambda invocation start its container and then die
	// before the handler runs. The invoker still sees a successful Invoke
	// (asynchronous invocation), the worker simply never reports.
	KindCrash Kind = "crash"
	// KindCrashMidRun kills a Lambda worker Delay of virtual time into its
	// handler: partial work (S3 writes, child invocations) survives, the
	// completion message never arrives, and the container is not reused.
	KindCrashMidRun Kind = "crash-mid-run"
	// KindColdSpike adds Delay to an invocation's container start — the
	// occasional multi-second cold start of real Lambda.
	KindColdSpike Kind = "cold-spike"
)

// Canonical operation-stream names. Services pass these to Injector.Next;
// plans match on them.
const (
	OpS3Get       = "s3.Get" // Get, GetRange and Head share one stream
	OpS3Put       = "s3.Put"
	OpS3List      = "s3.List"
	OpS3Delete    = "s3.Delete"
	OpSQSSend     = "sqs.Send"
	OpSQSReceive  = "sqs.Receive"
	OpDynamoGet   = "dynamo.Get"
	OpDynamoPut   = "dynamo.Put"
	OpDynamoPutIf = "dynamo.PutIf"
	OpLambda      = "lambda.Invoke"
)

// Rule prescribes faults for one operation stream. A rule fires either
// probabilistically (Rate in (0, 1]: each eligible operation faults with
// that probability, decided by a seeded hash of the stream counter) or
// deterministically (Rate 0: every eligible operation faults) — the latter,
// bounded by Count and offset by Skip, pinpoints a single operation ("crash
// the 7th invocation") for surgical chaos tests.
type Rule struct {
	// Op is the operation stream the rule applies to (OpS3Get, …).
	Op string `json:"op"`
	// Kind is the fault to inject.
	Kind Kind `json:"kind"`
	// Rate is the per-operation fault probability; 0 means "always" (use
	// Count to bound it).
	Rate float64 `json:"rate,omitempty"`
	// Skip exempts the stream's first Skip operations.
	Skip int `json:"skip,omitempty"`
	// Count bounds how many times the rule fires in total (0 = unlimited).
	Count int `json:"count,omitempty"`
	// Delay parameterizes kinds that carry a duration: the redelivery delay
	// of a duplicate, the time-to-crash of crash-mid-run, the extra start
	// delay of a cold spike. JSON-encoded as integer nanoseconds.
	Delay time.Duration `json:"delay,omitempty"`
}

// Plan is a complete, replayable fault schedule: a seed plus rules. The zero
// Plan injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ParsePlan decodes a JSON plan.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing plan: %w", err)
	}
	for i, r := range p.Rules {
		if r.Op == "" || r.Kind == "" {
			return Plan{}, fmt.Errorf("faults: rule %d missing op or kind", i)
		}
		if r.Rate < 0 || r.Rate > 1 {
			return Plan{}, fmt.Errorf("faults: rule %d rate %v outside [0, 1]", i, r.Rate)
		}
	}
	return p, nil
}

// Marshal encodes the plan as JSON.
func (p Plan) Marshal() ([]byte, error) { return json.Marshal(p) }

// Fault is one injected fault decision.
type Fault struct {
	Kind  Kind
	Delay time.Duration
}

// Injector evaluates a Plan operation by operation. A nil Injector is valid
// and injects nothing, so services hold one unconditionally.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	counts map[string]int // operations seen per stream
	fired  []int          // fires per rule (Count bookkeeping)
	stats  map[string]int // injected faults per "op/kind"
}

// NewInjector returns an injector for the plan. A plan with no rules yields
// a nil injector (the explicit "no faults" case costs nothing per op).
func NewInjector(plan Plan) *Injector {
	if len(plan.Rules) == 0 {
		return nil
	}
	return &Injector{
		plan:   plan,
		counts: make(map[string]int),
		fired:  make([]int, len(plan.Rules)),
		stats:  make(map[string]int),
	}
}

// Next consults the plan for the next operation of the op stream. It returns
// the fault to inject, if any; when several rules would fire on the same
// operation, the first matching rule in plan order wins.
func (i *Injector) Next(op string) (Fault, bool) {
	if i == nil {
		return Fault{}, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.counts[op]
	i.counts[op]++
	for ri, r := range i.plan.Rules {
		if r.Op != op || n < r.Skip {
			continue
		}
		if r.Count > 0 && i.fired[ri] >= r.Count {
			continue
		}
		if r.Rate > 0 && roll(i.plan.Seed, ri, op, n) >= r.Rate {
			continue
		}
		i.fired[ri]++
		i.stats[op+"/"+string(r.Kind)]++
		return Fault{Kind: r.Kind, Delay: r.Delay}, true
	}
	return Fault{}, false
}

// Injected returns the number of faults injected so far, keyed "op/kind".
func (i *Injector) Injected() map[string]int {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[string]int, len(i.stats))
	for k, v := range i.stats {
		out[k] = v
	}
	return out
}

// TotalInjected returns the total number of injected faults.
func (i *Injector) TotalInjected() int {
	total := 0
	for _, v := range i.Injected() {
		total += v
	}
	return total
}

// String summarizes injected fault counts, sorted by key.
func (i *Injector) String() string {
	st := i.Injected()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%-28s %d\n", k, st[k])
	}
	return s
}

// roll derives the rule's fault probability draw for the n-th operation of
// the stream: a splitmix64 hash of (seed, rule, op, n) mapped to [0, 1).
// Independent per stream and per rule, so schedules compose without
// interference.
func roll(seed int64, rule int, op string, n int) float64 {
	h := splitmix64(uint64(seed) ^ 0x6c616d62616461) // "lambada"
	for _, c := range []byte(op) {
		h = splitmix64(h ^ uint64(c))
	}
	h = splitmix64(h ^ uint64(rule)<<40 ^ uint64(n))
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
