package lambdasvc

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
)

func TestCreateFunctionValidation(t *testing.T) {
	s := New(Config{}, &GoRuntime{})
	if err := s.CreateFunction("f", 64, time.Minute, nil); err == nil {
		t.Error("accepted 64 MiB function")
	}
	if err := s.CreateFunction("f", 4096, time.Minute, nil); err == nil {
		t.Error("accepted 4096 MiB function")
	}
	if err := s.CreateFunction("f", 1792, time.Minute, nil); err != nil {
		t.Errorf("rejected valid function: %v", err)
	}
}

func TestInvokeRunsHandlerGoRuntime(t *testing.T) {
	rt := &GoRuntime{}
	s := New(Config{}, rt)
	var ran atomic.Int32
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, payload []byte) error {
		if string(payload) != "hi" {
			t.Errorf("payload = %q", payload)
		}
		if ctx.WorkerID != 7 {
			t.Errorf("worker id = %d", ctx.WorkerID)
		}
		ran.Add(1)
		return nil
	})
	env := simenv.NewImmediate()
	if err := s.Invoke(env, "f", []byte("hi"), InvokeOptions{WorkerID: 7}); err != nil {
		t.Fatal(err)
	}
	rt.WaitIdle()
	if ran.Load() != 1 {
		t.Error("handler did not run")
	}
}

func TestInvokeMissingFunction(t *testing.T) {
	s := New(Config{}, &GoRuntime{})
	err := s.Invoke(simenv.NewImmediate(), "nope", nil, InvokeOptions{})
	if !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	k := simclock.New()
	s := New(Config{ConcurrencyLimit: 2}, SimRuntime{K: k})
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		ctx.Env.Sleep(time.Second)
		return nil
	})
	var rejected int
	k.Go("driver", func(p *simclock.Proc) {
		for i := 0; i < 5; i++ {
			if err := s.Invoke(p, "f", nil, InvokeOptions{WorkerID: i}); errors.Is(err, ErrTooManyRequests) {
				rejected++
			}
		}
	})
	k.Run()
	if rejected != 3 {
		t.Errorf("rejected = %d, want 3", rejected)
	}
	if s.PeakConcurrency() != 2 {
		t.Errorf("peak = %d, want 2", s.PeakConcurrency())
	}
}

func TestColdWarmAccounting(t *testing.T) {
	k := simclock.New()
	cfg := Config{
		ColdStart: netmodel.Constant(250 * time.Millisecond),
		WarmStart: netmodel.Constant(10 * time.Millisecond),
	}
	s := New(cfg, SimRuntime{K: k})
	var startTimes []time.Duration
	var colds []bool
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		startTimes = append(startTimes, ctx.Env.Now())
		colds = append(colds, ctx.Cold)
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) {
		s.Invoke(p, "f", nil, InvokeOptions{}) // cold
		p.Sleep(time.Second)
		s.Invoke(p, "f", nil, InvokeOptions{}) // warm (container returned)
	})
	k.Run()
	if len(colds) != 2 || !colds[0] || colds[1] {
		t.Fatalf("cold flags = %v, want [true false]", colds)
	}
	total, cold := s.Invocations()
	if total != 2 || cold != 1 {
		t.Errorf("invocations = %d/%d cold", total, cold)
	}
	if startTimes[0] != 250*time.Millisecond {
		t.Errorf("cold start at %v, want 250ms", startTimes[0])
	}
}

func TestWarmPrewarming(t *testing.T) {
	k := simclock.New()
	s := New(Config{ColdStart: netmodel.Constant(time.Second)}, SimRuntime{K: k})
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		if ctx.Cold {
			t.Error("expected warm invocation")
		}
		return nil
	})
	s.Warm("f", 1)
	k.Go("driver", func(p *simclock.Proc) {
		s.Invoke(p, "f", nil, InvokeOptions{})
	})
	k.Run()
	_, cold := s.Invocations()
	if cold != 0 {
		t.Errorf("cold = %d", cold)
	}
}

func TestBillingGBSeconds(t *testing.T) {
	meter := pricing.NewCostMeter()
	k := simclock.New()
	s := New(Config{Meter: meter}, SimRuntime{K: k})
	s.CreateFunction("f", 2048, time.Minute, func(ctx *Ctx, _ []byte) error {
		ctx.Env.Sleep(10 * time.Second)
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) { s.Invoke(p, "f", nil, InvokeOptions{}) })
	k.Run()
	got := float64(meter.Get(pricing.LabelLambdaDuration))
	want := 10 * 3.33334e-5 // §4.4.4: 2 GiB worker = $3.3e-5/s
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("duration cost = %v, want ~%v", got, want)
	}
	if meter.Count(pricing.LabelLambdaRequests) != 1 {
		t.Error("missing request charge")
	}
}

func TestTimeoutReported(t *testing.T) {
	k := simclock.New()
	s := New(Config{}, SimRuntime{K: k})
	s.CreateFunction("f", 1792, time.Second, func(ctx *Ctx, _ []byte) error {
		ctx.Env.Sleep(time.Minute)
		return nil
	})
	var gotErr error
	k.Go("driver", func(p *simclock.Proc) {
		s.Invoke(p, "f", nil, InvokeOptions{OnDone: func(_ simenv.Env, err error) { gotErr = err }})
	})
	k.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Errorf("err = %v, want timeout", gotErr)
	}
}

func TestComputeScalesWithMemory(t *testing.T) {
	// Figure 4 end-to-end through the service: the same work takes 3.5x
	// longer on a 512 MiB function than on a 1792 MiB one.
	durations := map[int]time.Duration{}
	for _, mem := range []int{512, 1792} {
		k := simclock.New()
		s := New(Config{}, SimRuntime{K: k})
		var dur time.Duration
		s.CreateFunction("f", mem, time.Minute, func(ctx *Ctx, _ []byte) error {
			start := ctx.Env.Now()
			ctx.Compute(1.0, 1)
			dur = ctx.Env.Now() - start
			return nil
		})
		k.Go("driver", func(p *simclock.Proc) { s.Invoke(p, "f", nil, InvokeOptions{}) })
		k.Run()
		durations[mem] = dur
	}
	ratio := durations[512].Seconds() / durations[1792].Seconds()
	if math.Abs(ratio-3.5) > 0.05 {
		t.Errorf("512/1792 ratio = %.2f, want 3.5", ratio)
	}
}

func TestInvokeLatencyChargedToCaller(t *testing.T) {
	k := simclock.New()
	s := New(Config{InvokeLatency: netmodel.Constant(36 * time.Millisecond)}, SimRuntime{K: k})
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error { return nil })
	var elapsed time.Duration
	k.Go("driver", func(p *simclock.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			s.Invoke(p, "f", nil, InvokeOptions{})
		}
		elapsed = p.Now() - start
	})
	k.Run()
	if want := 360 * time.Millisecond; elapsed != want {
		t.Errorf("10 sequential invokes took %v, want %v", elapsed, want)
	}
}

func TestManyWorkersSimRuntime(t *testing.T) {
	k := simclock.New()
	s := New(Config{}, SimRuntime{K: k})
	var count int
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		ctx.Env.Sleep(time.Second)
		count++
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) {
		for i := 0; i < 1000; i++ {
			if err := s.Invoke(p, "f", nil, InvokeOptions{WorkerID: i}); err != nil {
				t.Errorf("invoke %d: %v", i, err)
				return
			}
		}
	})
	k.Run()
	if count != 1000 {
		t.Errorf("count = %d", count)
	}
	if s.Running() != 0 {
		t.Errorf("running = %d after completion", s.Running())
	}
}
