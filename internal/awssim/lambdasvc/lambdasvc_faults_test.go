package lambdasvc

import (
	"testing"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/simenv"
	"lambada/internal/simclock"
)

// TestInjectedCrashOnInvoke: the container starts and dies before the
// handler runs. The invoker sees a successful Invoke (asynchronous), no
// completion callback fires, and the container does not join the warm pool.
func TestInjectedCrashOnInvoke(t *testing.T) {
	k := simclock.New()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpLambda, Kind: faults.KindCrash, Count: 1},
	}})
	s := New(Config{Faults: inj}, SimRuntime{K: k})
	ran, done := 0, 0
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		ran++
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) {
		opts := InvokeOptions{OnDone: func(simenv.Env, error) { done++ }}
		if err := s.Invoke(p, "f", nil, opts); err != nil {
			t.Errorf("crashed invocation returned error to invoker: %v", err)
		}
		if err := s.Invoke(p, "f", nil, opts); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if ran != 1 {
		t.Errorf("handler ran %d times, want 1 (first invocation crashed)", ran)
	}
	if done != 1 {
		t.Errorf("OnDone fired %d times, want 1", done)
	}
	if s.Running() != 0 {
		t.Errorf("running = %d after crash, want 0 (slot released)", s.Running())
	}
	if total, cold := s.Invocations(); total != 2 || cold != 2 {
		// The crashed container never joined the warm pool, so the second
		// invocation is cold again.
		t.Errorf("invocations = %d/%d cold, want 2/2", total, cold)
	}
}

// TestInjectedCrashMidRun: the worker dies Delay into its handler — work
// before the crash instant survives, work after never happens, and the
// container is not reused.
func TestInjectedCrashMidRun(t *testing.T) {
	k := simclock.New()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpLambda, Kind: faults.KindCrashMidRun, Delay: 3 * time.Second, Count: 1},
	}})
	s := New(Config{Faults: inj}, SimRuntime{K: k})
	var before, after, done int
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		ctx.Env.Sleep(time.Second)
		before++ // 1s in: still alive
		ctx.Env.Sleep(10 * time.Second)
		after++ // would be 11s in: the container died at 3s
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) {
		if err := s.Invoke(p, "f", nil, InvokeOptions{OnDone: func(simenv.Env, error) { done++ }}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if before != 1 || after != 0 {
		t.Errorf("before/after crash = %d/%d, want 1/0", before, after)
	}
	if done != 0 {
		t.Error("OnDone fired for a crashed worker")
	}
	if s.Running() != 0 {
		t.Errorf("running = %d, want 0", s.Running())
	}
	if k.Now() != 3*time.Second {
		t.Errorf("virtual end = %v, want 3s (partial run billed to the crash instant)", k.Now())
	}
}

// TestInjectedColdSpike delays the container start by Delay.
func TestInjectedColdSpike(t *testing.T) {
	k := simclock.New()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpLambda, Kind: faults.KindColdSpike, Delay: 5 * time.Second, Count: 1},
	}})
	s := New(Config{Faults: inj}, SimRuntime{K: k})
	var startedAt time.Duration
	s.CreateFunction("f", 1792, time.Minute, func(ctx *Ctx, _ []byte) error {
		startedAt = ctx.Env.Now()
		return nil
	})
	k.Go("driver", func(p *simclock.Proc) {
		if err := s.Invoke(p, "f", nil, InvokeOptions{}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if startedAt != 5*time.Second {
		t.Errorf("handler started at %v, want 5s (injected spike, zero base latencies)", startedAt)
	}
}
