// Package lambdasvc simulates AWS Lambda: function registration with a
// memory size that determines the CPU share (§4.1, Figure 4), cold and warm
// starts, a concurrency limit, invocation latencies (Table 1), and GB-second
// billing.
//
// Workers execute on a Runtime: either the deterministic DES kernel
// (performance experiments) or real goroutines (functional tests and
// examples).
package lambdasvc

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
	"lambada/internal/simclock"
)

// Errors returned by the service.
var (
	ErrNoSuchFunction  = errors.New("lambda: no such function")
	ErrTooManyRequests = errors.New("lambda: too many requests (concurrency limit)")
	ErrTimeout         = errors.New("lambda: function timed out")
)

// MaxMemoryMiB is the largest configurable function size in the era the
// paper measures.
const MaxMemoryMiB = 3008

// Handler is the worker entry point. The returned error is delivered to
// whatever completion callback the invoker registered.
type Handler func(ctx *Ctx, payload []byte) error

// Ctx is the per-invocation context handed to handlers.
type Ctx struct {
	Env       simenv.Env
	Function  string
	MemoryMiB int
	Cold      bool
	// WorkerID is a caller-assigned identifier carried in InvokeOptions.
	WorkerID int
	// Span is this invocation's trace span (0 when tracing is off).
	// Handlers tag it with application metadata (stage, attempt) and use
	// it as the parent for child invocations.
	Span obs.SpanID

	svc *Service
}

// Compute charges the time of oneVCPUSeconds of single-core work executed
// with the given number of threads on this function's CPU share.
func (c *Ctx) Compute(oneVCPUSeconds float64, threads int) {
	c.Env.Sleep(netmodel.ComputeTime(oneVCPUSeconds, c.MemoryMiB, threads))
}

// CPUShare returns the vCPU fraction of this function.
func (c *Ctx) CPUShare() float64 { return netmodel.CPUShare(c.MemoryMiB) }

// Runtime abstracts how worker bodies execute.
type Runtime interface {
	// Spawn starts fn; fn receives the environment the worker runs in.
	Spawn(name string, fn func(env simenv.Env))
	// WaitIdle blocks until all spawned work completed. On the DES runtime
	// this is a no-op (the kernel's Run drives completion).
	WaitIdle()
}

// SimRuntime executes workers as DES processes.
type SimRuntime struct{ K *simclock.Kernel }

// DES processes carry the kernel's completion signal, so services can wake
// pollers (simenv.Broadcast / simenv.WaitNotify) in both runtimes.
var _ simenv.Notifier = (*simclock.Proc)(nil)

// Spawn starts a DES process.
func (r SimRuntime) Spawn(name string, fn func(env simenv.Env)) {
	r.K.Go(name, func(p *simclock.Proc) { fn(p) })
}

// WaitIdle is a no-op; kernel.Run drives the simulation.
func (r SimRuntime) WaitIdle() {}

// GoRuntime executes workers as real goroutines, each with its own
// Immediate environment (modeled latencies accumulate without blocking).
type GoRuntime struct{ wg sync.WaitGroup }

// Spawn starts a goroutine.
func (r *GoRuntime) Spawn(name string, fn func(env simenv.Env)) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn(simenv.NewImmediate())
	}()
}

// WaitIdle blocks until all spawned goroutines returned.
func (r *GoRuntime) WaitIdle() { r.wg.Wait() }

// Config controls service behaviour. The zero value gives instant starts,
// no concurrency limit, and no billing.
type Config struct {
	// ConcurrencyLimit is the maximum number of concurrently running
	// instances (AWS default: 1000; the paper raised it via support
	// ticket). Zero disables the limit.
	ConcurrencyLimit int
	// ColdStart is the extra delay of a cold container start
	// (dependency-layer load etc.). Nil means zero.
	ColdStart netmodel.Dist
	// WarmStart is the start delay of a warm container. Nil means zero.
	WarmStart netmodel.Dist
	// InvokeLatency is the round trip of one Invoke API call charged to
	// the caller. Nil means zero.
	InvokeLatency netmodel.Dist
	// Meter receives duration and request charges.
	Meter *pricing.CostMeter
	// Seed seeds latency sampling.
	Seed int64

	// Faults injects deterministic failures per invocation: crash-on-invoke
	// (the container starts and dies before the handler runs), crash-mid-run
	// (the worker dies Delay of virtual time into its handler; partial work
	// survives and partial duration is billed), and cold-start spikes (Delay
	// added to the container start). Nil injects nothing.
	Faults *faults.Injector
}

// DefaultAWSConfig returns calibration matching the paper: ~250 ms cold
// starts, ~15 ms warm starts, eu-region invoke latency.
func DefaultAWSConfig(meter *pricing.CostMeter, seed int64) Config {
	prof := netmodel.InvokeProfiles[netmodel.RegionEU]
	return Config{
		ConcurrencyLimit: 10000,
		ColdStart:        netmodel.Uniform{Min: 180 * time.Millisecond, Max: 320 * time.Millisecond},
		WarmStart:        netmodel.Uniform{Min: 8 * time.Millisecond, Max: 25 * time.Millisecond},
		InvokeLatency:    netmodel.Uniform{Min: prof.SingleLatency - 6*time.Millisecond, Max: prof.SingleLatency + 10*time.Millisecond},
		Meter:            meter,
		Seed:             seed,
	}
}

// Function is a registered function.
type Function struct {
	Name      string
	MemoryMiB int
	Timeout   time.Duration
	Handler   Handler

	warm int // warm container pool
}

// Service is a simulated Lambda endpoint.
type Service struct {
	mu      sync.Mutex
	cfg     Config
	rt      Runtime
	fns     map[string]*Function
	running int
	peak    int
	invokes int64
	colds   int64
	rng     *rand.Rand
	// trace receives invocation spans and billed-cost attribution; nil
	// (the default) traces nothing. Set before use via SetTracer.
	trace *obs.Tracer
	// billedMiBNs accumulates billed duration as exact memoryMiB·ns — the
	// integer counterpart of the meter's float GB-second dollars, so span
	// sums can be compared to service totals without rounding.
	billedMiBNs atomic.Int64
	// onSettle, when set, runs in the worker's environment every time a
	// container finishes — handler return, timeout and crash paths alike
	// (wherever the running gauge decrements). A resident session's
	// admission controller hooks its token release here so capacity frees
	// autonomously as containers die, never gated on a driver event loop.
	onSettle func(env simenv.Env)
}

// SetTracer installs the tracer invocation spans and cost attribution are
// recorded on. Must be set before traffic; nil disables tracing.
func (s *Service) SetTracer(tr *obs.Tracer) { s.trace = tr }

// SetCompletionHook installs fn, called in the worker's environment each
// time a container settles (normal return, timeout, or crash). One hook per
// service: a deployment hosts one resident session. Set before traffic;
// nil disables.
func (s *Service) SetCompletionHook(fn func(env simenv.Env)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSettle = fn
}

// BilledMiBNs returns the cumulative billed duration over all
// invocations, in exact memoryMiB·nanoseconds.
func (s *Service) BilledMiBNs() int64 { return s.billedMiBNs.Load() }

// New returns a service running workers on rt.
func New(cfg Config, rt Runtime) *Service {
	return &Service{
		cfg: cfg,
		rt:  rt,
		fns: make(map[string]*Function),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// CreateFunction registers (or replaces) a function. Replacing resets the
// warm pool — the paper creates a fresh function to force cold runs.
func (s *Service) CreateFunction(name string, memoryMiB int, timeout time.Duration, h Handler) error {
	if memoryMiB < 128 || memoryMiB > MaxMemoryMiB {
		return fmt.Errorf("lambda: memory %d MiB outside [128, %d]", memoryMiB, MaxMemoryMiB)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fns[name] = &Function{Name: name, MemoryMiB: memoryMiB, Timeout: timeout, Handler: h}
	return nil
}

// Warm pre-warms n containers of a function (models a prior hot run).
func (s *Service) Warm(name string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.fns[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFunction, name)
	}
	f.warm += n
	return nil
}

// InvokeOptions carries per-invocation metadata.
type InvokeOptions struct {
	WorkerID int
	// OnDone, if non-nil, runs in the worker's context after the handler
	// returns (success or error). Used by tests and the driver simulators.
	OnDone func(env simenv.Env, err error)
	// Pipelined skips the caller-side round-trip sleep: the caller issues
	// invocations from a pool of requester threads and paces itself (the
	// mass-invocation mode of §4.2). The worker still starts after the
	// request leg plus its container start delay.
	Pipelined bool
	// Span is the parent trace span for the invocation span (0 = root).
	Span obs.SpanID
}

// Invoke performs an asynchronous invocation: the caller pays the Invoke
// API round trip; the worker body is spawned on the runtime. It returns
// ErrTooManyRequests if the concurrency limit is reached.
func (s *Service) Invoke(env simenv.Env, name string, payload []byte, opts InvokeOptions) error {
	s.mu.Lock()
	f, ok := s.fns[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchFunction, name)
	}
	if s.cfg.ConcurrencyLimit > 0 && s.running >= s.cfg.ConcurrencyLimit {
		s.mu.Unlock()
		return ErrTooManyRequests
	}
	s.running++
	if s.running > s.peak {
		s.peak = s.running
	}
	s.invokes++
	cold := f.warm <= 0
	if !cold {
		f.warm--
	} else {
		s.colds++
	}
	var startDelay time.Duration
	if cold && s.cfg.ColdStart != nil {
		startDelay = s.cfg.ColdStart.Sample(s.rng)
	} else if !cold && s.cfg.WarmStart != nil {
		startDelay = s.cfg.WarmStart.Sample(s.rng)
	}
	var invokeRTT time.Duration
	if s.cfg.InvokeLatency != nil {
		invokeRTT = s.cfg.InvokeLatency.Sample(s.rng)
	}
	s.mu.Unlock()

	// Fault-plan decision for this invocation. The invoker never observes a
	// crash: asynchronous invocation means the Invoke API accepted the
	// request; the worker simply never reports. Recovery is the driver's job
	// (speculation, attempt re-invocation, MaxStageWait).
	fault, injectFault := s.cfg.Faults.Next(faults.OpLambda)
	if injectFault && fault.Kind == faults.KindColdSpike {
		startDelay += fault.Delay
	}
	crashOnStart := injectFault && fault.Kind == faults.KindCrash
	var crashAfter time.Duration
	if injectFault && fault.Kind == faults.KindCrashMidRun {
		if fault.Delay > 0 {
			crashAfter = fault.Delay
		} else {
			crashOnStart = true
		}
	}

	s.cfg.Meter.Charge(pricing.LabelLambdaRequests, pricing.LambdaPerRequest)
	// The caller pays for the Invoke request; the charge lands on
	// whatever span its environment is bound to (stage launch, retry op).
	tr := s.trace
	tr.ChargeTo(env, obs.Cost{LambdaInvokes: 1})

	// The worker begins after roughly half the caller's round trip (the
	// request leg) plus its container start delay.
	s.rt.Spawn(fmt.Sprintf("%s#%d", name, opts.WorkerID), func(wenv simenv.Env) {
		var span, startSpan obs.SpanID
		if tr.Enabled() {
			span = tr.StartSpan(obs.KindInvoke, f.Name, opts.Span, wenv.Now())
			tr.SetTag(span, "worker", strconv.Itoa(opts.WorkerID))
			if cold {
				tr.SetTag(span, "cold", "true")
			}
			startSpan = tr.StartSpan(obs.KindOp, "lambda.start", span, wenv.Now())
		}
		wenv.Sleep(invokeRTT/2 + startDelay)
		tr.EndSpan(startSpan, wenv.Now())
		if crashOnStart {
			// The container died before the handler ran: no handler duration
			// to bill, no completion callback, and the container is gone —
			// it does not rejoin the warm pool.
			tr.SetTag(span, "fault", "crash-on-invoke")
			tr.EndSpan(span, wenv.Now())
			s.mu.Lock()
			s.running--
			settle := s.onSettle
			s.mu.Unlock()
			if settle != nil {
				settle(wenv)
			}
			return
		}
		henv := wenv
		if crashAfter > 0 {
			henv = &crashEnv{inner: wenv, deadline: wenv.Now() + crashAfter}
		}
		// Bind the environment the handler (and through it every service
		// call) actually uses, so substrate charges attribute to this
		// invocation's subtree.
		tr.Bind(henv, span)
		ctx := &Ctx{Env: henv, Function: f.Name, MemoryMiB: f.MemoryMiB, Cold: cold, WorkerID: opts.WorkerID, Span: span, svc: s}
		begin := wenv.Now()
		crashed := false
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(crashPanic); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			return f.Handler(ctx, payload)
		}()
		dur := wenv.Now() - begin
		if f.Timeout > 0 && dur > f.Timeout {
			dur = f.Timeout
			err = fmt.Errorf("%w after %v", ErrTimeout, f.Timeout)
			tr.SetTag(span, "timeout", "true")
		}
		// A mid-run crash bills the partial duration: the work ran until the
		// instant the container died.
		s.cfg.Meter.Charge(pricing.LabelLambdaDuration, pricing.LambdaDuration(f.MemoryMiB, dur))
		billed := int64(f.MemoryMiB) * int64(dur)
		s.billedMiBNs.Add(billed)
		tr.AddCost(span, obs.Cost{LambdaMiBNs: billed})
		if crashed {
			tr.SetTag(span, "fault", "crash-mid-run")
		}
		// Release closes the invocation span and back-fills any op spans a
		// crash unwound past without popping.
		tr.Release(henv, wenv.Now())
		s.mu.Lock()
		s.running--
		if !crashed {
			f.warm++ // container stays warm for subsequent invocations
		}
		settle := s.onSettle
		s.mu.Unlock()
		if settle != nil {
			settle(wenv)
		}
		if !crashed && opts.OnDone != nil {
			opts.OnDone(wenv, err)
		}
	})

	// Caller pays the full API round trip unless it pipelines requests.
	if invokeRTT > 0 && !opts.Pipelined {
		env.Sleep(invokeRTT)
	}
	return nil
}

// Running returns the number of currently executing instances.
func (s *Service) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// PeakConcurrency returns the maximum simultaneous instances observed.
func (s *Service) PeakConcurrency() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Invocations returns total and cold invocation counts.
func (s *Service) Invocations() (total, cold int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invokes, s.colds
}

// Runtime returns the service's runtime.
func (s *Service) Runtime() Runtime { return s.rt }

// crashPanic is the private panic value a crashEnv raises when its worker's
// virtual time reaches the injected crash instant; the Invoke spawn body
// recovers it and treats the worker as dead.
type crashPanic struct{}

// crashEnv wraps a worker's environment and kills the worker — by panicking
// with crashPanic — once virtual time reaches deadline. All worker waiting
// funnels through Env (compute sleeps, service latencies, barrier parks), so
// clamping Sleep and WaitNotify to the deadline is exactly "the container
// died at that instant": whatever the worker had already written (S3 partial
// output, child invocations) survives, everything after never happens.
type crashEnv struct {
	inner    simenv.Env
	deadline time.Duration
}

func (c *crashEnv) Now() time.Duration { return c.inner.Now() }

func (c *crashEnv) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if c.inner.Now()+d >= c.deadline {
		if left := c.deadline - c.inner.Now(); left > 0 {
			c.inner.Sleep(left)
		}
		panic(crashPanic{})
	}
	c.inner.Sleep(d)
}

// NotifyAll and WaitNotify keep crashEnv a simenv.Notifier: both runtimes'
// worker environments are Notifiers, and barriers built on simenv.WaitNotify
// must keep parking on the completion signal (not degrade to fixed polls)
// under a crash plan — otherwise chaos runs would time differently than
// clean runs for reasons unrelated to the injected faults.
func (c *crashEnv) NotifyAll() { simenv.Broadcast(c.inner) }

func (c *crashEnv) NotifyKey(key string) { simenv.BroadcastKey(c.inner, key) }

func (c *crashEnv) WaitNotify(d time.Duration) bool {
	return c.WaitNotifyKey("", d)
}

func (c *crashEnv) WaitNotifyKey(topic string, d time.Duration) bool {
	now := c.inner.Now()
	if now >= c.deadline {
		panic(crashPanic{})
	}
	if now+d >= c.deadline {
		d = c.deadline - now
	}
	woke := simenv.WaitNotifyKey(c.inner, topic, d)
	if c.inner.Now() >= c.deadline {
		panic(crashPanic{})
	}
	return woke
}
