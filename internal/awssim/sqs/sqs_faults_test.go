package sqs

import (
	"errors"
	"testing"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
)

// TestInjectedDuplicateDelivery: a duplicate fault enqueues the message
// twice — the second copy hidden until now+Delay — while billing one Send.
func TestInjectedDuplicateDelivery(t *testing.T) {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpSQSSend, Kind: faults.KindDuplicate, Delay: 100 * time.Millisecond, Count: 1},
	}})
	s := New(Config{Meter: meter, Faults: inj})
	env := simenv.NewImmediate()
	s.CreateQueue("q")
	if err := s.Send(env, "q", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(pricing.LabelSQS); got != 1 {
		t.Errorf("send billed %d requests, want 1 (duplication is server-side)", got)
	}
	ms, err := s.Receive(env, "q", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("immediate receive = %d messages, want 1 (copy still hidden)", len(ms))
	}
	env.Sleep(150 * time.Millisecond)
	ms, err = s.Receive(env, "q", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || string(ms[0].Body) != "x" {
		t.Fatalf("post-delay receive = %v, want the delayed duplicate", ms)
	}
}

// TestInjectedDuplicateKeepsOrder: a hidden copy does not reorder messages
// behind it.
func TestInjectedDuplicateKeepsOrder(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpSQSSend, Kind: faults.KindDuplicate, Delay: time.Hour, Count: 1},
	}})
	s := New(Config{Faults: inj})
	env := simenv.NewImmediate()
	s.CreateQueue("q")
	s.Send(env, "q", []byte("a")) // duplicated, copy hidden for an hour
	s.Send(env, "q", []byte("b"))
	ms, _ := s.Receive(env, "q", 10)
	if len(ms) != 2 || string(ms[0].Body) != "a" || string(ms[1].Body) != "b" {
		t.Fatalf("receive = %d messages, want visible a,b in order", len(ms))
	}
	if s.Len("q") != 1 {
		t.Errorf("queue len = %d, want the hidden copy still queued", s.Len("q"))
	}
}

// TestInjectedTransientAndTimeout: transient errors and timeouts fail the
// request after billing it — the request reached the service.
func TestInjectedTransientAndTimeout(t *testing.T) {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpSQSSend, Kind: faults.KindTransient, Count: 1},
		{Op: faults.OpSQSReceive, Kind: faults.KindTimeout, Count: 1},
	}})
	s := New(Config{Meter: meter, Faults: inj})
	env := simenv.NewImmediate()
	s.CreateQueue("q")

	if err := s.Send(env, "q", []byte("x")); !errors.Is(err, faults.ErrInternal) {
		t.Fatalf("first send err = %v, want injected internal error", err)
	}
	if s.Len("q") != 0 {
		t.Error("failed send enqueued a message")
	}
	if err := s.Send(env, "q", []byte("x")); err != nil {
		t.Fatalf("second send: %v", err)
	}
	if _, err := s.Receive(env, "q", 10); !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("first receive err = %v, want injected timeout", err)
	}
	ms, err := s.Receive(env, "q", 10)
	if err != nil || len(ms) != 1 {
		t.Fatalf("second receive = %v, %v", ms, err)
	}
	// 2 sends + 2 receives, all billed (failed ones included).
	if got := meter.Count(pricing.LabelSQS); got != 4 {
		t.Errorf("billed %d requests, want 4", got)
	}
}
