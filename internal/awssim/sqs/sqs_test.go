package sqs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/simclock"
)

func TestSendReceiveFIFO(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateQueue("q")
	for i := 0; i < 3; i++ {
		if err := s.Send(env, "q", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := s.Receive(env, "q", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d messages", len(ms))
	}
	for i, m := range ms {
		if m.Body[0] != byte(i) {
			t.Errorf("message %d = %v", i, m.Body)
		}
	}
	if s.Len("q") != 0 {
		t.Error("queue not drained")
	}
}

func TestReceiveBatchCap(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	s.CreateQueue("q")
	for i := 0; i < 15; i++ {
		s.Send(env, "q", []byte("m"))
	}
	ms, _ := s.Receive(env, "q", 100)
	if len(ms) != 10 {
		t.Errorf("batch = %d, want capped at 10", len(ms))
	}
}

func TestMissingQueue(t *testing.T) {
	s := New(Config{})
	env := simenv.NewImmediate()
	if err := s.Send(env, "nope", nil); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("send err = %v", err)
	}
	if _, err := s.Receive(env, "nope", 1); !errors.Is(err, ErrNoSuchQueue) {
		t.Errorf("receive err = %v", err)
	}
}

func TestPricing(t *testing.T) {
	meter := pricing.NewCostMeter()
	s := New(Config{Meter: meter})
	env := simenv.NewImmediate()
	s.CreateQueue("q")
	s.Send(env, "q", []byte("x"))
	s.Receive(env, "q", 1)
	s.Receive(env, "q", 1) // empty receive still billed
	if got := meter.Count(pricing.LabelSQS); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
}

func TestPollAllDriverPattern(t *testing.T) {
	// The driver polls the result queue until it has heard from all
	// workers (§3.3).
	s := New(Config{})
	k := simclock.New()
	s.CreateQueue("results")
	const workers = 50
	for i := 0; i < workers; i++ {
		i := i
		k.Go("worker", func(p *simclock.Proc) {
			p.Sleep(time.Duration(i%10+1) * 100 * time.Millisecond)
			s.Send(p, "results", []byte(fmt.Sprintf("worker-%d", i)))
		})
	}
	var got []Message
	var err error
	k.Go("driver", func(p *simclock.Proc) {
		got, err = s.PollAll(p, "results", workers, 50*time.Millisecond, time.Minute)
	})
	k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers {
		t.Errorf("got %d messages", len(got))
	}
}

// TestSendWakesImmediatePoller: a PollAll spinning on an Immediate env
// (huge virtual budget) must complete promptly in real time once workers
// Send — the completion signal wakes the poller instead of it riding out
// per-poll throttles.
func TestSendWakesImmediatePoller(t *testing.T) {
	s := New(Config{})
	s.CreateQueue("results")
	const workers = 20
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := simenv.NewImmediate() // each worker has its own clock
			env.Sleep(time.Duration(i+1) * 10 * time.Millisecond)
			s.Send(env, "results", []byte(fmt.Sprintf("worker-%d", i)))
		}(i)
	}
	start := time.Now()
	driverEnv := simenv.NewImmediate()
	got, err := s.PollAll(driverEnv, "results", workers, 25*time.Millisecond, 10*time.Minute)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers {
		t.Errorf("got %d messages", len(got))
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Errorf("poll of %d immediate-env sends took %v of real time", workers, real)
	}
}

func TestPollAllTimesOut(t *testing.T) {
	s := New(Config{})
	k := simclock.New()
	s.CreateQueue("results")
	var err error
	k.Go("driver", func(p *simclock.Proc) {
		_, err = s.PollAll(p, "results", 5, 10*time.Millisecond, 200*time.Millisecond)
	})
	k.Run()
	if err == nil {
		t.Error("expected timeout error")
	}
}

func TestSentAtRecordsVirtualTime(t *testing.T) {
	s := New(Config{})
	k := simclock.New()
	s.CreateQueue("q")
	k.Go("p", func(p *simclock.Proc) {
		p.Sleep(3 * time.Second)
		s.Send(p, "q", []byte("x"))
	})
	k.Run()
	env := simenv.NewImmediate()
	ms, _ := s.Receive(env, "q", 1)
	if len(ms) != 1 || ms[0].SentAt != 3*time.Second {
		t.Errorf("messages = %+v", ms)
	}
}
