// Package sqs simulates Amazon SQS: named queues with send and
// (non-blocking) receive plus per-request pricing. Lambada uses SQS as the
// result channel: every worker posts a success or error message, and the
// driver polls until it has heard back from all workers (§3.3).
//
// Receive is non-blocking by design; callers implement poll loops with
// env.Sleep so that both the DES kernel and the functional goroutine layer
// work with the same code.
package sqs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
)

// ErrNoSuchQueue is returned for operations on missing queues.
var ErrNoSuchQueue = errors.New("sqs: no such queue")

// Message is one queue entry.
type Message struct {
	Body []byte
	// SentAt is the virtual send time.
	SentAt time.Duration
	// VisibleAt hides the message from Receive until this virtual instant —
	// how an injected delayed redelivery parks its duplicate copy. Zero
	// means immediately visible.
	VisibleAt time.Duration
}

// Config controls latency and pricing. Zero value: free, instant.
type Config struct {
	// SendLatency and ReceiveLatency are per-request round trips.
	SendLatency    netmodel.Dist
	ReceiveLatency netmodel.Dist
	Meter          *pricing.CostMeter
	Seed           int64

	// Faults injects deterministic failures: duplicate delivery and delayed
	// redelivery on Send (real SQS is at-least-once), transient errors and
	// request timeouts on both Send and Receive. Nil injects nothing.
	Faults *faults.Injector
}

// DefaultAWSConfig returns typical intra-region SQS latencies.
func DefaultAWSConfig(meter *pricing.CostMeter, seed int64) Config {
	return Config{
		SendLatency:    netmodel.Uniform{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ReceiveLatency: netmodel.Uniform{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Meter:          meter,
		Seed:           seed,
	}
}

// Service is a simulated SQS endpoint, safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	cfg    Config
	queues map[string][]Message
	rng    *lockedRand
	// trace receives billed-request attribution (nil = off), charged
	// adjacent to every Meter.Charge.
	trace *obs.Tracer
}

// SetTracer installs the tracer billed requests are attributed to. Must be
// set before traffic; nil disables attribution.
func (s *Service) SetTracer(tr *obs.Tracer) { s.trace = tr }

func (s *Service) chargeTrace(env simenv.Env) {
	if s.trace != nil {
		s.trace.ChargeTo(env, obs.Cost{SQSRequests: 1})
	}
}

type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) sample(d netmodel.Dist) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return d.Sample(l.rng)
}

// New returns a service with the given configuration.
func New(cfg Config) *Service {
	return &Service{cfg: cfg, queues: make(map[string][]Message), rng: newLockedRand(cfg.Seed)}
}

// CreateQueue creates an empty queue (idempotent, free).
func (s *Service) CreateQueue(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; !ok {
		s.queues[name] = nil
	}
}

// DeleteQueue removes a queue and any messages still on it (idempotent,
// free — the real API bills deletes at noise level). A resident session
// runs each query over its own result queue and deletes it at query end so
// the deployment does not accumulate one queue per query ever run; a
// zombie worker posting to a deleted queue gets ErrNoSuchQueue, which is
// harmless — its real work is long done and its debris is swept anyway.
func (s *Service) DeleteQueue(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.queues, name)
}

// injected applies a fault-plan decision to a billed SQS request: transient
// errors and timeouts charge the request (it reached the service) and pay
// its latency before failing. Other kinds are handled by the caller.
func (s *Service) injected(env simenv.Env, f faults.Fault, lat netmodel.Dist) error {
	switch f.Kind {
	case faults.KindTransient:
		s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
		s.chargeTrace(env)
		s.sleep(env, lat)
		return fmt.Errorf("sqs: %w", faults.ErrInternal)
	case faults.KindTimeout:
		s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
		s.chargeTrace(env)
		s.sleep(env, lat)
		return fmt.Errorf("sqs: %w", faults.ErrTimeout)
	}
	return nil
}

// Send appends a message. Under an injected duplicate fault the message is
// enqueued twice — the at-least-once delivery of real SQS — with the second
// copy optionally hidden until now+Delay (delayed redelivery). One Send is
// one billed request regardless: the duplication is server-side.
func (s *Service) Send(env simenv.Env, queue string, body []byte) error {
	fault, injectFault := s.cfg.Faults.Next(faults.OpSQSSend)
	if injectFault {
		if err := s.injected(env, fault, s.cfg.SendLatency); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if _, ok := s.queues[queue]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchQueue, queue)
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	s.queues[queue] = append(s.queues[queue], Message{Body: cp, SentAt: env.Now()})
	if injectFault && fault.Kind == faults.KindDuplicate {
		s.queues[queue] = append(s.queues[queue], Message{Body: cp, SentAt: env.Now(), VisibleAt: env.Now() + fault.Delay})
	}
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
	s.chargeTrace(env)
	// Completion signal: wake pollers parked on this queue's topic — DES
	// processes in Proc.WaitNotifyKey and Immediate-env pollers blocked in
	// Sleep — so result collectors react to the message at its exact arrival
	// instant instead of on their next throttled poll tick, and collectors
	// of other queues stay parked.
	simenv.BroadcastKey(env, "sqs/"+queue)
	s.sleep(env, s.cfg.SendLatency)
	return nil
}

// Receive removes and returns up to max currently visible messages
// (possibly none); messages whose VisibleAt lies in the future stay queued
// in order. Each call is one billed request.
func (s *Service) Receive(env simenv.Env, queue string, max int) ([]Message, error) {
	if max < 1 {
		max = 1
	}
	if max > 10 {
		max = 10 // AWS caps batch receives at ten messages
	}
	if f, ok := s.cfg.Faults.Next(faults.OpSQSReceive); ok {
		if err := s.injected(env, f, s.cfg.ReceiveLatency); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	q, ok := s.queues[queue]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchQueue, queue)
	}
	now := env.Now()
	out := make([]Message, 0, max)
	rest := make([]Message, 0, len(q))
	for _, m := range q {
		if len(out) < max && m.VisibleAt <= now {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	s.queues[queue] = rest
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
	s.chargeTrace(env)
	s.sleep(env, s.cfg.ReceiveLatency)
	return out, nil
}

// PollAll receives until want messages arrived or maxWait virtual time
// passed, polling every poll.
func (s *Service) PollAll(env simenv.Env, queue string, want int, poll, maxWait time.Duration) ([]Message, error) {
	deadline := env.Now() + maxWait
	var got []Message
	for len(got) < want {
		ms, err := s.Receive(env, queue, 10)
		if err != nil {
			return got, err
		}
		got = append(got, ms...)
		if len(got) >= want {
			break
		}
		if env.Now() >= deadline {
			return got, fmt.Errorf("sqs: poll timeout with %d/%d messages", len(got), want)
		}
		env.Sleep(poll)
	}
	return got, nil
}

// Len returns the number of queued messages.
func (s *Service) Len(queue string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[queue])
}

func (s *Service) sleep(env simenv.Env, d netmodel.Dist) {
	if d == nil {
		return
	}
	env.Sleep(s.rng.sample(d))
}
