// Package sqs simulates Amazon SQS: named queues with send and
// (non-blocking) receive plus per-request pricing. Lambada uses SQS as the
// result channel: every worker posts a success or error message, and the
// driver polls until it has heard back from all workers (§3.3).
//
// Receive is non-blocking by design; callers implement poll loops with
// env.Sleep so that both the DES kernel and the functional goroutine layer
// work with the same code.
package sqs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
)

// ErrNoSuchQueue is returned for operations on missing queues.
var ErrNoSuchQueue = errors.New("sqs: no such queue")

// Message is one queue entry.
type Message struct {
	Body []byte
	// SentAt is the virtual send time.
	SentAt time.Duration
}

// Config controls latency and pricing. Zero value: free, instant.
type Config struct {
	// SendLatency and ReceiveLatency are per-request round trips.
	SendLatency    netmodel.Dist
	ReceiveLatency netmodel.Dist
	Meter          *pricing.CostMeter
	Seed           int64
}

// DefaultAWSConfig returns typical intra-region SQS latencies.
func DefaultAWSConfig(meter *pricing.CostMeter, seed int64) Config {
	return Config{
		SendLatency:    netmodel.Uniform{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		ReceiveLatency: netmodel.Uniform{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Meter:          meter,
		Seed:           seed,
	}
}

// Service is a simulated SQS endpoint, safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	cfg    Config
	queues map[string][]Message
	rng    *lockedRand
}

type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) sample(d netmodel.Dist) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return d.Sample(l.rng)
}

// New returns a service with the given configuration.
func New(cfg Config) *Service {
	return &Service{cfg: cfg, queues: make(map[string][]Message), rng: newLockedRand(cfg.Seed)}
}

// CreateQueue creates an empty queue (idempotent, free).
func (s *Service) CreateQueue(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; !ok {
		s.queues[name] = nil
	}
}

// Send appends a message.
func (s *Service) Send(env simenv.Env, queue string, body []byte) error {
	s.mu.Lock()
	if _, ok := s.queues[queue]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchQueue, queue)
	}
	cp := make([]byte, len(body))
	copy(cp, body)
	s.queues[queue] = append(s.queues[queue], Message{Body: cp, SentAt: env.Now()})
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
	// Completion signal: wake Immediate-env pollers blocked in Sleep so
	// result collectors react to the message now instead of on their next
	// throttled poll tick. DES processes are unaffected (their Sleep is
	// kernel-driven).
	simenv.Notify()
	s.sleep(env, s.cfg.SendLatency)
	return nil
}

// Receive removes and returns up to max messages (possibly none). Each call
// is one billed request.
func (s *Service) Receive(env simenv.Env, queue string, max int) ([]Message, error) {
	if max < 1 {
		max = 1
	}
	if max > 10 {
		max = 10 // AWS caps batch receives at ten messages
	}
	s.mu.Lock()
	q, ok := s.queues[queue]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchQueue, queue)
	}
	n := len(q)
	if n > max {
		n = max
	}
	out := make([]Message, n)
	copy(out, q[:n])
	s.queues[queue] = q[n:]
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelSQS, pricing.SQSPerRequest)
	s.sleep(env, s.cfg.ReceiveLatency)
	return out, nil
}

// PollAll receives until want messages arrived or maxWait virtual time
// passed, polling every poll.
func (s *Service) PollAll(env simenv.Env, queue string, want int, poll, maxWait time.Duration) ([]Message, error) {
	deadline := env.Now() + maxWait
	var got []Message
	for len(got) < want {
		ms, err := s.Receive(env, queue, 10)
		if err != nil {
			return got, err
		}
		got = append(got, ms...)
		if len(got) >= want {
			break
		}
		if env.Now() >= deadline {
			return got, fmt.Errorf("sqs: poll timeout with %d/%d messages", len(got), want)
		}
		env.Sleep(poll)
	}
	return got, nil
}

// Len returns the number of queued messages.
func (s *Service) Len(queue string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[queue])
}

func (s *Service) sleep(env simenv.Env, d netmodel.Dist) {
	if d == nil {
		return
	}
	env.Sleep(s.rng.sample(d))
}
