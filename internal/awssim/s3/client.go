package s3

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
	"lambada/internal/resilience"
)

// The organic SlowDown rejection is as retryable as any injected fault;
// register it so every layer classifying through resilience agrees.
func init() { resilience.RegisterRetryable(ErrSlowDown) }

// lockedRand is a seeded rand.Rand safe for concurrent use in the
// functional layer (the DES layer is single-threaded anyway).
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) sample(d netmodel.Dist) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return d.Sample(l.rng)
}

func (l *lockedRand) float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// Client is one worker's (or the driver's) view of S3. It owns the
// per-function ingress bandwidth shaper, so concurrent range reads by the
// same worker share its token bucket, reproducing the burst behaviour of
// Figure 6.
type Client struct {
	svc    *Service
	env    simenv.Env
	shaper *netmodel.TokenBucket
	net    netmodel.LambdaNet
	memMiB int

	// RetryBaseDelay and MaxRetries configure SlowDown/NoSuchKey retry
	// behaviour ("aggressive timeouts and retries", §5.5 footnote 17).
	RetryBaseDelay time.Duration
	MaxRetries     int
	// budget, when set, bounds the total retries this client may spend
	// across all operations (per-invocation scope).
	budget *resilience.Budget

	mu         sync.Mutex
	bytesRead  int64
	bytesWrite int64
	retries    int64

	// trace wraps every public operation in an op span (inherited from the
	// service's tracer at construction; nil = off). Op spans are created
	// only inside an already-bound span context (a query or invocation),
	// so setup traffic stays untraced.
	trace *obs.Tracer
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithShaper installs the per-function bandwidth model for a worker with
// the given memory size.
func WithShaper(net netmodel.LambdaNet, memoryMiB int) ClientOption {
	return func(c *Client) {
		c.net = net
		c.memMiB = memoryMiB
		c.shaper = net.NewBucket(memoryMiB)
	}
}

// WithRetry overrides retry configuration.
func WithRetry(base time.Duration, max int) ClientOption {
	return func(c *Client) {
		c.RetryBaseDelay = base
		c.MaxRetries = max
	}
}

// WithBudget installs a shared retry budget: once spent, further retryable
// errors surface as *resilience.ExhaustedError instead of being retried.
func WithBudget(b *resilience.Budget) ClientOption {
	return func(c *Client) { c.budget = b }
}

// NewClient returns a client bound to svc and env.
func NewClient(svc *Service, env simenv.Env, opts ...ClientOption) *Client {
	c := &Client{
		svc:            svc,
		env:            env,
		RetryBaseDelay: 25 * time.Millisecond,
		MaxRetries:     10,
		trace:          svc.trace,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// opSpan opens an op span under the span currently bound to the client's
// environment and binds it, so service-side charges land on it. Returns 0
// — and records nothing — when tracing is off or no span is bound.
func (c *Client) opSpan(name string) obs.SpanID {
	tr := c.trace
	if tr == nil {
		return 0
	}
	parent := tr.Current(c.env)
	if parent == 0 {
		return 0
	}
	sp := tr.StartSpan(obs.KindOp, name, parent, c.env.Now())
	tr.Bind(c.env, sp)
	return sp
}

// endOp closes an op span, tagging the retries it consumed and its
// outcome. Runs in a defer, so a worker crash mid-operation still closes
// the span at the crash instant.
func (c *Client) endOp(sp obs.SpanID, retriesBefore int64, err *error) {
	if sp == 0 {
		return
	}
	tr := c.trace
	if n := c.Retries() - retriesBefore; n > 0 {
		tr.SetTag(sp, "retries", strconv.FormatInt(n, 10))
	}
	if err != nil && *err != nil {
		if resilience.IsExhausted(*err) {
			tr.SetTag(sp, "outcome", "exhausted")
		} else {
			tr.SetTag(sp, "outcome", "error")
		}
	}
	tr.Pop(c.env)
	tr.EndSpan(sp, c.env.Now())
}

// Env returns the client's environment.
func (c *Client) Env() simenv.Env { return c.env }

// Service returns the underlying service.
func (c *Client) Service() *Service { return c.svc }

// BytesRead returns the total payload bytes downloaded by this client.
func (c *Client) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten returns the total payload bytes uploaded by this client.
func (c *Client) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWrite
}

// Retries returns how many SlowDown retries the client performed.
func (c *Client) Retries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// chargeTransfer sleeps for the shaped transfer time of n bytes using conns
// parallel connections. The shaper is guarded because the functional layer
// issues concurrent reads (column-chunk parallelism, double buffering) from
// one client.
func (c *Client) chargeTransfer(n int64, conns int) {
	if c.shaper == nil || n <= 0 {
		return
	}
	rate := c.net.RequestRate(conns, c.memMiB)
	c.mu.Lock()
	d := c.shaper.Transfer(c.env.Now(), n, rate)
	c.mu.Unlock()
	c.env.Sleep(d)
}

// retry runs op, backing off exponentially (with deterministic jitter) on
// every retryable error — SlowDown plus the injected transient faults of
// the chaos layer. Fatal errors pass through; exhausting MaxRetries or the
// retry budget returns a typed *resilience.ExhaustedError (its Unwrap keeps
// errors.Is working on the underlying sentinel). The backoff mechanics and
// jitter draws are unchanged from the original SlowDown-only retry, so
// fault-free runs replay byte-identically.
func (c *Client) retry(op func() error) error {
	delay := c.RetryBaseDelay
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || resilience.Classify(err) != resilience.ClassRetryable {
			return err
		}
		if attempt >= c.MaxRetries {
			return &resilience.ExhaustedError{Op: "s3", Attempts: attempt + 1, Last: err}
		}
		if !c.budget.Take() {
			return &resilience.ExhaustedError{Op: "s3", Attempts: attempt + 1, BudgetSpent: true, Last: err}
		}
		c.mu.Lock()
		c.retries++
		c.mu.Unlock()
		jitter := time.Duration(c.svc.rng.float64() * float64(delay))
		c.env.Sleep(delay + jitter)
		if delay < 2*time.Second {
			delay *= 2
		}
	}
}

// Put uploads data (shaped as one connection egress; AWS does not shape
// egress to S3 differently, so we reuse the ingress model symmetrically).
func (c *Client) Put(bucket, key string, data []byte) (err error) {
	defer c.endOp(c.opSpan("s3.put"), c.Retries(), &err)
	err = c.retry(func() error { return c.svc.Put(c.env, bucket, key, data) })
	if err == nil {
		c.chargeTransfer(int64(len(data)), 1)
		c.mu.Lock()
		c.bytesWrite += int64(len(data))
		c.mu.Unlock()
	}
	return err
}

// PutSynthetic uploads a size-only object, charging transfer time.
func (c *Client) PutSynthetic(bucket, key string, size int64) (err error) {
	defer c.endOp(c.opSpan("s3.put"), c.Retries(), &err)
	err = c.retry(func() error { return c.svc.PutSynthetic(c.env, bucket, key, size) })
	if err == nil {
		c.chargeTransfer(size, 1)
		c.mu.Lock()
		c.bytesWrite += size
		c.mu.Unlock()
	}
	return err
}

// Get downloads a whole object using conns parallel connections.
func (c *Client) Get(bucket, key string, conns int) (_ []byte, _ int64, err error) {
	defer c.endOp(c.opSpan("s3.get"), c.Retries(), &err)
	var data []byte
	var size int64
	err = c.retry(func() error {
		var e error
		data, size, e = c.svc.Get(c.env, bucket, key)
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	c.chargeTransfer(size, conns)
	c.mu.Lock()
	c.bytesRead += size
	c.mu.Unlock()
	return data, size, nil
}

// GetRange downloads object bytes [off, off+n) using conns connections.
func (c *Client) GetRange(bucket, key string, off, n int64, conns int) (_ []byte, _ int64, err error) {
	defer c.endOp(c.opSpan("s3.getrange"), c.Retries(), &err)
	var data []byte
	var got int64
	err = c.retry(func() error {
		var e error
		data, got, e = c.svc.GetRange(c.env, bucket, key, off, n)
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	c.chargeTransfer(got, conns)
	c.mu.Lock()
	c.bytesRead += got
	c.mu.Unlock()
	return data, got, nil
}

// Head returns the object size.
func (c *Client) Head(bucket, key string) (_ int64, err error) {
	defer c.endOp(c.opSpan("s3.head"), c.Retries(), &err)
	var size int64
	err = c.retry(func() error {
		var e error
		size, e = c.svc.Head(c.env, bucket, key)
		return e
	})
	return size, err
}

// List returns entries under prefix.
func (c *Client) List(bucket, prefix string) (_ []ListEntry, err error) {
	defer c.endOp(c.opSpan("s3.list"), c.Retries(), &err)
	var out []ListEntry
	err = c.retry(func() error {
		var e error
		out, e = c.svc.List(c.env, bucket, prefix)
		return e
	})
	return out, err
}

// Delete removes an object.
func (c *Client) Delete(bucket, key string) (err error) {
	defer c.endOp(c.opSpan("s3.delete"), c.Retries(), &err)
	err = c.retry(func() error { return c.svc.Delete(c.env, bucket, key) })
	return err
}

// DeleteBatch removes many objects through the batched DeleteObjects API —
// one round trip per 1000 keys.
func (c *Client) DeleteBatch(bucket string, keys []string) (err error) {
	if len(keys) == 0 {
		return nil
	}
	defer c.endOp(c.opSpan("s3.deletebatch"), c.Retries(), &err)
	err = c.retry(func() error { return c.svc.DeleteBatch(c.env, bucket, keys) })
	return err
}

// WaitFor polls until bucket/key exists (the receiver side of the exchange:
// "the receiver must repeat reading a file until that file exists", §4.4.1),
// up to maxWait of virtual time. It returns the object size.
func (c *Client) WaitFor(bucket, key string, poll, maxWait time.Duration) (int64, error) {
	deadline := c.env.Now() + maxWait
	for {
		size, err := c.Head(bucket, key)
		if err == nil {
			return size, nil
		}
		if !errors.Is(err, ErrNoSuchKey) {
			return 0, err
		}
		if c.env.Now()+poll > deadline {
			return 0, err
		}
		c.env.Sleep(poll)
	}
}
