// Package s3 simulates the Amazon S3 object store: buckets, whole-object and
// ranged GETs, PUT, LIST with prefix, and DELETE, with the two properties
// the Lambada paper's design revolves around:
//
//   - per-request pricing (GETs cheap, PUTs/LISTs expensive) charged to a
//     pricing.CostMeter, which drives the scan chunk-size trade-off (Fig. 7)
//     and the exchange-operator design (Table 2, Fig. 9);
//   - per-bucket request-rate limits with SlowDown throttling, which the
//     multi-bucket sharding trick of §4.4.1 bypasses.
//
// Transfer bandwidth is charged by the Client, which owns the per-function
// token-bucket shaper (§4.3.1).
package s3

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
)

// Errors returned by the service.
var (
	ErrNoSuchBucket = errors.New("s3: no such bucket")
	ErrNoSuchKey    = errors.New("s3: no such key")
	ErrSlowDown     = errors.New("s3: slow down (503): request rate exceeded")
	ErrBucketExists = errors.New("s3: bucket already exists")
	ErrInvalidRange = errors.New("s3: invalid range")
)

// Config controls service behaviour. The zero value gives an unlimited,
// zero-latency store suitable for functional tests.
type Config struct {
	// ReadsPerSecond and WritesPerSecond are per-bucket rate limits
	// (paper: 5500 reads/s and 3500 writes/s as of July 2018). Zero
	// disables limiting.
	ReadsPerSecond  float64
	WritesPerSecond float64

	// GetLatency, PutLatency and ListLatency are per-request first-byte
	// latencies. Nil means zero.
	GetLatency  netmodel.Dist
	PutLatency  netmodel.Dist
	ListLatency netmodel.Dist

	// Meter receives request charges. Nil disables cost accounting.
	Meter *pricing.CostMeter

	// Seed seeds the latency sampler.
	Seed int64

	// Faults injects deterministic failures (transient 500s, timeouts,
	// SlowDown storms) per operation. Nil injects nothing.
	Faults *faults.Injector
}

// DefaultAWSConfig returns the service limits and latencies the paper
// reports: 5.5k reads/s and 3.5k writes/s per bucket, ~30 ms round trips
// with a heavy lognormal tail.
func DefaultAWSConfig(meter *pricing.CostMeter, seed int64) Config {
	return Config{
		ReadsPerSecond:  5500,
		WritesPerSecond: 3500,
		GetLatency:      netmodel.Lognormal{Shift: 10 * time.Millisecond, Mu: 3.0, Sigma: 0.45, Scale: time.Millisecond},
		PutLatency:      netmodel.Lognormal{Shift: 12 * time.Millisecond, Mu: 3.2, Sigma: 0.55, Scale: time.Millisecond},
		ListLatency:     netmodel.Lognormal{Shift: 15 * time.Millisecond, Mu: 3.0, Sigma: 0.4, Scale: time.Millisecond},
		Meter:           meter,
		Seed:            seed,
	}
}

// Object is a stored object. Synthetic objects carry a size but no bytes;
// they back DES-scale experiments where object contents are irrelevant.
type Object struct {
	Key  string
	Size int64
	data []byte // nil for synthetic objects
}

// Synthetic reports whether the object carries no real bytes.
func (o *Object) Synthetic() bool { return o.data == nil && o.Size > 0 }

type bucket struct {
	objects map[string]*Object

	// Rate-limit windows (virtual time).
	readWindow  rateWindow
	writeWindow rateWindow

	// Request statistics.
	gets, puts, lists, deletes int64
}

type rateWindow struct {
	start time.Duration
	count float64
}

func (w *rateWindow) allow(now time.Duration, limit float64) bool {
	if limit <= 0 {
		return true
	}
	if now >= w.start+time.Second {
		w.start = now - (now-w.start)%time.Second
		w.count = 0
	}
	if w.count >= limit {
		return false
	}
	w.count++
	return true
}

// Service is a simulated S3 endpoint. It is safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	cfg     Config
	buckets map[string]*bucket
	rng     *lockedRand
	// readBytes totals the billed bytes served by Get/GetRange.
	readBytes atomic.Int64
	// trace receives billed-cost attribution (nil = off). Each chargeTrace
	// call sits adjacent to the matching Meter.Charge, so summing span
	// costs reproduces the meter movement exactly.
	trace *obs.Tracer
}

// SetTracer installs the tracer billed requests are attributed to. Must be
// set before traffic; nil disables attribution.
func (s *Service) SetTracer(tr *obs.Tracer) { s.trace = tr }

// chargeTrace attributes one billed request under label to the span bound
// to env's environment.
func (s *Service) chargeTrace(env simenv.Env, label string) {
	if s.trace == nil {
		return
	}
	var c obs.Cost
	switch label {
	case pricing.LabelS3Read:
		c.S3Get = 1
	case pricing.LabelS3Write:
		c.S3Put = 1
	case pricing.LabelS3List:
		c.S3List = 1
	default:
		return
	}
	s.trace.ChargeTo(env, c)
}

// New returns a service with the given configuration.
func New(cfg Config) *Service {
	return &Service{
		cfg:     cfg,
		buckets: make(map[string]*bucket),
		rng:     newLockedRand(cfg.Seed),
	}
}

// CreateBucket creates an empty bucket. Creating buckets is free and done at
// installation time (§4.4.1).
func (s *Service) CreateBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return ErrBucketExists
	}
	s.buckets[name] = &bucket{objects: make(map[string]*Object)}
	return nil
}

// MustCreateBucket creates a bucket, ignoring "already exists".
func (s *Service) MustCreateBucket(name string) {
	if err := s.CreateBucket(name); err != nil && !errors.Is(err, ErrBucketExists) {
		panic(err)
	}
}

// Buckets returns all bucket names, sorted.
func (s *Service) Buckets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.buckets))
	for n := range s.buckets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats reports request counts for one bucket.
type Stats struct {
	Gets, Puts, Lists, Deletes int64
}

// BucketStats returns request counters for a bucket.
func (s *Service) BucketStats(name string) (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %s", ErrNoSuchBucket, name)
	}
	return Stats{Gets: b.gets, Puts: b.puts, Lists: b.lists, Deletes: b.deletes}, nil
}

// TotalBytes returns the sum of object sizes in a bucket.
func (s *Service) TotalBytes(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return 0
	}
	var n int64
	for _, o := range b.objects {
		n += o.Size
	}
	return n
}

// injected applies a fault-plan decision to one request. An injected
// SlowDown returns unbilled and immediately, exactly like the organic
// rate-window rejection it mimics. Transient 500s and timeouts model
// requests that reached the service and failed there: they are billed (a
// charge label given) and pay the request latency before erring — so a
// chaos run's retry inflation is visible in the meter's request counts.
func (s *Service) injected(env simenv.Env, f faults.Fault, label string, price pricing.USD, lat netmodel.Dist) error {
	switch f.Kind {
	case faults.KindSlowDown:
		return ErrSlowDown
	case faults.KindTransient:
		if label != "" {
			s.cfg.Meter.Charge(label, price)
			s.chargeTrace(env, label)
		}
		s.sleepDist(env, lat)
		return fmt.Errorf("s3: %w", faults.ErrInternal)
	case faults.KindTimeout:
		if label != "" {
			s.cfg.Meter.Charge(label, price)
			s.chargeTrace(env, label)
		}
		s.sleepDist(env, lat)
		return fmt.Errorf("s3: %w", faults.ErrTimeout)
	}
	return nil
}

// put stores an object after rate-limit and latency accounting.
func (s *Service) put(env simenv.Env, bucketName, key string, obj *Object) error {
	if f, ok := s.cfg.Faults.Next(faults.OpS3Put); ok {
		if err := s.injected(env, f, pricing.LabelS3Write, pricing.S3Write, s.cfg.PutLatency); err != nil {
			return err
		}
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
	}
	if !b.writeWindow.allow(env.Now(), s.cfg.WritesPerSecond) {
		s.mu.Unlock()
		return ErrSlowDown
	}
	b.puts++
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelS3Write, pricing.S3Write)
	s.chargeTrace(env, pricing.LabelS3Write)
	s.sleepDist(env, s.cfg.PutLatency)

	s.mu.Lock()
	b.objects[key] = obj
	s.mu.Unlock()
	// Wake the waiters parked on this key's completion topic: the
	// exchange's receivers (WaitFor heads, List polls, commit-marker waits)
	// block on exactly this event — a sender's file appearing — so they
	// re-check on the signal instead of burning the fixed poll interval.
	// The topic is keyed by object key (bucket deliberately omitted: one
	// prefix subscription covers a boundary sharded across buckets), so a
	// hundred-sender fleet no longer wakes every waiter on every write.
	// The timed poll remains the fallback for waiters whose file never
	// comes.
	simenv.BroadcastKey(env, "s3/"+key)
	return nil
}

// Put stores real bytes under bucket/key.
func (s *Service) Put(env simenv.Env, bucketName, key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	return s.put(env, bucketName, key, &Object{Key: key, Size: int64(len(cp)), data: cp})
}

// PutSynthetic stores a size-only object for DES-scale experiments.
func (s *Service) PutSynthetic(env simenv.Env, bucketName, key string, size int64) error {
	return s.put(env, bucketName, key, &Object{Key: key, Size: size})
}

// Head returns object metadata without transferring data. Charged as a read.
func (s *Service) Head(env simenv.Env, bucketName, key string) (int64, error) {
	if f, ok := s.cfg.Faults.Next(faults.OpS3Get); ok {
		if err := s.injected(env, f, pricing.LabelS3Read, pricing.S3Read, s.cfg.GetLatency); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
	}
	if !b.readWindow.allow(env.Now(), s.cfg.ReadsPerSecond) {
		s.mu.Unlock()
		return 0, ErrSlowDown
	}
	b.gets++
	o, okKey := b.objects[key]
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelS3Read, pricing.S3Read)
	s.chargeTrace(env, pricing.LabelS3Read)
	s.sleepDist(env, s.cfg.GetLatency)
	if !okKey {
		return 0, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucketName, key)
	}
	return o.Size, nil
}

// get performs rate limiting, charging and latency for a read and returns
// the object.
func (s *Service) get(env simenv.Env, bucketName, key string) (*Object, error) {
	if f, ok := s.cfg.Faults.Next(faults.OpS3Get); ok {
		if err := s.injected(env, f, pricing.LabelS3Read, pricing.S3Read, s.cfg.GetLatency); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
	}
	if !b.readWindow.allow(env.Now(), s.cfg.ReadsPerSecond) {
		s.mu.Unlock()
		return nil, ErrSlowDown
	}
	b.gets++
	o, okKey := b.objects[key]
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelS3Read, pricing.S3Read)
	s.chargeTrace(env, pricing.LabelS3Read)
	s.sleepDist(env, s.cfg.GetLatency)
	if !okKey {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchKey, bucketName, key)
	}
	return o, nil
}

// Get returns the whole object's bytes (nil for synthetic objects) and size.
func (s *Service) Get(env simenv.Env, bucketName, key string) ([]byte, int64, error) {
	o, err := s.get(env, bucketName, key)
	if err != nil {
		return nil, 0, err
	}
	s.readBytes.Add(o.Size)
	if s.trace != nil {
		s.trace.ChargeTo(env, obs.Cost{S3ReadBytes: o.Size})
	}
	if o.data == nil {
		return nil, o.Size, nil
	}
	cp := make([]byte, len(o.data))
	copy(cp, o.data)
	return cp, o.Size, nil
}

// GetRange returns n bytes starting at off (HTTP Ranges semantics: a range
// starting beyond the object is invalid; one extending past the end is
// truncated). For synthetic objects it returns nil bytes and the truncated
// length.
func (s *Service) GetRange(env simenv.Env, bucketName, key string, off, n int64) ([]byte, int64, error) {
	if off < 0 || n < 0 {
		return nil, 0, ErrInvalidRange
	}
	o, err := s.get(env, bucketName, key)
	if err != nil {
		return nil, 0, err
	}
	if off >= o.Size {
		return nil, 0, fmt.Errorf("%w: offset %d beyond size %d", ErrInvalidRange, off, o.Size)
	}
	if off+n > o.Size {
		n = o.Size - off
	}
	s.readBytes.Add(n)
	if s.trace != nil {
		s.trace.ChargeTo(env, obs.Cost{S3ReadBytes: n})
	}
	if o.data == nil {
		return nil, n, nil
	}
	cp := make([]byte, n)
	copy(cp, o.data[off:off+n])
	return cp, n, nil
}

// ListEntry is one LIST result row.
type ListEntry struct {
	Key  string
	Size int64
}

// List returns entries whose key starts with prefix, sorted by key. Charged
// at the write price (§4.4.3). A single simulated LIST returns all matches
// (pagination is not modeled; one page holds 1000 keys on AWS, and the
// paper's exchange groups stay below that).
func (s *Service) List(env simenv.Env, bucketName, prefix string) ([]ListEntry, error) {
	if f, ok := s.cfg.Faults.Next(faults.OpS3List); ok {
		if err := s.injected(env, f, pricing.LabelS3List, pricing.S3List, s.cfg.ListLatency); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
	}
	if !b.readWindow.allow(env.Now(), s.cfg.ReadsPerSecond) {
		s.mu.Unlock()
		return nil, ErrSlowDown
	}
	b.lists++
	var out []ListEntry
	for k, o := range b.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, ListEntry{Key: k, Size: o.Size})
		}
	}
	s.mu.Unlock()

	s.cfg.Meter.Charge(pricing.LabelS3List, pricing.S3List)
	s.chargeTrace(env, pricing.LabelS3List)
	s.sleepDist(env, s.cfg.ListLatency)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete removes an object. Deletes are free on AWS; only latency applies.
func (s *Service) Delete(env simenv.Env, bucketName, key string) error {
	if f, ok := s.cfg.Faults.Next(faults.OpS3Delete); ok {
		if err := s.injected(env, f, "", 0, s.cfg.PutLatency); err != nil {
			return err
		}
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
	}
	b.deletes++
	delete(b.objects, key)
	s.mu.Unlock()
	s.sleepDist(env, s.cfg.PutLatency)
	return nil
}

// DeleteBatch removes many objects in pages of up to 1000 keys — the
// DeleteObjects API: one request round trip (one latency charge) per page
// instead of one per object, and still free like single deletes. The
// stale-drain collector sweeps boundary namespaces through it.
func (s *Service) DeleteBatch(env simenv.Env, bucketName string, keys []string) error {
	if f, ok := s.cfg.Faults.Next(faults.OpS3Delete); ok {
		if err := s.injected(env, f, "", 0, s.cfg.PutLatency); err != nil {
			return err
		}
	}
	const page = 1000
	for lo := 0; lo < len(keys); lo += page {
		hi := lo + page
		if hi > len(keys) {
			hi = len(keys)
		}
		s.mu.Lock()
		b, ok := s.buckets[bucketName]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNoSuchBucket, bucketName)
		}
		for _, k := range keys[lo:hi] {
			delete(b.objects, k)
		}
		b.deletes += int64(hi - lo)
		s.mu.Unlock()
		s.sleepDist(env, s.cfg.PutLatency)
	}
	return nil
}

func (s *Service) sleepDist(env simenv.Env, d netmodel.Dist) {
	if d == nil {
		return
	}
	env.Sleep(s.rng.sample(d))
}

// Meter returns the service's cost meter (may be nil).
func (s *Service) Meter() *pricing.CostMeter { return s.cfg.Meter }

// ReadBytes returns the total billed bytes served by Get/GetRange.
func (s *Service) ReadBytes() int64 { return s.readBytes.Load() }
