package s3

import (
	"errors"
	"testing"

	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/resilience"
)

// TestClientRetriesInjectedTransients: the client's retry loop absorbs
// injected 500s; each failed attempt is billed (it reached the service).
func TestClientRetriesInjectedTransients(t *testing.T) {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpS3Get, Kind: faults.KindTransient, Count: 2},
	}})
	svc := New(Config{Meter: meter, Faults: inj})
	svc.MustCreateBucket("b")
	env := simenv.NewImmediate()
	c := NewClient(svc, env)
	if err := c.Put("b", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.Get("b", "k", 1)
	if err != nil || string(data) != "payload" {
		t.Fatalf("get = %q, %v", data, err)
	}
	if c.Retries() != 2 {
		t.Errorf("client retries = %d, want 2", c.Retries())
	}
	if got := meter.Count(pricing.LabelS3Read); got != 3 {
		t.Errorf("billed %d reads, want 3 (2 failed + 1 success)", got)
	}
}

// TestClientRetriesInjectedSlowDown: an injected SlowDown storm behaves
// like the organic one — retried, unbilled.
func TestClientRetriesInjectedSlowDown(t *testing.T) {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpS3Put, Kind: faults.KindSlowDown, Count: 3},
	}})
	svc := New(Config{Meter: meter, Faults: inj})
	svc.MustCreateBucket("b")
	c := NewClient(svc, simenv.NewImmediate())
	if err := c.Put("b", "k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Retries() != 3 {
		t.Errorf("client retries = %d, want 3", c.Retries())
	}
	if got := meter.Count(pricing.LabelS3Write); got != 1 {
		t.Errorf("billed %d writes, want 1 (SlowDowns are unbilled)", got)
	}
}

// TestClientBudgetExhaustion: a spent retry budget surfaces as a typed
// ExhaustedError instead of retrying forever — the worker-side degradation
// path.
func TestClientBudgetExhaustion(t *testing.T) {
	inj := faults.NewInjector(faults.Plan{Rules: []faults.Rule{
		{Op: faults.OpS3Get, Kind: faults.KindTransient}, // every Get fails
	}})
	svc := New(Config{Faults: inj})
	svc.MustCreateBucket("b")
	c := NewClient(svc, simenv.NewImmediate(), WithBudget(resilience.NewBudget(2)))
	c.Put("b", "k", []byte("x"))
	_, _, err := c.Get("b", "k", 1)
	var ex *resilience.ExhaustedError
	if !errors.As(err, &ex) || !ex.BudgetSpent {
		t.Fatalf("err = %v, want budget-spent ExhaustedError", err)
	}
	if !resilience.Retryable(err) {
		t.Error("budget exhaustion should be retryable from a higher scope")
	}
}
