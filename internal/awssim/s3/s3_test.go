package s3

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
)

func newTestService(meter *pricing.CostMeter) *Service {
	return New(Config{Meter: meter})
}

func TestPutGetRoundTrip(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	data := []byte("hello lambada")
	if err := svc.Put(env, "b", "k", data); err != nil {
		t.Fatal(err)
	}
	got, size, err := svc.Get(env, "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || size != int64(len(data)) {
		t.Errorf("got %q size %d", got, size)
	}
}

func TestGetIsolatedFromCallerMutation(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	data := []byte("immutable")
	svc.Put(env, "b", "k", data)
	data[0] = 'X' // caller mutates its slice after Put
	got, _, _ := svc.Get(env, "b", "k")
	if string(got) != "immutable" {
		t.Error("Put did not copy data")
	}
	got[0] = 'Y' // caller mutates the returned slice
	got2, _, _ := svc.Get(env, "b", "k")
	if string(got2) != "immutable" {
		t.Error("Get did not copy data")
	}
}

func TestGetRangeSemantics(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	svc.Put(env, "b", "k", []byte("0123456789"))

	got, n, err := svc.GetRange(env, "b", "k", 2, 3)
	if err != nil || string(got) != "234" || n != 3 {
		t.Errorf("mid range: %q n=%d err=%v", got, n, err)
	}
	// Range extending past the end is truncated (HTTP Ranges behaviour).
	got, n, err = svc.GetRange(env, "b", "k", 8, 100)
	if err != nil || string(got) != "89" || n != 2 {
		t.Errorf("tail range: %q n=%d err=%v", got, n, err)
	}
	// Range starting past the end is invalid.
	if _, _, err = svc.GetRange(env, "b", "k", 10, 1); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("beyond-end range err = %v", err)
	}
	if _, _, err = svc.GetRange(env, "b", "k", -1, 1); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("negative offset err = %v", err)
	}
}

func TestMissingBucketAndKey(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	if _, _, err := svc.Get(env, "nope", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("missing bucket: %v", err)
	}
	svc.MustCreateBucket("b")
	if _, _, err := svc.Get(env, "b", "nope"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("missing key: %v", err)
	}
	if err := svc.CreateBucket("b"); !errors.Is(err, ErrBucketExists) {
		t.Errorf("duplicate bucket: %v", err)
	}
}

func TestListPrefixSorted(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	for _, k := range []string{"snd2/rcv1", "snd0/rcv1", "snd1/rcv1", "other/x"} {
		svc.Put(env, "b", k, []byte("x"))
	}
	got, err := svc.List(env, "b", "snd")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries", len(got))
	}
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("snd%d/rcv1", i)
		if got[i].Key != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].Key, want)
		}
	}
}

func TestDelete(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	svc.Put(env, "b", "k", []byte("x"))
	if err := svc.Delete(env, "b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Get(env, "b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("after delete: %v", err)
	}
}

func TestSyntheticObjects(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	svc.PutSynthetic(env, "b", "big", 5*netmodel.GiB)
	data, size, err := svc.Get(env, "b", "big")
	if err != nil || data != nil || size != 5*netmodel.GiB {
		t.Errorf("synthetic get: data=%v size=%d err=%v", data, size, err)
	}
	_, n, err := svc.GetRange(env, "b", "big", 4*netmodel.GiB, 2*netmodel.GiB)
	if err != nil || n != 1*netmodel.GiB {
		t.Errorf("synthetic range: n=%d err=%v", n, err)
	}
	if svc.TotalBytes("b") != 5*netmodel.GiB {
		t.Errorf("total bytes = %d", svc.TotalBytes("b"))
	}
}

func TestRequestPricing(t *testing.T) {
	meter := pricing.NewCostMeter()
	svc := newTestService(meter)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	svc.Put(env, "b", "k", []byte("x"))
	svc.Get(env, "b", "k")
	svc.Get(env, "b", "k")
	svc.List(env, "b", "")
	if got := meter.Count(pricing.LabelS3Write); got != 1 {
		t.Errorf("writes = %d", got)
	}
	if got := meter.Count(pricing.LabelS3Read); got != 2 {
		t.Errorf("reads = %d", got)
	}
	if got := meter.Count(pricing.LabelS3List); got != 1 {
		t.Errorf("lists = %d", got)
	}
	if got, want := meter.Get(pricing.LabelS3List), pricing.S3List; got != want {
		t.Errorf("list cost = %v, want %v (write price)", got, want)
	}
}

func TestRateLimitThrottlesWithinWindow(t *testing.T) {
	svc := New(Config{ReadsPerSecond: 10})
	env := simenv.NewImmediate() // time frozen at 0 → single window
	svc.MustCreateBucket("b")
	svc.Put(env, "b", "k", []byte("x"))
	throttled := 0
	for i := 0; i < 25; i++ {
		if _, _, err := svc.Get(env, "b", "k"); errors.Is(err, ErrSlowDown) {
			throttled++
		}
	}
	// Put consumed a write slot, not a read slot: exactly 10 reads pass.
	if throttled != 15 {
		t.Errorf("throttled = %d, want 15", throttled)
	}
}

func TestRateLimitWindowResets(t *testing.T) {
	svc := New(Config{ReadsPerSecond: 5})
	svc.MustCreateBucket("b")
	k := simclock.New()
	env := simenv.NewImmediate()
	svc.Put(env, "b", "k", []byte("x"))
	var errs, oks int
	k.Go("reader", func(p *simclock.Proc) {
		for i := 0; i < 20; i++ {
			if _, _, err := svc.Get(p, "b", "k"); err != nil {
				errs++
			} else {
				oks++
			}
			p.Sleep(100 * time.Millisecond) // 10 req/s against a 5/s limit
		}
	})
	k.Run()
	if oks < 9 || oks > 12 {
		t.Errorf("oks = %d (errs %d), want about half of 20", oks, errs)
	}
}

func TestPerBucketLimitsIndependent(t *testing.T) {
	// The multi-bucket sharding trick (§4.4.1): spreading requests over B
	// buckets multiplies the aggregate limit by B.
	svc := New(Config{ReadsPerSecond: 10})
	env := simenv.NewImmediate()
	for i := 0; i < 4; i++ {
		b := fmt.Sprintf("b%d", i)
		svc.MustCreateBucket(b)
		svc.Put(env, b, "k", []byte("x"))
	}
	ok := 0
	for i := 0; i < 40; i++ {
		b := fmt.Sprintf("b%d", i%4)
		if _, _, err := svc.Get(env, b, "k"); err == nil {
			ok++
		}
	}
	// 4 buckets × 10/s − 4 write slots used... writes and reads have
	// separate windows, so all 40 reads pass.
	if ok != 40 {
		t.Errorf("ok = %d, want 40 (sharded)", ok)
	}
}

func TestClientRetriesSlowDown(t *testing.T) {
	svc := New(Config{ReadsPerSecond: 2})
	svc.MustCreateBucket("b")
	k := simclock.New()
	im := simenv.NewImmediate()
	svc.Put(im, "b", "k", []byte("x"))
	var err error
	var got []byte
	k.Go("c", func(p *simclock.Proc) {
		c := NewClient(svc, p)
		for i := 0; i < 5; i++ { // 5 reads against a 2/s limit: retries kick in
			got, _, err = c.Get("b", "k", 1)
			if err != nil {
				return
			}
		}
	})
	k.Run()
	if err != nil {
		t.Fatalf("client failed despite retries: %v", err)
	}
	if string(got) != "x" {
		t.Errorf("got %q", got)
	}
}

func TestClientWaitFor(t *testing.T) {
	svc := newTestService(nil)
	svc.MustCreateBucket("b")
	k := simclock.New()
	var size int64
	var err error
	k.Go("receiver", func(p *simclock.Proc) {
		c := NewClient(svc, p)
		size, err = c.WaitFor("b", "late", 10*time.Millisecond, time.Minute)
	})
	k.Go("sender", func(p *simclock.Proc) {
		p.Sleep(300 * time.Millisecond)
		c := NewClient(svc, p)
		c.Put("b", "late", []byte("data!"))
	})
	end := k.Run()
	if err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
	if size != 5 {
		t.Errorf("size = %d", size)
	}
	if end < 300*time.Millisecond {
		t.Errorf("finished before the sender wrote: %v", end)
	}
}

func TestClientWaitForTimesOut(t *testing.T) {
	svc := newTestService(nil)
	svc.MustCreateBucket("b")
	k := simclock.New()
	var err error
	k.Go("receiver", func(p *simclock.Proc) {
		c := NewClient(svc, p)
		_, err = c.WaitFor("b", "never", 10*time.Millisecond, 100*time.Millisecond)
	})
	k.Run()
	if !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("err = %v, want NoSuchKey after timeout", err)
	}
}

func TestClientTransferTimeShaped(t *testing.T) {
	// A 1 GB download on a shaped client takes ~11 s of virtual time
	// (sustained 90 MiB/s) when the burst budget is exhausted first.
	svc := newTestService(nil)
	svc.MustCreateBucket("b")
	im := simenv.NewImmediate()
	svc.PutSynthetic(im, "b", "warm", 2*netmodel.GiB)
	svc.PutSynthetic(im, "b", "big", 1*netmodel.GB)
	k := simclock.New()
	var dur time.Duration
	k.Go("w", func(p *simclock.Proc) {
		c := NewClient(svc, p, WithShaper(netmodel.DefaultLambdaNet(), 2048))
		c.Get("b", "warm", 4) // drain the burst budget
		start := p.Now()
		c.Get("b", "big", 4)
		dur = p.Now() - start
	})
	k.Run()
	bw := float64(netmodel.GB) / dur.Seconds() / netmodel.MiB
	if bw < 80 || bw > 100 {
		t.Errorf("post-burst bandwidth = %.0f MiB/s, want ~90", bw)
	}
}

func TestBucketStatsAndBuckets(t *testing.T) {
	svc := newTestService(nil)
	env := simenv.NewImmediate()
	svc.MustCreateBucket("z")
	svc.MustCreateBucket("a")
	svc.Put(env, "a", "k", []byte("x"))
	svc.Get(env, "a", "k")
	svc.List(env, "a", "")
	svc.Delete(env, "a", "k")
	st, err := svc.BucketStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 || st.Gets != 1 || st.Lists != 1 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}
	bs := svc.Buckets()
	if len(bs) != 2 || bs[0] != "a" || bs[1] != "z" {
		t.Errorf("buckets = %v", bs)
	}
}

// Property: any sequence of puts followed by a full-object get returns the
// last value written.
func TestPropertyLastWriteWins(t *testing.T) {
	f := func(vals [][]byte) bool {
		if len(vals) == 0 {
			return true
		}
		svc := newTestService(nil)
		env := simenv.NewImmediate()
		svc.MustCreateBucket("b")
		for _, v := range vals {
			if err := svc.Put(env, "b", "k", v); err != nil {
				return false
			}
		}
		got, _, err := svc.Get(env, "b", "k")
		return err == nil && bytes.Equal(got, vals[len(vals)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: concatenating chunked range reads of any chunk size reproduces
// the object exactly — the invariant the chunked scan operator relies on.
func TestPropertyChunkedRangesReassemble(t *testing.T) {
	f := func(data []byte, chunkRaw uint8) bool {
		svc := newTestService(nil)
		env := simenv.NewImmediate()
		svc.MustCreateBucket("b")
		if err := svc.Put(env, "b", "k", data); err != nil {
			return false
		}
		chunk := int64(chunkRaw%32) + 1
		var out []byte
		for off := int64(0); off < int64(len(data)); off += chunk {
			part, _, err := svc.GetRange(env, "b", "k", off, chunk)
			if err != nil {
				return false
			}
			out = append(out, part...)
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDeleteBatchPagesAndCounts: DeleteBatch removes every key, counts each
// object in the per-bucket delete statistics, and errors on missing buckets.
func TestDeleteBatchPagesAndCounts(t *testing.T) {
	svc := New(Config{})
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	var keys []string
	for i := 0; i < 2300; i++ { // three DeleteObjects pages
		k := fmt.Sprintf("pfx/%04d", i)
		if err := svc.Put(env, "b", k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := svc.DeleteBatch(env, "b", keys); err != nil {
		t.Fatal(err)
	}
	left, err := svc.List(env, "b", "pfx/")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("%d objects left after batch delete", len(left))
	}
	st, err := svc.BucketStats("b")
	if err != nil {
		t.Fatal(err)
	}
	if st.Deletes != 2300 {
		t.Errorf("deletes = %d, want 2300", st.Deletes)
	}
	if err := svc.DeleteBatch(env, "nope", keys); err == nil {
		t.Error("missing bucket accepted")
	}
}
