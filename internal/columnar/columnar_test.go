package columnar

import (
	"reflect"
	"testing"
	"testing/quick"
)

func twoColSchema() *Schema {
	return NewSchema(Field{Name: "a", Type: Int64}, Field{Name: "b", Type: Float64})
}

func TestTypeStringsAndWidths(t *testing.T) {
	if Int64.String() != "BIGINT" || Float64.String() != "DOUBLE" || Bool.String() != "BOOLEAN" {
		t.Error("type names wrong")
	}
	if Int64.Width() != 8 || Float64.Width() != 8 || Bool.Width() != 1 {
		t.Error("widths wrong")
	}
}

func TestSchemaIndexAndProject(t *testing.T) {
	s := twoColSchema()
	if s.Index("b") != 1 || s.Index("zzz") != -1 {
		t.Error("Index wrong")
	}
	p, err := s.Project("b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Fields[0].Name != "b" || p.Fields[1].Name != "a" {
		t.Errorf("projected = %v", p)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting missing column succeeded")
	}
	if !s.Equal(twoColSchema()) {
		t.Error("Equal false for identical schemas")
	}
	if s.Equal(p) {
		t.Error("Equal true for reordered schemas")
	}
	if s.String() != "a BIGINT, b DOUBLE" {
		t.Errorf("String = %q", s.String())
	}
}

func TestVectorAppendTypeSafety(t *testing.T) {
	v := NewVector(Int64, 4)
	defer func() {
		if recover() == nil {
			t.Error("AppendFloat64 on Int64 vector did not panic")
		}
	}()
	v.AppendFloat64(1.0)
}

func TestVectorSliceGatherCoerce(t *testing.T) {
	v := NewVector(Int64, 4)
	for i := int64(0); i < 6; i++ {
		v.AppendInt64(i * 10)
	}
	sl := v.Slice(2, 5)
	if !reflect.DeepEqual(sl.Int64s, []int64{20, 30, 40}) {
		t.Errorf("slice = %v", sl.Int64s)
	}
	g := v.Gather([]int{5, 0, 3})
	if !reflect.DeepEqual(g.Int64s, []int64{50, 0, 30}) {
		t.Errorf("gather = %v", g.Int64s)
	}
	if v.Float64At(3) != 30.0 || v.Int64At(3) != 30 {
		t.Error("coercions wrong")
	}
	b := NewVector(Bool, 2)
	b.AppendBool(true)
	b.AppendBool(false)
	if b.Float64At(0) != 1 || b.Float64At(1) != 0 || b.Int64At(0) != 1 {
		t.Error("bool coercions wrong")
	}
}

func TestChunkBasics(t *testing.T) {
	c := NewChunk(twoColSchema(), 4)
	for i := 0; i < 4; i++ {
		c.Columns[0].AppendInt64(int64(i))
		c.Columns[1].AppendFloat64(float64(i) / 2)
	}
	if c.NumRows() != 4 {
		t.Errorf("rows = %d", c.NumRows())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	if c.Column("b") == nil || c.Column("zzz") != nil {
		t.Error("Column lookup wrong")
	}
	if c.ByteSize() != 4*8+4*8 {
		t.Errorf("byte size = %d", c.ByteSize())
	}
	sl := c.Slice(1, 3)
	if sl.NumRows() != 2 || sl.Columns[0].Int64s[0] != 1 {
		t.Error("chunk slice wrong")
	}
	g := c.Gather([]int{3, 1})
	if g.Columns[1].Float64s[0] != 1.5 {
		t.Error("chunk gather wrong")
	}
	p, err := c.Project("b")
	if err != nil || p.Schema.Len() != 1 || p.Columns[0].Len() != 4 {
		t.Errorf("project: %v %v", p, err)
	}
}

func TestChunkAppendRow(t *testing.T) {
	src := NewChunk(twoColSchema(), 2)
	src.Columns[0].AppendInt64(7)
	src.Columns[1].AppendFloat64(3.5)
	dst := NewChunk(twoColSchema(), 2)
	dst.AppendRow(src, 0)
	if dst.NumRows() != 1 || dst.Columns[0].Int64s[0] != 7 || dst.Columns[1].Float64s[0] != 3.5 {
		t.Error("AppendRow wrong")
	}
}

func TestValidateCatchesRaggedChunks(t *testing.T) {
	c := NewChunk(twoColSchema(), 2)
	c.Columns[0].AppendInt64(1)
	// column b left empty → ragged
	if err := c.Validate(); err == nil {
		t.Error("ragged chunk validated")
	}
	c2 := &Chunk{Schema: twoColSchema(), Columns: []*Vector{NewVector(Int64, 0)}}
	if err := c2.Validate(); err == nil {
		t.Error("missing column validated")
	}
	c3 := &Chunk{Schema: twoColSchema(), Columns: []*Vector{NewVector(Float64, 0), NewVector(Float64, 0)}}
	if err := c3.Validate(); err == nil {
		t.Error("wrong-typed column validated")
	}
}

// Property: Gather(Slice) distributes — slicing then gathering equals
// gathering shifted indices.
func TestPropertySliceGatherConsistent(t *testing.T) {
	f := func(vals []int64, loRaw, hiRaw uint8) bool {
		v := NewVector(Int64, len(vals))
		v.Int64s = append(v.Int64s, vals...)
		n := v.Len()
		if n == 0 {
			return true
		}
		lo := int(loRaw) % n
		hi := lo + int(hiRaw)%(n-lo) + 1
		sl := v.Slice(lo, hi)
		idx := make([]int, sl.Len())
		shifted := make([]int, sl.Len())
		for i := range idx {
			idx[i] = i
			shifted[i] = lo + i
		}
		return reflect.DeepEqual(sl.Gather(idx).Int64s, v.Gather(shifted).Int64s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
