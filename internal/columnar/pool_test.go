package columnar

import (
	"sync"
	"testing"
)

func TestPoolRecyclesVectorsAndChunks(t *testing.T) {
	p := NewPool()
	schema := NewSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "b", Type: Float64},
		Field{Name: "c", Type: Bool},
	)
	c := p.GetChunk(schema, 16)
	for i := 0; i < 16; i++ {
		c.Columns[0].AppendInt64(int64(i))
		c.Columns[1].AppendFloat64(float64(i))
		c.Columns[2].AppendBool(i%2 == 0)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	p.PutChunk(c)

	// A recycled chunk comes back empty, with matching column types.
	c2 := p.GetChunk(schema, 4)
	if c2.NumRows() != 0 {
		t.Fatalf("recycled chunk has %d rows", c2.NumRows())
	}
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
	c2.Columns[0].AppendInt64(7)
	if got := c2.Columns[0].Int64s[0]; got != 7 {
		t.Fatalf("append after recycle = %d", got)
	}
	p.PutChunk(c2)

	v := p.GetVector(Float64, 8)
	if v.Type != Float64 || v.Len() != 0 {
		t.Fatalf("GetVector = %v len %d", v.Type, v.Len())
	}
	p.PutVector(v)
}

func TestPoolConcurrentUse(t *testing.T) {
	p := NewPool()
	schema := NewSchema(Field{Name: "x", Type: Int64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := p.GetChunk(schema, 32)
				for j := 0; j < 32; j++ {
					c.Columns[0].AppendInt64(int64(w*1000 + j))
				}
				// The chunk must be private to this goroutine until Put.
				for j := 0; j < 32; j++ {
					if c.Columns[0].Int64s[j] != int64(w*1000+j) {
						t.Errorf("worker %d saw foreign data", w)
						return
					}
				}
				p.PutChunk(c)
			}
		}(w)
	}
	wg.Wait()
}
