package columnar

// Hash64 is the partitioning hash shared by the engine's join table and
// the serverless exchange (splitmix64 finalizer): cheap, and spreads both
// partition and slot selections well.
func Hash64(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
