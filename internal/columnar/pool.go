package columnar

import "sync"

// Pool recycles vectors and chunks across morsels of a query pipeline,
// keeping the hot path allocation-free once warm.
//
// Ownership contract (who may recycle, and when):
//
//   - Only the operator that obtained a chunk from the pool (via GetChunk)
//     may return it (via PutChunk), and only after every consumer of the
//     morsel it belongs to has finished reading it. In the morsel-driven
//     executor that point is the pipeline breaker: the aggregation operator
//     recycles a gathered chunk right after folding it into its hash table.
//   - Chunks obtained from a scan source, schema projections, and Slice
//     views must never be recycled: their vectors are shared with (or owned
//     by) someone else. PutChunk on an aliased chunk is a use-after-free.
//   - After PutChunk returns, the caller must not touch the chunk or any of
//     its vectors again.
type Pool struct {
	vecs   [3]sync.Pool // indexed by Type
	chunks sync.Pool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// GetVector returns an empty vector of type t, reusing a recycled one when
// available (its capacity is whatever its previous life grew to; n is only a
// hint for fresh allocations).
func (p *Pool) GetVector(t Type, n int) *Vector {
	if x := p.vecs[t].Get(); x != nil {
		v := x.(*Vector)
		v.Type = t
		v.Reset()
		return v
	}
	return NewVector(t, n)
}

// PutVector recycles v. The caller must not use v afterwards.
func (p *Pool) PutVector(v *Vector) {
	if v == nil {
		return
	}
	p.vecs[v.Type].Put(v)
}

// GetChunk returns an empty chunk for schema with capacity hint n, reusing
// recycled vectors and chunk shells when available.
func (p *Pool) GetChunk(schema *Schema, n int) *Chunk {
	var c *Chunk
	if x := p.chunks.Get(); x != nil {
		c = x.(*Chunk)
		if cap(c.Columns) < schema.Len() {
			c.Columns = make([]*Vector, schema.Len())
		}
		c.Columns = c.Columns[:schema.Len()]
	} else {
		c = &Chunk{Columns: make([]*Vector, schema.Len())}
	}
	c.Schema = schema
	for i, f := range schema.Fields {
		c.Columns[i] = p.GetVector(f.Type, n)
	}
	return c
}

// PutChunk recycles c and all its vectors. See the ownership contract above:
// c must have come from GetChunk and must no longer be referenced anywhere.
func (p *Pool) PutChunk(c *Chunk) {
	if c == nil {
		return
	}
	for i, v := range c.Columns {
		p.PutVector(v)
		c.Columns[i] = nil
	}
	c.Schema = nil
	p.chunks.Put(c)
}
