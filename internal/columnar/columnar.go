// Package columnar provides the in-memory table representation of the query
// engine: typed column vectors grouped into chunks, exchanged between
// operators at vector granularity. The paper's engine JIT-compiles pipelines
// over columnar chunks; this package is the Go equivalent of those chunk
// data structures.
//
// The type system mirrors the paper's evaluation setup: the modified dbgen
// generates numbers instead of strings, so the supported types are Int64,
// Float64 and Bool. Null values are not modeled (TPC-H LINEITEM contains
// none).
package columnar

import (
	"fmt"
	"strings"
)

// Type is a column data type.
type Type uint8

// Supported column types.
const (
	Int64 Type = iota
	Float64
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Bool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Width returns the plain-encoded byte width of one value.
func (t Type) Width() int {
	if t == Bool {
		return 1
	}
	return 8
}

// Field is one schema column.
type Field struct {
	Name string
	Type Type
}

// Schema describes the columns of a table.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return &Schema{Fields: fields} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Fields) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.Fields[i] }

// Project returns a schema with only the named columns, in the given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	out := &Schema{}
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("columnar: no column %q", n)
		}
		out.Fields = append(out.Fields, s.Fields[i])
	}
	return out, nil
}

// Equal reports whether two schemas have identical fields.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

// String formats the schema as "name TYPE, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Vector is one typed column of values. Exactly one of the value slices is
// populated, matching Type.
type Vector struct {
	Type     Type
	Int64s   []int64
	Float64s []float64
	Bools    []bool
}

// NewVector returns an empty vector of the given type with capacity hint n.
func NewVector(t Type, n int) *Vector {
	v := &Vector{Type: t}
	switch t {
	case Int64:
		v.Int64s = make([]int64, 0, n)
	case Float64:
		v.Float64s = make([]float64, 0, n)
	case Bool:
		v.Bools = make([]bool, 0, n)
	}
	return v
}

// Len returns the number of values.
func (v *Vector) Len() int {
	switch v.Type {
	case Int64:
		return len(v.Int64s)
	case Float64:
		return len(v.Float64s)
	default:
		return len(v.Bools)
	}
}

// AppendInt64 appends an int64 value (panics on type mismatch).
func (v *Vector) AppendInt64(x int64) {
	if v.Type != Int64 {
		panic("columnar: AppendInt64 on " + v.Type.String())
	}
	v.Int64s = append(v.Int64s, x)
}

// AppendFloat64 appends a float64 value.
func (v *Vector) AppendFloat64(x float64) {
	if v.Type != Float64 {
		panic("columnar: AppendFloat64 on " + v.Type.String())
	}
	v.Float64s = append(v.Float64s, x)
}

// AppendBool appends a bool value.
func (v *Vector) AppendBool(x bool) {
	if v.Type != Bool {
		panic("columnar: AppendBool on " + v.Type.String())
	}
	v.Bools = append(v.Bools, x)
}

// Append copies value i of src (same type) onto v.
func (v *Vector) Append(src *Vector, i int) {
	switch v.Type {
	case Int64:
		v.Int64s = append(v.Int64s, src.Int64s[i])
	case Float64:
		v.Float64s = append(v.Float64s, src.Float64s[i])
	case Bool:
		v.Bools = append(v.Bools, src.Bools[i])
	}
}

// AppendVector bulk-appends all values of src (same type) onto v.
func (v *Vector) AppendVector(src *Vector) {
	switch v.Type {
	case Int64:
		v.Int64s = append(v.Int64s, src.Int64s...)
	case Float64:
		v.Float64s = append(v.Float64s, src.Float64s...)
	case Bool:
		v.Bools = append(v.Bools, src.Bools...)
	}
}

// AppendGather bulk-appends the rows of src selected by idx onto v.
func (v *Vector) AppendGather(src *Vector, idx []int) {
	switch v.Type {
	case Int64:
		for _, i := range idx {
			v.Int64s = append(v.Int64s, src.Int64s[i])
		}
	case Float64:
		for _, i := range idx {
			v.Float64s = append(v.Float64s, src.Float64s[i])
		}
	case Bool:
		for _, i := range idx {
			v.Bools = append(v.Bools, src.Bools[i])
		}
	}
}

// Reset truncates the vector to zero length, keeping its capacity.
func (v *Vector) Reset() {
	v.Int64s = v.Int64s[:0]
	v.Float64s = v.Float64s[:0]
	v.Bools = v.Bools[:0]
}

// Slice returns a view of rows [lo, hi).
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Type: v.Type}
	switch v.Type {
	case Int64:
		out.Int64s = v.Int64s[lo:hi]
	case Float64:
		out.Float64s = v.Float64s[lo:hi]
	case Bool:
		out.Bools = v.Bools[lo:hi]
	}
	return out
}

// Gather returns a new vector with the rows selected by idx.
func (v *Vector) Gather(idx []int) *Vector {
	out := NewVector(v.Type, len(idx))
	switch v.Type {
	case Int64:
		for _, i := range idx {
			out.Int64s = append(out.Int64s, v.Int64s[i])
		}
	case Float64:
		for _, i := range idx {
			out.Float64s = append(out.Float64s, v.Float64s[i])
		}
	case Bool:
		for _, i := range idx {
			out.Bools = append(out.Bools, v.Bools[i])
		}
	}
	return out
}

// Float64At returns value i coerced to float64 (Bool → 0/1).
func (v *Vector) Float64At(i int) float64 {
	switch v.Type {
	case Int64:
		return float64(v.Int64s[i])
	case Float64:
		return v.Float64s[i]
	default:
		if v.Bools[i] {
			return 1
		}
		return 0
	}
}

// Int64At returns value i coerced to int64 (Float64 truncated).
func (v *Vector) Int64At(i int) int64 {
	switch v.Type {
	case Int64:
		return v.Int64s[i]
	case Float64:
		return int64(v.Float64s[i])
	default:
		if v.Bools[i] {
			return 1
		}
		return 0
	}
}

// Chunk is a batch of rows in columnar form.
type Chunk struct {
	Schema  *Schema
	Columns []*Vector
}

// NewChunk returns an empty chunk for schema with capacity hint n.
func NewChunk(schema *Schema, n int) *Chunk {
	c := &Chunk{Schema: schema, Columns: make([]*Vector, schema.Len())}
	for i, f := range schema.Fields {
		c.Columns[i] = NewVector(f.Type, n)
	}
	return c
}

// NumRows returns the row count.
func (c *Chunk) NumRows() int {
	if len(c.Columns) == 0 {
		return 0
	}
	return c.Columns[0].Len()
}

// Column returns the vector of the named column, or nil.
func (c *Chunk) Column(name string) *Vector {
	i := c.Schema.Index(name)
	if i < 0 {
		return nil
	}
	return c.Columns[i]
}

// AppendRow copies row i of src (same schema order) onto c.
func (c *Chunk) AppendRow(src *Chunk, i int) {
	for j, col := range c.Columns {
		col.Append(src.Columns[j], i)
	}
}

// AppendChunk bulk-appends all rows of src (same schema order) onto c.
func (c *Chunk) AppendChunk(src *Chunk) {
	for j, col := range c.Columns {
		col.AppendVector(src.Columns[j])
	}
}

// AppendGather bulk-appends the rows of src selected by idx onto c.
func (c *Chunk) AppendGather(src *Chunk, idx []int) {
	for j, col := range c.Columns {
		col.AppendGather(src.Columns[j], idx)
	}
}

// Slice returns a zero-copy view of rows [lo, hi).
func (c *Chunk) Slice(lo, hi int) *Chunk {
	out := &Chunk{Schema: c.Schema, Columns: make([]*Vector, len(c.Columns))}
	for i, col := range c.Columns {
		out.Columns[i] = col.Slice(lo, hi)
	}
	return out
}

// Gather returns a new chunk with the rows selected by idx.
func (c *Chunk) Gather(idx []int) *Chunk {
	out := &Chunk{Schema: c.Schema, Columns: make([]*Vector, len(c.Columns))}
	for i, col := range c.Columns {
		out.Columns[i] = col.Gather(idx)
	}
	return out
}

// Project returns a chunk with only the named columns (vectors shared).
func (c *Chunk) Project(names ...string) (*Chunk, error) {
	schema, err := c.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := &Chunk{Schema: schema, Columns: make([]*Vector, len(names))}
	for i, n := range names {
		out.Columns[i] = c.Columns[c.Schema.Index(n)]
	}
	return out, nil
}

// Validate checks that all columns have equal length and matching types.
func (c *Chunk) Validate() error {
	if len(c.Columns) != c.Schema.Len() {
		return fmt.Errorf("columnar: %d columns for %d fields", len(c.Columns), c.Schema.Len())
	}
	n := c.NumRows()
	for i, col := range c.Columns {
		if col.Type != c.Schema.Fields[i].Type {
			return fmt.Errorf("columnar: column %d type %v, schema %v", i, col.Type, c.Schema.Fields[i].Type)
		}
		if col.Len() != n {
			return fmt.Errorf("columnar: column %d has %d rows, expected %d", i, col.Len(), n)
		}
	}
	return nil
}

// ByteSize returns the plain in-memory size of the chunk payload.
func (c *Chunk) ByteSize() int64 {
	var n int64
	for i, col := range c.Columns {
		n += int64(col.Len()) * int64(c.Schema.Fields[i].Type.Width())
	}
	return n
}
