package scan

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

// uploadLineitemOpts is uploadLineitem with writer control, for producing
// paged v2 files (PageRows below the row-group size) or legacy v1 files.
func uploadLineitemOpts(t *testing.T, svc *s3.Service, sf float64, nfiles int, opts lpq.WriterOptions) ([]FileRef, *columnar.Chunk) {
	t.Helper()
	env := simenv.NewImmediate()
	svc.MustCreateBucket("data")
	data := tpch.Gen{SF: sf, Seed: 9}.Generate()
	var refs []FileRef
	for i, part := range tpch.SplitFiles(data, nfiles) {
		raw, err := lpq.WriteFile(tpch.Schema(), opts, part)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("lineitem/part-%03d.lpq", i)
		if err := svc.Put(env, "data", key, raw); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, FileRef{Bucket: "data", Key: key})
	}
	return refs, data
}

func q6Filter() engine.Expr {
	return engine.And(
		engine.NewBin(engine.OpGE, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateLo)),
		engine.NewBin(engine.OpLT, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateHi)),
		engine.Between(engine.Col("l_discount"), engine.ConstFloat(0.0499999), engine.ConstFloat(0.0700001)),
		engine.NewBin(engine.OpLT, engine.Col("l_quantity"), engine.ConstFloat(24)),
	)
}

func q6Preds() []lpq.Predicate {
	return []lpq.Predicate{{
		Column: "l_shipdate",
		Min:    float64(tpch.Q6ShipDateLo), Max: float64(tpch.Q6ShipDateHi - 1),
		HasInt: true, MinInt: tpch.Q6ShipDateLo, MaxInt: tpch.Q6ShipDateHi - 1,
	}}
}

// collectRows concatenates yielded chunks into one chunk, preserving order.
func collectRows(t *testing.T, schema *columnar.Schema, scan func(func(*columnar.Chunk) error) error) *columnar.Chunk {
	t.Helper()
	out := columnar.NewChunk(schema, 0)
	err := scan(func(c *columnar.Chunk) error {
		for i := range out.Columns {
			out.Columns[i].AppendVector(c.Columns[i])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireIdentical compares two chunks bit for bit (floats included — the
// scan layer must not perturb values, only select rows).
func requireIdentical(t *testing.T, label string, got, want *columnar.Chunk) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: %d rows, want %d", label, got.NumRows(), want.NumRows())
	}
	for i, v := range got.Columns {
		w := want.Columns[i]
		same := false
		switch v.Type {
		case columnar.Int64:
			same = reflect.DeepEqual(v.Int64s, w.Int64s)
		case columnar.Float64:
			same = reflect.DeepEqual(v.Float64s, w.Float64s)
		case columnar.Bool:
			same = reflect.DeepEqual(v.Bools, w.Bools)
		}
		if !same {
			t.Fatalf("%s: column %d differs", label, i)
		}
	}
}

// referenceFiltered runs the plain scan and filters each chunk in the
// caller — the pre-late-materialization pipeline shape — as the ground
// truth for every ScanFiltered configuration.
func referenceFiltered(t *testing.T, src *Source, proj []string, filter engine.Expr) *columnar.Chunk {
	t.Helper()
	schema := mustSchema(t, src, proj)
	var sel []int
	return collectRows(t, schema, func(yield func(*columnar.Chunk) error) error {
		return src.Scan(proj, nil, func(c *columnar.Chunk) error {
			var err error
			sel, err = engine.FilterSelection(c, filter, sel)
			if err != nil {
				return err
			}
			if len(sel) == 0 {
				return nil
			}
			if len(sel) == c.NumRows() {
				return yield(c)
			}
			return yield(c.Gather(sel))
		})
	})
}

func mustSchema(t *testing.T, src *Source, proj []string) *columnar.Schema {
	t.Helper()
	full, err := src.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if proj == nil {
		return full
	}
	s, err := full.Project(proj...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScanFilteredByteIdentity: every ScanFiltered configuration — paged
// and unpaged files, gzip and raw, late-materialized and ablated,
// coalesced and per-range reads, parallel and serial — returns rows byte-
// identical to scan-then-filter.
func TestScanFilteredByteIdentity(t *testing.T) {
	proj := []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice", "l_returnflag"}
	for _, w := range []struct {
		name string
		opts lpq.WriterOptions
	}{
		{"paged", lpq.WriterOptions{RowGroupRows: 2000, PageRows: 256}},
		{"paged-gzip", lpq.WriterOptions{RowGroupRows: 2000, PageRows: 256, Compression: lpq.Gzip}},
		{"unpaged", lpq.WriterOptions{RowGroupRows: 1000}},
		{"v1", lpq.WriterOptions{RowGroupRows: 1000, FormatV1: true}},
	} {
		svc := s3.New(s3.Config{})
		refs, _ := uploadLineitemOpts(t, svc, 0.005, 4, w.opts)
		want := referenceFiltered(t, New(newClient(svc), Config{}, refs...), proj, q6Filter())
		if want.NumRows() == 0 {
			t.Fatalf("%s: reference selected no rows — test has no teeth", w.name)
		}

		for _, cfg := range []Config{
			{},
			DefaultConfig(),
			{DisableLateMaterialize: true},
			{CoalesceGapBytes: -1},
			{DoubleBuffer: true, ParallelColumns: true, Conns: 4},
		} {
			src := New(newClient(svc), cfg, refs...)
			got := collectRows(t, mustSchema(t, src, proj), func(yield func(*columnar.Chunk) error) error {
				return src.ScanFiltered(proj, q6Preds(), q6Filter(), yield)
			})
			requireIdentical(t, fmt.Sprintf("%s cfg=%+v", w.name, cfg), got, want)
		}
	}
}

// TestScanFilteredCostCounters: on paged files with a selective filter the
// default path must bill strictly fewer GETs and bytes than the ablated
// (no coalescing, no late materialization) path, while staying
// byte-identical. This is the request-count guard at the scan layer.
func TestScanFilteredCostCounters(t *testing.T) {
	proj := []string{"l_shipdate", "l_discount", "l_quantity", "l_extendedprice", "l_orderkey", "l_partkey", "l_suppkey", "l_tax"}
	svc := s3.New(s3.Config{})
	refs, _ := uploadLineitemOpts(t, svc, 0.01, 4, lpq.WriterOptions{RowGroupRows: 4000, PageRows: 512})

	// Needle filter: the date range drives page pruning, and the
	// discount/quantity conjuncts (~0.2% joint selectivity) empty most
	// surviving pages so their payload columns are never fetched.
	needle := engine.And(
		engine.NewBin(engine.OpGE, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateLo)),
		engine.NewBin(engine.OpLT, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateHi)),
		engine.Between(engine.Col("l_discount"), engine.ConstFloat(0.0499999), engine.ConstFloat(0.0500001)),
		engine.NewBin(engine.OpLT, engine.Col("l_quantity"), engine.ConstFloat(2)),
	)
	run := func(cfg Config) (*columnar.Chunk, Stats) {
		src := New(newClient(svc), cfg, refs...)
		got := collectRows(t, mustSchema(t, src, proj), func(yield func(*columnar.Chunk) error) error {
			return src.ScanFiltered(proj, q6Preds(), needle, yield)
		})
		return got, src.Stats()
	}

	lateChunk, late := run(Config{})
	ablChunk, abl := run(Config{CoalesceGapBytes: -1, DisableLateMaterialize: true})
	requireIdentical(t, "late vs ablated", lateChunk, ablChunk)
	if lateChunk.NumRows() == 0 {
		t.Fatal("filter selected no rows — test has no teeth")
	}

	if late.BilledGets >= abl.BilledGets {
		t.Errorf("billed GETs: late-materialized+coalesced = %d, ablated = %d — want strictly fewer", late.BilledGets, abl.BilledGets)
	}
	if late.BilledBytes >= abl.BilledBytes {
		t.Errorf("billed bytes: late-materialized = %d, ablated = %d — want strictly fewer", late.BilledBytes, abl.BilledBytes)
	}
	if late.PagesPruned == 0 {
		t.Error("no pages pruned despite sorted shipdate and selective range")
	}
	if late.PagesFiltered == 0 {
		t.Error("no pages filtered empty despite the discount/quantity conjuncts")
	}
	if late.PagesRead == 0 {
		t.Error("no pages read")
	}
}

// Property check: ScanFiltered equals scan-then-filter for random ranges
// over a small synthetic table, across page boundaries.
func TestScanFilteredPropertyRandomRanges(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "id", Type: columnar.Int64},
		columnar.Field{Name: "val", Type: columnar.Float64},
	)
	const n = 1000
	c := columnar.NewChunk(schema, n)
	for i := 0; i < n; i++ {
		c.Columns[0].AppendInt64(int64(i))
		c.Columns[1].AppendFloat64(float64((i*2654435761)%1000) / 7)
	}
	svc := s3.New(s3.Config{})
	env := simenv.NewImmediate()
	svc.MustCreateBucket("data")
	raw, err := lpq.WriteFile(schema, lpq.WriterOptions{RowGroupRows: 256, PageRows: 64}, c)
	if err != nil {
		t.Fatal(err)
	}
	svc.Put(env, "data", "t.lpq", raw)
	ref := FileRef{Bucket: "data", Key: "t.lpq"}

	f := func(loRaw, hiRaw uint16) bool {
		lo, hi := int64(loRaw)%n, int64(hiRaw)%n
		if lo > hi {
			lo, hi = hi, lo
		}
		filter := engine.And(
			engine.NewBin(engine.OpGE, engine.Col("id"), engine.ConstInt(lo)),
			engine.NewBin(engine.OpLE, engine.Col("id"), engine.ConstInt(hi)),
		)
		preds := []lpq.Predicate{{Column: "id", Min: float64(lo), Max: float64(hi),
			HasInt: true, MinInt: lo, MaxInt: hi}}

		src := New(newClient(svc), Config{}, ref)
		got := collectRows(t, schema, func(yield func(*columnar.Chunk) error) error {
			return src.ScanFiltered(nil, preds, filter, yield)
		})
		if got.NumRows() != int(hi-lo+1) {
			return false
		}
		for i, id := range got.Columns[0].Int64s {
			if id != lo+int64(i) {
				return false
			}
			if got.Columns[1].Float64s[i] != c.Columns[1].Float64s[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
