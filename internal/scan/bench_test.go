package scan

import (
	"fmt"
	"testing"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

// benchFiles uploads SF 0.02 lineitem as 8 gzip lpq files.
func benchFiles(b *testing.B) (*s3.Service, []FileRef, int64) {
	b.Helper()
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("data")
	data := tpch.Gen{SF: 0.02, Seed: 9}.Generate()
	var refs []FileRef
	for i, part := range tpch.SplitFiles(data, 8) {
		raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 4096, Compression: lpq.Gzip}, part)
		if err != nil {
			b.Fatal(err)
		}
		key := fmt.Sprintf("lineitem/part-%03d.lpq", i)
		if err := svc.Put(env, "data", key, raw); err != nil {
			b.Fatal(err)
		}
		refs = append(refs, FileRef{Bucket: "data", Key: key})
	}
	return svc, refs, data.ByteSize()
}

// BenchmarkParallelScan compares a serial multi-file scan against the
// level-5 worker pool (chunk order is identical either way).
func BenchmarkParallelScan(b *testing.B) {
	svc, refs, bytes := benchFiles(b)
	for _, pf := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("files=%d", pf), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.ParallelFiles = pf
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := New(s3.NewClient(svc, simenv.NewImmediate()), cfg, refs...)
				rows := 0
				err := src.Scan(nil, nil, func(c *columnar.Chunk) error {
					rows += c.NumRows()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if rows == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}
