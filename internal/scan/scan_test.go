package scan

import (
	"fmt"
	"io"
	"math"
	"testing"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/s3fs"
	"lambada/internal/tpch"
)

// uploadLineitem writes SF data as nfiles lpq objects and returns the refs.
func uploadLineitem(t *testing.T, svc *s3.Service, sf float64, nfiles int, comp lpq.Compression) ([]FileRef, *columnar.Chunk) {
	t.Helper()
	env := simenv.NewImmediate()
	svc.MustCreateBucket("data")
	data := tpch.Gen{SF: sf, Seed: 9}.Generate()
	var refs []FileRef
	for i, part := range tpch.SplitFiles(data, nfiles) {
		raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 2000, Compression: comp}, part)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("lineitem/part-%03d.lpq", i)
		if err := svc.Put(env, "data", key, raw); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, FileRef{Bucket: "data", Key: key})
	}
	return refs, data
}

func newClient(svc *s3.Service) *s3.Client {
	return s3.NewClient(svc, simenv.NewImmediate())
}

func TestS3fsReadAt(t *testing.T) {
	svc := s3.New(s3.Config{})
	env := simenv.NewImmediate()
	svc.MustCreateBucket("b")
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	svc.Put(env, "b", "k", payload)
	f, err := s3fs.Open(newClient(svc), "b", "k")
	if err != nil {
		t.Fatal(err)
	}
	f.ChunkBytes = 64 // force many requests
	buf := make([]byte, 300)
	n, err := f.ReadAt(buf, 500)
	if err != nil || n != 300 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	for i := 0; i < 300; i++ {
		if buf[i] != byte((500+i)%251) {
			t.Fatalf("byte %d wrong", i)
		}
	}
	// Partial read at the tail returns io.EOF.
	n, err = f.ReadAt(buf, 900)
	if n != 100 || err != io.EOF {
		t.Errorf("tail read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 2000); err != io.EOF {
		t.Errorf("past-end read err = %v", err)
	}
	// 300 bytes at 64-byte chunks = 5 requests, plus tail read 2, plus Head.
	if f.Requests() < 7 {
		t.Errorf("requests = %d", f.Requests())
	}
}

func TestScanMatchesReference(t *testing.T) {
	for _, comp := range []lpq.Compression{lpq.None, lpq.Gzip} {
		for _, cfg := range []Config{
			{},              // everything off
			DefaultConfig(), // everything on
			{DoubleBuffer: true},
			{ParallelColumns: true, Conns: 4},
		} {
			svc := s3.New(s3.Config{})
			refs, data := uploadLineitem(t, svc, 0.002, 4, comp)
			src := New(newClient(svc), cfg, refs...)
			cat := engine.Catalog{"lineitem": src}

			plan := &engine.AggregatePlan{
				Aggs: []engine.AggSpec{
					{Func: engine.AggSum, Arg: engine.Col("l_quantity"), Name: "s"},
					{Func: engine.AggCount, Name: "n"},
				},
				In: &engine.ScanPlan{Table: "lineitem"},
			}
			out, err := engine.Execute(plan, cat)
			if err != nil {
				t.Fatalf("comp=%v cfg=%+v: %v", comp, cfg, err)
			}
			if got := out.Column("n").Int64s[0]; got != int64(data.NumRows()) {
				t.Errorf("comp=%v cfg=%+v: count = %d, want %d", comp, cfg, got, data.NumRows())
			}
			var wantSum float64
			for _, q := range data.Column("l_quantity").Float64s {
				wantSum += q
			}
			if got := out.Column("s").Float64s[0]; math.Abs(got-wantSum) > 1e-6*wantSum {
				t.Errorf("comp=%v cfg=%+v: sum = %v, want %v", comp, cfg, got, wantSum)
			}
		}
	}
}

func TestScanQ6WithPruningAndProjection(t *testing.T) {
	svc := s3.New(s3.Config{})
	refs, data := uploadLineitem(t, svc, 0.005, 8, lpq.Gzip)
	src := New(newClient(svc), DefaultConfig(), refs...)
	cat := engine.Catalog{"lineitem": src}

	pred := engine.And(
		engine.NewBin(engine.OpGE, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateLo)),
		engine.NewBin(engine.OpLT, engine.Col("l_shipdate"), engine.ConstInt(tpch.Q6ShipDateHi)),
		engine.Between(engine.Col("l_discount"), engine.ConstFloat(0.0499999), engine.ConstFloat(0.0700001)),
		engine.NewBin(engine.OpLT, engine.Col("l_quantity"), engine.ConstFloat(24)),
	)
	var plan engine.Plan = &engine.AggregatePlan{
		Aggs: []engine.AggSpec{{Func: engine.AggSum, Arg: engine.NewBin(engine.OpMul, engine.Col("l_extendedprice"), engine.Col("l_discount")), Name: "revenue"}},
		In:   &engine.FilterPlan{Pred: pred, In: &engine.ScanPlan{Table: "lineitem"}},
	}
	plan, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", got, want)
	}
	st := src.Stats()
	if st.RowGroupsPruned == 0 {
		t.Error("no row groups pruned despite sorted shipdate and Q6 range")
	}
	if st.RowGroupsRead == 0 {
		t.Error("no row groups read")
	}
}

func TestScanPruningSkipsWholeFiles(t *testing.T) {
	svc := s3.New(s3.Config{})
	refs, _ := uploadLineitem(t, svc, 0.005, 16, lpq.None)
	src := New(newClient(svc), DefaultConfig(), refs...)
	preds := []lpq.Predicate{{Column: "l_shipdate", Min: float64(tpch.Q6ShipDateLo), Max: float64(tpch.Q6ShipDateHi - 1)}}
	n := 0
	err := src.Scan([]string{"l_extendedprice"}, preds, func(c *columnar.Chunk) error { n += c.NumRows(); return nil })
	if err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.FilesAllPruned == 0 {
		t.Error("no files fully pruned; expected most (Figure 11 mechanism)")
	}
	if n == 0 {
		t.Error("scan returned no rows")
	}
}

func TestChunkSizeDrivesRequestCount(t *testing.T) {
	// Figure 7: halving the chunk size roughly doubles the request count
	// and cost of a scan.
	counts := map[int64]int64{}
	small, large := int64(64<<10), int64(256<<10)
	for _, chunk := range []int64{small, large} {
		meter := pricing.NewCostMeter()
		svc := s3.New(s3.Config{Meter: meter})
		env := simenv.NewImmediate()
		svc.MustCreateBucket("data")
		// One big row group so column chunks (~480 KB) exceed the request
		// chunk size and level-1 splitting kicks in.
		data := tpch.Gen{SF: 0.01, Seed: 9}.Generate()
		raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 1 << 20}, data)
		if err != nil {
			t.Fatal(err)
		}
		svc.Put(env, "data", "one.lpq", raw)
		cfg := DefaultConfig()
		cfg.ChunkBytes = chunk
		src := New(newClient(svc), cfg, FileRef{Bucket: "data", Key: "one.lpq"})
		if err := src.Scan(nil, nil, func(*columnar.Chunk) error { return nil }); err != nil {
			t.Fatal(err)
		}
		counts[chunk] = meter.Count(pricing.LabelS3Read)
	}
	if counts[small] < 2*counts[large] {
		t.Errorf("%dKiB chunks made %d requests, %dKiB made %d — smaller chunks must cost proportionally more requests",
			small>>10, counts[small], large>>10, counts[large])
	}
}

func TestSchemaFromFirstFile(t *testing.T) {
	svc := s3.New(s3.Config{})
	refs, _ := uploadLineitem(t, svc, 0.001, 2, lpq.None)
	src := New(newClient(svc), Config{}, refs...)
	schema, err := src.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(tpch.Schema()) {
		t.Errorf("schema = %v", schema)
	}
	empty := New(newClient(svc), Config{})
	if _, err := empty.Schema(); err == nil {
		t.Error("empty source returned a schema")
	}
}

func TestMissingFileSurfacesError(t *testing.T) {
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("data")
	src := New(newClient(svc), DefaultConfig(), FileRef{Bucket: "data", Key: "nope.lpq"})
	err := src.Scan(nil, nil, func(*columnar.Chunk) error { return nil })
	if err == nil {
		t.Error("missing file scanned without error")
	}
}

func TestUnknownProjectionColumn(t *testing.T) {
	svc := s3.New(s3.Config{})
	refs, _ := uploadLineitem(t, svc, 0.001, 1, lpq.None)
	src := New(newClient(svc), Config{}, refs...)
	err := src.Scan([]string{"no_such_col"}, nil, func(*columnar.Chunk) error { return nil })
	if err == nil {
		t.Error("unknown projection column accepted")
	}
}
