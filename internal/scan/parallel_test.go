package scan

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

// collectScan runs one scan and returns the yielded chunks in order.
func collectScan(t *testing.T, src *Source, proj []string, preds []lpq.Predicate) []*columnar.Chunk {
	t.Helper()
	var out []*columnar.Chunk
	if err := src.Scan(proj, preds, func(c *columnar.Chunk) error {
		out = append(out, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func chunksIdentical(t *testing.T, got, want []*columnar.Chunk) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("chunks = %d, want %d", len(got), len(want))
	}
	for ci := range want {
		g, w := got[ci], want[ci]
		if g.NumRows() != w.NumRows() || !g.Schema.Equal(w.Schema) {
			t.Fatalf("chunk %d shape mismatch", ci)
		}
		for j := range w.Columns {
			for i := 0; i < w.NumRows(); i++ {
				switch w.Columns[j].Type {
				case columnar.Int64:
					if g.Columns[j].Int64s[i] != w.Columns[j].Int64s[i] {
						t.Fatalf("chunk %d col %d row %d differs", ci, j, i)
					}
				case columnar.Float64:
					if math.Float64bits(g.Columns[j].Float64s[i]) != math.Float64bits(w.Columns[j].Float64s[i]) {
						t.Fatalf("chunk %d col %d row %d differs", ci, j, i)
					}
				case columnar.Bool:
					if g.Columns[j].Bools[i] != w.Columns[j].Bools[i] {
						t.Fatalf("chunk %d col %d row %d differs", ci, j, i)
					}
				}
			}
		}
	}
}

func TestParallelScanMatchesSerialByteIdentical(t *testing.T) {
	for _, comp := range []lpq.Compression{lpq.None, lpq.Gzip} {
		svc := s3.New(s3.Config{})
		refs, _ := uploadLineitem(t, svc, 0.005, 8, comp)

		serialCfg := DefaultConfig()
		serialCfg.ParallelFiles = 1
		serial := collectScan(t, New(newClient(svc), serialCfg, refs...), nil, nil)

		for _, pf := range []int{2, 4, 16} {
			cfg := DefaultConfig()
			cfg.ParallelFiles = pf
			src := New(newClient(svc), cfg, refs...)
			got := collectScan(t, src, nil, nil)
			chunksIdentical(t, got, serial)

			// Stats must survive the parallel path.
			st := src.Stats()
			if st.RowGroupsRead != int64(len(serial)) {
				t.Errorf("pf=%d: rowGroupsRead = %d, want %d", pf, st.RowGroupsRead, len(serial))
			}
		}

		// Projection + pruning through the parallel path.
		preds := []lpq.Predicate{{Column: "l_quantity", Min: 0, Max: 10}}
		serialP := collectScan(t, New(newClient(svc), serialCfg, refs...), []string{"l_quantity", "l_extendedprice"}, preds)
		cfg := DefaultConfig()
		cfg.ParallelFiles = 4
		gotP := collectScan(t, New(newClient(svc), cfg, refs...), []string{"l_quantity", "l_extendedprice"}, preds)
		chunksIdentical(t, gotP, serialP)
	}
}

func TestParallelScanMoreFilesThanSlots(t *testing.T) {
	// Regression: admission must be granted in file order. With more files
	// than ParallelFiles and more row groups per file than the per-file
	// channel buffer, a plain semaphore could hand every slot to later
	// files while the consumer waits on file 0 — a deadlock.
	svc := s3.New(s3.Config{})
	env := simenv.NewImmediate()
	svc.MustCreateBucket("data")
	data := tpch.Gen{SF: 0.01, Seed: 5}.Generate()
	var refs []FileRef
	parts := tpch.SplitFiles(data, 12)
	for i, part := range parts {
		// ~500-row groups → ~10 chunks per file, well past the buffer of 2.
		raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 500}, part)
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("li/p-%02d.lpq", i)
		if err := svc.Put(env, "data", key, raw); err != nil {
			t.Fatal(err)
		}
		refs = append(refs, FileRef{Bucket: "data", Key: key})
	}
	serialCfg := DefaultConfig()
	serialCfg.ParallelFiles = 1
	serial := collectScan(t, New(newClient(svc), serialCfg, refs...), nil, nil)
	for _, pf := range []int{2, 3, 5} {
		cfg := DefaultConfig()
		cfg.ParallelFiles = pf
		got := collectScan(t, New(newClient(svc), cfg, refs...), nil, nil)
		chunksIdentical(t, got, serial)
	}
}

func TestParallelScanErrorPropagation(t *testing.T) {
	svc := s3.New(s3.Config{})
	refs, _ := uploadLineitem(t, svc, 0.002, 4, lpq.None)
	refs = append(refs, FileRef{Bucket: "data", Key: "missing.lpq"})
	cfg := DefaultConfig()
	cfg.ParallelFiles = 4
	src := New(newClient(svc), cfg, refs...)
	n := 0
	err := src.Scan(nil, nil, func(c *columnar.Chunk) error { n += c.NumRows(); return nil })
	if err == nil {
		t.Fatal("missing file scanned without error")
	}
	if n == 0 {
		t.Error("chunks of earlier files should have been yielded before the failing file")
	}

	// A consumer error must cancel in-flight file workers without hanging.
	src2 := New(newClient(svc), cfg, refs[:4]...)
	calls := 0
	err = src2.Scan(nil, nil, func(*columnar.Chunk) error {
		calls++
		if calls == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("yield error = %v, want errStop", err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestOpenSingleflight(t *testing.T) {
	meter := pricing.NewCostMeter()
	svc := s3.New(s3.Config{Meter: meter})
	refs, _ := uploadLineitem(t, svc, 0.001, 1, lpq.None)
	src := New(newClient(svc), DefaultConfig(), refs...)

	// Hammer open from many goroutines: the footer must be fetched once.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := src.Schema(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// One open costs exactly two read requests (Head + footer fetch), no
	// matter how many goroutines raced for it.
	if got := meter.Count(pricing.LabelS3Read); got != 2 {
		t.Errorf("open requests = %d, want exactly 2 (singleflight)", got)
	}

	// A failed open is forgotten so a later caller can retry.
	bad := New(newClient(svc), DefaultConfig(), FileRef{Bucket: "data", Key: "nope.lpq"})
	if _, err := bad.Schema(); err == nil {
		t.Fatal("expected error for missing file")
	}
	data := tpch.Gen{SF: 0.0005, Seed: 3}.Generate()
	raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Put(simenv.NewImmediate(), "data", "nope.lpq", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Schema(); err != nil {
		t.Errorf("retry after failed open: %v", err)
	}
}
