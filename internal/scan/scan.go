// Package scan implements Lambada's S3-based Parquet scan operator
// (§4.3.2, Figure 8). It exploits concurrency at five levels — the four the
// paper identifies, in the priority order the paper prescribes, plus a
// file-level worker pool on top:
//
//	(5) multiple lpq files scanned concurrently by a bounded worker pool
//	    (Config.ParallelFiles), chunks delivered in file order through
//	    per-file channels so the yield order matches the serial scan;
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) up to two row groups downloaded asynchronously (double buffering),
//	    overlapping download with decompression of the previous group;
//	(2) column chunks of small/single-row-group files fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since extra
//	    requests cost money (Figure 7).
//
// The operator implements engine.Source, so optimized plans push selections
// (as min/max prune predicates) and projections into it.
package scan

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/s3fs"
)

// Config tunes the operator.
type Config struct {
	// ChunkBytes is the per-request range size (level 1). Default 16 MiB.
	ChunkBytes int64
	// Conns is the number of concurrent connections modeled per transfer.
	Conns int
	// DoubleBuffer enables row-group prefetch (level 3). The paper
	// disables it on workers with too little main memory.
	DoubleBuffer bool
	// ParallelColumns enables concurrent column-chunk downloads (level 2).
	ParallelColumns bool
	// MetaPrefetch fetches all files' footers eagerly (level 4).
	MetaPrefetch bool
	// ParallelFiles bounds how many files are scanned concurrently
	// (level 5). 0 or 1 scans serially; DefaultConfig uses GOMAXPROCS.
	// Chunk delivery order is unaffected: chunks surface in file order,
	// row groups in order within each file, exactly as a serial scan.
	ParallelFiles int
}

// DefaultConfig mirrors the paper's operator — all levels enabled, 16 MiB
// chunks, four connections — plus file-level parallelism across all CPUs.
func DefaultConfig() Config {
	return Config{
		ChunkBytes:      s3fs.DefaultChunkBytes,
		Conns:           4,
		DoubleBuffer:    true,
		ParallelColumns: true,
		MetaPrefetch:    true,
		ParallelFiles:   runtime.GOMAXPROCS(0),
	}
}

// FileRef names one S3 object holding an lpq file.
type FileRef struct {
	Bucket string
	Key    string
}

// Source scans a list of lpq files from S3. It implements engine.Source.
type Source struct {
	Client *s3.Client
	Files  []FileRef
	Cfg    Config

	mu    sync.Mutex
	opens map[string]*openState

	// scratch pools decompression buffers across row-group reads.
	scratch sync.Pool

	// Stats.
	rowGroupsRead   int64
	rowGroupsPruned int64
	filesAllPruned  int64
}

// openState is the singleflight slot of one file's footer fetch: however
// many goroutines race to open a file (the metadata prefetcher, level-5 file
// workers, the synchronous path), the footer is fetched exactly once and
// everyone shares the result.
type openState struct {
	once sync.Once
	r    *lpq.Reader
	h    *s3fs.File
	err  error
}

// New returns a source over files.
func New(client *s3.Client, cfg Config, files ...FileRef) *Source {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = s3fs.DefaultChunkBytes
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	return &Source{
		Client: client,
		Files:  files,
		Cfg:    cfg,
		opens:  make(map[string]*openState),
	}
}

// Stats reports scan counters.
type Stats struct {
	RowGroupsRead   int64
	RowGroupsPruned int64
	FilesAllPruned  int64
}

// Stats returns the operator's counters.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{RowGroupsRead: s.rowGroupsRead, RowGroupsPruned: s.rowGroupsPruned, FilesAllPruned: s.filesAllPruned}
}

// open returns the (cached) reader and handle of f. Concurrent callers for
// the same file block on one in-flight fetch instead of issuing duplicates;
// a failed open is forgotten so a later caller can retry.
func (s *Source) open(f FileRef) (*lpq.Reader, *s3fs.File, error) {
	id := f.Bucket + "/" + f.Key
	s.mu.Lock()
	st, ok := s.opens[id]
	if !ok {
		st = &openState{}
		s.opens[id] = st
	}
	s.mu.Unlock()

	st.once.Do(func() {
		h, err := s3fs.Open(s.Client, f.Bucket, f.Key)
		if err != nil {
			st.err = err
		} else {
			h.ChunkBytes = s.Cfg.ChunkBytes
			h.Conns = s.Cfg.Conns
			r, err := lpq.OpenReader(h, h.Size())
			if err != nil {
				st.err = fmt.Errorf("scan: opening %s: %w", id, err)
			} else {
				st.r, st.h = r, h
			}
		}
		if st.err != nil {
			s.mu.Lock()
			delete(s.opens, id)
			s.mu.Unlock()
		}
	})
	return st.r, st.h, st.err
}

// Schema returns the schema of the first file.
func (s *Source) Schema() (*columnar.Schema, error) {
	if len(s.Files) == 0 {
		return nil, fmt.Errorf("scan: no files")
	}
	r, _, err := s.open(s.Files[0])
	if err != nil {
		return nil, err
	}
	return r.Schema(), nil
}

// TotalRows sums the row counts recorded in every file's footer — the
// planner's cardinality statistic (a metadata-only read: footers are a few
// hundred bytes, no column data is transferred). The stage planner decides
// broadcast-vs-shuffle per join from these counts. Footer opens run up to
// Cfg.ParallelFiles at a time (this sits on the driver's plan-time critical
// path; DES deployments force the knob to 1 and stay single-threaded), and
// opens are cached, so a later Scan pays no second round trip.
func (s *Source) TotalRows() (int64, error) {
	if s.Cfg.ParallelFiles > 1 && len(s.Files) > 1 {
		sem := make(chan struct{}, s.Cfg.ParallelFiles)
		errs := make([]error, len(s.Files))
		var wg sync.WaitGroup
		for i, f := range s.Files {
			wg.Add(1)
			go func(i int, f FileRef) {
				defer wg.Done()
				sem <- struct{}{}
				_, _, errs[i] = s.open(f)
				<-sem
			}(i, f)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	}
	var total int64
	for _, f := range s.Files {
		r, _, err := s.open(f)
		if err != nil {
			return 0, err
		}
		total += r.Meta().TotalRows
	}
	return total, nil
}

// Scan yields the projected columns of every non-pruned row group of every
// file, exploiting the configured concurrency levels. Yield order is always
// the serial order — files in order, row groups in order within each file —
// whatever parallelism is configured.
func (s *Source) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	// Level 4: prefetch metadata of all files in a dedicated goroutine so
	// the footer round trips of file k+1... hide behind file k's data.
	// The singleflight in open dedups against the scan path's own opens.
	if s.Cfg.MetaPrefetch && len(s.Files) > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range s.Files[1:] {
				s.open(f) // errors resurface on the synchronous path
			}
		}()
		defer wg.Wait()
	}

	if s.Cfg.ParallelFiles > 1 && len(s.Files) > 1 {
		return s.scanFilesParallel(proj, preds, yield)
	}

	for _, f := range s.Files {
		if err := s.scanFile(f, proj, preds, yield); err != nil {
			return err
		}
	}
	return nil
}

var errScanCanceled = errors.New("scan: canceled")

// scanFilesParallel scans up to Cfg.ParallelFiles files concurrently
// (level 5). Every file's chunks flow through its own bounded channel and
// the consumer drains the channels in file order, so the yield sequence is
// identical to the serial scan while downloads and decoding of later files
// overlap with the consumption of earlier ones. The first error — a file
// error, in file order, or a yield error — cancels all in-flight workers.
//
// Admission is in file order, granted by the consumer: the active files are
// always the ParallelFiles lowest undrained ones. A plain semaphore would
// deadlock here — workers for later files could win every slot, fill their
// bounded channels, and block while the consumer waits on an earlier file
// whose worker never got a slot.
func (s *Source) scanFilesParallel(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	type item struct {
		chunk *columnar.Chunk
		err   error
	}
	n := len(s.Files)
	width := s.Cfg.ParallelFiles
	if width > n {
		width = n
	}
	chans := make([]chan item, n)
	starts := make([]chan struct{}, n)
	done := make(chan struct{})
	var cancel sync.Once
	stop := func() { cancel.Do(func() { close(done) }) }
	defer stop()

	for i, f := range s.Files {
		// Buffer 2: the file worker may run one chunk ahead of the
		// consumer, mirroring the row-group double buffer's depth.
		chans[i] = make(chan item, 2)
		starts[i] = make(chan struct{})
		go func(i int, f FileRef) {
			defer close(chans[i])
			select {
			case <-starts[i]:
			case <-done:
				return
			}
			err := s.scanFile(f, proj, preds, func(c *columnar.Chunk) error {
				select {
				case chans[i] <- item{chunk: c}:
					return nil
				case <-done:
					return errScanCanceled
				}
			})
			if err != nil && !errors.Is(err, errScanCanceled) {
				select {
				case chans[i] <- item{err: err}:
				case <-done:
				}
			}
		}(i, f)
	}
	for i := 0; i < width; i++ {
		close(starts[i])
	}

	for i := range chans {
		for it := range chans[i] {
			if it.err != nil {
				return it.err
			}
			if err := yield(it.chunk); err != nil {
				return err
			}
		}
		// File i is fully drained: admit the next one.
		if next := i + width; next < n {
			close(starts[next])
		}
	}
	return nil
}

func (s *Source) scanFile(f FileRef, proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	r, h, err := s.open(f)
	if err != nil {
		return err
	}
	meta := r.Meta()
	cols, outSchema, err := resolveProjection(meta.Schema, proj)
	if err != nil {
		return err
	}
	keep := lpq.PruneRowGroups(meta, preds)
	s.mu.Lock()
	s.rowGroupsPruned += int64(meta.NumRowGroups() - len(keep))
	if len(keep) == 0 {
		s.filesAllPruned++
	}
	s.mu.Unlock()
	if len(keep) == 0 {
		// The worker loaded only the footer, pruned everything, and
		// returns an empty result — the 100–200 ms workers of Figure 11.
		return nil
	}

	type fetched struct {
		chunk *columnar.Chunk
		err   error
	}
	fetch := func(g int) fetched {
		c, err := s.readRowGroup(r, h, meta, g, cols, outSchema)
		return fetched{chunk: c, err: err}
	}

	if !s.Cfg.DoubleBuffer {
		for _, g := range keep {
			res := fetch(g)
			if res.err != nil {
				return res.err
			}
			s.mu.Lock()
			s.rowGroupsRead++
			s.mu.Unlock()
			if err := yield(res.chunk); err != nil {
				return err
			}
		}
		return nil
	}

	// Level 3: double buffering — download row group g+1 while the
	// consumer processes g.
	next := make(chan fetched, 1)
	go func() { next <- fetch(keep[0]) }()
	for i := range keep {
		res := <-next
		if i+1 < len(keep) {
			g := keep[i+1]
			go func() { next <- fetch(g) }()
		}
		if res.err != nil {
			if i+1 < len(keep) {
				<-next // drain the in-flight prefetch
			}
			return res.err
		}
		s.mu.Lock()
		s.rowGroupsRead++
		s.mu.Unlock()
		if err := yield(res.chunk); err != nil {
			if i+1 < len(keep) {
				<-next
			}
			return err
		}
	}
	return nil
}

// readRowGroup downloads the projected column chunks of one row group
// (level 2: in parallel when configured) and decodes them.
func (s *Source) readRowGroup(r *lpq.Reader, h *s3fs.File, meta *lpq.FileMeta, g int, cols []int, outSchema *columnar.Schema) (*columnar.Chunk, error) {
	rg := &meta.RowGroups[g]
	out := &columnar.Chunk{Schema: outSchema, Columns: make([]*columnar.Vector, len(cols))}

	readOne := func(slot int, ci int) error {
		cc := rg.Columns[ci]
		stored, err := h.ReadRange(cc.Offset, cc.CompressedLen)
		if err != nil {
			return err
		}
		// Reuse a pooled decompression scratch buffer; decoders copy
		// values out, so the buffer can be recycled immediately.
		var bp *[]byte
		if x := s.scratch.Get(); x != nil {
			bp = x.(*[]byte)
		} else {
			bp = new([]byte)
		}
		v, buf, err := lpq.DecodeColumnChunkBuf(stored, meta.Schema.Fields[ci].Type, cc, rg.NumRows, *bp)
		*bp = buf
		s.scratch.Put(bp)
		if err != nil {
			return err
		}
		out.Columns[slot] = v
		return nil
	}

	if !s.Cfg.ParallelColumns || len(cols) == 1 {
		for slot, ci := range cols {
			if err := readOne(slot, ci); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cols))
	for slot, ci := range cols {
		slot, ci := slot, ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[slot] = readOne(slot, ci)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func resolveProjection(schema *columnar.Schema, proj []string) ([]int, *columnar.Schema, error) {
	if proj == nil {
		cols := make([]int, schema.Len())
		for i := range cols {
			cols[i] = i
		}
		return cols, schema, nil
	}
	cols := make([]int, len(proj))
	fields := make([]columnar.Field, len(proj))
	for i, name := range proj {
		ci := schema.Index(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("scan: column %q not in file", name)
		}
		cols[i] = ci
		fields[i] = schema.Fields[ci]
	}
	return cols, columnar.NewSchema(fields...), nil
}

// Ensure interface compliance.
var _ engine.Source = (*Source)(nil)
