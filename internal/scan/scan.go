// Package scan implements Lambada's S3-based Parquet scan operator
// (§4.3.2, Figure 8). It exploits concurrency at five levels — the four the
// paper identifies, in the priority order the paper prescribes, plus a
// file-level worker pool on top:
//
//	(5) multiple lpq files scanned concurrently by a bounded worker pool
//	    (Config.ParallelFiles), chunks delivered in file order through
//	    per-file channels so the yield order matches the serial scan;
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) up to two row groups downloaded asynchronously (double buffering),
//	    overlapping download with decompression of the previous group;
//	(2) column chunks of small/single-row-group files fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since extra
//	    requests cost money (Figure 7).
//
// The operator implements engine.Source, so optimized plans push selections
// (as min/max prune predicates) and projections into it.
package scan

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/s3fs"
)

// Config tunes the operator.
type Config struct {
	// ChunkBytes is the per-request range size (level 1). Default 16 MiB.
	ChunkBytes int64
	// Conns is the number of concurrent connections modeled per transfer.
	Conns int
	// DoubleBuffer enables row-group prefetch (level 3). The paper
	// disables it on workers with too little main memory.
	DoubleBuffer bool
	// ParallelColumns enables concurrent column-chunk downloads (level 2).
	ParallelColumns bool
	// MetaPrefetch fetches all files' footers eagerly (level 4).
	MetaPrefetch bool
	// ParallelFiles bounds how many files are scanned concurrently
	// (level 5). 0 or 1 scans serially; DefaultConfig uses GOMAXPROCS.
	// Chunk delivery order is unaffected: chunks surface in file order,
	// row groups in order within each file, exactly as a serial scan.
	ParallelFiles int
	// CoalesceGapBytes is the largest hole merged into one GET when
	// fetching multiple chunk/page ranges (0 = s3fs.DefaultCoalesceGap,
	// negative = no coalescing — one GET per range, the pre-coalescing
	// request pattern, kept for ablations).
	CoalesceGapBytes int64
	// DisableLateMaterialize makes ScanFiltered fetch every projected
	// column of every surviving row group before filtering (the
	// pre-late-materialization read pattern, kept for ablations). Results
	// are byte-identical either way.
	DisableLateMaterialize bool
}

// gap resolves the configured coalescing gap (-1 disables).
func (c *Config) gap() int64 {
	if c.CoalesceGapBytes < 0 {
		return -1
	}
	if c.CoalesceGapBytes == 0 {
		return s3fs.DefaultCoalesceGap
	}
	return c.CoalesceGapBytes
}

// DefaultConfig mirrors the paper's operator — all levels enabled, 16 MiB
// chunks, four connections — plus file-level parallelism across all CPUs.
func DefaultConfig() Config {
	return Config{
		ChunkBytes:      s3fs.DefaultChunkBytes,
		Conns:           4,
		DoubleBuffer:    true,
		ParallelColumns: true,
		MetaPrefetch:    true,
		ParallelFiles:   runtime.GOMAXPROCS(0),
	}
}

// FileRef names one S3 object holding an lpq file.
type FileRef struct {
	Bucket string
	Key    string
}

// Source scans a list of lpq files from S3. It implements engine.Source.
type Source struct {
	Client *s3.Client
	Files  []FileRef
	Cfg    Config

	mu    sync.Mutex
	opens map[string]*openState
	// handles lists every successfully opened file handle, for summing
	// billed request/byte counters without touching the opens map.
	handles []*s3fs.File

	// scratch pools decompression buffers across row-group reads.
	scratch sync.Pool

	// Stats.
	rowGroupsRead   int64
	rowGroupsPruned int64
	filesAllPruned  int64
	pagesRead       int64
	pagesPruned     int64
	pagesFiltered   int64
}

// openState is the singleflight slot of one file's footer fetch: however
// many goroutines race to open a file (the metadata prefetcher, level-5 file
// workers, the synchronous path), the footer is fetched exactly once and
// everyone shares the result.
type openState struct {
	once sync.Once
	r    *lpq.Reader
	h    *s3fs.File
	err  error
}

// New returns a source over files.
func New(client *s3.Client, cfg Config, files ...FileRef) *Source {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = s3fs.DefaultChunkBytes
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	return &Source{
		Client: client,
		Files:  files,
		Cfg:    cfg,
		opens:  make(map[string]*openState),
	}
}

// Stats reports scan counters.
type Stats struct {
	RowGroupsRead   int64
	RowGroupsPruned int64
	FilesAllPruned  int64
	// PagesRead counts column pages fetched; PagesPruned counts page slots
	// skipped by page-index statistics; PagesFiltered counts page slots
	// whose filter selection came back empty, so payload columns were
	// never fetched (late materialization).
	PagesRead     int64
	PagesPruned   int64
	PagesFiltered int64
	// BilledGets / BilledBytes sum the S3 requests and bytes issued by
	// every file handle this source opened — the two cost drivers of the
	// paper's pricing model.
	BilledGets  int64
	BilledBytes int64
}

// Stats returns the operator's counters.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		RowGroupsRead:   s.rowGroupsRead,
		RowGroupsPruned: s.rowGroupsPruned,
		FilesAllPruned:  s.filesAllPruned,
		PagesRead:       s.pagesRead,
		PagesPruned:     s.pagesPruned,
		PagesFiltered:   s.pagesFiltered,
	}
	for _, h := range s.handles {
		st.BilledGets += h.Requests()
		st.BilledBytes += h.BytesRead()
	}
	return st
}

// open returns the (cached) reader and handle of f. Concurrent callers for
// the same file block on one in-flight fetch instead of issuing duplicates;
// a failed open is forgotten so a later caller can retry.
func (s *Source) open(f FileRef) (*lpq.Reader, *s3fs.File, error) {
	id := f.Bucket + "/" + f.Key
	s.mu.Lock()
	st, ok := s.opens[id]
	if !ok {
		st = &openState{}
		s.opens[id] = st
	}
	s.mu.Unlock()

	st.once.Do(func() {
		h, err := s3fs.Open(s.Client, f.Bucket, f.Key)
		if err != nil {
			st.err = err
		} else {
			h.ChunkBytes = s.Cfg.ChunkBytes
			h.Conns = s.Cfg.Conns
			r, err := lpq.OpenReader(h, h.Size())
			if err != nil {
				st.err = fmt.Errorf("scan: opening %s: %w", id, err)
			} else {
				st.r, st.h = r, h
			}
		}
		s.mu.Lock()
		if st.err != nil {
			delete(s.opens, id)
		} else {
			s.handles = append(s.handles, st.h)
		}
		s.mu.Unlock()
	})
	return st.r, st.h, st.err
}

// Schema returns the schema of the first file.
func (s *Source) Schema() (*columnar.Schema, error) {
	if len(s.Files) == 0 {
		return nil, fmt.Errorf("scan: no files")
	}
	r, _, err := s.open(s.Files[0])
	if err != nil {
		return nil, err
	}
	return r.Schema(), nil
}

// TotalRows sums the row counts recorded in every file's footer — the
// planner's cardinality statistic (a metadata-only read: footers are a few
// hundred bytes, no column data is transferred). The stage planner decides
// broadcast-vs-shuffle per join from these counts. Footer opens run up to
// Cfg.ParallelFiles at a time (this sits on the driver's plan-time critical
// path; DES deployments force the knob to 1 and stay single-threaded), and
// opens are cached, so a later Scan pays no second round trip.
func (s *Source) TotalRows() (int64, error) {
	return s.sumFooters(func(m *lpq.FileMeta) int64 { return m.TotalRows })
}

// EstimateRows bounds the rows that may satisfy preds, summing the
// page-granular footer estimate over every file (same metadata-only cost
// as TotalRows; with no predicates it equals TotalRows exactly). This is
// the planner statistic behind pruning-aware stage fan-out: selective
// queries size their scan fleets from it instead of the full table.
func (s *Source) EstimateRows(preds []lpq.Predicate) (int64, error) {
	return s.sumFooters(func(m *lpq.FileMeta) int64 { return lpq.EstimateRows(m, preds) })
}

// EstimateFileRows bounds the rows of one file that may satisfy preds —
// the per-file statistic behind pruned worker file assignment.
func (s *Source) EstimateFileRows(f FileRef, preds []lpq.Predicate) (int64, error) {
	r, _, err := s.open(f)
	if err != nil {
		return 0, err
	}
	return lpq.EstimateRows(r.Meta(), preds), nil
}

// sumFooters warms every file's footer (in parallel up to ParallelFiles;
// opens are cached, so a later Scan pays no second round trip) and sums fn
// over the metadata.
func (s *Source) sumFooters(fn func(*lpq.FileMeta) int64) (int64, error) {
	if err := s.warmOpen(); err != nil {
		return 0, err
	}
	var total int64
	for _, f := range s.Files {
		r, _, err := s.open(f)
		if err != nil {
			return 0, err
		}
		total += fn(r.Meta())
	}
	return total, nil
}

// warmOpen opens all files' footers, up to Cfg.ParallelFiles at a time.
func (s *Source) warmOpen() error {
	if s.Cfg.ParallelFiles <= 1 || len(s.Files) <= 1 {
		return nil
	}
	sem := make(chan struct{}, s.Cfg.ParallelFiles)
	errs := make([]error, len(s.Files))
	var wg sync.WaitGroup
	for i, f := range s.Files {
		wg.Add(1)
		go func(i int, f FileRef) {
			defer wg.Done()
			sem <- struct{}{}
			_, _, errs[i] = s.open(f)
			<-sem
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Scan yields the projected columns of every non-pruned row group of every
// file, exploiting the configured concurrency levels. Yield order is always
// the serial order — files in order, row groups in order within each file —
// whatever parallelism is configured.
func (s *Source) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	return s.scanAll(func(f FileRef, y func(*columnar.Chunk) error) error {
		return s.scanFile(f, proj, preds, y)
	}, yield)
}

// ScanFiltered is the two-phase late-materialized scan (engine.
// FilterableSource): per surviving row group it fetches the filter's
// columns first, evaluates the filter into a per-page selection, and
// fetches payload columns only for pages where rows passed. Yielded chunks
// contain exactly the selected rows, in serial scan order.
func (s *Source) ScanFiltered(proj []string, preds []lpq.Predicate, filter engine.Expr, yield func(*columnar.Chunk) error) error {
	return s.scanAll(func(f FileRef, y func(*columnar.Chunk) error) error {
		return s.scanFileFiltered(f, proj, preds, filter, y)
	}, yield)
}

// scanAll owns the cross-file orchestration shared by Scan and
// ScanFiltered: metadata prefetch (level 4) and the bounded file-parallel
// pool (level 5) around the given per-file scan.
func (s *Source) scanAll(perFile func(FileRef, func(*columnar.Chunk) error) error, yield func(*columnar.Chunk) error) error {
	// Level 4: prefetch metadata of all files in a dedicated goroutine so
	// the footer round trips of file k+1... hide behind file k's data.
	// The singleflight in open dedups against the scan path's own opens.
	if s.Cfg.MetaPrefetch && len(s.Files) > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range s.Files[1:] {
				s.open(f) // errors resurface on the synchronous path
			}
		}()
		defer wg.Wait()
	}

	if s.Cfg.ParallelFiles > 1 && len(s.Files) > 1 {
		return s.scanFilesParallel(perFile, yield)
	}

	for _, f := range s.Files {
		if err := perFile(f, yield); err != nil {
			return err
		}
	}
	return nil
}

var errScanCanceled = errors.New("scan: canceled")

// scanFilesParallel scans up to Cfg.ParallelFiles files concurrently
// (level 5). Every file's chunks flow through its own bounded channel and
// the consumer drains the channels in file order, so the yield sequence is
// identical to the serial scan while downloads and decoding of later files
// overlap with the consumption of earlier ones. The first error — a file
// error, in file order, or a yield error — cancels all in-flight workers.
//
// Admission is in file order, granted by the consumer: the active files are
// always the ParallelFiles lowest undrained ones. A plain semaphore would
// deadlock here — workers for later files could win every slot, fill their
// bounded channels, and block while the consumer waits on an earlier file
// whose worker never got a slot.
func (s *Source) scanFilesParallel(perFile func(FileRef, func(*columnar.Chunk) error) error, yield func(*columnar.Chunk) error) error {
	type item struct {
		chunk *columnar.Chunk
		err   error
	}
	n := len(s.Files)
	width := s.Cfg.ParallelFiles
	if width > n {
		width = n
	}
	chans := make([]chan item, n)
	starts := make([]chan struct{}, n)
	done := make(chan struct{})
	var cancel sync.Once
	stop := func() { cancel.Do(func() { close(done) }) }
	defer stop()

	for i, f := range s.Files {
		// Buffer 2: the file worker may run one chunk ahead of the
		// consumer, mirroring the row-group double buffer's depth.
		chans[i] = make(chan item, 2)
		starts[i] = make(chan struct{})
		go func(i int, f FileRef) {
			defer close(chans[i])
			select {
			case <-starts[i]:
			case <-done:
				return
			}
			err := perFile(f, func(c *columnar.Chunk) error {
				select {
				case chans[i] <- item{chunk: c}:
					return nil
				case <-done:
					return errScanCanceled
				}
			})
			if err != nil && !errors.Is(err, errScanCanceled) {
				select {
				case chans[i] <- item{err: err}:
				case <-done:
				}
			}
		}(i, f)
	}
	for i := 0; i < width; i++ {
		close(starts[i])
	}

	for i := range chans {
		for it := range chans[i] {
			if it.err != nil {
				return it.err
			}
			if err := yield(it.chunk); err != nil {
				return err
			}
		}
		// File i is fully drained: admit the next one.
		if next := i + width; next < n {
			close(starts[next])
		}
	}
	return nil
}

func (s *Source) scanFile(f FileRef, proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	r, h, err := s.open(f)
	if err != nil {
		return err
	}
	meta := r.Meta()
	cols, outSchema, err := resolveProjection(meta.Schema, proj)
	if err != nil {
		return err
	}
	keep := lpq.PruneRowGroups(meta, preds)
	s.mu.Lock()
	s.rowGroupsPruned += int64(meta.NumRowGroups() - len(keep))
	if len(keep) == 0 {
		s.filesAllPruned++
	}
	s.mu.Unlock()
	if len(keep) == 0 {
		// The worker loaded only the footer, pruned everything, and
		// returns an empty result — the 100–200 ms workers of Figure 11.
		return nil
	}

	return s.scanGroups(keep, func(g int) (*columnar.Chunk, error) {
		return s.readRowGroup(r, h, meta, g, cols, outSchema)
	}, yield)
}

// scanFileFiltered is scanFile's late-materialized twin: surviving row
// groups go through the two-phase readRowGroupFiltered, and groups whose
// selection comes back entirely empty yield nothing.
func (s *Source) scanFileFiltered(f FileRef, proj []string, preds []lpq.Predicate, filter engine.Expr, yield func(*columnar.Chunk) error) error {
	r, h, err := s.open(f)
	if err != nil {
		return err
	}
	meta := r.Meta()
	cols, outSchema, err := resolveProjection(meta.Schema, proj)
	if err != nil {
		return err
	}
	keep := lpq.PruneRowGroups(meta, preds)
	s.mu.Lock()
	s.rowGroupsPruned += int64(meta.NumRowGroups() - len(keep))
	if len(keep) == 0 {
		s.filesAllPruned++
	}
	s.mu.Unlock()
	if len(keep) == 0 {
		return nil
	}

	if s.Cfg.DisableLateMaterialize {
		// Ablation: fetch everything like Scan, filter afterwards.
		var sel []int
		return s.scanGroups(keep, func(g int) (*columnar.Chunk, error) {
			c, err := s.readRowGroup(r, h, meta, g, cols, outSchema)
			if err != nil {
				return nil, err
			}
			sel, err = engine.FilterSelection(c, filter, sel)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				return nil, nil
			}
			if len(sel) == c.NumRows() {
				return c, nil
			}
			return c.Gather(sel), nil
		}, yield)
	}

	return s.scanGroups(keep, func(g int) (*columnar.Chunk, error) {
		return s.readRowGroupFiltered(r, h, meta, g, cols, outSchema, preds, filter)
	}, yield)
}

// scanGroups drains the kept row groups of one file through fetch in
// order, double-buffered when configured (level 3: download row group g+1
// while the consumer processes g). A nil chunk from fetch (fully filtered
// group) is counted as read but yields nothing.
func (s *Source) scanGroups(keep []int, fetch func(g int) (*columnar.Chunk, error), yield func(*columnar.Chunk) error) error {
	deliver := func(c *columnar.Chunk) error {
		s.mu.Lock()
		s.rowGroupsRead++
		s.mu.Unlock()
		if c == nil {
			return nil
		}
		return yield(c)
	}

	type fetched struct {
		chunk *columnar.Chunk
		err   error
	}

	if !s.Cfg.DoubleBuffer {
		for _, g := range keep {
			c, err := fetch(g)
			if err != nil {
				return err
			}
			if err := deliver(c); err != nil {
				return err
			}
		}
		return nil
	}

	next := make(chan fetched, 1)
	fetchInto := func(g int) {
		c, err := fetch(g)
		next <- fetched{chunk: c, err: err}
	}
	go fetchInto(keep[0])
	for i := range keep {
		res := <-next
		if i+1 < len(keep) {
			g := keep[i+1]
			go fetchInto(g)
		}
		if res.err != nil {
			if i+1 < len(keep) {
				<-next // drain the in-flight prefetch
			}
			return res.err
		}
		if err := deliver(res.chunk); err != nil {
			if i+1 < len(keep) {
				<-next
			}
			return err
		}
	}
	return nil
}

// readRowGroup downloads the projected column chunks of one row group in
// one coalesced batch of range reads and decodes them.
func (s *Source) readRowGroup(r *lpq.Reader, h *s3fs.File, meta *lpq.FileMeta, g int, cols []int, outSchema *columnar.Schema) (*columnar.Chunk, error) {
	rg := &meta.RowGroups[g]
	out := &columnar.Chunk{Schema: outSchema, Columns: make([]*columnar.Vector, len(cols))}

	ranges := make([]s3fs.Range, len(cols))
	for slot, ci := range cols {
		cc := &rg.Columns[ci]
		ranges[slot] = s3fs.Range{Off: cc.Offset, Len: cc.CompressedLen}
	}
	bufs, err := s.readRangesMaybeParallel(h, ranges)
	if err != nil {
		return nil, err
	}
	for slot, ci := range cols {
		v, err := s.decodeChunk(bufs[slot], meta.Schema.Fields[ci].Type, rg.Columns[ci], rg.NumRows)
		if err != nil {
			return nil, err
		}
		out.Columns[slot] = v
	}
	return out, nil
}

// decodeChunk decodes stored column-chunk bytes with a pooled decompression
// scratch buffer; decoders copy values out, so the buffer is recycled
// immediately.
func (s *Source) decodeChunk(stored []byte, t columnar.Type, cc lpq.ColumnChunkMeta, numRows int64) (*columnar.Vector, error) {
	var bp *[]byte
	if x := s.scratch.Get(); x != nil {
		bp = x.(*[]byte)
	} else {
		bp = new([]byte)
	}
	v, buf, err := lpq.DecodeColumnChunkBuf(stored, t, cc, numRows, *bp)
	*bp = buf
	s.scratch.Put(bp)
	return v, err
}

// decodePage decodes one page of a paged chunk with the pooled scratch.
func (s *Source) decodePage(stored []byte, t columnar.Type, cc lpq.ColumnChunkMeta, pg lpq.PageMeta) (*columnar.Vector, error) {
	var bp *[]byte
	if x := s.scratch.Get(); x != nil {
		bp = x.(*[]byte)
	} else {
		bp = new([]byte)
	}
	v, buf, err := lpq.DecodePage(stored, t, cc, pg, *bp)
	*bp = buf
	s.scratch.Put(bp)
	return v, err
}

// readRangesMaybeParallel fetches the ranges through coalesced spans: a gap
// of at most Cfg.CoalesceGapBytes between wanted ranges is fetched as dead
// bytes inside one GET instead of paying another request (the Figure 7
// request-cost trade-off, now at range granularity). Spans download
// concurrently when ParallelColumns is set (level 2).
func (s *Source) readRangesMaybeParallel(h *s3fs.File, ranges []s3fs.Range) ([][]byte, error) {
	gap := s.Cfg.gap()
	spans := s3fs.PlanSpans(ranges, gap)
	out := make([][]byte, len(ranges))
	fetchSpan := func(sp s3fs.Span) error {
		buf, err := h.ReadRange(sp.Off, sp.Len)
		if err != nil {
			return err
		}
		if int64(len(buf)) < sp.Len {
			return fmt.Errorf("scan: span [%d,%d) truncated to %d bytes", sp.Off, sp.Off+sp.Len, len(buf))
		}
		sp.Cut(buf, ranges, out)
		return nil
	}
	if !s.Cfg.ParallelColumns || len(spans) <= 1 {
		for _, sp := range spans {
			if err := fetchSpan(sp); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fetchSpan(sp)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readRowGroupFiltered is the two-phase read of one row group:
//
//	(1) prune the page index against the scan's predicates;
//	(2) fetch and decode the filter's columns for surviving pages, in one
//	    coalesced batch;
//	(3) evaluate the filter per page into a selection vector; pages with an
//	    empty selection drop out;
//	(4) fetch payload columns only for pages that still have selected rows,
//	    again coalesced;
//	(5) gather filter and payload columns by the selection, page by page in
//	    order, into one output chunk.
//
// Returns nil when no row of the group passes — the caller yields nothing
// and the payload columns were never transferred.
func (s *Source) readRowGroupFiltered(r *lpq.Reader, h *s3fs.File, meta *lpq.FileMeta, g int, cols []int, outSchema *columnar.Schema, preds []lpq.Predicate, filter engine.Expr) (*columnar.Chunk, error) {
	rg := &meta.RowGroups[g]

	// Split the projection into filter columns and payload columns. The
	// optimizer guarantees filter columns ⊆ projection.
	isFilterCol := map[string]bool{}
	for _, name := range filter.Columns(nil) {
		isFilterCol[name] = true
	}
	var fslots, pslots []int // slots into cols/out.Columns
	for slot, ci := range cols {
		if isFilterCol[meta.Schema.Fields[ci].Name] {
			fslots = append(fslots, slot)
		} else {
			pslots = append(pslots, slot)
		}
	}
	if len(fslots) == 0 {
		// Filter references no projected column (e.g. constant predicate):
		// degrade to the unfiltered read and let the caller's filter run.
		c, err := s.readRowGroup(r, h, meta, g, cols, outSchema)
		if err != nil {
			return nil, err
		}
		sel, err := engine.FilterSelection(c, filter, nil)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			return nil, nil
		}
		if len(sel) == c.NumRows() {
			return c, nil
		}
		return c.Gather(sel), nil
	}

	// Phase 1: page-index pruning. Every column of a row group is paged at
	// the same row boundaries (or the whole group is unpaged), so page slot
	// i of every column covers the same rows.
	keep := lpq.PrunePages(meta, g, preds)
	npages := len(keep)
	for _, ci := range cols {
		if n := len(rg.Columns[ci].PageSpans(rg.NumRows)); n != npages {
			return nil, fmt.Errorf("scan: column %q has %d pages, row group has %d page slots",
				meta.Schema.Fields[ci].Name, n, npages)
		}
	}
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	s.mu.Lock()
	s.pagesPruned += int64(npages - kept)
	s.mu.Unlock()
	if kept == 0 {
		return nil, nil
	}

	// Phase 2: fetch + decode filter columns for surviving pages.
	fvecs, err := s.fetchPages(h, meta, g, cols, fslots, keep)
	if err != nil {
		return nil, err
	}

	// Phase 3: evaluate the filter page by page into selections.
	fschema := mustProjectSlots(outSchema, fslots)
	sels := make([][]int, npages)
	total := 0
	filtered := 0
	for p := 0; p < npages; p++ {
		if !keep[p] {
			continue
		}
		fc := &columnar.Chunk{Schema: fschema, Columns: make([]*columnar.Vector, len(fslots))}
		for i, slot := range fslots {
			fc.Columns[i] = fvecs[slot][p]
		}
		sel, err := engine.FilterSelection(fc, filter, nil)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			keep[p] = false
			filtered++
			continue
		}
		sels[p] = sel
		total += len(sel)
	}
	s.mu.Lock()
	s.pagesFiltered += int64(filtered)
	s.mu.Unlock()
	if total == 0 {
		return nil, nil
	}

	// Phase 4: fetch payload columns only for pages with selected rows.
	pvecs, err := s.fetchPages(h, meta, g, cols, pslots, keep)
	if err != nil {
		return nil, err
	}

	// Phase 5: gather by selection, page by page in order.
	out := columnar.NewChunk(outSchema, total)
	for p := 0; p < npages; p++ {
		if !keep[p] {
			continue
		}
		sel := sels[p]
		for slot := range cols {
			var src *columnar.Vector
			if vs, ok := fvecs[slot]; ok {
				src = vs[p]
			} else {
				src = pvecs[slot][p]
			}
			out.Columns[slot].AppendGather(src, sel)
		}
	}
	return out, nil
}

// fetchPages fetches and decodes the kept pages of the given projection
// slots of row group g, returning vecs[slot][page]. Each column is fetched
// as ONE covering range from its first to its last kept page: interior
// holes (pruned or filtered-out pages between kept ones) are billed dead
// bytes, but the range never exceeds the column chunk and never takes more
// than the one request the full-chunk read would — so the fetch dominates
// the pre-page-index pattern in both billed GETs and billed bytes, and
// ReadRanges' cross-column coalescing can only improve the request count
// further. Columns with no kept page are skipped outright.
func (s *Source) fetchPages(h *s3fs.File, meta *lpq.FileMeta, g int, cols, slots []int, keep []bool) (map[int][]*columnar.Vector, error) {
	rg := &meta.RowGroups[g]
	npages := len(keep)
	lo, hi := -1, -1 // kept-page window, shared by every column
	for p, k := range keep {
		if k {
			if lo < 0 {
				lo = p
			}
			hi = p
		}
	}
	vecs := make(map[int][]*columnar.Vector, len(slots))
	for _, slot := range slots {
		vecs[slot] = make([]*columnar.Vector, npages)
	}
	if lo < 0 || len(slots) == 0 {
		return vecs, nil
	}

	ranges := make([]s3fs.Range, len(slots))
	for i, slot := range slots {
		cc := &rg.Columns[cols[slot]]
		pages := cc.PageSpans(rg.NumRows)
		start := pages[lo].RelOff
		end := pages[hi].RelOff + pages[hi].CompressedLen
		ranges[i] = s3fs.Range{Off: cc.Offset + start, Len: end - start}
	}
	bufs, err := s.readRangesMaybeParallel(h, ranges)
	if err != nil {
		return nil, err
	}
	read := 0
	for i, slot := range slots {
		ci := cols[slot]
		cc := rg.Columns[ci]
		pages := cc.PageSpans(rg.NumRows)
		base := pages[lo].RelOff
		for p := lo; p <= hi; p++ {
			if !keep[p] {
				continue
			}
			pg := pages[p]
			off := pg.RelOff - base
			v, err := s.decodePage(bufs[i][off:off+pg.CompressedLen], meta.Schema.Fields[ci].Type, cc, pg)
			if err != nil {
				return nil, err
			}
			vecs[slot][p] = v
			read++
		}
	}
	s.mu.Lock()
	s.pagesRead += int64(read)
	s.mu.Unlock()
	return vecs, nil
}

// mustProjectSlots builds the schema of the given slots of schema.
func mustProjectSlots(schema *columnar.Schema, slots []int) *columnar.Schema {
	fields := make([]columnar.Field, len(slots))
	for i, slot := range slots {
		fields[i] = schema.Fields[slot]
	}
	return columnar.NewSchema(fields...)
}

func resolveProjection(schema *columnar.Schema, proj []string) ([]int, *columnar.Schema, error) {
	if proj == nil {
		cols := make([]int, schema.Len())
		for i := range cols {
			cols[i] = i
		}
		return cols, schema, nil
	}
	cols := make([]int, len(proj))
	fields := make([]columnar.Field, len(proj))
	for i, name := range proj {
		ci := schema.Index(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("scan: column %q not in file", name)
		}
		cols[i] = ci
		fields[i] = schema.Fields[ci]
	}
	return cols, columnar.NewSchema(fields...), nil
}

// Ensure interface compliance.
var (
	_ engine.Source           = (*Source)(nil)
	_ engine.FilterableSource = (*Source)(nil)
)
