// Package scan implements Lambada's S3-based Parquet scan operator
// (§4.3.2, Figure 8). It exploits concurrency at the four levels the paper
// identifies, in the priority order the paper prescribes:
//
//	(4) metadata of all files prefetched eagerly in a dedicated thread;
//	(3) up to two row groups downloaded asynchronously (double buffering),
//	    overlapping download with decompression of the previous group;
//	(2) column chunks of small/single-row-group files fetched in parallel;
//	(1) multiple chunked requests per read, only as a fallback, since extra
//	    requests cost money (Figure 7).
//
// The operator implements engine.Source, so optimized plans push selections
// (as min/max prune predicates) and projections into it.
package scan

import (
	"fmt"
	"sync"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/s3fs"
)

// Config tunes the operator.
type Config struct {
	// ChunkBytes is the per-request range size (level 1). Default 16 MiB.
	ChunkBytes int64
	// Conns is the number of concurrent connections modeled per transfer.
	Conns int
	// DoubleBuffer enables row-group prefetch (level 3). The paper
	// disables it on workers with too little main memory.
	DoubleBuffer bool
	// ParallelColumns enables concurrent column-chunk downloads (level 2).
	ParallelColumns bool
	// MetaPrefetch fetches all files' footers eagerly (level 4).
	MetaPrefetch bool
}

// DefaultConfig mirrors the paper's operator: all levels enabled, 16 MiB
// chunks, four connections.
func DefaultConfig() Config {
	return Config{
		ChunkBytes:      s3fs.DefaultChunkBytes,
		Conns:           4,
		DoubleBuffer:    true,
		ParallelColumns: true,
		MetaPrefetch:    true,
	}
}

// FileRef names one S3 object holding an lpq file.
type FileRef struct {
	Bucket string
	Key    string
}

// Source scans a list of lpq files from S3. It implements engine.Source.
type Source struct {
	Client *s3.Client
	Files  []FileRef
	Cfg    Config

	mu      sync.Mutex
	readers map[string]*lpq.Reader
	handles map[string]*s3fs.File

	// Stats.
	rowGroupsRead   int64
	rowGroupsPruned int64
	filesAllPruned  int64
}

// New returns a source over files.
func New(client *s3.Client, cfg Config, files ...FileRef) *Source {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = s3fs.DefaultChunkBytes
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	return &Source{
		Client:  client,
		Files:   files,
		Cfg:     cfg,
		readers: make(map[string]*lpq.Reader),
		handles: make(map[string]*s3fs.File),
	}
}

// Stats reports scan counters.
type Stats struct {
	RowGroupsRead   int64
	RowGroupsPruned int64
	FilesAllPruned  int64
}

// Stats returns the operator's counters.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{RowGroupsRead: s.rowGroupsRead, RowGroupsPruned: s.rowGroupsPruned, FilesAllPruned: s.filesAllPruned}
}

func (s *Source) open(f FileRef) (*lpq.Reader, *s3fs.File, error) {
	id := f.Bucket + "/" + f.Key
	s.mu.Lock()
	if r, ok := s.readers[id]; ok {
		h := s.handles[id]
		s.mu.Unlock()
		return r, h, nil
	}
	s.mu.Unlock()

	h, err := s3fs.Open(s.Client, f.Bucket, f.Key)
	if err != nil {
		return nil, nil, err
	}
	h.ChunkBytes = s.Cfg.ChunkBytes
	h.Conns = s.Cfg.Conns
	r, err := lpq.OpenReader(h, h.Size())
	if err != nil {
		return nil, nil, fmt.Errorf("scan: opening %s: %w", id, err)
	}
	s.mu.Lock()
	s.readers[id] = r
	s.handles[id] = h
	s.mu.Unlock()
	return r, h, nil
}

// Schema returns the schema of the first file.
func (s *Source) Schema() (*columnar.Schema, error) {
	if len(s.Files) == 0 {
		return nil, fmt.Errorf("scan: no files")
	}
	r, _, err := s.open(s.Files[0])
	if err != nil {
		return nil, err
	}
	return r.Schema(), nil
}

// Scan yields the projected columns of every non-pruned row group of every
// file, exploiting the configured concurrency levels.
func (s *Source) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	// Level 4: prefetch metadata of all files in a dedicated goroutine so
	// the footer round trips of file k+1... hide behind file k's data.
	if s.Cfg.MetaPrefetch && len(s.Files) > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range s.Files[1:] {
				s.open(f) // errors resurface on the synchronous path
			}
		}()
		defer wg.Wait()
	}

	for _, f := range s.Files {
		if err := s.scanFile(f, proj, preds, yield); err != nil {
			return err
		}
	}
	return nil
}

func (s *Source) scanFile(f FileRef, proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	r, h, err := s.open(f)
	if err != nil {
		return err
	}
	meta := r.Meta()
	cols, outSchema, err := resolveProjection(meta.Schema, proj)
	if err != nil {
		return err
	}
	keep := lpq.PruneRowGroups(meta, preds)
	s.mu.Lock()
	s.rowGroupsPruned += int64(meta.NumRowGroups() - len(keep))
	if len(keep) == 0 {
		s.filesAllPruned++
	}
	s.mu.Unlock()
	if len(keep) == 0 {
		// The worker loaded only the footer, pruned everything, and
		// returns an empty result — the 100–200 ms workers of Figure 11.
		return nil
	}

	type fetched struct {
		chunk *columnar.Chunk
		err   error
	}
	fetch := func(g int) fetched {
		c, err := s.readRowGroup(r, h, meta, g, cols, outSchema)
		return fetched{chunk: c, err: err}
	}

	if !s.Cfg.DoubleBuffer {
		for _, g := range keep {
			res := fetch(g)
			if res.err != nil {
				return res.err
			}
			s.mu.Lock()
			s.rowGroupsRead++
			s.mu.Unlock()
			if err := yield(res.chunk); err != nil {
				return err
			}
		}
		return nil
	}

	// Level 3: double buffering — download row group g+1 while the
	// consumer processes g.
	next := make(chan fetched, 1)
	go func() { next <- fetch(keep[0]) }()
	for i := range keep {
		res := <-next
		if i+1 < len(keep) {
			g := keep[i+1]
			go func() { next <- fetch(g) }()
		}
		if res.err != nil {
			if i+1 < len(keep) {
				<-next // drain the in-flight prefetch
			}
			return res.err
		}
		s.mu.Lock()
		s.rowGroupsRead++
		s.mu.Unlock()
		if err := yield(res.chunk); err != nil {
			if i+1 < len(keep) {
				<-next
			}
			return err
		}
	}
	return nil
}

// readRowGroup downloads the projected column chunks of one row group
// (level 2: in parallel when configured) and decodes them.
func (s *Source) readRowGroup(r *lpq.Reader, h *s3fs.File, meta *lpq.FileMeta, g int, cols []int, outSchema *columnar.Schema) (*columnar.Chunk, error) {
	rg := &meta.RowGroups[g]
	out := &columnar.Chunk{Schema: outSchema, Columns: make([]*columnar.Vector, len(cols))}

	readOne := func(slot int, ci int) error {
		cc := rg.Columns[ci]
		stored, err := h.ReadRange(cc.Offset, cc.CompressedLen)
		if err != nil {
			return err
		}
		v, err := lpq.DecodeColumnChunk(stored, meta.Schema.Fields[ci].Type, cc, rg.NumRows)
		if err != nil {
			return err
		}
		out.Columns[slot] = v
		return nil
	}

	if !s.Cfg.ParallelColumns || len(cols) == 1 {
		for slot, ci := range cols {
			if err := readOne(slot, ci); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cols))
	for slot, ci := range cols {
		slot, ci := slot, ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[slot] = readOne(slot, ci)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func resolveProjection(schema *columnar.Schema, proj []string) ([]int, *columnar.Schema, error) {
	if proj == nil {
		cols := make([]int, schema.Len())
		for i := range cols {
			cols[i] = i
		}
		return cols, schema, nil
	}
	cols := make([]int, len(proj))
	fields := make([]columnar.Field, len(proj))
	for i, name := range proj {
		ci := schema.Index(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("scan: column %q not in file", name)
		}
		cols[i] = ci
		fields[i] = schema.Fields[ci]
	}
	return cols, columnar.NewSchema(fields...), nil
}

// Ensure interface compliance.
var _ engine.Source = (*Source)(nil)
