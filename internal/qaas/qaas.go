// Package qaas models the two commercial Query-as-a-Service systems the
// paper compares against (§5.4): Amazon Athena and Google BigQuery. Both
// charge $5 per TiB of input, but differ in what counts as input — Athena
// bills only the selected rows of the used columns ("selections are pushed
// into the cost model"), BigQuery always bills whole columns — and in their
// scaling behaviour: Athena's latency grows linearly with the data size,
// BigQuery's sublinearly, plus a long load step into its proprietary format.
//
// The latency calibrations anchor on the paper's reported numbers (Q1/Q6 at
// SF 1k and 10k); costs follow directly from the published pricing rules.
package qaas

import (
	"fmt"
	"math"
	"time"

	"lambada/internal/awssim/pricing"
)

// Dataset size constants at scale factor 1000 (§5.1, §5.4.1).
const (
	// ParquetBytesSF1k is the LINEITEM table in Parquet+GZIP (151 GiB).
	ParquetBytesSF1k = 151 << 30
	// CSVBytesSF1k is the uncompressed CSV size (705 GiB).
	CSVBytesSF1k = 705 << 30
	// BigQueryBytesSF1k is the table loaded into BigQuery's proprietary
	// format ("823 GiB ... over 5× larger than our Parquet files").
	BigQueryBytesSF1k = 823 << 30
	// UncompressedBytesSF1k approximates the raw column bytes QaaS billing
	// applies to (both systems bill uncompressed data): ~705 GiB.
	UncompressedBytesSF1k = CSVBytesSF1k
)

// QuerySpec describes a query's billing-relevant properties.
type QuerySpec struct {
	Name string
	// UsedColumnFraction is the byte fraction of the columns the query
	// touches (Q1 uses seven attributes, Q6 four).
	UsedColumnFraction float64
	// Selectivity is the row fraction passing the predicates (Q1 ≈ 0.98,
	// Q6 ≈ 0.02) — Athena's billing input.
	Selectivity float64
}

// The paper's two benchmark queries. Column fractions follow the numeric
// LINEITEM layout (13 equal-width columns).
var (
	Q1 = QuerySpec{Name: "Q1", UsedColumnFraction: 7.0 / 13.0, Selectivity: 0.98}
	Q6 = QuerySpec{Name: "Q6", UsedColumnFraction: 4.0 / 13.0, Selectivity: 0.02}
)

// Result is one QaaS execution estimate.
type Result struct {
	System  string
	Latency time.Duration
	Cost    pricing.USD
	// LoadTime is the one-off ETL delay before the first query (BigQuery
	// only); "cold" latency is Latency+LoadTime.
	LoadTime time.Duration
}

// ColdLatency includes the load step.
func (r Result) ColdLatency() time.Duration { return r.Latency + r.LoadTime }

// Athena models Amazon Athena: in-situ Parquet scans whose latency grows
// linearly with the data size ("Amazon Athena does not seem to dedicate
// more resources for the larger data sets since their running time
// increases linearly"). Latencies anchor on the paper's observations: Q1 at
// SF 1k takes ~40 s (Lambada's fastest configuration is ~4× faster), Q6 is
// on par with Lambada (~9 s).
type Athena struct {
	Startup time.Duration
	// Q1Base and Q6Base are the SF 1k latencies (beyond startup).
	Q1Base, Q6Base time.Duration
}

// DefaultAthena returns the calibrated model.
func DefaultAthena() Athena {
	return Athena{Startup: 2 * time.Second, Q1Base: 38 * time.Second, Q6Base: 7 * time.Second}
}

// Run estimates one query at the given scale factor (1000 = SF 1k).
func (a Athena) Run(q QuerySpec, sf float64) Result {
	base := a.Q1Base
	if q.Name == "Q6" {
		base = a.Q6Base
	}
	lat := a.Startup + time.Duration(float64(base)*sf/1000)
	// Billing: selected rows of the used columns, on uncompressed bytes.
	billed := float64(UncompressedBytesSF1k) * sf / 1000 * q.UsedColumnFraction * q.Selectivity
	return Result{
		System:  "Athena",
		Latency: lat,
		Cost:    pricing.QaaSScan(int64(billed)),
	}
}

// BigQuery models Google BigQuery: a load step into the proprietary format,
// then fast, sublinearly-scaling queries.
type BigQuery struct {
	// LoadRate is the ETL throughput ("loading ... takes about 40 min"
	// for SF 1k: 823 GiB / 2400 s ≈ 0.34 GiB/s; SF 10k takes 6.7 h).
	LoadRate float64 // bytes/s
	// Q1Base and Q6Base anchor query latencies at SF 1k (3.9 s and 1.6 s).
	Q1Base, Q6Base time.Duration
	// Q1Exp and Q6Exp capture the per-query sublinear growth: Q1 becomes
	// ~2.3× slower than Lambada at SF 10k (≈ 34 s ⇒ exponent 0.94), Q6
	// stays ~2× faster (≈ 7.5 s ⇒ exponent 0.67).
	Q1Exp, Q6Exp float64
}

// DefaultBigQuery returns the calibrated model.
func DefaultBigQuery() BigQuery {
	return BigQuery{
		LoadRate: float64(BigQueryBytesSF1k) / (40 * 60), // 40 min at SF 1k
		Q1Base:   3900 * time.Millisecond,
		Q6Base:   1600 * time.Millisecond,
		Q1Exp:    0.94,
		Q6Exp:    0.67,
	}
}

// Run estimates one query at the given scale factor.
func (b BigQuery) Run(q QuerySpec, sf float64) Result {
	base, exp := b.Q1Base, b.Q1Exp
	if q.Name == "Q6" {
		base, exp = b.Q6Base, b.Q6Exp
	}
	scale := pow(sf/1000, exp)
	lat := time.Duration(float64(base) * scale)
	loadBytes := float64(BigQueryBytesSF1k) * sf / 1000
	// Billing: whole used columns, all rows, on the (larger) proprietary
	// format ("all columns are always counted in their entirety").
	billed := loadBytes * q.UsedColumnFraction
	return Result{
		System:   "BigQuery",
		Latency:  lat,
		Cost:     pricing.QaaSScan(int64(billed)),
		LoadTime: time.Duration(loadBytes / b.LoadRate * float64(time.Second)),
	}
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

// SpecFor maps a CLI query name to its billing spec. Only the paper's two
// benchmark queries have calibrated QaaS models.
func SpecFor(name string) (QuerySpec, bool) {
	switch name {
	case "q1", "Q1":
		return Q1, true
	case "q6", "Q6":
		return Q6, true
	}
	return QuerySpec{}, false
}

// Comparison pits one measured Lambada execution against the two modeled
// QaaS competitors at the same scale factor (§5.4): our side carries the
// billed dollars and virtual latency straight from the driver report, the
// competitor sides come from the calibrated Athena/BigQuery models.
type Comparison struct {
	Spec QuerySpec
	SF   float64
	// Ours is the execution's billed cost (sum of the metered Lambda, S3,
	// SQS and DynamoDB charges) and Latency its end-to-end virtual time.
	Ours    pricing.USD
	Latency time.Duration

	Athena   Result
	BigQuery Result
}

// Compare builds the three-way comparison for one execution.
func Compare(q QuerySpec, sf float64, billed pricing.USD, latency time.Duration) Comparison {
	return Comparison{
		Spec:     q,
		SF:       sf,
		Ours:     billed,
		Latency:  latency,
		Athena:   DefaultAthena().Run(q, sf),
		BigQuery: DefaultBigQuery().Run(q, sf),
	}
}

// String renders the comparison as an aligned three-line table.
func (c Comparison) String() string {
	s := fmt.Sprintf("QaaS comparison (%s, SF %g):\n", c.Spec.Name, c.SF)
	s += fmt.Sprintf("  %-10s %12s  %12s\n", "lambada", c.Ours, round10ms(c.Latency))
	s += fmt.Sprintf("  %-10s %12s  %12s\n", "athena", c.Athena.Cost, round10ms(c.Athena.Latency))
	s += fmt.Sprintf("  %-10s %12s  %12s  (+%s load)\n",
		"bigquery", c.BigQuery.Cost, round10ms(c.BigQuery.Latency), round10ms(c.BigQuery.LoadTime))
	return s
}

func round10ms(d time.Duration) time.Duration { return d.Round(10 * time.Millisecond) }
