package qaas

import (
	"math"
	"testing"
	"time"
)

func TestAthenaLinearScaling(t *testing.T) {
	a := DefaultAthena()
	r1 := a.Run(Q1, 1000)
	r10 := a.Run(Q1, 10000)
	// "Their running time increases linearly."
	ratio := (r10.Latency - a.Startup).Seconds() / (r1.Latency - a.Startup).Seconds()
	if math.Abs(ratio-10) > 0.01 {
		t.Errorf("latency scale ratio = %.2f, want 10 (linear)", ratio)
	}
	if r1.Latency < 30*time.Second || r1.Latency > 50*time.Second {
		t.Errorf("Athena Q1 SF1k = %v, want ~40 s", r1.Latency)
	}
	if r1.LoadTime != 0 {
		t.Error("Athena has no load step (in-situ)")
	}
}

func TestAthenaSelectivityPricing(t *testing.T) {
	a := DefaultAthena()
	q1 := a.Run(Q1, 1000)
	q6 := a.Run(Q6, 1000)
	// §5.4.3: "In Q6, we only pay for the 2% of the selected rows, while we
	// pay for 98% of them in Q1" — the cost gap is large.
	ratio := float64(q1.Cost) / float64(q6.Cost)
	want := (Q1.Selectivity * Q1.UsedColumnFraction) / (Q6.Selectivity * Q6.UsedColumnFraction)
	if math.Abs(ratio-want)/want > 0.01 {
		t.Errorf("Q1/Q6 cost ratio = %.1f, want %.1f", ratio, want)
	}
	// Q1 at SF 1k costs about $1.8 (705 GiB × 7/13 × 0.98 × $5/TiB).
	if q1.Cost < 1.3 || q1.Cost > 2.5 {
		t.Errorf("Athena Q1 SF1k cost = %v, want ~$1.8", q1.Cost)
	}
}

func TestBigQuerySublinearAndLoad(t *testing.T) {
	b := DefaultBigQuery()
	r1 := b.Run(Q1, 1000)
	r10 := b.Run(Q1, 10000)
	if r1.Latency != 3900*time.Millisecond {
		t.Errorf("BQ Q1 SF1k = %v, want 3.9 s (paper anchor)", r1.Latency)
	}
	// Sublinear: 10× data, < 10× latency.
	ratio := r10.Latency.Seconds() / r1.Latency.Seconds()
	if ratio >= 10 || ratio < 5 {
		t.Errorf("BQ Q1 scaling = %.1f×, want sublinear (~8.7)", ratio)
	}
	// "Loading of the two scale factors takes about 40 min and 6.7 h."
	if r1.LoadTime < 35*time.Minute || r1.LoadTime > 45*time.Minute {
		t.Errorf("BQ load SF1k = %v, want ~40 min", r1.LoadTime)
	}
	if r10.LoadTime < 6*time.Hour || r10.LoadTime > 8*time.Hour {
		t.Errorf("BQ load SF10k = %v, want ~6.7 h", r10.LoadTime)
	}
	if r1.ColdLatency() <= r1.LoadTime {
		t.Error("cold latency must include the query itself")
	}
}

func TestBigQueryBillsWholeColumns(t *testing.T) {
	b := DefaultBigQuery()
	q1 := b.Run(Q1, 1000)
	q6 := b.Run(Q6, 1000)
	// "The price of Q1 is essentially the same as that of Q6 in Google
	// BigQuery (Q1 being slightly more expensive as it uses a few more
	// attributes)" — the ratio is the column ratio, not the selectivity.
	ratio := float64(q1.Cost) / float64(q6.Cost)
	want := Q1.UsedColumnFraction / Q6.UsedColumnFraction
	if math.Abs(ratio-want)/want > 0.01 {
		t.Errorf("BQ Q1/Q6 cost ratio = %.2f, want %.2f (columns only)", ratio, want)
	}
	// The difference to Athena is larger because BigQuery's format takes
	// more space (823 GiB > 705 GiB effective billing base).
	a := DefaultAthena().Run(Q1, 1000)
	if q1.Cost <= a.Cost {
		t.Errorf("BQ Q1 cost (%v) should exceed Athena's (%v)", q1.Cost, a.Cost)
	}
}
