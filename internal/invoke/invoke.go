// Package invoke implements Lambada's worker invocation strategies (§4.2):
// direct invocation from the driver (paced by the measured per-region
// invocation rates of Table 1) and the two-level invocation tree, in which
// the driver starts ~√P first-generation workers that each start ~√P
// second-generation workers before running their own query fragment —
// "an approach with sublinear runtime that can spawn 4k functions in 3 s".
package invoke

import (
	"time"

	"lambada/internal/netmodel"
)

// Pacing models the caller-side invocation throughput: issuing one Invoke
// API call takes SingleLatency; Threads calls overlap; the API caps the
// aggregate at Rate invocations/s (Table 1).
type Pacing struct {
	SingleLatency time.Duration
	Threads       int
	Rate          float64 // aggregate cap (invocations/s); 0 = uncapped
}

// Gap returns the effective time between consecutive invocation issues.
func (p Pacing) Gap() time.Duration {
	threads := p.Threads
	if threads < 1 {
		threads = 1
	}
	if p.SingleLatency <= 0 {
		if p.Rate > 0 {
			return time.Duration(float64(time.Second) / p.Rate)
		}
		return 0
	}
	rate := float64(threads) / p.SingleLatency.Seconds()
	if p.Rate > 0 && rate > p.Rate {
		rate = p.Rate
	}
	return time.Duration(float64(time.Second) / rate)
}

// DriverPacing returns the pacing of a driver in the given region using
// the given number of requester threads.
func DriverPacing(region netmodel.Region, threads int) Pacing {
	prof := netmodel.InvokeProfiles[region]
	return Pacing{SingleLatency: prof.SingleLatency, Threads: threads, Rate: prof.DriverRate}
}

// WorkerPacing returns the pacing of invocations issued from inside a
// serverless worker (intra-region, Table 1's third row).
func WorkerPacing(region netmodel.Region) Pacing {
	prof := netmodel.InvokeProfiles[region]
	// The intra-region rate is what a worker achieves in aggregate; model
	// it directly as the cap.
	return Pacing{SingleLatency: time.Duration(float64(time.Second) / prof.IntraRegionRate), Threads: 1, Rate: prof.IntraRegionRate}
}

// UseTree reports whether a fleet of total workers should launch through
// the two-level invocation tree: below a handful of workers the driver's
// sequential launch loop is already faster than paying an extra worker
// generation, so direct invocation wins. The driver applies this policy per
// stage launch — the event-driven stage scheduler invokes each stage as its
// own fleet (all of them up front under pipelined launch), and stage sizes
// differ wildly: a scan stage may be hundreds of workers while the final
// merge is a few, so each decides independently. Speculation backup bursts
// never go through the tree: their payloads are stamped per (worker,
// attempt), so the driver issues them directly, paced at DriverPacing like
// any other direct launch (the all-stragglers liveness cap can re-invoke a
// whole stage fleet in one burst).
func UseTree(treeEnabled bool, total int) bool {
	return treeEnabled && total >= 4
}

// TreeFanout splits worker IDs 0..total-1 into a two-level tree: the driver
// invokes the first ceil(√total) workers; worker i of that first generation
// additionally receives the IDs of its second-generation children
// (contiguous ranges), "about √P invocations each".
func TreeFanout(total int) (firstGen []int, children [][]int) {
	if total <= 0 {
		return nil, nil
	}
	g := intSqrtCeil(total)
	if g > total {
		g = total
	}
	firstGen = make([]int, g)
	children = make([][]int, g)
	for i := 0; i < g; i++ {
		firstGen[i] = i
	}
	rem := total - g
	per := (rem + g - 1) / g
	if per == 0 {
		return firstGen, children
	}
	next := g
	for i := 0; i < g && next < total; i++ {
		hi := next + per
		if hi > total {
			hi = total
		}
		for id := next; id < hi; id++ {
			children[i] = append(children[i], id)
		}
		next = hi
	}
	return firstGen, children
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	x := 1
	for x*x < n {
		x++
	}
	return x
}

// DirectDuration estimates the time to invoke total workers straight from
// the driver (Table 1 extrapolation: "invoking 1000 workers from the driver
// still takes 3.4 s to 4.4 s and linearly more for more workers").
func DirectDuration(p Pacing, total int) time.Duration {
	return time.Duration(total) * p.Gap()
}

// TreeDuration estimates the end-to-end time of the two-level tree: the
// driver's sequential first-generation launches plus one worker start plus
// that worker's child launches.
func TreeDuration(driver, worker Pacing, coldStart time.Duration, total int) time.Duration {
	firstGen, children := TreeFanout(total)
	d := time.Duration(len(firstGen)) * driver.Gap()
	maxChildren := 0
	for _, c := range children {
		if len(c) > maxChildren {
			maxChildren = len(c)
		}
	}
	return d + driver.SingleLatency/2 + coldStart + time.Duration(maxChildren)*worker.Gap()
}
