package invoke

import (
	"testing"
	"testing/quick"
	"time"

	"lambada/internal/netmodel"
)

func TestPacingGapSingleThread(t *testing.T) {
	// One thread from Zurich to eu: one invocation per ~36 ms — the pace
	// the driver shows in Figure 5 ("before own invocation" ramp).
	p := DriverPacing(netmodel.RegionEU, 1)
	if got := p.Gap(); got != 36*time.Millisecond {
		t.Errorf("gap = %v, want 36ms", got)
	}
}

func TestPacingGapCappedByAPIRate(t *testing.T) {
	// 128 threads would allow 128/36ms ≈ 3555/s; the API caps at 294/s
	// (Table 1), so the gap is 1/294 s.
	p := DriverPacing(netmodel.RegionEU, 128)
	rate := 294.0
	want := time.Duration(float64(time.Second) / rate)
	if got := p.Gap(); got != want {
		t.Errorf("gap = %v, want %v", got, want)
	}
}

func TestWorkerPacing(t *testing.T) {
	p := WorkerPacing(netmodel.RegionEU)
	rate := 81.0
	want := time.Duration(float64(time.Second) / rate)
	if got := p.Gap(); got != want {
		t.Errorf("worker gap = %v, want %v (81 inv/s)", got, want)
	}
}

func TestTreeFanoutCoversAllWorkers(t *testing.T) {
	for _, total := range []int{1, 2, 3, 4, 5, 16, 100, 320, 1000, 4096} {
		firstGen, children := TreeFanout(total)
		seen := map[int]bool{}
		for _, id := range firstGen {
			if seen[id] {
				t.Fatalf("total=%d: duplicate id %d", total, id)
			}
			seen[id] = true
		}
		for _, cs := range children {
			for _, id := range cs {
				if seen[id] {
					t.Fatalf("total=%d: duplicate id %d", total, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != total {
			t.Fatalf("total=%d: covered %d ids", total, len(seen))
		}
	}
}

func TestTreeFanoutSqrtShape(t *testing.T) {
	firstGen, children := TreeFanout(4096)
	if len(firstGen) != 64 {
		t.Errorf("first generation = %d, want 64 (√4096)", len(firstGen))
	}
	for i, cs := range children {
		if len(cs) > 64 {
			t.Errorf("first-gen %d has %d children, want <= 64", i, len(cs))
		}
	}
}

func TestDirectVsTreeDuration(t *testing.T) {
	// §4.2: direct invocation of 4096 workers takes 13-18 s extrapolated;
	// the tree starts them "in under 4 s".
	driver1 := DriverPacing(netmodel.RegionEU, 1)
	driver128 := DriverPacing(netmodel.RegionEU, 128)
	worker := WorkerPacing(netmodel.RegionEU)
	cold := 300 * time.Millisecond

	direct := DirectDuration(driver128, 4096)
	if direct < 13*time.Second || direct > 18*time.Second {
		t.Errorf("direct 4096 at 128 threads = %v, want 13-18 s", direct)
	}
	tree := TreeDuration(driver1, worker, cold, 4096)
	if tree > 4*time.Second {
		t.Errorf("tree 4096 = %v, want < 4 s", tree)
	}
	// Driver ramp alone ~64 × 36 ms ≈ 2.3 s, matching Figure 5's "last
	// worker initiated after about 2.5 s".
	ramp := time.Duration(64) * driver1.Gap()
	if ramp < 2*time.Second || ramp > 3*time.Second {
		t.Errorf("driver ramp = %v, want ~2.3 s", ramp)
	}
	// And invoking 1000 workers directly takes 3.4-4.4 s (§4.2).
	d1000 := DirectDuration(driver128, 1000)
	if d1000 < 3400*time.Millisecond || d1000 > 4400*time.Millisecond {
		t.Errorf("direct 1000 = %v, want 3.4-4.4 s", d1000)
	}
}

// Property: the tree never assigns a worker to two launchers and the first
// generation is ~√total.
func TestPropertyTreeFanout(t *testing.T) {
	f := func(raw uint16) bool {
		total := int(raw)%5000 + 1
		firstGen, children := TreeFanout(total)
		n := len(firstGen)
		for _, cs := range children {
			n += len(cs)
		}
		if n != total {
			return false
		}
		g := len(firstGen)
		return g*g >= total && (g-1)*(g-1) < total || total == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
