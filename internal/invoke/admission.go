package invoke

import (
	"sync"
	"time"

	"lambada/internal/awssim/simenv"
)

// Admission is the deployment-wide invocation budget of a resident session:
// every query running on the session acquires tokens from one shared pool
// before invoking workers, so a thousand-worker fleet cannot starve an
// interactive query of invocation capacity — admission replaces the old
// per-query DriverPacing as the launch governor.
//
// Token accounting is exact by construction: the scheduler acquires exactly
// as many tokens as containers its Invoke call will spawn (one for a direct
// invocation, 1+len(children) for a tree node — the children are invoked
// from inside the first-generation worker, past the driver), and every
// container releases exactly one token when it settles, crash paths
// included (the Lambda service's completion hook fires wherever its running
// gauge decrements). In-flight therefore never undercounts actual running
// containers, and Peak() ≤ Capacity bounds the deployment's true peak
// concurrency.
//
// Release happens on the worker side of the simulation, not in the driver's
// event loop: a driver blocked in Acquire is woken by containers finishing
// on their own, so one query stalling on admission can never deadlock the
// deployment. Launch order within a query is topological (producers before
// consumers), so tokens held by workers parked on a ready barrier always
// have their producers fully launched and making progress.
//
// The controller also owns the shared invocation-rate pacer: the Invoke API
// rate (Pacing, Table 1) is a deployment-wide resource, so concurrent
// queries split it instead of each assuming the full rate.
type Admission struct {
	mu       sync.Mutex
	capacity int
	inFlight int
	peak     int
	blocked  uint64
	oversize uint64
	overflow uint64
	acquired uint64

	pacing   Pacing
	nextSlot time.Duration

	topic string
	poll  time.Duration
}

// NewAdmission returns a controller with the given concurrent-invocation
// capacity (<= 0 means unlimited: Acquire never blocks, Pace still paces).
// topic namespaces the release broadcast; poll is the blocked waiter's
// fallback poll interval.
func NewAdmission(capacity int, pacing Pacing, topic string, poll time.Duration) *Admission {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	return &Admission{capacity: capacity, pacing: pacing, topic: "admission/" + topic, poll: poll}
}

// Capacity returns the configured token capacity (<= 0 = unlimited).
func (a *Admission) Capacity() int {
	if a == nil {
		return 0
	}
	return a.capacity
}

// Acquire blocks until n tokens are available and takes them. A request
// larger than the whole capacity is admitted once the pool is empty — a
// fleet bigger than the budget still launches, alone — and counted in
// Oversized; size the capacity above the largest single Invoke's token
// need (tree nodes need 1+children) to keep Peak() ≤ Capacity strict.
// Nil receivers and unlimited controllers return immediately.
func (a *Admission) Acquire(env simenv.Env, n int) {
	if a == nil || a.capacity <= 0 || n <= 0 {
		return
	}
	waited := false
	for {
		a.mu.Lock()
		if a.inFlight+n <= a.capacity || (n > a.capacity && a.inFlight == 0) {
			if n > a.capacity {
				a.oversize++
			}
			a.inFlight += n
			a.acquired += uint64(n)
			if a.inFlight > a.peak {
				a.peak = a.inFlight
			}
			a.mu.Unlock()
			return
		}
		if !waited {
			a.blocked++
			waited = true
		}
		a.mu.Unlock()
		// Park on the release broadcast; the timed poll is the fallback for
		// environments without a keyed notifier.
		simenv.WaitNotifyKey(env, a.topic, a.poll)
	}
}

// TryAcquire takes n tokens if they are available right now and reports
// whether it did. The staged scheduler launches fleets with TryAcquire
// instead of a blocking Acquire: when the pool is dry it launches a partial
// fleet and returns to its event loop, so the driver keeps consuming seal
// messages — a driver blocked in Acquire could never write the seal marker
// that the token-holding consumers parked on a ready barrier are waiting
// for. Nil and unlimited controllers always succeed.
func (a *Admission) TryAcquire(n int) bool {
	if a == nil || a.capacity <= 0 || n <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inFlight+n > a.capacity && !(n > a.capacity && a.inFlight == 0) {
		a.blocked++
		return false
	}
	if n > a.capacity {
		a.oversize++
	}
	a.inFlight += n
	a.acquired += uint64(n)
	if a.inFlight > a.peak {
		a.peak = a.inFlight
	}
	return true
}

// AcquireOverflow takes one token immediately, past capacity if need be.
// Recovery traffic — failure relaunches and speculative backups — must not
// queue behind the very tokens held by workers waiting on the crashed
// producer, so it is admitted unconditionally and counted in Overflow;
// Peak() ≤ Capacity is therefore guaranteed only for fault-free runs.
func (a *Admission) AcquireOverflow(env simenv.Env) {
	if a == nil || a.capacity <= 0 {
		return
	}
	a.mu.Lock()
	a.inFlight++
	a.acquired++
	if a.inFlight > a.capacity {
		a.overflow++
	}
	if a.inFlight > a.peak {
		a.peak = a.inFlight
	}
	a.mu.Unlock()
}

// Release returns n tokens and wakes blocked acquirers. The Lambda
// service's completion hook calls it with n=1 as each container settles.
func (a *Admission) Release(env simenv.Env, n int) {
	if a == nil || a.capacity <= 0 || n <= 0 {
		return
	}
	a.mu.Lock()
	a.inFlight -= n
	if a.inFlight < 0 {
		a.inFlight = 0
	}
	a.mu.Unlock()
	simenv.BroadcastKey(env, a.topic)
}

// Pace charges one Invoke API slot against the shared rate pacer, sleeping
// the caller until its slot: concurrent queries interleave at the
// deployment's effective invocation rate instead of each assuming the full
// rate. Nil receivers are no-ops (legacy per-query pacing applies then).
func (a *Admission) Pace(env simenv.Env) {
	if a == nil {
		return
	}
	gap := a.pacing.Gap()
	a.mu.Lock()
	now := env.Now()
	if a.nextSlot < now {
		a.nextSlot = now
	}
	wait := a.nextSlot - now
	a.nextSlot += gap
	a.mu.Unlock()
	if wait > 0 {
		env.Sleep(wait)
	}
}

// InFlight returns the tokens currently held.
func (a *Admission) InFlight() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// Peak returns the highest token count ever held simultaneously — with
// exact accounting this bounds the deployment's true peak container
// concurrency from above.
func (a *Admission) Peak() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Blocked counts Acquire calls that had to wait for capacity.
func (a *Admission) Blocked() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.blocked
}

// Oversized counts Acquire calls whose token need exceeded the whole
// capacity and were admitted alone.
func (a *Admission) Oversized() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.oversize
}

// Overflow counts tokens taken past capacity by AcquireOverflow (recovery
// traffic). Zero in fault-free, speculation-free runs.
func (a *Admission) Overflow() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.overflow
}

// Acquired returns the cumulative tokens ever acquired (one per container
// launched through admission).
func (a *Admission) Acquired() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acquired
}
