package netmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sortFloats(v []float64) { sort.Float64s(v) }

func TestRateOver(t *testing.T) {
	r := Rate(100 * MiB)
	if d := r.Over(100 * MiB); d != time.Second {
		t.Errorf("100MiB at 100MiB/s = %v, want 1s", d)
	}
	if d := Rate(0).Over(100); d != 0 {
		t.Errorf("zero rate gave %v", d)
	}
}

func TestConstantDist(t *testing.T) {
	c := Constant(5 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	if c.Sample(rng) != 5*time.Millisecond || c.Mean() != 5*time.Millisecond {
		t.Error("constant distribution is not constant")
	}
}

func TestUniformDistBounds(t *testing.T) {
	u := Uniform{Min: time.Millisecond, Max: 10 * time.Millisecond}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		s := u.Sample(rng)
		if s < u.Min || s > u.Max {
			t.Fatalf("sample %v out of [%v, %v]", s, u.Min, u.Max)
		}
	}
	if u.Mean() != 5500*time.Microsecond {
		t.Errorf("mean = %v", u.Mean())
	}
}

func TestLognormalTail(t *testing.T) {
	l := Lognormal{Mu: 0, Sigma: 1, Scale: 10 * time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	var sum float64
	n := 20000
	over := 0
	for i := 0; i < n; i++ {
		s := l.Sample(rng)
		sum += s.Seconds()
		if s > 50*time.Millisecond {
			over++
		}
	}
	empMean := sum / float64(n)
	wantMean := l.Mean().Seconds()
	if math.Abs(empMean-wantMean)/wantMean > 0.1 {
		t.Errorf("empirical mean %.4fs vs analytic %.4fs", empMean, wantMean)
	}
	if over == 0 {
		t.Error("lognormal produced no tail samples > 5x scale")
	}
}

func TestTokenBucketSustainedOnly(t *testing.T) {
	// Requesting below the sustained rate never dips into credits.
	b := NewTokenBucket(90*MiB, 300*MiB, 3*time.Second)
	d := b.Transfer(0, 90*MiB, 50*MiB)
	if want := Rate(50 * MiB).Over(90 * MiB); d != want {
		t.Errorf("transfer took %v, want %v", d, want)
	}
	if b.Credits(d) < b.Capacity*0.99 {
		t.Errorf("credits drained on sub-sustained transfer: %.0f / %.0f", b.Credits(d), b.Capacity)
	}
}

func TestTokenBucketBurstThenSustain(t *testing.T) {
	// A large transfer at burst rate exhausts credits; back-to-back repeats
	// (the paper's methodology: three runs in direct succession) settle at
	// the sustained rate.
	b := NewTokenBucket(90*MiB, 300*MiB, 3*time.Second)
	const n = 1 * GiB
	var now time.Duration
	var effs []Rate
	for i := 0; i < 3; i++ {
		d := b.Transfer(now, n, 300*MiB)
		effs = append(effs, Rate(float64(n)/d.Seconds()))
		now += d
	}
	if effs[0] < 160*MiB {
		t.Errorf("first run %0.f MiB/s, want burst-assisted > 160", float64(effs[0])/MiB)
	}
	for i := 1; i < 3; i++ {
		if got := float64(effs[i]) / MiB; math.Abs(got-90) > 2 {
			t.Errorf("run %d: %0.f MiB/s, want ~90 (credits exhausted)", i, got)
		}
	}
}

func TestTokenBucketSmallBurst(t *testing.T) {
	// A small transfer fits entirely in the burst budget: ~300 MiB/s.
	b := NewTokenBucket(90*MiB, 300*MiB, 3*time.Second)
	eff := b.EffectiveBandwidth(0, 100*MB, 300*MiB)
	if eff < 290*MiB {
		t.Errorf("small transfer effective %v MiB/s, want ~300", float64(eff)/MiB)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b := NewTokenBucket(90*MiB, 300*MiB, 3*time.Second)
	d := b.Transfer(0, 2*GiB, 300*MiB) // exhaust credits
	if c := b.Credits(d); c > 1 {
		t.Fatalf("credits not exhausted: %f", c)
	}
	// After a long idle period the bucket is full again.
	later := d + time.Minute
	if c := b.Credits(later); c < b.Capacity {
		t.Errorf("credits after idle = %f, want full %f", c, b.Capacity)
	}
}

// Property: transfer duration is never faster than n/burst nor slower than
// n/sustained (for request rates >= sustained).
func TestPropertyTransferBounds(t *testing.T) {
	f := func(kb uint32, conns uint8) bool {
		n := int64(kb%(4*1024*1024)) * KiB // up to 4 GiB
		if n == 0 {
			n = KiB
		}
		c := int(conns%4) + 1
		b := NewTokenBucket(90*MiB, 300*MiB, 3*time.Second)
		req := Rate(95*MiB) * Rate(c)
		if req < b.Sustained {
			req = b.Sustained
		}
		d := b.Transfer(0, n, req)
		lo := Rate(300 * MiB).Over(n)
		hi := Rate(90 * MiB).Over(n)
		return d >= lo-time.Microsecond && d <= hi+time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLambdaNetFigure6Shape(t *testing.T) {
	// Figure 6a: large files (1 GB) stay at ~90 MiB/s for any connection
	// count. Figure 6b: small files (100 MB) reach ~300 MiB/s only with
	// several connections on large-memory workers.
	ln := DefaultLambdaNet()

	// The paper's methodology: three runs in direct succession, median
	// reported. For large files the burst budget only helps the first run.
	median3 := func(n int64, conns, mem int) Rate {
		b := ln.NewBucket(mem)
		var now time.Duration
		var effs []float64
		for i := 0; i < 3; i++ {
			d := b.Transfer(now, n, ln.RequestRate(conns, mem))
			effs = append(effs, float64(n)/d.Seconds())
			now += d
		}
		sortFloats(effs)
		return Rate(effs[1])
	}
	large := func(conns, mem int) Rate { return median3(1*GB, conns, mem) }
	small := func(conns, mem int) Rate { return median3(100*MB, conns, mem) }

	if bw := large(4, 3008); bw > 160*MiB {
		t.Errorf("large file 4 conns: %0.f MiB/s, want bounded near sustained", float64(bw)/MiB)
	}
	if bw := large(1, 3008); bw < 85*MiB {
		t.Errorf("large file 1 conn: %0.f MiB/s, want >= 85", float64(bw)/MiB)
	}
	if bw := small(4, 3008); bw < 250*MiB {
		t.Errorf("small file 4 conns big mem: %0.f MiB/s, want ~300", float64(bw)/MiB)
	}
	if bw := small(1, 3008); bw > 110*MiB {
		t.Errorf("small file 1 conn: %0.f MiB/s, want ~95", float64(bw)/MiB)
	}
	// Small-memory workers see slightly lower bandwidth.
	if b512, b3008 := small(4, 512), small(4, 3008); b512 >= b3008 {
		t.Errorf("512MiB worker bandwidth %v >= 3008MiB worker %v", b512, b3008)
	}
}

func TestCPUShareModel(t *testing.T) {
	if s := CPUShare(1792); s != 1.0 {
		t.Errorf("CPUShare(1792) = %v, want 1", s)
	}
	if s := CPUShare(3008); math.Abs(s-1.6786) > 0.001 {
		t.Errorf("CPUShare(3008) = %v, want ~1.679", s)
	}
}

func TestComputeTimeFigure4Shape(t *testing.T) {
	// Baseline: 1 s of work at 1792 MiB, 1 thread.
	base := ComputeTime(1.0, 1792, 1)
	if math.Abs(base.Seconds()-1.0) > 0.01 {
		t.Fatalf("baseline = %v, want 1s", base)
	}
	// Below 1792, performance proportional to memory, independent of threads.
	t512x1 := ComputeTime(1.0, 512, 1)
	want := 1792.0 / 512.0
	if math.Abs(t512x1.Seconds()-want) > 0.05 {
		t.Errorf("512MiB 1 thread = %v, want ~%.2fs", t512x1, want)
	}
	// One thread never beats the baseline above 1792 MiB.
	if d := ComputeTime(1.0, 3008, 1); d < base {
		t.Errorf("3008MiB 1 thread = %v, faster than baseline", d)
	}
	// Two threads on 3008 MiB reach ~1.67x baseline throughput.
	d := ComputeTime(1.0, 3008, 2)
	speedup := base.Seconds() / d.Seconds()
	if math.Abs(speedup-1.68) > 0.05 {
		t.Errorf("3008MiB 2 threads speedup = %.3f, want ~1.68", speedup)
	}
	// Two threads on small workers are slightly slower than one thread.
	if one, two := ComputeTime(1.0, 1024, 1), ComputeTime(1.0, 1024, 2); two <= one {
		t.Errorf("2 threads (%v) should be slower than 1 (%v) below one core", two, one)
	}
}

func TestInvokeProfilesTable1(t *testing.T) {
	p, ok := InvokeProfiles[RegionEU]
	if !ok {
		t.Fatal("eu profile missing")
	}
	if p.SingleLatency != 36*time.Millisecond {
		t.Errorf("eu single latency = %v", p.SingleLatency)
	}
	for r, p := range InvokeProfiles {
		if p.DriverRate < 200 || p.DriverRate > 300 {
			t.Errorf("%s driver rate %v outside 220-294 band", r, p.DriverRate)
		}
		if p.IntraRegionRate < 75 || p.IntraRegionRate > 90 {
			t.Errorf("%s intra-region rate %v outside ~80 band", r, p.IntraRegionRate)
		}
	}
}
