package netmodel

import "time"

// Region identifies an AWS region group as used in the paper's Table 1.
type Region string

// Regions measured by the paper (from a driver in Zurich).
const (
	RegionEU Region = "eu"
	RegionUS Region = "us"
	RegionSA Region = "sa"
	RegionAP Region = "ap"
)

// InvokeProfile captures the invocation characteristics of AWS Lambda for
// one region as measured in Table 1 of the paper.
type InvokeProfile struct {
	// SingleLatency is the round-trip time of one synchronous invocation
	// issued from the driver's location.
	SingleLatency time.Duration
	// DriverRate is the aggregate invocation rate achievable from the
	// driver with 128 concurrent requester threads (invocations/s).
	DriverRate float64
	// IntraRegionRate is the invocation rate achievable from inside a
	// serverless worker in the same region (invocations/s).
	IntraRegionRate float64
}

// InvokeProfiles reproduces Table 1.
var InvokeProfiles = map[Region]InvokeProfile{
	RegionEU: {SingleLatency: 36 * time.Millisecond, DriverRate: 294, IntraRegionRate: 81},
	RegionUS: {SingleLatency: 363 * time.Millisecond, DriverRate: 276, IntraRegionRate: 79},
	RegionSA: {SingleLatency: 474 * time.Millisecond, DriverRate: 243, IntraRegionRate: 84},
	RegionAP: {SingleLatency: 536 * time.Millisecond, DriverRate: 222, IntraRegionRate: 81},
}

// LambdaNet models per-function network and CPU characteristics as measured
// in §4.1 and §4.3.1 of the paper.
type LambdaNet struct {
	// PerConnection is the per-TCP-connection S3 download capacity.
	PerConnection Rate
	// Sustained is the long-run per-function ingress bandwidth.
	Sustained Rate
	// Burst is the short-term per-function ingress ceiling reachable with
	// several concurrent connections on large-memory functions.
	Burst Rate
	// BurstWindow is how long the burst may exceed the sustained rate.
	BurstWindow time.Duration
	// SmallMemoryPenalty is the bandwidth factor applied to functions with
	// less than 1 GiB of memory ("slightly lower ingress bandwidth").
	SmallMemoryPenalty float64
}

// DefaultLambdaNet returns the calibration used throughout: ~90 MiB/s
// sustained, ~300 MiB/s burst for a few seconds, ~95 MiB/s per connection.
func DefaultLambdaNet() LambdaNet {
	return LambdaNet{
		PerConnection:      95 * MiB,
		Sustained:          90 * MiB,
		Burst:              300 * MiB,
		BurstWindow:        3 * time.Second,
		SmallMemoryPenalty: 0.88,
	}
}

// RequestRate returns the rate ceiling for a transfer using conns parallel
// connections on a function with memoryMiB of main memory.
func (ln LambdaNet) RequestRate(conns int, memoryMiB int) Rate {
	if conns < 1 {
		conns = 1
	}
	r := ln.PerConnection * Rate(conns)
	if r > ln.Burst {
		r = ln.Burst
	}
	if memoryMiB < 1024 {
		r = r * Rate(ln.SmallMemoryPenalty)
	}
	return r
}

// NewBucket returns a fresh token bucket for one function instance with
// memoryMiB of memory.
func (ln LambdaNet) NewBucket(memoryMiB int) *TokenBucket {
	sustained, burst := ln.Sustained, ln.Burst
	if memoryMiB < 1024 {
		sustained = sustained * Rate(ln.SmallMemoryPenalty)
		burst = burst * Rate(ln.SmallMemoryPenalty)
	}
	return NewTokenBucket(sustained, burst, ln.BurstWindow)
}

// CPUShare returns the fraction of vCPUs allocated to a function with the
// given memory size: memory/1792 MiB, i.e. exactly one vCPU at 1792 MiB and
// proportionally more above (§4.1, Figure 4). AWS caps Lambda at two cores
// in the era the paper measures (3008 MiB max ⇒ 1.68 vCPU).
func CPUShare(memoryMiB int) float64 {
	return float64(memoryMiB) / 1792.0
}

// ComputeTime returns the time to execute work that takes oneVCPUSeconds on
// one dedicated vCPU, on a function with memoryMiB memory using threads
// threads. A single thread can use at most one vCPU; two threads can use up
// to two. Thread-scheduling overhead on multi-threaded configurations that
// cannot exploit a second core is modeled by ThreadOverhead.
func ComputeTime(oneVCPUSeconds float64, memoryMiB, threads int) time.Duration {
	share := CPUShare(memoryMiB)
	if threads < 1 {
		threads = 1
	}
	usable := share
	if usable > float64(threads) {
		usable = float64(threads)
	}
	if usable > 1 && threads == 1 {
		usable = 1
	}
	if threads > 1 && share <= 1 {
		// Multi-threading overhead with no extra core to gain.
		usable = share * (1 - ThreadOverhead)
	}
	if usable <= 0 {
		usable = 1e-9
	}
	return time.Duration(oneVCPUSeconds / usable * float64(time.Second))
}

// ThreadOverhead is the efficiency loss of running two threads on less than
// one core (observed as Q1 getting "marginally cheaper" with one thread).
const ThreadOverhead = 0.04
