// Package netmodel provides the calibrated network performance models the
// Lambada paper measures on AWS: the credit-based ingress bandwidth shaping
// of serverless functions (§4.3.1, Figure 6), region-dependent invocation
// latencies (Table 1), and heavy-tailed latency distributions used for the
// straggler analysis (Figure 13).
package netmodel

import (
	"math"
	"math/rand"
	"time"
)

// Byte-size units.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40

	KB = 1000
	MB = 1000 * 1000
	GB = 1000 * 1000 * 1000
	TB = 1000 * 1000 * 1000 * 1000
)

// Rate is a data rate in bytes per second.
type Rate float64

// Over returns the time to move n bytes at rate r.
func (r Rate) Over(n int64) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(r) * float64(time.Second))
}

// Dist is a deterministic-when-seeded latency distribution.
type Dist interface {
	// Sample draws one latency using rng.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// Constant is a degenerate distribution.
type Constant time.Duration

// Sample returns the constant.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// Mean returns the constant.
func (c Constant) Mean() time.Duration { return time.Duration(c) }

// Uniform is uniform on [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample draws uniformly from [Min, Max].
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// Mean returns (Min+Max)/2.
func (u Uniform) Mean() time.Duration { return (u.Min + u.Max) / 2 }

// Lognormal is a shifted lognormal distribution: Shift + e^(Mu + Sigma*Z)
// nanoseconds. It models the heavy right tail of S3 request latencies that
// produces stragglers at scale.
type Lognormal struct {
	Shift time.Duration
	// Mu and Sigma are the parameters of the underlying normal, with the
	// lognormal expressed in units of Scale.
	Mu, Sigma float64
	Scale     time.Duration
}

// Sample draws from the shifted lognormal.
func (l Lognormal) Sample(rng *rand.Rand) time.Duration {
	z := rng.NormFloat64()
	v := math.Exp(l.Mu + l.Sigma*z)
	return l.Shift + time.Duration(v*float64(l.Scale))
}

// Mean returns Shift + Scale * e^(Mu + Sigma^2/2).
func (l Lognormal) Mean() time.Duration {
	return l.Shift + time.Duration(math.Exp(l.Mu+l.Sigma*l.Sigma/2)*float64(l.Scale))
}

// TokenBucket is a credit-based bandwidth shaper modeling the traffic
// shaping the paper hypothesizes for Lambda ingress (§4.3.1): a function may
// burst above its sustained rate for a small number of seconds, after which
// throughput settles at the sustained rate.
//
// Credits measure the burst budget in bytes-above-sustained: they refill at
// the sustained rate (capped at Capacity) while the link is idle or
// under-utilized and drain at (actual - sustained) while bursting.
type TokenBucket struct {
	Sustained Rate    // long-run rate (≈ 90 MiB/s for Lambda ingress)
	Burst     Rate    // short-term ceiling (≈ 300 MiB/s)
	Capacity  float64 // burst budget in bytes-above-sustained

	credits float64
	last    time.Duration
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(sustained, burst Rate, burstWindow time.Duration) *TokenBucket {
	cap := float64(burst-sustained) * burstWindow.Seconds()
	if cap < 0 {
		cap = 0
	}
	return &TokenBucket{Sustained: sustained, Burst: burst, Capacity: cap, credits: cap}
}

// Credits returns the current burst budget in bytes, after refilling to now.
func (b *TokenBucket) Credits(now time.Duration) float64 {
	b.refill(now)
	return b.credits
}

func (b *TokenBucket) refill(now time.Duration) {
	if now < b.last {
		return
	}
	dt := (now - b.last).Seconds()
	b.last = now
	b.credits += dt * float64(b.Sustained)
	if b.credits > b.Capacity {
		b.credits = b.Capacity
	}
}

// Transfer computes the time to move n bytes starting at virtual time now,
// where the requester can use at most reqRate (e.g. per-connection capacity
// × connection count). It debits the burst budget accordingly and returns
// the transfer duration.
func (b *TokenBucket) Transfer(now time.Duration, n int64, reqRate Rate) time.Duration {
	if n <= 0 {
		return 0
	}
	b.refill(now)
	rate := reqRate
	if rate > b.Burst {
		rate = b.Burst
	}
	if rate <= 0 {
		return 0
	}
	if rate <= b.Sustained {
		// No burst needed; credits refill during the transfer (capped).
		d := rate.Over(n)
		b.credits += d.Seconds() * float64(b.Sustained-rate)
		if b.credits > b.Capacity {
			b.credits = b.Capacity
		}
		b.last = now + d
		return d
	}
	// Phase 1: burst until credits exhausted.
	drain := float64(rate - b.Sustained) // credit drain per second
	t1 := b.credits / drain
	bytes1 := t1 * float64(rate)
	if float64(n) <= bytes1 {
		d := rate.Over(n)
		b.credits -= d.Seconds() * drain
		if b.credits < 0 {
			b.credits = 0
		}
		b.last = now + d
		return d
	}
	// Phase 2: remainder at the sustained rate.
	rest := float64(n) - bytes1
	d := time.Duration(t1*float64(time.Second)) + b.Sustained.Over(int64(rest))
	b.credits = 0
	b.last = now + d
	return d
}

// EffectiveBandwidth returns the average rate achieved for an n-byte
// transfer starting now at reqRate, without mutating the bucket.
func (b *TokenBucket) EffectiveBandwidth(now time.Duration, n int64, reqRate Rate) Rate {
	clone := *b
	d := clone.Transfer(now, n, reqRate)
	if d <= 0 {
		return reqRate
	}
	return Rate(float64(n) / d.Seconds())
}
