package lpq

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"lambada/internal/columnar"
)

// WriterOptions configure file layout.
type WriterOptions struct {
	// RowGroupRows is the number of rows per row group (default 131072).
	RowGroupRows int
	// Compression is the heavy-weight scheme applied to every column chunk
	// after encoding (default None).
	Compression Compression
	// ForceEncoding, if non-nil, overrides the per-column automatic
	// encoding choice (keyed by column index).
	ForceEncoding map[int]Encoding
	// DisableStats omits min/max statistics (used for pruning ablations).
	DisableStats bool
	// PageRows is the page-index granularity of v2 files (default 4096):
	// column chunks longer than PageRows are split into pages, each encoded
	// and compressed independently with per-page min/max statistics.
	PageRows int
	// FormatV1 writes the legacy LPQ1 layout — no page index, no distinct
	// counts — for back-compat tests and read-path ablations.
	FormatV1 bool
}

// DefaultRowGroupRows is the default row-group size.
const DefaultRowGroupRows = 131072

// DefaultPageRows is the default v2 page-index granularity.
const DefaultPageRows = 4096

// Writer writes an lpq file. Rows are buffered and flushed as row groups.
type Writer struct {
	w      io.Writer
	opts   WriterOptions
	schema *columnar.Schema
	buf    *columnar.Chunk
	meta   FileMeta
	offset int64
	closed bool
}

// NewWriter returns a writer emitting to w with the given schema.
func NewWriter(w io.Writer, schema *columnar.Schema, opts WriterOptions) *Writer {
	if opts.RowGroupRows <= 0 {
		opts.RowGroupRows = DefaultRowGroupRows
	}
	if opts.PageRows <= 0 {
		opts.PageRows = DefaultPageRows
	}
	return &Writer{
		w:      w,
		opts:   opts,
		schema: schema,
		buf:    columnar.NewChunk(schema, opts.RowGroupRows),
		meta:   FileMeta{Schema: schema},
	}
}

// Write appends the chunk's rows, flushing full row groups.
func (w *Writer) Write(c *columnar.Chunk) error {
	if w.closed {
		return fmt.Errorf("lpq: write after close")
	}
	if !c.Schema.Equal(w.schema) {
		return fmt.Errorf("lpq: chunk schema %q != file schema %q", c.Schema, w.schema)
	}
	if err := c.Validate(); err != nil {
		return err
	}
	for row := 0; row < c.NumRows(); {
		space := w.opts.RowGroupRows - w.buf.NumRows()
		take := c.NumRows() - row
		if take > space {
			take = space
		}
		part := c.Slice(row, row+take)
		for j := range w.buf.Columns {
			appendAll(w.buf.Columns[j], part.Columns[j])
		}
		row += take
		if w.buf.NumRows() >= w.opts.RowGroupRows {
			if err := w.flushRowGroup(); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendAll(dst, src *columnar.Vector) {
	switch dst.Type {
	case columnar.Int64:
		dst.Int64s = append(dst.Int64s, src.Int64s...)
	case columnar.Float64:
		dst.Float64s = append(dst.Float64s, src.Float64s...)
	case columnar.Bool:
		dst.Bools = append(dst.Bools, src.Bools...)
	}
}

// compress applies the configured heavy-weight compression to raw.
func (w *Writer) compress(raw []byte) ([]byte, error) {
	if w.opts.Compression != Gzip {
		return raw, nil
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return zbuf.Bytes(), nil
}

// sliceVector returns the [lo,hi) view of v (shares backing storage).
func sliceVector(v *columnar.Vector, lo, hi int) *columnar.Vector {
	out := &columnar.Vector{Type: v.Type}
	switch v.Type {
	case columnar.Int64:
		out.Int64s = v.Int64s[lo:hi]
	case columnar.Float64:
		out.Float64s = v.Float64s[lo:hi]
	case columnar.Bool:
		out.Bools = v.Bools[lo:hi]
	}
	return out
}

// encodeChunk encodes (and compresses) a whole column as one unpaged blob —
// the v1 chunk layout. Falls back to Plain when enc cannot encode col.
func (w *Writer) encodeChunk(col *columnar.Vector, enc Encoding) (ColumnChunkMeta, []byte, error) {
	raw, err := EncodeColumn(col, enc)
	if err != nil {
		// Fall back to Plain for unsupported forced combinations.
		enc = Plain
		raw, err = EncodeColumn(col, enc)
		if err != nil {
			return ColumnChunkMeta{}, nil, err
		}
	}
	stored, err := w.compress(raw)
	if err != nil {
		return ColumnChunkMeta{}, nil, err
	}
	cc := ColumnChunkMeta{
		CompressedLen:   int64(len(stored)),
		UncompressedLen: int64(len(raw)),
		Encoding:        enc,
		Compression:     w.opts.Compression,
	}
	return cc, stored, nil
}

// encodePagedChunk splits col at PageRows boundaries and encodes every page
// independently with enc, so readers can fetch and decode pages on their
// own. All pages share one encoding: if any page fails under enc, the whole
// chunk restarts as Plain (which never fails).
func (w *Writer) encodePagedChunk(col *columnar.Vector, enc Encoding) (ColumnChunkMeta, []byte, error) {
	n := col.Len()
	for {
		cc := ColumnChunkMeta{Encoding: enc, Compression: w.opts.Compression}
		var stored []byte
		failed := false
		for lo := 0; lo < n; lo += w.opts.PageRows {
			hi := lo + w.opts.PageRows
			if hi > n {
				hi = n
			}
			pv := sliceVector(col, lo, hi)
			raw, err := EncodeColumn(pv, enc)
			if err != nil {
				if enc == Plain {
					return ColumnChunkMeta{}, nil, err
				}
				failed = true
				break
			}
			z, err := w.compress(raw)
			if err != nil {
				return ColumnChunkMeta{}, nil, err
			}
			pg := PageMeta{
				NumRows:         int64(hi - lo),
				RelOff:          int64(len(stored)),
				CompressedLen:   int64(len(z)),
				UncompressedLen: int64(len(raw)),
			}
			if !w.opts.DisableStats {
				pg.Stats = computeStats(pv)
			}
			stored = append(stored, z...)
			cc.Pages = append(cc.Pages, pg)
			cc.UncompressedLen += int64(len(raw))
		}
		if failed {
			enc = Plain
			continue
		}
		cc.CompressedLen = int64(len(stored))
		return cc, stored, nil
	}
}

// pageStatsUseful reports whether a paged chunk's per-page bounds can
// actually prune. Bounds only exclude a page when the page covers a
// narrower value range than the chunk — i.e. the column is clustered. For
// unclustered columns every page spans nearly the whole chunk range, the
// bounds never prune anything, and storing them only fattens the footer
// every reader downloads. Rule: keep page stats when the average page
// range is at most half the chunk range.
func pageStatsUseful(pages []PageMeta, chunk Stats) bool {
	if !chunk.HasMinMax {
		return false
	}
	width := chunk.MaxF - chunk.MinF
	var sum float64
	for _, pg := range pages {
		if !pg.Stats.HasMinMax {
			return false
		}
		sum += pg.Stats.MaxF - pg.Stats.MinF
	}
	return sum*2 <= width*float64(len(pages))
}

func (w *Writer) flushRowGroup() error {
	n := w.buf.NumRows()
	if n == 0 {
		return nil
	}
	rg := RowGroupMeta{NumRows: int64(n)}
	for j, col := range w.buf.Columns {
		enc := ChooseEncoding(col)
		if forced, ok := w.opts.ForceEncoding[j]; ok {
			enc = forced
		}
		var cc ColumnChunkMeta
		var stored []byte
		var err error
		if w.opts.FormatV1 || n <= w.opts.PageRows {
			cc, stored, err = w.encodeChunk(col, enc)
		} else {
			cc, stored, err = w.encodePagedChunk(col, enc)
		}
		if err != nil {
			return err
		}
		cc.Offset = w.offset
		if !w.opts.DisableStats {
			cc.Stats = computeStats(col)
		}
		if !w.opts.FormatV1 {
			cc.DistinctEst = distinctEstimate(col)
			// The columnar layer stores no nulls; the footer records that
			// fact exactly rather than leaving the count unknown.
			cc.NullCount = 0
			if len(cc.Pages) > 0 && !pageStatsUseful(cc.Pages, cc.Stats) {
				for p := range cc.Pages {
					cc.Pages[p].Stats = Stats{}
				}
			}
		}
		if _, err := w.w.Write(stored); err != nil {
			return err
		}
		w.offset += int64(len(stored))
		rg.Columns = append(rg.Columns, cc)
	}
	w.meta.RowGroups = append(w.meta.RowGroups, rg)
	w.meta.TotalRows += int64(n)
	w.buf = columnar.NewChunk(w.schema, w.opts.RowGroupRows)
	return nil
}

// Close flushes the pending row group and writes the footer trailer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flushRowGroup(); err != nil {
		return err
	}
	footer := encodeFooter(&w.meta, !w.opts.FormatV1)
	if _, err := w.w.Write(footer); err != nil {
		return err
	}
	magic := Magic2
	if w.opts.FormatV1 {
		magic = Magic
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:], uint32(len(footer)))
	copy(trailer[4:], magic[:])
	if _, err := w.w.Write(trailer[:]); err != nil {
		return err
	}
	w.offset += int64(len(footer)) + 8
	w.closed = true
	return nil
}

// Meta returns the accumulated metadata (valid after Close).
func (w *Writer) Meta() *FileMeta { return &w.meta }

// Size returns the bytes written so far (the final file size after Close).
func (w *Writer) Size() int64 { return w.offset }

// WriteFile serializes chunks into one in-memory lpq file.
func WriteFile(schema *columnar.Schema, opts WriterOptions, chunks ...*columnar.Chunk) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf, schema, opts)
	for _, c := range chunks {
		if err := w.Write(c); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
