package lpq

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"lambada/internal/columnar"
)

// WriterOptions configure file layout.
type WriterOptions struct {
	// RowGroupRows is the number of rows per row group (default 131072).
	RowGroupRows int
	// Compression is the heavy-weight scheme applied to every column chunk
	// after encoding (default None).
	Compression Compression
	// ForceEncoding, if non-nil, overrides the per-column automatic
	// encoding choice (keyed by column index).
	ForceEncoding map[int]Encoding
	// DisableStats omits min/max statistics (used for pruning ablations).
	DisableStats bool
}

// DefaultRowGroupRows is the default row-group size.
const DefaultRowGroupRows = 131072

// Writer writes an lpq file. Rows are buffered and flushed as row groups.
type Writer struct {
	w      io.Writer
	opts   WriterOptions
	schema *columnar.Schema
	buf    *columnar.Chunk
	meta   FileMeta
	offset int64
	closed bool
}

// NewWriter returns a writer emitting to w with the given schema.
func NewWriter(w io.Writer, schema *columnar.Schema, opts WriterOptions) *Writer {
	if opts.RowGroupRows <= 0 {
		opts.RowGroupRows = DefaultRowGroupRows
	}
	return &Writer{
		w:      w,
		opts:   opts,
		schema: schema,
		buf:    columnar.NewChunk(schema, opts.RowGroupRows),
		meta:   FileMeta{Schema: schema},
	}
}

// Write appends the chunk's rows, flushing full row groups.
func (w *Writer) Write(c *columnar.Chunk) error {
	if w.closed {
		return fmt.Errorf("lpq: write after close")
	}
	if !c.Schema.Equal(w.schema) {
		return fmt.Errorf("lpq: chunk schema %q != file schema %q", c.Schema, w.schema)
	}
	if err := c.Validate(); err != nil {
		return err
	}
	for row := 0; row < c.NumRows(); {
		space := w.opts.RowGroupRows - w.buf.NumRows()
		take := c.NumRows() - row
		if take > space {
			take = space
		}
		part := c.Slice(row, row+take)
		for j := range w.buf.Columns {
			appendAll(w.buf.Columns[j], part.Columns[j])
		}
		row += take
		if w.buf.NumRows() >= w.opts.RowGroupRows {
			if err := w.flushRowGroup(); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendAll(dst, src *columnar.Vector) {
	switch dst.Type {
	case columnar.Int64:
		dst.Int64s = append(dst.Int64s, src.Int64s...)
	case columnar.Float64:
		dst.Float64s = append(dst.Float64s, src.Float64s...)
	case columnar.Bool:
		dst.Bools = append(dst.Bools, src.Bools...)
	}
}

func (w *Writer) flushRowGroup() error {
	n := w.buf.NumRows()
	if n == 0 {
		return nil
	}
	rg := RowGroupMeta{NumRows: int64(n)}
	for j, col := range w.buf.Columns {
		enc := ChooseEncoding(col)
		if forced, ok := w.opts.ForceEncoding[j]; ok {
			enc = forced
		}
		raw, err := EncodeColumn(col, enc)
		if err != nil {
			// Fall back to Plain for unsupported forced combinations.
			enc = Plain
			raw, err = EncodeColumn(col, enc)
			if err != nil {
				return err
			}
		}
		stored := raw
		if w.opts.Compression == Gzip {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			if _, err := zw.Write(raw); err != nil {
				return err
			}
			if err := zw.Close(); err != nil {
				return err
			}
			stored = zbuf.Bytes()
		}
		cc := ColumnChunkMeta{
			Offset:          w.offset,
			CompressedLen:   int64(len(stored)),
			UncompressedLen: int64(len(raw)),
			Encoding:        enc,
			Compression:     w.opts.Compression,
		}
		if !w.opts.DisableStats {
			cc.Stats = computeStats(col)
		}
		if _, err := w.w.Write(stored); err != nil {
			return err
		}
		w.offset += int64(len(stored))
		rg.Columns = append(rg.Columns, cc)
	}
	w.meta.RowGroups = append(w.meta.RowGroups, rg)
	w.meta.TotalRows += int64(n)
	w.buf = columnar.NewChunk(w.schema, w.opts.RowGroupRows)
	return nil
}

// Close flushes the pending row group and writes the footer trailer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flushRowGroup(); err != nil {
		return err
	}
	footer := encodeFooter(&w.meta)
	if _, err := w.w.Write(footer); err != nil {
		return err
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[0:], uint32(len(footer)))
	copy(trailer[4:], Magic[:])
	if _, err := w.w.Write(trailer[:]); err != nil {
		return err
	}
	w.offset += int64(len(footer)) + 8
	w.closed = true
	return nil
}

// Meta returns the accumulated metadata (valid after Close).
func (w *Writer) Meta() *FileMeta { return &w.meta }

// Size returns the bytes written so far (the final file size after Close).
func (w *Writer) Size() int64 { return w.offset }

// WriteFile serializes chunks into one in-memory lpq file.
func WriteFile(schema *columnar.Schema, opts WriterOptions, chunks ...*columnar.Chunk) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf, schema, opts)
	for _, c := range chunks {
		if err := w.Write(c); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
