package lpq

import (
	"encoding/binary"
	"fmt"
	"math"

	"lambada/internal/columnar"
)

// Magic is the file trailer magic.
var Magic = [4]byte{'L', 'P', 'Q', '1'}

// Compression identifies the heavy-weight compression applied after
// encoding.
type Compression uint8

// Supported compressions.
const (
	None Compression = iota
	Gzip
)

// String names the compression.
func (c Compression) String() string {
	switch c {
	case None:
		return "NONE"
	case Gzip:
		return "GZIP"
	default:
		return fmt.Sprintf("Compression(%d)", uint8(c))
	}
}

// Stats hold the min/max statistics of one column chunk for numeric types.
type Stats struct {
	HasMinMax bool
	// MinInt/MaxInt are valid for Int64 columns, MinF/MaxF for Float64.
	MinInt, MaxInt int64
	MinF, MaxF     float64
}

// ColumnChunkMeta locates one column chunk inside the file.
type ColumnChunkMeta struct {
	Offset          int64
	CompressedLen   int64
	UncompressedLen int64
	Encoding        Encoding
	Compression     Compression
	Stats           Stats
}

// RowGroupMeta describes one row group.
type RowGroupMeta struct {
	NumRows int64
	Columns []ColumnChunkMeta
}

// ByteRange returns the file range [lo, hi) covered by the row group's
// column chunks.
func (rg *RowGroupMeta) ByteRange() (lo, hi int64) {
	lo = math.MaxInt64
	for _, c := range rg.Columns {
		if c.Offset < lo {
			lo = c.Offset
		}
		if end := c.Offset + c.CompressedLen; end > hi {
			hi = end
		}
	}
	if lo == math.MaxInt64 {
		lo = 0
	}
	return lo, hi
}

// FileMeta is the parsed footer.
type FileMeta struct {
	Schema    *columnar.Schema
	RowGroups []RowGroupMeta
	TotalRows int64
}

// NumRowGroups returns the row-group count.
func (m *FileMeta) NumRowGroups() int { return len(m.RowGroups) }

// encodeFooter serializes the footer body (without length/magic trailer).
func encodeFooter(m *FileMeta) []byte {
	var out []byte
	out = putUvarint(out, uint64(m.Schema.Len()))
	for _, f := range m.Schema.Fields {
		out = putUvarint(out, uint64(len(f.Name)))
		out = append(out, f.Name...)
		out = append(out, byte(f.Type))
	}
	out = putUvarint(out, uint64(len(m.RowGroups)))
	for _, rg := range m.RowGroups {
		out = putUvarint(out, uint64(rg.NumRows))
		for _, c := range rg.Columns {
			out = putUvarint(out, uint64(c.Offset))
			out = putUvarint(out, uint64(c.CompressedLen))
			out = putUvarint(out, uint64(c.UncompressedLen))
			out = append(out, byte(c.Encoding), byte(c.Compression))
			if c.Stats.HasMinMax {
				out = append(out, 1)
				var tmp [16]byte
				binary.LittleEndian.PutUint64(tmp[0:], uint64(c.Stats.MinInt))
				binary.LittleEndian.PutUint64(tmp[8:], uint64(c.Stats.MaxInt))
				out = append(out, tmp[:]...)
				binary.LittleEndian.PutUint64(tmp[0:], math.Float64bits(c.Stats.MinF))
				binary.LittleEndian.PutUint64(tmp[8:], math.Float64bits(c.Stats.MaxF))
				out = append(out, tmp[:]...)
			} else {
				out = append(out, 0)
			}
		}
	}
	out = putUvarint(out, uint64(m.TotalRows))
	return out
}

// decodeFooter parses a footer body.
func decodeFooter(data []byte) (*FileMeta, error) {
	r := &byteReader{b: data}
	nf, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nf == 0 || nf > 1<<16 {
		return nil, fmt.Errorf("lpq: implausible field count %d", nf)
	}
	schema := &columnar.Schema{}
	for i := uint64(0); i < nf; i++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		tb, err := r.byte()
		if err != nil {
			return nil, err
		}
		if tb > byte(columnar.Bool) {
			return nil, fmt.Errorf("lpq: unknown type byte %d", tb)
		}
		schema.Fields = append(schema.Fields, columnar.Field{Name: string(name), Type: columnar.Type(tb)})
	}
	nrg, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m := &FileMeta{Schema: schema}
	for g := uint64(0); g < nrg; g++ {
		var rg RowGroupMeta
		rows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rg.NumRows = int64(rows)
		for c := 0; c < schema.Len(); c++ {
			var cc ColumnChunkMeta
			off, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			clen, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			ulen, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			eb, err := r.byte()
			if err != nil {
				return nil, err
			}
			cb, err := r.byte()
			if err != nil {
				return nil, err
			}
			hs, err := r.byte()
			if err != nil {
				return nil, err
			}
			cc.Offset, cc.CompressedLen, cc.UncompressedLen = int64(off), int64(clen), int64(ulen)
			cc.Encoding, cc.Compression = Encoding(eb), Compression(cb)
			if hs == 1 {
				b, err := r.bytes(32)
				if err != nil {
					return nil, err
				}
				cc.Stats.HasMinMax = true
				cc.Stats.MinInt = int64(binary.LittleEndian.Uint64(b[0:]))
				cc.Stats.MaxInt = int64(binary.LittleEndian.Uint64(b[8:]))
				cc.Stats.MinF = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
				cc.Stats.MaxF = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
			}
			rg.Columns = append(rg.Columns, cc)
		}
		m.RowGroups = append(m.RowGroups, rg)
	}
	total, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m.TotalRows = int64(total)
	if r.remaining() != 0 {
		return nil, fmt.Errorf("lpq: %d trailing footer bytes", r.remaining())
	}
	return m, nil
}

// computeStats derives min/max statistics for a vector.
func computeStats(v *columnar.Vector) Stats {
	var s Stats
	switch v.Type {
	case columnar.Int64:
		if len(v.Int64s) == 0 {
			return s
		}
		s.HasMinMax = true
		s.MinInt, s.MaxInt = v.Int64s[0], v.Int64s[0]
		for _, x := range v.Int64s {
			if x < s.MinInt {
				s.MinInt = x
			}
			if x > s.MaxInt {
				s.MaxInt = x
			}
		}
		s.MinF, s.MaxF = float64(s.MinInt), float64(s.MaxInt)
	case columnar.Float64:
		if len(v.Float64s) == 0 {
			return s
		}
		s.HasMinMax = true
		s.MinF, s.MaxF = v.Float64s[0], v.Float64s[0]
		for _, x := range v.Float64s {
			if x < s.MinF {
				s.MinF = x
			}
			if x > s.MaxF {
				s.MaxF = x
			}
		}
		s.MinInt, s.MaxInt = int64(s.MinF), int64(s.MaxF)
	}
	return s
}
