package lpq

import (
	"encoding/binary"
	"fmt"
	"math"

	"lambada/internal/columnar"
)

// Magic is the v1 file trailer magic.
var Magic = [4]byte{'L', 'P', 'Q', '1'}

// Magic2 is the v2 file trailer magic. A v2 footer extends every column
// chunk with a distinct-count estimate and an optional page index (min/max
// statistics at PageMeta granularity); v1 files keep reading unchanged.
var Magic2 = [4]byte{'L', 'P', 'Q', '2'}

// Compression identifies the heavy-weight compression applied after
// encoding.
type Compression uint8

// Supported compressions.
const (
	None Compression = iota
	Gzip
)

// String names the compression.
func (c Compression) String() string {
	switch c {
	case None:
		return "NONE"
	case Gzip:
		return "GZIP"
	default:
		return fmt.Sprintf("Compression(%d)", uint8(c))
	}
}

// Stats hold the min/max statistics of one column chunk for numeric types.
type Stats struct {
	HasMinMax bool
	// MinInt/MaxInt are valid for Int64 columns, MinF/MaxF for Float64.
	MinInt, MaxInt int64
	MinF, MaxF     float64
}

// PageMeta describes one page of a paged column chunk: a fixed-row-count
// slice of the chunk, encoded and compressed independently so it can be
// fetched and decoded on its own. RelOff is the page's byte offset relative
// to the chunk's Offset.
type PageMeta struct {
	NumRows         int64
	RelOff          int64
	CompressedLen   int64
	UncompressedLen int64
	Stats           Stats
}

// ColumnChunkMeta locates one column chunk inside the file.
type ColumnChunkMeta struct {
	Offset          int64
	CompressedLen   int64
	UncompressedLen int64
	Encoding        Encoding
	Compression     Compression
	Stats           Stats
	// DistinctEst estimates the chunk's distinct value count (v2 footers;
	// 0 = unknown). Exact for the row-group sizes the writer produces.
	DistinctEst int64
	// NullCount is the chunk's null-value count (v2 footers; 0 = none or
	// unknown). The columnar layer has no null representation, so the
	// writer always emits 0, but readers honor counts written by other
	// producers: an all-null chunk prunes its row group for any predicate
	// on the column, and partial counts tighten row estimates.
	NullCount int64
	// Pages is the v2 page index: the chunk split at WriterOptions.PageRows
	// boundaries, every page separately encoded (with the chunk's encoding)
	// and compressed. Nil for v1 files and chunks of at most one page, whose
	// byte layout is exactly the v1 single-blob form.
	Pages []PageMeta
}

// PageSpans returns the chunk's page list, synthesizing a single page
// covering the whole chunk when it is unpaged: page-level pruning and late
// materialization then degrade gracefully to row-group granularity.
func (cc *ColumnChunkMeta) PageSpans(numRows int64) []PageMeta {
	if len(cc.Pages) > 0 {
		return cc.Pages
	}
	return []PageMeta{{
		NumRows:         numRows,
		RelOff:          0,
		CompressedLen:   cc.CompressedLen,
		UncompressedLen: cc.UncompressedLen,
		Stats:           cc.Stats,
	}}
}

// RowGroupMeta describes one row group.
type RowGroupMeta struct {
	NumRows int64
	Columns []ColumnChunkMeta
}

// ByteRange returns the file range [lo, hi) covered by the row group's
// column chunks.
func (rg *RowGroupMeta) ByteRange() (lo, hi int64) {
	lo = math.MaxInt64
	for _, c := range rg.Columns {
		if c.Offset < lo {
			lo = c.Offset
		}
		if end := c.Offset + c.CompressedLen; end > hi {
			hi = end
		}
	}
	if lo == math.MaxInt64 {
		lo = 0
	}
	return lo, hi
}

// FileMeta is the parsed footer.
type FileMeta struct {
	Schema    *columnar.Schema
	RowGroups []RowGroupMeta
	TotalRows int64
}

// NumRowGroups returns the row-group count.
func (m *FileMeta) NumRowGroups() int { return len(m.RowGroups) }

// putStats appends a stats block: a presence flag byte, then 32 bytes of
// int and float min/max when present.
func putStats(out []byte, st Stats) []byte {
	if !st.HasMinMax {
		return append(out, 0)
	}
	out = append(out, 1)
	var tmp [16]byte
	binary.LittleEndian.PutUint64(tmp[0:], uint64(st.MinInt))
	binary.LittleEndian.PutUint64(tmp[8:], uint64(st.MaxInt))
	out = append(out, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[0:], math.Float64bits(st.MinF))
	binary.LittleEndian.PutUint64(tmp[8:], math.Float64bits(st.MaxF))
	return append(out, tmp[:]...)
}

// readStats parses a stats block written by putStats.
func readStats(r *byteReader) (Stats, error) {
	var st Stats
	hs, err := r.byte()
	if err != nil {
		return st, err
	}
	if hs != 1 {
		return st, nil
	}
	b, err := r.bytes(32)
	if err != nil {
		return st, err
	}
	st.HasMinMax = true
	st.MinInt = int64(binary.LittleEndian.Uint64(b[0:]))
	st.MaxInt = int64(binary.LittleEndian.Uint64(b[8:]))
	st.MinF = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	st.MaxF = math.Float64frombits(binary.LittleEndian.Uint64(b[24:]))
	return st, nil
}

// putPageIndex appends a column chunk's compact v2 page index. The footer
// is pure overhead every reader must download, so the index stores only
// what cannot be derived: per-page byte lengths (offsets are cumulative —
// the writer lays pages out contiguously) and, when present, typed bounds
// (zigzag varints for Int64/Bool, raw float64 bits for Float64 — the other
// mirror is reconstructed on decode exactly as computeStats would fill
// it). Page row counts collapse to one uvarint: every page holds pageRows
// rows except the last, which holds the row group's remainder. Bounds are
// all-or-none per chunk (one flag byte), matching what the writer emits.
func putPageIndex(out []byte, pages []PageMeta, t columnar.Type) []byte {
	out = putUvarint(out, uint64(len(pages)))
	if len(pages) == 0 {
		return out
	}
	out = putUvarint(out, uint64(pages[0].NumRows))
	for _, pg := range pages {
		out = putUvarint(out, uint64(pg.CompressedLen))
		out = putUvarint(out, uint64(pg.UncompressedLen))
	}
	hasStats := true
	for _, pg := range pages {
		if !pg.Stats.HasMinMax {
			hasStats = false
			break
		}
	}
	if !hasStats {
		return append(out, 0)
	}
	out = append(out, 1)
	for _, pg := range pages {
		if t == columnar.Float64 {
			var tmp [16]byte
			binary.LittleEndian.PutUint64(tmp[0:], math.Float64bits(pg.Stats.MinF))
			binary.LittleEndian.PutUint64(tmp[8:], math.Float64bits(pg.Stats.MaxF))
			out = append(out, tmp[:]...)
		} else {
			out = putUvarint(out, zigzag(pg.Stats.MinInt))
			out = putUvarint(out, zigzag(pg.Stats.MaxInt))
		}
	}
	return out
}

// readPageIndex parses a page index written by putPageIndex, reconstructing
// offsets, row counts, and stat mirrors.
func readPageIndex(r *byteReader, t columnar.Type, groupRows int64) ([]PageMeta, error) {
	np, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if np == 0 {
		return nil, nil
	}
	if np > 1<<24 {
		return nil, fmt.Errorf("lpq: implausible page count %d", np)
	}
	pageRows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if pageRows == 0 || int64(np-1)*int64(pageRows) >= groupRows || int64(np)*int64(pageRows) < groupRows {
		return nil, fmt.Errorf("lpq: %d pages of %d rows cannot tile a %d-row group", np, pageRows, groupRows)
	}
	pages := make([]PageMeta, np)
	var off int64
	for p := range pages {
		pcl, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		pul, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		pages[p] = PageMeta{
			NumRows:         int64(pageRows),
			RelOff:          off,
			CompressedLen:   int64(pcl),
			UncompressedLen: int64(pul),
		}
		off += int64(pcl)
	}
	pages[np-1].NumRows = groupRows - int64(np-1)*int64(pageRows)
	hs, err := r.byte()
	if err != nil {
		return nil, err
	}
	if hs == 0 {
		return pages, nil
	}
	for p := range pages {
		st := &pages[p].Stats
		st.HasMinMax = true
		if t == columnar.Float64 {
			b, err := r.bytes(16)
			if err != nil {
				return nil, err
			}
			st.MinF = math.Float64frombits(binary.LittleEndian.Uint64(b[0:]))
			st.MaxF = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
			st.MinInt, st.MaxInt = int64(st.MinF), int64(st.MaxF)
		} else {
			mn, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			mx, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			st.MinInt, st.MaxInt = unzigzag(mn), unzigzag(mx)
			st.MinF, st.MaxF = float64(st.MinInt), float64(st.MaxInt)
		}
	}
	return pages, nil
}

// encodeFooter serializes the footer body (without length/magic trailer).
// A v2 footer is the v1 layout plus, per column chunk, a distinct-count
// estimate and the page index.
func encodeFooter(m *FileMeta, v2 bool) []byte {
	var out []byte
	out = putUvarint(out, uint64(m.Schema.Len()))
	for _, f := range m.Schema.Fields {
		out = putUvarint(out, uint64(len(f.Name)))
		out = append(out, f.Name...)
		out = append(out, byte(f.Type))
	}
	out = putUvarint(out, uint64(len(m.RowGroups)))
	for _, rg := range m.RowGroups {
		out = putUvarint(out, uint64(rg.NumRows))
		for ci, c := range rg.Columns {
			out = putUvarint(out, uint64(c.Offset))
			out = putUvarint(out, uint64(c.CompressedLen))
			out = putUvarint(out, uint64(c.UncompressedLen))
			out = append(out, byte(c.Encoding), byte(c.Compression))
			out = putStats(out, c.Stats)
			if v2 {
				out = putUvarint(out, uint64(c.DistinctEst))
				out = putUvarint(out, uint64(c.NullCount))
				out = putPageIndex(out, c.Pages, m.Schema.Fields[ci].Type)
			}
		}
	}
	out = putUvarint(out, uint64(m.TotalRows))
	return out
}

// decodeFooter parses a footer body.
func decodeFooter(data []byte, v2 bool) (*FileMeta, error) {
	r := &byteReader{b: data}
	nf, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nf == 0 || nf > 1<<16 {
		return nil, fmt.Errorf("lpq: implausible field count %d", nf)
	}
	schema := &columnar.Schema{}
	for i := uint64(0); i < nf; i++ {
		nameLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		tb, err := r.byte()
		if err != nil {
			return nil, err
		}
		if tb > byte(columnar.Bool) {
			return nil, fmt.Errorf("lpq: unknown type byte %d", tb)
		}
		schema.Fields = append(schema.Fields, columnar.Field{Name: string(name), Type: columnar.Type(tb)})
	}
	nrg, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m := &FileMeta{Schema: schema}
	for g := uint64(0); g < nrg; g++ {
		var rg RowGroupMeta
		rows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rg.NumRows = int64(rows)
		for c := 0; c < schema.Len(); c++ {
			var cc ColumnChunkMeta
			off, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			clen, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			ulen, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			eb, err := r.byte()
			if err != nil {
				return nil, err
			}
			cb, err := r.byte()
			if err != nil {
				return nil, err
			}
			cc.Offset, cc.CompressedLen, cc.UncompressedLen = int64(off), int64(clen), int64(ulen)
			cc.Encoding, cc.Compression = Encoding(eb), Compression(cb)
			if cc.Stats, err = readStats(r); err != nil {
				return nil, err
			}
			if v2 {
				de, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				cc.DistinctEst = int64(de)
				nc, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				cc.NullCount = int64(nc)
				if cc.Pages, err = readPageIndex(r, schema.Fields[c].Type, rg.NumRows); err != nil {
					return nil, err
				}
			}
			rg.Columns = append(rg.Columns, cc)
		}
		m.RowGroups = append(m.RowGroups, rg)
	}
	total, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m.TotalRows = int64(total)
	if r.remaining() != 0 {
		return nil, fmt.Errorf("lpq: %d trailing footer bytes", r.remaining())
	}
	return m, nil
}

// distinctEstimate counts a vector's distinct values. Exact: row groups
// hold at most WriterOptions.RowGroupRows values, small enough for a map
// pass at write time.
func distinctEstimate(v *columnar.Vector) int64 {
	switch v.Type {
	case columnar.Int64:
		seen := make(map[int64]struct{}, 64)
		for _, x := range v.Int64s {
			seen[x] = struct{}{}
		}
		return int64(len(seen))
	case columnar.Float64:
		seen := make(map[float64]struct{}, 64)
		for _, x := range v.Float64s {
			seen[x] = struct{}{}
		}
		return int64(len(seen))
	case columnar.Bool:
		var t, f bool
		for _, x := range v.Bools {
			if x {
				t = true
			} else {
				f = true
			}
			if t && f {
				break
			}
		}
		n := int64(0)
		if t {
			n++
		}
		if f {
			n++
		}
		return n
	}
	return 0
}

// computeStats derives min/max statistics for a vector.
func computeStats(v *columnar.Vector) Stats {
	var s Stats
	switch v.Type {
	case columnar.Int64:
		if len(v.Int64s) == 0 {
			return s
		}
		s.HasMinMax = true
		s.MinInt, s.MaxInt = v.Int64s[0], v.Int64s[0]
		for _, x := range v.Int64s {
			if x < s.MinInt {
				s.MinInt = x
			}
			if x > s.MaxInt {
				s.MaxInt = x
			}
		}
		s.MinF, s.MaxF = float64(s.MinInt), float64(s.MaxInt)
	case columnar.Float64:
		if len(v.Float64s) == 0 {
			return s
		}
		s.HasMinMax = true
		s.MinF, s.MaxF = v.Float64s[0], v.Float64s[0]
		for _, x := range v.Float64s {
			if x < s.MinF {
				s.MinF = x
			}
			if x > s.MaxF {
				s.MaxF = x
			}
		}
		s.MinInt, s.MaxInt = int64(s.MinF), int64(s.MaxF)
	}
	return s
}
