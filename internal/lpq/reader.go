package lpq

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"lambada/internal/columnar"
)

// FooterGuess is how many trailing bytes the reader speculatively fetches;
// when the footer fits (the common case) opening costs a single ranged read,
// matching the paper's "loads this metadata with a single file read". The
// guess is billed in full on every open, so it is sized to the footers this
// writer actually produces (tens of bytes per column chunk) rather than a
// conservative blanket value: a too-large guess silently re-downloads small
// objects end to end on every metadata open. Footers longer than the guess
// cost one extra ranged read of exactly the missing prefix.
const FooterGuess = 4 * 1024

// Reader reads an lpq file from any io.ReaderAt — an in-memory buffer, an
// OS file, or an S3-backed random-access file.
type Reader struct {
	r    io.ReaderAt
	size int64
	meta *FileMeta
	// MetadataReads counts how many ReadAt calls opening the footer took.
	MetadataReads int
}

// OpenReader parses the footer and returns a reader.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < 8 {
		return nil, fmt.Errorf("lpq: file too small (%d bytes)", size)
	}
	rd := &Reader{r: r, size: size}
	guess := int64(FooterGuess)
	if guess > size {
		guess = size
	}
	tail := make([]byte, guess)
	if _, err := r.ReadAt(tail, size-guess); err != nil {
		return nil, fmt.Errorf("lpq: reading footer: %w", err)
	}
	rd.MetadataReads = 1
	trailer := tail[len(tail)-8:]
	var v2 bool
	switch {
	case bytes.Equal(trailer[4:], Magic2[:]):
		v2 = true
	case bytes.Equal(trailer[4:], Magic[:]):
		v2 = false
	default:
		return nil, fmt.Errorf("lpq: bad magic %q", trailer[4:])
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if footerLen+8 > size {
		return nil, fmt.Errorf("lpq: footer length %d exceeds file size %d", footerLen, size)
	}
	var footer []byte
	if footerLen+8 <= guess {
		footer = tail[guess-8-footerLen : guess-8]
	} else {
		// The tail already holds the footer's suffix; fetch only the
		// missing prefix rather than re-billing bytes in hand.
		footer = make([]byte, footerLen)
		missing := footerLen + 8 - guess
		if _, err := r.ReadAt(footer[:missing], size-8-footerLen); err != nil {
			return nil, fmt.Errorf("lpq: reading long footer: %w", err)
		}
		copy(footer[missing:], tail[:guess-8])
		rd.MetadataReads = 2
	}
	meta, err := decodeFooter(footer, v2)
	if err != nil {
		return nil, err
	}
	rd.meta = meta
	return rd, nil
}

// Meta returns the file metadata.
func (r *Reader) Meta() *FileMeta { return r.meta }

// Schema returns the file schema.
func (r *Reader) Schema() *columnar.Schema { return r.meta.Schema }

// ReadColumn reads, decompresses and decodes one column chunk.
func (r *Reader) ReadColumn(rowGroup, col int) (*columnar.Vector, error) {
	if rowGroup < 0 || rowGroup >= len(r.meta.RowGroups) {
		return nil, fmt.Errorf("lpq: row group %d out of range", rowGroup)
	}
	rg := &r.meta.RowGroups[rowGroup]
	if col < 0 || col >= len(rg.Columns) {
		return nil, fmt.Errorf("lpq: column %d out of range", col)
	}
	cc := rg.Columns[col]
	stored := make([]byte, cc.CompressedLen)
	if _, err := r.r.ReadAt(stored, cc.Offset); err != nil {
		return nil, fmt.Errorf("lpq: reading column chunk: %w", err)
	}
	return DecodeColumnChunk(stored, r.meta.Schema.Fields[col].Type, cc, rg.NumRows)
}

// DecodeColumnChunk decompresses and decodes stored column-chunk bytes. It
// is exported so the S3 scan operator can download bytes itself (with its
// own concurrency strategy) and still reuse the decode path.
func DecodeColumnChunk(stored []byte, t columnar.Type, cc ColumnChunkMeta, numRows int64) (*columnar.Vector, error) {
	v, _, err := DecodeColumnChunkBuf(stored, t, cc, numRows, nil)
	return v, err
}

// DecodeColumnChunkBuf is DecodeColumnChunk with a reusable decompression
// scratch buffer: gzip output is inflated into scratch (grown as needed)
// instead of a fresh io.ReadAll allocation per chunk. It returns the
// (possibly grown) scratch for the caller to thread through subsequent
// calls. The returned vector never aliases scratch — every decoder copies
// values out — so reusing scratch immediately is safe.
func DecodeColumnChunkBuf(stored []byte, t columnar.Type, cc ColumnChunkMeta, numRows int64, scratch []byte) (*columnar.Vector, []byte, error) {
	if len(cc.Pages) > 0 {
		// Paged v2 chunk: every page is independently encoded and
		// compressed, so decode page by page and concatenate.
		out := columnar.NewVector(t, int(numRows))
		var total int64
		for i := range cc.Pages {
			pg := &cc.Pages[i]
			if pg.RelOff+pg.CompressedLen > int64(len(stored)) {
				return nil, scratch, fmt.Errorf("lpq: page %d spans [%d,%d) beyond chunk of %d bytes",
					i, pg.RelOff, pg.RelOff+pg.CompressedLen, len(stored))
			}
			var v *columnar.Vector
			var err error
			v, scratch, err = DecodePage(stored[pg.RelOff:pg.RelOff+pg.CompressedLen], t, cc, *pg, scratch)
			if err != nil {
				return nil, scratch, err
			}
			appendAll(out, v)
			total += pg.NumRows
		}
		if total != numRows {
			return nil, scratch, fmt.Errorf("lpq: page rows sum to %d, row group has %d", total, numRows)
		}
		return out, scratch, nil
	}
	raw := stored
	if cc.Compression == Gzip {
		zr, err := gzip.NewReader(bytes.NewReader(stored))
		if err != nil {
			return nil, scratch, fmt.Errorf("lpq: gzip: %w", err)
		}
		if int64(cap(scratch)) < cc.UncompressedLen {
			scratch = make([]byte, cc.UncompressedLen)
		}
		raw = scratch[:cc.UncompressedLen]
		if _, err := io.ReadFull(zr, raw); err != nil {
			return nil, scratch, fmt.Errorf("lpq: gunzip: %w", err)
		}
		var extra [1]byte
		if n, _ := zr.Read(extra[:]); n != 0 {
			return nil, scratch, fmt.Errorf("lpq: uncompressed data longer than expected %d", cc.UncompressedLen)
		}
		if err := zr.Close(); err != nil {
			return nil, scratch, err
		}
	} else if int64(len(raw)) != cc.UncompressedLen {
		return nil, scratch, fmt.Errorf("lpq: uncompressed length %d != expected %d", len(raw), cc.UncompressedLen)
	}
	v, err := DecodeColumn(raw, t, cc.Encoding, int(numRows))
	return v, scratch, err
}

// DecodePage decompresses and decodes one page of a paged column chunk.
// stored must hold exactly the page's compressed bytes
// (chunk bytes sliced at [pg.RelOff, pg.RelOff+pg.CompressedLen)).
func DecodePage(stored []byte, t columnar.Type, cc ColumnChunkMeta, pg PageMeta, scratch []byte) (*columnar.Vector, []byte, error) {
	one := ColumnChunkMeta{
		CompressedLen:   pg.CompressedLen,
		UncompressedLen: pg.UncompressedLen,
		Encoding:        cc.Encoding,
		Compression:     cc.Compression,
	}
	return DecodeColumnChunkBuf(stored, t, one, pg.NumRows, scratch)
}

// ReadRowGroup reads the given columns (by index; nil means all) of one row
// group into a chunk.
func (r *Reader) ReadRowGroup(rowGroup int, cols []int) (*columnar.Chunk, error) {
	if cols == nil {
		cols = make([]int, r.meta.Schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	fields := make([]columnar.Field, len(cols))
	for i, c := range cols {
		fields[i] = r.meta.Schema.Fields[c]
	}
	out := &columnar.Chunk{Schema: columnar.NewSchema(fields...)}
	for _, c := range cols {
		v, err := r.ReadColumn(rowGroup, c)
		if err != nil {
			return nil, err
		}
		out.Columns = append(out.Columns, v)
	}
	return out, nil
}

// ReadAll reads the whole file into one chunk (convenience for tests and
// small driver-side scans).
func (r *Reader) ReadAll() (*columnar.Chunk, error) {
	out := columnar.NewChunk(r.meta.Schema, int(r.meta.TotalRows))
	for g := range r.meta.RowGroups {
		c, err := r.ReadRowGroup(g, nil)
		if err != nil {
			return nil, err
		}
		for j := range out.Columns {
			appendAll(out.Columns[j], c.Columns[j])
		}
	}
	return out, nil
}

// Predicate is a min/max-testable condition on one column, used for
// row-group and page pruning (selection push-down, §4.3.2 / Figure 11).
type Predicate struct {
	Column string
	// Min and Max bound the values selected by the predicate; a row group
	// whose [min,max] statistics do not intersect [Min,Max] is pruned.
	Min, Max float64
	// HasInt marks predicates whose literal bounds are exact integers.
	// Int64 columns are then pruned via MinInt/MaxInt: the float mirrors
	// are lossy above 2^53, so comparing them could wrongly prune (or keep)
	// groups of large keys.
	HasInt         bool
	MinInt, MaxInt int64
}

// Admits reports whether statistics st of a column of type t may contain a
// value selected by p. Missing statistics always admit.
func (p *Predicate) Admits(st Stats, t columnar.Type) bool {
	if !st.HasMinMax {
		return true
	}
	if p.HasInt && t == columnar.Int64 {
		return st.MinInt <= p.MaxInt && st.MaxInt >= p.MinInt
	}
	return st.MinF <= p.Max && st.MaxF >= p.Min
}

// PruneRowGroups returns the row-group indices that may contain matching
// rows, using footer statistics. Row groups without statistics are kept.
// A group whose predicate column is entirely null (v2 null counts) is
// pruned regardless of its min/max bounds: no row can satisfy a min/max
// predicate on a null value.
func PruneRowGroups(meta *FileMeta, preds []Predicate) []int {
	var keep []int
	for g := range meta.RowGroups {
		rg := &meta.RowGroups[g]
		match := true
		for _, p := range preds {
			ci := meta.Schema.Index(p.Column)
			if ci < 0 {
				continue
			}
			cc := &rg.Columns[ci]
			if cc.NullCount >= rg.NumRows && rg.NumRows > 0 {
				match = false
				break
			}
			if !p.Admits(cc.Stats, meta.Schema.Fields[ci].Type) {
				match = false
				break
			}
		}
		if match {
			keep = append(keep, g)
		}
	}
	return keep
}

// PrunePages evaluates preds against the page index of row group g and
// returns one keep-flag per page slot. The slot count is the maximum page
// count over the group's columns; an unpaged column contributes its chunk
// statistics to every slot. Pages the writer produces are row-aligned
// across columns (all split at the same PageRows boundaries), so slot i of
// every column covers the same rows.
func PrunePages(meta *FileMeta, g int, preds []Predicate) []bool {
	rg := &meta.RowGroups[g]
	npages := 1
	for c := range rg.Columns {
		if n := len(rg.Columns[c].Pages); n > npages {
			npages = n
		}
	}
	keep := make([]bool, npages)
	for i := range keep {
		keep[i] = true
	}
	for _, p := range preds {
		ci := meta.Schema.Index(p.Column)
		if ci < 0 {
			continue
		}
		t := meta.Schema.Fields[ci].Type
		cc := &rg.Columns[ci]
		if len(cc.Pages) == 0 {
			if !p.Admits(cc.Stats, t) {
				for i := range keep {
					keep[i] = false
				}
			}
			continue
		}
		for i := range cc.Pages {
			if i < len(keep) && !p.Admits(cc.Pages[i].Stats, t) {
				keep[i] = false
			}
		}
	}
	return keep
}

// EstimateRows bounds the number of rows of the file that may satisfy
// preds, at page granularity: pruned row groups contribute nothing, pruned
// pages of surviving groups contribute nothing, everything else counts in
// full. Null counts (v2 footers) cap a surviving group's contribution at
// NumRows minus the largest null count over its predicate columns — a null
// never satisfies a min/max predicate. With no predicates this is exactly
// TotalRows.
func EstimateRows(meta *FileMeta, preds []Predicate) int64 {
	if len(preds) == 0 {
		return meta.TotalRows
	}
	var est int64
	for _, g := range PruneRowGroups(meta, preds) {
		rg := &meta.RowGroups[g]
		avail := rg.NumRows
		for _, p := range preds {
			ci := meta.Schema.Index(p.Column)
			if ci < 0 {
				continue
			}
			if n := rg.NumRows - rg.Columns[ci].NullCount; n < avail {
				avail = n
			}
		}
		if avail < 0 {
			avail = 0
		}
		keep := PrunePages(meta, g, preds)
		if len(keep) == 1 {
			if keep[0] {
				est += avail
			}
			continue
		}
		// Page slots are row-aligned; take each slot's row count from the
		// first column that actually has that many pages.
		var rows []int64
		for c := range rg.Columns {
			if len(rg.Columns[c].Pages) == len(keep) {
				for _, pg := range rg.Columns[c].Pages {
					rows = append(rows, pg.NumRows)
				}
				break
			}
		}
		if rows == nil {
			est += avail
			continue
		}
		var kept int64
		for i, k := range keep {
			if k {
				kept += rows[i]
			}
		}
		est += min(kept, avail)
	}
	return est
}
