package lpq

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"lambada/internal/columnar"
)

// FooterGuess is how many trailing bytes the reader speculatively fetches;
// when the footer fits (the common case) opening costs a single ranged read,
// matching the paper's "loads this metadata with a single file read".
const FooterGuess = 64 * 1024

// Reader reads an lpq file from any io.ReaderAt — an in-memory buffer, an
// OS file, or an S3-backed random-access file.
type Reader struct {
	r    io.ReaderAt
	size int64
	meta *FileMeta
	// MetadataReads counts how many ReadAt calls opening the footer took.
	MetadataReads int
}

// OpenReader parses the footer and returns a reader.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < 8 {
		return nil, fmt.Errorf("lpq: file too small (%d bytes)", size)
	}
	rd := &Reader{r: r, size: size}
	guess := int64(FooterGuess)
	if guess > size {
		guess = size
	}
	tail := make([]byte, guess)
	if _, err := r.ReadAt(tail, size-guess); err != nil {
		return nil, fmt.Errorf("lpq: reading footer: %w", err)
	}
	rd.MetadataReads = 1
	trailer := tail[len(tail)-8:]
	if !bytes.Equal(trailer[4:], Magic[:]) {
		return nil, fmt.Errorf("lpq: bad magic %q", trailer[4:])
	}
	footerLen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if footerLen+8 > size {
		return nil, fmt.Errorf("lpq: footer length %d exceeds file size %d", footerLen, size)
	}
	var footer []byte
	if footerLen+8 <= guess {
		footer = tail[guess-8-footerLen : guess-8]
	} else {
		footer = make([]byte, footerLen)
		if _, err := r.ReadAt(footer, size-8-footerLen); err != nil {
			return nil, fmt.Errorf("lpq: reading long footer: %w", err)
		}
		rd.MetadataReads = 2
	}
	meta, err := decodeFooter(footer)
	if err != nil {
		return nil, err
	}
	rd.meta = meta
	return rd, nil
}

// Meta returns the file metadata.
func (r *Reader) Meta() *FileMeta { return r.meta }

// Schema returns the file schema.
func (r *Reader) Schema() *columnar.Schema { return r.meta.Schema }

// ReadColumn reads, decompresses and decodes one column chunk.
func (r *Reader) ReadColumn(rowGroup, col int) (*columnar.Vector, error) {
	if rowGroup < 0 || rowGroup >= len(r.meta.RowGroups) {
		return nil, fmt.Errorf("lpq: row group %d out of range", rowGroup)
	}
	rg := &r.meta.RowGroups[rowGroup]
	if col < 0 || col >= len(rg.Columns) {
		return nil, fmt.Errorf("lpq: column %d out of range", col)
	}
	cc := rg.Columns[col]
	stored := make([]byte, cc.CompressedLen)
	if _, err := r.r.ReadAt(stored, cc.Offset); err != nil {
		return nil, fmt.Errorf("lpq: reading column chunk: %w", err)
	}
	return DecodeColumnChunk(stored, r.meta.Schema.Fields[col].Type, cc, rg.NumRows)
}

// DecodeColumnChunk decompresses and decodes stored column-chunk bytes. It
// is exported so the S3 scan operator can download bytes itself (with its
// own concurrency strategy) and still reuse the decode path.
func DecodeColumnChunk(stored []byte, t columnar.Type, cc ColumnChunkMeta, numRows int64) (*columnar.Vector, error) {
	v, _, err := DecodeColumnChunkBuf(stored, t, cc, numRows, nil)
	return v, err
}

// DecodeColumnChunkBuf is DecodeColumnChunk with a reusable decompression
// scratch buffer: gzip output is inflated into scratch (grown as needed)
// instead of a fresh io.ReadAll allocation per chunk. It returns the
// (possibly grown) scratch for the caller to thread through subsequent
// calls. The returned vector never aliases scratch — every decoder copies
// values out — so reusing scratch immediately is safe.
func DecodeColumnChunkBuf(stored []byte, t columnar.Type, cc ColumnChunkMeta, numRows int64, scratch []byte) (*columnar.Vector, []byte, error) {
	raw := stored
	if cc.Compression == Gzip {
		zr, err := gzip.NewReader(bytes.NewReader(stored))
		if err != nil {
			return nil, scratch, fmt.Errorf("lpq: gzip: %w", err)
		}
		if int64(cap(scratch)) < cc.UncompressedLen {
			scratch = make([]byte, cc.UncompressedLen)
		}
		raw = scratch[:cc.UncompressedLen]
		if _, err := io.ReadFull(zr, raw); err != nil {
			return nil, scratch, fmt.Errorf("lpq: gunzip: %w", err)
		}
		var extra [1]byte
		if n, _ := zr.Read(extra[:]); n != 0 {
			return nil, scratch, fmt.Errorf("lpq: uncompressed data longer than expected %d", cc.UncompressedLen)
		}
		if err := zr.Close(); err != nil {
			return nil, scratch, err
		}
	} else if int64(len(raw)) != cc.UncompressedLen {
		return nil, scratch, fmt.Errorf("lpq: uncompressed length %d != expected %d", len(raw), cc.UncompressedLen)
	}
	v, err := DecodeColumn(raw, t, cc.Encoding, int(numRows))
	return v, scratch, err
}

// ReadRowGroup reads the given columns (by index; nil means all) of one row
// group into a chunk.
func (r *Reader) ReadRowGroup(rowGroup int, cols []int) (*columnar.Chunk, error) {
	if cols == nil {
		cols = make([]int, r.meta.Schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	fields := make([]columnar.Field, len(cols))
	for i, c := range cols {
		fields[i] = r.meta.Schema.Fields[c]
	}
	out := &columnar.Chunk{Schema: columnar.NewSchema(fields...)}
	for _, c := range cols {
		v, err := r.ReadColumn(rowGroup, c)
		if err != nil {
			return nil, err
		}
		out.Columns = append(out.Columns, v)
	}
	return out, nil
}

// ReadAll reads the whole file into one chunk (convenience for tests and
// small driver-side scans).
func (r *Reader) ReadAll() (*columnar.Chunk, error) {
	out := columnar.NewChunk(r.meta.Schema, int(r.meta.TotalRows))
	for g := range r.meta.RowGroups {
		c, err := r.ReadRowGroup(g, nil)
		if err != nil {
			return nil, err
		}
		for j := range out.Columns {
			appendAll(out.Columns[j], c.Columns[j])
		}
	}
	return out, nil
}

// Predicate is a min/max-testable condition on one column, used for
// row-group pruning (selection push-down, §4.3.2 / Figure 11).
type Predicate struct {
	Column string
	// Min and Max bound the values selected by the predicate; a row group
	// whose [min,max] statistics do not intersect [Min,Max] is pruned.
	Min, Max float64
}

// PruneRowGroups returns the row-group indices that may contain matching
// rows, using footer statistics. Row groups without statistics are kept.
func PruneRowGroups(meta *FileMeta, preds []Predicate) []int {
	var keep []int
	for g := range meta.RowGroups {
		rg := &meta.RowGroups[g]
		match := true
		for _, p := range preds {
			ci := meta.Schema.Index(p.Column)
			if ci < 0 {
				continue
			}
			st := rg.Columns[ci].Stats
			if !st.HasMinMax {
				continue
			}
			if st.MinF > p.Max || st.MaxF < p.Min {
				match = false
				break
			}
		}
		if match {
			keep = append(keep, g)
		}
	}
	return keep
}
