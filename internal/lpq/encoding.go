// Package lpq implements "Lambada Parquet", a from-scratch columnar file
// format with the properties the paper's scan operator exploits (§4.3.2):
//
//   - data stored in row groups of column chunks, each independently
//     readable with one ranged request;
//   - a footer holding the schema, per-column-chunk offsets, and optional
//     min/max statistics enabling row-group pruning on pushed-down
//     predicates;
//   - light-weight encodings (run-length, delta, dictionary) and an
//     optional heavy-weight compression scheme (GZIP) per column chunk.
//
// The layout is:
//
//	[column chunk bytes ...]* [footer] [footerLen uint32] [magic "LPQ1"]
//
// All integers in the footer are unsigned varints; values are little-endian.
package lpq

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lambada/internal/columnar"
)

// Encoding identifies how a column chunk's values are serialized.
type Encoding uint8

// Supported encodings.
const (
	Plain Encoding = iota // fixed-width values
	RLE                   // (run length, value) pairs
	Delta                 // zigzag-varint deltas, for sorted or smooth ints
	Dict                  // dictionary + varint indices
)

// String names the encoding.
func (e Encoding) String() string {
	switch e {
	case Plain:
		return "PLAIN"
	case RLE:
		return "RLE"
	case Delta:
		return "DELTA"
	case Dict:
		return "DICT"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("lpq: corrupt varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if r.pos+n > len(r.b) {
		return nil, fmt.Errorf("lpq: truncated data: need %d bytes at %d, have %d", n, r.pos, len(r.b))
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) remaining() int { return len(r.b) - r.pos }

// EncodeColumn serializes a vector with the given encoding. The vector's
// type constrains the valid encodings: Delta applies to Int64 only; Dict to
// Int64 and Float64; RLE to Int64 and Bool.
func EncodeColumn(v *columnar.Vector, enc Encoding) ([]byte, error) {
	switch enc {
	case Plain:
		return encodePlain(v), nil
	case RLE:
		return encodeRLE(v)
	case Delta:
		return encodeDelta(v)
	case Dict:
		return encodeDict(v)
	default:
		return nil, fmt.Errorf("lpq: unknown encoding %v", enc)
	}
}

// DecodeColumn deserializes n values of type t from data.
func DecodeColumn(data []byte, t columnar.Type, enc Encoding, n int) (*columnar.Vector, error) {
	switch enc {
	case Plain:
		return decodePlain(data, t, n)
	case RLE:
		return decodeRLE(data, t, n)
	case Delta:
		return decodeDelta(data, t, n)
	case Dict:
		return decodeDict(data, t, n)
	default:
		return nil, fmt.Errorf("lpq: unknown encoding %v", enc)
	}
}

func encodePlain(v *columnar.Vector) []byte {
	switch v.Type {
	case columnar.Int64:
		out := make([]byte, 8*len(v.Int64s))
		for i, x := range v.Int64s {
			binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
		}
		return out
	case columnar.Float64:
		out := make([]byte, 8*len(v.Float64s))
		for i, x := range v.Float64s {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
		}
		return out
	default:
		out := make([]byte, len(v.Bools))
		for i, x := range v.Bools {
			if x {
				out[i] = 1
			}
		}
		return out
	}
}

// decodePlain bulk-decodes fixed-width values: one length check up front,
// then direct index writes into the preallocated value slice (no per-value
// append bookkeeping — this is the hottest decode loop in the system).
func decodePlain(data []byte, t columnar.Type, n int) (*columnar.Vector, error) {
	v := columnar.NewVector(t, n)
	switch t {
	case columnar.Int64:
		if len(data) < 8*n {
			return nil, fmt.Errorf("lpq: plain int64 column truncated: %d < %d", len(data), 8*n)
		}
		v.Int64s = v.Int64s[:n]
		for i := range v.Int64s {
			v.Int64s[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
	case columnar.Float64:
		if len(data) < 8*n {
			return nil, fmt.Errorf("lpq: plain float64 column truncated")
		}
		v.Float64s = v.Float64s[:n]
		for i := range v.Float64s {
			v.Float64s[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
	default:
		if len(data) < n {
			return nil, fmt.Errorf("lpq: plain bool column truncated")
		}
		v.Bools = v.Bools[:n]
		for i := range v.Bools {
			v.Bools[i] = data[i] != 0
		}
	}
	return v, nil
}

func encodeRLE(v *columnar.Vector) ([]byte, error) {
	var out []byte
	switch v.Type {
	case columnar.Int64:
		for i := 0; i < len(v.Int64s); {
			j := i + 1
			for j < len(v.Int64s) && v.Int64s[j] == v.Int64s[i] {
				j++
			}
			out = putUvarint(out, uint64(j-i))
			out = putUvarint(out, zigzag(v.Int64s[i]))
			i = j
		}
	case columnar.Bool:
		for i := 0; i < len(v.Bools); {
			j := i + 1
			for j < len(v.Bools) && v.Bools[j] == v.Bools[i] {
				j++
			}
			out = putUvarint(out, uint64(j-i))
			if v.Bools[i] {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
			i = j
		}
	default:
		return nil, fmt.Errorf("lpq: RLE unsupported for %v", v.Type)
	}
	return out, nil
}

func decodeRLE(data []byte, t columnar.Type, n int) (*columnar.Vector, error) {
	v := columnar.NewVector(t, n)
	r := &byteReader{b: data}
	for v.Len() < n {
		run, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if run == 0 || v.Len()+int(run) > n {
			return nil, fmt.Errorf("lpq: RLE run %d overflows %d values", run, n)
		}
		switch t {
		case columnar.Int64:
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			x := unzigzag(u)
			for k := uint64(0); k < run; k++ {
				v.Int64s = append(v.Int64s, x)
			}
		case columnar.Bool:
			b, err := r.byte()
			if err != nil {
				return nil, err
			}
			for k := uint64(0); k < run; k++ {
				v.Bools = append(v.Bools, b != 0)
			}
		default:
			return nil, fmt.Errorf("lpq: RLE unsupported for %v", t)
		}
	}
	return v, nil
}

func encodeDelta(v *columnar.Vector) ([]byte, error) {
	if v.Type != columnar.Int64 {
		return nil, fmt.Errorf("lpq: delta unsupported for %v", v.Type)
	}
	var out []byte
	prev := int64(0)
	for i, x := range v.Int64s {
		if i == 0 {
			out = putUvarint(out, zigzag(x))
		} else {
			out = putUvarint(out, zigzag(x-prev))
		}
		prev = x
	}
	return out, nil
}

func decodeDelta(data []byte, t columnar.Type, n int) (*columnar.Vector, error) {
	if t != columnar.Int64 {
		return nil, fmt.Errorf("lpq: delta unsupported for %v", t)
	}
	v := columnar.NewVector(t, n)
	r := &byteReader{b: data}
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		d := unzigzag(u)
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		v.Int64s = append(v.Int64s, prev)
	}
	return v, nil
}

func encodeDict(v *columnar.Vector) ([]byte, error) {
	var out []byte
	switch v.Type {
	case columnar.Int64:
		dict := map[int64]uint64{}
		var values []int64
		for _, x := range v.Int64s {
			if _, ok := dict[x]; !ok {
				dict[x] = 0
				values = append(values, x)
			}
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for i, x := range values {
			dict[x] = uint64(i)
		}
		out = putUvarint(out, uint64(len(values)))
		for _, x := range values {
			out = putUvarint(out, zigzag(x))
		}
		for _, x := range v.Int64s {
			out = putUvarint(out, dict[x])
		}
	case columnar.Float64:
		dict := map[float64]uint64{}
		var values []float64
		for _, x := range v.Float64s {
			if _, ok := dict[x]; !ok {
				dict[x] = 0
				values = append(values, x)
			}
		}
		sort.Float64s(values)
		for i, x := range values {
			dict[x] = uint64(i)
		}
		out = putUvarint(out, uint64(len(values)))
		for _, x := range values {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
			out = append(out, tmp[:]...)
		}
		for _, x := range v.Float64s {
			out = putUvarint(out, dict[x])
		}
	default:
		return nil, fmt.Errorf("lpq: dict unsupported for %v", v.Type)
	}
	return out, nil
}

func decodeDict(data []byte, t columnar.Type, n int) (*columnar.Vector, error) {
	r := &byteReader{b: data}
	size, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	v := columnar.NewVector(t, n)
	switch t {
	case columnar.Int64:
		dict := make([]int64, size)
		for i := range dict {
			u, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			dict[i] = unzigzag(u)
		}
		for i := 0; i < n; i++ {
			idx, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if idx >= size {
				return nil, fmt.Errorf("lpq: dict index %d out of range %d", idx, size)
			}
			v.Int64s = append(v.Int64s, dict[idx])
		}
	case columnar.Float64:
		dict := make([]float64, size)
		for i := range dict {
			b, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		for i := 0; i < n; i++ {
			idx, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if idx >= size {
				return nil, fmt.Errorf("lpq: dict index %d out of range %d", idx, size)
			}
			v.Float64s = append(v.Float64s, dict[idx])
		}
	default:
		return nil, fmt.Errorf("lpq: dict unsupported for %v", t)
	}
	return v, nil
}

// ChooseEncoding picks a light-weight encoding for a vector by simple
// analysis: sorted ints get Delta, runs get RLE, low-cardinality columns get
// Dict, everything else Plain.
func ChooseEncoding(v *columnar.Vector) Encoding {
	n := v.Len()
	if n == 0 {
		return Plain
	}
	switch v.Type {
	case columnar.Int64:
		sorted := true
		runs := 1
		distinct := map[int64]struct{}{v.Int64s[0]: {}}
		for i := 1; i < n; i++ {
			if v.Int64s[i] < v.Int64s[i-1] {
				sorted = false
			}
			if v.Int64s[i] != v.Int64s[i-1] {
				runs++
			}
			if len(distinct) <= 4096 {
				distinct[v.Int64s[i]] = struct{}{}
			}
		}
		switch {
		case runs <= n/4:
			return RLE
		case sorted:
			return Delta
		case len(distinct) <= 4096 && len(distinct) <= n/4:
			return Dict
		default:
			return Plain
		}
	case columnar.Float64:
		distinct := map[float64]struct{}{}
		for _, x := range v.Float64s {
			distinct[x] = struct{}{}
			if len(distinct) > 4096 {
				return Plain
			}
		}
		if len(distinct) <= n/4 {
			return Dict
		}
		return Plain
	default:
		runs := 1
		for i := 1; i < n; i++ {
			if v.Bools[i] != v.Bools[i-1] {
				runs++
			}
		}
		if runs <= n/4 {
			return RLE
		}
		return Plain
	}
}
