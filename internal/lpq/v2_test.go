package lpq

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"lambada/internal/columnar"
)

func writeRead(t *testing.T, schema *columnar.Schema, opts WriterOptions, c *columnar.Chunk) ([]byte, *Reader) {
	t.Helper()
	data, err := WriteFile(schema, opts, c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return data, r
}

// TestIntExactPruning is the 2^62 regression: adjacent int64 keys up there
// are 1024 apart in float64, so the lossy MinF/MaxF mirrors collapse whole
// row groups to one float and cannot separate them. Pruning must compare
// Int64 columns through the exact MinInt/MaxInt bounds.
func TestIntExactPruning(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	const base = int64(1) << 62
	c := columnar.NewChunk(schema, 1000)
	for i := int64(0); i < 1000; i++ {
		c.Columns[0].AppendInt64(base + i)
	}
	_, r := writeRead(t, schema, WriterOptions{RowGroupRows: 100}, c)
	meta := r.Meta()

	// The float mirrors really are lossy at this magnitude: several groups
	// share one rounded float.
	st0, st1 := meta.RowGroups[0].Columns[0].Stats, meta.RowGroups[1].Columns[0].Stats
	if st0.MinF != st1.MinF {
		t.Fatalf("test premise broken: floats distinguish groups (%v vs %v)", st0.MinF, st1.MinF)
	}

	// k = base+250 lives in row group 2 only.
	target := base + 250
	p := Predicate{Column: "k", Min: float64(target), Max: float64(target),
		HasInt: true, MinInt: target, MaxInt: target}
	keep := PruneRowGroups(meta, []Predicate{p})
	if !reflect.DeepEqual(keep, []int{2}) {
		t.Errorf("int-exact pruning kept %v, want [2]", keep)
	}

	// A range straddling two groups keeps exactly those two.
	p = Predicate{Column: "k", Min: float64(base + 150), Max: float64(base + 250),
		HasInt: true, MinInt: base + 150, MaxInt: base + 250}
	if keep := PruneRowGroups(meta, []Predicate{p}); !reflect.DeepEqual(keep, []int{1, 2}) {
		t.Errorf("range pruning kept %v, want [1 2]", keep)
	}

	// Without the int bounds the float path cannot do better than the
	// rounded interval — it must still never drop group 2 (soundness).
	pf := Predicate{Column: "k", Min: float64(target), Max: float64(target)}
	kept := map[int]bool{}
	for _, g := range PruneRowGroups(meta, []Predicate{pf}) {
		kept[g] = true
	}
	if !kept[2] {
		t.Error("float-only pruning dropped the matching group")
	}
}

func TestV2PageIndex(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "id", Type: columnar.Int64},
		columnar.Field{Name: "price", Type: columnar.Float64},
	)
	c := columnar.NewChunk(schema, 256)
	for i := 0; i < 256; i++ {
		c.Columns[0].AppendInt64(int64(i))
		c.Columns[1].AppendFloat64(float64(i) / 2)
	}
	data, r := writeRead(t, schema, WriterOptions{RowGroupRows: 256, PageRows: 64}, c)

	if !bytes.Equal(data[len(data)-4:], Magic2[:]) {
		t.Fatalf("trailer magic = %q, want LPQ2", data[len(data)-4:])
	}
	meta := r.Meta()
	cc := &meta.RowGroups[0].Columns[0]
	if len(cc.Pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(cc.Pages))
	}
	if cc.DistinctEst != 256 {
		t.Errorf("distinct estimate = %d, want 256", cc.DistinctEst)
	}
	// Page stats cover disjoint 64-row id ranges.
	for p, pg := range cc.Pages {
		if pg.NumRows != 64 {
			t.Errorf("page %d rows = %d, want 64", p, pg.NumRows)
		}
		if !pg.Stats.HasMinMax || pg.Stats.MinInt != int64(p*64) || pg.Stats.MaxInt != int64(p*64+63) {
			t.Errorf("page %d stats = %+v", p, pg.Stats)
		}
	}
	// Page offsets tile the chunk.
	var off int64
	for p, pg := range cc.Pages {
		if pg.RelOff != off {
			t.Errorf("page %d at %d, want %d", p, pg.RelOff, off)
		}
		off += pg.CompressedLen
	}
	if off != cc.CompressedLen {
		t.Errorf("pages cover %d bytes, chunk has %d", off, cc.CompressedLen)
	}

	// Page pruning: id in [100,140] touches pages 1 and 2 only.
	preds := []Predicate{{Column: "id", Min: 100, Max: 140, HasInt: true, MinInt: 100, MaxInt: 140}}
	keep := PrunePages(meta, 0, preds)
	if !reflect.DeepEqual(keep, []bool{false, true, true, false}) {
		t.Errorf("page keep = %v, want [false true true false]", keep)
	}
	if est := EstimateRows(meta, preds); est != 128 {
		t.Errorf("EstimateRows = %d, want 128 (two 64-row pages)", est)
	}
	if est := EstimateRows(meta, nil); est != meta.TotalRows {
		t.Errorf("EstimateRows(nil) = %d, want TotalRows %d", est, meta.TotalRows)
	}

	// Full decode is unchanged by paging.
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns[0].Int64s, c.Columns[0].Int64s) ||
		!reflect.DeepEqual(got.Columns[1].Float64s, c.Columns[1].Float64s) {
		t.Error("paged file round trip mismatch")
	}

	// Pages decode independently through DecodePage.
	stored := make([]byte, cc.CompressedLen)
	if _, err := bytes.NewReader(data).ReadAt(stored, cc.Offset); err != nil {
		t.Fatal(err)
	}
	pg := cc.Pages[2]
	v, _, err := DecodePage(stored[pg.RelOff:pg.RelOff+pg.CompressedLen], columnar.Int64, *cc, pg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Int64s, c.Columns[0].Int64s[128:192]) {
		t.Error("DecodePage of page 2 mismatch")
	}
}

// TestFormatV1BackCompat locks the legacy layout: FormatV1 writes an LPQ1
// trailer with no page index or distinct counts, and the reader keeps
// accepting it.
func TestFormatV1BackCompat(t *testing.T) {
	c := makeChunk(500, 11)
	data, r := writeRead(t, testSchema(), WriterOptions{RowGroupRows: 100, FormatV1: true}, c)
	if !bytes.Equal(data[len(data)-4:], Magic[:]) {
		t.Fatalf("trailer magic = %q, want LPQ1", data[len(data)-4:])
	}
	for g := range r.Meta().RowGroups {
		for _, cc := range r.Meta().RowGroups[g].Columns {
			if len(cc.Pages) != 0 || cc.DistinctEst != 0 {
				t.Fatalf("v1 chunk has v2 extras: %+v", cc)
			}
		}
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns[0].Int64s, c.Columns[0].Int64s) {
		t.Error("v1 round trip mismatch")
	}
	// A v1 file is strictly smaller: same data bytes, leaner footer.
	v2, err := WriteFile(testSchema(), WriterOptions{RowGroupRows: 100}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(v2) {
		t.Errorf("v1 file %d bytes, v2 %d — v1 should be smaller", len(data), len(v2))
	}
}

// TestSmallChunksStayUnpaged: row groups of at most PageRows keep the v1
// single-blob chunk layout inside a v2 footer.
func TestSmallChunksStayUnpaged(t *testing.T) {
	c := makeChunk(100, 5)
	_, r := writeRead(t, testSchema(), WriterOptions{RowGroupRows: 100, PageRows: 128}, c)
	cc := &r.Meta().RowGroups[0].Columns[0]
	if len(cc.Pages) != 0 {
		t.Errorf("small chunk paged into %d pages", len(cc.Pages))
	}
	if cc.DistinctEst != 100 {
		t.Errorf("distinct estimate = %d, want 100", cc.DistinctEst)
	}
	spans := cc.PageSpans(100)
	if len(spans) != 1 || spans[0].NumRows != 100 || spans[0].CompressedLen != cc.CompressedLen {
		t.Errorf("synthesized span = %+v", spans)
	}
}

// Property: v2 paged files round-trip byte-identically across random
// values, page sizes, forced encodings and gzip.
func TestPropertyV2PagedRoundTrip(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	encs := []Encoding{Plain, RLE, Delta, Dict}
	f := func(vals []int64, pageRaw, rgRaw, encRaw uint8, gz bool) bool {
		if len(vals) == 0 {
			return true
		}
		pageRows := int(pageRaw)%16 + 1
		rg := int(rgRaw)%96 + 1
		c := columnar.NewChunk(schema, len(vals))
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, vals...)
		opts := WriterOptions{
			RowGroupRows:  rg,
			PageRows:      pageRows,
			ForceEncoding: map[int]Encoding{0: encs[int(encRaw)%len(encs)]},
		}
		if gz {
			opts.Compression = Gzip
		}
		data, err := WriteFile(schema, opts, c)
		if err != nil {
			return false
		}
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Columns[0].Int64s, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: page pruning never drops a page holding a matching value, and
// EstimateRows never under-counts the matching rows.
func TestPropertyPagePruningSound(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	f := func(vals []int64, loRaw, hiRaw int32) bool {
		if len(vals) == 0 {
			return true
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		c := columnar.NewChunk(schema, len(vals))
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, vals...)
		data, err := WriteFile(schema, WriterOptions{RowGroupRows: 16, PageRows: 4}, c)
		if err != nil {
			return false
		}
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return false
		}
		meta := r.Meta()
		preds := []Predicate{{Column: "v", Min: float64(lo), Max: float64(hi),
			HasInt: true, MinInt: lo, MaxInt: hi}}
		var matching int64
		for g := range meta.RowGroups {
			keep := PrunePages(meta, g, preds)
			ch, err := r.ReadRowGroup(g, nil)
			if err != nil {
				return false
			}
			pages := meta.RowGroups[g].Columns[0].PageSpans(meta.RowGroups[g].NumRows)
			row := 0
			for p, pg := range pages {
				for i := 0; i < int(pg.NumRows); i++ {
					x := ch.Columns[0].Int64s[row]
					row++
					if x >= lo && x <= hi {
						matching++
						if p < len(keep) && !keep[p] {
							return false // matching value in a pruned page
						}
					}
				}
			}
		}
		return EstimateRows(meta, preds) >= matching
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Pages must stay self-contained under Delta: the first value of every
// page is absolute, so a page decodes without its predecessors.
func TestDeltaPagesSelfContained(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 32)
	for i := 0; i < 32; i++ {
		c.Columns[0].AppendInt64(int64(1000 + i*3))
	}
	data, r := writeRead(t, schema, WriterOptions{RowGroupRows: 32, PageRows: 8,
		ForceEncoding: map[int]Encoding{0: Delta}}, c)
	cc := r.Meta().RowGroups[0].Columns[0]
	if len(cc.Pages) != 4 || cc.Encoding != Delta {
		t.Fatalf("chunk = %+v", cc)
	}
	stored := make([]byte, cc.CompressedLen)
	if _, err := bytes.NewReader(data).ReadAt(stored, cc.Offset); err != nil {
		t.Fatal(err)
	}
	pg := cc.Pages[3] // decode the last page alone
	v, _, err := DecodePage(stored[pg.RelOff:pg.RelOff+pg.CompressedLen], columnar.Int64, cc, pg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Int64s, c.Columns[0].Int64s[24:32]) {
		t.Errorf("page 3 alone = %v, want %v", v.Int64s, c.Columns[0].Int64s[24:32])
	}
}

func TestAdmitsMissingStats(t *testing.T) {
	p := Predicate{Column: "x", Min: 0, Max: 1, HasInt: true, MinInt: 0, MaxInt: 1}
	if !p.Admits(Stats{}, columnar.Int64) {
		t.Error("missing stats must admit")
	}
	st := Stats{HasMinMax: true, MinInt: 5, MaxInt: 9, MinF: 5, MaxF: 9}
	if p.Admits(st, columnar.Int64) {
		t.Error("disjoint int interval admitted")
	}
	// Float columns use the float interval even when the literal was int.
	if p.Admits(Stats{HasMinMax: true, MinF: 5, MaxF: 9, MinInt: math.MinInt64, MaxInt: math.MaxInt64}, columnar.Float64) {
		t.Error("disjoint float interval admitted")
	}
}

// TestNullCountFooterRoundTrip: v2 footers carry per-chunk null counts
// losslessly; v1 footers have no slot for them and decode to zero.
func TestNullCountFooterRoundTrip(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "a", Type: columnar.Int64},
		columnar.Field{Name: "b", Type: columnar.Float64},
	)
	m := &FileMeta{Schema: schema, TotalRows: 300, RowGroups: []RowGroupMeta{
		{NumRows: 200, Columns: []ColumnChunkMeta{
			{CompressedLen: 10, UncompressedLen: 10, DistinctEst: 7},
			{Offset: 10, CompressedLen: 20, UncompressedLen: 20, DistinctEst: 3, NullCount: 123},
		}},
		{NumRows: 100, Columns: []ColumnChunkMeta{
			{Offset: 30, CompressedLen: 5, UncompressedLen: 5, NullCount: 100},
			{Offset: 35, CompressedLen: 5, UncompressedLen: 5, NullCount: 1},
		}},
	}}
	got, err := decodeFooter(encodeFooter(m, true), true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("v2 footer round trip:\n got %+v\nwant %+v", got, m)
	}
	got1, err := decodeFooter(encodeFooter(m, false), false)
	if err != nil {
		t.Fatal(err)
	}
	for g := range got1.RowGroups {
		for c, cc := range got1.RowGroups[g].Columns {
			if cc.NullCount != 0 {
				t.Errorf("v1 chunk [%d][%d] decoded NullCount %d, want 0", g, c, cc.NullCount)
			}
		}
	}
}

// TestNullCountPruning: an all-null predicate column prunes its row group
// even when its min/max bounds admit, and partial null counts cap the row
// estimate of surviving groups. The writer itself always records zero
// nulls (the columnar layer cannot represent them), so the counts are
// planted on the decoded footer the way a null-bearing producer would
// write them.
func TestNullCountPruning(t *testing.T) {
	c := makeChunk(300, 7)
	_, r := writeRead(t, testSchema(), WriterOptions{RowGroupRows: 100}, c)
	meta := r.Meta()
	ci := meta.Schema.Index("id")
	for g := range meta.RowGroups {
		for _, cc := range meta.RowGroups[g].Columns {
			if cc.NullCount != 0 {
				t.Fatalf("writer emitted NullCount %d, want 0", cc.NullCount)
			}
		}
	}

	// A predicate matching every group's id range keeps all three groups.
	wide := []Predicate{{Column: "id", Min: 0, Max: 1e9, HasInt: true, MinInt: 0, MaxInt: 1e9}}
	if keep := PruneRowGroups(meta, wide); len(keep) != 3 {
		t.Fatalf("premise: wide predicate kept %v, want all 3 groups", keep)
	}
	base := EstimateRows(meta, wide)
	if base != meta.TotalRows {
		t.Fatalf("premise: wide estimate %d, want %d", base, meta.TotalRows)
	}

	// Group 1 entirely null on id: pruned despite admitting bounds.
	meta.RowGroups[1].Columns[ci].NullCount = meta.RowGroups[1].NumRows
	if keep := PruneRowGroups(meta, wide); !reflect.DeepEqual(keep, []int{0, 2}) {
		t.Errorf("all-null group kept: %v, want [0 2]", keep)
	}
	// Group 2 partially null: its contribution shrinks by the null count.
	meta.RowGroups[2].Columns[ci].NullCount = 40
	want := meta.TotalRows - meta.RowGroups[1].NumRows - 40
	if est := EstimateRows(meta, wide); est != want {
		t.Errorf("EstimateRows = %d, want %d (all-null group dropped, 40 nulls capped)", est, want)
	}
	// A predicate on a different column ignores id's null counts.
	if keep := PruneRowGroups(meta, []Predicate{{Column: "zzz", Min: 0, Max: 0}}); len(keep) != 3 {
		t.Errorf("unrelated predicate pruned by null counts: kept %v", keep)
	}
}
