package lpq

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lambada/internal/columnar"
)

func testSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "id", Type: columnar.Int64},
		columnar.Field{Name: "price", Type: columnar.Float64},
		columnar.Field{Name: "flag", Type: columnar.Bool},
	)
}

func makeChunk(n int, seed int64) *columnar.Chunk {
	rng := rand.New(rand.NewSource(seed))
	c := columnar.NewChunk(testSchema(), n)
	for i := 0; i < n; i++ {
		c.Columns[0].AppendInt64(int64(i)) // sorted → delta
		c.Columns[1].AppendFloat64(rng.Float64() * 100)
		c.Columns[2].AppendBool(rng.Intn(10) > 2)
	}
	return c
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 123456789} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag(%d) round trip = %d", v, got)
		}
	}
}

func TestEncodingsRoundTrip(t *testing.T) {
	ints := columnar.NewVector(columnar.Int64, 0)
	for _, x := range []int64{5, 5, 5, -3, -3, 100, 0, 0, 0, 0, math.MaxInt64, math.MinInt64} {
		ints.AppendInt64(x)
	}
	floats := columnar.NewVector(columnar.Float64, 0)
	for _, x := range []float64{1.5, 1.5, -2.25, math.Pi, 1.5, 0} {
		floats.AppendFloat64(x)
	}
	bools := columnar.NewVector(columnar.Bool, 0)
	for _, x := range []bool{true, true, false, true, false, false, false} {
		bools.AppendBool(x)
	}

	cases := []struct {
		v   *columnar.Vector
		enc Encoding
	}{
		{ints, Plain}, {ints, RLE}, {ints, Delta}, {ints, Dict},
		{floats, Plain}, {floats, Dict},
		{bools, Plain}, {bools, RLE},
	}
	for _, tc := range cases {
		data, err := EncodeColumn(tc.v, tc.enc)
		if err != nil {
			t.Errorf("%v/%v encode: %v", tc.v.Type, tc.enc, err)
			continue
		}
		got, err := DecodeColumn(data, tc.v.Type, tc.enc, tc.v.Len())
		if err != nil {
			t.Errorf("%v/%v decode: %v", tc.v.Type, tc.enc, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.v) {
			t.Errorf("%v/%v round trip mismatch", tc.v.Type, tc.enc)
		}
	}
}

func TestUnsupportedEncodings(t *testing.T) {
	floats := columnar.NewVector(columnar.Float64, 0)
	floats.AppendFloat64(1)
	if _, err := EncodeColumn(floats, Delta); err == nil {
		t.Error("delta on float64 accepted")
	}
	if _, err := EncodeColumn(floats, RLE); err == nil {
		t.Error("RLE on float64 accepted")
	}
	bools := columnar.NewVector(columnar.Bool, 0)
	bools.AppendBool(true)
	if _, err := EncodeColumn(bools, Dict); err == nil {
		t.Error("dict on bool accepted")
	}
}

func TestCorruptDataErrors(t *testing.T) {
	v := columnar.NewVector(columnar.Int64, 0)
	for i := 0; i < 10; i++ {
		v.AppendInt64(int64(i * 1000))
	}
	for _, enc := range []Encoding{Plain, RLE, Delta, Dict} {
		data, err := EncodeColumn(v, enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 {
			continue
		}
		if _, err := DecodeColumn(data[:len(data)/2], columnar.Int64, enc, 10); err == nil {
			t.Errorf("%v: decoding truncated data succeeded", enc)
		}
	}
}

func TestChooseEncodingHeuristics(t *testing.T) {
	sorted := columnar.NewVector(columnar.Int64, 0)
	for i := 0; i < 1000; i++ {
		sorted.AppendInt64(int64(i * 3))
	}
	if e := ChooseEncoding(sorted); e != Delta {
		t.Errorf("sorted ints → %v, want DELTA", e)
	}
	runs := columnar.NewVector(columnar.Int64, 0)
	for i := 0; i < 1000; i++ {
		runs.AppendInt64(int64(i / 100))
	}
	if e := ChooseEncoding(runs); e != RLE {
		t.Errorf("runny ints → %v, want RLE", e)
	}
	lowCard := columnar.NewVector(columnar.Int64, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		lowCard.AppendInt64(int64(rng.Intn(7)) * 1000000)
	}
	if e := ChooseEncoding(lowCard); e != Dict {
		t.Errorf("low-cardinality ints → %v, want DICT", e)
	}
	random := columnar.NewVector(columnar.Float64, 0)
	for i := 0; i < 1000; i++ {
		random.AppendFloat64(rng.Float64())
	}
	if e := ChooseEncoding(random); e != Plain {
		t.Errorf("random floats → %v, want PLAIN", e)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, comp := range []Compression{None, Gzip} {
		chunk := makeChunk(1000, 42)
		data, err := WriteFile(testSchema(), WriterOptions{RowGroupRows: 300, Compression: comp}, chunk)
		if err != nil {
			t.Fatalf("%v: %v", comp, err)
		}
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("%v: open: %v", comp, err)
		}
		if r.MetadataReads != 1 {
			t.Errorf("%v: footer took %d reads, want 1", comp, r.MetadataReads)
		}
		if got := r.Meta().NumRowGroups(); got != 4 { // 300+300+300+100
			t.Errorf("%v: row groups = %d, want 4", comp, got)
		}
		if r.Meta().TotalRows != 1000 {
			t.Errorf("%v: total rows = %d", comp, r.Meta().TotalRows)
		}
		got, err := r.ReadAll()
		if err != nil {
			t.Fatalf("%v: read all: %v", comp, err)
		}
		if !reflect.DeepEqual(got.Columns, chunk.Columns) {
			t.Errorf("%v: data mismatch after round trip", comp)
		}
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	// A compressible chunk (sorted ints, low-cardinality floats).
	c := columnar.NewChunk(testSchema(), 10000)
	for i := 0; i < 10000; i++ {
		c.Columns[0].AppendInt64(int64(i))
		c.Columns[1].AppendFloat64(float64(i % 3))
		c.Columns[2].AppendBool(i%2 == 0)
	}
	plain, err := WriteFile(testSchema(), WriterOptions{ForceEncoding: map[int]Encoding{0: Plain, 1: Plain, 2: Plain}}, c)
	if err != nil {
		t.Fatal(err)
	}
	zipped, err := WriteFile(testSchema(), WriterOptions{Compression: Gzip, ForceEncoding: map[int]Encoding{0: Plain, 1: Plain, 2: Plain}}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(zipped) >= len(plain)/2 {
		t.Errorf("gzip size %d not < half of plain %d", len(zipped), len(plain))
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema(), WriterOptions{})
	other := columnar.NewChunk(columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64}), 0)
	if err := w.Write(other); err == nil {
		t.Error("mismatched schema accepted")
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema(), WriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(makeChunk(1, 1)); err == nil {
		t.Error("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := OpenReader(bytes.NewReader([]byte("hi")), 2); err == nil {
		t.Error("tiny file accepted")
	}
	junk := make([]byte, 100)
	if _, err := OpenReader(bytes.NewReader(junk), 100); err == nil {
		t.Error("junk accepted")
	}
	// Valid magic but absurd footer length.
	bad := make([]byte, 100)
	copy(bad[96:], Magic[:])
	bad[92] = 0xff
	bad[93] = 0xff
	bad[94] = 0xff
	if _, err := OpenReader(bytes.NewReader(bad), 100); err == nil {
		t.Error("absurd footer length accepted")
	}
}

func TestStatsAndPruning(t *testing.T) {
	// 10 row groups of 100 rows; id ranges [0,99], [100,199], ...
	chunk := makeChunk(1000, 7)
	data, err := WriteFile(testSchema(), WriterOptions{RowGroupRows: 100}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	meta := r.Meta()
	st := meta.RowGroups[3].Columns[0].Stats
	if !st.HasMinMax || st.MinInt != 300 || st.MaxInt != 399 {
		t.Errorf("rg3 id stats = %+v", st)
	}
	keep := PruneRowGroups(meta, []Predicate{{Column: "id", Min: 250, Max: 449}})
	if !reflect.DeepEqual(keep, []int{2, 3, 4}) {
		t.Errorf("pruned to %v, want [2 3 4]", keep)
	}
	// A predicate selecting nothing prunes everything.
	if keep := PruneRowGroups(meta, []Predicate{{Column: "id", Min: 5000, Max: 6000}}); keep != nil {
		t.Errorf("out-of-range predicate kept %v", keep)
	}
	// Unknown columns and disabled stats keep everything.
	if keep := PruneRowGroups(meta, []Predicate{{Column: "zzz", Min: 0, Max: 0}}); len(keep) != 10 {
		t.Errorf("unknown column pruned to %d groups", len(keep))
	}
}

func TestDisableStats(t *testing.T) {
	chunk := makeChunk(100, 7)
	data, err := WriteFile(testSchema(), WriterOptions{DisableStats: true}, chunk)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta().RowGroups[0].Columns[0].Stats.HasMinMax {
		t.Error("stats present despite DisableStats")
	}
	if keep := PruneRowGroups(r.Meta(), []Predicate{{Column: "id", Min: 1e9, Max: 2e9}}); len(keep) != 1 {
		t.Errorf("stats-less pruning kept %d, want all", len(keep))
	}
}

func TestProjectedReadRowGroup(t *testing.T) {
	chunk := makeChunk(500, 3)
	data, _ := WriteFile(testSchema(), WriterOptions{RowGroupRows: 500}, chunk)
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadRowGroup(0, []int{2, 0}) // flag, id — reordered projection
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Fields[0].Name != "flag" || got.Schema.Fields[1].Name != "id" {
		t.Errorf("projected schema = %v", got.Schema)
	}
	if !reflect.DeepEqual(got.Columns[1].Int64s, chunk.Columns[0].Int64s) {
		t.Error("projected id column mismatch")
	}
}

func TestByteRange(t *testing.T) {
	chunk := makeChunk(600, 3)
	data, _ := WriteFile(testSchema(), WriterOptions{RowGroupRows: 200}, chunk)
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var prevHi int64
	for g, rg := range r.Meta().RowGroups {
		lo, hi := rg.ByteRange()
		if lo < prevHi {
			t.Errorf("rg%d starts at %d before previous end %d", g, lo, prevHi)
		}
		if hi <= lo {
			t.Errorf("rg%d empty range [%d,%d)", g, lo, hi)
		}
		prevHi = hi
	}
}

// Property: arbitrary int64 columns round-trip through every applicable
// encoding, with and without gzip, across row-group boundaries.
func TestPropertyFileRoundTrip(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	f := func(vals []int64, rgRaw uint8, gz bool) bool {
		if len(vals) == 0 {
			return true
		}
		rg := int(rgRaw)%64 + 1
		c := columnar.NewChunk(schema, len(vals))
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, vals...)
		comp := None
		if gz {
			comp = Gzip
		}
		data, err := WriteFile(schema, WriterOptions{RowGroupRows: rg, Compression: comp}, c)
		if err != nil {
			return false
		}
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Columns[0].Int64s, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: pruning never drops a row group that contains matching values.
func TestPropertyPruningSound(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	f := func(vals []int64, loRaw, hiRaw int32) bool {
		if len(vals) == 0 {
			return true
		}
		lo, hi := float64(loRaw), float64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		c := columnar.NewChunk(schema, len(vals))
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, vals...)
		data, err := WriteFile(schema, WriterOptions{RowGroupRows: 4}, c)
		if err != nil {
			return false
		}
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return false
		}
		kept := map[int]bool{}
		for _, g := range PruneRowGroups(r.Meta(), []Predicate{{Column: "v", Min: lo, Max: hi}}) {
			kept[g] = true
		}
		// Every row group containing a matching value must be kept.
		for g := range r.Meta().RowGroups {
			ch, err := r.ReadRowGroup(g, nil)
			if err != nil {
				return false
			}
			for _, x := range ch.Columns[0].Int64s {
				if float64(x) >= lo && float64(x) <= hi && !kept[g] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
