package lpq

import (
	"bytes"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/tpch"
)

func benchData(b *testing.B) *columnar.Chunk {
	b.Helper()
	return tpch.Gen{SF: 0.01, Seed: 1}.Generate() // ~60k rows × 13 cols
}

func BenchmarkWritePlain(b *testing.B) {
	data := benchData(b)
	b.SetBytes(data.ByteSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WriteFile(tpch.Schema(), WriterOptions{}, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteGzip(b *testing.B) {
	data := benchData(b)
	b.SetBytes(data.ByteSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WriteFile(tpch.Schema(), WriterOptions{Compression: Gzip}, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadAll(b *testing.B) {
	data := benchData(b)
	raw, err := WriteFile(tpch.Schema(), WriterOptions{RowGroupRows: 16384}, data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(data.ByteSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadProjectedPruned(b *testing.B) {
	// The scan operator's hot path: projection + min/max pruning.
	data := benchData(b)
	raw, err := WriteFile(tpch.Schema(), WriterOptions{RowGroupRows: 4096}, data)
	if err != nil {
		b.Fatal(err)
	}
	preds := []Predicate{{Column: "l_shipdate", Min: float64(tpch.Q6ShipDateLo), Max: float64(tpch.Q6ShipDateHi)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			b.Fatal(err)
		}
		cols := []int{4, 5, 6, 10}
		for _, g := range PruneRowGroups(r.Meta(), preds) {
			if _, err := r.ReadRowGroup(g, cols); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEncodeDelta(b *testing.B) {
	v := columnar.NewVector(columnar.Int64, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v.AppendInt64(int64(i) * 3)
	}
	b.SetBytes(int64(v.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeColumn(v, Delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	v := columnar.NewVector(columnar.Int64, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v.AppendInt64(int64(i) * 3)
	}
	raw, _ := EncodeColumn(v, Delta)
	b.SetBytes(int64(v.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeColumn(raw, columnar.Int64, Delta, v.Len()); err != nil {
			b.Fatal(err)
		}
	}
}
