package exchange

import (
	"sync"
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
)

func stageTestChunk(lo, n int) *columnar.Chunk {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "k2", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	c := columnar.NewChunk(schema, n)
	for i := 0; i < n; i++ {
		c.Columns[0].AppendInt64(int64(lo + i))
		c.Columns[1].AppendInt64(int64((lo + i) % 7))
		c.Columns[2].AppendFloat64(float64(lo+i) * 0.5)
	}
	return c
}

// TestStageBoundary publishes from S senders and collects into P partitions
// (S != P), checking that every row lands in exactly the partition its key
// hashes to, in sender-then-row order, for both variants.
func TestStageBoundary(t *testing.T) {
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		svc.MustCreateBucket("xa")
		svc.MustCreateBucket("xb")
		opts := Options{
			Variant: Variant{Levels: 1, WriteCombining: wc},
			Buckets: []string{"xa", "xb"},
			Prefix:  "q1",
			Poll:    5 * time.Millisecond,
			MaxWait: 30 * time.Second,
		}
		const senders, parts = 3, 5
		b := Boundary{Stage: 2, Senders: senders, Partitions: parts}

		inputs := make([]*columnar.Chunk, senders)
		for s := 0; s < senders; s++ {
			inputs[s] = stageTestChunk(s*40, 40)
		}

		var wg sync.WaitGroup
		results := make([]*columnar.Chunk, parts)
		errs := make([]error, senders+parts)
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				client := s3.NewClient(svc, env)
				errs[s] = PublishStage(client, opts, b, s, inputs[s], []string{"k", "k2"})
			}(s)
		}
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				client := s3.NewClient(svc, env)
				var err error
				results[p], err = CollectStage(client, opts, b, p)
				errs[senders+p] = err
			}(p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("wc=%v: %v", wc, err)
			}
		}

		// Every row present exactly once, in the partition its key hashes
		// to, ordered by (sender, row).
		total := 0
		for p, res := range results {
			keys := []*columnar.Vector{res.Column("k"), res.Column("k2")}
			prevSenderRow := -1
			for i := 0; i < res.NumRows(); i++ {
				if got := HashPartition(keys, i, parts); got != p {
					t.Fatalf("wc=%v: row with key %d in partition %d, want %d",
						wc, keys[0].Int64s[i], p, got)
				}
				// k values encode global (sender, row) order.
				if int(keys[0].Int64s[i]) <= prevSenderRow {
					t.Fatalf("wc=%v: partition %d rows out of sender order", wc, p)
				}
				prevSenderRow = int(keys[0].Int64s[i])
			}
			total += res.NumRows()
		}
		if total != senders*40 {
			t.Fatalf("wc=%v: %d rows collected, want %d", wc, total, senders*40)
		}
	}
}

// TestStageBoundaryEmptyPartitions: one sender, keys all equal, so P-1
// partitions receive empty files — collectors must still complete.
func TestStageBoundaryEmptyPartitions(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{
		Variant: Variant{Levels: 1},
		Buckets: []string{"x"},
		Prefix:  "q2",
		Poll:    time.Millisecond,
		MaxWait: 10 * time.Second,
	}
	b := Boundary{Stage: 0, Senders: 1, Partitions: 4}
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 8)
	for i := 0; i < 8; i++ {
		c.Columns[0].AppendInt64(42)
	}
	client := s3.NewClient(svc, env)
	if err := PublishStage(client, opts, b, 0, c, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < 4; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() > 0 {
			nonEmpty++
			if res.NumRows() != 8 {
				t.Fatalf("partition %d has %d rows", p, res.NumRows())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("%d non-empty partitions, want 1", nonEmpty)
	}
}

// TestStageBoundaryRejectsFloatKey: partition keys must be BIGINT.
func TestStageBoundaryRejectsFloatKey(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{Variant: Variant{Levels: 1}, Buckets: []string{"x"}, Prefix: "q3", Poll: time.Millisecond, MaxWait: time.Second}
	schema := columnar.NewSchema(columnar.Field{Name: "f", Type: columnar.Float64})
	c := columnar.NewChunk(schema, 1)
	c.Columns[0].AppendFloat64(1.5)
	client := s3.NewClient(svc, env)
	if err := PublishStage(client, opts, Boundary{Stage: 0, Senders: 1, Partitions: 2}, 0, c, []string{"f"}); err == nil {
		t.Fatal("float partition key accepted")
	}
}
