package exchange

import (
	"sync"
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
)

func stageTestChunk(lo, n int) *columnar.Chunk {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "k2", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	c := columnar.NewChunk(schema, n)
	for i := 0; i < n; i++ {
		c.Columns[0].AppendInt64(int64(lo + i))
		c.Columns[1].AppendInt64(int64((lo + i) % 7))
		c.Columns[2].AppendFloat64(float64(lo+i) * 0.5)
	}
	return c
}

// TestStageBoundary publishes from S senders and collects into P partitions
// (S != P), checking that every row lands in exactly the partition its key
// hashes to, in sender-then-row order, for both variants.
func TestStageBoundary(t *testing.T) {
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		svc.MustCreateBucket("xa")
		svc.MustCreateBucket("xb")
		opts := Options{
			Variant: Variant{Levels: 1, WriteCombining: wc},
			Buckets: []string{"xa", "xb"},
			Prefix:  "q1",
			Poll:    5 * time.Millisecond,
			MaxWait: 30 * time.Second,
		}
		const senders, parts = 3, 5
		b := Boundary{Stage: 2, Senders: senders, Partitions: parts}

		inputs := make([]*columnar.Chunk, senders)
		for s := 0; s < senders; s++ {
			inputs[s] = stageTestChunk(s*40, 40)
		}

		var wg sync.WaitGroup
		results := make([]*columnar.Chunk, parts)
		errs := make([]error, senders+parts)
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				client := s3.NewClient(svc, env)
				errs[s] = PublishStage(client, opts, b, s, inputs[s], []string{"k", "k2"})
			}(s)
		}
		for p := 0; p < parts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				client := s3.NewClient(svc, env)
				var err error
				results[p], err = CollectStage(client, opts, b, p)
				errs[senders+p] = err
			}(p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("wc=%v: %v", wc, err)
			}
		}

		// Every row present exactly once, in the partition its key hashes
		// to, ordered by (sender, row).
		total := 0
		for p, res := range results {
			keys := []*columnar.Vector{res.Column("k"), res.Column("k2")}
			prevSenderRow := -1
			for i := 0; i < res.NumRows(); i++ {
				if got := HashPartition(keys, i, parts); got != p {
					t.Fatalf("wc=%v: row with key %d in partition %d, want %d",
						wc, keys[0].Int64s[i], p, got)
				}
				// k values encode global (sender, row) order.
				if int(keys[0].Int64s[i]) <= prevSenderRow {
					t.Fatalf("wc=%v: partition %d rows out of sender order", wc, p)
				}
				prevSenderRow = int(keys[0].Int64s[i])
			}
			total += res.NumRows()
		}
		if total != senders*40 {
			t.Fatalf("wc=%v: %d rows collected, want %d", wc, total, senders*40)
		}
	}
}

// TestStageBoundaryEmptyPartitions: one sender, keys all equal, so P-1
// partitions receive empty files — collectors must still complete.
func TestStageBoundaryEmptyPartitions(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{
		Variant: Variant{Levels: 1},
		Buckets: []string{"x"},
		Prefix:  "q2",
		Poll:    time.Millisecond,
		MaxWait: 10 * time.Second,
	}
	b := Boundary{Stage: 0, Senders: 1, Partitions: 4}
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 8)
	for i := 0; i < 8; i++ {
		c.Columns[0].AppendInt64(42)
	}
	client := s3.NewClient(svc, env)
	if err := PublishStage(client, opts, b, 0, c, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for p := 0; p < 4; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() > 0 {
			nonEmpty++
			if res.NumRows() != 8 {
				t.Fatalf("partition %d has %d rows", p, res.NumRows())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("%d non-empty partitions, want 1", nonEmpty)
	}
}

// TestStageBoundaryFirstCommittedAttemptWins: an aborted attempt left a
// partial, uncommitted file set behind; the sender's backup attempt
// committed a complete set under a fresh attempt namespace. Receivers must
// ignore the partial attempt and collect exactly the committed one — the
// race the pre-attempt protocol could not survive.
func TestStageBoundaryFirstCommittedAttemptWins(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("xa")
	svc.MustCreateBucket("xb")
	opts := Options{
		Variant: Variant{Levels: 1},
		Buckets: []string{"xa", "xb"},
		Prefix:  "q4",
		Poll:    time.Millisecond,
		MaxWait: 10 * time.Second,
	}
	const senders, parts = 2, 3
	b := Boundary{Stage: 1, Senders: senders, Partitions: parts}
	client := s3.NewClient(svc, env)

	// Sender 0's attempt 0 died after writing only partition 0 — a stray
	// file with garbage content and, crucially, no commit marker.
	stray := opts.stageFile(b.Stage, 0, 0, 0)
	if err := client.Put(opts.stageBucket(b.Stage, 0), stray, []byte("not an lpq file")); err != nil {
		t.Fatal(err)
	}
	// Its backup attempt publishes the full set under attempt 1; sender 1 is
	// healthy on attempt 0.
	in0, in1 := stageTestChunk(0, 30), stageTestChunk(30, 30)
	b0 := b
	b0.Attempt = 1
	if err := PublishStage(client, opts, b0, 0, in0, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if err := PublishStage(client, opts, b, 1, in1, []string{"k"}); err != nil {
		t.Fatal(err)
	}

	total := 0
	for p := 0; p < parts; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		total += res.NumRows()
	}
	if total != 60 {
		t.Fatalf("collected %d rows, want 60 (stray attempt not ignored?)", total)
	}
}

// TestStageBoundaryDuplicateAttemptsCollectOnce: both the original and the
// backup of a sender completed (byte-identical file sets, as stage
// fragments are deterministic). Receivers read each sender exactly once —
// the lowest committed attempt — for both variants.
func TestStageBoundaryDuplicateAttemptsCollectOnce(t *testing.T) {
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		svc.MustCreateBucket("x")
		opts := Options{
			Variant: Variant{Levels: 1, WriteCombining: wc},
			Buckets: []string{"x"},
			Prefix:  "q5",
			Poll:    time.Millisecond,
			MaxWait: 10 * time.Second,
		}
		const senders, parts = 2, 2
		b := Boundary{Stage: 0, Senders: senders, Partitions: parts}
		client := s3.NewClient(svc, env)
		for s := 0; s < senders; s++ {
			in := stageTestChunk(s*20, 20)
			for attempt := 0; attempt < 2; attempt++ {
				ba := b
				ba.Attempt = attempt
				if err := PublishStage(client, opts, ba, s, in, []string{"k"}); err != nil {
					t.Fatalf("wc=%v: %v", wc, err)
				}
			}
		}
		total := 0
		for p := 0; p < parts; p++ {
			res, err := CollectStage(client, opts, b, p)
			if err != nil {
				t.Fatalf("wc=%v partition %d: %v", wc, p, err)
			}
			total += res.NumRows()
		}
		if total != senders*20 {
			t.Fatalf("wc=%v: collected %d rows, want %d (duplicate attempt double-counted?)", wc, total, senders*20)
		}
	}
}

// TestStageBoundaryManySendersAttemptPrefixes: commit-marker discovery is
// List-prefix-based, so sender 1's lookup must not match sender 10..19's
// markers. With 12 senders and sender 1 committed only under attempt 1,
// collectors must read sender 1's attempt-1 files — not conclude from
// sender 10's attempt-0 marker that attempt 0 exists.
func TestStageBoundaryManySendersAttemptPrefixes(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{
		Variant: Variant{Levels: 1},
		Buckets: []string{"x"},
		Prefix:  "q7",
		Poll:    time.Millisecond,
		MaxWait: 5 * time.Second,
	}
	const senders, parts = 12, 2
	b := Boundary{Stage: 0, Senders: senders, Partitions: parts}
	client := s3.NewClient(svc, env)
	for s := 0; s < senders; s++ {
		ba := b
		if s == 1 {
			ba.Attempt = 1 // sender 1's attempt 0 never committed
		}
		if err := PublishStage(client, opts, ba, s, stageTestChunk(s*10, 10), []string{"k"}); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for p := 0; p < parts; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		total += res.NumRows()
	}
	if total != senders*10 {
		t.Fatalf("collected %d rows, want %d", total, senders*10)
	}
}

// TestSweepDrainsStaleBoundary: Sweep removes every object under the query
// prefix — loser attempts included — so an identically-named retry starts
// from a clean namespace and collects its own data, not the leftovers'.
func TestSweepDrainsStaleBoundary(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{
		Variant: Variant{Levels: 1},
		Buckets: []string{"x"},
		Prefix:  "q6",
		Poll:    time.Millisecond,
		MaxWait: 10 * time.Second,
	}
	b := Boundary{Stage: 0, Senders: 1, Partitions: 2}
	client := s3.NewClient(svc, env)
	// An aborted run left a committed attempt 3 with 40 rows behind.
	b3 := b
	b3.Attempt = 3
	if err := PublishStage(client, opts, b3, 0, stageTestChunk(0, 40), []string{"k"}); err != nil {
		t.Fatal(err)
	}
	n, err := Sweep(client, opts.Buckets, opts.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sweep removed nothing")
	}
	if left, err := client.List("x", opts.Prefix); err != nil || len(left) != 0 {
		t.Fatalf("objects after sweep: %d (err %v)", len(left), err)
	}
	// The retry publishes 10 rows under the same prefix; collectors must see
	// exactly those.
	if err := PublishStage(client, opts, b, 0, stageTestChunk(0, 10), []string{"k"}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 2; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatal(err)
		}
		total += res.NumRows()
	}
	if total != 10 {
		t.Fatalf("retry collected %d rows, want 10 (stale attempt leaked through)", total)
	}
}

// TestStageBoundaryRejectsFloatKey: partition keys must be BIGINT.
func TestStageBoundaryRejectsFloatKey(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	opts := Options{Variant: Variant{Levels: 1}, Buckets: []string{"x"}, Prefix: "q3", Poll: time.Millisecond, MaxWait: time.Second}
	schema := columnar.NewSchema(columnar.Field{Name: "f", Type: columnar.Float64})
	c := columnar.NewChunk(schema, 1)
	c.Columns[0].AppendFloat64(1.5)
	client := s3.NewClient(svc, env)
	if err := PublishStage(client, opts, Boundary{Stage: 0, Senders: 1, Partitions: 2}, 0, c, []string{"f"}); err == nil {
		t.Fatal("float partition key accepted")
	}
}

// TestCollectStageListsOncePerBucket: with every sender already committed,
// a collector discovers all commit markers (or combined objects) with at
// most one List per shard bucket — not one per (sender, poll round). The
// PR 3 → PR 4 functional-mode regression came from exactly this request
// inflation.
func TestCollectStageListsOncePerBucket(t *testing.T) {
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		buckets := []string{"xa", "xb", "xc"}
		for _, b := range buckets {
			svc.MustCreateBucket(b)
		}
		opts := Options{
			Variant: Variant{Levels: 1, WriteCombining: wc},
			Buckets: buckets,
			Prefix:  "q8",
			Poll:    time.Millisecond,
			MaxWait: 10 * time.Second,
		}
		const senders, parts = 9, 2
		b := Boundary{Stage: 1, Senders: senders, Partitions: parts}
		client := s3.NewClient(svc, env)
		for s := 0; s < senders; s++ {
			if err := PublishStage(client, opts, b, s, stageTestChunk(s*10, 10), []string{"k"}); err != nil {
				t.Fatal(err)
			}
		}
		listsBefore := int64(0)
		for _, bk := range buckets {
			st, err := svc.BucketStats(bk)
			if err != nil {
				t.Fatal(err)
			}
			listsBefore += st.Lists
		}
		res, err := CollectStage(client, opts, b, 0)
		if err != nil {
			t.Fatalf("wc=%v: %v", wc, err)
		}
		if res.NumRows() == 0 {
			t.Fatalf("wc=%v: empty partition 0", wc)
		}
		lists := int64(0)
		for _, bk := range buckets {
			st, err := svc.BucketStats(bk)
			if err != nil {
				t.Fatal(err)
			}
			lists += st.Lists
		}
		if got := lists - listsBefore; got > int64(len(buckets)) {
			t.Errorf("wc=%v: collect issued %d Lists, want at most %d (one per shard bucket)",
				wc, got, len(buckets))
		}
	}
}
