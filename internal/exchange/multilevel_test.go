package exchange

import (
	"fmt"
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
)

func chunksEqualML(t *testing.T, tag string, a, b *columnar.Chunk) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: %d rows vs %d", tag, a.NumRows(), b.NumRows())
	}
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("%s: %d columns vs %d", tag, len(a.Columns), len(b.Columns))
	}
	for ci := range a.Columns {
		av, bv := a.Columns[ci], b.Columns[ci]
		if av.Type != bv.Type {
			t.Fatalf("%s: column %d type %v vs %v", tag, ci, av.Type, bv.Type)
		}
		for i := 0; i < a.NumRows(); i++ {
			switch av.Type {
			case columnar.Int64:
				if av.Int64s[i] != bv.Int64s[i] {
					t.Fatalf("%s: column %d row %d: %d vs %d", tag, ci, i, av.Int64s[i], bv.Int64s[i])
				}
			case columnar.Float64:
				if av.Float64s[i] != bv.Float64s[i] {
					t.Fatalf("%s: column %d row %d: %v vs %v", tag, ci, i, av.Float64s[i], bv.Float64s[i])
				}
			default:
				if av.Bools[i] != bv.Bools[i] {
					t.Fatalf("%s: column %d row %d: %v vs %v", tag, ci, i, av.Bools[i], bv.Bools[i])
				}
			}
		}
	}
}

// runMultiLevelBoundary publishes all senders, runs the regroup fleet when
// the variant is multi-level, and collects every partition — the fault-free
// sequential execution whose request counts the model predicts exactly.
func runMultiLevelBoundary(t *testing.T, client *s3.Client, opts Options, b Boundary, inputs []*columnar.Chunk, keys []string) []*columnar.Chunk {
	t.Helper()
	for s := 0; s < b.Senders; s++ {
		if err := PublishStage(client, opts, b, s, inputs[s], keys); err != nil {
			t.Fatalf("%v publish sender %d: %v", opts.Variant, s, err)
		}
	}
	if opts.Variant.Levels >= 2 {
		for g := 0; g < Groups(b.Partitions); g++ {
			if err := RegroupStage(client, opts, b, g, keys); err != nil {
				t.Fatalf("%v regroup group %d: %v", opts.Variant, g, err)
			}
		}
	}
	out := make([]*columnar.Chunk, b.Partitions)
	for p := 0; p < b.Partitions; p++ {
		res, err := CollectStage(client, opts, b, p)
		if err != nil {
			t.Fatalf("%v collect partition %d: %v", opts.Variant, p, err)
		}
		out[p] = res
	}
	return out
}

// TestStageBoundaryMultiLevelByteIdentity: at matching (S, P), the chunks a
// multi-level boundary delivers are identical to the single-round boundary's
// — same rows, same (sender, row) order, partition by partition — for both
// write-combining modes, including partitions that end up empty. The grid
// is uneven on purpose (P = 11 → 4 groups of 3, last group of 2).
func TestStageBoundaryMultiLevelByteIdentity(t *testing.T) {
	const senders, parts = 4, 11
	keys := []string{"k", "k2"}
	inputs := make([]*columnar.Chunk, senders)
	for s := 0; s < senders; s++ {
		inputs[s] = stageTestChunk(s*35, 35)
	}
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		buckets := []string{"xa", "xb", "xc"}
		for _, bk := range buckets {
			svc.MustCreateBucket(bk)
		}
		client := s3.NewClient(svc, env)
		base := Options{
			Buckets: buckets,
			Poll:    time.Millisecond,
			MaxWait: 10 * time.Second,
		}
		b := Boundary{Stage: 3, Senders: senders, Partitions: parts}

		single := base
		single.Prefix = "qs"
		single.Variant = Variant{Levels: 1, WriteCombining: wc}
		want := runMultiLevelBoundary(t, client, single, b, inputs, keys)

		multi := base
		multi.Prefix = "qm"
		multi.Variant = Variant{Levels: 2, WriteCombining: wc}
		got := runMultiLevelBoundary(t, client, multi, b, inputs, keys)

		for p := 0; p < parts; p++ {
			chunksEqualML(t, fmt.Sprintf("wc=%v partition %d", wc, p), want[p], got[p])
		}
	}
}

// TestMultiLevelRequestsMatchModel holds the boundary protocol to the
// analytic model integer-exactly: the billed Put/Get/List counts of a
// fault-free publish → regroup → collect run equal Variant.Requests for
// all four stage-reachable variants. S, P and the bucket count are chosen
// so min(S, B) < S and the last group is short — the cases where an
// off-by-one would hide.
func TestMultiLevelRequestsMatchModel(t *testing.T) {
	const senders, parts = 5, 7
	keys := []string{"k"}
	inputs := make([]*columnar.Chunk, senders)
	for s := 0; s < senders; s++ {
		inputs[s] = stageTestChunk(s*25, 25)
	}
	for _, v := range []Variant{{Levels: 1}, {Levels: 1, WriteCombining: true}, {Levels: 2}, {Levels: 2, WriteCombining: true}} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		buckets := []string{"xa", "xb", "xc"}
		for _, bk := range buckets {
			svc.MustCreateBucket(bk)
		}
		client := s3.NewClient(svc, env)
		opts := Options{
			Variant: v,
			Buckets: buckets,
			Prefix:  "q9",
			Poll:    time.Millisecond,
			MaxWait: 10 * time.Second,
		}
		b := Boundary{Stage: 2, Senders: senders, Partitions: parts}

		runMultiLevelBoundary(t, client, opts, b, inputs, keys)

		var got RequestCount
		for _, bk := range buckets {
			st, err := svc.BucketStats(bk)
			if err != nil {
				t.Fatal(err)
			}
			got.Puts += st.Puts
			got.Gets += st.Gets
			got.Lists += st.Lists
		}
		want := v.Requests(senders, parts, len(buckets))
		if got != want {
			t.Errorf("%v: billed %+v, model predicts %+v", v, got, want)
		}
	}
}

// TestStageBoundaryMultiLevelFirstCommittedAttemptWins: attempt versioning
// composes across both rounds. A sender's aborted round-1 attempt (garbage,
// uncommitted) must be invisible; duplicate committed sender attempts and
// duplicate committed regroup attempts must each be collected exactly once
// (lowest attempt wins). Both write-combining modes.
func TestStageBoundaryMultiLevelFirstCommittedAttemptWins(t *testing.T) {
	const senders, parts = 3, 6
	keys := []string{"k"}
	for _, wc := range []bool{false, true} {
		env := simenv.NewImmediate()
		svc := s3.New(s3.Config{})
		svc.MustCreateBucket("xa")
		svc.MustCreateBucket("xb")
		client := s3.NewClient(svc, env)
		opts := Options{
			Variant: Variant{Levels: 2, WriteCombining: wc},
			Buckets: []string{"xa", "xb"},
			Prefix:  "q10",
			Poll:    time.Millisecond,
			MaxWait: 10 * time.Second,
		}
		b := Boundary{Stage: 1, Senders: senders, Partitions: parts}

		if !wc {
			// Sender 0's attempt 0 died after one group object, no commit.
			stray := opts.stageGroupFile(b.Stage, 0, 0, 0)
			if err := client.Put(opts.stageBucket(b.Stage, 0), stray, []byte("not an lpq file")); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < senders; s++ {
			in := stageTestChunk(s*20, 20)
			attempts := []int{0}
			if s == 0 {
				attempts = []int{1} // backup after the aborted attempt 0
			} else if s == 1 {
				attempts = []int{0, 1} // both original and backup committed
			}
			for _, a := range attempts {
				ba := b
				ba.Attempt = a
				if err := PublishStage(client, opts, ba, s, in, keys); err != nil {
					t.Fatalf("wc=%v sender %d attempt %d: %v", wc, s, a, err)
				}
			}
		}
		// Regroup group 0 ran twice (original + speculated backup); the
		// others once.
		for g := 0; g < Groups(parts); g++ {
			attempts := []int{0}
			if g == 0 {
				attempts = []int{0, 1}
			}
			for _, a := range attempts {
				ba := b
				ba.Attempt = a
				if err := RegroupStage(client, opts, ba, g, keys); err != nil {
					t.Fatalf("wc=%v regroup %d attempt %d: %v", wc, g, a, err)
				}
			}
		}
		total := 0
		for p := 0; p < parts; p++ {
			res, err := CollectStage(client, opts, b, p)
			if err != nil {
				t.Fatalf("wc=%v partition %d: %v", wc, p, err)
			}
			kcol := []*columnar.Vector{res.Column("k")}
			for i := 0; i < res.NumRows(); i++ {
				if got := HashPartition(kcol, i, parts); got != p {
					t.Fatalf("wc=%v: row in partition %d, want %d", wc, p, got)
				}
			}
			total += res.NumRows()
		}
		if total != senders*20 {
			t.Fatalf("wc=%v: collected %d rows, want %d (duplicate or stray attempt leaked)", wc, total, senders*20)
		}
	}
}
