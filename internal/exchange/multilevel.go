package exchange

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Multi-level stage boundaries (§4.4.2, adapted to the asymmetric S→P
// shape). A single-round boundary costs O(S·P) requests — every receiver
// touches every sender. With Variant.Levels >= 2 the boundary routes
// through one intermediate regrouping round over G = Groups(P) ≈ √P
// contiguous partition groups:
//
//	round 1   each sender hash-partitions its rows into P as usual but
//	          writes one object per GROUP (the concatenation of the
//	          group's partitions in ascending partition order, row order
//	          preserved) — combined into a single object with G+1
//	          cumulative offsets in the name when write-combining, or G
//	          objects plus an r1commit marker otherwise
//	regroup   worker g (of G) collects group g from every sender's first
//	          committed attempt in ascending sender order, re-partitions
//	          the merged rows by the same hash, and publishes one object
//	          per partition of its group — again combined-with-offsets
//	          (the atomic Put is the commit) or per-partition files plus
//	          an rgcommit marker, versioned by the regroup worker's own
//	          attempt
//	round 2   receiver p touches only group g = GroupOf(p): one List to
//	          discover the group's first committed regroup attempt and
//	          one (range-)read of its slice
//
// Requests drop from S·P reads to G·S + P (see Variant.Requests). Because
// the regroup merge is ascending-sender with row order preserved and
// re-hashing splits the merged rows back without reordering, the rows
// receiver p collects are exactly the single-round rows — byte-identical
// chunks, whichever variant runs. Attempt versioning composes: round-1
// attempts are the senders' (first committed attempt wins, as always), the
// regroup round carries the regroup worker's own attempt namespace, so
// regroup workers can crash, retry and be speculated like any stage
// fragment. Boundaries flatten Levels > 2 to one regroup round: with one
// intermediate round already at √P grouping, further rounds only pay off
// past fleet sizes the simulation targets.

// GroupSize returns the number of consecutive partitions per group of a
// multi-level boundary with the given partition count: ceil(P / ceil(√P)).
func GroupSize(parts int) int {
	if parts < 1 {
		return 1
	}
	g0 := int(math.Ceil(math.Sqrt(float64(parts))))
	return (parts + g0 - 1) / g0
}

// Groups returns the regroup-round fleet size of a multi-level boundary
// with the given partition count — about √P groups of GroupSize
// consecutive partitions each.
func Groups(parts int) int {
	size := GroupSize(parts)
	if parts < 1 {
		return 1
	}
	return (parts + size - 1) / size
}

// GroupOf returns the group that owns the partition.
func GroupOf(part, parts int) int {
	return part / GroupSize(parts)
}

// groupSpan returns the partition range [lo, hi) of one group.
func groupSpan(group, parts int) (lo, hi int) {
	size := GroupSize(parts)
	lo = group * size
	hi = min(lo+size, parts)
	return lo, hi
}

// stageR1WcPrefix is the round-1 namespace of write-combined grouped
// objects: `<prefix>/s<stage>/r1snd<s>-a<n>-off<o0_…_oG>`.
func (o *Options) stageR1WcPrefix(stage int) string {
	return fmt.Sprintf("%s/s%d/r1snd", o.Prefix, stage)
}

func (o *Options) stageR1WcName(stage, attempt, sender int, offsets []int64) string {
	return fmt.Sprintf("%s%d-a%d-off%s", o.stageR1WcPrefix(stage), sender, attempt, offsetString(offsets))
}

// stageGroupFile names the round-1 basic-variant object of (group, sender,
// attempt), sharded by group.
func (o *Options) stageGroupFile(stage, attempt, group, sender int) string {
	return fmt.Sprintf("%s/s%d/g%d/a%d-snd%d", o.Prefix, stage, group, attempt, sender)
}

// stageR1Commit seals a sender's round-1 attempt in the basic variant,
// written after all of its group objects.
func (o *Options) stageR1Commit(stage, sender, attempt int) string {
	return fmt.Sprintf("%s/s%d/r1commit/snd%d-a%d", o.Prefix, stage, sender, attempt)
}

func (o *Options) stageR1CommitDir(stage int) string {
	return fmt.Sprintf("%s/s%d/r1commit/", o.Prefix, stage)
}

// stageRgPrefix is the regroup round's write-combined namespace for one
// group: `<prefix>/s<stage>/rg<g>-a<n>-off<o0_…_om>`. The trailing dash
// keeps group 1 from matching group 12's objects.
func (o *Options) stageRgPrefix(stage, group int) string {
	return fmt.Sprintf("%s/s%d/rg%d-", o.Prefix, stage, group)
}

func (o *Options) stageRgName(stage, group, attempt int, offsets []int64) string {
	return fmt.Sprintf("%sa%d-off%s", o.stageRgPrefix(stage, group), attempt, offsetString(offsets))
}

// stageRgFile names the regroup round's basic-variant object of one
// partition, sharded by partition like single-round files (the `rg<g>` tag
// keeps it disjoint from `snd<s>` names).
func (o *Options) stageRgFile(stage, attempt, part, group int) string {
	return fmt.Sprintf("%s/s%d/p%d/a%d-rg%d", o.Prefix, stage, part, attempt, group)
}

// stageRgCommit seals a regroup worker's attempt in the basic variant.
func (o *Options) stageRgCommit(stage, group, attempt int) string {
	return fmt.Sprintf("%s/s%d/rgcommit/g%d-a%d", o.Prefix, stage, group, attempt)
}

// stageRgCommitPrefix covers one group's regroup commit markers; the
// embedded `-a` keeps group 1 from matching group 12.
func (o *Options) stageRgCommitPrefix(stage, group int) string {
	return fmt.Sprintf("%s/s%d/rgcommit/g%d-a", o.Prefix, stage, group)
}

// publishStageGrouped writes round 1 of a multi-level boundary: the
// sender's rows hash-partitioned into P as usual, then concatenated per
// group (ascending partition, row order preserved) into one object per
// group. PublishStage routes here when the variant is multi-level.
func publishStageGrouped(client *s3.Client, opts Options, b Boundary, sender int, chunk *columnar.Chunk, keys []string) error {
	sel, err := partitionRows(chunk, keys, b.Partitions)
	if err != nil {
		return err
	}
	groups := Groups(b.Partitions)
	blobs := make([][]byte, groups)
	for g := 0; g < groups; g++ {
		lo, hi := groupSpan(g, b.Partitions)
		var rows []int
		for p := lo; p < hi; p++ {
			rows = append(rows, sel[p]...)
		}
		part := chunk.Gather(rows)
		data, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, part)
		if err != nil {
			return err
		}
		blobs[g] = data
	}

	if opts.Variant.WriteCombining {
		// One combined object per sender with cumulative group offsets in
		// the name; the single atomic Put commits the attempt.
		var combined []byte
		offsets := make([]int64, 0, groups+1)
		for g := 0; g < groups; g++ {
			offsets = append(offsets, int64(len(combined)))
			combined = append(combined, blobs[g]...)
		}
		offsets = append(offsets, int64(len(combined)))
		name := opts.stageR1WcName(b.Stage, b.Attempt, sender, offsets)
		return client.Put(opts.stageBucket(b.Stage, sender), name, combined)
	}

	for g := 0; g < groups; g++ {
		if err := client.Put(opts.stageBucket(b.Stage, g), opts.stageGroupFile(b.Stage, b.Attempt, g, sender), blobs[g]); err != nil {
			return err
		}
	}
	// Commit marker last: every group object of this attempt exists.
	return client.Put(opts.stageBucket(b.Stage, sender), opts.stageR1Commit(b.Stage, sender, b.Attempt), nil)
}

// collectGroup merges group `group` across all senders in ascending sender
// order, each sender's first committed round-1 attempt winning — the
// regroup worker's input.
func collectGroup(client *s3.Client, opts Options, b Boundary, group int) (*columnar.Chunk, error) {
	groups := Groups(b.Partitions)
	if opts.Variant.WriteCombining {
		best, err := discoverCombined(client, opts, b, opts.stageR1WcPrefix(b.Stage), "r1snd", groups)
		if err != nil {
			return nil, err
		}
		senders := make([]int, 0, len(best))
		for s := range best {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		var out *columnar.Chunk
		for _, s := range senders {
			f := best[s]
			lo, hi := f.offsets[group], f.offsets[group+1]
			if hi < lo {
				return nil, fmt.Errorf("exchange: inverted offsets in %q", f.key)
			}
			data, _, err := client.GetRange(f.bucket, f.key, lo, hi-lo, 1)
			if err != nil {
				return nil, err
			}
			if out, err = appendStageBlob(out, data); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	attempts, err := waitAllCommitted(client, opts, b, opts.stageR1CommitDir(b.Stage))
	if err != nil {
		return nil, err
	}
	var out *columnar.Chunk
	bucket := opts.stageBucket(b.Stage, group)
	for s := 0; s < b.Senders; s++ {
		name := opts.stageGroupFile(b.Stage, attempts[s], group, s)
		data, _, err := client.Get(bucket, name, 1)
		if err != nil {
			return nil, fmt.Errorf("exchange: reading %s: %w", name, err)
		}
		if out, err = appendStageBlob(out, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RegroupStage runs the intermediate round of a multi-level boundary for
// one group: collect the group across all senders, re-partition the merged
// rows by the boundary's hash, and publish one object per partition of the
// group under this regroup attempt (b.Attempt — regroup workers are
// speculated and retried like any fragment; receivers take the group's
// first committed regroup attempt). Deterministic inputs make every
// attempt's objects byte-identical.
func RegroupStage(client *s3.Client, opts Options, b Boundary, group int, keys []string) error {
	opts = opts.shardPool()
	if len(opts.Buckets) == 0 {
		return errors.New("exchange: no buckets configured")
	}
	if b.Senders < 1 {
		return fmt.Errorf("exchange: stage %d has no senders", b.Stage)
	}
	if groups := Groups(b.Partitions); group < 0 || group >= groups {
		return fmt.Errorf("exchange: regroup group %d of %d", group, groups)
	}
	merged, err := collectGroup(client, opts, b, group)
	if err != nil {
		return err
	}
	sel, err := partitionRows(merged, keys, b.Partitions)
	if err != nil {
		return err
	}
	lo, hi := groupSpan(group, b.Partitions)
	for p := range sel {
		if (p < lo || p >= hi) && len(sel[p]) > 0 {
			return fmt.Errorf("exchange: stage %d group %d holds %d rows hashed to partition %d (boundary shape mismatch)",
				b.Stage, group, len(sel[p]), p)
		}
	}
	blobs := make([][]byte, hi-lo)
	for p := lo; p < hi; p++ {
		part := merged.Gather(sel[p])
		data, err := lpq.WriteFile(merged.Schema, lpq.WriterOptions{}, part)
		if err != nil {
			return err
		}
		blobs[p-lo] = data
	}

	if opts.Variant.WriteCombining {
		var combined []byte
		offsets := make([]int64, 0, hi-lo+1)
		for _, blob := range blobs {
			offsets = append(offsets, int64(len(combined)))
			combined = append(combined, blob...)
		}
		offsets = append(offsets, int64(len(combined)))
		name := opts.stageRgName(b.Stage, group, b.Attempt, offsets)
		return client.Put(opts.stageBucket(b.Stage, group), name, combined)
	}

	for p := lo; p < hi; p++ {
		if err := client.Put(opts.stageBucket(b.Stage, p), opts.stageRgFile(b.Stage, b.Attempt, p, group), blobs[p-lo]); err != nil {
			return err
		}
	}
	return client.Put(opts.stageBucket(b.Stage, group), opts.stageRgCommit(b.Stage, group, b.Attempt), nil)
}

// collectStageMultiLevel is the receiver side of a multi-level boundary:
// one List to discover the group's first committed regroup attempt, one
// (range-)read of this partition's slice. CollectStage routes here when
// the variant is multi-level.
func collectStageMultiLevel(client *s3.Client, opts Options, b Boundary, part int) (*columnar.Chunk, error) {
	group := GroupOf(part, b.Partitions)
	lo, hi := groupSpan(group, b.Partitions)
	slot := part - lo
	bucket := opts.stageBucket(b.Stage, group)
	deadline := client.Env().Now() + opts.MaxWait

	if opts.Variant.WriteCombining {
		prefix := opts.stageRgPrefix(b.Stage, group)
		var won stageWcFile
		for found := false; !found; {
			entries, err := client.List(bucket, prefix)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				// The base name is `rg<g>-a<n>-off<…>`; the id parses back
				// to this group by construction of the listed prefix.
				_, attempt, offsets, err := parseWcTail(e.Key, "rg")
				if err != nil {
					return nil, err
				}
				if len(offsets) != hi-lo+1 {
					return nil, fmt.Errorf("exchange: %d offsets for %d partitions in %q", len(offsets), hi-lo, e.Key)
				}
				if !found || attempt < won.attempt {
					won = stageWcFile{bucket: bucket, key: e.Key, attempt: attempt, offsets: offsets}
					found = true
				}
			}
			if found {
				break
			}
			if client.Env().Now() >= deadline {
				return nil, fmt.Errorf("exchange: no regroup attempt for stage %d group %d after %v", b.Stage, group, opts.MaxWait)
			}
			simenv.WaitNotifyKey(client.Env(), "s3/"+prefix, opts.Poll)
		}
		flo, fhi := won.offsets[slot], won.offsets[slot+1]
		if fhi < flo {
			return nil, fmt.Errorf("exchange: inverted offsets in %q", won.key)
		}
		data, _, err := client.GetRange(won.bucket, won.key, flo, fhi-flo, 1)
		if err != nil {
			return nil, err
		}
		return appendStageBlob(nil, data)
	}

	prefix := opts.stageRgCommitPrefix(b.Stage, group)
	attempt := -1
	for attempt < 0 {
		entries, err := client.List(bucket, prefix)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			a, err := strconv.Atoi(e.Key[strings.LastIndex(e.Key, "-a")+2:])
			if err != nil {
				return nil, fmt.Errorf("exchange: bad regroup commit marker %q", e.Key)
			}
			if attempt < 0 || a < attempt {
				attempt = a
			}
		}
		if attempt >= 0 {
			break
		}
		if client.Env().Now() >= deadline {
			return nil, fmt.Errorf("exchange: no regroup attempt for stage %d group %d after %v", b.Stage, group, opts.MaxWait)
		}
		simenv.WaitNotifyKey(client.Env(), "s3/"+prefix, opts.Poll)
	}
	name := opts.stageRgFile(b.Stage, attempt, part, group)
	data, _, err := client.Get(opts.stageBucket(b.Stage, part), name, 1)
	if err != nil {
		return nil, fmt.Errorf("exchange: reading %s: %w", name, err)
	}
	return appendStageBlob(nil, data)
}
