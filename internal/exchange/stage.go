package exchange

import (
	"bytes"
	"errors"
	"fmt"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Stage boundaries are the asymmetric counterpart of the symmetric
// all-to-all exchange of Run: a producing stage of S workers hash-partitions
// its output rows into P partitions through S3, and a consuming stage of P
// workers each collects exactly one partition from every sender. Unlike the
// multi-level grid (which requires senders == receivers), a boundary is a
// single round; bucket sharding (by partition in the basic variant, by
// sender when write-combining) keeps the §4.4.1 rate-limit multiplication,
// and the write-combining variant keeps the §4.4.3 trick of encoding
// cumulative partition offsets in the file name so each receiver
// range-reads its slice of one combined object per sender.
//
// Every sender writes a file (possibly empty) for every partition, so
// receivers never need a membership protocol: partition p is complete once
// all S sender files exist.

// Boundary identifies one producing stage's partitioned output inside an
// exchange namespace (Options.Prefix scopes the query).
type Boundary struct {
	// Stage is the producing stage's ID (namespaces the object keys).
	Stage int
	// Senders is the producing stage's worker count.
	Senders int
	// Partitions is the consuming stage's worker count.
	Partitions int
}

func (o *Options) stageBucket(stage, part int) string {
	return o.Buckets[(stage*31+part)%len(o.Buckets)]
}

func (o *Options) stageFile(stage, part, sender int) string {
	return fmt.Sprintf("%s/s%d/p%d/snd%d", o.Prefix, stage, part, sender)
}

func (o *Options) stageWcPrefix(stage int) string {
	return fmt.Sprintf("%s/s%d/snd", o.Prefix, stage)
}

// HashPartition maps row i of the key columns to its partition in
// [0, parts): the per-column splitmix64 hashes are FNV-combined so composite
// keys distribute independently of any single column.
func HashPartition(keys []*columnar.Vector, i, parts int) int {
	h := uint64(14695981039346656037)
	for _, k := range keys {
		h = (h ^ Hash64(k.Int64s[i])) * 1099511628211
	}
	return int(h % uint64(parts))
}

// partitionRows returns, per partition, the row indices of chunk in row
// order. All key columns must be Int64.
func partitionRows(chunk *columnar.Chunk, keys []string, parts int) ([][]int, error) {
	cols := make([]*columnar.Vector, len(keys))
	for i, k := range keys {
		v := chunk.Column(k)
		if v == nil {
			return nil, fmt.Errorf("exchange: partition key %q missing", k)
		}
		if v.Type != columnar.Int64 {
			return nil, fmt.Errorf("exchange: partition key %q has type %v (only BIGINT keys are hashable)", k, v.Type)
		}
		cols[i] = v
	}
	sel := make([][]int, parts)
	n := chunk.NumRows()
	for i := 0; i < n; i++ {
		p := HashPartition(cols, i, parts)
		sel[p] = append(sel[p], i)
	}
	return sel, nil
}

// PublishStage hash-partitions chunk by the key columns and writes this
// sender's partition files into the boundary's namespace — one object per
// partition, or one combined object with offsets in the name when the
// variant write-combines. Rows keep their order within each partition, so
// the boundary is deterministic for a deterministic input chunk.
func PublishStage(client *s3.Client, opts Options, b Boundary, sender int, chunk *columnar.Chunk, keys []string) error {
	if len(opts.Buckets) == 0 {
		return errors.New("exchange: no buckets configured")
	}
	if b.Partitions < 1 {
		return fmt.Errorf("exchange: boundary with %d partitions", b.Partitions)
	}
	sel, err := partitionRows(chunk, keys, b.Partitions)
	if err != nil {
		return err
	}
	blobs := make([][]byte, b.Partitions)
	for p := 0; p < b.Partitions; p++ {
		part := chunk.Gather(sel[p])
		data, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, part)
		if err != nil {
			return err
		}
		blobs[p] = data
	}

	if opts.Variant.WriteCombining {
		// One combined object, sharded by sender (a sender writes one file,
		// so the per-partition spread of the basic variant is unavailable —
		// spreading senders keeps the §4.4.1 rate-limit multiplication);
		// cumulative partition offsets travel in the name.
		var combined []byte
		offsets := make([]int64, 0, b.Partitions+1)
		for p := 0; p < b.Partitions; p++ {
			offsets = append(offsets, int64(len(combined)))
			combined = append(combined, blobs[p]...)
		}
		offsets = append(offsets, int64(len(combined)))
		name := fmt.Sprintf("%s%d-off%s", opts.stageWcPrefix(b.Stage), sender, offsetString(offsets))
		return client.Put(opts.stageBucket(b.Stage, sender), name, combined)
	}

	for p := 0; p < b.Partitions; p++ {
		if err := client.Put(opts.stageBucket(b.Stage, p), opts.stageFile(b.Stage, p, sender), blobs[p]); err != nil {
			return err
		}
	}
	return nil
}

// CollectStage waits for every sender's slice of partition part and returns
// their concatenation in ascending sender order. The schema comes from the
// blobs themselves (lpq files are self-describing), so boundaries need no
// schema plumbing.
func CollectStage(client *s3.Client, opts Options, b Boundary, part int) (*columnar.Chunk, error) {
	if len(opts.Buckets) == 0 {
		return nil, errors.New("exchange: no buckets configured")
	}
	if opts.Variant.WriteCombining {
		return collectStageCombined(client, opts, b, part)
	}
	bucket := opts.stageBucket(b.Stage, part)
	var out *columnar.Chunk
	for s := 0; s < b.Senders; s++ {
		name := opts.stageFile(b.Stage, part, s)
		if _, err := client.WaitFor(bucket, name, opts.Poll, opts.MaxWait); err != nil {
			return nil, fmt.Errorf("exchange: waiting for %s: %w", name, err)
		}
		data, _, err := client.Get(bucket, name, 1)
		if err != nil {
			return nil, err
		}
		if out, err = appendStageBlob(out, data); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("exchange: stage %d has no senders", b.Stage)
	}
	return out, nil
}

// collectStageCombined lists the boundary's combined objects across the
// senders' shard buckets until every sender appears (the shared
// listCombined protocol), then range-reads this partition's slice of each.
func collectStageCombined(client *s3.Client, opts Options, b Boundary, part int) (*columnar.Chunk, error) {
	var buckets []string
	seen := map[string]bool{}
	for s := 0; s < b.Senders; s++ {
		if bk := opts.stageBucket(b.Stage, s); !seen[bk] {
			seen[bk] = true
			buckets = append(buckets, bk)
		}
	}
	files, err := listCombined(client, opts, buckets, opts.stageWcPrefix(b.Stage), b.Senders, b.Partitions, part)
	if err != nil {
		return nil, err
	}
	var out *columnar.Chunk
	for _, f := range files {
		data, _, err := client.GetRange(f.bucket, f.key, f.lo, f.hi-f.lo, 1)
		if err != nil {
			return nil, err
		}
		if out, err = appendStageBlob(out, data); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("exchange: stage %d has no senders", b.Stage)
	}
	return out, nil
}

// appendStageBlob decodes an lpq blob and appends its rows to dst,
// allocating dst from the blob's own schema on first use.
func appendStageBlob(dst *columnar.Chunk, blob []byte) (*columnar.Chunk, error) {
	if dst == nil {
		r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			return nil, err
		}
		return r.ReadAll()
	}
	if err := appendLpqBlob(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func offsetString(offsets []int64) string {
	s := ""
	for i, off := range offsets {
		if i > 0 {
			s += "_"
		}
		s += fmt.Sprintf("%d", off)
	}
	return s
}
