package exchange

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Stage boundaries are the asymmetric counterpart of the symmetric
// all-to-all exchange of Run: a producing stage of S workers hash-partitions
// its output rows into P partitions through S3, and a consuming stage of P
// workers each collects exactly one partition from every sender. Unlike the
// multi-level grid (which requires senders == receivers), a boundary is a
// single round when Variant.Levels == 1 (multilevel.go adds the §4.4.2
// regrouping round for Levels >= 2: senders write √-grouped objects, a
// regroup fleet merges per group, receivers touch one group object instead
// of S sender objects); bucket sharding (by partition in the basic variant,
// by sender when write-combining) keeps the §4.4.1 rate-limit multiplication,
// and the write-combining variant keeps the §4.4.3 trick of encoding
// cumulative partition offsets in the file name so each receiver
// range-reads its slice of one combined object per sender.
//
// Every sender writes a file (possibly empty) for every partition, so
// receivers never need a membership protocol: partition p is complete once
// all S sender files exist.
//
// Boundary names are versioned by attempt so straggler speculation can
// re-run a sender without racing the original's files: attempt a of sender
// s writes into its own `a<attempt>` namespace and then commits it — with a
// per-(stage,attempt,sender) commit marker in the basic variant, or
// implicitly by the single atomic Put of the combined object when
// write-combining. Receivers take, per sender, the first complete
// (committed) attempt set; uncommitted and later attempts are ignored.
// Because stage fragments are deterministic, every attempt's files are
// byte-identical, so which attempt wins never changes the collected rows.
// Loser attempts linger as garbage until Sweep (the stale-drain collector)
// removes the boundary namespace.

// Boundary identifies one producing stage's partitioned output inside an
// exchange namespace (Options.Prefix scopes the query).
type Boundary struct {
	// Stage is the producing stage's ID (namespaces the object keys).
	Stage int
	// Attempt versions the publishing sender's file set: backup attempts of
	// a straggling sender write under a fresh attempt namespace instead of
	// racing the original's files. Collectors ignore it — they discover the
	// first committed attempt per sender themselves.
	Attempt int
	// Senders is the producing stage's worker count.
	Senders int
	// Partitions is the consuming stage's worker count.
	Partitions int
}

func (o *Options) stageBucket(stage, part int) string {
	return o.Buckets[(stage*31+part)%len(o.Buckets)]
}

// stageFile names sender's file of one partition within one attempt.
func (o *Options) stageFile(stage, attempt, part, sender int) string {
	return fmt.Sprintf("%s/s%d/p%d/a%d-snd%d", o.Prefix, stage, part, attempt, sender)
}

// stageCommit names the commit marker sealing (stage, sender, attempt) in
// the basic variant: it is written after every partition file of the
// attempt, so receivers that see it can read any partition without waiting.
func (o *Options) stageCommit(stage, sender, attempt int) string {
	return fmt.Sprintf("%s/s%d/commit/snd%d-a%d", o.Prefix, stage, sender, attempt)
}

// stageCommitDir is the stage's whole commit namespace: one List under it
// returns the markers of every sender sharded into that bucket, so a
// receiver discovers all its senders' commits with one request per shard
// bucket per round instead of one List per (sender, poll).
func (o *Options) stageCommitDir(stage int) string {
	return fmt.Sprintf("%s/s%d/commit/", o.Prefix, stage)
}

// parseStageCommitName extracts sender and attempt from a commit marker key
// (`…/commit/snd<s>-a<n>`).
func parseStageCommitName(key string) (sender, attempt int, err error) {
	base := key[strings.LastIndex(key, "/")+1:]
	if !strings.HasPrefix(base, "snd") {
		return 0, 0, fmt.Errorf("exchange: bad commit marker %q", key)
	}
	rest := base[3:]
	ai := strings.Index(rest, "-a")
	if ai < 0 {
		return 0, 0, fmt.Errorf("exchange: bad commit marker %q", key)
	}
	if sender, err = strconv.Atoi(rest[:ai]); err != nil {
		return 0, 0, fmt.Errorf("exchange: bad commit marker %q", key)
	}
	if attempt, err = strconv.Atoi(rest[ai+2:]); err != nil {
		return 0, 0, fmt.Errorf("exchange: bad commit marker %q", key)
	}
	return sender, attempt, nil
}

func (o *Options) stageWcPrefix(stage int) string {
	return fmt.Sprintf("%s/s%d/snd", o.Prefix, stage)
}

// stageWcName encodes sender, attempt and the cumulative partition offsets
// in the combined object's name (§4.4.3). The single Put is atomic, so the
// object doubles as its own commit marker.
func (o *Options) stageWcName(stage, attempt, sender int, offsets []int64) string {
	return fmt.Sprintf("%s%d-a%d-off%s", o.stageWcPrefix(stage), sender, attempt, offsetString(offsets))
}

// parseStageWcName extracts sender, attempt and offsets from a combined
// stage-boundary object name (`snd<s>-a<n>-off<o0_o1_…>`).
func parseStageWcName(key string) (sender, attempt int, offsets []int64, err error) {
	return parseWcTail(key, "snd")
}

// parseWcTail parses a `<tag><id>-a<n>-off<o0_o1_…>` combined-object base
// name — the shared shape of single-round (`snd`), round-1 grouped
// (`r1snd`) and regroup (`rg`) write-combined objects.
func parseWcTail(key, tag string) (id, attempt int, offsets []int64, err error) {
	base := key[strings.LastIndex(key, "/")+1:]
	if !strings.HasPrefix(base, tag) {
		return 0, 0, nil, fmt.Errorf("exchange: bad stage wc file name %q", key)
	}
	rest := base[len(tag):]
	ai := strings.Index(rest, "-a")
	oi := strings.Index(rest, "-off")
	if ai < 0 || oi < 0 || oi < ai {
		return 0, 0, nil, fmt.Errorf("exchange: bad stage wc file name %q", key)
	}
	if id, err = strconv.Atoi(rest[:ai]); err != nil {
		return 0, 0, nil, err
	}
	if attempt, err = strconv.Atoi(rest[ai+2 : oi]); err != nil {
		return 0, 0, nil, err
	}
	for _, s := range strings.Split(rest[oi+4:], "_") {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, 0, nil, err
		}
		offsets = append(offsets, v)
	}
	return id, attempt, offsets, nil
}

// HashPartition maps row i of the key columns to its partition in
// [0, parts): the per-column splitmix64 hashes are FNV-combined so composite
// keys distribute independently of any single column.
func HashPartition(keys []*columnar.Vector, i, parts int) int {
	h := uint64(14695981039346656037)
	for _, k := range keys {
		h = (h ^ Hash64(k.Int64s[i])) * 1099511628211
	}
	return int(h % uint64(parts))
}

// partitionRows returns, per partition, the row indices of chunk in row
// order. All key columns must be Int64.
func partitionRows(chunk *columnar.Chunk, keys []string, parts int) ([][]int, error) {
	cols := make([]*columnar.Vector, len(keys))
	for i, k := range keys {
		v := chunk.Column(k)
		if v == nil {
			return nil, fmt.Errorf("exchange: partition key %q missing", k)
		}
		if v.Type != columnar.Int64 {
			return nil, fmt.Errorf("exchange: partition key %q has type %v (only BIGINT keys are hashable)", k, v.Type)
		}
		cols[i] = v
	}
	sel := make([][]int, parts)
	n := chunk.NumRows()
	for i := 0; i < n; i++ {
		p := HashPartition(cols, i, parts)
		sel[p] = append(sel[p], i)
	}
	return sel, nil
}

// PublishStage hash-partitions chunk by the key columns and writes this
// sender's partition files into the boundary's attempt namespace — one
// object per partition plus a commit marker, or one combined object with
// sender/attempt/offsets in the name when the variant write-combines. Rows
// keep their order within each partition, so the boundary is deterministic
// for a deterministic input chunk, and re-publishing the same chunk under a
// new attempt produces byte-identical files.
func PublishStage(client *s3.Client, opts Options, b Boundary, sender int, chunk *columnar.Chunk, keys []string) error {
	opts = opts.shardPool()
	if len(opts.Buckets) == 0 {
		return errors.New("exchange: no buckets configured")
	}
	if b.Partitions < 1 {
		return fmt.Errorf("exchange: boundary with %d partitions", b.Partitions)
	}
	if opts.Variant.Levels >= 2 {
		return publishStageGrouped(client, opts, b, sender, chunk, keys)
	}
	sel, err := partitionRows(chunk, keys, b.Partitions)
	if err != nil {
		return err
	}
	blobs := make([][]byte, b.Partitions)
	for p := 0; p < b.Partitions; p++ {
		part := chunk.Gather(sel[p])
		data, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, part)
		if err != nil {
			return err
		}
		blobs[p] = data
	}

	if opts.Variant.WriteCombining {
		// One combined object, sharded by sender (a sender writes one file,
		// so the per-partition spread of the basic variant is unavailable —
		// spreading senders keeps the §4.4.1 rate-limit multiplication);
		// cumulative partition offsets travel in the name. The single Put is
		// atomic: the object existing means the attempt is committed.
		var combined []byte
		offsets := make([]int64, 0, b.Partitions+1)
		for p := 0; p < b.Partitions; p++ {
			offsets = append(offsets, int64(len(combined)))
			combined = append(combined, blobs[p]...)
		}
		offsets = append(offsets, int64(len(combined)))
		name := opts.stageWcName(b.Stage, b.Attempt, sender, offsets)
		return client.Put(opts.stageBucket(b.Stage, sender), name, combined)
	}

	for p := 0; p < b.Partitions; p++ {
		if err := client.Put(opts.stageBucket(b.Stage, p), opts.stageFile(b.Stage, b.Attempt, p, sender), blobs[p]); err != nil {
			return err
		}
	}
	// Commit marker last: a receiver that sees it knows every partition file
	// of this attempt exists (S3 writes are strongly consistent).
	return client.Put(opts.stageBucket(b.Stage, sender), opts.stageCommit(b.Stage, sender, b.Attempt), nil)
}

// CollectStage waits until every sender has committed at least one attempt,
// then returns the concatenation of partition part across senders in
// ascending sender order, reading each sender's first (lowest) committed
// attempt. Later and uncommitted attempts — stragglers that lost a
// speculation race, or partial file sets of an aborted attempt — are
// ignored. The schema comes from the blobs themselves (lpq files are
// self-describing), so boundaries need no schema plumbing.
func CollectStage(client *s3.Client, opts Options, b Boundary, part int) (*columnar.Chunk, error) {
	opts = opts.shardPool()
	if len(opts.Buckets) == 0 {
		return nil, errors.New("exchange: no buckets configured")
	}
	if b.Senders < 1 {
		return nil, fmt.Errorf("exchange: stage %d has no senders", b.Stage)
	}
	if opts.Variant.Levels >= 2 {
		return collectStageMultiLevel(client, opts, b, part)
	}
	if opts.Variant.WriteCombining {
		return collectStageCombined(client, opts, b, part)
	}
	attempts, err := waitAllCommitted(client, opts, b, opts.stageCommitDir(b.Stage))
	if err != nil {
		return nil, err
	}
	var out *columnar.Chunk
	bucket := opts.stageBucket(b.Stage, part)
	for s := 0; s < b.Senders; s++ {
		name := opts.stageFile(b.Stage, attempts[s], part, s)
		data, _, err := client.Get(bucket, name, 1)
		if err != nil {
			return nil, fmt.Errorf("exchange: reading %s: %w", name, err)
		}
		if out, err = appendStageBlob(out, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// bucketSenders is one shard bucket and the senders sharded into it.
type bucketSenders struct {
	bucket  string
	senders []int
}

// senderBuckets groups a boundary's senders by the shard bucket their
// commit markers (basic) or combined objects (write-combining) land in,
// ordered by lowest sender — a deterministic order matters: DES receivers
// consume modeled List latencies in iteration order, so ranging over a Go
// map here would randomize virtual timelines run to run.
func senderBuckets(opts Options, b Boundary) []bucketSenders {
	idx := map[string]int{}
	var out []bucketSenders
	for s := 0; s < b.Senders; s++ {
		bk := opts.stageBucket(b.Stage, s)
		i, ok := idx[bk]
		if !ok {
			i = len(out)
			idx[bk] = i
			out = append(out, bucketSenders{bucket: bk})
		}
		out[i].senders = append(out[i].senders, s)
	}
	return out
}

// bucketDone reports whether every sender sharded into the bucket has a
// committed attempt recorded already.
func bucketDone(senders []int, committed map[int]int) bool {
	for _, s := range senders {
		if _, ok := committed[s]; !ok {
			return false
		}
	}
	return true
}

// waitAllCommitted waits until every sender of the boundary has committed
// at least one attempt under the given commit namespace and returns, per
// sender, the first committed attempt observed (ties broken toward the
// lowest attempt number) — the rule that makes backup attempts race-free.
// Discovery is batched and incremental: one List of the commit namespace
// per shard bucket per round, only for buckets that still host uncommitted
// senders, with results cached across rounds; between rounds the receiver
// parks on the completion signal s3.Put broadcasts, with the timed poll as
// the fallback. The dir parameter selects the round: the single-round
// commit namespace, or the r1commit namespace of a multi-level boundary.
func waitAllCommitted(client *s3.Client, opts Options, b Boundary, dir string) (map[int]int, error) {
	byBucket := senderBuckets(opts, b)
	committed := make(map[int]int, b.Senders)
	deadline := client.Env().Now() + opts.MaxWait
	for {
		for _, bs := range byBucket {
			if bucketDone(bs.senders, committed) {
				continue
			}
			entries, err := client.List(bs.bucket, dir)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				sender, attempt, err := parseStageCommitName(e.Key)
				if err != nil {
					return nil, err
				}
				if cur, ok := committed[sender]; !ok || attempt < cur {
					committed[sender] = attempt
				}
			}
		}
		if len(committed) >= b.Senders {
			return committed, nil
		}
		if client.Env().Now() >= deadline {
			return nil, fmt.Errorf("exchange: %d/%d senders of stage %d committed after %v",
				len(committed), b.Senders, b.Stage, opts.MaxWait)
		}
		// Park on the stage's commit namespace: only a commit-marker Put of
		// THIS boundary wakes the receiver early (bucket is omitted from
		// completion topics, so one prefix covers all shard buckets).
		simenv.WaitNotifyKey(client.Env(), "s3/"+dir, opts.Poll)
	}
}

// stageWcFile is one committed combined object of a sender.
type stageWcFile struct {
	bucket  string
	key     string
	attempt int
	offsets []int64
}

// discoverCombined lists a boundary's write-combined objects across the
// senders' shard buckets until every sender has committed at least one
// attempt, returning each sender's first observed attempt (lowest wins
// within a round). Discovery is incremental — found senders are cached
// across rounds, a bucket is re-listed only while it still hosts unfound
// senders, and the caller parks on the completion signal between rounds.
// The prefix/tag pair selects the round (single-round `snd` objects with
// slots = partitions, or round-1 `r1snd` grouped objects with slots =
// groups); every object must carry slots+1 cumulative offsets.
func discoverCombined(client *s3.Client, opts Options, b Boundary, prefix, tag string, slots int) (map[int]stageWcFile, error) {
	byBucket := senderBuckets(opts, b)
	deadline := client.Env().Now() + opts.MaxWait
	best := make(map[int]stageWcFile, b.Senders)
	found := make(map[int]int, b.Senders) // attempt per sender, for bucketDone
	for {
		for _, bs := range byBucket {
			if bucketDone(bs.senders, found) {
				continue
			}
			entries, err := client.List(bs.bucket, prefix)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				sender, attempt, offsets, err := parseWcTail(e.Key, tag)
				if err != nil {
					return nil, err
				}
				if len(offsets) != slots+1 {
					return nil, fmt.Errorf("exchange: %d offsets for %d slots in %q", len(offsets), slots, e.Key)
				}
				if cur, ok := best[sender]; !ok || attempt < cur.attempt {
					best[sender] = stageWcFile{bucket: bs.bucket, key: e.Key, attempt: attempt, offsets: offsets}
					found[sender] = attempt
				}
			}
		}
		if len(best) >= b.Senders {
			return best, nil
		}
		if client.Env().Now() >= deadline {
			return nil, fmt.Errorf("exchange: %d/%d senders committed after %v", len(best), b.Senders, opts.MaxWait)
		}
		// Park on the boundary's combined-object namespace: only a sender's
		// atomic Put into this stage's prefix wakes the receiver.
		simenv.WaitNotifyKey(client.Env(), "s3/"+prefix, opts.Poll)
	}
}

// collectStageCombined lists the boundary's combined objects across the
// senders' shard buckets until every sender has committed at least one
// attempt, then range-reads this partition's slice of each sender's first
// observed attempt (lowest wins within a round). Extra objects from losing
// attempts are ignored. Like waitAllCommitted, discovery is incremental:
// found senders are cached across rounds, a bucket is re-listed only while
// it still hosts unfound senders, and the receiver parks on the completion
// signal between rounds.
func collectStageCombined(client *s3.Client, opts Options, b Boundary, part int) (*columnar.Chunk, error) {
	best, err := discoverCombined(client, opts, b, opts.stageWcPrefix(b.Stage), "snd", b.Partitions)
	if err != nil {
		return nil, err
	}
	senders := make([]int, 0, len(best))
	for s := range best {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	var out *columnar.Chunk
	for _, s := range senders {
		f := best[s]
		lo, hi := f.offsets[part], f.offsets[part+1]
		if hi < lo {
			return nil, fmt.Errorf("exchange: inverted offsets in %q", f.key)
		}
		data, _, err := client.GetRange(f.bucket, f.key, lo, hi-lo, 1)
		if err != nil {
			return nil, err
		}
		if out, err = appendStageBlob(out, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Sweep is the stale-drain collector: it deletes every object under prefix
// in the given buckets — winner files whose consumers have collected and
// loser files of aborted or outpaced speculative attempts alike — and
// returns how many objects it removed. Deletes are batched per bucket
// through the DeleteObjects API (one round trip per 1000 keys). The driver
// runs it before a query (clearing leftovers of an identically-named
// aborted run, every epoch included) and after (reclaiming the boundary
// namespace).
func Sweep(client *s3.Client, buckets []string, prefix string) (int, error) {
	removed := 0
	for _, b := range buckets {
		entries, err := client.List(b, prefix)
		if err != nil {
			return removed, err
		}
		if len(entries) == 0 {
			continue
		}
		keys := make([]string, len(entries))
		for i, e := range entries {
			keys[i] = e.Key
		}
		if err := client.DeleteBatch(b, keys); err != nil {
			return removed, err
		}
		removed += len(keys)
	}
	return removed, nil
}

// appendStageBlob decodes an lpq blob and appends its rows to dst,
// allocating dst from the blob's own schema on first use.
func appendStageBlob(dst *columnar.Chunk, blob []byte) (*columnar.Chunk, error) {
	if dst == nil {
		r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			return nil, err
		}
		return r.ReadAll()
	}
	if err := appendLpqBlob(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func offsetString(offsets []int64) string {
	s := ""
	for i, off := range offsets {
		if i > 0 {
			s += "_"
		}
		s += fmt.Sprintf("%d", off)
	}
	return s
}
