package exchange

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/simclock"
)

func TestVariantStringsAndTable2(t *testing.T) {
	cases := []struct {
		v      Variant
		name   string
		reads  float64
		writes float64
	}{
		{Variant{Levels: 1}, "1l", 1e6, 1e6}, // P^2 at P=1000
		{Variant{Levels: 1, WriteCombining: true}, "1l-wc", 1e6, 1000},
		{Variant{Levels: 2}, "2l", 2 * 1000 * math.Sqrt(1000), 2 * 1000 * math.Sqrt(1000)},
		{Variant{Levels: 2, WriteCombining: true}, "2l-wc", 2 * 1000 * math.Sqrt(1000), 2000},
		{Variant{Levels: 3}, "3l", 3 * 1000 * math.Cbrt(1000), 3 * 1000 * math.Cbrt(1000)},
		{Variant{Levels: 3, WriteCombining: true}, "3l-wc", 3 * 1000 * math.Cbrt(1000), 3000},
	}
	for _, c := range cases {
		if c.v.String() != c.name {
			t.Errorf("String = %q, want %q", c.v.String(), c.name)
		}
		if got := c.v.Reads(1000); math.Abs(got-c.reads)/c.reads > 1e-9 {
			t.Errorf("%s reads = %v, want %v", c.name, got, c.reads)
		}
		if got := c.v.Writes(1000); math.Abs(got-c.writes)/c.writes > 1e-9 {
			t.Errorf("%s writes = %v, want %v", c.name, got, c.writes)
		}
		if c.v.Scans() != c.v.Levels {
			t.Errorf("%s scans = %d", c.name, c.v.Scans())
		}
	}
}

func TestFigure9CostShape(t *testing.T) {
	// §4.4.1: with 4k workers, BasicExchange costs about $100 in requests.
	cost4k := AllVariants[0].RequestCost(4096)
	if cost4k < 80 || cost4k > 120 {
		t.Errorf("1l at 4096 workers = %v, want ~$100", cost4k)
	}
	// Figure 9 orderings (read+write bars): for any worker count, each
	// optimization reduces the plotted cost.
	for _, p := range []int{64, 256, 1024, 4096, 16384} {
		c1 := Variant{Levels: 1}.ReadWriteCost(p)
		c1wc := Variant{Levels: 1, WriteCombining: true}.ReadWriteCost(p)
		c2wc := Variant{Levels: 2, WriteCombining: true}.ReadWriteCost(p)
		if !(c1 > c1wc && c1wc > c2wc) {
			t.Errorf("P=%d: cost ordering violated: %v %v %v", p, c1, c1wc, c2wc)
		}
		// The third level pays off only at scale (its extra writes
		// dominate at small P — the crossover visible in Figure 9).
		if p >= 4096 {
			v3wc := Variant{Levels: 3, WriteCombining: true}
			if c3wc := v3wc.ReadWriteCost(p); c3wc >= c2wc {
				t.Errorf("P=%d: 3l-wc %v not below 2l-wc %v", p, c3wc, c2wc)
			}
		}
	}
	// 2l-wc brings request costs below worker costs in almost all
	// configurations (§4.4.4) — check at 1 GiB × 3 scans upper band.
	p := 4096
	v2wc := Variant{Levels: 2, WriteCombining: true}
	if req, wrk := v2wc.RequestCost(p), v2wc.WorkerCost(p, 1<<30); req > wrk {
		t.Errorf("2l-wc requests %v exceed worker cost %v", req, wrk)
	}
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		p, k int
		want []int
	}{
		{16, 2, []int{4, 4}},
		{64, 3, []int{4, 4, 4}},
		{100, 2, []int{10, 10}},
		{250, 2, []int{25, 10}}, // wait: greedy picks divisor closest to sqrt(250)≈15.8
		{17, 2, []int{17, 1}},   // prime degrades gracefully
	}
	for _, c := range cases {
		got := Factorize(c.p, c.k)
		prod := 1
		for _, f := range got {
			prod *= f
		}
		if prod != c.p {
			t.Fatalf("Factorize(%d,%d) = %v, product %d", c.p, c.k, got, prod)
		}
	}
	// Spot-check exact values where unambiguous.
	if got := Factorize(16, 2); got[0] != 4 || got[1] != 4 {
		t.Errorf("Factorize(16,2) = %v", got)
	}
	if got := Factorize(64, 3); got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Errorf("Factorize(64,3) = %v", got)
	}
}

func TestGridCoordinates(t *testing.T) {
	g := newGrid(12, 2) // factors e.g. [4,3] or [3,4]
	for id := 0; id < 12; id++ {
		// Round-trip: setting each coordinate to itself is identity.
		for dim := 0; dim < 2; dim++ {
			if got := g.withCoord(id, dim, g.coord(id, dim)); got != id {
				t.Fatalf("withCoord identity broken: id=%d dim=%d got=%d", id, dim, got)
			}
		}
		// Group members share the groupID and cover each coordinate once.
		for dim := 0; dim < 2; dim++ {
			ms := g.groupMembers(id, dim)
			seen := map[int]bool{}
			for _, m := range ms {
				if g.groupID(m, dim) != g.groupID(id, dim) {
					t.Fatalf("member %d of %d has different group", m, id)
				}
				seen[g.coord(m, dim)] = true
			}
			if len(seen) != g.factors[dim] {
				t.Fatalf("group of %d dim %d covers %d coords", id, dim, len(seen))
			}
		}
	}
}

func TestParseWcNameRoundTrip(t *testing.T) {
	o := Options{Prefix: "x"}
	name := o.wcName(1, 7, 42, []int64{0, 100, 250, 999})
	sender, offs, err := parseWcName(name)
	if err != nil {
		t.Fatal(err)
	}
	if sender != 42 || len(offs) != 4 || offs[2] != 250 {
		t.Errorf("parsed %d %v", sender, offs)
	}
	if _, _, err := parseWcName("garbage"); err == nil {
		t.Error("garbage parsed")
	}
}

// runFunctionalExchange shuffles rows across P goroutine workers and checks
// every row landed at PartitionOf(key, P).
func runFunctionalExchange(t *testing.T, p int, v Variant, rowsPerWorker int) {
	t.Helper()
	svc := s3.New(s3.Config{})
	buckets := []string{"xb0", "xb1", "xb2"}
	for _, b := range buckets {
		svc.MustCreateBucket(b)
	}
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	opts := DefaultOptions(v, buckets...)
	opts.Prefix = fmt.Sprintf("t-%s-%d", v, p)

	inputs := make([]*columnar.Chunk, p)
	var wantTotal int
	for w := 0; w < p; w++ {
		c := columnar.NewChunk(schema, rowsPerWorker)
		for i := 0; i < rowsPerWorker; i++ {
			c.Columns[0].AppendInt64(int64(w*rowsPerWorker + i))
			c.Columns[1].AppendFloat64(float64(w) + float64(i)/1000)
		}
		inputs[w] = c
		wantTotal += rowsPerWorker
	}

	results := make([]*columnar.Chunk, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for wid := 0; wid < p; wid++ {
		wid := wid
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := s3.NewClient(svc, simenv.NewImmediate())
			wk := Worker{ID: wid, P: p, Client: client}
			results[wid], errs[wid] = wk.Run(opts, inputs[wid], "k")
		}()
	}
	wg.Wait()
	total := 0
	for wid := 0; wid < p; wid++ {
		if errs[wid] != nil {
			t.Fatalf("worker %d: %v", wid, errs[wid])
		}
		got := results[wid]
		total += got.NumRows()
		for i := 0; i < got.NumRows(); i++ {
			k := got.Columns[0].Int64s[i]
			if PartitionOf(k, p) != wid {
				t.Fatalf("row with key %d (partition %d) ended at worker %d", k, PartitionOf(k, p), wid)
			}
		}
	}
	if total != wantTotal {
		t.Fatalf("total rows after exchange = %d, want %d", total, wantTotal)
	}
}

func TestBasicExchangeFunctional(t *testing.T) {
	runFunctionalExchange(t, 6, Variant{Levels: 1}, 40)
}

func TestBasicExchangeWriteCombining(t *testing.T) {
	runFunctionalExchange(t, 6, Variant{Levels: 1, WriteCombining: true}, 40)
}

func TestTwoLevelExchangeFunctional(t *testing.T) {
	runFunctionalExchange(t, 16, Variant{Levels: 2}, 25)
}

func TestTwoLevelWriteCombining(t *testing.T) {
	runFunctionalExchange(t, 16, Variant{Levels: 2, WriteCombining: true}, 25)
}

func TestThreeLevelExchangeFunctional(t *testing.T) {
	runFunctionalExchange(t, 27, Variant{Levels: 3, WriteCombining: true}, 10)
}

func TestNonPerfectSquareWorkerCount(t *testing.T) {
	runFunctionalExchange(t, 12, Variant{Levels: 2, WriteCombining: true}, 15)
}

func TestExchangeRequestCountsMatchModel(t *testing.T) {
	// The executed request pattern must match Table 2's formulas.
	for _, v := range []Variant{{Levels: 1}, {Levels: 1, WriteCombining: true}, {Levels: 2}, {Levels: 2, WriteCombining: true}} {
		meter := pricing.NewCostMeter()
		svc := s3.New(s3.Config{Meter: meter})
		buckets := []string{"b0", "b1"}
		for _, b := range buckets {
			svc.MustCreateBucket(b)
		}
		const p = 16
		opts := DefaultOptions(v, buckets...)
		schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
		var wg sync.WaitGroup
		for wid := 0; wid < p; wid++ {
			wid := wid
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := columnar.NewChunk(schema, 8)
				for i := 0; i < 8; i++ {
					c.Columns[0].AppendInt64(int64(wid*8 + i))
				}
				wk := Worker{ID: wid, P: p, Client: s3.NewClient(svc, simenv.NewImmediate())}
				if _, err := wk.Run(opts, c, "k"); err != nil {
					t.Errorf("worker %d: %v", wid, err)
				}
			}()
		}
		wg.Wait()
		writes := meter.Count(pricing.LabelS3Write)
		wantWrites := int64(v.Writes(p))
		if writes != wantWrites {
			t.Errorf("%s: writes = %d, want %d", v, writes, wantWrites)
		}
		// Reads include one HEAD (WaitFor) per file in the non-wc path, so
		// only check the lower bound and the wc path's range reads.
		reads := meter.Count(pricing.LabelS3Read)
		if minReads := int64(v.Reads(p)); reads < minReads {
			t.Errorf("%s: reads = %d, want >= %d", v, reads, minReads)
		}
	}
}

func TestSyntheticExchangeDES(t *testing.T) {
	// 64 workers × 2-level-wc on the DES kernel with rate limits and
	// latencies enabled: completes, conserves bytes, stays deterministic.
	for trial := 0; trial < 2; trial++ {
		meter := pricing.NewCostMeter()
		k := simclock.New()
		svc := s3.New(s3.DefaultAWSConfig(meter, 7))
		var buckets []string
		for i := 0; i < 10; i++ {
			b := fmt.Sprintf("shard-%d", i)
			buckets = append(buckets, b)
			svc.MustCreateBucket(b)
		}
		const p = 64
		const bytesPer = int64(4 << 20)
		opts := DefaultOptions(Variant{Levels: 2, WriteCombining: true}, buckets...)
		opts.Poll = 100 * time.Millisecond
		var mu sync.Mutex
		var got []int64
		for wid := 0; wid < p; wid++ {
			wid := wid
			k.Go(fmt.Sprintf("w%d", wid), func(proc *simclock.Proc) {
				client := s3.NewClient(svc, proc)
				wk := Worker{ID: wid, P: p, Client: client}
				n, err := wk.RunSynthetic(opts, bytesPer)
				if err != nil {
					t.Errorf("worker %d: %v", wid, err)
					return
				}
				mu.Lock()
				got = append(got, n)
				mu.Unlock()
			})
		}
		end := k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		if len(got) != p {
			t.Fatalf("only %d workers finished", len(got))
		}
		var total int64
		for _, n := range got {
			total += n
		}
		// Floor division loses at most a few bytes per worker per round.
		if total < bytesPer*p*9/10 {
			t.Errorf("total received %d « sent %d", total, bytesPer*p)
		}
		if end <= 0 || end > 5*time.Minute {
			t.Errorf("virtual duration = %v", end)
		}
	}
}

// Property: PartitionOf spreads sequential keys evenly-ish.
func TestPropertyPartitionBalance(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%63 + 2
		counts := make([]int, p)
		n := p * 200
		for k := 0; k < n; k++ {
			counts[PartitionOf(int64(k), p)]++
		}
		lo := sort.SearchInts([]int{}, 0) // noop to keep sort imported
		_ = lo
		for _, c := range counts {
			if c < 100 || c > 300 { // expected 200 ± 50%
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
