// Package exchange implements Lambada's purely serverless exchange
// operator family (§4.4): workers that cannot accept connections shuffle
// data through S3. The basic algorithm needs a quadratic number of requests;
// the paper's two optimizations — multi-level exchange and write combining —
// reduce the request complexity to sub-quadratic, bringing request costs
// below worker costs (Figure 9) and bypassing S3 rate limits via bucket
// sharding (§4.4.1).
package exchange

import (
	"fmt"
	"math"

	"lambada/internal/awssim/pricing"
)

// Variant identifies one exchange algorithm of Table 2. The JSON tags are
// the wire form stage plans and worker payloads ship boundary variants in.
type Variant struct {
	// Levels is the number of exchange rounds (1 = BasicExchange).
	Levels int `json:"levels"`
	// WriteCombining writes all partitions of a worker into a single file
	// whose part offsets are encoded in the file name (§4.4.3).
	WriteCombining bool `json:"writeCombining,omitempty"`
	// Buckets, when positive, narrows the shard-bucket pool the exchange
	// spreads objects over to its first Buckets names: sharding (§4.4.2)
	// exists only to stay under S3's per-prefix request-rate ceilings, and
	// beyond that point extra buckets just multiply the List bill (every
	// receiver lists min(S, B) buckets). stageplan.ChooseVariant picks the
	// smallest count whose per-bucket round pressure fits the budget. Zero
	// keeps the caller's full pool (the pre-PR10 behavior).
	Buckets int `json:"buckets,omitempty"`
}

// String renders like the paper: "1l", "2l-wc", ...
func (v Variant) String() string {
	s := fmt.Sprintf("%dl", v.Levels)
	if v.WriteCombining {
		s += "-wc"
	}
	return s
}

// AllVariants lists the six algorithms of Table 2 / Figure 9.
var AllVariants = []Variant{
	{Levels: 1}, {Levels: 1, WriteCombining: true},
	{Levels: 2}, {Levels: 2, WriteCombining: true},
	{Levels: 3}, {Levels: 3, WriteCombining: true},
}

// Reads returns the total read-request count for P workers (Table 2):
// k·P·P^(1/k).
func (v Variant) Reads(p int) float64 {
	k := float64(v.Levels)
	return k * float64(p) * math.Pow(float64(p), 1/k)
}

// Writes returns the total write-request count (Table 2): k·P·P^(1/k), or
// k·P with write combining.
func (v Variant) Writes(p int) float64 {
	k := float64(v.Levels)
	if v.WriteCombining {
		return k * float64(p)
	}
	return k * float64(p) * math.Pow(float64(p), 1/k)
}

// Lists returns the list-request count, O(P) for all variants (write
// combining discovers file names and offsets via lists).
func (v Variant) Lists(p int) float64 {
	return float64(v.Levels) * float64(p)
}

// Scans returns how many times the algorithm reads and writes the input
// (one per level).
func (v Variant) Scans() int { return v.Levels }

// RequestCost prices all requests of one exchange of P workers, including
// the list requests of write combining.
func (v Variant) RequestCost(p int) pricing.USD {
	c := v.ReadWriteCost(p)
	if v.WriteCombining {
		c += pricing.USD(v.Lists(p)) * pricing.S3List
	}
	return c
}

// ReadWriteCost prices only reads and writes — the two bar components
// Figure 9 plots.
func (v Variant) ReadWriteCost(p int) pricing.USD {
	return pricing.USD(v.Reads(p))*pricing.S3Read +
		pricing.USD(v.Writes(p))*pricing.S3Write
}

// WorkerCost estimates the cost of running the P workers for the exchange
// itself, as in Figure 9's horizontal band: each worker moves bytesPerWorker
// per scan at 85 MiB/s and costs $3.3e-5 per second (2 GiB workers).
func (v Variant) WorkerCost(p int, bytesPerWorker int64) pricing.USD {
	const rate = 85 * (1 << 20) // 85 MiB/s
	const usdPerWorkerSecond = 3.3e-5
	// Each level reads and writes the partitions once.
	seconds := float64(v.Scans()) * 2 * float64(bytesPerWorker) / rate
	return pricing.USD(float64(p) * seconds * usdPerWorkerSecond)
}

// RequestsPerBucketPerRound returns the per-bucket request rate pressure of
// one round: P workers spreading P^(1/k) requests each over B buckets
// (§4.4.2: "P·sqrt(P)/B per round" for two levels).
func (v Variant) RequestsPerBucketPerRound(p, buckets int) float64 {
	k := float64(v.Levels)
	if buckets < 1 {
		buckets = 1
	}
	return float64(p) * math.Pow(float64(p), 1/k) / float64(buckets)
}

// RequestCount is the exact billed S3 request breakdown of one S→P stage
// boundary under a variant — the analytic counterpart of what the pricing
// meter observes. Unlike the Table 2 asymptotics above (symmetric P-worker
// grid exchange), these counts are exact for the asymmetric stage-boundary
// protocol of stage.go/multilevel.go in a fault-free run: collects happen
// after the producing fleet sealed, so every discovery List runs exactly one
// round, and empty partitions still ship (schema-only lpq blobs), so no
// request is ever skipped data-dependently. The scale tests hold the meter
// to these numbers integer-exactly.
type RequestCount struct {
	Puts, Gets, Lists int64
}

// Total sums all billed requests.
func (c RequestCount) Total() int64 { return c.Puts + c.Gets + c.Lists }

// Cost prices the request breakdown.
func (c RequestCount) Cost() pricing.USD {
	return pricing.USD(c.Puts)*pricing.S3Write +
		pricing.USD(c.Gets)*pricing.S3Read +
		pricing.USD(c.Lists)*pricing.S3List
}

// Requests predicts the exact billed request counts of one S-sender,
// P-partition stage boundary over the given shard-bucket count. Writing G
// for Groups(P) and nb for min(S, buckets) (contiguous sender IDs cover
// min(S, B) distinct shard buckets):
//
//	1l       S·(P+1) puts   P·S gets       P·nb lists
//	1l-wc    S puts         P·S gets       P·nb lists
//	2l       S·G+S+P+G puts G·S+P gets     G·nb+P lists
//	2l-wc    S+G puts       G·S+P gets     G·nb+P lists
//
// The multi-level rows are the paper's O(k·P·P^(1/k)) shape: the S·P term is
// gone — receivers touch one group object instead of S sender objects.
// Stage boundaries flatten Levels > 2 to one regroup round, so k > 2
// predicts like k = 2.
func (v Variant) Requests(senders, partitions, buckets int) RequestCount {
	s, p := int64(senders), int64(partitions)
	if v.Buckets > 0 && v.Buckets < buckets {
		buckets = v.Buckets
	}
	if buckets < 1 {
		buckets = 1
	}
	nb := s
	if int64(buckets) < nb {
		nb = int64(buckets)
	}
	if v.Levels >= 2 {
		g := int64(Groups(partitions))
		rc := RequestCount{Puts: s + g, Gets: g*s + p, Lists: g*nb + p}
		if !v.WriteCombining {
			rc.Puts = s*g + s + p + g
		}
		return rc
	}
	rc := RequestCount{Puts: s, Gets: p * s, Lists: p * nb}
	if !v.WriteCombining {
		rc.Puts = s*p + s
	}
	return rc
}

// Factorize splits P into k near-equal factors (s1 ≥ s2 ≥ ... with
// s1·s2·...·sk = P), the grid side lengths of the k-level exchange. The
// factors are chosen greedily as the divisor of the remaining product
// closest to its k-th root, which degrades gracefully for awkward P (a
// prime P yields P×1×...; the algorithm then equals fewer levels).
func Factorize(p, k int) []int {
	out := make([]int, 0, k)
	rem := p
	for level := k; level >= 1; level-- {
		if level == 1 {
			out = append(out, rem)
			break
		}
		target := math.Pow(float64(rem), 1/float64(level))
		best := 1
		bestDist := math.Inf(1)
		for d := 1; d <= rem; d++ {
			if rem%d != 0 {
				continue
			}
			dist := math.Abs(float64(d) - target)
			if dist < bestDist {
				best, bestDist = d, dist
			}
		}
		out = append(out, best)
		rem /= best
	}
	return out
}
