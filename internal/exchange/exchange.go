package exchange

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Options configure one exchange execution.
type Options struct {
	// Variant selects the algorithm (levels × write combining).
	Variant Variant
	// Buckets is the pool of pre-created bucket names the file matrix is
	// sharded over (§4.4.1: encode IDs in the bucket name to multiply the
	// rate limit). Must be non-empty.
	Buckets []string
	// Prefix namespaces this exchange's objects (e.g. a query ID).
	Prefix string
	// Poll is the receiver's retry interval while waiting for files. In
	// functional mode the interval is an upper bound: poll sleeps park on
	// the completion signal s3.Put broadcasts (simenv.Notify) and wake the
	// moment a sender's file lands, with the timed poll as fallback.
	Poll time.Duration
	// MaxWait bounds the receiver's total wait per file.
	MaxWait time.Duration
}

// shardPool narrows the bucket pool to the variant's chosen shard count
// (Variant.Buckets). Applied at every stage-boundary entry point so that a
// plan-chosen B takes effect no matter which worker role executes the
// boundary; sweeps intentionally keep the full pool (debris from an earlier,
// wider choice must still be found).
func (o Options) shardPool() Options {
	if n := o.Variant.Buckets; n > 0 && n < len(o.Buckets) {
		o.Buckets = o.Buckets[:n]
	}
	return o
}

// DefaultOptions returns sensible functional-mode settings.
func DefaultOptions(variant Variant, buckets ...string) Options {
	return Options{
		Variant: variant,
		Buckets: buckets,
		Prefix:  "xchg",
		Poll:    20 * time.Millisecond,
		MaxWait: 2 * time.Minute,
	}
}

// grid maps worker/partition IDs onto the k-dimensional mixed-radix grid of
// the multi-level exchange (§4.4.2).
type grid struct{ factors []int }

func newGrid(p, levels int) grid { return grid{factors: Factorize(p, levels)} }

// coord returns coordinate dim of id.
func (g grid) coord(id, dim int) int {
	for d := 0; d < dim; d++ {
		id /= g.factors[d]
	}
	return id % g.factors[dim]
}

// withCoord returns id with coordinate dim replaced by c.
func (g grid) withCoord(id, dim, c int) int {
	stride := 1
	for d := 0; d < dim; d++ {
		stride *= g.factors[d]
	}
	old := g.coord(id, dim)
	return id + (c-old)*stride
}

// groupID collapses id by removing dimension dim — workers sharing a
// groupID in dim form one exchange group.
func (g grid) groupID(id, dim int) int {
	out, stride := 0, 1
	for d := range g.factors {
		if d == dim {
			continue
		}
		out += g.coord(id, d) * stride
		stride *= g.factors[d]
	}
	return out
}

// groupMembers lists the worker IDs in id's group of dimension dim.
func (g grid) groupMembers(id, dim int) []int {
	out := make([]int, g.factors[dim])
	for c := 0; c < g.factors[dim]; c++ {
		out[c] = g.withCoord(id, dim, c)
	}
	return out
}

// Hash64 is the partitioning hash (splitmix64 finalizer), shared with the
// engine's hash-join table.
func Hash64(x int64) uint64 { return columnar.Hash64(x) }

// PartitionOf maps a key value to its final partition in [0, P).
func PartitionOf(key int64, p int) int { return int(Hash64(key) % uint64(p)) }

// Worker is one participant's context.
type Worker struct {
	ID     int
	P      int
	Client *s3.Client
}

func (o *Options) bucketFor(round, group int) string {
	return o.Buckets[(round*31+group)%len(o.Buckets)]
}

func (o *Options) fileName(round, group, sender, receiver int) string {
	return fmt.Sprintf("%s/r%d/g%d/snd%d/rcv%d", o.Prefix, round, group, sender, receiver)
}

func (o *Options) wcPrefix(round, group int) string {
	return fmt.Sprintf("%s/r%d/g%d/snd", o.Prefix, round, group)
}

// wcName encodes the sender and the cumulative part offsets in the file
// name (§4.4.3 second variant: "we encode the offsets into the file name").
func (o *Options) wcName(round, group, sender int, offsets []int64) string {
	parts := make([]string, len(offsets))
	for i, off := range offsets {
		parts[i] = strconv.FormatInt(off, 10)
	}
	return fmt.Sprintf("%s%d-off%s", o.wcPrefix(round, group), sender, strings.Join(parts, "_"))
}

// parseWcName extracts sender and offsets from a write-combined file name.
func parseWcName(key string) (sender int, offsets []int64, err error) {
	base := key[strings.LastIndex(key, "/")+1:]
	if !strings.HasPrefix(base, "snd") {
		return 0, nil, fmt.Errorf("exchange: bad wc file name %q", key)
	}
	rest := base[3:]
	i := strings.Index(rest, "-off")
	if i < 0 {
		return 0, nil, fmt.Errorf("exchange: bad wc file name %q", key)
	}
	sender, err = strconv.Atoi(rest[:i])
	if err != nil {
		return 0, nil, err
	}
	for _, s := range strings.Split(rest[i+4:], "_") {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, nil, err
		}
		offsets = append(offsets, v)
	}
	return sender, offsets, nil
}

// Run executes the exchange for one worker on real data: rows of input are
// routed by the hash of the key column so that afterwards every row with
// PartitionOf(key, P) == w.ID resides at this worker. All P workers must
// call Run concurrently (goroutines or DES processes).
func (w Worker) Run(opts Options, input *columnar.Chunk, key string) (*columnar.Chunk, error) {
	opts = opts.shardPool()
	if len(opts.Buckets) == 0 {
		return nil, errors.New("exchange: no buckets configured")
	}
	if input.Column(key) == nil {
		return nil, fmt.Errorf("exchange: key column %q missing", key)
	}
	g := newGrid(w.P, opts.Variant.Levels)
	cur := input
	for round := 0; round < opts.Variant.Levels; round++ {
		next, err := w.runRound(opts, g, round, cur, key)
		if err != nil {
			return nil, fmt.Errorf("exchange: worker %d round %d: %w", w.ID, round, err)
		}
		cur = next
	}
	return cur, nil
}

func (w Worker) runRound(opts Options, g grid, round int, cur *columnar.Chunk, key string) (*columnar.Chunk, error) {
	members := g.groupMembers(w.ID, round)
	group := g.groupID(w.ID, round)
	bucket := opts.bucketFor(round, group)

	// In-memory partitioning by the receiver within this round's group.
	sel := make(map[int][]int) // receiver -> row indices
	keys := cur.Column(key)
	for i := 0; i < cur.NumRows(); i++ {
		f := PartitionOf(keys.Int64At(i), w.P)
		recv := g.withCoord(w.ID, round, g.coord(f, round))
		sel[recv] = append(sel[recv], i)
	}

	// Serialize each partition as an lpq blob.
	blobs := make(map[int][]byte, len(members))
	for _, m := range members {
		part := cur.Gather(sel[m])
		data, err := lpq.WriteFile(cur.Schema, lpq.WriterOptions{}, part)
		if err != nil {
			return nil, err
		}
		blobs[m] = data
	}

	if opts.Variant.WriteCombining {
		// One combined file; cumulative offsets (member-order) in the name.
		var combined []byte
		offsets := make([]int64, 0, len(members)+1)
		for _, m := range members {
			offsets = append(offsets, int64(len(combined)))
			combined = append(combined, blobs[m]...)
		}
		offsets = append(offsets, int64(len(combined)))
		name := opts.wcName(round, group, w.ID, offsets)
		if err := w.Client.Put(bucket, name, combined); err != nil {
			return nil, err
		}
		return w.receiveCombined(opts, g, round, group, bucket, members, cur.Schema)
	}

	// Basic variant: one file per (sender, receiver) pair.
	for _, m := range members {
		if err := w.Client.Put(bucket, opts.fileName(round, group, w.ID, m), blobs[m]); err != nil {
			return nil, err
		}
	}
	out := columnar.NewChunk(cur.Schema, 0)
	for _, m := range members {
		name := opts.fileName(round, group, m, w.ID)
		if _, err := w.Client.WaitFor(bucket, name, opts.Poll, opts.MaxWait); err != nil {
			return nil, fmt.Errorf("waiting for %s: %w", name, err)
		}
		data, _, err := w.Client.Get(bucket, name, 1)
		if err != nil {
			return nil, err
		}
		if err := appendLpqBlob(out, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// wcSlice is one sender's byte range of a combined object for one slot.
type wcSlice struct {
	sender int
	bucket string
	key    string
	lo, hi int64
}

// listCombined polls until all senders' combined objects exist under
// prefix in the given shard buckets, then returns slot's byte range of
// each in ascending sender order — the shared receive protocol of the grid
// exchange and the stage boundaries (§4.4.3: offsets encoded in the file
// name).
func listCombined(client *s3.Client, opts Options, buckets []string, prefix string, senders, slots, slot int) ([]wcSlice, error) {
	type hit struct {
		bucket string
		key    string
	}
	deadline := client.Env().Now() + opts.MaxWait
	var found []hit
	for {
		found = found[:0]
		for _, b := range buckets {
			entries, err := client.List(b, prefix)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				found = append(found, hit{bucket: b, key: e.Key})
			}
		}
		if len(found) >= senders {
			break
		}
		if client.Env().Now() >= deadline {
			return nil, fmt.Errorf("exchange: %d/%d combined files after %v", len(found), senders, opts.MaxWait)
		}
		// Poll-sized sleeps park on the completion signal s3.Put
		// broadcasts (simenv.Notify); the timed poll is the fallback.
		client.Env().Sleep(opts.Poll)
	}
	files := make([]wcSlice, 0, len(found))
	for _, e := range found {
		sender, offsets, err := parseWcName(e.key)
		if err != nil {
			return nil, err
		}
		if len(offsets) != slots+1 {
			return nil, fmt.Errorf("exchange: %d offsets for %d slots in %q", len(offsets), slots, e.key)
		}
		files = append(files, wcSlice{sender: sender, bucket: e.bucket, key: e.key, lo: offsets[slot], hi: offsets[slot+1]})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].sender < files[j].sender })
	return files, nil
}

// receiveCombined lists the group's combined files (repeating until all
// senders appear), then range-reads this worker's slice of each.
func (w Worker) receiveCombined(opts Options, g grid, round, group int, bucket string, members []int, schema *columnar.Schema) (*columnar.Chunk, error) {
	// This worker's slot within the group (member order).
	slot := -1
	for i, m := range members {
		if m == w.ID {
			slot = i
			break
		}
	}
	files, err := listCombined(w.Client, opts, []string{bucket}, opts.wcPrefix(round, group), len(members), len(members), slot)
	if err != nil {
		return nil, err
	}
	out := columnar.NewChunk(schema, 0)
	for _, f := range files {
		if f.hi == f.lo {
			continue
		}
		data, _, err := w.Client.GetRange(f.bucket, f.key, f.lo, f.hi-f.lo, 1)
		if err != nil {
			return nil, err
		}
		if err := appendLpqBlob(out, data); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func appendLpqBlob(dst *columnar.Chunk, blob []byte) error {
	r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return err
	}
	c, err := r.ReadAll()
	if err != nil {
		return err
	}
	for j := range dst.Columns {
		switch dst.Columns[j].Type {
		case columnar.Int64:
			dst.Columns[j].Int64s = append(dst.Columns[j].Int64s, c.Columns[j].Int64s...)
		case columnar.Float64:
			dst.Columns[j].Float64s = append(dst.Columns[j].Float64s, c.Columns[j].Float64s...)
		case columnar.Bool:
			dst.Columns[j].Bools = append(dst.Columns[j].Bools, c.Columns[j].Bools...)
		}
	}
	return nil
}

// RoundTrace is the phase breakdown of one exchange round (Figure 13).
type RoundTrace struct {
	Write time.Duration // writing this worker's partition file(s)
	Wait  time.Duration // polling until all senders' files exist
	Read  time.Duration // reading the incoming partitions
}

// Trace records a worker's per-phase timings.
type Trace struct {
	Rounds []RoundTrace
	Total  time.Duration
}

// RunSynthetic executes the exchange's request pattern on size-only
// objects: the worker holds inputBytes of partition data, writes its round
// files, and reads its incoming ranges. Used by the DES performance
// experiments (Table 3, Figure 13) where object contents are irrelevant but
// request counts, transfer volumes, rate limits and latencies are exact.
// It returns the number of bytes received in the final round.
func (w Worker) RunSynthetic(opts Options, inputBytes int64) (int64, error) {
	n, _, err := w.RunSyntheticTraced(opts, inputBytes)
	return n, err
}

// RunSyntheticTraced is RunSynthetic with a per-phase breakdown.
func (w Worker) RunSyntheticTraced(opts Options, inputBytes int64) (int64, *Trace, error) {
	if len(opts.Buckets) == 0 {
		return 0, nil, errors.New("exchange: no buckets configured")
	}
	env := w.Client.Env()
	trace := &Trace{}
	begin := env.Now()
	g := newGrid(w.P, opts.Variant.Levels)
	cur := inputBytes
	for round := 0; round < opts.Variant.Levels; round++ {
		members := g.groupMembers(w.ID, round)
		group := g.groupID(w.ID, round)
		bucket := opts.bucketFor(round, group)
		per := cur / int64(len(members))
		var rt RoundTrace

		if opts.Variant.WriteCombining {
			writeStart := env.Now()
			offsets := make([]int64, 0, len(members)+1)
			for i := range members {
				offsets = append(offsets, int64(i)*per)
			}
			offsets = append(offsets, cur)
			name := opts.wcName(round, group, w.ID, offsets)
			if err := w.Client.PutSynthetic(bucket, name, cur); err != nil {
				return 0, trace, err
			}
			rt.Write = env.Now() - writeStart

			waitStart := env.Now()
			prefix := opts.wcPrefix(round, group)
			deadline := env.Now() + opts.MaxWait
			var entries []s3.ListEntry
			for {
				var err error
				entries, err = w.Client.List(bucket, prefix)
				if err != nil {
					return 0, trace, err
				}
				if len(entries) >= len(members) {
					break
				}
				if env.Now() >= deadline {
					return 0, trace, errors.New("exchange: synthetic wc wait timeout")
				}
				env.Sleep(opts.Poll)
			}
			rt.Wait = env.Now() - waitStart

			readStart := env.Now()
			slot := indexOf(members, w.ID)
			var got int64
			for _, e := range entries {
				_, offsets, err := parseWcName(e.Key)
				if err != nil {
					return 0, trace, err
				}
				lo, hi := offsets[slot], offsets[slot+1]
				if hi <= lo {
					continue
				}
				_, n, err := w.Client.GetRange(bucket, e.Key, lo, hi-lo, 1)
				if err != nil {
					return 0, trace, err
				}
				got += n
			}
			rt.Read = env.Now() - readStart
			trace.Rounds = append(trace.Rounds, rt)
			cur = got
			continue
		}

		writeStart := env.Now()
		for _, m := range members {
			if err := w.Client.PutSynthetic(bucket, opts.fileName(round, group, w.ID, m), per); err != nil {
				return 0, trace, err
			}
		}
		rt.Write = env.Now() - writeStart
		var got int64
		for _, m := range members {
			name := opts.fileName(round, group, m, w.ID)
			waitStart := env.Now()
			n, err := w.Client.WaitFor(bucket, name, opts.Poll, opts.MaxWait)
			if err != nil {
				return 0, trace, err
			}
			rt.Wait += env.Now() - waitStart
			readStart := env.Now()
			if _, _, err := w.Client.GetRange(bucket, name, 0, n, 1); err != nil {
				return 0, trace, err
			}
			rt.Read += env.Now() - readStart
			got += n
		}
		trace.Rounds = append(trace.Rounds, rt)
		cur = got
	}
	trace.Total = env.Now() - begin
	return cur, trace, nil
}

func indexOf(list []int, v int) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}
