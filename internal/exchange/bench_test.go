package exchange

import (
	"fmt"
	"sync"
	"testing"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
)

// BenchmarkFunctionalExchange shuffles real rows among goroutine workers.
func BenchmarkFunctionalExchange(b *testing.B) {
	const workers = 16
	const rows = 500
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	for i := 0; i < b.N; i++ {
		svc := s3.New(s3.Config{})
		svc.MustCreateBucket("b0")
		svc.MustCreateBucket("b1")
		opts := DefaultOptions(Variant{Levels: 2, WriteCombining: true}, "b0", "b1")
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := columnar.NewChunk(schema, rows)
				for r := 0; r < rows; r++ {
					c.Columns[0].AppendInt64(int64(w*rows + r))
				}
				wk := Worker{ID: w, P: workers, Client: s3.NewClient(svc, simenv.NewImmediate())}
				if _, err := wk.Run(opts, c, "k"); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkSyntheticExchangeDES measures the DES exchange at 256 workers.
func BenchmarkSyntheticExchangeDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		svc := s3.New(s3.DefaultAWSConfig(nil, int64(i)))
		var buckets []string
		for j := 0; j < 16; j++ {
			name := fmt.Sprintf("s%d", j)
			buckets = append(buckets, name)
			svc.MustCreateBucket(name)
		}
		opts := DefaultOptions(Variant{Levels: 2, WriteCombining: true}, buckets...)
		for w := 0; w < 256; w++ {
			w := w
			k.Go("w", func(p *simclock.Proc) {
				client := s3.NewClient(svc, p, s3.WithShaper(netmodel.DefaultLambdaNet(), 2048))
				wk := Worker{ID: w, P: 256, Client: client}
				if _, err := wk.RunSynthetic(opts, 64<<20); err != nil {
					b.Error(err)
				}
			})
		}
		k.Run()
	}
}

// BenchmarkPartitionHash measures the partitioning hash.
func BenchmarkPartitionHash(b *testing.B) {
	var acc int
	for i := 0; i < b.N; i++ {
		acc += PartitionOf(int64(i), 1024)
	}
	_ = acc
}
