package simclock

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw kernel throughput: how many simulated
// events per second the DES can process (the budget for 4096-worker fleets).
func BenchmarkEventDispatch(b *testing.B) {
	k := New()
	k.Go("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkManyProcs measures spawning and completing a fleet of processes.
func BenchmarkManyProcs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		for w := 0; w < 1000; w++ {
			k.Go("w", func(p *Proc) { p.Sleep(time.Second) })
		}
		k.Run()
	}
}

// BenchmarkSemaphoreContention measures the queueing primitives.
func BenchmarkSemaphoreContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New()
		sem := k.NewSemaphore(4)
		for w := 0; w < 256; w++ {
			k.Go("w", func(p *Proc) {
				sem.Acquire(p)
				p.Sleep(time.Millisecond)
				sem.Release()
			})
		}
		k.Run()
	}
}
