package simclock

import "time"

// Synchronization primitives for simulated processes. All primitives are
// cooperative: they must only be used from running processes (or, for
// non-blocking operations such as Signal.Broadcast and Future.Set, from any
// point where the caller holds the single execution token — i.e. from a
// running process).

// Signal is a broadcast condition: processes wait until another process
// broadcasts. Each broadcast wakes every currently waiting process at the
// current virtual instant.
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a Signal bound to k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Wait parks p until the next Broadcast.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.yield()
}

// WaitTimeout parks p until the next Broadcast or until d of virtual time
// passed, whichever comes first, and reports whether the broadcast arrived.
// The broadcast cancels the pending timer, so a signalled process wakes at
// the broadcast instant — not at the next timer boundary.
func (s *Signal) WaitTimeout(p *Proc, d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	s.waiters = append(s.waiters, p)
	p.notified = false
	p.k.scheduleAt(p.k.now+d, p)
	p.yield()
	if p.notified {
		p.notified = false
		return true
	}
	// Timed out: withdraw from the waiter list so a later broadcast cannot
	// wake a process that has moved on.
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
	return false
}

// Broadcast wakes all waiting processes at the current instant. Waiters
// parked with a timeout have their timer cancelled.
func (s *Signal) Broadcast() {
	for _, w := range s.waiters {
		w.notified = true
		s.k.wakeCancel(w)
	}
	s.waiters = nil
}

// Waiting returns the number of processes currently parked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }

// Semaphore is a counting semaphore with FIFO wake-up order.
type Semaphore struct {
	k        *Kernel
	capacity int
	inUse    int
	queue    []*Proc
}

// NewSemaphore returns a semaphore with the given capacity.
func (k *Kernel) NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		panic("simclock: semaphore capacity must be >= 1")
	}
	return &Semaphore{k: k, capacity: capacity}
}

// Acquire blocks p until a slot is free, then takes it.
func (s *Semaphore) Acquire(p *Proc) {
	for s.inUse >= s.capacity {
		s.queue = append(s.queue, p)
		p.yield()
	}
	s.inUse++
}

// TryAcquire takes a slot if one is free and reports whether it did.
func (s *Semaphore) TryAcquire() bool {
	if s.inUse >= s.capacity {
		return false
	}
	s.inUse++
	return true
}

// Release frees a slot and wakes the longest-waiting process, if any.
func (s *Semaphore) Release() {
	if s.inUse <= 0 {
		panic("simclock: semaphore released below zero")
	}
	s.inUse--
	if len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.k.wake(w)
	}
}

// InUse returns the number of held slots.
func (s *Semaphore) InUse() int { return s.inUse }

// WaitGroup waits for a counter to reach zero.
type WaitGroup struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to k.
func (k *Kernel) NewWaitGroup() *WaitGroup { return &WaitGroup{k: k} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("simclock: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.release()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the counter reaches zero. Returns immediately if it
// already is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.waiters = append(wg.waiters, p)
		p.yield()
	}
}

func (wg *WaitGroup) release() {
	for _, w := range wg.waiters {
		wg.k.wake(w)
	}
	wg.waiters = nil
}

// Queue is an unbounded FIFO of arbitrary items with blocking Get, modeling
// e.g. a message queue's receive path.
type Queue struct {
	k       *Kernel
	items   []interface{}
	waiters []*Proc
}

// NewQueue returns an empty queue bound to k.
func (k *Kernel) NewQueue() *Queue { return &Queue{k: k} }

// Put appends an item and wakes one waiting consumer, if any.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wake(w)
	}
}

// Get blocks p until an item is available, then removes and returns the
// oldest one.
func (q *Queue) Get(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.yield()
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and other consumers wait, cascade a wake-up so that
	// bursts of Puts before any consumer ran are fully drained.
	if len(q.items) > 0 && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.wake(w)
	}
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Future is a write-once value that processes can wait for.
type Future struct {
	k       *Kernel
	set     bool
	val     interface{}
	waiters []*Proc
}

// NewFuture returns an unset future bound to k.
func (k *Kernel) NewFuture() *Future { return &Future{k: k} }

// Set stores the value and wakes all waiters. Setting twice panics.
func (f *Future) Set(v interface{}) {
	if f.set {
		panic("simclock: future set twice")
	}
	f.set = true
	f.val = v
	for _, w := range f.waiters {
		f.k.wake(w)
	}
	f.waiters = nil
}

// IsSet reports whether the future has a value.
func (f *Future) IsSet() bool { return f.set }

// Get blocks p until the future is set and returns the value.
func (f *Future) Get(p *Proc) interface{} {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.yield()
	}
	return f.val
}
