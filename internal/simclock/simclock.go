// Package simclock provides a deterministic discrete-event simulation (DES)
// kernel with virtual time.
//
// Processes are ordinary goroutines scheduled cooperatively: exactly one
// process runs at any instant, and control returns to the kernel whenever a
// process blocks on virtual time (Sleep) or on a synchronization primitive
// (Signal, Semaphore, WaitGroup, Queue, Future). Events at the same virtual
// instant are ordered by creation sequence, which makes every run
// deterministic regardless of how the Go runtime schedules goroutines.
//
// The kernel is the substrate for the cloud-service simulators in
// internal/awssim: worker fleets of thousands of serverless functions and
// multi-terabyte shuffles execute in milliseconds of wall-clock time while
// observing the calibrated latency, bandwidth, and pricing models.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel is a discrete-event simulation scheduler. Construct with New.
type Kernel struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	parked chan struct{}
	live   int
	steps  uint64
	limits Limits
	// compWaiters are the processes parked in WaitNotifyKey, each with the
	// topic it subscribed to. compWakeups counts every process woken by a
	// completion broadcast — the contention metric the keyed signal exists
	// to reduce.
	compWaiters []compWaiter
	compWakeups uint64
	// unkeyedCompletion disables topic matching: every broadcast wakes
	// every waiter, the pre-keying behavior. Kept as a kernel flag so
	// regression tests can measure the keyed/unkeyed wakeup ratio.
	unkeyedCompletion bool
}

type compWaiter struct {
	p     *Proc
	topic string
}

// Limits bounds a simulation run to protect against runaway models.
type Limits struct {
	// MaxSteps aborts Run (with a panic) after this many dispatched events.
	// Zero means no limit.
	MaxSteps uint64
	// MaxTime aborts Run once virtual time passes this horizon. Zero means
	// no limit.
	MaxTime time.Duration
}

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
	// gen is the process's event generation at schedule time; a mismatch at
	// dispatch means the event was cancelled (the process was woken through
	// another path, e.g. a Signal broadcast superseding a timeout).
	gen uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// SetLimits installs run limits. Must be called before Run.
func (k *Kernel) SetLimits(l Limits) { k.limits = l }

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Steps returns the number of events dispatched so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Proc is a simulated process. All methods must be called from the goroutine
// running the process body.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
	// pending is true while the proc has a scheduled wake-up event; used to
	// detect double-scheduling bugs in primitives.
	pending bool
	// egen is the process's live event generation: cancelling a scheduled
	// wake-up (wakeCancel) bumps it, orphaning the heap entry.
	egen uint64
	// notified marks that the wake-up came from a Signal broadcast rather
	// than a WaitTimeout timer.
	notified bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Go spawns a process that starts at the current virtual time. It may be
// called before Run or from within a running process.
func (k *Kernel) Go(name string, fn func(*Proc)) *Proc {
	return k.GoAt(k.now, name, fn)
}

// GoAt spawns a process that starts at the given absolute virtual time (or
// the current time, whichever is later).
func (k *Kernel) GoAt(at time.Duration, name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	if at < k.now {
		at = k.now
	}
	k.scheduleAt(at, p)
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			k.live--
			k.parked <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

func (k *Kernel) scheduleAt(at time.Duration, p *Proc) {
	if p.pending {
		panic(fmt.Sprintf("simclock: process %q scheduled twice", p.name))
	}
	p.pending = true
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, p: p, gen: p.egen})
}

// Run dispatches events until no process has a scheduled wake-up. It returns
// the final virtual time. If processes remain alive but blocked on
// primitives that will never fire, Run returns anyway; Deadlocked reports it.
func (k *Kernel) Run() time.Duration {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		if e.p.done || e.gen != e.p.egen {
			continue // dead process, or a cancelled (superseded) wake-up
		}
		k.steps++
		if k.limits.MaxSteps > 0 && k.steps > k.limits.MaxSteps {
			panic("simclock: MaxSteps exceeded")
		}
		if k.limits.MaxTime > 0 && e.at > k.limits.MaxTime {
			panic("simclock: MaxTime exceeded")
		}
		k.now = e.at
		e.p.pending = false
		e.p.resume <- struct{}{}
		<-k.parked
	}
	return k.now
}

// Deadlocked reports whether live processes remain after Run returned, i.e.
// processes blocked on primitives that never fired.
func (k *Kernel) Deadlocked() bool { return k.live > 0 }

// yield parks the process and hands control back to the kernel. The process
// must have arranged to be woken (a scheduled event or a waiter-list entry).
func (p *Proc) yield() {
	p.k.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. Negative durations sleep
// zero time (the process still yields, letting same-instant events run in
// sequence order).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleAt(p.k.now+d, p)
	p.yield()
}

// Yield lets other processes scheduled at the same instant run.
func (p *Proc) Yield() { p.Sleep(0) }

// wake schedules a parked process to resume at the current instant.
func (k *Kernel) wake(p *Proc) { k.scheduleAt(k.now, p) }

// wakeCancel wakes a parked process at the current instant, cancelling any
// wake-up it already has scheduled (a WaitTimeout timer superseded by the
// broadcast that arrived first).
func (k *Kernel) wakeCancel(p *Proc) {
	if p.pending {
		p.egen++
		p.pending = false
	}
	k.scheduleAt(k.now, p)
}

// SetCompletionKeying toggles topic matching on the completion signal.
// With keying off every broadcast wakes every parked waiter — the
// pre-keying behavior. On by default; the off switch exists so regression
// tests can measure the wakeup reduction keying buys. Must be set before
// Run.
func (k *Kernel) SetCompletionKeying(on bool) { k.unkeyedCompletion = !on }

// CompletionWakeups returns the number of waiter wake-ups completion
// broadcasts have performed so far. A fleet of S senders waking W waiters
// each write costs S·W wakeups unkeyed; keying cuts it to the waiters
// whose topic actually matched.
func (k *Kernel) CompletionWakeups() uint64 { return k.compWakeups }

// CompletionWakeups exposes the kernel counter on the process so driver
// code holding only a simenv.Env can read it through an interface
// assertion.
func (p *Proc) CompletionWakeups() uint64 { return p.k.compWakeups }

// topicMatch reports whether a broadcast for key wakes a waiter parked on
// topic. An empty key is a wildcard broadcast (wakes everyone); an empty
// topic is a wildcard subscription (woken by everything); otherwise the
// waiter wakes when the written key falls under its topic prefix.
func topicMatch(key, topic string) bool {
	if key == "" || topic == "" {
		return true
	}
	return len(key) >= len(topic) && key[:len(topic)] == topic
}

// notifyKey wakes every waiter whose topic matches key at the current
// virtual instant.
func (k *Kernel) notifyKey(key string) {
	if k.unkeyedCompletion {
		key = ""
	}
	kept := k.compWaiters[:0]
	for _, w := range k.compWaiters {
		if topicMatch(key, w.topic) {
			w.p.notified = true
			k.wakeCancel(w.p)
			k.compWakeups++
		} else {
			kept = append(kept, w)
		}
	}
	k.compWaiters = kept
}

// NotifyAll broadcasts the completion signal with the wildcard key, waking
// every process parked in WaitNotify/WaitNotifyKey at the current virtual
// instant.
func (p *Proc) NotifyAll() { p.k.notifyKey("") }

// NotifyKey broadcasts the completion signal for key: services call it at
// the instant they make something visible (an object under an S3 key, a
// DynamoDB item, an SQS message), waking only the waiters parked on a
// matching topic.
func (p *Proc) NotifyKey(key string) { p.k.notifyKey(key) }

// WaitNotify parks p until the next completion broadcast (any key) or
// until d of virtual time passed, whichever comes first, and reports
// whether the broadcast arrived. Together with NotifyAll it satisfies
// simenv.Notifier, so barriers built on simenv.WaitNotify resolve at the
// exact virtual instant of the write they await instead of at the next
// poll boundary.
func (p *Proc) WaitNotify(d time.Duration) bool {
	return p.WaitNotifyKey("", d)
}

// WaitNotifyKey parks p until a completion broadcast whose key matches
// topic (prefix match; empty topic matches everything) or until d of
// virtual time passed, and reports whether the broadcast arrived. Keyed
// parking is what lets hundred-sender fleets coexist with parked
// barriers: an exchange write wakes the one consumer waiting on that
// stage's prefix, not every waiter in the simulation.
func (p *Proc) WaitNotifyKey(topic string, d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	k := p.k
	if k.unkeyedCompletion {
		topic = ""
	}
	k.compWaiters = append(k.compWaiters, compWaiter{p: p, topic: topic})
	p.notified = false
	k.scheduleAt(k.now+d, p)
	p.yield()
	if p.notified {
		p.notified = false
		return true
	}
	// Timed out: withdraw from the waiter list.
	for i, w := range k.compWaiters {
		if w.p == p {
			k.compWaiters = append(k.compWaiters[:i], k.compWaiters[i+1:]...)
			break
		}
	}
	return false
}
