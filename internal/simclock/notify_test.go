package simclock

import (
	"testing"
	"time"
)

// TestWaitNotifyKeyTopicMatching: a keyed broadcast wakes only the
// waiters whose topic prefix-matches the written key; everyone else
// sleeps through to their timeout.
func TestWaitNotifyKeyTopicMatching(t *testing.T) {
	k := New()
	woke := map[string]bool{}
	park := func(name, topic string) {
		k.Go(name, func(p *Proc) {
			woke[name] = p.WaitNotifyKey(topic, time.Minute)
		})
	}
	park("exact", "s3/bucket-a/key-1")
	park("prefix", "s3/bucket-a/")
	park("wildcard", "")
	park("other", "s3/bucket-b/")
	k.Go("writer", func(p *Proc) {
		p.Sleep(time.Second)
		p.NotifyKey("s3/bucket-a/key-1")
	})
	k.Run()
	want := map[string]bool{"exact": true, "prefix": true, "wildcard": true, "other": false}
	for name, w := range want {
		if woke[name] != w {
			t.Errorf("%s: woke=%v, want %v", name, woke[name], w)
		}
	}
	if got := k.CompletionWakeups(); got != 3 {
		t.Errorf("CompletionWakeups = %d, want 3", got)
	}
}

// TestNotifyAllWakesEveryTopic: the wildcard broadcast ignores topics.
func TestNotifyAllWakesEveryTopic(t *testing.T) {
	k := New()
	woken := 0
	for _, topic := range []string{"a/", "b/", ""} {
		tp := topic
		k.Go("w-"+tp, func(p *Proc) {
			if p.WaitNotifyKey(tp, time.Minute) {
				woken++
			}
		})
	}
	k.Go("writer", func(p *Proc) {
		p.Sleep(time.Second)
		p.NotifyAll()
	})
	k.Run()
	if woken != 3 {
		t.Errorf("woke %d waiters, want 3", woken)
	}
}

// TestSetCompletionKeyingOff restores the pre-keying behavior: every
// broadcast wakes every waiter, and the wakeup counter shows the cost.
func TestSetCompletionKeyingOff(t *testing.T) {
	run := func(keyed bool) uint64 {
		k := New()
		k.SetCompletionKeying(keyed)
		for i := 0; i < 4; i++ {
			k.Go("waiter", func(p *Proc) {
				// Re-park on an unmatched topic until the deadline: each
				// unkeyed broadcast wakes all four, keyed wakes none.
				for p.Now() < 10*time.Second {
					p.WaitNotifyKey("never/matched", time.Second)
				}
			})
		}
		k.Go("writer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(time.Second)
				p.NotifyKey("some/other/key")
			}
		})
		k.Run()
		return k.CompletionWakeups()
	}
	unkeyed := run(false)
	keyed := run(true)
	if keyed != 0 {
		t.Errorf("keyed run woke %d waiters on unmatched topic, want 0", keyed)
	}
	if unkeyed != 20 {
		t.Errorf("unkeyed run woke %d waiters, want 20 (5 broadcasts x 4 waiters)", unkeyed)
	}
}

// TestWaitNotifyKeyTimeoutWithdraws: a timed-out waiter is removed from
// the waiter list, so a later broadcast does not wake (or count) it.
func TestWaitNotifyKeyTimeoutWithdraws(t *testing.T) {
	k := New()
	var got bool
	k.Go("waiter", func(p *Proc) {
		got = p.WaitNotifyKey("t/", 100*time.Millisecond)
		p.Sleep(10 * time.Second) // stay alive past the broadcast
	})
	k.Go("writer", func(p *Proc) {
		p.Sleep(time.Second)
		p.NotifyKey("t/x")
	})
	k.Run()
	if got {
		t.Error("timed-out wait reported a broadcast")
	}
	if n := k.CompletionWakeups(); n != 0 {
		t.Errorf("CompletionWakeups = %d, want 0 (waiter had withdrawn)", n)
	}
}
