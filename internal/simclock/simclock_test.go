package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	end := k.Run()
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Errorf("run ended at %v, want 5s", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	k := New()
	order := []string{}
	k.Go("a", func(p *Proc) {
		p.Sleep(-time.Second)
		order = append(order, "a")
	})
	k.Go("b", func(p *Proc) {
		p.Yield()
		order = append(order, "b")
	})
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v, want [a b]", order)
	}
	if k.Now() != 0 {
		t.Errorf("time advanced to %v on zero sleeps", k.Now())
	}
}

func TestDeterministicSameInstantOrder(t *testing.T) {
	// Processes scheduled at the same instant must run in spawn order,
	// every time.
	for trial := 0; trial < 20; trial++ {
		k := New()
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			k.Go("p", func(p *Proc) {
				p.Sleep(time.Second)
				order = append(order, i)
			})
		}
		k.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: order[%d] = %d", trial, i, v)
			}
		}
	}
}

func TestGoFromRunningProcess(t *testing.T) {
	k := New()
	var childRan bool
	var childTime time.Duration
	k.Go("parent", func(p *Proc) {
		p.Sleep(time.Minute)
		k.Go("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
			childTime = c.Now()
		})
		p.Sleep(time.Hour)
	})
	k.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
	if want := time.Minute + time.Second; childTime != want {
		t.Errorf("child finished at %v, want %v", childTime, want)
	}
}

func TestGoAt(t *testing.T) {
	k := New()
	var at time.Duration
	k.GoAt(3*time.Second, "late", func(p *Proc) { at = p.Now() })
	k.Run()
	if at != 3*time.Second {
		t.Errorf("started at %v, want 3s", at)
	}
}

func TestSignalBroadcastWakesAll(t *testing.T) {
	k := New()
	s := k.NewSignal()
	woken := 0
	for i := 0; i < 10; i++ {
		k.Go("w", func(p *Proc) {
			s.Wait(p)
			woken++
		})
	}
	k.Go("broadcaster", func(p *Proc) {
		p.Sleep(time.Second)
		if s.Waiting() != 10 {
			t.Errorf("waiting = %d, want 10", s.Waiting())
		}
		s.Broadcast()
	})
	k.Run()
	if woken != 10 {
		t.Errorf("woken = %d, want 10", woken)
	}
	if k.Deadlocked() {
		t.Error("kernel reports deadlock")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := New()
	sem := k.NewSemaphore(3)
	inUse, maxInUse := 0, 0
	for i := 0; i < 10; i++ {
		k.Go("w", func(p *Proc) {
			sem.Acquire(p)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Sleep(time.Second)
			inUse--
			sem.Release()
		})
	}
	end := k.Run()
	if maxInUse != 3 {
		t.Errorf("max concurrent = %d, want 3", maxInUse)
	}
	// 10 jobs of 1s through 3 slots: ceil(10/3) = 4 waves.
	if want := 4 * time.Second; end != want {
		t.Errorf("end = %v, want %v", end, want)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := New()
	sem := k.NewSemaphore(1)
	k.Go("p", func(p *Proc) {
		if !sem.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire() {
			t.Error("second TryAcquire succeeded on full semaphore")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after release failed")
		}
		sem.Release()
	})
	k.Run()
}

func TestSemaphoreFIFO(t *testing.T) {
	k := New()
	sem := k.NewSemaphore(1)
	var order []int
	k.Go("holder", func(p *Proc) {
		sem.Acquire(p)
		p.Sleep(time.Second)
		sem.Release()
	})
	for i := 0; i < 5; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i+1) * time.Millisecond) // arrive in order
			sem.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Second)
			sem.Release()
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	k := New()
	wg := k.NewWaitGroup()
	wg.Add(5)
	var doneAt time.Duration
	for i := 1; i <= 5; i++ {
		i := i
		k.Go("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run()
	if doneAt != 5*time.Second {
		t.Errorf("waiter released at %v, want 5s", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	k := New()
	wg := k.NewWaitGroup()
	ran := false
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Error("Wait on zero counter blocked")
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	k := New()
	q := k.NewQueue()
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			q.Put(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("got %v, want [0 1 2]", got)
	}
}

func TestQueueBurstDrainsAllConsumers(t *testing.T) {
	k := New()
	q := k.NewQueue()
	received := 0
	for i := 0; i < 4; i++ {
		k.Go("consumer", func(p *Proc) {
			q.Get(p)
			received++
		})
	}
	k.Go("producer", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 4; i++ {
			q.Put(i)
		}
	})
	k.Run()
	if received != 4 {
		t.Errorf("received = %d, want 4", received)
	}
	if k.Deadlocked() {
		t.Error("deadlocked")
	}
}

func TestFuture(t *testing.T) {
	k := New()
	f := k.NewFuture()
	var got interface{}
	var gotAt time.Duration
	k.Go("reader", func(p *Proc) {
		got = f.Get(p)
		gotAt = p.Now()
	})
	k.Go("writer", func(p *Proc) {
		p.Sleep(2 * time.Second)
		f.Set(42)
	})
	k.Run()
	if got != 42 {
		t.Errorf("got %v, want 42", got)
	}
	if gotAt != 2*time.Second {
		t.Errorf("gotAt = %v, want 2s", gotAt)
	}
	if !f.IsSet() {
		t.Error("future not set")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	s := k.NewSignal()
	k.Go("stuck", func(p *Proc) { s.Wait(p) })
	k.Run()
	if !k.Deadlocked() {
		t.Error("expected deadlock report for waiter with no broadcaster")
	}
}

func TestMaxStepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from MaxSteps")
		}
	}()
	k := New()
	k.SetLimits(Limits{MaxSteps: 10})
	k.Go("spinner", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	k.Run()
}

func TestStepsCounted(t *testing.T) {
	k := New()
	k.Go("p", func(p *Proc) {
		p.Sleep(time.Second)
		p.Sleep(time.Second)
	})
	k.Run()
	// spawn event + two sleeps = 3 dispatches
	if k.Steps() != 3 {
		t.Errorf("steps = %d, want 3", k.Steps())
	}
}

// Property: for any set of sleep durations, the kernel finishes at the
// maximum duration and every process observes its own total.
func TestPropertyParallelSleepsFinishAtMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		k := New()
		var max time.Duration
		ok := true
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d > max {
				max = d
			}
			k.Go("p", func(p *Proc) {
				start := p.Now()
				p.Sleep(d)
				if p.Now()-start != d {
					ok = false
				}
			})
		}
		return k.Run() == max && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sequential sleeps accumulate exactly.
func TestPropertySequentialSleepsAccumulate(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 128 {
			raw = raw[:128]
		}
		k := New()
		var want time.Duration
		for _, r := range raw {
			want += time.Duration(r) * time.Microsecond
		}
		k.Go("p", func(p *Proc) {
			for _, r := range raw {
				p.Sleep(time.Duration(r) * time.Microsecond)
			}
		})
		return k.Run() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestManyProcessesScale(t *testing.T) {
	k := New()
	const n = 10000
	count := 0
	for i := 0; i < n; i++ {
		k.Go("p", func(p *Proc) {
			p.Sleep(time.Second)
			count++
		})
	}
	k.Run()
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
}

// TestSignalWaitTimeoutBroadcastWins: a broadcast before the timer fires
// wakes the waiter at the broadcast instant with the timer cancelled.
func TestSignalWaitTimeoutBroadcastWins(t *testing.T) {
	k := New()
	sig := k.NewSignal()
	var notified bool
	var wokeAt time.Duration
	k.Go("waiter", func(p *Proc) {
		notified = sig.WaitTimeout(p, time.Minute)
		wokeAt = p.Now()
	})
	k.Go("caster", func(p *Proc) {
		p.Sleep(3 * time.Second)
		sig.Broadcast()
	})
	end := k.Run()
	if !notified {
		t.Error("waiter timed out despite the broadcast")
	}
	if wokeAt != 3*time.Second {
		t.Errorf("woke at %v, want the broadcast instant 3s", wokeAt)
	}
	// The cancelled one-minute timer must not have dragged virtual time out.
	if end != 3*time.Second {
		t.Errorf("final time %v, want 3s (stale timer dispatched?)", end)
	}
}

// TestSignalWaitTimeoutExpires: with no broadcast the waiter resumes at the
// timeout, and a later broadcast must not wake it again.
func TestSignalWaitTimeoutExpires(t *testing.T) {
	k := New()
	sig := k.NewSignal()
	wakeups := 0
	k.Go("waiter", func(p *Proc) {
		if sig.WaitTimeout(p, 2*time.Second) {
			t.Error("spurious notification")
		}
		wakeups++
		if got := p.Now(); got != 2*time.Second {
			t.Errorf("timed out at %v, want 2s", got)
		}
		p.Sleep(10 * time.Second) // outlive the late broadcast
	})
	k.Go("late", func(p *Proc) {
		p.Sleep(5 * time.Second)
		sig.Broadcast() // waiter has withdrawn; nobody should wake
	})
	k.Run()
	if wakeups != 1 {
		t.Errorf("wakeups = %d, want 1", wakeups)
	}
	if sig.Waiting() != 0 {
		t.Errorf("%d waiters left registered after timeout", sig.Waiting())
	}
}

// TestProcWaitNotify: the kernel-wide completion signal wakes WaitNotify
// parkers at the broadcasting process's instant, and times out otherwise.
func TestProcWaitNotify(t *testing.T) {
	k := New()
	var first, second bool
	var firstAt time.Duration
	k.Go("waiter", func(p *Proc) {
		first = p.WaitNotify(time.Minute)
		firstAt = p.Now()
		second = p.WaitNotify(time.Second) // nothing else fires: times out
	})
	k.Go("producer", func(p *Proc) {
		p.Sleep(700 * time.Millisecond)
		p.NotifyAll()
	})
	k.Run()
	if !first || firstAt != 700*time.Millisecond {
		t.Errorf("first wait: notified=%v at %v, want notified at 700ms", first, firstAt)
	}
	if second {
		t.Error("second wait notified with no broadcaster")
	}
}

// TestSignalWaitTimeoutDeterministic: many waiters with interleaved timers
// and broadcasts resolve identically across runs.
func TestSignalWaitTimeoutDeterministic(t *testing.T) {
	run := func() (string, time.Duration) {
		k := New()
		sig := k.NewSignal()
		order := ""
		for i := 0; i < 5; i++ {
			i := i
			k.Go("waiter", func(p *Proc) {
				// Odd waiters time out before the broadcast at 4s.
				d := time.Duration(i+1) * time.Second
				if i%2 == 0 {
					d = time.Minute
				}
				if sig.WaitTimeout(p, d) {
					order += string(rune('A' + i))
				} else {
					order += string(rune('a' + i))
				}
			})
		}
		k.Go("caster", func(p *Proc) {
			p.Sleep(4 * time.Second)
			sig.Broadcast()
		})
		end := k.Run()
		return order, end
	}
	o1, e1 := run()
	o2, e2 := run()
	if o1 != o2 || e1 != e2 {
		t.Errorf("non-deterministic: (%q,%v) vs (%q,%v)", o1, e1, o2, e2)
	}
	if o1 != "bdACE" {
		t.Errorf("order = %q, want timeouts b(2s), d(4s pre-broadcast seq) then notified A C E", o1)
	}
}
