package driver

import (
	"encoding/json"
	"fmt"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/obs"
	"lambada/internal/scan"
)

// ExchangeConfig enables the serverless exchange path for grouped
// aggregations: worker partials are shuffled by group key through S3 so
// every group is finalized on exactly one worker — the driver only
// concatenates. Buckets must be pre-created at installation time (§4.4.1).
type ExchangeConfig struct {
	Variant exchange.Variant
	// Buckets is the shard-bucket count created at Install.
	Buckets int
	// Poll and MaxWait configure receiver-side waiting.
	Poll    time.Duration
	MaxWait time.Duration
}

// DefaultExchangeConfig uses the two-level write-combining variant over
// eight shard buckets.
func DefaultExchangeConfig() ExchangeConfig {
	return ExchangeConfig{
		Variant: exchange.Variant{Levels: 2, WriteCombining: true},
		Buckets: 8,
		Poll:    50 * time.Millisecond,
		MaxWait: 10 * time.Minute,
	}
}

// exchangeSpec travels in the worker payload.
type exchangeSpec struct {
	Variant   exchange.Variant `json:"variant"`
	Buckets   []string         `json:"buckets"`
	Prefix    string           `json:"prefix"`
	Key       string           `json:"key"`
	FinalPlan json.RawMessage  `json:"finalPlan"`
	PollNs    int64            `json:"pollNs"`
	MaxWaitNs int64            `json:"maxWaitNs"`
}

// exchangeBucketName names the i-th shard bucket of an installation.
func exchangeBucketName(fn string, i int) string {
	return fmt.Sprintf("%s-xshard-%d", fn, i)
}

// InstallExchange creates the shard buckets (free, done once, §4.4.1).
func (d *Session) InstallExchange(cfg ExchangeConfig) []string {
	buckets := make([]string, cfg.Buckets)
	for i := range buckets {
		buckets[i] = exchangeBucketName(d.cfg.FunctionName, i)
		d.dep.S3.MustCreateBucket(buckets[i])
	}
	return buckets
}

// InstallExchange creates the shard buckets (free, done once, §4.4.1).
func (d *Driver) InstallExchange(cfg ExchangeConfig) []string { return d.sess.InstallExchange(cfg) }

// RunPlanExchanged executes a grouped aggregation with the exchange-merge
// strategy: scan+partial aggregation per worker, serverless shuffle of the
// partials by group key, local finalization, driver-side concatenation.
func (d *Driver) RunPlanExchanged(plan engine.Plan, table string, files []scan.FileRef, xcfg ExchangeConfig) (*columnar.Chunk, *Report, error) {
	return d.sess.RunPlanExchanged(d.env, plan, table, files, xcfg)
}

func (d *query) runPlanExchanged(plan engine.Plan, table string, files []scan.FileRef, xcfg ExchangeConfig) (*columnar.Chunk, *Report, error) {
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("driver: no input files")
	}
	queryID := d.id
	buckets := d.s.InstallExchange(xcfg)

	costBefore := d.costSnapshot()
	startTime := d.env.Now()

	// Query span: see runPlan — binds driver-side traffic, closed with the
	// cost window.
	tr := d.dep.Trace
	var qspan obs.SpanID
	if tr.Enabled() {
		qspan = tr.StartSpan(obs.KindQuery, queryID, 0, startTime)
		tr.Bind(d.env, qspan)
		defer func() { tr.Release(d.env, d.env.Now()) }()
	}

	driverClient := s3.NewClient(d.dep.S3, d.env)
	metaSrc := scan.New(driverClient, d.cfg.Scan, files[0])
	schema, err := metaSrc.Schema()
	if err != nil {
		return nil, nil, err
	}
	opt, err := engine.Optimize(plan, engine.Catalog{table: engine.NewMemSource(schema)})
	if err != nil {
		return nil, nil, err
	}
	xp, err := engine.SplitExchanged(opt)
	if err != nil {
		return nil, nil, err
	}
	workerPlanJSON, err := engine.MarshalPlan(xp.Worker)
	if err != nil {
		return nil, nil, err
	}
	finalPlanJSON, err := engine.MarshalPlan(xp.WorkerFinal)
	if err != nil {
		return nil, nil, err
	}

	workers := d.cfg.Workers
	if workers <= 0 {
		f := d.cfg.FilesPerWorker
		workers = (len(files) + f - 1) / f
	}
	if workers > len(files) {
		workers = len(files)
	}
	spec := exchangeSpec{
		Variant:   xcfg.Variant,
		Buckets:   buckets,
		Prefix:    d.cfg.FunctionName + "/" + queryID,
		Key:       xp.Key,
		FinalPlan: finalPlanJSON,
		PollNs:    int64(xcfg.Poll),
		MaxWaitNs: int64(xcfg.MaxWait),
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}

	payloads := make([][]byte, workers)
	per := (len(files) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(files) {
			hi = len(files)
		}
		if lo > hi {
			lo = hi
		}
		body, err := json.Marshal(workerPayload{
			QueryID:     queryID,
			WorkerID:    w,
			NumWorkers:  workers,
			Plan:        workerPlanJSON,
			Table:       table,
			Files:       files[lo:hi],
			ResultQueue: d.cfg.ResultQueue,
			Exchange:    specJSON,
		})
		if err != nil {
			return nil, nil, err
		}
		payloads[w] = body
	}

	invokeStart := d.env.Now()
	if err := d.invokeAll(payloads, qspan); err != nil {
		return nil, nil, err
	}
	invocation := d.env.Now() - invokeStart

	finalSchema, err := xp.WorkerFinal.OutSchema()
	if err != nil {
		return nil, nil, err
	}
	chunks, processing, cold, err := d.collectResults(queryID, workers)
	if err != nil {
		return nil, nil, err
	}

	dcat := engine.Catalog{engine.WorkerResultTable: engine.NewMemSource(finalSchema, chunks...)}
	result, err := engine.Execute(xp.Driver, dcat)
	if err != nil {
		return nil, nil, err
	}
	d.quiesce()
	endTime := d.env.Now()
	rep := &Report{
		QueryID:          queryID,
		Workers:          workers,
		Duration:         endTime - startTime,
		Invocation:       invocation,
		WorkerProcessing: processing,
		ColdWorkers:      cold,
	}
	if tr.Enabled() {
		tr.EndSpan(qspan, endTime)
		rep.Trace, rep.Span = tr, qspan
	}
	d.fillCostDelta(rep, costBefore)
	return result, rep, nil
}

// runExchange is the worker-side shuffle+finalize step.
func (d *Session) runExchange(client *s3.Client, p *workerPayload, partial *columnar.Chunk) (*columnar.Chunk, error) {
	var spec exchangeSpec
	if err := json.Unmarshal(p.Exchange, &spec); err != nil {
		return nil, err
	}
	opts := exchange.Options{
		Variant: spec.Variant,
		Buckets: spec.Buckets,
		Prefix:  spec.Prefix,
		Poll:    time.Duration(spec.PollNs),
		MaxWait: time.Duration(spec.MaxWaitNs),
	}
	wk := exchange.Worker{ID: p.WorkerID, P: p.NumWorkers, Client: client}
	merged, err := wk.Run(opts, partial, spec.Key)
	if err != nil {
		return nil, err
	}
	finalPlan, err := engine.UnmarshalPlan(spec.FinalPlan)
	if err != nil {
		return nil, err
	}
	cat := engine.Catalog{engine.WorkerResultTable: engine.NewMemSource(merged.Schema, merged)}
	return engine.Execute(finalPlan, cat)
}
