package driver

import (
	"errors"
	"testing"
	"time"

	"lambada/internal/awssim/dynamo"
	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/pricing"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// chaosRun is one staged q12 execution on the DES kernel, with everything
// the chaos assertions compare: the result chunk, the report, and the
// billed request counts per substrate.
type chaosRun struct {
	out        *columnar.Chunk
	rep        *Report
	s3Requests int64
	sqsReqs    int64
	injected   int
}

// runStagedChaosQ12 executes the staged q12 shuffle join on a fresh DES
// kernel against the given deployment and returns the run's observables.
// mut tweaks the driver/stage configs before the query runs.
func runStagedChaosQ12(t *testing.T, mkDep func(k *simclock.Kernel) *Deployment, mut func(cfg *Config, scfg *StageConfig)) chaosRun {
	t.Helper()
	k := simclock.New()
	dep := mkDep(k)
	var res chaosRun
	ok := false
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		if mut != nil {
			mut(&cfg, &scfg)
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 11}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Error(err)
			return
		}
		res.out, res.rep = out, rep
		res.s3Requests = dep.Meter.Count(pricing.LabelS3Read) + dep.Meter.Count(pricing.LabelS3Write)
		res.sqsReqs = dep.Meter.Count(pricing.LabelSQS)
		res.injected = dep.Faults.TotalInjected()
		ok = true
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if !ok {
		t.FailNow()
	}
	return res
}

// chaosPlanQ12 is the seeded fault mix of the chaos acceptance suite: S3
// transients on both paths, SQS duplicate delivery and receive timeouts,
// DynamoDB throttling on the barrier reads, Lambda cold-start spikes, and
// one mid-run crash.
func chaosPlanQ12() faults.Plan {
	return faults.Plan{
		Seed: 20260808,
		Rules: []faults.Rule{
			{Op: faults.OpS3Get, Kind: faults.KindTransient, Rate: 0.05},
			{Op: faults.OpS3Put, Kind: faults.KindTransient, Rate: 0.03},
			{Op: faults.OpS3Put, Kind: faults.KindSlowDown, Rate: 0.02},
			{Op: faults.OpSQSSend, Kind: faults.KindDuplicate, Rate: 0.2, Delay: 40 * time.Millisecond},
			{Op: faults.OpSQSReceive, Kind: faults.KindTimeout, Rate: 0.03},
			{Op: faults.OpDynamoGet, Kind: faults.KindThrottle, Rate: 0.05},
			{Op: faults.OpLambda, Kind: faults.KindColdSpike, Rate: 0.1, Delay: 300 * time.Millisecond},
			{Op: faults.OpLambda, Kind: faults.KindCrashMidRun, Skip: 5, Count: 1, Delay: 150 * time.Millisecond},
		},
	}
}

// TestChaosZeroFaultPlanIsInert: a chaos deployment with an empty plan is
// byte-for-byte the plain simulated deployment — same result, same virtual
// duration, same cost, no injection bookkeeping. This pins the guarantee
// that the fault layer costs nothing when unused.
func TestChaosZeroFaultPlanIsInert(t *testing.T) {
	clean := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) }, nil)
	zero := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment { return NewChaos(k, 71, faults.Plan{}) }, nil)
	chunksIdentical(t, zero.out, clean.out)
	if zero.rep.Duration != clean.rep.Duration || zero.rep.TotalCost != clean.rep.TotalCost {
		t.Errorf("zero-fault chaos run diverged: (%v, %v) vs clean (%v, %v)",
			zero.rep.Duration, zero.rep.TotalCost, clean.rep.Duration, clean.rep.TotalCost)
	}
	if zero.s3Requests != clean.s3Requests || zero.sqsReqs != clean.sqsReqs {
		t.Errorf("zero-fault request counts diverged: s3 %d vs %d, sqs %d vs %d",
			zero.s3Requests, clean.s3Requests, zero.sqsReqs, clean.sqsReqs)
	}
	if len(zero.rep.InjectedFaults) != 0 || zero.injected != 0 {
		t.Errorf("zero-fault plan injected %d faults: %v", zero.injected, zero.rep.InjectedFaults)
	}
}

// TestStagedChaosDeterministicByteIdentical is the tentpole acceptance
// test: staged q12 under the seeded chaos plan (a) still returns the exact
// fault-free answer, (b) replays identically — same result, virtual
// duration, cost and injection counts across two runs, (c) inflates billed
// requests boundedly (retried requests are billed, but the storm is a few
// percent), on both exchange variants.
func TestStagedChaosDeterministicByteIdentical(t *testing.T) {
	variants := []struct {
		name string
		mut  func(cfg *Config, scfg *StageConfig)
	}{
		{"tree-wc", func(cfg *Config, scfg *StageConfig) {
			cfg.Speculate = DefaultSpeculateConfig()
		}},
		{"flat", func(cfg *Config, scfg *StageConfig) {
			cfg.Speculate = DefaultSpeculateConfig()
			scfg.Exchange.Variant.Levels = 1
			scfg.Exchange.Variant.WriteCombining = false
		}},
		{"multilevel", func(cfg *Config, scfg *StageConfig) {
			cfg.Speculate = DefaultSpeculateConfig()
			scfg.ExchangeLevels = 2
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			clean := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) }, v.mut)
			mkChaos := func(k *simclock.Kernel) *Deployment { return NewChaos(k, 71, chaosPlanQ12()) }
			a := runStagedChaosQ12(t, mkChaos, v.mut)
			b := runStagedChaosQ12(t, mkChaos, v.mut)

			// (a) graceful degradation: the chaotic run still computes the
			// exact fault-free answer.
			chunksIdentical(t, a.out, clean.out)

			// (b) determinism: the seeded plan replays exactly.
			if a.rep.Duration != b.rep.Duration || a.rep.TotalCost != b.rep.TotalCost {
				t.Errorf("chaos replay diverged: (%v, %v) vs (%v, %v)",
					a.rep.Duration, a.rep.TotalCost, b.rep.Duration, b.rep.TotalCost)
			}
			if a.injected != b.injected || a.s3Requests != b.s3Requests || a.sqsReqs != b.sqsReqs {
				t.Errorf("chaos replay bookkeeping diverged: injected %d vs %d, s3 %d vs %d, sqs %d vs %d",
					a.injected, b.injected, a.s3Requests, b.s3Requests, a.sqsReqs, b.sqsReqs)
			}
			chunksIdentical(t, a.out, b.out)

			// The storm actually happened and the resilience layer absorbed
			// it.
			if a.injected == 0 || len(a.rep.InjectedFaults) == 0 {
				t.Fatal("chaos plan injected nothing")
			}
			if a.rep.DriverRetries+a.rep.WorkerRetries == 0 {
				t.Error("no retries recorded under a fault storm")
			}

			// (c) bounded inflation: billed requests grow with the retry
			// storm but stay within 2x of the clean run.
			if a.s3Requests < clean.s3Requests {
				t.Errorf("chaos billed fewer s3 requests (%d) than clean (%d)", a.s3Requests, clean.s3Requests)
			}
			if a.s3Requests > 2*clean.s3Requests {
				t.Errorf("chaos s3 requests %d more than doubled clean %d", a.s3Requests, clean.s3Requests)
			}
			// SQS polls scale with virtual duration, and the mid-run crash
			// stretches the run by a liveness-cap stall — allow 4x there.
			if a.sqsReqs > 4*clean.sqsReqs {
				t.Errorf("chaos sqs requests %d more than quadrupled clean %d", a.sqsReqs, clean.sqsReqs)
			}
		})
	}
}

// TestStagedChaosGroupByByteIdentical runs the q1-shaped staged aggregation
// (scan -> repartition on the group key -> finalize, no join) under the
// same seeded storm: exact clean answer, exact replay.
func TestStagedChaosGroupByByteIdentical(t *testing.T) {
	const sql = `
SELECT l_suppkey, COUNT(*) AS n, MIN(l_orderkey) AS first_ord, MAX(l_orderkey) AS last_ord
FROM lineitem
GROUP BY l_suppkey ORDER BY l_suppkey`
	run := func(mkDep func(k *simclock.Kernel) *Deployment) chaosRun {
		k := simclock.New()
		dep := mkDep(k)
		var res chaosRun
		ok := false
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			cfg.Speculate = DefaultSpeculateConfig()
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			g := tpch.Gen{SF: 0.002, Seed: 11}
			refs, err := d.UploadTable("tpch", "lineitem", g.Generate(), 4, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			scfg := DefaultStageConfig()
			scfg.Partitions = 2
			scfg.Exchange.Poll = 100 * time.Millisecond
			out, rep, err := d.RunSQLStaged(sql, TableFiles{"lineitem": refs}, scfg)
			if err != nil {
				t.Error(err)
				return
			}
			res.out, res.rep = out, rep
			res.injected = dep.Faults.TotalInjected()
			ok = true
		})
		k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		if !ok {
			t.FailNow()
		}
		return res
	}
	clean := run(func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) })
	mkChaos := func(k *simclock.Kernel) *Deployment { return NewChaos(k, 71, chaosPlanQ12()) }
	a := run(mkChaos)
	b := run(mkChaos)
	chunksIdentical(t, a.out, clean.out)
	chunksIdentical(t, a.out, b.out)
	if a.rep.Duration != b.rep.Duration || a.rep.TotalCost != b.rep.TotalCost || a.injected != b.injected {
		t.Errorf("group-by chaos replay diverged: (%v, %v, %d) vs (%v, %v, %d)",
			a.rep.Duration, a.rep.TotalCost, a.injected, b.rep.Duration, b.rep.TotalCost, b.injected)
	}
	if a.injected == 0 {
		t.Error("chaos plan injected nothing on the group-by query")
	}
}

// TestStagedChaosCrashRecovery: a worker that crashes on invoke never posts
// anything — the stage stalls until the speculation liveness cap re-invokes
// the silent worker, and the query completes with the exact clean answer.
func TestStagedChaosCrashRecovery(t *testing.T) {
	mut := func(cfg *Config, scfg *StageConfig) {
		cfg.Speculate = DefaultSpeculateConfig()
		scfg.MaxStageWait = 30 * time.Second
	}
	clean := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) }, mut)
	crash := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment {
		return NewChaos(k, 71, faults.Plan{Seed: 9, Rules: []faults.Rule{
			{Op: faults.OpLambda, Kind: faults.KindCrash, Skip: 2, Count: 1},
		}})
	}, mut)
	chunksIdentical(t, crash.out, clean.out)
	if crash.injected != 1 {
		t.Errorf("injected = %d, want exactly the one crash", crash.injected)
	}
	if crash.rep.InjectedFaults[faults.OpLambda+"/"+string(faults.KindCrash)] != 1 {
		t.Errorf("injected faults = %v, want one lambda/crash", crash.rep.InjectedFaults)
	}
	if crash.rep.Duration <= clean.rep.Duration {
		t.Errorf("crash recovery took %v, clean %v — liveness cap never waited", crash.rep.Duration, clean.rep.Duration)
	}
}

// TestStagedChaosBudgetExhaustionFailureSeal: a throttle storm against the
// seal-barrier reads exhausts one worker's retry budget. The worker posts a
// typed retryable failure seal, the scheduler re-invokes it through the
// attempt machinery (speculation disabled — the failure path alone must
// recover), and the remaining storm fits the fresh budget.
func TestStagedChaosBudgetExhaustionFailureSeal(t *testing.T) {
	mut := func(cfg *Config, scfg *StageConfig) {
		cfg.RetryBudget = 3
		scfg.Pipelined = false // waves: barrier reads happen in a known order
		scfg.Partitions = 1    // exactly one consumer hits the storm
	}
	clean := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) }, mut)
	// Skip 1 exempts the driver's epoch fence read; the next six dynamo
	// Gets are the consumer's barrier reads. Budget 3 means attempt 0 dies
	// after four throttles (3 retries + the exhausted take), the relaunch
	// absorbs the remaining two.
	storm := runStagedChaosQ12(t, func(k *simclock.Kernel) *Deployment {
		return NewChaos(k, 71, faults.Plan{Seed: 4, Rules: []faults.Rule{
			{Op: faults.OpDynamoGet, Kind: faults.KindThrottle, Skip: 1, Count: 6},
		}})
	}, mut)
	chunksIdentical(t, storm.out, clean.out)
	if storm.rep.FailureSeals != 1 {
		t.Errorf("failure seals = %d, want 1 (budget exhaustion -> typed seal -> relaunch)", storm.rep.FailureSeals)
	}
	if storm.rep.InjectedFaults["dynamo.Get/throttle"] != 6 {
		t.Errorf("injected = %v, want 6 dynamo.Get throttles", storm.rep.InjectedFaults)
	}
}

// TestSingleScopeDuplicateResultDelivery is the satellite-1 regression: an
// at-least-once result queue that redelivers EVERY worker result must not
// corrupt single-scope collection — drainResults dedups by worker identity.
func TestSingleScopeDuplicateResultDelivery(t *testing.T) {
	const sql = `
SELECT l_suppkey, COUNT(*) AS n, MIN(l_orderkey) AS first_ord
FROM lineitem
GROUP BY l_suppkey ORDER BY l_suppkey`
	run := func(mkDep func(k *simclock.Kernel) *Deployment) *columnar.Chunk {
		k := simclock.New()
		dep := mkDep(k)
		var out *columnar.Chunk
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			g := tpch.Gen{SF: 0.002, Seed: 11}
			li := g.Generate()
			refs, err := d.UploadTable("tpch", "lineitem", li, 3, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			res, _, err := d.RunSQL(sql, "lineitem", refs)
			if err != nil {
				t.Error(err)
				return
			}
			out = res
		})
		k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		if out == nil {
			t.FailNow()
		}
		return out
	}
	clean := run(func(k *simclock.Kernel) *Deployment { return NewSimulated(k, 71) })
	// Rate 0 with no Count bound fires on every Send: every result message
	// is delivered twice, the copy 5ms later — mid-drain.
	dup := run(func(k *simclock.Kernel) *Deployment {
		return NewChaos(k, 71, faults.Plan{Seed: 1, Rules: []faults.Rule{
			{Op: faults.OpSQSSend, Kind: faults.KindDuplicate, Delay: 5 * time.Millisecond},
		}})
	})
	chunksIdentical(t, dup, clean)
}

// TestEpochSweepTTL is the satellite-2 test: the lazy sweep in acquireEpoch
// deletes epoch fence items older than EpochTTL of virtual time — including
// pre-TTL legacy items (bare integer, no timestamp) — and keeps fresh ones.
func TestEpochSweepTTL(t *testing.T) {
	k := simclock.New()
	dep := NewSimulated(k, 7)
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.EpochGCInterval = 1 // sweep on every acquire
		cfg.EpochTTL = time.Hour
		d := New(dep, p, cfg)
		q := d.Session().newQuery(p)
		defer q.close()
		table := stagesTableName(cfg.FunctionName)
		dep.Dynamo.CreateTable(table)
		// A legacy-format item from before the sweep existed: bare epoch,
		// no timestamp — reads as written at virtual zero.
		if err := dep.Dynamo.Put(p, table, epochKey("legacy"), []byte("7")); err != nil {
			t.Error(err)
			return
		}

		if e, err := q.acquireEpoch(table, "qA"); err != nil || e != 1 {
			t.Errorf("qA epoch = %d, %v, want 1", e, err)
		}
		if e, err := q.acquireEpoch(table, "legacy"); err != nil || e != 8 {
			t.Errorf("legacy epoch = %d, %v, want 8 (parsed bare item)", e, err)
		}

		p.Sleep(2 * time.Hour) // both items now exceed the 1h TTL

		if e, err := q.acquireEpoch(table, "qB"); err != nil || e != 1 {
			t.Errorf("qB epoch = %d, %v, want 1", e, err)
		}
		// The sweep that ran inside that acquire collected qA and legacy.
		if _, err := dep.Dynamo.Get(p, table, epochKey("qA")); !errors.Is(err, dynamo.ErrNoSuchItem) {
			t.Errorf("qA fence survived the sweep: %v", err)
		}
		if _, err := dep.Dynamo.Get(p, table, epochKey("legacy")); !errors.Is(err, dynamo.ErrNoSuchItem) {
			t.Errorf("legacy fence survived the sweep: %v", err)
		}
		// qB was just written — the next sweep must keep it, and its
		// counter keeps fencing.
		if e, err := q.acquireEpoch(table, "qB"); err != nil || e != 2 {
			t.Errorf("qB epoch after sweep = %d, %v, want 2 (item retained)", e, err)
		}
		// An expired fence restarts at 1: the TTL exceeds any worker
		// lifetime, so no zombie of the swept run can still be alive.
		if e, err := q.acquireEpoch(table, "qA"); err != nil || e != 1 {
			t.Errorf("qA epoch after expiry = %d, %v, want 1", e, err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
}
