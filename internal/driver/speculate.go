package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/obs"
)

// SpeculateConfig enables driver-side straggler mitigation: once a quorum
// of workers has reported, any worker still missing after a multiple of the
// median response time is re-invoked ("backup requests"). The first result
// per worker wins; duplicates are discarded. This is the driver-side
// counterpart of the aggressive-timeouts-and-retries theme of §5.5
// (footnote 17): tail latencies propagate, so the driver cuts the tail.
//
// The same policy drives both single-scope fleets and the event-driven
// stage scheduler: each stage of a staged query arms independently over its
// own fleet, and backups are launched as a new attempt whose exchange
// boundary names cannot race the original's (first committed attempt wins,
// the stale-drain collector sweeps the losers).
type SpeculateConfig struct {
	// Enabled turns speculation on.
	Enabled bool
	// QuorumFraction is the fraction of workers that must report before
	// speculation arms (default 0.75).
	QuorumFraction float64
	// LatencyFactor multiplies the median response time to form the
	// straggler deadline (default 3).
	LatencyFactor float64
	// MaxRetries bounds re-invocations per worker (default 1). Stage plans
	// may override it per stage through stageplan.Stage.MaxAttempts.
	MaxRetries int
}

// DefaultSpeculateConfig returns the standard backup-request policy.
func DefaultSpeculateConfig() SpeculateConfig {
	return SpeculateConfig{Enabled: true, QuorumFraction: 0.75, LatencyFactor: 3, MaxRetries: 1}
}

// stragglerPolicy applies SpeculateConfig to one fleet (a single-scope
// query's workers, or one stage's workers): it records response times as
// seals arrive and, once a quorum reported and the median-based deadline
// passed, nominates the missing workers for a backup attempt.
type stragglerPolicy struct {
	cfg      SpeculateConfig
	workers  int
	launchAt time.Duration
	// responses holds the per-response latencies, kept SORTED by record's
	// binary-search insert: the median read in stragglers is O(1) instead of
	// a re-sort per event-loop pass — at 4k workers the driver's loop calls
	// stragglers once per message batch per stage, and the old copy+sort
	// made each of those calls O(n²).
	responses []time.Duration
	// attempts counts the backup attempts issued per worker; attempts[w]
	// is also the attempt number of the latest invocation of w.
	attempts map[int]int
	// cap is the no-progress liveness bound: once armed (capFrom >= 0) and
	// cap of virtual time passed without ANY response arriving (capFrom
	// resets on every response), the missing workers are re-invoked even
	// though the quorum/median policy never armed — covering both the
	// all-stragglers case (quorum arithmetic needs at least one response)
	// and a sub-quorum stall (responses stopped before quorum). A fleet
	// making progress keeps deferring the cap, so on-pace workers are
	// never mass-re-invoked.
	cap     time.Duration
	capFrom time.Duration
}

func newStragglerPolicy(cfg SpeculateConfig, workers int, launchAt time.Duration) stragglerPolicy {
	return stragglerPolicy{cfg: cfg, workers: workers, launchAt: launchAt, attempts: map[int]int{}, capFrom: -1}
}

// armCap installs the liveness cap with its clock starting at from. The
// staged scheduler arms it when the stage becomes runnable — its producers
// sealed — not at its (possibly pipelined, hence much earlier) launch, so
// consumers legitimately idling on the ready barrier are not re-invoked.
func (sp *stragglerPolicy) armCap(cap, from time.Duration) {
	sp.cap = cap
	sp.capFrom = from
}

// capArmed reports whether the liveness cap has started ticking.
func (sp *stragglerPolicy) capArmed() bool { return sp.capFrom >= 0 && sp.cap > 0 }

// record notes one worker's response at virtual time now, inserting its
// latency into the sorted responses slice. Progress defers the liveness
// cap: its window restarts at the latest response.
func (sp *stragglerPolicy) record(now time.Duration) {
	d := now - sp.launchAt
	i := sort.Search(len(sp.responses), func(i int) bool { return sp.responses[i] > d })
	sp.responses = append(sp.responses, 0)
	copy(sp.responses[i+1:], sp.responses[i:])
	sp.responses[i] = d
	if sp.capFrom >= 0 {
		sp.capFrom = now
	}
}

// maxRetries resolves the per-worker backup budget, with override taking
// precedence when positive (override counts total attempts, so budget =
// override - 1).
func (sp *stragglerPolicy) maxRetries(override int) int {
	if override > 0 {
		return override - 1
	}
	return sp.cfg.MaxRetries
}

// stragglers returns the workers to re-invoke at virtual time now, bumping
// their attempt counters: no response yet and retry budget (maxAttempts,
// 0 = config default) left, provided either the quorum/median deadline
// passed or the all-stragglers liveness cap expired.
func (sp *stragglerPolicy) stragglers(now time.Duration, reported func(w int) bool, maxAttempts int) []int {
	if !sp.cfg.Enabled || len(sp.responses) >= sp.workers {
		return nil
	}
	quorum := int(sp.cfg.QuorumFraction * float64(sp.workers))
	if quorum < 1 {
		quorum = 1
	}
	armed := false
	if len(sp.responses) >= quorum {
		median := sp.responses[len(sp.responses)/2] // responses stay sorted
		deadline := sp.launchAt + time.Duration(float64(median)*sp.cfg.LatencyFactor)
		armed = now > deadline
	}
	if !armed {
		// Liveness cap: no response has arrived for cap of virtual time
		// since the stage became runnable (or since the last response —
		// record defers the window on every arrival, so a fleet making any
		// progress is never mass-re-invoked; the quorum/median machinery
		// handles it once quorum is reached).
		if !sp.capArmed() || now <= sp.capFrom+sp.cap {
			return nil
		}
		sp.capFrom = now // the re-invoked attempt gets a fresh cap window
	}
	retries := sp.maxRetries(maxAttempts)
	var out []int
	for w := 0; w < sp.workers; w++ {
		if reported(w) || sp.attempts[w] >= retries {
			continue
		}
		sp.attempts[w]++
		out = append(out, w)
	}
	return out
}

// reattempt rewrites a worker payload with the given attempt number — the
// backup invocation's body. Attempt numbers namespace the worker's exchange
// publishes and travel back in its seal message.
func reattempt(payload []byte, attempt int) ([]byte, error) {
	var p workerPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, err
	}
	p.Attempt = attempt
	return json.Marshal(p)
}

// collectWithSpeculation gathers one result per worker of a single-scope
// query, re-invoking stragglers per the shared policy. It returns the first
// result chunk per worker plus bookkeeping for the report. span parents the
// backup invocations' trace spans (the query span; 0 when tracing is off).
func (d *query) collectWithSpeculation(queryID string, payloads [][]byte, launchAt time.Duration, spec SpeculateConfig, span obs.SpanID) ([]*columnar.Chunk, []time.Duration, int, int, error) {
	workers := len(payloads)
	got := make(map[int]bool, workers)
	pol := newStragglerPolicy(spec, workers, launchAt)
	var chunks []*columnar.Chunk
	var processing []time.Duration
	cold := 0
	speculated := 0

	for len(got) < workers {
		var msgs []sqs.Message
		if err := d.retry.policy.Do(d.env, "sqs.Receive", func() error {
			var rerr error
			msgs, rerr = d.dep.SQS.Receive(d.env, d.cfg.ResultQueue, 10)
			return rerr
		}); err != nil {
			return nil, nil, 0, 0, err
		}
		for _, m := range msgs {
			var rm resultMsg
			if err := json.Unmarshal(m.Body, &rm); err != nil {
				return nil, nil, 0, 0, err
			}
			if rm.QueryID != queryID || rm.Stage != 0 || rm.Epoch != 0 || got[rm.WorkerID] {
				// Stale query (staged-run zombies carry a stage/epoch that
				// single-scope workers never post) or the duplicate half of
				// a backup pair.
				continue
			}
			if rm.Err != "" {
				return nil, nil, 0, 0, fmt.Errorf("driver: worker %d failed: %s", rm.WorkerID, rm.Err)
			}
			got[rm.WorkerID] = true
			d.workerRetries += rm.Retries
			if rm.Cold {
				cold++
			}
			processing = append(processing, time.Duration(rm.ProcessingNs))
			pol.record(d.env.Now())
			if len(rm.Chunk) > 0 {
				r, err := lpq.OpenReader(bytes.NewReader(rm.Chunk), int64(len(rm.Chunk)))
				if err != nil {
					return nil, nil, 0, 0, err
				}
				c, err := r.ReadAll()
				if err != nil {
					return nil, nil, 0, 0, err
				}
				chunks = append(chunks, c)
			}
		}
		if len(got) >= workers {
			break
		}

		// Speculation: quorum reached and the stragglers are past the
		// deadline — re-invoke their payloads as the next attempt.
		for _, w := range pol.stragglers(d.env.Now(), func(w int) bool { return got[w] }, 0) {
			speculated++
			body, err := reattempt(payloads[w], pol.attempts[w])
			if err != nil {
				return nil, nil, 0, 0, err
			}
			if err := d.invokeOne(body, w, span); err != nil {
				return nil, nil, 0, 0, fmt.Errorf("driver: backup invocation of worker %d: %w", w, err)
			}
		}
		if d.env.Now()-launchAt > d.cfg.MaxWait {
			return nil, nil, 0, 0, fmt.Errorf("driver: timed out with %d/%d workers", len(got), workers)
		}
		// Park on the result queue's completion topic — wake at the next
		// result's exact arrival instant, timed poll fallback (the timed
		// wake also paces the straggler checks above).
		simenv.WaitNotifyKey(d.env, "sqs/"+d.cfg.ResultQueue, d.cfg.PollInterval)
	}
	return chunks, processing, cold, speculated, nil
}
