package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// SpeculateConfig enables driver-side straggler mitigation: once a quorum
// of workers has reported, any worker still missing after a multiple of the
// median response time is re-invoked ("backup requests"). The first result
// per worker wins; duplicates are discarded. This is the driver-side
// counterpart of the aggressive-timeouts-and-retries theme of §5.5
// (footnote 17): tail latencies propagate, so the driver cuts the tail.
type SpeculateConfig struct {
	// Enabled turns speculation on.
	Enabled bool
	// QuorumFraction is the fraction of workers that must report before
	// speculation arms (default 0.75).
	QuorumFraction float64
	// LatencyFactor multiplies the median response time to form the
	// straggler deadline (default 3).
	LatencyFactor float64
	// MaxRetries bounds re-invocations per worker (default 1).
	MaxRetries int
}

// DefaultSpeculateConfig returns the standard backup-request policy.
func DefaultSpeculateConfig() SpeculateConfig {
	return SpeculateConfig{Enabled: true, QuorumFraction: 0.75, LatencyFactor: 3, MaxRetries: 1}
}

// collectWithSpeculation gathers one result per worker, re-invoking
// stragglers per cfg. It returns the first result chunk per worker plus
// bookkeeping for the report.
func (d *Driver) collectWithSpeculation(queryID string, payloads [][]byte, launchAt time.Duration, spec SpeculateConfig) ([]*columnar.Chunk, []time.Duration, int, int, error) {
	workers := len(payloads)
	got := make(map[int]bool, workers)
	retried := make(map[int]int, workers)
	var chunks []*columnar.Chunk
	var processing []time.Duration
	var responseTimes []time.Duration
	cold := 0
	speculated := 0

	quorum := int(spec.QuorumFraction * float64(workers))
	if quorum < 1 {
		quorum = 1
	}

	for len(got) < workers {
		msgs, err := d.dep.SQS.Receive(d.env, d.cfg.ResultQueue, 10)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		for _, m := range msgs {
			var rm resultMsg
			if err := json.Unmarshal(m.Body, &rm); err != nil {
				return nil, nil, 0, 0, err
			}
			if rm.QueryID != queryID || got[rm.WorkerID] {
				continue // stale query or duplicate from a backup pair
			}
			if rm.Err != "" {
				return nil, nil, 0, 0, fmt.Errorf("driver: worker %d failed: %s", rm.WorkerID, rm.Err)
			}
			got[rm.WorkerID] = true
			if rm.Cold {
				cold++
			}
			processing = append(processing, time.Duration(rm.ProcessingNs))
			responseTimes = append(responseTimes, d.env.Now()-launchAt)
			if len(rm.Chunk) > 0 {
				r, err := lpq.OpenReader(bytes.NewReader(rm.Chunk), int64(len(rm.Chunk)))
				if err != nil {
					return nil, nil, 0, 0, err
				}
				c, err := r.ReadAll()
				if err != nil {
					return nil, nil, 0, 0, err
				}
				chunks = append(chunks, c)
			}
		}
		if len(got) >= workers {
			break
		}

		// Speculation: quorum reached and the stragglers are past the
		// deadline — re-invoke their payloads.
		if spec.Enabled && len(got) >= quorum {
			sorted := append([]time.Duration(nil), responseTimes...)
			sortDur(sorted)
			median := sorted[len(sorted)/2]
			deadline := launchAt + time.Duration(float64(median)*spec.LatencyFactor)
			if d.env.Now() > deadline {
				for w := 0; w < workers; w++ {
					if got[w] || retried[w] >= spec.MaxRetries {
						continue
					}
					retried[w]++
					speculated++
					if err := d.invokeOne(payloads[w], w); err != nil {
						return nil, nil, 0, 0, fmt.Errorf("driver: backup invocation of worker %d: %w", w, err)
					}
				}
			}
		}
		if d.env.Now()-launchAt > d.cfg.MaxWait {
			return nil, nil, 0, 0, fmt.Errorf("driver: timed out with %d/%d workers", len(got), workers)
		}
		d.env.Sleep(d.cfg.PollInterval)
	}
	return chunks, processing, cold, speculated, nil
}

func sortDur(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
