package driver

import (
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/stageplan"
	"lambada/internal/tpch"
)

// TestStagedMultiLevelByteIdentity forces every stage boundary through the
// multi-level protocol (one regroup round) at a small partition count the
// analytic model would never pick it for, and checks the answer is still
// byte-identical to single-node execution — for both write-combining modes —
// with the report attributing a regroup fleet to every boundary.
func TestStagedMultiLevelByteIdentity(t *testing.T) {
	for _, wc := range []bool{false, true} {
		d, tables, li, orders := stagedSetup(t, 0.002, 6, 4)
		cfg := DefaultStageConfig()
		cfg.Partitions = 5
		cfg.BroadcastRowLimit = -1
		cfg.Exchange.Variant.WriteCombining = wc
		cfg.ExchangeLevels = 2

		got, rep, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			t.Fatalf("wc=%v: %v", wc, err)
		}
		want := singleNode(t, q12ExactSQL, engine.Catalog{
			"lineitem": engine.NewMemSource(tpch.Schema(), li),
			"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
		})
		chunksIdentical(t, got, want)

		wantVariant := exchange.Variant{Levels: 2, WriteCombining: wc}.String()
		boundaries, regroups := 0, 0
		for _, ss := range rep.StageStats {
			if ss.Regroup {
				regroups++
				if ss.Variant != wantVariant {
					t.Errorf("wc=%v: regroup of stage %d ran variant %q, want %q", wc, ss.StageID, ss.Variant, wantVariant)
				}
				if ss.Workers != exchange.Groups(cfg.Partitions) {
					t.Errorf("wc=%v: regroup fleet of stage %d has %d workers, want Groups(%d)=%d",
						wc, ss.StageID, ss.Workers, cfg.Partitions, exchange.Groups(cfg.Partitions))
				}
				continue
			}
			if ss.Variant != "" {
				boundaries++
				if ss.Variant != wantVariant {
					t.Errorf("wc=%v: stage %d boundary ran variant %q, want %q", wc, ss.StageID, ss.Variant, wantVariant)
				}
			}
		}
		// q12 has three boundaries: two scan stages feeding the join and the
		// join+partial stage feeding the final merge.
		if boundaries != 3 || regroups != 3 {
			t.Errorf("wc=%v: %d boundaries / %d regroup fleets in stage stats, want 3/3: %+v",
				wc, boundaries, regroups, rep.StageStats)
		}
		// Report.Stages counts planner stages only; regroup fleets are
		// bookkept under their producer.
		if rep.Stages != 4 {
			t.Errorf("wc=%v: stages = %d, want 4", wc, rep.Stages)
		}
	}
}

// TestStagedQ12ScaleSmoke is the scale acceptance point: staged q12 on the
// DES kernel at 512 partitions — a fleet past 1024 workers. The variant
// resolver must send the wide boundaries through the multi-level exchange on
// its own (no forcing), the billed S3 requests against the shard buckets
// must match the per-boundary analytic model integer-exactly (puts/gets; the
// driver's two namespace sweeps add lists on top), and the answer stays
// byte-identical to single-node execution.
func TestStagedQ12ScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-worker DES run skipped in -short mode")
	}
	const parts = 512
	k := simclock.New()
	dep := NewSimulated(k, 29)
	var out *columnar.Chunk
	var rep *Report
	var li, orders *columnar.Chunk
	var buckets []string
	var before []s3.Stats
	var scfg StageConfig
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 33}
		li = g.Generate()
		orders = g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		scfg = DefaultStageConfig()
		scfg.Partitions = parts
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond

		// Snapshot the shard buckets before the query: the deltas are exactly
		// the boundary traffic (table data lives in the tpch bucket).
		buckets = d.InstallExchange(scfg.Exchange)
		for _, b := range buckets {
			st, err := dep.S3.BucketStats(b)
			if err != nil {
				t.Error(err)
				return
			}
			before = append(before, st)
		}
		out, rep, err = d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Errorf("scale run failed: %v", err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if t.Failed() {
		t.FailNow()
	}

	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	chunksIdentical(t, out, want)

	if rep.Workers < 1024 {
		t.Errorf("fleet = %d workers, want >= 1024", rep.Workers)
	}

	// Reconstruct the analytic request model boundary by boundary: each
	// non-regroup stage with a boundary reports its resolved variant, which
	// must be exactly what ChooseVariant picks for its (S, P, B) — and the
	// wide join boundary (S = partitions senders) must have gone multi-level.
	var model exchange.RequestCount
	joinMulti := false
	for _, ss := range rep.StageStats {
		if ss.Regroup || ss.Variant == "" {
			continue
		}
		v := stageplan.ChooseVariant(ss.Workers, parts, len(buckets), scfg.Exchange.Variant, 0)
		if ss.Variant != v.String() {
			t.Errorf("stage %d (S=%d) ran variant %q, want model choice %q", ss.StageID, ss.Workers, ss.Variant, v.String())
		}
		rc := v.Requests(ss.Workers, parts, len(buckets))
		model.Puts += rc.Puts
		model.Gets += rc.Gets
		model.Lists += rc.Lists
		if ss.Workers == parts {
			if v.Levels < 2 {
				t.Errorf("join boundary (S=%d, P=%d) resolved to %q, want multi-level", ss.Workers, parts, ss.Variant)
			}
			joinMulti = true
		}
	}
	if !joinMulti {
		t.Error("no wide join boundary found in stage stats")
	}

	var got exchange.RequestCount
	for i, b := range buckets {
		st, err := dep.S3.BucketStats(b)
		if err != nil {
			t.Fatal(err)
		}
		got.Puts += st.Puts - before[i].Puts
		got.Gets += st.Gets - before[i].Gets
		got.Lists += st.Lists - before[i].Lists
	}
	if got.Puts != model.Puts || got.Gets != model.Gets {
		t.Errorf("billed boundary requests (puts=%d gets=%d) != analytic model (puts=%d gets=%d)",
			got.Puts, got.Gets, model.Puts, model.Gets)
	}
	// The pre-launch and post-merge sweeps List every shard bucket once each
	// on top of the protocol's own discovery lists.
	if got.Lists < model.Lists || got.Lists > model.Lists+2*int64(len(buckets)) {
		t.Errorf("billed lists %d outside [model %d, model+2B %d]",
			got.Lists, model.Lists, model.Lists+2*int64(len(buckets)))
	}
}

// TestStagedMultiLevelSpeculationCompletesViaBackup re-runs the straggler
// scenario over forced multi-level boundaries: the regroup round must merge
// the backup attempt's round-1 files (first committed attempt wins across
// rounds), and a chased second query is untouched.
func TestStagedMultiLevelSpeculationCompletesViaBackup(t *testing.T) {
	const stall = 10 * time.Minute
	g := tpch.Gen{SF: 0.002, Seed: 17}
	li := g.Generate()
	orders := g.OrdersFor(li)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	first, second, rep := runStagedWithStraggler(t, true, 2, stall)
	if t.Failed() {
		return
	}
	chunksIdentical(t, first, want)
	chunksIdentical(t, second, want)
	if rep.Speculated == 0 {
		t.Error("no backup attempts issued for the straggler")
	}
	if rep.Duration >= stall {
		t.Errorf("latency %v waited out the %v stall", rep.Duration, stall)
	}
	found := false
	for _, ss := range rep.StageStats {
		if ss.StageID == 0 && !ss.Regroup && ss.Speculated > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("stage stats did not attribute the backup: %+v", rep.StageStats)
	}
}

// TestStagedMultiLevelZombieSealDiscarded re-runs the epoch-fence zombie
// scenario over forced multi-level boundaries: the zombie's grouped round-1
// files and its seal all carry the losing epoch, and neither the retry's
// regroup fleets nor its receivers can see them.
func TestStagedMultiLevelZombieSealDiscarded(t *testing.T) {
	g := tpch.Gen{SF: 0.002, Seed: 41}
	li := g.Generate()
	orders := g.OrdersFor(li)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	out, rep, _, _ := runStagedZombieSeal(t, true, 2)
	chunksIdentical(t, out, want)
	if rep.QueryID != "q1" {
		t.Errorf("retry ran as %s, want q1 (test premise broken)", rep.QueryID)
	}
	if rep.Epoch != 2 {
		t.Errorf("retry epoch = %d, want 2 (aborted run took 1)", rep.Epoch)
	}
}
