package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/invoke"
	"lambada/internal/lpq"
	"lambada/internal/obs"
	"lambada/internal/scan"
	"lambada/internal/sqlfe"
)

// Report summarizes one query execution.
type Report struct {
	QueryID string
	// CacheHit marks a staged result served from the session's result cache
	// — no workers ran, and every other field except Duration is zero.
	CacheHit bool
	// Epoch is the query's durable fence token (staged executions): the
	// DynamoDB epoch item's value after the driver's atomic increment at
	// query start. 1 on a clean deployment; higher when an aborted
	// identically-numbered run came before. 0 for single-scope queries.
	Epoch   int
	Workers int
	// Stages is the stage count of a stage-decomposed (shuffle) execution
	// (0 for single-scope queries).
	Stages   int
	Duration time.Duration
	// Invocation is the driver-side time spent launching workers.
	Invocation time.Duration
	// WorkerProcessing are the per-worker plan-fragment execution times,
	// sorted ascending — the distribution of Figure 11.
	WorkerProcessing []time.Duration
	ColdWorkers      int
	// Speculated counts backup invocations issued for stragglers (summed
	// over stages in staged executions).
	Speculated int
	// FailureSeals counts retryable worker failure seals the staged
	// scheduler absorbed by re-invoking the fragment (0 when every worker
	// succeeded first try).
	FailureSeals int
	// DriverRetries and WorkerRetries count substrate-call retries the
	// resilience layer spent on this query, on the driver side and summed
	// over worker invocations respectively.
	DriverRetries int64
	WorkerRetries int64
	// InjectedFaults is the deployment injector's cumulative per-"op/kind"
	// fault count (nil outside chaos deployments). Cumulative across
	// queries: the injector's schedule spans the deployment.
	InjectedFaults map[string]int
	// StageStats records per-stage launch/seal timing and speculation
	// counters of a staged execution (nil for single-scope queries).
	StageStats []StageStat
	// CostBefore/CostAfter snapshot the meter around the query; the
	// difference is what the query cost.
	CostDelta map[string]float64
	TotalCost float64
	// S3GetRequests and S3ReadBytes count the billed S3 read requests and
	// read bytes the query issued — the scan layer's two cost drivers,
	// surfaced so pruning/coalescing wins are visible without reading
	// awssim internals.
	S3GetRequests int64
	S3ReadBytes   int64
	// LambdaMiBNs is the billed Lambda duration of the query as exact
	// MiB·nanoseconds (the integer basis of the GB-second duration charge).
	LambdaMiBNs int64
	// Wakeups counts completion-signal wakeups delivered during the query —
	// the keyed-broadcast layer's efficiency metric (0 when the environment
	// does not expose a wakeup counter).
	Wakeups uint64
	// Trace and Span expose the query's span tree when the deployment runs
	// with EnableTracing: Span is the root query span, Trace holds the whole
	// recording (shared across queries of the deployment). Nil/0 when
	// tracing is off.
	Trace *obs.Tracer
	Span  obs.SpanID
}

// StageStat is one stage's slice of a staged execution.
type StageStat struct {
	StageID int
	Workers int
	// Launched and Sealed are offsets from the query start: under pipelined
	// launch every eager stage's Launched is near zero, and Sealed shows
	// how the DAG actually overlapped.
	Launched time.Duration
	Sealed   time.Duration
	// Speculated counts backup attempts invoked for this stage's
	// stragglers.
	Speculated int
	// Span is the stage's span (0 when tracing is off) — the anchor for
	// per-stage cost attribution in Report.Profile.
	Span obs.SpanID
	// Variant is the stage's output-boundary exchange algorithm as resolved
	// by the driver ("1l", "2l-wc", ...); empty for the result stage, which
	// posts to the queue instead of publishing a boundary.
	Variant string
	// Regroup marks the synthetic regroup fleet of a multi-level boundary;
	// StageID is then the PRODUCING stage whose boundary it regroups.
	Regroup bool
}

// costSnap is the meter state captured around a query: per-label dollar
// totals plus the raw S3 read request/byte, Lambda duration and wakeup
// counters.
type costSnap struct {
	cost        map[string]float64
	s3Gets      int64
	s3ReadBytes int64
	lambdaMiBNs int64
	wakeups     uint64
}

// costSnapshot captures the meter's current per-label totals.
func (d *query) costSnapshot() costSnap {
	snap := costSnap{cost: map[string]float64{}}
	for _, l := range d.dep.Meter.Labels() {
		snap.cost[l] = float64(d.dep.Meter.Get(l))
	}
	snap.s3Gets = d.dep.Meter.Count(pricing.LabelS3Read)
	snap.s3ReadBytes = d.dep.S3.ReadBytes()
	snap.lambdaMiBNs = d.dep.Lambda.BilledMiBNs()
	snap.wakeups = d.wakeupCount()
	return snap
}

// wakeupCount reads the environment's completion-wakeup counter when it has
// one (DES kernel processes and the Immediate environment both do).
func (d *query) wakeupCount() uint64 {
	if c, ok := d.env.(interface{ CompletionWakeups() uint64 }); ok {
		return c.CompletionWakeups()
	}
	return 0
}

// quiesce, on traced runs, waits until no worker invocation is still
// executing before the cost window closes. Straggler losers — speculation
// backups whose original won, zombie attempts — bill their Lambda duration
// when their handler returns; waiting for them makes the per-span cost
// attribution sum exactly to the Report's meter deltas, at the price of the
// traced Duration including the straggler tail. Untraced runs keep the
// historical window (report the instant the result is complete).
func (d *query) quiesce() {
	if !d.dep.Trace.Enabled() {
		return
	}
	for d.dep.Lambda.Running() > 0 {
		simenv.WaitNotify(d.env, d.cfg.PollInterval)
	}
}

// fillCostDelta records what the query cost: the meter movement since the
// snapshot, per label and in total.
// Note that the meters are deployment-wide: when other queries of the
// session overlap this one's window, their spend shows up in this delta
// too — exact per-query attribution needs tracing (Report.Profile).
func (d *query) fillCostDelta(rep *Report, before costSnap) {
	rep.CostDelta = map[string]float64{}
	for _, l := range d.dep.Meter.Labels() {
		delta := float64(d.dep.Meter.Get(l)) - before.cost[l]
		if delta > 0 {
			rep.CostDelta[l] = delta
			rep.TotalCost += delta
		}
	}
	rep.S3GetRequests = d.dep.Meter.Count(pricing.LabelS3Read) - before.s3Gets
	rep.S3ReadBytes = d.dep.S3.ReadBytes() - before.s3ReadBytes
	rep.LambdaMiBNs = d.dep.Lambda.BilledMiBNs() - before.lambdaMiBNs
	rep.Wakeups = d.wakeupCount() - before.wakeups
	rep.DriverRetries = d.retry.stats.Retries()
	rep.WorkerRetries = d.workerRetries
	if d.dep.Faults != nil {
		rep.InjectedFaults = d.dep.Faults.Injected()
	}
}

// drainResults polls the result queue until n distinct workers of the query
// have reported, discarding leftovers of earlier aborted queries (a query
// failing mid-flight returns before its remaining workers post; their
// messages must not poison the next query on the same driver) and — SQS
// being at-least-once — duplicate deliveries of a worker's completion
// message, which would otherwise under-collect the remaining workers.
// Worker errors fail the query; every first-per-worker message is handed to
// onMsg. The single-scope and exchanged collectors run through it; the
// staged scheduler has its own event loop (stage.go) with the same queryID
// discard plus per-(stage,worker) attempt dedup.
func (d *query) drainResults(queryID string, n int, onMsg func(rm resultMsg) error) error {
	deadline := d.env.Now() + d.cfg.MaxWait
	seen := make(map[int]bool, n)
	for n > 0 {
		var msgs []sqs.Message
		if err := d.retry.policy.Do(d.env, "sqs.Receive", func() error {
			var rerr error
			msgs, rerr = d.dep.SQS.Receive(d.env, d.cfg.ResultQueue, 10)
			return rerr
		}); err != nil {
			return fmt.Errorf("driver: collecting results: %w", err)
		}
		for _, m := range msgs {
			var rm resultMsg
			if err := json.Unmarshal(m.Body, &rm); err != nil {
				return err
			}
			if rm.QueryID != queryID || rm.Stage != 0 || rm.Epoch != 0 {
				// Leftover of an earlier aborted query — including a zombie
				// worker of an aborted STAGED run whose query numbering
				// collides with this single-scope query's: its message
				// carries a stage or epoch and single-scope workers post
				// neither. (A single-scope zombie against a single-scope
				// retry remains indistinguishable — only staged runs carry
				// the epoch fence.)
				continue
			}
			if seen[rm.WorkerID] {
				continue // duplicate delivery of an already-counted worker
			}
			if rm.Err != "" {
				return fmt.Errorf("driver: worker %d failed: %s", rm.WorkerID, rm.Err)
			}
			seen[rm.WorkerID] = true
			d.workerRetries += rm.Retries
			if err := onMsg(rm); err != nil {
				return err
			}
			n--
		}
		if n == 0 {
			return nil
		}
		if d.env.Now() >= deadline {
			return fmt.Errorf("driver: %d results missing after %v", n, d.cfg.MaxWait)
		}
		if len(msgs) == 0 {
			// Park on the result queue's completion topic — wake at the next
			// message's exact arrival instant, timed poll fallback; sends to
			// other queues (or other substrate writes) leave us parked.
			simenv.WaitNotifyKey(d.env, "sqs/"+d.cfg.ResultQueue, d.cfg.PollInterval)
		}
	}
	return nil
}

// collectResults drains n results and decodes their chunks in arrival
// order.
func (d *query) collectResults(queryID string, n int) (chunks []*columnar.Chunk, processing []time.Duration, cold int, err error) {
	err = d.drainResults(queryID, n, func(rm resultMsg) error {
		if rm.Cold {
			cold++
		}
		processing = append(processing, time.Duration(rm.ProcessingNs))
		if len(rm.Chunk) > 0 {
			c, err := decodeChunk(rm.Chunk)
			if err != nil {
				return err
			}
			chunks = append(chunks, c)
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return chunks, processing, cold, nil
}

// decodeChunk reads a result message's lpq blob.
func decodeChunk(blob []byte) (*columnar.Chunk, error) {
	r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}

// parseSQL fronts the SQL frontend for the session-level API.
func parseSQL(sql string) (engine.Plan, error) { return sqlfe.Parse(sql) }

// RunSQL parses, optimizes, distributes and runs a SQL query against the
// lpq files of one table.
func (d *Driver) RunSQL(sql string, table string, files []scan.FileRef) (*columnar.Chunk, *Report, error) {
	return d.sess.RunSQL(d.env, sql, table, files)
}

// RunSQLBroadcast runs a SQL query whose INNER JOINs reference small
// driver-side tables: `table` is the big S3-backed probe side, and every
// other table in the query must appear in broadcast, shipped inside the
// worker payloads (§3.2's "reading small amounts of data locally that
// should be broadcasted into the serverless workers").
func (d *Driver) RunSQLBroadcast(sql string, table string, files []scan.FileRef, broadcast map[string]*columnar.Chunk) (*columnar.Chunk, *Report, error) {
	return d.sess.RunSQLBroadcast(d.env, sql, table, files, broadcast)
}

// RunPlan optimizes and executes a logical plan on the serverless fleet:
// the scan/filter/partial-aggregate scope runs in the workers; the final
// merge scope runs on the driver (§3.2).
func (d *Driver) RunPlan(plan engine.Plan, table string, files []scan.FileRef) (*columnar.Chunk, *Report, error) {
	return d.sess.RunPlan(d.env, plan, table, files)
}

// RunPlanBroadcast runs a plan whose joins reference small driver-side
// tables: the driver ships them inside the worker payloads (§3.2's
// "reading small amounts of data locally that should be broadcasted into
// the serverless workers").
func (d *Driver) RunPlanBroadcast(plan engine.Plan, table string, files []scan.FileRef, broadcast map[string]*columnar.Chunk) (*columnar.Chunk, *Report, error) {
	return d.sess.RunPlanBroadcast(d.env, plan, table, files, broadcast)
}

func (d *query) runPlan(plan engine.Plan, table string, files []scan.FileRef, broadcast map[string]*columnar.Chunk) (*columnar.Chunk, *Report, error) {
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("driver: no input files")
	}
	queryID := d.id

	costBefore := d.costSnapshot()
	startTime := d.env.Now()

	// Query span: the root of this query's span tree. Binding it to the
	// driver environment routes every driver-side billed request (schema
	// reads, invokes, result polling) into op spans beneath it; Release in
	// the defer closes any still-open driver-side span on error paths.
	tr := d.dep.Trace
	var qspan obs.SpanID
	if tr.Enabled() {
		qspan = tr.StartSpan(obs.KindQuery, queryID, 0, startTime)
		tr.Bind(d.env, qspan)
		defer func() { tr.Release(d.env, d.env.Now()) }()
	}

	// Resolve the table schema from the first file's footer (driver-side
	// metadata read).
	driverClient := s3.NewClient(d.dep.S3, d.env)
	metaSrc := scan.New(driverClient, d.cfg.Scan, files[0])
	schema, err := metaSrc.Schema()
	if err != nil {
		return nil, nil, fmt.Errorf("driver: resolving schema: %w", err)
	}

	// Optimize against a schema-only catalog, then split into scopes.
	optCat := engine.Catalog{table: engine.NewMemSource(schema)}
	blobs := map[string][]byte{}
	for name, chunk := range broadcast {
		optCat[name] = engine.NewMemSource(chunk.Schema, chunk)
		blob, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, chunk)
		if err != nil {
			return nil, nil, err
		}
		blobs[name] = blob
	}
	opt, err := engine.Optimize(plan, optCat)
	if err != nil {
		return nil, nil, err
	}
	dist, err := engine.SplitDistributed(opt)
	if err != nil {
		return nil, nil, err
	}
	workerPlanJSON, err := engine.MarshalPlan(dist.Worker)
	if err != nil {
		return nil, nil, err
	}

	// Assign files to workers (contiguous ranges of F files each).
	workers := d.cfg.Workers
	if workers <= 0 {
		f := d.cfg.FilesPerWorker
		workers = (len(files) + f - 1) / f
	}
	if workers > len(files) {
		workers = len(files)
	}
	payloads := make([][]byte, workers)
	per := (len(files) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(files) {
			hi = len(files)
		}
		if lo > hi {
			lo = hi
		}
		p := workerPayload{
			QueryID:     queryID,
			WorkerID:    w,
			NumWorkers:  workers,
			Plan:        workerPlanJSON,
			Table:       table,
			Files:       files[lo:hi],
			ResultQueue: d.cfg.ResultQueue,
			Broadcast:   blobs,
		}
		body, err := json.Marshal(p)
		if err != nil {
			return nil, nil, err
		}
		payloads[w] = body
	}

	// Invoke the fleet.
	invokeStart := d.env.Now()
	if err := d.invokeAll(payloads, qspan); err != nil {
		return nil, nil, err
	}
	invocation := d.env.Now() - invokeStart

	// Collect results from the SQS queue (§3.3: "the driver polls until it
	// has heard back from all workers"), with optional straggler
	// speculation (backup requests).
	var chunks []*columnar.Chunk
	var processing []time.Duration
	var cold, speculated int
	if d.cfg.Speculate.Enabled {
		var err error
		chunks, processing, cold, speculated, err = d.collectWithSpeculation(queryID, payloads, invokeStart, d.cfg.Speculate, qspan)
		if err != nil {
			return nil, nil, err
		}
	} else {
		var err error
		chunks, processing, cold, err = d.collectResults(queryID, workers)
		if err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(processing, func(i, j int) bool { return processing[i] < processing[j] })

	// Driver scope: merge worker results.
	ws, err := dist.Worker.OutSchema()
	if err != nil {
		return nil, nil, err
	}
	dcat := engine.Catalog{engine.WorkerResultTable: engine.NewMemSource(ws, chunks...)}
	result, err := engine.Execute(dist.Driver, dcat)
	if err != nil {
		return nil, nil, err
	}

	// Close the cost window only after every invocation — speculation
	// losers included — finished billing, so per-span attribution and the
	// Report deltas agree exactly (no-op when tracing is off).
	d.quiesce()
	endTime := d.env.Now()
	rep := &Report{
		QueryID:          queryID,
		Workers:          workers,
		Duration:         endTime - startTime,
		Invocation:       invocation,
		WorkerProcessing: processing,
		ColdWorkers:      cold,
		Speculated:       speculated,
	}
	if tr.Enabled() {
		tr.EndSpan(qspan, endTime)
		rep.Trace, rep.Span = tr, qspan
	}
	d.fillCostDelta(rep, costBefore)
	return result, rep, nil
}

// invokeOne launches a single worker payload (used by backup requests).
// Like every substrate call the driver makes, it runs under the query's
// retry policy: transient invoke errors retry with backoff, quota
// rejections (throttle-class Invoke errors are permanent capacity answers,
// not blips) and payload errors stay fatal. span parents the invocation's
// trace span — the stage span on staged runs, the query span otherwise.
func (d *query) invokeOne(payload []byte, workerID int, span obs.SpanID) error {
	adm := d.s.admission
	// Recovery traffic — failure relaunches and speculation backups — must
	// not queue behind tokens held by workers parked on the very fragment
	// being recovered, so it is admitted past the cap (counted in Overflow)
	// instead of blocking.
	adm.AcquireOverflow(d.env)
	adm.Pace(d.env)
	if err := d.retry.policy.Do(d.env, "lambda.Invoke", func() error {
		return d.dep.Lambda.Invoke(d.env, d.cfg.FunctionName, payload,
			lambdasvc.InvokeOptions{WorkerID: workerID, Pipelined: true, Span: span})
	}); err != nil {
		// Invoke fails before any container spawns: hand the token back.
		adm.Release(d.env, 1)
		return err
	}
	return nil
}

// invokeAll launches the fleet, directly or via the two-level tree; span
// parents the invocation spans (tree children parent under their invoking
// first-generation worker instead, mirroring the real invocation topology).
func (d *query) invokeAll(payloads [][]byte, span obs.SpanID) error {
	adm := d.s.admission
	if !invoke.UseTree(d.cfg.TreeInvoke, len(payloads)) {
		pacing := invoke.DriverPacing(d.cfg.Region, d.cfg.InvokeThreads)
		// Whole-fleet admission: single-scope fleets interdepend (an
		// exchanged fleet shuffles all-to-all through S3), so launching a
		// partial fleet could park token-holding workers behind peers that
		// cannot launch. Acquire every token up front instead — one blocking
		// call the workers of other queries unblock as they settle. Nil
		// admission (MaxInFlight 0) keeps the legacy per-query pacing.
		adm.Acquire(d.env, len(payloads))
		spawned := 0
		for i, p := range payloads {
			// Pipelined: the driver's requester thread pool overlaps the
			// round trips; the loop paces at the effective rate (Table 1) —
			// via the shared pacer under admission, per-query otherwise.
			body, id := p, i
			adm.Pace(d.env)
			if err := d.retry.policy.Do(d.env, "lambda.Invoke", func() error {
				return d.dep.Lambda.Invoke(d.env, d.cfg.FunctionName, body, lambdasvc.InvokeOptions{WorkerID: id, Pipelined: true, Span: span})
			}); err != nil {
				// Invoke errors fail before any container spawns: hand the
				// whole un-launched remainder's tokens back.
				adm.Release(d.env, len(payloads)-spawned)
				return err
			}
			spawned++
			if adm == nil {
				d.env.Sleep(pacing.Gap())
			}
		}
		return nil
	}

	firstGen, children := invoke.TreeFanout(len(payloads))
	adm.Acquire(d.env, len(payloads))
	spawned := 0
	for gi, fg := range firstGen {
		var p workerPayload
		if err := json.Unmarshal(payloads[fg], &p); err != nil {
			adm.Release(d.env, len(payloads)-spawned)
			return err
		}
		for _, child := range children[gi] {
			p.Children = append(p.Children, json.RawMessage(payloads[child]))
		}
		body, err := json.Marshal(p)
		if err != nil {
			adm.Release(d.env, len(payloads)-spawned)
			return err
		}
		id := fg
		adm.Pace(d.env)
		if err := d.retry.policy.Do(d.env, "lambda.Invoke", func() error {
			return d.dep.Lambda.Invoke(d.env, d.cfg.FunctionName, body, lambdasvc.InvokeOptions{WorkerID: id, Span: span})
		}); err != nil {
			// The failed node spawned nothing; its token and every
			// un-invoked node's (1 + children each) go back.
			adm.Release(d.env, len(payloads)-spawned)
			return err
		}
		// A tree node's Invoke spawns the first-generation worker plus its
		// embedded children (invoked worker-side, past the driver).
		spawned += 1 + len(children[gi])
	}
	return nil
}
