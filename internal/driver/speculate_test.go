package driver

import (
	"math"
	"testing"
	"time"

	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// runWithStraggler runs Q6 on the DES deployment with worker 2 stalled for
// stall and the given speculation policy; it returns the query latency and
// the backup-invocation count.
func runWithStraggler(t *testing.T, stall time.Duration, spec SpeculateConfig) (time.Duration, int, float64) {
	t.Helper()
	k := simclock.New()
	dep := NewSimulated(k, 77)
	var dur time.Duration
	var speculated int
	var revenue float64
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.MaxWait = 5 * time.Minute
		cfg.Speculate = spec
		cfg.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			// A degraded container stalls worker 2's first attempt; the
			// backup (attempt 1) lands on a healthy container.
			if workerID == 2 && attempt == 0 {
				return stall
			}
			return 0
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		data := tpch.Gen{SF: 0.002, Seed: 41}.Generate()
		refs, err := d.UploadTable("tpch", "lineitem", data, 6, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		out, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Error(err)
			return
		}
		dur = rep.Duration
		speculated = rep.Speculated
		revenue = out.Column("revenue").Float64s[0]
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	return dur, speculated, revenue
}

func TestSpeculationCutsStragglerTail(t *testing.T) {
	const stall = 60 * time.Second
	want := tpch.Q6Reference(tpch.Gen{SF: 0.002, Seed: 41}.Generate())

	// Without speculation the query waits out the full stall.
	noSpec, n0, rev0 := runWithStraggler(t, stall, SpeculateConfig{})
	if n0 != 0 {
		t.Errorf("speculation disabled but %d backups issued", n0)
	}
	if noSpec < stall {
		t.Errorf("un-speculated latency %v below the stall %v", noSpec, stall)
	}
	if math.Abs(rev0-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", rev0, want)
	}

	// With backup requests the driver re-invokes the straggler's payload
	// and finishes as soon as the backup answers.
	withSpec, n1, rev1 := runWithStraggler(t, stall, DefaultSpeculateConfig())
	if n1 == 0 {
		t.Fatal("no backup invocations issued for the straggler")
	}
	if withSpec >= noSpec/2 {
		t.Errorf("speculated latency %v not well below unspeculated %v", withSpec, noSpec)
	}
	if math.Abs(rev1-want) > 1e-6*want {
		t.Errorf("speculated revenue = %v, want %v (duplicates must not double-count)", rev1, want)
	}
}

func TestSpeculationIdleOnHealthyFleet(t *testing.T) {
	// No stragglers: speculation must not fire and the answer is intact.
	dur, n, rev := runWithStraggler(t, 0, DefaultSpeculateConfig())
	if n != 0 {
		t.Errorf("healthy fleet triggered %d backups", n)
	}
	want := tpch.Q6Reference(tpch.Gen{SF: 0.002, Seed: 41}.Generate())
	if math.Abs(rev-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", rev, want)
	}
	if dur > 30*time.Second {
		t.Errorf("healthy query took %v", dur)
	}
}
