package driver

import (
	"encoding/json"
	"fmt"
	"time"

	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/s3"
	"lambada/internal/exchange"
	"lambada/internal/stageplan"
)

// Synthetic regroup fleets. A multi-level stage boundary (§4.4.2, adapted —
// see internal/exchange/multilevel.go) needs an intermediate round between
// the producing stage's publish and the consuming stage's collect: worker g
// of Groups(P) merges partition group g across all senders and re-publishes
// it as per-partition round-2 objects. The driver schedules that round as
// its own stage run — a fleet of Groups(P) plan-less workers inserted
// between producer and consumers — so pipelined launch, straggler
// speculation, failure-seal relaunch and the liveness cap all apply to it
// unchanged. Its stage ID lives far above the planner's ID space, keyed off
// the producer, and its seal is what consumers of the boundary gate their
// collects on.

// regroupIDBase offsets synthetic regroup stage IDs above every planner-
// assigned ID (the planner numbers stages densely from 0).
const regroupIDBase = 1_000_000

// regroupStageID names the synthetic regroup stage of one producer's
// boundary.
func regroupStageID(producer int) int { return regroupIDBase + producer }

// regroupSpec is the wire form of one regroup worker's task, shipped in
// workerPayload.Regroup.
type regroupSpec struct {
	QueryID string `json:"queryId"`
	Epoch   int    `json:"epoch"`
	// Stage is the producing stage whose boundary is regrouped; boundary
	// object names stay keyed by it across all rounds.
	Stage      int              `json:"stage"`
	Senders    int              `json:"senders"`
	Partitions int              `json:"partitions"`
	Keys       []string         `json:"keys"`
	Variant    exchange.Variant `json:"variant"`
	Buckets    []string         `json:"buckets"`
	Prefix     string           `json:"prefix"`
	PollNs     int64            `json:"pollNs"`
	MaxWaitNs  int64            `json:"maxWaitNs"`
	SealTable  string           `json:"sealTable"`
}

// regroupRun builds the scheduler entry for one multi-level boundary's
// regroup fleet: Groups(P) attempt-0 payloads, depending on the producing
// stage (the fleet is invoked pipelined like any eager stage and parks on
// the producer's ready marker).
func (d *query) regroupRun(queryID string, epoch int, st *stageplan.Stage, senders int, buckets []string, sealTable string, cfg StageConfig) (*stageRun, error) {
	spec := regroupSpec{
		QueryID:    queryID,
		Epoch:      epoch,
		Stage:      st.ID,
		Senders:    senders,
		Partitions: st.Output.Partitions,
		Keys:       st.Output.Keys,
		Variant:    st.Output.Variant,
		Buckets:    buckets,
		Prefix:     fmt.Sprintf("%s/%s/e%d", d.cfg.FunctionName, queryID, epoch),
		PollNs:     int64(cfg.Exchange.Poll),
		MaxWaitNs:  int64(cfg.Exchange.MaxWait),
		SealTable:  sealTable,
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	id := regroupStageID(st.ID)
	groups := exchange.Groups(st.Output.Partitions)
	payloads := make([]workerPayload, groups)
	for g := 0; g < groups; g++ {
		payloads[g] = workerPayload{
			QueryID:     queryID,
			WorkerID:    g,
			NumWorkers:  groups,
			ResultQueue: d.cfg.ResultQueue,
			StageID:     id,
			Regroup:     specJSON,
			Epoch:       epoch,
		}
	}
	synth := &stageplan.Stage{
		ID:           id,
		DependsOn:    []int{st.ID},
		Eager:        true,
		MaxAttempts:  st.MaxAttempts,
		MaxStageWait: st.MaxStageWait,
	}
	return &stageRun{
		st:         synth,
		payloads:   payloads,
		winners:    map[int]int{},
		boundary:   st.Output.Variant,
		regroup:    true,
		regroupFor: st.ID,
	}, nil
}

// runRegroup is the worker side of a regroup invocation: wait out the
// producing stage's ready marker, then run the intermediate round for this
// worker's group under this invocation's attempt number (regroup attempts
// version their round-2 publishes exactly like sender attempts — first
// committed attempt wins at the receivers). The seal travels back through
// the result queue like any fragment's, with no chunk.
func (d *Session) runRegroup(ctx *lambdasvc.Ctx, ws *retryScope, client *s3.Client, p *workerPayload) error {
	var spec regroupSpec
	if err := json.Unmarshal(p.Regroup, &spec); err != nil {
		return err
	}
	opts := exchange.Options{
		Variant: spec.Variant,
		Buckets: spec.Buckets,
		Prefix:  spec.Prefix,
		Poll:    time.Duration(spec.PollNs),
		MaxWait: time.Duration(spec.MaxWaitNs),
	}
	// One deadline across both barriers — the producer-seal wait and the
	// round-1 commit discovery — mirroring runStageFragment.
	deadline := ctx.Env.Now() + time.Duration(spec.MaxWaitNs)
	ss := stageSpec{SealTable: spec.SealTable, QueryID: spec.QueryID, Epoch: spec.Epoch, PollNs: spec.PollNs}
	if err := d.waitSealed(ctx, ws, &ss, spec.Stage, deadline); err != nil {
		return err
	}
	if rem := deadline - ctx.Env.Now(); rem < opts.MaxWait {
		if rem < 0 {
			rem = 0
		}
		opts.MaxWait = rem
	}
	return exchange.RegroupStage(client, opts, exchange.Boundary{
		Stage:      spec.Stage,
		Attempt:    p.Attempt,
		Senders:    spec.Senders,
		Partitions: spec.Partitions,
	}, p.WorkerID, spec.Keys)
}
