package driver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/sqlfe"
	"lambada/internal/stageplan"
	"lambada/internal/tpch"
)

// q12PoisonSQL is the aborted run's query in the zombie-seal scenario: the
// same q12 shape over a different date window, so its boundary rows and
// seals differ from the retry's — debris that would skew every aggregate if
// the retry's barriers accepted it.
const q12PoisonSQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_linenumber) AS lines,
       MIN(l_shipdate) AS first_ship, MAX(l_shipdate) AS last_ship
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

// runStagedZombieSeal reproduces the race the epoch fence closes. Driver 1
// runs the poison query as q1 with one scan worker stalled; its exchange
// consumers time out, the query aborts, and the stalled worker — a zombie
// of the aborted run — is still in flight. Driver 2 (fresh, same
// deployment, query numbering restarted) retries a different query under
// the same q1 namespace. The zombie wakes AFTER driver 2's pre-launch
// purge/sweep, publishes its boundary files and posts its seal mid-retry —
// and the retry must not notice: the zombie's artifacts all carry epoch 1,
// the retry runs as epoch 2.
func runStagedZombieSeal(t *testing.T, wc bool, levels int) (*columnar.Chunk, *Report, time.Duration, float64) {
	t.Helper()
	const zombieStall = 28 * time.Second
	k := simclock.New()
	dep := NewSimulated(k, 97)
	var out *columnar.Chunk
	var rep *Report
	var dur time.Duration
	var cost float64
	k.Go("driver", func(p *simclock.Proc) {
		base := DefaultConfig()
		base.PollInterval = 50 * time.Millisecond
		// Stage 1 is the lineitem scan (stage 0 is the join): a scan worker
		// makes the sharpest zombie — woken, it immediately publishes its
		// boundary files and posts its seal, no barriers in between.
		cfg1 := base
		cfg1.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			// Worker 0 always exists, whatever file pruning leaves of the
			// lineitem fleet.
			if stage == 1 && workerID == 0 && attempt == 0 {
				return zombieStall
			}
			return 0
		}
		d1 := New(dep, p, cfg1)
		if err := d1.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 41}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := d1.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d1.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		// Driver 1's consumers give up well before the zombie wakes, so the
		// abort happens first and its error seals are purged before the
		// retry launches.
		scfg.Exchange.MaxWait = 20 * time.Second
		scfg.Exchange.Variant = exchange.Variant{Levels: 1, WriteCombining: wc}
		scfg.ExchangeLevels = levels

		d1Start := p.Now()
		if _, _, err := d1.RunSQLStaged(q12PoisonSQL, tables, scfg); err == nil {
			t.Error("aborted run unexpectedly succeeded (test premise broken)")
			return
		}

		// The retry: fresh driver, query numbering restarts at q1. The
		// zombie of the aborted run is still asleep.
		d2 := New(dep, p, base)
		if err := d2.Install(); err != nil {
			t.Error(err)
			return
		}
		d2Start := p.Now()
		if d1Start+zombieStall <= d2Start {
			t.Errorf("zombie woke at ≤%v, before the retry's purge at %v (test premise broken)",
				d1Start+zombieStall, d2Start)
			return
		}
		// Stall the retry's own (stage 1, worker 1) past the zombie's post,
		// so the zombie's stale seal arrives while the retry is still
		// waiting for that very worker — the exact interleaving that would
		// have sealed the scan stage with the poison run's boundary data.
		cfg2 := base
		cfg2.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			if stage == 1 && workerID == 1 && attempt == 0 {
				return 15 * time.Second
			}
			return 0
		}
		d2 = New(dep, p, cfg2)
		if err := d2.Install(); err != nil {
			t.Error(err)
			return
		}
		out, rep, err = d2.RunSQLStaged(q12ExactSQL, tables, scfg)
		if err != nil {
			t.Errorf("wc=%v: retry poisoned: %v", wc, err)
			return
		}
		dur = rep.Duration
		cost = rep.TotalCost
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if t.Failed() {
		t.FailNow()
	}

	// The zombie's seal must have been received — and discarded — during
	// the retry's collection window: nothing may linger in the result
	// queue once the simulation drained.
	if n := dep.SQS.Len(DefaultConfig().ResultQueue); n != 0 {
		t.Errorf("wc=%v: %d messages left in the result queue (zombie posted outside the retry's window?)", wc, n)
	}
	// And the zombie's post-purge boundary files (epoch-1 debris) fell to
	// the retry's final sweep: the whole q1 namespace is empty, every epoch.
	client := s3.NewClient(dep.S3, simenv.NewImmediate())
	scfg := DefaultStageConfig()
	for _, b := range bucketNamesFor(DefaultConfig().FunctionName, scfg.Exchange.Buckets) {
		entries, err := client.List(b, DefaultConfig().FunctionName+"/q1")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("wc=%v: %d zombie boundary objects left in %s (first: %s)", wc, len(entries), b, entries[0].Key)
		}
	}
	return out, rep, dur, cost
}

// bucketNamesFor mirrors InstallExchange's shard-bucket naming.
func bucketNamesFor(fn string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-xshard-%d", fn, i)
	}
	return out
}

// TestStagedZombieSealDiscarded is the epoch-fence acceptance test: a
// zombie worker of an aborted identically-numbered run posts its seal and
// boundary files after the retry's purge, and the retry's result stays
// byte-identical to a clean single-node run — at both exchange variants —
// with the whole boundary namespace (the zombie's epoch-1 debris included)
// swept afterwards.
func TestStagedZombieSealDiscarded(t *testing.T) {
	g := tpch.Gen{SF: 0.002, Seed: 41}
	li := g.Generate()
	orders := g.OrdersFor(li)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	for _, wc := range []bool{false, true} {
		out, rep, _, _ := runStagedZombieSeal(t, wc, 1)
		chunksIdentical(t, out, want)
		if rep.QueryID != "q1" {
			t.Errorf("wc=%v: retry ran as %s, want q1 (test premise broken)", wc, rep.QueryID)
		}
		if rep.Epoch != 2 {
			t.Errorf("wc=%v: retry epoch = %d, want 2 (aborted run took 1)", wc, rep.Epoch)
		}
	}
}

// TestStagedZombieSealDESDeterministic: the zombie scenario — stall, abort,
// fence increment, discarded stale seal and all — resolves identically
// across DES runs.
func TestStagedZombieSealDESDeterministic(t *testing.T) {
	_, _, d1, c1 := runStagedZombieSeal(t, true, 1)
	_, _, d2, c2 := runStagedZombieSeal(t, true, 1)
	if d1 != d2 || c1 != c2 {
		t.Errorf("zombie scenario not deterministic: (%v,%v) vs (%v,%v)", d1, c1, d2, c2)
	}
}

// TestStagedAllStragglersRecovered covers the liveness hole the quorum
// policy cannot: EVERY worker of the scan stage stalls on its first
// attempt, so speculation's quorum never gets a single response. The
// per-stage MaxStageWait cap re-invokes the whole fleet as attempt 1 and
// the query completes far below the stall, byte-identical to single-node.
func TestStagedAllStragglersRecovered(t *testing.T) {
	const stall = 10 * time.Minute
	k := simclock.New()
	dep := NewSimulated(k, 59)
	var out *columnar.Chunk
	var rep *Report
	var li, orders *columnar.Chunk
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.Speculate = DefaultSpeculateConfig()
		cfg.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			if stage == 1 && attempt == 0 {
				return stall // the whole first-attempt fleet of the lineitem scan
			}
			return 0
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 23}
		li = g.Generate()
		orders = g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		scfg.Exchange.Variant = exchange.Variant{Levels: 1}
		scfg.MaxStageWait = 20 * time.Second
		out, rep, err = d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Errorf("all-stragglers query failed: %v", err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if t.Failed() {
		t.FailNow()
	}
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	chunksIdentical(t, out, want)
	if rep.Duration >= stall {
		t.Errorf("latency %v waited out the %v stall (cap never fired)", rep.Duration, stall)
	}
	if rep.Duration >= 2*time.Minute {
		t.Errorf("latency %v, want well under 2m (cap at 20s plus one attempt)", rep.Duration)
	}
	scanFleet := 0
	for _, ss := range rep.StageStats {
		if ss.StageID == 1 {
			scanFleet = ss.Workers
			if ss.Speculated != ss.Workers {
				t.Errorf("scan stage speculated %d of %d workers, want the whole fleet", ss.Speculated, ss.Workers)
			}
		}
	}
	if scanFleet == 0 || rep.Speculated < scanFleet {
		t.Errorf("speculated = %d, want >= scan fleet (%d)", rep.Speculated, scanFleet)
	}
}

// TestStageFragmentSingleSealDeadline: a k-input fragment gets ONE seal-wait
// deadline, not one per input. One producer seals late (but in time), the
// other never; the fragment must report failure roughly at MaxWait from its
// start — not at lateSeal+MaxWait, the compounding the per-input deadline
// allowed.
func TestStageFragmentSingleSealDeadline(t *testing.T) {
	const (
		sealWait  = 30 * time.Second
		lateStall = 15 * time.Second
		deadStall = 3 * time.Minute
	)
	// Find the join stage's input order so the never-sealing producer is
	// its LAST input — the case where the restarted deadline compounds.
	g := tpch.Gen{SF: 0.002, Seed: 23}
	li := g.Generate()
	orders := g.OrdersFor(li)
	plan := singleNodePlan(t, q12ExactSQL)
	opt, err := engine.Optimize(plan, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema()),
		"orders":   engine.NewMemSource(tpch.OrdersSchema()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stageplan.Decompose(opt, stageplan.Stats{Rows: map[string]int64{
		"lineitem": int64(li.NumRows()), "orders": int64(orders.NumRows()),
	}}, stageplan.Config{Partitions: 2, BroadcastRowLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	firstIn, lastIn := -1, -1
	for _, st := range sp.Stages {
		if len(st.Inputs) == 2 {
			firstIn, lastIn = st.Inputs[0].StageID, st.Inputs[1].StageID
		}
	}
	if lastIn < 0 {
		t.Fatal("no two-input join stage in the plan")
	}

	k := simclock.New()
	dep := NewSimulated(k, 31)
	var elapsed time.Duration
	var runErr error
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			switch stage {
			case firstIn:
				return lateStall // seals late but within the fragment deadline
			case lastIn:
				return deadStall // never seals in time
			}
			return 0
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		scfg.Exchange.MaxWait = sealWait
		scfg.Exchange.Variant = exchange.Variant{Levels: 1}
		start := p.Now()
		_, _, runErr = d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		elapsed = p.Now() - start
	})
	k.Run()
	if runErr == nil {
		t.Fatal("query with a dead producer unexpectedly succeeded")
	}
	if !strings.Contains(runErr.Error(), "never sealed") {
		t.Errorf("error %q does not name the seal barrier", runErr)
	}
	// With one deadline per fragment the failure lands near sealWait; the
	// per-input restart would push it past lateStall+sealWait.
	if limit := lateStall + sealWait; elapsed >= limit {
		t.Errorf("fragment failed after %v, want < %v (per-input deadline compounding)", elapsed, limit)
	}
}

// singleNodePlan parses SQL into a logical plan (test helper).
func singleNodePlan(t *testing.T, sql string) engine.Plan {
	t.Helper()
	plan, err := sqlfe.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestAcquireEpochIncrementsDurably: successive drivers on one deployment
// observe strictly increasing epochs per query ID, independent counters per
// query ID, and the epoch survives driver restarts (it lives in DynamoDB,
// not driver memory).
func TestAcquireEpochIncrementsDurably(t *testing.T) {
	dep := NewLocal()
	env := simenv.NewImmediate()
	table := stagesTableName("fn")
	dep.Dynamo.CreateTable(table)
	d1 := New(dep, env, DefaultConfig())
	q1 := d1.Session().newQuery(env)
	defer q1.close()
	for want := 1; want <= 3; want++ {
		got, err := q1.acquireEpoch(table, "q1")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("epoch = %d, want %d", got, want)
		}
	}
	// A fresh driver continues the counter — the whole point of the fence.
	d2 := New(dep, simenv.NewImmediate(), DefaultConfig())
	q2 := d2.Session().newQuery(d2.env)
	defer q2.close()
	if got, err := q2.acquireEpoch(table, "q1"); err != nil || got != 4 {
		t.Fatalf("fresh driver epoch = %d (%v), want 4", got, err)
	}
	// Other query IDs are independent.
	if got, err := q2.acquireEpoch(table, "q2"); err != nil || got != 1 {
		t.Fatalf("q2 epoch = %d (%v), want 1", got, err)
	}
}

// Stale boundary files at the retry's own epoch-less prefix are covered by
// TestStagedStaleArtifactsDoNotPoisonRetry; this checks the fenced prefix
// directly: publishes of different epochs land in disjoint namespaces, so
// an epoch-2 collector never waits on (or reads) epoch-1 files.
func TestEpochPrefixesDisjoint(t *testing.T) {
	env := simenv.NewImmediate()
	svc := s3.New(s3.Config{})
	svc.MustCreateBucket("x")
	client := s3.NewClient(svc, env)
	mk := func(epoch int) exchange.Options {
		return exchange.Options{
			Variant: exchange.Variant{Levels: 1},
			Buckets: []string{"x"},
			Prefix:  "fn/q1/e" + string(rune('0'+epoch)),
			Poll:    time.Millisecond,
			MaxWait: time.Second,
		}
	}
	b := exchange.Boundary{Stage: 0, Senders: 1, Partitions: 1}
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	old := columnar.NewChunk(schema, 4)
	for i := 0; i < 4; i++ {
		old.Columns[0].AppendInt64(999) // epoch-1 poison rows
	}
	if err := exchange.PublishStage(client, mk(1), b, 0, old, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	fresh := columnar.NewChunk(schema, 2)
	fresh.Columns[0].AppendInt64(1)
	fresh.Columns[0].AppendInt64(2)
	if err := exchange.PublishStage(client, mk(2), b, 0, fresh, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	got, err := exchange.CollectStage(client, mk(2), b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.Columns[0].Int64s[0] != 1 {
		t.Fatalf("epoch-2 collector read %d rows (first %v), want the 2 fresh rows",
			got.NumRows(), got.Columns[0].Int64s[0])
	}
}

// TestStagedSubQuorumStallRecovered: one scan worker responds, the rest
// stall — below quorum, so the median policy never arms, and before PR 5's
// no-progress cap this stalled until the driver's global MaxWait. The cap
// window restarts at the healthy worker's response and then expires with no
// further progress, re-invoking exactly the missing workers.
func TestStagedSubQuorumStallRecovered(t *testing.T) {
	const stall = 10 * time.Minute
	k := simclock.New()
	dep := NewSimulated(k, 83)
	var out *columnar.Chunk
	var rep *Report
	var li, orders *columnar.Chunk
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.Speculate = DefaultSpeculateConfig()
		cfg.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			if stage == 1 && workerID != 0 && attempt == 0 {
				return stall // every scan worker but 0 hangs; 1 responds
			}
			return 0
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 67}
		li = g.Generate()
		orders = g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		scfg.Exchange.Variant = exchange.Variant{Levels: 1}
		scfg.MaxStageWait = 20 * time.Second
		out, rep, err = d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Errorf("sub-quorum stall query failed: %v", err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if t.Failed() {
		t.FailNow()
	}
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	chunksIdentical(t, out, want)
	if rep.Duration >= 2*time.Minute {
		t.Errorf("latency %v, want well under 2m (cap fires ~20s after the lone response)", rep.Duration)
	}
	for _, ss := range rep.StageStats {
		// File pruning sizes the scan fleet; whatever it is, the cap must
		// have speculated exactly the stalled workers (all but worker 0).
		if ss.StageID == 1 && ss.Speculated != ss.Workers-1 {
			t.Errorf("scan stage speculated %d of %d workers, want exactly the %d missing ones",
				ss.Speculated, ss.Workers, ss.Workers-1)
		}
	}
}
