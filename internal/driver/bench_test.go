package driver

import (
	"testing"

	"lambada/internal/awssim/simenv"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

// BenchmarkShuffleJoin measures the end-to-end staged shuffle join on the
// functional deployment: two scan stages partitioning through the S3
// exchange, a join stage per partition pair, and the partial→final
// aggregation split (the q12 shape with integer-exact aggregates). One op
// is a whole query: invoke, shuffle, barriers, driver merge.
func BenchmarkShuffleJoin(b *testing.B) {
	dep := NewLocal()
	d := New(dep, simenv.NewImmediate(), DefaultConfig())
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	g := tpch.Gen{SF: 0.01, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d.UploadTable("tpch", "lineitem", li, 8, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	ordRefs, err := d.UploadTable("tpch", "orders", orders, 4, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
	cfg := DefaultStageConfig()
	cfg.Partitions = 4
	cfg.BroadcastRowLimit = -1

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkBroadcastJoin is the same query through the driver-broadcast
// path — the baseline the shuffle pays its exchange overhead against on
// small inputs (at scale the broadcast path stops existing: the build side
// no longer fits the payloads).
func BenchmarkBroadcastJoin(b *testing.B) {
	dep := NewLocal()
	d := New(dep, simenv.NewImmediate(), DefaultConfig())
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	g := tpch.Gen{SF: 0.01, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d.UploadTable("tpch", "lineitem", li, 8, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	ordRefs, err := d.UploadTable("tpch", "orders", orders, 4, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
	cfg := DefaultStageConfig()
	cfg.BroadcastRowLimit = 1 << 30 // planner picks broadcast

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}
