package driver

import (
	"fmt"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/lpq"
	"lambada/internal/obs"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// BenchmarkShuffleJoin measures the end-to-end staged shuffle join on the
// functional deployment: two scan stages partitioning through the S3
// exchange, a join stage per partition pair, and the partial→final
// aggregation split (the q12 shape with integer-exact aggregates). One op
// is a whole query: invoke, shuffle, barriers, driver merge.
func BenchmarkShuffleJoin(b *testing.B) {
	dep := NewLocal()
	d := New(dep, simenv.NewImmediate(), DefaultConfig())
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	g := tpch.Gen{SF: 0.01, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d.UploadTable("tpch", "lineitem", li, 8, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	ordRefs, err := d.UploadTable("tpch", "orders", orders, 4, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
	cfg := DefaultStageConfig()
	cfg.Partitions = 4
	cfg.BroadcastRowLimit = -1

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}

// benchStagedLaunch runs the q12 shuffle end-to-end on the DES deployment
// and reports the modeled query latency as vms/op (virtual milliseconds):
// ns/op only measures how fast the simulation executes, while the virtual
// latency is what pipelined launch actually improves — consumer cold starts
// and barrier round trips overlap upstream execution instead of serializing
// behind the wave barrier.
func benchStagedLaunch(b *testing.B, pipelined bool) {
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	var virtual time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		dep := NewSimulated(k, 7)
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				b.Error(err)
				return
			}
			liRefs, err := d.UploadTable("tpch", "lineitem", li, 12, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			ordRefs, err := d.UploadTable("tpch", "orders", orders, 6, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			scfg := DefaultStageConfig()
			scfg.Partitions = 4
			scfg.BroadcastRowLimit = -1
			scfg.Pipelined = pipelined
			scfg.Exchange.Poll = 20 * time.Millisecond
			out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
			if err != nil {
				b.Error(err)
				return
			}
			if out.NumRows() == 0 {
				b.Error("empty result")
				return
			}
			virtual += rep.Duration
		})
		k.Run()
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/1e6, "vms/op")
}

// BenchmarkStagedPipelined: event-driven scheduler with pipelined launch —
// every stage invoked up front, ready barriers gating collects.
func BenchmarkStagedPipelined(b *testing.B) { benchStagedLaunch(b, true) }

// BenchmarkStagedWaves: the PR 3 wave-barrier baseline — a stage launches
// only after its producers sealed.
func BenchmarkStagedWaves(b *testing.B) { benchStagedLaunch(b, false) }

// BenchmarkBroadcastJoin is the same query through the driver-broadcast
// path — the baseline the shuffle pays its exchange overhead against on
// small inputs (at scale the broadcast path stops existing: the build side
// no longer fits the payloads).
func BenchmarkBroadcastJoin(b *testing.B) {
	dep := NewLocal()
	d := New(dep, simenv.NewImmediate(), DefaultConfig())
	if err := d.Install(); err != nil {
		b.Fatal(err)
	}
	g := tpch.Gen{SF: 0.01, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d.UploadTable("tpch", "lineitem", li, 8, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	ordRefs, err := d.UploadTable("tpch", "orders", orders, 4, lpq.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		b.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
	cfg := DefaultStageConfig()
	cfg.BroadcastRowLimit = 1 << 30 // planner picks broadcast

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkStagedSelectiveScan measures what the price-aware scan layer
// actually bills: staged q12 (selective l_receiptdate range) on v2 paged
// lineitem files under DES, reporting the modeled S3 cost per query —
// billed GET requests and billed bytes — alongside the virtual latency.
// These are the dollar axes of the paper's cost model: requests have a
// fixed price, bytes a linear one, and the page index / late
// materialization / coalescing trade between them.
func BenchmarkStagedSelectiveScan(b *testing.B) {
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	var virtual time.Duration
	var gets, bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		dep := NewSimulated(k, 47)
		k.Go("driver", func(p *simclock.Proc) {
			d := New(dep, p, DefaultConfig())
			if err := d.Install(); err != nil {
				b.Error(err)
				return
			}
			liRefs, err := d.UploadTable("tpch", "lineitem", li, 6,
				lpq.WriterOptions{RowGroupRows: 2000, PageRows: 512, Compression: lpq.Gzip})
			if err != nil {
				b.Error(err)
				return
			}
			ordRefs, err := d.UploadTable("tpch", "orders", orders, 3,
				lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip})
			if err != nil {
				b.Error(err)
				return
			}
			scfg := DefaultStageConfig()
			scfg.Partitions = 2
			scfg.BroadcastRowLimit = -1
			out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
			if err != nil {
				b.Error(err)
				return
			}
			if out.NumRows() == 0 {
				b.Error("empty result")
				return
			}
			virtual += rep.Duration
			gets += rep.S3GetRequests
			bytes += rep.S3ReadBytes
		})
		k.Run()
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/1e6, "vms/op")
	b.ReportMetric(float64(gets)/float64(b.N), "billed_get_requests/op")
	b.ReportMetric(float64(bytes)/float64(b.N), "billed_bytes/op")
}

// benchStagedFleet runs staged q12 on the DES deployment at the given
// partition count and reports the modeled latency (vms/op), the billed S3
// request total (the multi-level exchange's target metric: requests, not
// bytes, dominate boundary cost at scale), and the modeled dollar cost.
// forceLevels pins the boundary round count (0 = the analytic resolver).
func benchStagedFleet(b *testing.B, parts, forceLevels int) {
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	var virtual time.Duration
	var requests int64
	var workers int
	var usd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		dep := NewSimulated(k, 7)
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				b.Error(err)
				return
			}
			liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			before := dep.Meter.Count(pricing.LabelS3Read) + dep.Meter.Count(pricing.LabelS3Write) + dep.Meter.Count(pricing.LabelS3List)
			scfg := DefaultStageConfig()
			scfg.Partitions = parts
			scfg.BroadcastRowLimit = -1
			scfg.ExchangeLevels = forceLevels
			scfg.Exchange.Poll = 100 * time.Millisecond
			out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
			if err != nil {
				b.Error(err)
				return
			}
			if out.NumRows() == 0 {
				b.Error("empty result")
				return
			}
			virtual += rep.Duration
			requests += dep.Meter.Count(pricing.LabelS3Read) + dep.Meter.Count(pricing.LabelS3Write) + dep.Meter.Count(pricing.LabelS3List) - before
			workers = rep.Workers
			usd += rep.TotalCost
		})
		k.Run()
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/1e6, "vms/op")
	b.ReportMetric(float64(requests)/float64(b.N), "billed_requests/op")
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(usd/float64(b.N), "usd/op")
}

// BenchmarkStagedQ12Fleet sweeps the staged q12 fleet size across the
// multi-level cutover: 64-ish workers stay single-round, the 1k and 4k
// points go multi-level automatically — the 1kSingleRound pin is the
// direct O(S·P) vs O(√P·S) request comparison at matching (S, P).
func BenchmarkStagedQ12Fleet(b *testing.B) {
	b.Run("Fleet64", func(b *testing.B) { benchStagedFleet(b, 30, 0) })
	b.Run("Fleet1k", func(b *testing.B) { benchStagedFleet(b, 512, 0) })
	b.Run("Fleet1kSingleRound", func(b *testing.B) { benchStagedFleet(b, 512, 1) })
	b.Run("Fleet4k", func(b *testing.B) { benchStagedFleet(b, 2048, 0) })
}

// BenchmarkStagedCriticalPath runs traced staged q12 under DES and splits
// the query's critical path between worker-side and driver-side virtual
// time: critpath_worker_vms is the latency bounded by spans inside worker
// invocations (the part more compute parallelism could shrink),
// critpath_driver_vms the remainder (invocation, barriers, collection —
// the part only protocol changes can shrink). The two sum to vms/op by
// the tiling property.
func BenchmarkStagedCriticalPath(b *testing.B) {
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	var virtual, worker time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := simclock.New()
		dep := NewSimulated(k, 47)
		dep.EnableTracing(obs.New())
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				b.Error(err)
				return
			}
			liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				b.Error(err)
				return
			}
			scfg := DefaultStageConfig()
			scfg.Partitions = 2
			scfg.BroadcastRowLimit = -1
			out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
			if err != nil {
				b.Error(err)
				return
			}
			if out.NumRows() == 0 {
				b.Error("empty result")
				return
			}
			virtual += rep.Duration
			spans := rep.Trace.Spans()
			underInvoke := func(id obs.SpanID) bool {
				for id != 0 {
					s := spans[id-1]
					if s.Kind == obs.KindInvoke {
						return true
					}
					id = s.Parent
				}
				return false
			}
			for _, seg := range obs.CriticalPath(spans, rep.Span) {
				if underInvoke(seg.Span) {
					worker += seg.Duration()
				}
			}
		})
		k.Run()
	}
	b.ReportMetric(float64(virtual)/float64(b.N)/1e6, "vms/op")
	b.ReportMetric(float64(worker)/float64(b.N)/1e6, "critpath_worker_vms/op")
	b.ReportMetric(float64(virtual-worker)/float64(b.N)/1e6, "critpath_driver_vms/op")
}

// BenchmarkConcurrentQueries measures the resident session under 1, 4 and
// 16 concurrent query streams on the DES deployment: every stream runs the
// staged q12 shuffle join as its own DES process on ONE session sharing the
// warm pool and a 32-invocation admission cap. vms/op is the mean virtual
// latency of one query at that concurrency; billed-usd/query the mean
// billed dollars, taken from the deployment meter delta over the whole
// batch (per-report cost windows overlap under concurrency, the meter
// delta does not double count).
func BenchmarkConcurrentQueries(b *testing.B) {
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	for _, streams := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("Streams%d", streams), func(b *testing.B) {
			var virtual time.Duration
			var billed float64
			queries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := simclock.New()
				dep := NewSimulated(k, 7)
				cfg := DefaultConfig()
				cfg.PollInterval = 50 * time.Millisecond
				cfg.MaxInFlight = 32
				sess := NewSession(dep, cfg)
				var uploadUSD float64
				k.Go("setup", func(p *simclock.Proc) {
					if err := sess.Install(); err != nil {
						b.Error(err)
						return
					}
					liRefs, err := sess.UploadTable(p, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
					if err != nil {
						b.Error(err)
						return
					}
					ordRefs, err := sess.UploadTable(p, "tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
					if err != nil {
						b.Error(err)
						return
					}
					tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
					uploadUSD = float64(dep.Meter.Total())
					for s := 0; s < streams; s++ {
						k.Go(fmt.Sprintf("stream%d", s), func(p *simclock.Proc) {
							scfg := DefaultStageConfig()
							scfg.Partitions = 2
							scfg.BroadcastRowLimit = -1
							scfg.Exchange.Poll = 100 * time.Millisecond
							out, rep, err := sess.RunSQLStaged(p, q12ExactSQL, tables, scfg)
							if err != nil {
								b.Error(err)
								return
							}
							if out.NumRows() == 0 {
								b.Error("empty result")
								return
							}
							virtual += rep.Duration
							queries++
						})
					}
				})
				k.Run()
				if k.Deadlocked() {
					b.Fatal("DES deadlocked")
				}
				billed += float64(dep.Meter.Total()) - uploadUSD
			}
			if queries == 0 {
				b.Fatal("no queries completed")
			}
			b.ReportMetric(float64(virtual)/float64(queries)/1e6, "vms/op")
			b.ReportMetric(billed/float64(queries), "billed-usd/query")
		})
	}
}
