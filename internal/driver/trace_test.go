package driver

import (
	"bytes"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/lpq"
	"lambada/internal/obs"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// tracedRun is one traced staged q12 execution plus the exact billed
// request counts the test window observed on the meter.
type tracedRun struct {
	rep   *Report
	trace []byte // Chrome trace-event export
	// Meter movement over the query (same window as the report's deltas).
	s3Gets, s3Puts, s3Lists  int64
	sqsReqs                  int64
	dynamoReads, dynamoWrite int64
	lambdaInvokes            int64
}

// tracedOpts parameterizes runTracedQ12.
type tracedOpts struct {
	chaos   bool // seeded FaultPlan deployment instead of the clean one
	flat    bool // single-level exchange without write combining
	unkeyed bool // disable completion-broadcast keying (regression baseline)
}

// runTracedQ12 executes staged q12 with tracing enabled on a fresh DES
// kernel — the chaos harness plus EnableTracing — and exports the trace.
func runTracedQ12(t *testing.T, o tracedOpts) tracedRun {
	t.Helper()
	k := simclock.New()
	if o.unkeyed {
		k.SetCompletionKeying(false)
	}
	var dep *Deployment
	if o.chaos {
		dep = NewChaos(k, 71, chaosPlanQ12())
	} else {
		dep = NewSimulated(k, 71)
	}
	dep.EnableTracing(obs.New())
	var res tracedRun
	ok := false
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.Speculate = DefaultSpeculateConfig()
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		if o.flat {
			scfg.Exchange.Variant.Levels = 1
			scfg.Exchange.Variant.WriteCombining = false
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 11}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		count := func(label string) int64 { return dep.Meter.Count(label) }
		before := map[string]int64{}
		for _, l := range []string{pricing.LabelS3Read, pricing.LabelS3Write, pricing.LabelS3List,
			pricing.LabelSQS, pricing.LabelDynamoRead, pricing.LabelDynamoWrite, pricing.LabelLambdaRequests} {
			before[l] = count(l)
		}
		out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Error(err)
			return
		}
		if out.NumRows() == 0 {
			t.Error("empty result")
			return
		}
		res.rep = rep
		res.s3Gets = count(pricing.LabelS3Read) - before[pricing.LabelS3Read]
		res.s3Puts = count(pricing.LabelS3Write) - before[pricing.LabelS3Write]
		res.s3Lists = count(pricing.LabelS3List) - before[pricing.LabelS3List]
		res.sqsReqs = count(pricing.LabelSQS) - before[pricing.LabelSQS]
		res.dynamoReads = count(pricing.LabelDynamoRead) - before[pricing.LabelDynamoRead]
		res.dynamoWrite = count(pricing.LabelDynamoWrite) - before[pricing.LabelDynamoWrite]
		res.lambdaInvokes = count(pricing.LabelLambdaRequests) - before[pricing.LabelLambdaRequests]
		var buf bytes.Buffer
		if err := obs.ExportChromeTrace(&buf, rep.Trace.Spans()); err != nil {
			t.Error(err)
			return
		}
		res.trace = buf.Bytes()
		ok = true
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if !ok {
		t.FailNow()
	}
	return res
}

// TestTraceExportByteIdentical: two runs of the same seeded query — chaos
// plan included — export byte-identical Chrome traces, on both exchange
// variants. This is the observability determinism contract: the trace is
// a function of the seed, not of host scheduling.
func TestTraceExportByteIdentical(t *testing.T) {
	for _, flat := range []bool{false, true} {
		name := "tree-wc"
		if flat {
			name = "flat"
		}
		t.Run(name, func(t *testing.T) {
			a := runTracedQ12(t, tracedOpts{chaos: true, flat: flat})
			b := runTracedQ12(t, tracedOpts{chaos: true, flat: flat})
			if !bytes.Equal(a.trace, b.trace) {
				t.Errorf("trace exports differ (%d vs %d bytes)", len(a.trace), len(b.trace))
			}
			if n, err := obs.ValidateChromeTrace(a.trace); err != nil || n == 0 {
				t.Errorf("exported trace invalid: %d events, %v", n, err)
			}
		})
	}
}

// TestTraceCostAttributionExact: summing Cost over every span reproduces
// the meter movement of the query window exactly — every billed request
// lands on exactly one span, none are dropped, none double-counted. Runs
// under the chaos plan so retry, duplicate-delivery and crash paths are
// all exercised.
func TestTraceCostAttributionExact(t *testing.T) {
	for _, o := range []tracedOpts{{}, {chaos: true}} {
		name := "clean"
		if o.chaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			r := runTracedQ12(t, o)
			total := obs.TotalCost(r.rep.Trace.Spans())
			checks := []struct {
				name  string
				spans int64
				meter int64
			}{
				{"s3 gets", total.S3Get, r.s3Gets},
				{"s3 puts", total.S3Put, r.s3Puts},
				{"s3 lists", total.S3List, r.s3Lists},
				{"s3 read bytes", total.S3ReadBytes, r.rep.S3ReadBytes},
				{"sqs requests", total.SQSRequests, r.sqsReqs},
				{"dynamo reads", total.DynamoReads, r.dynamoReads},
				{"dynamo writes", total.DynamoWrites, r.dynamoWrite},
				{"lambda invokes", total.LambdaInvokes, r.lambdaInvokes},
				{"lambda MiB·ns", total.LambdaMiBNs, r.rep.LambdaMiBNs},
			}
			for _, c := range checks {
				if c.spans != c.meter {
					t.Errorf("%s: spans %d, meter %d", c.name, c.spans, c.meter)
				}
			}
			// The report's own counters agree with the meter window.
			if r.rep.S3GetRequests != r.s3Gets {
				t.Errorf("report S3GetRequests %d, meter %d", r.rep.S3GetRequests, r.s3Gets)
			}
			// And the priced span total matches the report's billed total.
			if diff := float64(CostUSD(total)) - r.rep.TotalCost; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("priced span cost %.15f, report total %.15f", float64(CostUSD(total)), r.rep.TotalCost)
			}
		})
	}
}

// TestCriticalPathSumsToDuration: the critical path tiles the query span,
// so its segment durations sum exactly to the report's end-to-end virtual
// latency.
func TestCriticalPathSumsToDuration(t *testing.T) {
	r := runTracedQ12(t, tracedOpts{})
	p := r.rep.Profile()
	if p == nil {
		t.Fatal("traced report has no profile")
	}
	if len(p.CriticalPath) == 0 {
		t.Fatal("empty critical path")
	}
	var sum time.Duration
	for _, seg := range p.CriticalPath {
		sum += seg.Duration()
	}
	if sum != r.rep.Duration {
		t.Errorf("critical path sums to %v, report duration %v", sum, r.rep.Duration)
	}
	// Per-stage profile sanity: the two stages carry workers and rows.
	if len(p.Stages) != len(r.rep.StageStats) {
		t.Fatalf("profile has %d stages, report %d", len(p.Stages), len(r.rep.StageStats))
	}
	for _, sp := range p.Stages {
		if sp.Attempts == 0 {
			t.Errorf("stage %d: no traced attempts", sp.StageID)
		}
		if sp.Cost.IsZero() {
			t.Errorf("stage %d: no attributed cost", sp.StageID)
		}
	}
}

// TestKeyedBroadcastReducesWakeups is the satellite regression: keying the
// completion broadcast by (table,key)/prefix wakes strictly fewer waiters
// than the wake-everyone baseline on the same seeded query. The spurious
// wakeups are not free, either: each one re-runs the waiter's poll (a
// billed substrate call with virtual latency), so the keyed run is also
// no slower than the baseline.
func TestKeyedBroadcastReducesWakeups(t *testing.T) {
	keyed := runTracedQ12(t, tracedOpts{})
	unkeyed := runTracedQ12(t, tracedOpts{unkeyed: true})
	if keyed.rep.Wakeups == 0 {
		t.Fatal("keyed run recorded no wakeups (counter not wired?)")
	}
	if keyed.rep.Wakeups >= unkeyed.rep.Wakeups {
		t.Errorf("keying did not reduce wakeups: keyed %d, unkeyed %d",
			keyed.rep.Wakeups, unkeyed.rep.Wakeups)
	}
	if keyed.rep.Duration > unkeyed.rep.Duration {
		t.Errorf("keyed run slower than unkeyed baseline: %v vs %v",
			keyed.rep.Duration, unkeyed.rep.Duration)
	}
}
